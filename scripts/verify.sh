#!/usr/bin/env bash
# Tier-1 verification gate (referenced from ROADMAP.md).
#
# Runs the canonical build/test/lint line, a formatting check, and a
# short smoke run of the instrumented `kpm report` roofline table on a
# small topological-insulator lattice (budget: ~10 s).
#
# Every stage runs through `step`, which times it; the footer prints a
# per-step timing table, and any failure names the step it died in.
set -euo pipefail
cd "$(dirname "$0")/.."

CURRENT_STEP="(startup)"
STEP_START=""
STEP_TIMINGS=""

step() {
    local now
    now=$(date +%s%3N)
    if [[ -n "$STEP_START" ]]; then
        STEP_TIMINGS+=$(printf '%7d ms  %s\n' $((now - STEP_START)) "$CURRENT_STEP")$'\n'
    fi
    CURRENT_STEP="$1"
    STEP_START=$now
    echo "== $1 =="
}

finish() {
    local code=$?
    local now
    now=$(date +%s%3N)
    if [[ -n "$STEP_START" ]]; then
        STEP_TIMINGS+=$(printf '%7d ms  %s\n' $((now - STEP_START)) "$CURRENT_STEP")$'\n'
    fi
    echo "== step timing =="
    printf '%s' "$STEP_TIMINGS"
    if [[ $code -ne 0 ]]; then
        echo "verify: FAILED in step: $CURRENT_STEP (exit $code)" >&2
    fi
}
trap finish EXIT

step "tier-1: build + tests + clippy"
cargo build --release
cargo test -q
cargo test --workspace -q
cargo clippy --workspace -- -D warnings

step "tier-1 under pinned thread counts (KPM_THREADS=1, 4)"
# The same workspace tests on a serial global pool and on a 4-worker
# pool: results (moments, kernels, checkpoints) must be bitwise
# identical in both, so every suite has to pass in both.
KPM_THREADS=1 cargo test --workspace -q
KPM_THREADS=4 cargo test --workspace -q

step "tier-1 under --features simd (nightly; explicit vector bodies)"
# The same tier-1 test line through the explicit SIMD kernel bodies:
# moments must stay bitwise identical, so every suite has to pass
# unchanged. portable_simd needs nightly; when no nightly toolchain is
# installed the scalar fallback is the only build and the leg is
# skipped. A separate target dir keeps the feature-flagged artifacts
# from clobbering the release build (same pattern as the noop leg).
# Nightly clippy lint sets drift, so the clippy gate stays stable-only.
if cargo +nightly --version >/dev/null 2>&1; then
    cargo +nightly test -q --features simd --target-dir target/simd-verify
    cargo +nightly test -q --workspace --features simd --target-dir target/simd-verify
else
    echo "no nightly toolchain; skipping the simd feature leg"
fi

step "static analysis: kpm-analyze gate (AST + dataflow passes, SARIF, ratchet)"
# Hard gate: any finding not covered by the committed baseline
# (ANALYZE_BASELINE.txt) is a failure. The machine-readable JSON report
# and a SARIF 2.1.0 document are kept as build artifacts either way —
# the gate invocation below writes target/kpm-analyze.sarif even when
# it fails, so CI can always upload it.
mkdir -p target
cargo run --release -q -p kpm-analyze -- --json > target/kpm-analyze-report.json || true
if cargo run --release -q -p kpm-analyze -- \
        --baseline ANALYZE_BASELINE.txt --sarif target/kpm-analyze.sarif; then
    echo "kpm-analyze: clean ($(grep -o '"files_scanned": [0-9]*' target/kpm-analyze-report.json)); SARIF at target/kpm-analyze.sarif"
else
    echo "kpm-analyze: findings not covered by ANALYZE_BASELINE.txt (SARIF at target/kpm-analyze.sarif)" >&2
    exit 1
fi

step "static analysis: schedule-explorer model check"
# Exhausts >=1000 interleavings of the 2-rank send/recv/dedup model
# (exactly-once + deadlock-freedom) plus the seeded-bug detectors.
cargo test -q --test static_analysis

step "static analysis: seeded-bug pass fixtures"
# Each dataflow pass must catch its planted bug (AB-BA deadlock,
# store/load ordering mismatch, par_* fp reduction, cross-crate panic
# path, lock behind a helper in a hot kernel loop) and stay quiet on
# the conforming twin.
cargo test -q -p kpm-analyze --test passes_fixtures

step "kpm-obs noop build stays dark"
cargo test -q -p kpm-obs --features noop --test noop_gate

step "noop build: bitwise-identical moments"
# The compile-time noop feature must not perturb the numbers: a DOS
# curve from a noop-built binary is bitwise identical to the
# instrumented build's (both single-threaded; the noop build lives in
# its own target dir so it cannot clobber the release artifacts).
cargo build -q --bin kpm --features kpm-obs/noop --target-dir target/noop-verify
./target/noop-verify/debug/kpm dos --nx 6 --ny 6 --nz 4 --moments 32 \
    --random 2 --threads 1 > target/dos-noop.csv
./target/release/kpm dos --nx 6 --ny 6 --nz 4 --moments 32 \
    --random 2 --threads 1 > target/dos-live.csv
cmp target/dos-noop.csv target/dos-live.csv
echo "noop and instrumented DOS output are bitwise identical"

step "formatting"
if cargo fmt --version >/dev/null 2>&1; then
    cargo fmt --check
else
    echo "rustfmt unavailable; skipping format check"
fi

step "determinism: bitwise moments across formats and thread counts"
# CRS and SELL-C-σ runs must agree bit for bit at every thread count;
# the suite covers all three solver variants on both formats.
cargo test -q --test determinism

step "smoke: kpm report (achieved vs predicted roofline)"
./target/release/kpm report --nx 20 --ny 20 --nz 10 --moments 64 \
    --random 8 --machine IVB --llc-mib 0.5

step "smoke: kpm report on autotuned SELL-C-sigma"
./target/release/kpm report --nx 20 --ny 20 --nz 10 --moments 64 \
    --random 8 --machine IVB --llc-mib 0.5 --format sell --autotune

step "smoke: kpm report on matrix-free stencil with level-blocked powers"
# The third storage format (matrix-free stencil) plus p=2 wavefront
# blocking must run end to end; the lattice is deep enough (nz=10)
# for the level schedule to engage rather than fall back.
./target/release/kpm report --nx 20 --ny 20 --nz 10 --moments 64 \
    --random 8 --machine IVB --llc-mib 0.5 --format stencil \
    --power-blocking 2

step "smoke: kpm report with the simd/first-touch runtime toggles"
# --simd on a scalar build warns (stderr) and runs scalar; --first-touch
# re-places the matrix and block vectors. Either way the report must run
# end to end and print the lanes/first-touch banner fields.
simd_report=$(./target/release/kpm report --nx 20 --ny 20 --nz 10 --moments 64 \
    --random 8 --machine IVB --llc-mib 0.5 --simd --first-touch 2>&1)
echo "$simd_report" | grep -q 'lanes = '
echo "$simd_report" | grep -q 'first-touch = on'

step "service: chaos ledger (500 randomized schedules)"
# Exactly-once replies, bitwise batched moments, and a consistent
# admitted==replied ledger under crashes, slow solves, lock poisoning,
# deadline storms, and both shutdown modes.
cargo test -q --test service_chaos

step "smoke: kpm serve (batched mixed queries + typed backpressure)"
# A mixed DOS/LDOS batch must coalesce and answer, a zero-deadline
# request must be shed with a typed reason and a retry hint, and the
# final ledger must balance.
./target/release/kpm generate --nx 4 --ny 4 --nz 2 --out target/verify-serve.mtx
serve_out=$(printf 'dos 1 2 64\nldos 3 64\ndos 9 1 64 0\n' | \
    ./target/release/kpm serve target/verify-serve.mtx)
echo "$serve_out"
echo "$serve_out" | grep -q '"status": "ok"'
echo "$serve_out" | grep -q '"reason": "past_deadline"'
echo "$serve_out" | grep -q '"retry_after_ms"'
echo "$serve_out" | grep -q '"consistent": true'

step "smoke: request tracing, kpm stats, kpm trace-report"
# An instrumented serve run must put a trace id and an exact stage
# breakdown on every reply and burn rates on the ledger; the exports
# must round-trip through the Prometheus exposition and the critical-
# path analyzer (which fails on orphan spans).
traced_out=$(printf 'dos 1 2 64\nldos 3 64\ngreen 2 1 32\n' | \
    ./target/release/kpm serve target/verify-serve.mtx \
        --metrics-out target/verify-metrics.jsonl \
        --trace-out target/verify-trace.json \
        --flight-recorder target/verify-flight)
echo "$traced_out" | grep -q '"trace": '
echo "$traced_out" | grep -q '"stages_us": '
echo "$traced_out" | grep -q '"slo": '
stats_out=$(./target/release/kpm stats target/verify-metrics.jsonl)
echo "$stats_out" | grep -q '^kpm_svc_latency_ns{scope="total",quantile="0.99"}'
echo "$stats_out" | grep -q '^kpm_slo_burn_rate{route="dos"}'
report_out=$(./target/release/kpm trace-report target/verify-trace.json --machine IVB)
echo "$report_out"
echo "$report_out" | grep -q 'attribution: queue'

step "bench: service p99 regression gate"
# Reruns the service load sweep and fails on a >25% pre-saturation p99
# regression against the committed baseline (skipped automatically when
# the host profile differs from the baseline's).
./target/release/bench_service_json --out target/bench-service-check.json \
    --check BENCH_service.json

echo "verify: OK"
