#!/usr/bin/env bash
# Tier-1 verification gate (referenced from ROADMAP.md).
#
# Runs the canonical build/test/lint line, a formatting check, and a
# short smoke run of the instrumented `kpm report` roofline table on a
# small topological-insulator lattice (budget: ~10 s).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier-1: build + tests + clippy =="
cargo build --release
cargo test -q
cargo test --workspace -q
cargo clippy --workspace -- -D warnings

echo "== formatting =="
if cargo fmt --version >/dev/null 2>&1; then
    cargo fmt --check
else
    echo "rustfmt unavailable; skipping format check"
fi

echo "== smoke: kpm report (achieved vs predicted roofline) =="
./target/release/kpm report --nx 20 --ny 20 --nz 10 --moments 64 \
    --random 8 --machine IVB --llc-mib 0.5

echo "verify: OK"
