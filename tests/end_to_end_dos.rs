//! End-to-end integration: topological-insulator Hamiltonian → KPM-DOS
//! (all three optimization stages) → spectral reconstruction, validated
//! against exact diagonalization.

use kpm_repro::core::dos::{moment_integral, reconstruct};
use kpm_repro::core::lanczos::lanczos_bounds;
use kpm_repro::core::solver::{kpm_moments, KpmParams, KpmVariant};
use kpm_repro::core::Kernel;
use kpm_repro::topo::model::exact_eigenvalues;
use kpm_repro::topo::{Lattice3D, Potential, ScaleFactors, TopoHamiltonian};

fn params(m: usize, r: usize) -> KpmParams {
    KpmParams {
        num_moments: m,
        num_random: r,
        seed: 20150527, // IPDPS 2015
        parallel: true,
        threads: 0,
        power: 1,
        first_touch: false,
    }
}

#[test]
fn all_three_stages_agree_on_the_physics_workload() {
    let h = TopoHamiltonian::quantum_dot_superlattice(6, 6, 3).assemble();
    let sf = ScaleFactors::from_gershgorin(&h, 0.01);
    let p = params(64, 4);
    let naive = kpm_moments(&h, sf, &p, KpmVariant::Naive).unwrap();
    let s1 = kpm_moments(&h, sf, &p, KpmVariant::AugSpmv).unwrap();
    let s2 = kpm_moments(&h, sf, &p, KpmVariant::AugSpmmv).unwrap();
    assert!(naive.max_abs_diff(&s1) < 1e-10);
    assert!(naive.max_abs_diff(&s2) < 1e-10);
}

#[test]
fn kpm_dos_matches_exact_spectrum_histogram() {
    // Small enough for the dense Jacobi eigensolver: compare eigenvalue
    // counts in several windows.
    let h = TopoHamiltonian::clean(3, 3, 3).assemble(); // N = 108
    let n = h.nrows();
    let sf = ScaleFactors::from_gershgorin(&h, 0.01);
    let set = kpm_moments(&h, sf, &params(256, 64), KpmVariant::AugSpmmv).unwrap();
    let curve = reconstruct(&set, Kernel::Jackson, sf, 4096);
    let evs = exact_eigenvalues(&h);
    assert_eq!(evs.len(), n);

    for (lo, hi) in [(-6.0, -2.0), (-2.0, 2.0), (2.0, 6.0)] {
        let exact = evs.iter().filter(|e| **e >= lo && **e < hi).count() as f64;
        let kpm = curve.integral_window(lo, hi) * n as f64;
        // Stochastic trace + Jackson broadening: demand agreement to a
        // few states.
        assert!(
            (kpm - exact).abs() < 0.12 * n as f64,
            "window [{lo},{hi}]: KPM {kpm:.1} vs exact {exact}"
        );
    }
    // Total state count is exact up to quadrature error.
    assert!((curve.integral() - 1.0).abs() < 0.02);
    assert!((moment_integral(&set, Kernel::Jackson) - 1.0).abs() < 1e-10);
}

#[test]
fn lanczos_and_gershgorin_bounds_both_contain_spectrum() {
    let h = TopoHamiltonian::clean(4, 4, 2).assemble();
    let evs = exact_eigenvalues(&h);
    let (emin, emax) = (evs[0], *evs.last().unwrap());
    let (glo, ghi) = h.gershgorin_bounds();
    assert!(glo <= emin && ghi >= emax);
    let (llo, lhi) = lanczos_bounds(&h, 40, 1);
    assert!(llo <= emin + 1e-9 && lhi >= emax - 1e-9);
    // Lanczos is at least as tight.
    assert!(lhi - llo <= ghi - glo + 1e-9);
}

#[test]
fn quantum_dots_shift_spectral_weight() {
    // The gate potential moves states: DOS with dots differs from the
    // clean DOS near E = 0 but total weight is conserved.
    let lat = Lattice3D::paper_default(8, 8, 3);
    let clean = TopoHamiltonian {
        lattice: lat,
        t: 1.0,
        potential: Potential::Zero,
    }
    .assemble();
    let dotted = TopoHamiltonian {
        lattice: lat,
        t: 1.0,
        potential: Potential::QuantumDots {
            strength: 1.0,
            period: 8,
            radius: 2.5,
            depth: 1,
        },
    }
    .assemble();
    let p = params(128, 8);
    let sf_c = ScaleFactors::from_gershgorin(&clean, 0.01);
    let sf_d = ScaleFactors::from_gershgorin(&dotted, 0.01);
    let dos_c = reconstruct(
        &kpm_moments(&clean, sf_c, &p, KpmVariant::AugSpmmv).unwrap(),
        Kernel::Jackson,
        sf_c,
        1024,
    );
    let dos_d = reconstruct(
        &kpm_moments(&dotted, sf_d, &p, KpmVariant::AugSpmmv).unwrap(),
        Kernel::Jackson,
        sf_d,
        1024,
    );
    assert!((dos_c.integral() - dos_d.integral()).abs() < 0.03);
    let diff: f64 = (-10..=10)
        .map(|i| {
            let e = i as f64 * 0.05;
            (dos_c.value_at(e) - dos_d.value_at(e)).abs()
        })
        .sum();
    assert!(diff > 1e-3, "dots must modify the low-energy DOS: {diff}");
}

#[test]
fn dirichlet_vs_jackson_gibbs_behaviour_end_to_end() {
    let h = TopoHamiltonian::clean(4, 4, 2).assemble();
    let sf = ScaleFactors::from_gershgorin(&h, 0.01);
    let set = kpm_moments(&h, sf, &params(128, 16), KpmVariant::AugSpmmv).unwrap();
    let jackson = reconstruct(&set, Kernel::Jackson, sf, 1024);
    let dirichlet = reconstruct(&set, Kernel::Dirichlet, sf, 1024);
    let j_min = jackson.values.iter().cloned().fold(f64::INFINITY, f64::min);
    let d_min = dirichlet
        .values
        .iter()
        .cloned()
        .fold(f64::INFINITY, f64::min);
    assert!(j_min > -1e-6, "Jackson DOS must be non-negative: {j_min}");
    assert!(d_min < j_min, "sharp truncation must oscillate lower");
}

#[test]
fn disorder_broadens_the_spectrum() {
    // Physics of paper ref. [20] ("Fate of topological-insulator
    // surface states under strong disorder"): on-site disorder widens
    // the spectral support and fills structure in the DOS.
    let lat = Lattice3D::paper_default(6, 6, 3);
    let clean = TopoHamiltonian {
        lattice: lat,
        t: 1.0,
        potential: Potential::Zero,
    }
    .assemble();
    let dirty = TopoHamiltonian {
        lattice: lat,
        t: 1.0,
        potential: Potential::Disorder {
            width: 4.0,
            seed: 99,
        },
    }
    .assemble();
    let (clo, chi) = clean.gershgorin_bounds();
    let (dlo, dhi) = dirty.gershgorin_bounds();
    assert!(dlo < clo && dhi > chi, "disorder widens Gershgorin bounds");

    // DOS: the clean system has a bulk gap around E = 0 (low DOS);
    // strong disorder fills it.
    let p = params(128, 8);
    let sfc = ScaleFactors::from_gershgorin(&clean, 0.01);
    let sfd = ScaleFactors::from_gershgorin(&dirty, 0.01);
    let dos_c = reconstruct(
        &kpm_moments(&clean, sfc, &p, KpmVariant::AugSpmmv).unwrap(),
        Kernel::Jackson,
        sfc,
        1024,
    );
    let dos_d = reconstruct(
        &kpm_moments(&dirty, sfd, &p, KpmVariant::AugSpmmv).unwrap(),
        Kernel::Jackson,
        sfd,
        1024,
    );
    let gap_c = dos_c.integral_window(-0.4, 0.4);
    let gap_d = dos_d.integral_window(-0.4, 0.4);
    assert!(
        gap_d > gap_c,
        "disorder must add states near E=0: clean {gap_c}, dirty {gap_d}"
    );
}

#[test]
fn lorentz_kernel_broadens_but_conserves_weight() {
    let h = TopoHamiltonian::clean(4, 4, 2).assemble();
    let sf = ScaleFactors::from_gershgorin(&h, 0.01);
    let set = kpm_moments(&h, sf, &params(128, 8), KpmVariant::AugSpmmv).unwrap();
    let curve = reconstruct(&set, Kernel::Lorentz(4.0), sf, 2048);
    assert!((curve.integral() - 1.0).abs() < 0.02);
}

#[test]
fn ldos_moments_match_exact_eigenvector_expansion() {
    // The spectral theorem check the LDOS machinery must pass:
    // mu_m(site) = (1/4) sum_orbitals sum_n |psi_n(4*site+o)|^2 T_m(x_n),
    // with (E_n, psi_n) from the dense Jacobi eigensolver.
    use kpm_repro::core::chebyshev::t;
    use kpm_repro::core::ldos::site_moments;
    use kpm_repro::topo::model::to_dense_hermitian;

    let h = TopoHamiltonian::clean(2, 2, 2).assemble(); // N = 32
    let sf = ScaleFactors::from_gershgorin(&h, 0.01);
    let (evs, vecs) = to_dense_hermitian(&h).eigen_decomposition(1e-13);

    let site = 3usize;
    let m_count = 24usize;
    let kpm = site_moments(&h, sf, site, m_count).unwrap();

    for m in 0..m_count {
        let mut exact = 0.0;
        for o in 0..4 {
            let row = 4 * site + o;
            for (e, v) in evs.iter().zip(&vecs) {
                exact += v[row].norm_sqr() * t(m, sf.to_chebyshev(*e));
            }
        }
        exact /= 4.0; // site_moments averages the four orbital runs
        assert!(
            (kpm.as_slice()[m] - exact).abs() < 1e-8,
            "m={m}: KPM {} vs exact {exact}",
            kpm.as_slice()[m]
        );
    }
}

#[test]
fn graphene_dos_has_dirac_dip_and_van_hove_peaks() {
    // Second application workload (paper ref. [21]): the honeycomb
    // lattice DOS vanishes ~linearly at E = 0 and peaks at |E| = t.
    use kpm_repro::topo::graphene::{clean_graphene, GrapheneLattice};
    let lat = GrapheneLattice::new(48, 48);
    let h = clean_graphene(lat, 1.0);
    let sf = ScaleFactors::from_bounds(-3.0, 3.0, 0.02);
    let set = kpm_moments(&h, sf, &params(256, 8), KpmVariant::AugSpmmv).unwrap();
    let dos = reconstruct(&set, Kernel::Jackson, sf, 2048);
    let at_zero = dos.value_at(0.0);
    let at_vanhove = dos.value_at(1.0).max(dos.value_at(-1.0));
    assert!(
        at_vanhove > 4.0 * at_zero,
        "van Hove {at_vanhove} vs Dirac point {at_zero}"
    );
    // Particle-hole symmetry of the reconstruction.
    assert!((dos.value_at(0.7) - dos.value_at(-0.7)).abs() < 0.1 * dos.value_at(0.7));
    assert!((dos.integral() - 1.0).abs() < 0.02);
}

#[test]
fn wave_packet_spreads_under_evolution() {
    // Chebyshev propagation on the TI: a site-localized packet must
    // spread (participation ratio grows) while the norm stays 1.
    use kpm_repro::core::evolution::evolve;
    use kpm_repro::num::{Complex64, Vector};
    let h = TopoHamiltonian::clean(6, 6, 3).assemble();
    let sf = ScaleFactors::from_gershgorin(&h, 0.01);
    let n = h.nrows();
    let mut data = vec![Complex64::default(); n];
    data[4 * 20] = Complex64::real(1.0);
    let psi0 = Vector::from_vec(data);
    let participation = |v: &Vector| -> f64 {
        let p4: f64 = v.as_slice().iter().map(|z| z.norm_sqr().powi(2)).sum();
        1.0 / p4
    };
    let psi_t = evolve(&h, sf, &psi0, 3.0);
    assert!((psi_t.norm() - 1.0).abs() < 1e-10);
    assert!(
        participation(&psi_t) > 5.0 * participation(&psi0),
        "packet must spread: {} -> {}",
        participation(&psi0),
        participation(&psi_t)
    );
}
