//! Integration: the distributed heterogeneous executor reproduces the
//! shared-memory solver bit-for-bit in physics content across rank
//! counts, weight distributions and reduction policies.

use kpm_repro::core::dos::reconstruct;
use kpm_repro::core::solver::{kpm_moments, KpmParams, KpmVariant};
use kpm_repro::core::Kernel;
use kpm_repro::hetsim::dist::distributed_kpm;
use kpm_repro::hetsim::partition_rows;
use kpm_repro::topo::{ScaleFactors, TopoHamiltonian};

fn params(m: usize, r: usize) -> KpmParams {
    KpmParams {
        num_moments: m,
        num_random: r,
        seed: 31337,
        parallel: false,
        threads: 0,
        power: 1,
        first_touch: false,
    }
}

#[test]
fn rank_count_sweep_matches_reference() {
    let h = TopoHamiltonian::clean(6, 4, 3).assemble();
    let sf = ScaleFactors::from_gershgorin(&h, 0.01);
    let p = params(32, 3);
    let reference = kpm_moments(&h, sf, &p, KpmVariant::AugSpmmv).unwrap();
    for ranks in [1usize, 2, 3, 5, 8] {
        let weights = vec![1.0; ranks];
        let report = distributed_kpm(&h, sf, &p, &weights, false).unwrap();
        assert!(
            reference.max_abs_diff(&report.moments) < 1e-9,
            "ranks = {ranks}: diff = {}",
            reference.max_abs_diff(&report.moments)
        );
    }
}

#[test]
fn extreme_weight_skew_still_correct() {
    let h = TopoHamiltonian::clean(4, 4, 4).assemble();
    let sf = ScaleFactors::from_gershgorin(&h, 0.01);
    let p = params(16, 2);
    let reference = kpm_moments(&h, sf, &p, KpmVariant::AugSpmmv).unwrap();
    // A 20:1 device-speed ratio.
    let report = distributed_kpm(&h, sf, &p, &[20.0, 1.0], false).unwrap();
    assert!(reference.max_abs_diff(&report.moments) < 1e-9);
}

#[test]
fn distributed_dos_equals_shared_memory_dos() {
    let h = TopoHamiltonian::quantum_dot_superlattice(6, 6, 2).assemble();
    let sf = ScaleFactors::from_gershgorin(&h, 0.01);
    let p = params(64, 4);
    let shared = kpm_moments(&h, sf, &p, KpmVariant::AugSpmmv).unwrap();
    let dist = distributed_kpm(&h, sf, &p, &[1.0, 2.0, 1.5], false).unwrap();
    let dos_a = reconstruct(&shared, Kernel::Jackson, sf, 512);
    let dos_b = reconstruct(&dist.moments, Kernel::Jackson, sf, 512);
    for (a, b) in dos_a.values.iter().zip(&dos_b.values) {
        assert!((a - b).abs() < 1e-8);
    }
}

#[test]
fn reduction_policy_does_not_change_results() {
    let h = TopoHamiltonian::clean(5, 5, 2).assemble();
    let sf = ScaleFactors::from_gershgorin(&h, 0.01);
    let p = params(24, 3);
    let end = distributed_kpm(&h, sf, &p, &[1.0, 1.3, 0.6], false).unwrap();
    let star = distributed_kpm(&h, sf, &p, &[1.0, 1.3, 0.6], true).unwrap();
    assert!(end.moments.max_abs_diff(&star.moments) < 1e-10);
    assert!(star.global_reductions > end.global_reductions);
}

#[test]
fn partition_respects_weights_and_covers() {
    let ranges = partition_rows(4000, &[1.0, 2.0, 1.0], 4);
    assert_eq!(ranges[0].0, 0);
    assert_eq!(ranges.last().unwrap().1, 4000);
    let sizes: Vec<usize> = ranges.iter().map(|(b, e)| e - b).collect();
    assert!(sizes[1] > sizes[0] && sizes[1] > sizes[2]);
    let total: usize = sizes.iter().sum();
    assert_eq!(total, 4000);
}

#[test]
fn halo_traffic_counts_match_plan() {
    // The reported halo volume must equal (iterations + init) times the
    // per-sweep plan volume summed over ranks.
    let h = TopoHamiltonian::clean(4, 4, 4).assemble();
    let sf = ScaleFactors::from_gershgorin(&h, 0.01);
    let p = params(16, 2);
    let report = distributed_kpm(&h, sf, &p, &[1.0, 1.0], false).unwrap();
    let ranges = partition_rows(h.nrows(), &[1.0, 1.0], 4);
    let parts = kpm_repro::hetsim::decomp::decompose(&h, &ranges);
    let per_sweep: u64 = parts
        .iter()
        .map(|q| q.send_bytes_per_sweep(p.num_random))
        .sum();
    let exchanges = (p.iterations() + 1) as u64; // init + loop sweeps
    assert_eq!(report.halo_bytes, per_sweep * exchanges);
}
