//! Tier-1 static-analysis gate.
//!
//! Two hard guarantees ride in this suite:
//!
//! 1. **The workspace is lint-clean**: `kpm-analyze` finds zero
//!    diagnostics over every crate — the token rules (panic paths,
//!    undocumented `unsafe`, hot-loop allocations, relaxed stores,
//!    doc coverage, kpm-obs gating) plus the AST/call-graph dataflow
//!    passes (`lock_order`, `atomic_order`, `det_reduce`,
//!    `panic_path`, `blocking_in_hot`) and the stale-suppression
//!    audit. Any regression fails CI here (and in
//!    `scripts/verify.sh`, which also runs the CLI against the
//!    `ANALYZE_BASELINE.txt` ratchet and emits SARIF).
//! 2. **The hetsim runtime protocol model is verified**: the schedule
//!    explorer exhausts ≥1000 distinct interleavings of the 2-rank
//!    send/recv/dedup model (and a 3-rank pipeline under a preemption
//!    bound), proving deadlock-freedom and exactly-once delivery, and
//!    demonstrably *catches* seeded protocol bugs (deadlock, dedup
//!    removal, message loss, checkpoint regression).

use std::path::Path;

use kpm_analyze::run_workspace;
use kpm_analyze::sched::{self, Config, Violation};

fn workspace_root() -> &'static Path {
    Path::new(env!("CARGO_MANIFEST_DIR"))
}

#[test]
fn workspace_is_lint_clean() {
    let (diags, files_scanned) = run_workspace(workspace_root()).expect("workspace scan");
    assert!(
        files_scanned > 50,
        "suspiciously few files scanned ({files_scanned}); did the walker break?"
    );
    let rendered: Vec<String> = diags.iter().map(|d| d.render()).collect();
    assert!(
        diags.is_empty(),
        "kpm-analyze found {} diagnostic(s):\n{}",
        diags.len(),
        rendered.join("\n")
    );
}

#[test]
fn committed_baseline_parses_and_carries_no_stale_entries() {
    // The ratchet file must stay machine-readable, and every entry in
    // it must still match a live finding — a fixed finding's entry is
    // supposed to be deleted, not left to mask a future regression.
    let text = std::fs::read_to_string(workspace_root().join("ANALYZE_BASELINE.txt"))
        .expect("ANALYZE_BASELINE.txt is committed at the workspace root");
    let entries = kpm_analyze::baseline::parse(&text)
        .unwrap_or_else(|line| panic!("malformed baseline entry at line {line}"));
    let (diags, _) = run_workspace(workspace_root()).expect("workspace scan");
    let applied = kpm_analyze::baseline::apply(&diags, &entries);
    assert!(
        applied.stale.is_empty(),
        "stale baseline entries (findings fixed — delete the lines): {:?}",
        applied.stale
    );
}

#[test]
fn two_rank_protocol_exactly_once_and_deadlock_free() {
    // 8 logical messages plus one fault-injected duplicate of seq 3:
    // the dedup filter must make delivery exactly-once on EVERY
    // schedule, and some thread must always be runnable.
    let threads = sched::two_rank_dedup_model(8, Some(3));
    let report = sched::explore(&threads, &Config::default());
    assert!(
        report.clean(),
        "protocol violation: {:?}",
        report.counterexamples
    );
    assert!(!report.truncated, "interleaving budget too small");
    assert!(
        report.interleavings >= 1000,
        "only {} distinct interleavings explored; acceptance floor is 1000",
        report.interleavings
    );
}

#[test]
fn three_rank_pipeline_holds_under_preemption_bound() {
    let threads = sched::three_rank_pipeline_model();
    let report = sched::explore(
        &threads,
        &Config {
            preemption_bound: Some(3),
            ..Config::default()
        },
    );
    assert!(
        report.clean(),
        "protocol violation: {:?}",
        report.counterexamples
    );
    assert!(!report.truncated);
    assert!(report.interleavings >= 100, "only {}", report.interleavings);
}

#[test]
fn explorer_detects_seeded_protocol_bugs() {
    // Deadlock: both ranks recv before sending.
    let report = sched::explore(&sched::deadlock_model(), &Config::default());
    assert!(report.deadlocks > 0, "deadlock not detected");
    assert!(matches!(
        report.counterexamples[0].violation,
        Violation::Deadlock
    ));
    assert!(
        !report.counterexamples[0].trace.is_empty() || report.interleavings == 1,
        "deadlock counterexample should carry a schedule trace"
    );

    // Dedup removed: the duplicated send is delivered twice on every
    // schedule.
    let threads = sched::two_rank_dedup_model(3, Some(1));
    let report = sched::explore(
        &threads,
        &Config {
            model_dedup: false,
            ..Config::default()
        },
    );
    assert!(report.double_deliveries > 0, "double delivery not detected");

    // Lossy receive: timeout schedules strand the message.
    let report = sched::explore(&sched::lost_message_model(), &Config::default());
    assert!(report.lost_messages > 0, "lost message not detected");

    // Unguarded checkpoint writers: the version can regress.
    let report = sched::explore(&sched::racing_checkpoint_model(), &Config::default());
    assert!(
        report.version_regressions > 0,
        "version regression not detected"
    );
}
