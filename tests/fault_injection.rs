//! Tier-1 fault-injection and recovery suite.
//!
//! Exercises the resilience contract end to end: lossless message faults
//! (duplication, delay) must not change a single bit of the Chebyshev
//! moments; a rank crash mid-run must be survived via checkpoint/restart
//! with the recovered moments matching an uninterrupted run; and failure
//! detection (receive deadlines, stash bounds, spectral guardrails) must
//! produce typed errors instead of hangs or panics.

use std::sync::Arc;
use std::time::{Duration, Instant};

use kpm_repro::core::checkpoint::{latest_consistent, MemoryCheckpointStore};
use kpm_repro::core::solver::{
    kpm_moments, kpm_moments_checkpointed, KpmParams, KpmVariant, SolverCheckpointing,
};
use kpm_repro::hetsim::dist::{
    distributed_kpm, distributed_kpm_faulty, distributed_kpm_resilient, ResilienceConfig,
    RestartStrategy,
};
use kpm_repro::hetsim::{FaultPlan, World, WorldConfig};
use kpm_repro::num::{Complex64, KpmError};
use kpm_repro::topo::model::random_hermitian;
use kpm_repro::topo::{ScaleFactors, TopoHamiltonian};

fn params(m: usize, r: usize, seed: u64) -> KpmParams {
    KpmParams {
        num_moments: m,
        num_random: r,
        seed,
        parallel: false,
        threads: 0,
        power: 1,
        first_touch: false,
    }
}

/// Lossless faults (duplication + delay) leave the distributed moments
/// bitwise identical to the fault-free run — exactly-once delivery in
/// property-test form, swept over seeds.
#[test]
fn lossless_faults_preserve_moments_bitwise() {
    let h = TopoHamiltonian::clean(4, 4, 2).assemble();
    let sf = ScaleFactors::from_gershgorin(&h, 0.01);
    let p = params(16, 2, 1234);
    let clean = distributed_kpm(&h, sf, &p, &[1.0, 1.0, 1.0], false).unwrap();
    for fault_seed in 0..6u64 {
        let plan = Arc::new(
            FaultPlan::new(fault_seed)
                .with_message_duplication(0.4)
                .with_message_delays(0.4, Duration::from_millis(5)),
        );
        let faulty =
            distributed_kpm_faulty(&h, sf, &p, &[1.0, 1.0, 1.0], false, Some(Arc::clone(&plan)))
                .unwrap();
        assert_eq!(
            clean.moments.as_slice(),
            faulty.moments.as_slice(),
            "seed {fault_seed}: lossless faults changed the moments"
        );
        let s = plan.stats();
        assert!(
            s.duplicated + s.delayed > 0,
            "seed {fault_seed} injected nothing — test is vacuous"
        );
    }
}

/// The headline acceptance scenario: a rank crash at iteration M/2 in a
/// distributed DOS run is survived through checkpoint/restart, and the
/// recovered moments match the fault-free run to < 1e-10.
#[test]
fn rank_crash_at_half_m_recovers_via_checkpoint() {
    let h = random_hermitian(200, 4, 5);
    let sf = ScaleFactors::from_gershgorin(&h, 0.01);
    let p = params(32, 2, 99); // 15 sweeps
    let reference = kpm_moments(&h, sf, &p, KpmVariant::AugSpmmv).unwrap();
    let crash_at = p.iterations() / 2;
    let plan = Arc::new(FaultPlan::new(7).with_rank_crash(1, crash_at));
    let store = MemoryCheckpointStore::new();
    let cfg = ResilienceConfig {
        checkpoint_interval: 3,
        recv_timeout: Duration::from_millis(500),
        max_restarts: 2,
        restart: RestartStrategy::SameRanks,
    };
    let res = distributed_kpm_resilient(&h, sf, &p, &[1.0, 1.0], Some(plan), &cfg, &store)
        .expect("crash must be survived");
    assert_eq!(res.restarts, 1);
    assert!(
        !res.resumed_from.is_empty() && res.resumed_from[0] > 0,
        "restarted from scratch"
    );
    let diff = reference.max_abs_diff(&res.report.moments);
    assert!(diff < 1e-10, "recovered moments diverged by {diff}");
}

/// A receive aimed at a crashed peer returns a typed timeout error
/// within (roughly) the configured deadline instead of hanging.
#[test]
fn recv_on_crashed_peer_times_out_within_deadline() {
    let deadline = Duration::from_millis(150);
    let outcome = World::run_config(
        WorldConfig::new(2).with_faults(Arc::new(FaultPlan::new(0).with_rank_crash(1, 0))),
        |mut comm| {
            if comm.rank() == 1 {
                comm.crash_point(0)?;
                unreachable!("rank 1 is scheduled to crash at iteration 0");
            }
            let t0 = Instant::now();
            let err = comm
                .recv_timeout(1, 42, deadline)
                .expect_err("rank 1 is dead; recv must fail");
            let waited = t0.elapsed();
            assert!(
                matches!(
                    err,
                    KpmError::RankUnreachable {
                        peer: 1,
                        tag: 42,
                        ..
                    }
                ),
                "{err:?}"
            );
            assert!(
                waited >= deadline,
                "returned before the deadline: {waited:?}"
            );
            assert!(
                waited < deadline + Duration::from_secs(2),
                "deadline overshot: {waited:?}"
            );
            Ok(0u8)
        },
    );
    assert!(matches!(
        outcome.results[1],
        Err(KpmError::RankCrashed { rank: 1 })
    ));
    assert!(outcome.results[0].is_ok());
}

/// Checkpoint write → crash → resume on the shared-memory solver
/// reproduces the uninterrupted moments to < 1e-12 (bitwise, in fact),
/// and the store only retains consistent restart points.
#[test]
fn checkpoint_crash_resume_roundtrip() {
    let h = random_hermitian(120, 4, 17);
    let sf = ScaleFactors::from_gershgorin(&h, 0.01);
    let p = params(48, 3, 4321); // 23 sweeps
    let straight = kpm_moments(&h, sf, &p, KpmVariant::AugSpmmv).unwrap();

    let store = MemoryCheckpointStore::new();
    let crashing = SolverCheckpointing {
        store: &store,
        interval: 4,
        crash_at: Some(p.iterations() / 2),
    };
    let err =
        kpm_moments_checkpointed(&h, sf, &p, &crashing).expect_err("injected crash must surface");
    assert!(matches!(err, KpmError::RankCrashed { .. }), "{err:?}");
    let resume_at = latest_consistent(&store, h.nrows())
        .unwrap()
        .expect("a checkpoint must exist before the crash");
    assert!(resume_at > 0 && resume_at <= p.iterations() / 2);

    // Second call resumes from the stored state (crash_at only fires on
    // fresh runs) and must agree with the uninterrupted solve.
    let resumed = kpm_moments_checkpointed(&h, sf, &p, &crashing).unwrap();
    let diff = straight.max_abs_diff(&resumed);
    assert!(diff < 1e-12, "resume drifted by {diff}");
}

/// A corrupt checkpoint file — a truncated write or garbage bytes under
/// a checkpoint name — must not abort restart discovery:
/// `latest_consistent` skips the damaged record, lets the tiling check
/// disqualify the iteration, and falls back to the previous consistent
/// state. Direct loads still surface the damage as a typed error.
#[test]
fn corrupt_checkpoint_files_fall_back_to_older_consistent_state() {
    use kpm_repro::core::checkpoint::{
        CheckpointStore, DirCheckpointStore, EtaCheckpoint, RankCheckpoint,
    };

    let dir = std::env::temp_dir().join(format!("kpm-fault-ckpt-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store = DirCheckpointStore::new(&dir).expect("create store");
    let n = 20usize;
    let width = 2usize;
    let save_full = |iteration: usize| {
        for rank in 0..2usize {
            let rows = n / 2;
            let begin = rank * rows;
            store
                .save_rank(&RankCheckpoint {
                    iteration,
                    rank,
                    row_begin: begin,
                    row_end: begin + rows,
                    width,
                    halo_sent: 0,
                    v: vec![Complex64::real(1.0); rows * width],
                    w: vec![Complex64::real(2.0); rows * width],
                })
                .expect("save rank");
        }
        store
            .save_eta(&EtaCheckpoint {
                iteration,
                width,
                eta: vec![Complex64::real(0.5); EtaCheckpoint::expected_len(iteration, width)],
            })
            .expect("save eta");
    };
    save_full(4);
    save_full(8);
    assert_eq!(latest_consistent(&store, n).unwrap(), Some(8));

    // Truncate one rank record of the newest iteration: its tiling of
    // 0..n breaks, so discovery falls back to 4 instead of erroring.
    let victim = dir.join("rank-00000008-0000.ckpt");
    let bytes = std::fs::read(&victim).expect("read victim");
    std::fs::write(&victim, &bytes[..bytes.len() / 2]).expect("truncate victim");
    assert_eq!(latest_consistent(&store, n).unwrap(), Some(4));

    // Direct loads still report the damage as typed corruption.
    let err = store
        .load_rank(8, 0)
        .expect_err("truncated record must decode to a typed error");
    assert!(matches!(err, KpmError::CheckpointCorrupt { .. }), "{err:?}");

    // Replace the η record at 4 with garbage: iteration 4 is
    // disqualified too and no consistent restart point remains.
    std::fs::write(dir.join("eta-00000004.ckpt"), b"not a checkpoint at all")
        .expect("write garbage");
    assert_eq!(latest_consistent(&store, n).unwrap(), None);
    let _ = std::fs::remove_dir_all(&dir);
}

/// The out-of-order stash is bounded: a rank flooded with messages it
/// never consumes reports `StashOverflow` instead of growing without
/// limit.
#[test]
fn message_storm_hits_stash_bound() {
    let outcome = World::run_config(
        WorldConfig::new(2)
            .with_stash_capacity(8)
            .with_recv_timeout(Duration::from_millis(250)),
        |mut comm| {
            if comm.rank() == 0 {
                for tag in 0..32u64 {
                    comm.send(1, tag, vec![Complex64::real(tag as f64)])?;
                }
                return Ok(0usize);
            }
            // Rank 1 waits for a tag rank 0 never sends; the storm of
            // unconsumed tags must trip the stash bound first.
            match comm.recv(0, u64::MAX) {
                Err(KpmError::StashOverflow {
                    rank: 1,
                    capacity: 8,
                }) => Ok(1),
                other => panic!("expected stash overflow, got {other:?}"),
            }
        },
    );
    // Overflow is an application-visible error, not a world failure.
    assert!(outcome.results.iter().all(|r| r.is_ok()));
}

/// The numerical guardrail: feeding the solver a matrix scaled *outside*
/// [-1, 1] makes the Chebyshev recurrence blow up, which must surface as
/// a typed `SpectralBoundsViolated` (carrying the offending iteration)
/// rather than silent garbage or a panic.
#[test]
fn unscaled_spectrum_trips_divergence_guardrail() {
    let h = random_hermitian(96, 4, 23);
    // Deliberately wrong scale factors: pretend the spectrum fits in
    // [-0.05, 0.05] so the scaled operator has norm >> 1.
    let sf = ScaleFactors::from_bounds(-0.05, 0.05, 0.0);
    let p = params(64, 2, 5);
    let err = kpm_moments(&h, sf, &p, KpmVariant::AugSpmmv)
        .expect_err("divergent recurrence must be detected");
    match err {
        KpmError::SpectralBoundsViolated {
            iteration,
            value,
            bound,
        } => {
            assert!(iteration < p.iterations());
            assert!(value > bound);
        }
        KpmError::NonFinite { .. } => {} // overflow straight to inf is fine too
        other => panic!("expected a guardrail error, got {other:?}"),
    }
}

/// Dropped (lossy) faults are *detected*: the run fails with a typed
/// timeout error instead of hanging, and the leak ledger accounts for
/// the vanished messages.
#[test]
fn lossy_faults_fail_loud_not_silent() {
    let h = TopoHamiltonian::clean(4, 4, 2).assemble();
    let sf = ScaleFactors::from_gershgorin(&h, 0.01);
    let p = params(16, 2, 1234);
    // Drop half of all messages; with halo exchanges every sweep this is
    // certain to hit quickly.
    let plan = Arc::new(FaultPlan::new(11).with_message_drops(0.5));
    let err = distributed_kpm_faulty(&h, sf, &p, &[1.0, 1.0], false, Some(plan))
        .expect_err("a lossy network must surface an error");
    assert!(
        matches!(
            err,
            KpmError::RankUnreachable { .. }
                | KpmError::SendFailed { .. }
                | KpmError::MessageLeak { .. }
        ),
        "{err:?}"
    );
}
