//! Integration tests for the Section VII (outlook) extensions: the
//! automatic weight tuner feeding the distributed solver, the pipelined
//! cluster model, the multi-level ECM roofline driven by simulated
//! traffic, and the width-specialized kernel dispatch inside the
//! production solver.

use kpm_repro::core::solver::{kpm_moments, KpmParams, KpmVariant};
use kpm_repro::hetsim::autotune::{balance_with_model, imbalance, weights_from_rates};
use kpm_repro::hetsim::cluster::{ClusterModel, Domain};
use kpm_repro::hetsim::dist::distributed_kpm;
use kpm_repro::hetsim::node::{cpu_performance, gpu_performance, Stage};
use kpm_repro::perfmodel::ecm::{levels_from_traffic, predict};
use kpm_repro::perfmodel::machine::{IVB, SNB};
use kpm_repro::simgpu::GpuDevice;
use kpm_repro::topo::{ScaleFactors, TopoHamiltonian};

#[test]
fn auto_weights_from_modelled_rates_balance_the_distributed_solver() {
    // The full outlook workflow: model the per-device rates, derive
    // weights automatically, run the functional distributed solver with
    // them, and verify the physics is untouched.
    let h = TopoHamiltonian::clean(4, 4, 3).assemble();
    let sf = ScaleFactors::from_gershgorin(&h, 0.01);
    let bench = TopoHamiltonian::clean(16, 8, 4).assemble();

    let cpu_rate = cpu_performance(&SNB, Stage::Stage2, 32, SNB.cores - 1, 1.3);
    let gpu_rate = gpu_performance(&GpuDevice::k20x(), Stage::Stage2, 32, &bench);
    let weights = weights_from_rates(&[cpu_rate, gpu_rate]);
    assert!(weights[1] > weights[0], "GPU must get the larger share");

    let p = KpmParams {
        num_moments: 24,
        num_random: 2,
        seed: 42,
        parallel: false,
        threads: 0,
        power: 1,
        first_touch: false,
    };
    let reference = kpm_moments(&h, sf, &p, KpmVariant::AugSpmmv).unwrap();
    let dist = distributed_kpm(&h, sf, &p, &weights, false).unwrap();
    assert!(reference.max_abs_diff(&dist.moments) < 1e-9);
}

#[test]
fn refinement_balances_the_modelled_heterogeneous_node() {
    // Iterative refinement against the node model's own cost function:
    // converges to < 0.5% imbalance within a few steps.
    let bench = TopoHamiltonian::clean(16, 8, 4).assemble();
    let cpu_rate = cpu_performance(&SNB, Stage::Stage2, 32, SNB.cores - 1, 1.3);
    let gpu_rate = gpu_performance(&GpuDevice::k20x(), Stage::Stage2, 32, &bench);
    let model = move |w: f64, rank: usize| -> f64 {
        let speed = [cpu_rate, gpu_rate][rank];
        w / speed
    };
    let (weights, trace) = balance_with_model(&[1.0, 1.0], model, 5e-3, 20);
    assert!(trace.last().unwrap() < &5e-3);
    let times = [weights[0] / cpu_rate, weights[1] / gpu_rate];
    assert!(imbalance(&times) < 5e-3);
}

#[test]
fn pipelined_cluster_beats_blocking_cluster_everywhere() {
    let bench = TopoHamiltonian::clean(32, 16, 8).assemble();
    let plain = ClusterModel::piz_daint(&bench, 32);
    let piped = ClusterModel::piz_daint(&bench, 32).with_pipelining();
    for nodes in [4usize, 64, 1024] {
        let sq_plain = plain.weak_scaling_square(nodes).expect("optimized stage");
        let sq_piped = piped.weak_scaling_square(nodes).expect("optimized stage");
        let (a, b) = (sq_plain.last().unwrap(), sq_piped.last().unwrap());
        assert!(
            b.tflops >= a.tflops,
            "{nodes} nodes: {} vs {}",
            b.tflops,
            a.tflops
        );
    }
}

#[test]
fn ecm_model_agrees_with_custom_roofline_in_the_single_level_limit() {
    use kpm_repro::perfmodel::cachesim::TrafficReport;
    use kpm_repro::perfmodel::roofline::custom_roofline;
    // Build a traffic report equivalent to B = 2.23 B/F at 1 Gflop.
    let flops = 1_000_000_000u64;
    let bytes = (2.2318840579710146_f64 * flops as f64) as u64;
    let report = TrafficReport {
        level_bytes: vec![],
        memory_bytes: bytes,
    };
    let levels = levels_from_traffic(&IVB, &report, &[], &[]);
    let ecm = predict(IVB.peak_gflops, &levels, flops);
    let classic = custom_roofline(&IVB, 13.0, 1, 1.0);
    assert!((ecm.p_star - classic.p_mem).abs() < 0.1);
    assert_eq!(ecm.binding, "MEM");
}

#[test]
fn specialized_dispatch_active_in_solver_for_paper_widths() {
    // R = 32 (the paper's production width) runs through the
    // const-generic specialization; a non-specialized width falls back.
    // Both must give moments identical to the parallel kernel path.
    use kpm_repro::sparse::gen::has_specialization;
    assert!(has_specialization(32));
    assert!(!has_specialization(12));
    let h = TopoHamiltonian::clean(4, 4, 2).assemble();
    let sf = ScaleFactors::from_gershgorin(&h, 0.01);
    for r in [12usize, 32] {
        let serial = kpm_moments(
            &h,
            sf,
            &KpmParams {
                num_moments: 16,
                num_random: r,
                seed: 9,
                parallel: false,
                threads: 0,
                power: 1,
                first_touch: false,
            },
            KpmVariant::AugSpmmv,
        )
        .unwrap();
        let parallel = kpm_moments(
            &h,
            sf,
            &KpmParams {
                num_moments: 16,
                num_random: r,
                seed: 9,
                parallel: true,
                threads: 0,
                power: 1,
                first_touch: false,
            },
            KpmVariant::AugSpmmv,
        )
        .unwrap();
        assert!(serial.max_abs_diff(&parallel) < 1e-9, "R={r}");
    }
}

#[test]
fn phi_outlook_prediction_is_llc_bound() {
    // The question the paper leaves open ("we still have to carry out
    // detailed model-driven performance engineering for [Xeon Phi]"):
    // the model answers that blocked KPM on KNC is LLC-bound.
    use kpm_repro::perfmodel::balance::min_code_balance;
    use kpm_repro::perfmodel::machine::PHI;
    use kpm_repro::perfmodel::roofline::{memory_bound, roofline_llc};
    let b32 = min_code_balance(13.0, 32);
    assert!(memory_bound(&PHI, b32) > PHI.llc_ceiling_gflops);
    assert_eq!(roofline_llc(&PHI, b32), PHI.llc_ceiling_gflops);
}

#[test]
fn domain_row_accounting() {
    let d = Domain {
        nx: 400,
        ny: 100,
        nz: 40,
    };
    assert_eq!(d.rows(), 6_400_000);
}
