//! Tier-1 suite for the KPM service runtime.
//!
//! Covers the service contract end to end: batched block solves are
//! bitwise identical to the serial solver for any batch composition,
//! repeat queries answer from the moment cache, backpressure and
//! past-deadline rejections are typed and carry a `retry_after` hint,
//! overload and solve-deadline pressure degrade gracefully (explicit
//! annotation, quantified broadening penalty), and both shutdown modes
//! reply to every admitted request.

use std::time::Duration;

use kpm_repro::core::kernels::Kernel;
use kpm_repro::core::ldos::site_moments;
use kpm_repro::core::moments::MomentSet;
use kpm_repro::core::solver::{moments_from_start, starting_vectors, KpmParams};
use kpm_repro::service::{
    Admission, Answer, ChaosPlan, Outcome, QueryKind, RejectReason, Request, Response, Service,
    ServiceConfig, ShutdownMode, Ticket,
};
use kpm_repro::sparse::{CrsMatrix, KpmMatrix};
use kpm_repro::topo::{ScaleFactors, TopoHamiltonian};

fn test_matrix() -> (CrsMatrix, ScaleFactors) {
    let h = TopoHamiltonian::clean(3, 3, 2).assemble();
    let sf = ScaleFactors::from_gershgorin(&h, 0.01);
    (h, sf)
}

/// The serial ground truth for a trace query: accumulate
/// `moments_from_start` over the solver's own starting vectors.
fn serial_reference(h: &CrsMatrix, sf: ScaleFactors, seed: u64, r: usize, m: usize) -> MomentSet {
    let params = KpmParams {
        num_moments: m,
        num_random: r,
        seed,
        parallel: false,
        threads: 0,
        power: 1,
        first_touch: false,
    };
    let mut acc = MomentSet::zeros(m);
    for v in &starting_vectors(h.nrows(), &params) {
        acc.accumulate(&moments_from_start(h, sf, v, m, false).expect("serial solve"));
    }
    acc
}

fn answer_of(resp: &Response) -> &Answer {
    match &resp.outcome {
        Outcome::Success(a) => a,
        Outcome::Degraded { answer, .. } => answer,
        Outcome::Failed(e) => panic!("request {} failed: {e}", resp.id),
    }
}

fn submit_ok(svc: &Service, req: Request) -> Ticket {
    match svc.submit(req) {
        Admission::Admitted(t) => t,
        Admission::Rejected { reason, .. } => panic!("unexpected rejection: {reason:?}"),
    }
}

fn dos_request(fp: u64, seed: u64, num_random: usize, m: usize) -> Request {
    Request {
        matrix: fp,
        kind: QueryKind::Dos { seed, num_random },
        num_moments: m,
        kernel: Kernel::Jackson,
        points: 16,
        deadline: None,
    }
}

/// Batched block solves are bitwise the serial solver, for a batch
/// mixing DOS, LDOS and Green queries with different seeds, widths and
/// moment counts — the service's central correctness guarantee.
#[test]
fn batched_answers_bitwise_match_serial_for_mixed_batches() {
    let (h, sf) = test_matrix();
    for parallel_solve in [false, true] {
        let svc = Service::start(ServiceConfig {
            workers: 2,
            batch_window: Duration::from_millis(2),
            parallel_solve,
            ..ServiceConfig::default()
        });
        let fp = svc.register_matrix(KpmMatrix::crs(h.clone()), sf);

        // Submit the whole mixed batch before waiting so the batcher
        // coalesces it into block solves.
        let t_dos_a = submit_ok(&svc, dos_request(fp, 1, 2, 32));
        let t_dos_b = submit_ok(&svc, dos_request(fp, 2, 1, 16));
        let t_ldos = submit_ok(
            &svc,
            Request {
                matrix: fp,
                kind: QueryKind::Ldos { site: 3 },
                num_moments: 32,
                kernel: Kernel::Jackson,
                points: 16,
                deadline: None,
            },
        );
        let t_green = submit_ok(
            &svc,
            Request {
                matrix: fp,
                kind: QueryKind::Green {
                    seed: 5,
                    num_random: 2,
                },
                num_moments: 24,
                kernel: Kernel::Lorentz(3.0),
                points: 16,
                deadline: None,
            },
        );

        let r_dos_a = t_dos_a.wait().expect("dos a reply");
        let r_dos_b = t_dos_b.wait().expect("dos b reply");
        let r_ldos = t_ldos.wait().expect("ldos reply");
        let r_green = t_green.wait().expect("green reply");

        assert_eq!(
            answer_of(&r_dos_a).moments.as_slice(),
            serial_reference(&h, sf, 1, 2, 32).as_slice(),
            "parallel={parallel_solve}: batched DOS moments differ from serial"
        );
        assert_eq!(
            answer_of(&r_dos_b).moments.as_slice(),
            serial_reference(&h, sf, 2, 1, 16).as_slice(),
            "parallel={parallel_solve}: mixed-M member differs from serial"
        );
        assert_eq!(
            answer_of(&r_ldos).moments.as_slice(),
            site_moments(&h, sf, 3, 32).expect("serial ldos").as_slice(),
            "parallel={parallel_solve}: batched LDOS moments differ from site_moments"
        );
        assert_eq!(
            answer_of(&r_green).moments.as_slice(),
            serial_reference(&h, sf, 5, 2, 24).as_slice(),
            "parallel={parallel_solve}: batched Green moments differ from serial"
        );

        let ledger = svc.shutdown(ShutdownMode::Drain);
        assert!(ledger.consistent(), "ledger must balance: {ledger:?}");
        assert_eq!(ledger.admitted, 4);
    }
}

/// A repeat of an identical query answers from the moment cache —
/// bitwise the same moments, flagged as a cache hit, no second solve.
#[test]
fn repeat_queries_answer_from_the_moment_cache() {
    let (h, sf) = test_matrix();
    let svc = Service::start(ServiceConfig::default());
    let fp = svc.register_matrix(KpmMatrix::crs(h.clone()), sf);

    let first = submit_ok(&svc, dos_request(fp, 9, 1, 32))
        .wait()
        .expect("first");
    assert!(!first.stats.cache_hit);
    let second = submit_ok(&svc, dos_request(fp, 9, 1, 32))
        .wait()
        .expect("second");
    assert!(
        second.stats.cache_hit,
        "identical repeat must hit the cache"
    );
    assert_eq!(
        answer_of(&first).moments.as_slice(),
        answer_of(&second).moments.as_slice(),
        "cached answer must be bitwise the solved answer"
    );

    // A shorter repeat is served from the same entry (moment prefixes
    // are bitwise shorter runs); it is full quality, not degraded.
    let shorter = submit_ok(&svc, dos_request(fp, 9, 1, 16))
        .wait()
        .expect("shorter");
    assert!(shorter.stats.cache_hit && !shorter.is_degraded());
    assert_eq!(
        answer_of(&shorter).moments.as_slice(),
        &answer_of(&first).moments.as_slice()[..16],
    );
    svc.shutdown(ShutdownMode::Drain);
}

/// A deadline that cannot survive the batching window is rejected at
/// admission with a positive `retry_after` hint, not admitted and
/// doomed.
#[test]
fn past_deadline_requests_are_rejected_with_retry_after() {
    let (h, sf) = test_matrix();
    let svc = Service::start(ServiceConfig::default());
    let fp = svc.register_matrix(KpmMatrix::crs(h), sf);
    let mut req = dos_request(fp, 1, 1, 16);
    req.deadline = Some(Duration::ZERO);
    match svc.submit(req) {
        Admission::Rejected {
            retry_after,
            reason,
        } => {
            assert_eq!(reason, RejectReason::PastDeadline);
            assert!(retry_after > Duration::ZERO, "hint must be actionable");
        }
        Admission::Admitted(_) => panic!("zero-deadline request must be rejected"),
    }
    let ledger = svc.shutdown(ShutdownMode::Drain);
    assert_eq!(ledger.rejected, 1);
    assert!(ledger.consistent());
}

/// A full admission queue sheds load with typed `QueueFull` rejections
/// while every admitted request still gets its reply.
#[test]
fn queue_full_backpressure_is_explicit_and_lossless() {
    let (h, sf) = test_matrix();
    let svc = Service::start(ServiceConfig {
        workers: 1,
        queue_capacity: 2,
        chaos: Some(ChaosPlan::new(1).with_slow_solver(1.0, Duration::from_millis(10))),
        ..ServiceConfig::default()
    });
    let fp = svc.register_matrix(KpmMatrix::crs(h), sf);

    let mut tickets = Vec::new();
    let mut rejections = 0u64;
    for i in 0..30 {
        match svc.submit(dos_request(fp, i, 1, 8)) {
            Admission::Admitted(t) => tickets.push(t),
            Admission::Rejected {
                retry_after,
                reason,
            } => {
                assert_eq!(reason, RejectReason::QueueFull);
                assert!(retry_after > Duration::ZERO);
                rejections += 1;
            }
        }
    }
    assert!(
        rejections > 0,
        "a 30-burst against capacity 2 must shed load"
    );
    let admitted = tickets.len() as u64;
    for t in &tickets {
        assert!(
            t.wait_timeout(Duration::from_secs(30)).is_some(),
            "admitted request lost under backpressure"
        );
    }
    let ledger = svc.shutdown(ShutdownMode::Drain);
    assert_eq!(ledger.admitted, admitted);
    assert_eq!(ledger.rejected, rejections);
    assert!(ledger.consistent());
}

/// When the solve blows its deadline but the cache holds a shorter run
/// for the same query, the service degrades gracefully: the reply is a
/// valid truncated-`M` answer with `degraded: true` and the broadening
/// penalty quantified, bitwise equal to a serial run at the served `M`.
#[test]
fn solve_deadline_degrades_to_a_cached_shorter_answer() {
    let (h, sf) = test_matrix();
    let svc = Service::start(ServiceConfig {
        workers: 1,
        // Every solve attempt is slowed past the tight deadline below.
        chaos: Some(ChaosPlan::new(2).with_slow_solver(1.0, Duration::from_millis(40))),
        hedge_after: None,
        ..ServiceConfig::default()
    });
    let fp = svc.register_matrix(KpmMatrix::crs(h.clone()), sf);

    // Warm the cache at M=32 (the slow solver delays but the default
    // deadline absorbs it).
    let warm = submit_ok(&svc, dos_request(fp, 4, 1, 32))
        .wait()
        .expect("warm");
    assert!(!warm.is_degraded());

    // Now ask for M=64 with a deadline the injected slowdown must blow.
    let mut req = dos_request(fp, 4, 1, 64);
    req.deadline = Some(Duration::from_millis(25));
    let resp = submit_ok(&svc, req).wait().expect("degraded reply");
    match &resp.outcome {
        Outcome::Degraded { answer, info } => {
            assert!(info.from_cache);
            assert_eq!(info.requested_moments, 64);
            assert_eq!(info.served_moments, 32);
            assert!(info.extra_broadening > 0.0, "penalty must be quantified");
            assert_eq!(
                answer.moments.as_slice(),
                serial_reference(&h, sf, 4, 1, 32).as_slice(),
                "degraded answer must still be bitwise a serial run at the served M"
            );
        }
        other => panic!("expected a degraded cache answer, got {other:?}"),
    }
    let ledger = svc.shutdown(ShutdownMode::Drain);
    assert!(ledger.consistent());
    assert!(ledger.degraded >= 1);
}

/// Abort shutdown fails queued work fast — but every admitted request
/// still receives exactly one terminal reply before `shutdown` returns.
#[test]
fn abort_shutdown_replies_to_every_admitted_request() {
    let (h, sf) = test_matrix();
    let svc = Service::start(ServiceConfig {
        workers: 1,
        chaos: Some(ChaosPlan::new(3).with_slow_solver(1.0, Duration::from_millis(20))),
        ..ServiceConfig::default()
    });
    let fp = svc.register_matrix(KpmMatrix::crs(h), sf);
    let tickets: Vec<Ticket> = (0..8)
        .map(|i| submit_ok(&svc, dos_request(fp, i, 1, 16)))
        .collect();
    let ledger = svc.shutdown(ShutdownMode::Abort);
    assert_eq!(ledger.admitted, 8);
    assert!(
        ledger.consistent(),
        "abort must not lose replies: {ledger:?}"
    );
    for t in &tickets {
        let resp = t
            .wait_timeout(Duration::from_secs(5))
            .expect("terminal reply must be buffered before shutdown returns");
        // Exactly one reply per ticket.
        assert!(t.rx.try_recv().is_err());
        drop(resp);
    }
}

/// Structural garbage (unknown matrix, odd moment counts, out-of-range
/// sites) answers with typed errors through the normal reply path, so
/// the ledger stays uniform.
#[test]
fn invalid_requests_fail_typed_through_the_reply_path() {
    let (h, sf) = test_matrix();
    let svc = Service::start(ServiceConfig::default());
    let fp = svc.register_matrix(KpmMatrix::crs(h), sf);

    let unknown = submit_ok(&svc, dos_request(0xdead_beef, 1, 1, 16))
        .wait()
        .expect("typed reply");
    assert!(!unknown.is_answered());

    let mut odd = dos_request(fp, 1, 1, 15);
    odd.num_moments = 15;
    let odd_resp = submit_ok(&svc, odd).wait().expect("typed reply");
    assert!(!odd_resp.is_answered());

    let bad_site = submit_ok(
        &svc,
        Request {
            matrix: fp,
            kind: QueryKind::Ldos { site: 10_000 },
            num_moments: 16,
            kernel: Kernel::Jackson,
            points: 16,
            deadline: None,
        },
    )
    .wait()
    .expect("typed reply");
    assert!(!bad_site.is_answered());

    let ledger = svc.shutdown(ShutdownMode::Drain);
    assert_eq!(ledger.admitted, 3);
    assert!(ledger.consistent());
}
