//! Bitwise reproducibility of the solver under shared-memory
//! parallelism.
//!
//! The parallel kernels pin their reduction-tree boundaries to fixed,
//! caller-chosen chunk sizes — never to the thread count or to how the
//! work-stealing pool happened to split the range. These tests are the
//! contract: the moments of a KPM run are *bitwise identical* for any
//! worker-thread count and across repeated runs, for every solver
//! variant. `assert_eq!` on `f64` slices is deliberate; a 1-ulp
//! difference is a failure.

use kpm_repro::core::solver::{kpm_moments, KpmParams, KpmVariant};
use kpm_repro::topo::{ScaleFactors, TopoHamiltonian};

fn params(threads: usize) -> KpmParams {
    KpmParams {
        num_moments: 64,
        num_random: 6,
        seed: 20150527, // IPDPS 2015
        parallel: true,
        threads,
        power: 1,
        first_touch: false,
    }
}

fn moments_at(threads: usize, variant: KpmVariant) -> Vec<f64> {
    let h = TopoHamiltonian::clean(4, 4, 3).assemble();
    let sf = ScaleFactors::from_gershgorin(&h, 0.01);
    kpm_moments(&h, sf, &params(threads), variant)
        .expect("solver run")
        .into_vec()
}

#[test]
fn moments_bitwise_identical_across_thread_counts() {
    for variant in [KpmVariant::Naive, KpmVariant::AugSpmv, KpmVariant::AugSpmmv] {
        let baseline = moments_at(1, variant);
        assert!(baseline.iter().all(|m| m.is_finite()));
        for threads in [2usize, 4, 8] {
            let got = moments_at(threads, variant);
            assert_eq!(baseline, got, "{variant:?} differs at {threads} threads");
        }
    }
}

#[test]
fn moments_bitwise_identical_across_repeated_runs() {
    // Same thread count, repeated runs: the pool splits work
    // nondeterministically (stealing races), the moments must not see it.
    for variant in [KpmVariant::AugSpmv, KpmVariant::AugSpmmv] {
        let first = moments_at(4, variant);
        for _ in 0..3 {
            assert_eq!(first, moments_at(4, variant), "{variant:?} is not stable");
        }
    }
}

#[test]
fn parallel_matches_serial_kernels_bitwise() {
    // The parallel kernels run the same per-chunk arithmetic as their
    // serial twins, and the cross-chunk reductions are pinned to the
    // same fixed boundaries — so even `parallel: false` agrees exactly
    // for the fused variants.
    let h = TopoHamiltonian::clean(4, 4, 3).assemble();
    let sf = ScaleFactors::from_gershgorin(&h, 0.01);
    for variant in [KpmVariant::AugSpmv, KpmVariant::AugSpmmv] {
        let serial = kpm_moments(
            &h,
            sf,
            &KpmParams {
                parallel: false,
                ..params(0)
            },
            variant,
        )
        .expect("serial run")
        .into_vec();
        let parallel = moments_at(4, variant);
        assert_eq!(serial, parallel, "{variant:?} parallel != serial");
    }
}

#[test]
fn sell_format_is_bitwise_identical_across_thread_counts() {
    // The format dimension of the determinism contract: running the
    // solver on a SELL-C-σ matrix must reproduce the CRS moments bit
    // for bit, at every thread count and for every variant.
    use kpm_repro::sparse::SellMatrix;
    let h = TopoHamiltonian::clean(4, 4, 3).assemble();
    let sf = ScaleFactors::from_gershgorin(&h, 0.01);
    for variant in [KpmVariant::Naive, KpmVariant::AugSpmv, KpmVariant::AugSpmmv] {
        let baseline = moments_at(1, variant);
        for (c, sigma) in [(4usize, 16usize), (8, 8), (32, 64)] {
            let sell = SellMatrix::from_crs(&h, c, sigma);
            for threads in [1usize, 4] {
                let got = kpm_moments(&sell, sf, &params(threads), variant)
                    .expect("solver run")
                    .into_vec();
                assert_eq!(
                    baseline, got,
                    "{variant:?} on SELL-{c}-{sigma} differs at {threads} threads"
                );
            }
        }
    }
}

#[test]
fn checkpointed_solver_is_thread_count_invariant() {
    use kpm_repro::core::checkpoint::MemoryCheckpointStore;
    use kpm_repro::core::solver::{kpm_moments_checkpointed, SolverCheckpointing};

    let h = TopoHamiltonian::clean(4, 4, 2).assemble();
    let sf = ScaleFactors::from_gershgorin(&h, 0.01);
    let mut baseline = None;
    for threads in [1usize, 4] {
        let store = MemoryCheckpointStore::new();
        let ckpt = SolverCheckpointing {
            store: &store,
            interval: 7,
            crash_at: None,
        };
        let set = kpm_moments_checkpointed(&h, sf, &params(threads), &ckpt)
            .expect("checkpointed run")
            .into_vec();
        match &baseline {
            None => baseline = Some(set),
            Some(b) => assert_eq!(b, &set, "checkpointed moments differ at {threads} threads"),
        }
    }
}

#[test]
fn stencil_and_power_grid_is_bitwise_identical() {
    // The acceptance grid of the matrix-free + power-blocking work:
    // {crs, sell, stencil} × {p = 1, 2, 4} × {1, 2, 4, 8 threads} must
    // all reproduce the plain CRS moments bit for bit. The lattice is
    // elongated along the slow axis so the level set is deep enough for
    // the wavefront schedule to actually engage at p = 4 (the test
    // asserts that, so it cannot silently degrade into fallback-only
    // coverage).
    use kpm_repro::sparse::{KpmMatrix, SellMatrix};
    let ham = TopoHamiltonian::clean(3, 3, 12);
    let h = ham.assemble();
    let sf = ScaleFactors::from_gershgorin(&h, 0.01);
    let baseline = kpm_moments(&h, sf, &params(1), KpmVariant::AugSpmmv)
        .expect("baseline run")
        .into_vec();

    let handles: Vec<(&str, KpmMatrix)> = vec![
        ("crs", KpmMatrix::crs(h.clone())),
        ("sell", KpmMatrix::sell(SellMatrix::from_crs(&h, 8, 32))),
        ("stencil", KpmMatrix::stencil(ham.stencil_matrix())),
    ];
    let levels = handles[0].1.level_set().expect("lattice operator levels");
    assert!(
        levels.n_levels() >= 6,
        "need >= p + 2 levels for the p = 4 wavefront to engage (got {})",
        levels.n_levels()
    );

    for (name, m) in &handles {
        for power in [1usize, 2, 4] {
            for threads in [1usize, 2, 4, 8] {
                let p = KpmParams {
                    power,
                    ..params(threads)
                };
                let got = kpm_moments(m, sf, &p, KpmVariant::AugSpmmv)
                    .expect("solver run")
                    .into_vec();
                assert_eq!(
                    baseline, got,
                    "{name} moments differ at power {power}, {threads} threads"
                );
            }
        }
    }
}

#[test]
fn simd_toggle_grid_is_bitwise_identical() {
    // The lane dimension of the determinism contract: the explicit-SIMD
    // kernel bodies replay the scalar operation order per lane, so
    // toggling them at runtime — across formats, thread counts, power
    // depths and first-touch placement — must reproduce the scalar CRS
    // moments bit for bit. On a scalar build both arms run the same
    // code and the test pins the toggle's neutrality; under
    // `--features simd` it is the real vector-vs-scalar comparison.
    use kpm_repro::sparse::{simd, KpmMatrix, SellMatrix};
    let ham = TopoHamiltonian::clean(3, 3, 12);
    let h = ham.assemble();
    let sf = ScaleFactors::from_gershgorin(&h, 0.01);
    simd::set_enabled(false);
    let baseline = kpm_moments(&h, sf, &params(1), KpmVariant::AugSpmmv)
        .expect("scalar baseline")
        .into_vec();

    let handles: Vec<(&str, KpmMatrix)> = vec![
        ("crs", KpmMatrix::crs(h.clone())),
        (
            "sell-4-16",
            KpmMatrix::sell(SellMatrix::from_crs(&h, 4, 16)),
        ),
        (
            "sell-8-32",
            KpmMatrix::sell(SellMatrix::from_crs(&h, 8, 32)),
        ),
        ("stencil", KpmMatrix::stencil(ham.stencil_matrix())),
    ];
    for simd_on in [false, true] {
        simd::set_enabled(simd_on);
        for (name, m) in &handles {
            for threads in [1usize, 4] {
                for power in [1usize, 4] {
                    let first_touch = threads == 4; // one placed cell per row
                    let m = m.clone().with_first_touch(first_touch);
                    let p = KpmParams {
                        power,
                        first_touch,
                        ..params(threads)
                    };
                    let got = kpm_moments(&m, sf, &p, KpmVariant::AugSpmmv)
                        .expect("solver run")
                        .into_vec();
                    assert_eq!(
                        baseline, got,
                        "{name} differs with simd={simd_on} threads={threads} \
                         power={power} first_touch={first_touch}"
                    );
                }
            }
        }
    }
    simd::set_enabled(true);
}

#[test]
fn simd_checkpoint_restart_is_bitwise_identical() {
    // Crash with the SIMD bodies enabled, resume with them disabled:
    // the checkpointed (v, w, η) state is bitwise, so a restart under a
    // different lane configuration must still reproduce the scalar
    // uninterrupted run exactly.
    use kpm_repro::core::checkpoint::MemoryCheckpointStore;
    use kpm_repro::core::solver::{kpm_moments_checkpointed, SolverCheckpointing};
    use kpm_repro::num::KpmError;
    use kpm_repro::sparse::simd;

    let h = TopoHamiltonian::clean(4, 4, 2).assemble();
    let sf = ScaleFactors::from_gershgorin(&h, 0.01);
    simd::set_enabled(false);
    let reference = kpm_moments(&h, sf, &params(1), KpmVariant::AugSpmmv)
        .expect("reference run")
        .into_vec();

    simd::set_enabled(true);
    let store = MemoryCheckpointStore::new();
    let ckpt = SolverCheckpointing {
        store: &store,
        interval: 5,
        crash_at: Some(12),
    };
    let err = kpm_moments_checkpointed(&h, sf, &params(2), &ckpt).expect_err("injected crash");
    assert!(matches!(err, KpmError::RankCrashed { .. }), "{err:?}");

    simd::set_enabled(false);
    let resumed = SolverCheckpointing {
        store: &store,
        interval: 5,
        crash_at: Some(12), // ignored on resume
    };
    let got = kpm_moments_checkpointed(&h, sf, &params(2), &resumed)
        .expect("resumed run")
        .into_vec();
    simd::set_enabled(true);
    assert_eq!(
        reference, got,
        "simd-crash / scalar-resume diverged from the scalar run"
    );
}

#[test]
fn power_blocked_checkpoint_restart_is_bitwise_identical() {
    // Crash a power-blocked run mid-way, resume from the checkpoint,
    // and compare against an uninterrupted p = 1 run: the wavefront
    // clamps its chunks to checkpoint boundaries, so the saved
    // (v, w, η) state — and therefore the recovered moments — are
    // bitwise those of the plain solver.
    use kpm_repro::core::checkpoint::MemoryCheckpointStore;
    use kpm_repro::core::solver::{kpm_moments_checkpointed, SolverCheckpointing};
    use kpm_repro::num::KpmError;
    use kpm_repro::sparse::KpmMatrix;

    let ham = TopoHamiltonian::clean(3, 3, 12);
    let h = ham.assemble();
    let sf = ScaleFactors::from_gershgorin(&h, 0.01);
    let reference = kpm_moments(&h, sf, &params(1), KpmVariant::AugSpmmv)
        .expect("reference run")
        .into_vec();

    for power in [2usize, 4] {
        for m in [
            &KpmMatrix::crs(h.clone()),
            &KpmMatrix::stencil(ham.stencil_matrix()),
        ] {
            let p = KpmParams { power, ..params(1) };
            let store = MemoryCheckpointStore::new();
            let ckpt = SolverCheckpointing {
                store: &store,
                interval: 5,
                crash_at: Some(17),
            };
            let err = kpm_moments_checkpointed(m, sf, &p, &ckpt).expect_err("injected crash");
            assert!(matches!(err, KpmError::RankCrashed { .. }), "{err:?}");
            let resumed = SolverCheckpointing {
                store: &store,
                interval: 5,
                crash_at: Some(17), // ignored on resume
            };
            let got = kpm_moments_checkpointed(m, sf, &p, &resumed)
                .expect("resumed run")
                .into_vec();
            assert_eq!(
                reference, got,
                "power {power} checkpoint/restart diverged from the plain run"
            );
        }
    }
}
