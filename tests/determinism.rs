//! Bitwise reproducibility of the solver under shared-memory
//! parallelism.
//!
//! The parallel kernels pin their reduction-tree boundaries to fixed,
//! caller-chosen chunk sizes — never to the thread count or to how the
//! work-stealing pool happened to split the range. These tests are the
//! contract: the moments of a KPM run are *bitwise identical* for any
//! worker-thread count and across repeated runs, for every solver
//! variant. `assert_eq!` on `f64` slices is deliberate; a 1-ulp
//! difference is a failure.

use kpm_repro::core::solver::{kpm_moments, KpmParams, KpmVariant};
use kpm_repro::topo::{ScaleFactors, TopoHamiltonian};

fn params(threads: usize) -> KpmParams {
    KpmParams {
        num_moments: 64,
        num_random: 6,
        seed: 20150527, // IPDPS 2015
        parallel: true,
        threads,
    }
}

fn moments_at(threads: usize, variant: KpmVariant) -> Vec<f64> {
    let h = TopoHamiltonian::clean(4, 4, 3).assemble();
    let sf = ScaleFactors::from_gershgorin(&h, 0.01);
    kpm_moments(&h, sf, &params(threads), variant)
        .expect("solver run")
        .into_vec()
}

#[test]
fn moments_bitwise_identical_across_thread_counts() {
    for variant in [KpmVariant::Naive, KpmVariant::AugSpmv, KpmVariant::AugSpmmv] {
        let baseline = moments_at(1, variant);
        assert!(baseline.iter().all(|m| m.is_finite()));
        for threads in [2usize, 4, 8] {
            let got = moments_at(threads, variant);
            assert_eq!(baseline, got, "{variant:?} differs at {threads} threads");
        }
    }
}

#[test]
fn moments_bitwise_identical_across_repeated_runs() {
    // Same thread count, repeated runs: the pool splits work
    // nondeterministically (stealing races), the moments must not see it.
    for variant in [KpmVariant::AugSpmv, KpmVariant::AugSpmmv] {
        let first = moments_at(4, variant);
        for _ in 0..3 {
            assert_eq!(first, moments_at(4, variant), "{variant:?} is not stable");
        }
    }
}

#[test]
fn parallel_matches_serial_kernels_bitwise() {
    // The parallel kernels run the same per-chunk arithmetic as their
    // serial twins, and the cross-chunk reductions are pinned to the
    // same fixed boundaries — so even `parallel: false` agrees exactly
    // for the fused variants.
    let h = TopoHamiltonian::clean(4, 4, 3).assemble();
    let sf = ScaleFactors::from_gershgorin(&h, 0.01);
    for variant in [KpmVariant::AugSpmv, KpmVariant::AugSpmmv] {
        let serial = kpm_moments(
            &h,
            sf,
            &KpmParams {
                parallel: false,
                ..params(0)
            },
            variant,
        )
        .expect("serial run")
        .into_vec();
        let parallel = moments_at(4, variant);
        assert_eq!(serial, parallel, "{variant:?} parallel != serial");
    }
}

#[test]
fn sell_format_is_bitwise_identical_across_thread_counts() {
    // The format dimension of the determinism contract: running the
    // solver on a SELL-C-σ matrix must reproduce the CRS moments bit
    // for bit, at every thread count and for every variant.
    use kpm_repro::sparse::SellMatrix;
    let h = TopoHamiltonian::clean(4, 4, 3).assemble();
    let sf = ScaleFactors::from_gershgorin(&h, 0.01);
    for variant in [KpmVariant::Naive, KpmVariant::AugSpmv, KpmVariant::AugSpmmv] {
        let baseline = moments_at(1, variant);
        for (c, sigma) in [(4usize, 16usize), (8, 8), (32, 64)] {
            let sell = SellMatrix::from_crs(&h, c, sigma);
            for threads in [1usize, 4] {
                let got = kpm_moments(&sell, sf, &params(threads), variant)
                    .expect("solver run")
                    .into_vec();
                assert_eq!(
                    baseline, got,
                    "{variant:?} on SELL-{c}-{sigma} differs at {threads} threads"
                );
            }
        }
    }
}

#[test]
fn checkpointed_solver_is_thread_count_invariant() {
    use kpm_repro::core::checkpoint::MemoryCheckpointStore;
    use kpm_repro::core::solver::{kpm_moments_checkpointed, SolverCheckpointing};

    let h = TopoHamiltonian::clean(4, 4, 2).assemble();
    let sf = ScaleFactors::from_gershgorin(&h, 0.01);
    let mut baseline = None;
    for threads in [1usize, 4] {
        let store = MemoryCheckpointStore::new();
        let ckpt = SolverCheckpointing {
            store: &store,
            interval: 7,
            crash_at: None,
        };
        let set = kpm_moments_checkpointed(&h, sf, &params(threads), &ckpt)
            .expect("checkpointed run")
            .into_vec();
        match &baseline {
            None => baseline = Some(set),
            Some(b) => assert_eq!(b, &set, "checkpointed moments differ at {threads} threads"),
        }
    }
}
