//! Integration: Matrix Market persistence composes with the whole KPM
//! pipeline — a matrix written to disk, read back, and solved gives
//! identical physics.

use std::io::BufReader;

use kpm_repro::core::solver::{kpm_moments, KpmParams, KpmVariant};
use kpm_repro::sparse::io::{read, write_general, write_hermitian};
use kpm_repro::sparse::stats;
use kpm_repro::topo::{ScaleFactors, TopoHamiltonian};

#[test]
fn ti_matrix_survives_mm_roundtrip_bitwise() {
    let h = TopoHamiltonian::quantum_dot_superlattice(6, 6, 3).assemble();
    let mut buf = Vec::new();
    write_hermitian(&h, &mut buf).unwrap();
    let back = read(BufReader::new(buf.as_slice())).unwrap();
    assert_eq!(h, back);
}

#[test]
fn kpm_moments_identical_on_loaded_matrix() {
    let h = TopoHamiltonian::clean(5, 5, 3).assemble();
    let mut buf = Vec::new();
    write_general(&h, &mut buf).unwrap();
    let loaded = read(BufReader::new(buf.as_slice())).unwrap();

    let p = KpmParams {
        num_moments: 32,
        num_random: 4,
        seed: 5,
        parallel: false,
        threads: 0,
        power: 1,
        first_touch: false,
    };
    let sf = ScaleFactors::from_gershgorin(&h, 0.01);
    let a = kpm_moments(&h, sf, &p, KpmVariant::AugSpmmv).unwrap();
    let b = kpm_moments(&loaded, sf, &p, KpmVariant::AugSpmmv).unwrap();
    assert_eq!(
        a.max_abs_diff(&b),
        0.0,
        "identical matrix, identical moments"
    );
}

#[test]
fn structure_report_stable_across_roundtrip() {
    let h = TopoHamiltonian::clean(6, 4, 3).assemble();
    let mut buf = Vec::new();
    write_hermitian(&h, &mut buf).unwrap();
    let back = read(BufReader::new(buf.as_slice())).unwrap();
    let sa = stats::analyze(&h, 4);
    let sb = stats::analyze(&back, 4);
    assert_eq!(sa.nnz, sb.nnz);
    assert_eq!(sa.bandwidth, sb.bandwidth);
    assert_eq!(sa.diagonals.len(), sb.diagonals.len());
}
