//! Tier-1 observability suite.
//!
//! Validates the `kpm-obs` instrumentation end to end: the exporters
//! emit parseable JSONL/Chrome-trace documents, the solver records the
//! expected span taxonomy and kernel probes, the live (warm cachesim
//! replay) Ω agrees with the cold prediction on a deterministic
//! workload, per-rank runtime telemetry reports the EXACT injected
//! fault counts of a seeded plan, and a recovered resilient run logs
//! exactly one restart span. The instrumentation flag and registries
//! are process-global, so every test takes the same mutex.

use std::sync::{Arc, Mutex, MutexGuard, OnceLock};
use std::time::Duration;

use kpm_repro::core::checkpoint::MemoryCheckpointStore;
use kpm_repro::core::solver::{kpm_moments, KpmParams, KpmVariant};
use kpm_repro::hetsim::dist::{distributed_kpm_resilient, ResilienceConfig, RestartStrategy};
use kpm_repro::hetsim::{FaultPlan, World, WorldConfig};
use kpm_repro::num::Complex64;
use kpm_repro::obs;
use kpm_repro::obs::probe::KernelKind;
use kpm_repro::perfmodel::cachesim::CacheConfig;
use kpm_repro::perfmodel::omega::{measure_omega, measure_omega_kernel};
use kpm_repro::topo::model::random_hermitian;
use kpm_repro::topo::{ScaleFactors, TopoHamiltonian};

fn serial() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

fn params(m: usize, r: usize) -> KpmParams {
    KpmParams {
        num_moments: m,
        num_random: r,
        seed: 2015,
        parallel: false,
        threads: 0,
        power: 1,
        first_touch: false,
    }
}

/// The probe crate duplicates the accounting constants (it depends on
/// nothing); they must stay in sync with `kpm_num::accounting`.
#[test]
fn probe_constants_match_accounting() {
    use kpm_repro::num::accounting;
    assert_eq!(obs::probe::S_D as usize, accounting::S_D);
    assert_eq!(obs::probe::S_I as usize, accounting::S_I);
    assert_eq!(obs::probe::F_A as usize, accounting::F_A);
    assert_eq!(obs::probe::F_M as usize, accounting::F_M);
    // And the derived flop model: one aug sweep at width r equals the
    // library's own accounting.
    let (n, nnz, r) = (1000, 13_000, 8);
    assert_eq!(
        KernelKind::AugSpmmv.sweep_flops(n, nnz, r) as usize,
        accounting::aug_spmmv_flops(n, nnz, r)
    );
}

/// An instrumented solver run records the span taxonomy (one
/// `solver.run`, one `solver.sweep` per iteration) and per-kernel
/// probes whose modeled totals match the accounting formulas.
#[test]
fn solver_run_records_spans_and_probes() {
    let _g = serial();
    obs::reset();
    obs::set_enabled(true);
    let h = TopoHamiltonian::clean(4, 4, 2).assemble();
    let sf = ScaleFactors::from_gershgorin(&h, 0.01);
    let p = params(16, 2);
    kpm_moments(&h, sf, &p, KpmVariant::AugSpmmv).unwrap();
    obs::set_enabled(false);

    assert_eq!(obs::span::count("solver.run"), 1);
    assert_eq!(obs::span::count("solver.sweep"), p.iterations());
    let snap = obs::probe::snapshot();
    let aug = snap
        .iter()
        .find(|rep| rep.kind == KernelKind::AugSpmmv)
        .expect("aug_spmmv probe recorded");
    // One aug_spmmv call per sweep, at the solver's block width.
    assert_eq!(aug.calls as usize, p.iterations());
    assert_eq!(aug.width as usize, p.num_random);
    assert_eq!(
        aug.flops,
        aug.calls * KernelKind::AugSpmmv.sweep_flops(h.nrows(), h.nnz(), p.num_random)
    );
    assert_eq!(
        aug.min_bytes,
        aug.calls * KernelKind::AugSpmmv.sweep_min_bytes(h.nrows(), h.nnz(), p.num_random)
    );
}

/// The JSONL metrics export and the Chrome trace-event export both
/// parse with the crate's own JSON parser and carry the recorded data.
#[test]
fn jsonl_and_trace_exports_parse() {
    let _g = serial();
    obs::reset();
    obs::set_enabled(true);
    let h = TopoHamiltonian::clean(4, 4, 2).assemble();
    let sf = ScaleFactors::from_gershgorin(&h, 0.01);
    kpm_moments(&h, sf, &params(16, 2), KpmVariant::AugSpmmv).unwrap();
    obs::metrics::counter_add("test.export.counter", 7);
    obs::metrics::hist_record("test.export.hist", 250.0);
    let jsonl = obs::export::metrics_jsonl_string();
    let trace = obs::export::chrome_trace_string();
    obs::set_enabled(false);

    let mut types = Vec::new();
    for line in jsonl.lines() {
        let v = obs::json::parse(line).expect("every JSONL line parses");
        types.push(v.get("type").and_then(|t| t.as_str()).unwrap().to_string());
        if v.get("name").and_then(|n| n.as_str()) == Some("test.export.counter") {
            assert_eq!(v.get("value").and_then(|x| x.as_f64()), Some(7.0));
        }
        if v.get("type").and_then(|t| t.as_str()) == Some("kernel") {
            assert!(v.get("gflops").and_then(|x| x.as_f64()).is_some());
            assert!(v.get("min_bf").and_then(|x| x.as_f64()).unwrap() > 0.0);
        }
    }
    assert_eq!(types[0], "meta");
    for want in ["counter", "histogram", "kernel"] {
        assert!(types.iter().any(|t| t == want), "missing '{want}' line");
    }

    let doc = obs::json::parse(&trace).expect("trace parses");
    let events = doc
        .get("traceEvents")
        .and_then(|e| e.as_arr())
        .expect("traceEvents array");
    let phase = |v: &obs::json::Value| v.get("ph").and_then(|p| p.as_str()).map(str::to_string);
    assert!(events.iter().any(|e| phase(e).as_deref() == Some("M")));
    let sweeps = events
        .iter()
        .filter(|e| {
            phase(e).as_deref() == Some("X")
                && e.get("name").and_then(|n| n.as_str()) == Some("solver.sweep")
        })
        .count();
    assert_eq!(sweeps, params(16, 2).iterations());
}

/// Acceptance: live Ω (warm multi-sweep replay of the kernel's address
/// stream) agrees with the cold cachesim prediction within 15% on a
/// deterministic workload whose working set exceeds the LLC.
#[test]
fn live_omega_agrees_with_cachesim_prediction() {
    let h = TopoHamiltonian::clean(16, 16, 4).assemble();
    let llc = CacheConfig {
        capacity_bytes: 128 * 1024,
        line_bytes: 64,
        ways: 16,
    };
    for r in [4usize, 8] {
        let live = measure_omega_kernel(&h, KernelKind::AugSpmmv, r, llc, 3);
        let pred = measure_omega(&h, r, llc);
        assert!(live.omega >= 1.0, "R={r}: live omega {} < 1", live.omega);
        let rel = (live.omega / pred.omega - 1.0).abs();
        assert!(
            rel < 0.15,
            "R={r}: live {} vs predicted {} ({}% apart)",
            live.omega,
            pred.omega,
            100.0 * rel
        );
    }
}

/// Under a seeded fault plan the per-rank telemetry reports the EXACT
/// injected drop/duplicate/delay counts the plan says it fired.
#[test]
fn fault_telemetry_matches_injected_counts_exactly() {
    let _g = serial();
    obs::reset();
    obs::set_enabled(true);
    let plan = Arc::new(
        FaultPlan::new(5)
            .with_message_drops(0.3)
            .with_message_duplication(0.3)
            .with_message_delays(0.3, Duration::from_millis(3)),
    );
    let outcome = World::run_config(
        WorldConfig::new(2).with_faults(Arc::clone(&plan)),
        |mut comm| {
            if comm.rank() == 0 {
                for tag in 0..60u64 {
                    comm.send(1, tag, vec![Complex64::real(tag as f64)])?;
                }
            } else {
                for tag in 0..60u64 {
                    // Dropped messages never arrive; swallow the timeout.
                    let _ = comm.recv_timeout(0, tag, Duration::from_millis(40));
                }
            }
            Ok(0u8)
        },
    );
    obs::set_enabled(false);
    assert!(outcome.results.iter().all(|r| r.is_ok()));

    let stats = plan.stats();
    assert!(
        stats.dropped > 0 && stats.duplicated > 0 && stats.delayed > 0,
        "seeded plan injected nothing — test is vacuous: {stats:?}"
    );
    let sum = |f: fn(&kpm_repro::hetsim::runtime::RankTelemetry) -> u64| -> u64 {
        outcome.telemetry.iter().map(f).sum()
    };
    assert_eq!(outcome.telemetry.len(), 2, "one telemetry row per rank");
    assert_eq!(sum(|t| t.injected_drops), stats.dropped);
    assert_eq!(sum(|t| t.injected_dups), stats.duplicated);
    assert_eq!(sum(|t| t.injected_delays), stats.delayed);
    // The mirrored global metrics agree with the ledger rows.
    assert_eq!(
        obs::metrics::counter_value("fault.injected.drop"),
        stats.dropped
    );
    assert_eq!(
        obs::metrics::counter_value("fault.injected.duplicate"),
        stats.duplicated
    );
    assert_eq!(
        obs::metrics::counter_value("fault.injected.delay"),
        stats.delayed
    );
    // Exactly-once accounting: everything consumed was sent, and rank 1
    // discarded every replayed duplicate that reached it.
    assert_eq!(
        sum(|t| t.msgs_sent),
        obs::metrics::counter_value("runtime.msg.sent")
    );
    assert!(sum(|t| t.msgs_consumed) <= sum(|t| t.msgs_sent));
}

/// A resilient run that survives a crash logs exactly one `dist.restart`
/// span, one `dist.restarts` counter tick, and one injected crash in
/// both the plan stats and the mirrored metric.
#[test]
fn recovered_run_logs_one_restart_span() {
    let _g = serial();
    obs::reset();
    obs::set_enabled(true);
    let h = random_hermitian(120, 4, 21);
    let sf = ScaleFactors::from_gershgorin(&h, 0.01);
    let p = params(24, 2); // 11 sweeps
    let crash_at = p.iterations() / 2;
    let plan = Arc::new(FaultPlan::new(3).with_rank_crash(1, crash_at));
    let store = MemoryCheckpointStore::new();
    let cfg = ResilienceConfig {
        checkpoint_interval: 3,
        recv_timeout: Duration::from_millis(500),
        max_restarts: 2,
        restart: RestartStrategy::SameRanks,
    };
    let res = distributed_kpm_resilient(
        &h,
        sf,
        &p,
        &[1.0, 1.0],
        Some(Arc::clone(&plan)),
        &cfg,
        &store,
    )
    .expect("crash must be survived");
    obs::set_enabled(false);

    assert_eq!(res.restarts, 1);
    assert_eq!(obs::span::count("dist.restart"), 1);
    assert_eq!(obs::metrics::counter_value("dist.restarts"), 1);
    assert_eq!(plan.stats().crashed, 1);
    assert_eq!(obs::metrics::counter_value("fault.injected.crash"), 1);
    // The report carries the final (clean) world's telemetry: both ranks
    // present, nobody crashed, and traffic balanced.
    assert_eq!(res.report.telemetry.len(), 2);
    assert!(res.report.telemetry.iter().all(|t| !t.crashed));
    let sent: u64 = res.report.telemetry.iter().map(|t| t.msgs_sent).sum();
    let consumed: u64 = res.report.telemetry.iter().map(|t| t.msgs_consumed).sum();
    assert_eq!(sent, consumed, "final world leaked messages");
}

/// With instrumentation disabled nothing is recorded anywhere: no
/// spans, no metrics, no kernel probes.
#[test]
fn disabled_instrumentation_is_inert() {
    let _g = serial();
    obs::reset();
    obs::set_enabled(false);
    let h = TopoHamiltonian::clean(4, 4, 2).assemble();
    let sf = ScaleFactors::from_gershgorin(&h, 0.01);
    kpm_moments(&h, sf, &params(16, 2), KpmVariant::AugSpmmv).unwrap();
    assert_eq!(obs::span::snapshot().len(), 0);
    assert_eq!(obs::probe::snapshot().len(), 0);
    // The world telemetry ledger still works (plain counters), but the
    // global metrics registry stays empty.
    assert!(obs::metrics::snapshot().is_empty());
}

// ---------------------------------------------------------------------
// PR 7: exact-percentile histograms, sliding windows, request tracing,
// and the flight recorder.
// ---------------------------------------------------------------------

/// Nearest-rank quantile on a sorted sample vector: the oracle the
/// log-linear histogram is checked against.
fn oracle_quantile(sorted: &[u64], q: f64) -> u64 {
    let n = sorted.len() as u64;
    let rank = ((q * n as f64).ceil() as u64).clamp(1, n);
    sorted[rank as usize - 1]
}

/// The HDR-style histogram reports p50/p90/p99/p999 within its
/// documented relative-error bound against a sorted-vector oracle, on
/// pathological distributions: constant, extreme bimodal, power-law
/// tails, dense sequential, and the sub-linear exact range.
#[test]
fn exact_histogram_quantiles_match_sorted_oracle() {
    let distributions: Vec<Vec<u64>> = vec![
        vec![42; 10_000], // constant
        {
            // Extreme bimodal: 99% fast, 1% five decades slower.
            let mut v = vec![120u64; 9_900];
            v.extend(std::iter::repeat_n(17_000_000_000u64, 100));
            v
        },
        (0..64)
            .map(|k| 1u64 << (k % 40))
            .cycle()
            .take(8_000)
            .collect(), // power-law
        (1..=10_000u64).collect(),                // sequential
        (0..31u64).cycle().take(5_000).collect(), // exact sub-linear range
        vec![u64::MAX, 0, 1],                     // extremes
    ];
    for (i, mut sample) in distributions.into_iter().enumerate() {
        let mut h = obs::hist::ExactHist::new();
        for &v in &sample {
            h.record(v);
        }
        sample.sort_unstable();
        assert_eq!(h.count(), sample.len() as u64, "dist {i}: count");
        assert_eq!(h.min(), sample[0], "dist {i}: min is exact");
        for q in [0.5, 0.9, 0.99, 0.999] {
            let oracle = oracle_quantile(&sample, q);
            let got = h.value_at_quantile(q);
            let err = (got as f64 - oracle as f64).abs() / (oracle.max(1) as f64);
            assert!(
                err <= obs::hist::ExactHist::MAX_RELATIVE_ERROR,
                "dist {i} q={q}: got {got}, oracle {oracle}, rel err {err:.5}"
            );
            if oracle < 32 {
                assert_eq!(got, oracle, "dist {i} q={q}: sub-linear range is exact");
            }
        }
    }
}

/// The sliding window drops samples once they age out of the slot
/// ring, while the cumulative total keeps everything.
#[test]
fn sliding_window_expires_old_samples() {
    let mut w = obs::hist::Windowed::new();
    for _ in 0..5 {
        w.record(100);
    }
    assert_eq!(w.window().count(), 5, "fresh samples are in the window");
    for _ in 0..obs::hist::WINDOW_SLOTS {
        w.advance();
    }
    assert_eq!(w.window().count(), 0, "window forgot the old samples");
    assert_eq!(w.total().count(), 5, "the total keeps them");
    w.record(7);
    assert_eq!(w.window().count(), 1);
    assert_eq!(w.window().min(), 7);
    assert_eq!(w.total().count(), 6);
}

/// Every admitted request carries a complete trace: a nonzero trace
/// id on the reply, an exact stage breakdown whose sum equals the
/// request's end-to-end wall time (within 5%), a `svc.request` root
/// span, four stage spans, and no orphan parent pointers anywhere.
#[test]
fn service_replies_carry_complete_traces_and_stage_tilings() {
    use kpm_repro::service::{Admission, QueryKind, Request, Service, ServiceConfig, ShutdownMode};
    use kpm_repro::sparse::KpmMatrix;

    let _g = serial();
    obs::reset();
    obs::set_enabled(true);
    let h = TopoHamiltonian::clean(4, 4, 2).assemble();
    let sf = ScaleFactors::from_gershgorin(&h, 0.01);
    let svc = Service::start(ServiceConfig {
        workers: 2,
        ..ServiceConfig::default()
    });
    let fp = svc.register_matrix(KpmMatrix::crs(h), sf);
    let kinds = [
        QueryKind::Dos {
            seed: 1,
            num_random: 2,
        },
        QueryKind::Ldos { site: 3 },
        QueryKind::Green {
            seed: 2,
            num_random: 1,
        },
        QueryKind::Dos {
            seed: 1,
            num_random: 2,
        }, // cache-hit candidate
    ];
    let mut traces = Vec::new();
    for kind in kinds {
        let admission = svc.submit(Request {
            matrix: fp,
            kind,
            num_moments: 24,
            kernel: kpm_repro::core::Kernel::Jackson,
            points: 16,
            deadline: None,
        });
        let Admission::Admitted(ticket) = admission else {
            panic!("uncontended submit was rejected");
        };
        let resp = ticket.wait().expect("exactly-once reply");
        assert_ne!(resp.stats.trace, 0, "traced reply carries its id");
        let s = resp.stats.stages;
        assert!(s.total_us() > 0.0, "stage breakdown is populated");
        for part in [s.queue_us, s.batch_us, s.solve_us, s.reply_us] {
            assert!(part >= 0.0, "stages are non-negative");
        }
        traces.push(resp.stats.trace);
    }
    svc.shutdown(ShutdownMode::Drain);

    let spans = obs::span::snapshot();
    for &trace in &traces {
        let mine: Vec<_> = spans.iter().filter(|s| s.trace == trace).collect();
        let root = mine
            .iter()
            .find(|s| s.name == "svc.request")
            .unwrap_or_else(|| panic!("trace {trace} has no svc.request root"));
        let mut stage_sum = 0.0;
        for stage in [
            "svc.stage.queue",
            "svc.stage.batch",
            "svc.stage.solve",
            "svc.stage.reply",
        ] {
            let sp = mine
                .iter()
                .find(|s| s.name == stage)
                .unwrap_or_else(|| panic!("trace {trace} is missing {stage}"));
            assert_eq!(sp.parent, Some(root.id), "{stage} hangs off the root");
            stage_sum += sp.dur_us;
        }
        assert!(
            (stage_sum - root.dur_us).abs() <= 0.05 * root.dur_us.max(1.0),
            "trace {trace}: stages sum to {stage_sum} us but e2e is {} us",
            root.dur_us
        );
        // No orphans: every parent pointer resolves in the full pool
        // (stage parents in-trace; batch/solve spans may be shared).
        for s in &mine {
            if let Some(p) = s.parent {
                assert!(
                    spans.iter().any(|q| q.id == p),
                    "trace {trace}: span {} has orphan parent {p}",
                    s.id
                );
            }
        }
    }
    obs::set_enabled(false);
}

/// A chaos-injected worker crash triggers an automatic flight-recorder
/// dump: a `kpm-flight-v1` JSONL file whose every line parses and
/// whose event stream contains the crash marker.
#[test]
fn flight_recorder_dumps_on_chaos_crash() {
    use kpm_repro::service::{
        Admission, ChaosPlan, QueryKind, Request, Service, ServiceConfig, ShutdownMode,
    };
    use kpm_repro::sparse::KpmMatrix;

    let _g = serial();
    obs::reset();
    obs::set_enabled(true);
    let dir = std::env::temp_dir().join(format!("kpm-flight-test-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("temp dir");
    let prefix = dir.join("flight");
    obs::recorder::configure_dump(prefix.to_str().expect("utf-8 temp path"));

    let h = TopoHamiltonian::clean(4, 4, 2).assemble();
    let sf = ScaleFactors::from_gershgorin(&h, 0.01);
    let svc = Service::start(ServiceConfig {
        workers: 1,
        max_retries: 0,
        chaos: Some(ChaosPlan::new(77).with_worker_crashes(1.0)),
        ..ServiceConfig::default()
    });
    let fp = svc.register_matrix(KpmMatrix::crs(h), sf);
    let admission = svc.submit(Request {
        matrix: fp,
        kind: QueryKind::Dos {
            seed: 5,
            num_random: 1,
        },
        num_moments: 16,
        kernel: kpm_repro::core::Kernel::Jackson,
        points: 16,
        deadline: None,
    });
    let Admission::Admitted(ticket) = admission else {
        panic!("submit rejected");
    };
    let resp = ticket.wait().expect("terminal reply even under chaos");
    assert_ne!(resp.stats.trace, 0, "failed replies are traced too");
    svc.shutdown(ShutdownMode::Drain);

    assert!(
        obs::recorder::dumps_triggered() > 0,
        "chaos crash must trigger an automatic dump"
    );
    let dumps: Vec<_> = std::fs::read_dir(&dir)
        .expect("dump dir")
        .filter_map(|e| e.ok())
        .filter(|e| e.file_name().to_string_lossy().ends_with(".jsonl"))
        .collect();
    assert!(!dumps.is_empty(), "dump file written");
    let text = std::fs::read_to_string(dumps[0].path()).expect("read dump");
    let mut crash_seen = false;
    for (i, line) in text.lines().enumerate() {
        let v = obs::json::parse(line).unwrap_or_else(|e| panic!("dump line {i}: {e}"));
        if i == 0 {
            assert_eq!(
                v.get("schema").and_then(obs::json::Value::as_str),
                Some("kpm-flight-v1")
            );
        }
        if v.get("kind").and_then(obs::json::Value::as_str) == Some("chaos.crash") {
            crash_seen = true;
        }
    }
    assert!(crash_seen, "dump records the chaos.crash event");
    let _ = std::fs::remove_dir_all(&dir);
    obs::set_enabled(false);
}

/// The per-route SLO ledger counts breaches and reports burn rates
/// against the configured objective.
#[test]
fn slo_burn_rate_counts_breaches() {
    let _g = serial();
    obs::reset();
    obs::set_enabled(true);
    // 99% of requests under 1 ms.
    obs::slo::objective("dos", 1_000_000, 0.99);
    for _ in 0..98 {
        obs::slo::observe("dos", 500_000);
    }
    obs::slo::observe("dos", 2_000_000);
    obs::slo::observe("dos", 3_000_000);
    let snap = obs::slo::snapshot();
    let r = snap
        .iter()
        .find(|r| r.route == "dos")
        .expect("dos objective");
    assert_eq!(r.events, 100);
    assert_eq!(r.breaches, 2);
    // 2% bad over a 1% budget: burning 2x.
    assert!((r.burn_rate - 2.0).abs() < 1e-9, "burn {}", r.burn_rate);
    obs::set_enabled(false);
}
