//! Tier-1 observability suite.
//!
//! Validates the `kpm-obs` instrumentation end to end: the exporters
//! emit parseable JSONL/Chrome-trace documents, the solver records the
//! expected span taxonomy and kernel probes, the live (warm cachesim
//! replay) Ω agrees with the cold prediction on a deterministic
//! workload, per-rank runtime telemetry reports the EXACT injected
//! fault counts of a seeded plan, and a recovered resilient run logs
//! exactly one restart span. The instrumentation flag and registries
//! are process-global, so every test takes the same mutex.

use std::sync::{Arc, Mutex, MutexGuard, OnceLock};
use std::time::Duration;

use kpm_repro::core::checkpoint::MemoryCheckpointStore;
use kpm_repro::core::solver::{kpm_moments, KpmParams, KpmVariant};
use kpm_repro::hetsim::dist::{distributed_kpm_resilient, ResilienceConfig, RestartStrategy};
use kpm_repro::hetsim::{FaultPlan, World, WorldConfig};
use kpm_repro::num::Complex64;
use kpm_repro::obs;
use kpm_repro::obs::probe::KernelKind;
use kpm_repro::perfmodel::cachesim::CacheConfig;
use kpm_repro::perfmodel::omega::{measure_omega, measure_omega_kernel};
use kpm_repro::topo::model::random_hermitian;
use kpm_repro::topo::{ScaleFactors, TopoHamiltonian};

fn serial() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

fn params(m: usize, r: usize) -> KpmParams {
    KpmParams {
        num_moments: m,
        num_random: r,
        seed: 2015,
        parallel: false,
        threads: 0,
    }
}

/// The probe crate duplicates the accounting constants (it depends on
/// nothing); they must stay in sync with `kpm_num::accounting`.
#[test]
fn probe_constants_match_accounting() {
    use kpm_repro::num::accounting;
    assert_eq!(obs::probe::S_D as usize, accounting::S_D);
    assert_eq!(obs::probe::S_I as usize, accounting::S_I);
    assert_eq!(obs::probe::F_A as usize, accounting::F_A);
    assert_eq!(obs::probe::F_M as usize, accounting::F_M);
    // And the derived flop model: one aug sweep at width r equals the
    // library's own accounting.
    let (n, nnz, r) = (1000, 13_000, 8);
    assert_eq!(
        KernelKind::AugSpmmv.sweep_flops(n, nnz, r) as usize,
        accounting::aug_spmmv_flops(n, nnz, r)
    );
}

/// An instrumented solver run records the span taxonomy (one
/// `solver.run`, one `solver.sweep` per iteration) and per-kernel
/// probes whose modeled totals match the accounting formulas.
#[test]
fn solver_run_records_spans_and_probes() {
    let _g = serial();
    obs::reset();
    obs::set_enabled(true);
    let h = TopoHamiltonian::clean(4, 4, 2).assemble();
    let sf = ScaleFactors::from_gershgorin(&h, 0.01);
    let p = params(16, 2);
    kpm_moments(&h, sf, &p, KpmVariant::AugSpmmv).unwrap();
    obs::set_enabled(false);

    assert_eq!(obs::span::count("solver.run"), 1);
    assert_eq!(obs::span::count("solver.sweep"), p.iterations());
    let snap = obs::probe::snapshot();
    let aug = snap
        .iter()
        .find(|rep| rep.kind == KernelKind::AugSpmmv)
        .expect("aug_spmmv probe recorded");
    // One aug_spmmv call per sweep, at the solver's block width.
    assert_eq!(aug.calls as usize, p.iterations());
    assert_eq!(aug.width as usize, p.num_random);
    assert_eq!(
        aug.flops,
        aug.calls * KernelKind::AugSpmmv.sweep_flops(h.nrows(), h.nnz(), p.num_random)
    );
    assert_eq!(
        aug.min_bytes,
        aug.calls * KernelKind::AugSpmmv.sweep_min_bytes(h.nrows(), h.nnz(), p.num_random)
    );
}

/// The JSONL metrics export and the Chrome trace-event export both
/// parse with the crate's own JSON parser and carry the recorded data.
#[test]
fn jsonl_and_trace_exports_parse() {
    let _g = serial();
    obs::reset();
    obs::set_enabled(true);
    let h = TopoHamiltonian::clean(4, 4, 2).assemble();
    let sf = ScaleFactors::from_gershgorin(&h, 0.01);
    kpm_moments(&h, sf, &params(16, 2), KpmVariant::AugSpmmv).unwrap();
    obs::metrics::counter_add("test.export.counter", 7);
    obs::metrics::hist_record("test.export.hist", 250.0);
    let jsonl = obs::export::metrics_jsonl_string();
    let trace = obs::export::chrome_trace_string();
    obs::set_enabled(false);

    let mut types = Vec::new();
    for line in jsonl.lines() {
        let v = obs::json::parse(line).expect("every JSONL line parses");
        types.push(v.get("type").and_then(|t| t.as_str()).unwrap().to_string());
        if v.get("name").and_then(|n| n.as_str()) == Some("test.export.counter") {
            assert_eq!(v.get("value").and_then(|x| x.as_f64()), Some(7.0));
        }
        if v.get("type").and_then(|t| t.as_str()) == Some("kernel") {
            assert!(v.get("gflops").and_then(|x| x.as_f64()).is_some());
            assert!(v.get("min_bf").and_then(|x| x.as_f64()).unwrap() > 0.0);
        }
    }
    assert_eq!(types[0], "meta");
    for want in ["counter", "histogram", "kernel"] {
        assert!(types.iter().any(|t| t == want), "missing '{want}' line");
    }

    let doc = obs::json::parse(&trace).expect("trace parses");
    let events = doc
        .get("traceEvents")
        .and_then(|e| e.as_arr())
        .expect("traceEvents array");
    let phase = |v: &obs::json::Value| v.get("ph").and_then(|p| p.as_str()).map(str::to_string);
    assert!(events.iter().any(|e| phase(e).as_deref() == Some("M")));
    let sweeps = events
        .iter()
        .filter(|e| {
            phase(e).as_deref() == Some("X")
                && e.get("name").and_then(|n| n.as_str()) == Some("solver.sweep")
        })
        .count();
    assert_eq!(sweeps, params(16, 2).iterations());
}

/// Acceptance: live Ω (warm multi-sweep replay of the kernel's address
/// stream) agrees with the cold cachesim prediction within 15% on a
/// deterministic workload whose working set exceeds the LLC.
#[test]
fn live_omega_agrees_with_cachesim_prediction() {
    let h = TopoHamiltonian::clean(16, 16, 4).assemble();
    let llc = CacheConfig {
        capacity_bytes: 128 * 1024,
        line_bytes: 64,
        ways: 16,
    };
    for r in [4usize, 8] {
        let live = measure_omega_kernel(&h, KernelKind::AugSpmmv, r, llc, 3);
        let pred = measure_omega(&h, r, llc);
        assert!(live.omega >= 1.0, "R={r}: live omega {} < 1", live.omega);
        let rel = (live.omega / pred.omega - 1.0).abs();
        assert!(
            rel < 0.15,
            "R={r}: live {} vs predicted {} ({}% apart)",
            live.omega,
            pred.omega,
            100.0 * rel
        );
    }
}

/// Under a seeded fault plan the per-rank telemetry reports the EXACT
/// injected drop/duplicate/delay counts the plan says it fired.
#[test]
fn fault_telemetry_matches_injected_counts_exactly() {
    let _g = serial();
    obs::reset();
    obs::set_enabled(true);
    let plan = Arc::new(
        FaultPlan::new(5)
            .with_message_drops(0.3)
            .with_message_duplication(0.3)
            .with_message_delays(0.3, Duration::from_millis(3)),
    );
    let outcome = World::run_config(
        WorldConfig::new(2).with_faults(Arc::clone(&plan)),
        |mut comm| {
            if comm.rank() == 0 {
                for tag in 0..60u64 {
                    comm.send(1, tag, vec![Complex64::real(tag as f64)])?;
                }
            } else {
                for tag in 0..60u64 {
                    // Dropped messages never arrive; swallow the timeout.
                    let _ = comm.recv_timeout(0, tag, Duration::from_millis(40));
                }
            }
            Ok(0u8)
        },
    );
    obs::set_enabled(false);
    assert!(outcome.results.iter().all(|r| r.is_ok()));

    let stats = plan.stats();
    assert!(
        stats.dropped > 0 && stats.duplicated > 0 && stats.delayed > 0,
        "seeded plan injected nothing — test is vacuous: {stats:?}"
    );
    let sum = |f: fn(&kpm_repro::hetsim::runtime::RankTelemetry) -> u64| -> u64 {
        outcome.telemetry.iter().map(f).sum()
    };
    assert_eq!(outcome.telemetry.len(), 2, "one telemetry row per rank");
    assert_eq!(sum(|t| t.injected_drops), stats.dropped);
    assert_eq!(sum(|t| t.injected_dups), stats.duplicated);
    assert_eq!(sum(|t| t.injected_delays), stats.delayed);
    // The mirrored global metrics agree with the ledger rows.
    assert_eq!(
        obs::metrics::counter_value("fault.injected.drop"),
        stats.dropped
    );
    assert_eq!(
        obs::metrics::counter_value("fault.injected.duplicate"),
        stats.duplicated
    );
    assert_eq!(
        obs::metrics::counter_value("fault.injected.delay"),
        stats.delayed
    );
    // Exactly-once accounting: everything consumed was sent, and rank 1
    // discarded every replayed duplicate that reached it.
    assert_eq!(
        sum(|t| t.msgs_sent),
        obs::metrics::counter_value("runtime.msg.sent")
    );
    assert!(sum(|t| t.msgs_consumed) <= sum(|t| t.msgs_sent));
}

/// A resilient run that survives a crash logs exactly one `dist.restart`
/// span, one `dist.restarts` counter tick, and one injected crash in
/// both the plan stats and the mirrored metric.
#[test]
fn recovered_run_logs_one_restart_span() {
    let _g = serial();
    obs::reset();
    obs::set_enabled(true);
    let h = random_hermitian(120, 4, 21);
    let sf = ScaleFactors::from_gershgorin(&h, 0.01);
    let p = params(24, 2); // 11 sweeps
    let crash_at = p.iterations() / 2;
    let plan = Arc::new(FaultPlan::new(3).with_rank_crash(1, crash_at));
    let store = MemoryCheckpointStore::new();
    let cfg = ResilienceConfig {
        checkpoint_interval: 3,
        recv_timeout: Duration::from_millis(500),
        max_restarts: 2,
        restart: RestartStrategy::SameRanks,
    };
    let res = distributed_kpm_resilient(
        &h,
        sf,
        &p,
        &[1.0, 1.0],
        Some(Arc::clone(&plan)),
        &cfg,
        &store,
    )
    .expect("crash must be survived");
    obs::set_enabled(false);

    assert_eq!(res.restarts, 1);
    assert_eq!(obs::span::count("dist.restart"), 1);
    assert_eq!(obs::metrics::counter_value("dist.restarts"), 1);
    assert_eq!(plan.stats().crashed, 1);
    assert_eq!(obs::metrics::counter_value("fault.injected.crash"), 1);
    // The report carries the final (clean) world's telemetry: both ranks
    // present, nobody crashed, and traffic balanced.
    assert_eq!(res.report.telemetry.len(), 2);
    assert!(res.report.telemetry.iter().all(|t| !t.crashed));
    let sent: u64 = res.report.telemetry.iter().map(|t| t.msgs_sent).sum();
    let consumed: u64 = res.report.telemetry.iter().map(|t| t.msgs_consumed).sum();
    assert_eq!(sent, consumed, "final world leaked messages");
}

/// With instrumentation disabled nothing is recorded anywhere: no
/// spans, no metrics, no kernel probes.
#[test]
fn disabled_instrumentation_is_inert() {
    let _g = serial();
    obs::reset();
    obs::set_enabled(false);
    let h = TopoHamiltonian::clean(4, 4, 2).assemble();
    let sf = ScaleFactors::from_gershgorin(&h, 0.01);
    kpm_moments(&h, sf, &params(16, 2), KpmVariant::AugSpmmv).unwrap();
    assert_eq!(obs::span::snapshot().len(), 0);
    assert_eq!(obs::probe::snapshot().len(), 0);
    // The world telemetry ledger still works (plain counters), but the
    // global metrics registry stays empty.
    assert!(obs::metrics::snapshot().is_empty());
}
