//! Integration: the performance models reproduce the paper's published
//! numbers — code balance (Eqs. 5-7), the Fig. 8 roofline regimes, the
//! Fig. 10 bottleneck shift, the Fig. 11 node-level ratios, the Fig. 12
//! scaling shapes and the Table III resource comparison.

use kpm_repro::hetsim::cluster::ClusterModel;
use kpm_repro::hetsim::node::{node_performance, Stage};
use kpm_repro::perfmodel::balance::min_code_balance;
use kpm_repro::perfmodel::machine::{IVB, SNB};
use kpm_repro::perfmodel::omega::{llc_config, measure_omega};
use kpm_repro::perfmodel::roofline::{custom_roofline, roofline};
use kpm_repro::simgpu::{simulate, GpuDevice, GpuKernel};
use kpm_repro::topo::TopoHamiltonian;

fn bench_matrix() -> kpm_repro::sparse::CrsMatrix {
    TopoHamiltonian::clean(32, 16, 8).assemble()
}

#[test]
fn paper_eq6_and_eq7_balance_values() {
    assert!((min_code_balance(13.0, 1) - 2.23).abs() < 0.01);
    assert!((min_code_balance(13.0, 10_000) - 0.35).abs() < 0.01);
}

#[test]
fn fig8_regime_change_happens_between_r4_and_r8() {
    // On IVB with Omega = 1 the kernel leaves the memory-bound regime
    // once b/B exceeds P_LLC: between R = 4 and R = 8.
    let at = |r: usize| custom_roofline(&IVB, 13.0, r, 1.0);
    assert_eq!(at(4).p_star, at(4).p_mem, "R=4 memory bound");
    assert_eq!(at(8).p_star, at(8).p_llc, "R=8 LLC bound");
}

#[test]
fn fig8_omega_annotation_reproduced() {
    // Paper annotates Omega ~ 1.16 at R = 16 and 1.54 at R = 32 for the
    // 100x100x40 domain on the IVB LLC. A reduced domain with the same
    // planar structure reproduces the trend; the full domain (run via
    // fig08_roofline) reproduces the values.
    let h = TopoHamiltonian::clean(64, 64, 24).assemble();
    let llc = llc_config(&IVB);
    let o1 = measure_omega(&h, 1, llc).omega;
    let o32 = measure_omega(&h, 32, llc).omega;
    assert!(o1 < 1.1, "R=1 should be near minimal traffic: {o1}");
    assert!(o32 > 1.3 && o32 < 1.9, "R=32 Omega: {o32}");
}

#[test]
fn fig10_dram_bound_at_r1_cache_bound_at_r32() {
    use kpm_repro::simgpu::timing::Bottleneck;
    let d = GpuDevice::k20m();
    let h = bench_matrix();
    for kernel in [GpuKernel::PlainSpmmv, GpuKernel::AugNoDot] {
        let r1 = simulate(&d, &h, 1, kernel);
        assert_eq!(r1.timing.bottleneck, Bottleneck::Dram);
        assert!((r1.timing.dram_gbs - 150.0).abs() < 1.0, "full DRAM bw at R=1");
        let r32 = simulate(&d, &h, 32, kernel);
        assert_ne!(r32.timing.bottleneck, Bottleneck::Dram);
        assert!(r32.timing.dram_gbs < 150.0);
    }
}

#[test]
fn fig10_fused_kernel_runs_all_levels_lower() {
    let d = GpuDevice::k20m();
    let h = bench_matrix();
    let nodot = simulate(&d, &h, 32, GpuKernel::AugNoDot);
    let full = simulate(&d, &h, 32, GpuKernel::AugFull);
    assert!(full.timing.dram_gbs < nodot.timing.dram_gbs);
    assert!(full.timing.l2_gbs < nodot.timing.l2_gbs);
    assert!(full.timing.tex_gbs < nodot.timing.tex_gbs);
}

#[test]
fn fig11_headline_ratios() {
    let h = bench_matrix();
    let gpu = GpuDevice::k20x();
    let naive = node_performance(&SNB, &gpu, Stage::Naive, 32, &h, 1.3);
    let s2 = node_performance(&SNB, &gpu, Stage::Stage2, 32, &h, 1.3);
    // GPU-only algorithmic speedup ~2.3x.
    let gpu_speedup = s2.gpu_gflops / naive.gpu_gflops;
    assert!((gpu_speedup - 2.3).abs() < 0.5, "{gpu_speedup}");
    // Heterogeneous gain over GPU-only ~1.36x.
    let het_gain = s2.het_gflops / s2.gpu_gflops;
    assert!((het_gain - 1.36).abs() < 0.15, "{het_gain}");
    // Total node speedup > 10x.
    assert!(s2.het_gflops / naive.cpu_gflops > 10.0);
    // Parallel efficiency 85-90% band (plus small model slack).
    assert!(s2.efficiency > 0.83 && s2.efficiency < 0.95, "{}", s2.efficiency);
}

#[test]
fn fig12_reaches_100_tflops_at_1024_nodes() {
    let model = ClusterModel::piz_daint(&bench_matrix(), 32);
    let square = model.weak_scaling_square(1024);
    let last = square.last().unwrap();
    assert_eq!(last.nodes, 1024);
    assert!(last.tflops > 100.0, "paper: >100 Tflop/s; got {}", last.tflops);
    // Largest Bar system: matrix with > 6.5e9 rows.
    let bar = model.weak_scaling_bar(1024);
    assert!(bar.last().unwrap().domain.rows() > 6_500_000_000 - 100_000_000);
}

#[test]
fn fig12_square_dip_at_4_nodes_then_flat() {
    let model = ClusterModel::piz_daint(&bench_matrix(), 32);
    let pts = model.weak_scaling_square(1024);
    assert!(pts[1].efficiency < pts[0].efficiency, "dip when y-cuts appear");
    // After the dip the efficiency stays nearly constant.
    for w in pts[1..].windows(2) {
        assert!((w[0].efficiency - w[1].efficiency).abs() < 0.03);
    }
}

#[test]
fn table3_within_factor_1p5_of_paper() {
    let model = ClusterModel::piz_daint(&bench_matrix(), 32);
    let rows = model.table3();
    let paper = [(14.9, 164.0), (107.0, 81.0), (116.0, 75.0)];
    for (row, (p_tflops, p_hours)) in rows.iter().zip(paper) {
        let tf_ratio = row.tflops / p_tflops;
        let nh_ratio = row.node_hours / p_hours;
        assert!(
            tf_ratio > 1.0 / 1.5 && tf_ratio < 1.5,
            "{}: {} Tflop/s vs paper {p_tflops}",
            row.version,
            row.tflops
        );
        assert!(
            nh_ratio > 1.0 / 1.5 && nh_ratio < 1.5,
            "{}: {} node-h vs paper {p_hours}",
            row.version,
            row.node_hours
        );
    }
}

#[test]
fn roofline_consistency_between_modules() {
    // Eq. 9 and Eq. 11 agree when the LLC ceiling is not binding.
    let b = min_code_balance(13.0, 1);
    let p9 = roofline(&IVB, b);
    let p11 = custom_roofline(&IVB, 13.0, 1, 1.0).p_star;
    assert!((p9 - p11).abs() < 1e-9);
}
