//! Integration: the performance models reproduce the paper's published
//! numbers — code balance (Eqs. 5-7), the Fig. 8 roofline regimes, the
//! Fig. 10 bottleneck shift, the Fig. 11 node-level ratios, the Fig. 12
//! scaling shapes and the Table III resource comparison.

use kpm_repro::hetsim::cluster::ClusterModel;
use kpm_repro::hetsim::node::{node_performance, Stage};
use kpm_repro::perfmodel::balance::min_code_balance;
use kpm_repro::perfmodel::machine::{IVB, SNB};
use kpm_repro::perfmodel::omega::{llc_config, measure_omega};
use kpm_repro::perfmodel::roofline::{custom_roofline, roofline};
use kpm_repro::simgpu::{simulate, GpuDevice, GpuKernel};
use kpm_repro::topo::TopoHamiltonian;

fn bench_matrix() -> kpm_repro::sparse::CrsMatrix {
    TopoHamiltonian::clean(32, 16, 8).assemble()
}

#[test]
fn paper_eq6_and_eq7_balance_values() {
    assert!((min_code_balance(13.0, 1) - 2.23).abs() < 0.01);
    assert!((min_code_balance(13.0, 10_000) - 0.35).abs() < 0.01);
}

#[test]
fn fig8_regime_change_happens_between_r4_and_r8() {
    // On IVB with Omega = 1 the kernel leaves the memory-bound regime
    // once b/B exceeds P_LLC: between R = 4 and R = 8.
    let at = |r: usize| custom_roofline(&IVB, 13.0, r, 1.0);
    assert_eq!(at(4).p_star, at(4).p_mem, "R=4 memory bound");
    assert_eq!(at(8).p_star, at(8).p_llc, "R=8 LLC bound");
}

#[test]
fn fig8_omega_annotation_reproduced() {
    // Paper annotates Omega ~ 1.16 at R = 16 and 1.54 at R = 32 for the
    // 100x100x40 domain on the IVB LLC. A reduced domain with the same
    // planar structure reproduces the trend; the full domain (run via
    // fig08_roofline) reproduces the values.
    let h = TopoHamiltonian::clean(64, 64, 24).assemble();
    let llc = llc_config(&IVB);
    let o1 = measure_omega(&h, 1, llc).omega;
    let o32 = measure_omega(&h, 32, llc).omega;
    assert!(o1 < 1.1, "R=1 should be near minimal traffic: {o1}");
    assert!(o32 > 1.3 && o32 < 1.9, "R=32 Omega: {o32}");
}

#[test]
fn fig10_dram_bound_at_r1_cache_bound_at_r32() {
    use kpm_repro::simgpu::timing::Bottleneck;
    let d = GpuDevice::k20m();
    let h = bench_matrix();
    for kernel in [GpuKernel::PlainSpmmv, GpuKernel::AugNoDot] {
        let r1 = simulate(&d, &h, 1, kernel);
        assert_eq!(r1.timing.bottleneck, Bottleneck::Dram);
        assert!(
            (r1.timing.dram_gbs - 150.0).abs() < 1.0,
            "full DRAM bw at R=1"
        );
        let r32 = simulate(&d, &h, 32, kernel);
        assert_ne!(r32.timing.bottleneck, Bottleneck::Dram);
        assert!(r32.timing.dram_gbs < 150.0);
    }
}

#[test]
fn fig10_fused_kernel_runs_all_levels_lower() {
    let d = GpuDevice::k20m();
    let h = bench_matrix();
    let nodot = simulate(&d, &h, 32, GpuKernel::AugNoDot);
    let full = simulate(&d, &h, 32, GpuKernel::AugFull);
    assert!(full.timing.dram_gbs < nodot.timing.dram_gbs);
    assert!(full.timing.l2_gbs < nodot.timing.l2_gbs);
    assert!(full.timing.tex_gbs < nodot.timing.tex_gbs);
}

#[test]
fn fig11_headline_ratios() {
    let h = bench_matrix();
    let gpu = GpuDevice::k20x();
    let naive = node_performance(&SNB, &gpu, Stage::Naive, 32, &h, 1.3);
    let s2 = node_performance(&SNB, &gpu, Stage::Stage2, 32, &h, 1.3);
    // GPU-only algorithmic speedup ~2.3x.
    let gpu_speedup = s2.gpu_gflops / naive.gpu_gflops;
    assert!((gpu_speedup - 2.3).abs() < 0.5, "{gpu_speedup}");
    // Heterogeneous gain over GPU-only ~1.36x.
    let het_gain = s2.het_gflops / s2.gpu_gflops;
    assert!((het_gain - 1.36).abs() < 0.15, "{het_gain}");
    // Total node speedup > 10x.
    assert!(s2.het_gflops / naive.cpu_gflops > 10.0);
    // Parallel efficiency 85-90% band (plus small model slack).
    assert!(
        s2.efficiency > 0.83 && s2.efficiency < 0.95,
        "{}",
        s2.efficiency
    );
}

#[test]
fn fig12_reaches_100_tflops_at_1024_nodes() {
    let model = ClusterModel::piz_daint(&bench_matrix(), 32);
    let square = model.weak_scaling_square(1024).expect("optimized stage");
    let last = square.last().unwrap();
    assert_eq!(last.nodes, 1024);
    assert!(
        last.tflops > 100.0,
        "paper: >100 Tflop/s; got {}",
        last.tflops
    );
    // Largest Bar system: matrix with > 6.5e9 rows.
    let bar = model.weak_scaling_bar(1024).expect("optimized stage");
    assert!(bar.last().unwrap().domain.rows() > 6_500_000_000 - 100_000_000);
}

#[test]
fn fig12_square_dip_at_4_nodes_then_flat() {
    let model = ClusterModel::piz_daint(&bench_matrix(), 32);
    let pts = model.weak_scaling_square(1024).expect("optimized stage");
    assert!(
        pts[1].efficiency < pts[0].efficiency,
        "dip when y-cuts appear"
    );
    // After the dip the efficiency stays nearly constant.
    for w in pts[1..].windows(2) {
        assert!((w[0].efficiency - w[1].efficiency).abs() < 0.03);
    }
}

#[test]
fn table3_within_factor_1p5_of_paper() {
    let model = ClusterModel::piz_daint(&bench_matrix(), 32);
    let rows = model.table3().expect("optimized stage");
    let paper = [(14.9, 164.0), (107.0, 81.0), (116.0, 75.0)];
    for (row, (p_tflops, p_hours)) in rows.iter().zip(paper) {
        let tf_ratio = row.tflops / p_tflops;
        let nh_ratio = row.node_hours / p_hours;
        assert!(
            tf_ratio > 1.0 / 1.5 && tf_ratio < 1.5,
            "{}: {} Tflop/s vs paper {p_tflops}",
            row.version,
            row.tflops
        );
        assert!(
            nh_ratio > 1.0 / 1.5 && nh_ratio < 1.5,
            "{}: {} node-h vs paper {p_hours}",
            row.version,
            row.node_hours
        );
    }
}

#[test]
fn roofline_consistency_between_modules() {
    // Eq. 9 and Eq. 11 agree when the LLC ceiling is not binding.
    let b = min_code_balance(13.0, 1);
    let p9 = roofline(&IVB, b);
    let p11 = custom_roofline(&IVB, 13.0, 1, 1.0).p_star;
    assert!((p9 - p11).abs() < 1e-9);
}

// --- Cachesim/omega validation: measured traffic vs paper Eqs. 5-8 ---

mod traffic_validation {
    use kpm_repro::obs::probe::KernelKind;
    use kpm_repro::perfmodel::cachesim::CacheConfig;
    use kpm_repro::perfmodel::omega::{measure_omega, measure_omega_kernel, omega_sweep};
    use kpm_repro::perfmodel::traffic::{stage1_solver_traffic, stage2_solver_traffic};
    use kpm_repro::topo::TopoHamiltonian;

    fn llc(kib: usize) -> CacheConfig {
        CacheConfig {
            capacity_bytes: kib * 1024,
            line_bytes: 64,
            ways: 16,
        }
    }

    /// With an LLC far larger than the working set, the simulator's DRAM
    /// traffic for one blocked sweep reproduces the analytic minimum
    /// `M/2·[Nnz(Sd+Si) + 3·R·N·Sd]` (Eq. 5 at M = 2) within line
    /// granularity.
    #[test]
    fn cold_measured_traffic_matches_minimum_formula() {
        let h = TopoHamiltonian::clean(8, 8, 4).assemble();
        for r in [4usize, 8, 16] {
            let rep = measure_omega(&h, r, llc(64 * 1024));
            let analytic = stage2_solver_traffic(h.nrows(), h.nnz(), r, 2) as u64;
            assert_eq!(rep.v_min, analytic, "v_min must BE the Eq. 5 value");
            let rel = (rep.v_meas as f64 / analytic as f64 - 1.0).abs();
            assert!(
                rel < 0.10,
                "R={r}: measured {} vs analytic {analytic} ({}% apart)",
                rep.v_meas,
                100.0 * rel
            );
        }
    }

    /// The per-kernel minimum volumes agree with the traffic-model
    /// stage formulas: aug kernels with Eq. 4's stage-1/stage-2 rows,
    /// spmv with the matrix stream plus one read + one write vector.
    #[test]
    fn kernel_minimums_match_stage_formulas() {
        let (n, nnz) = (16_000, 201_600);
        assert_eq!(
            KernelKind::AugSpmv.sweep_min_bytes(n, nnz, 1) as usize,
            stage1_solver_traffic(n, nnz, 1, 2)
        );
        for r in [1usize, 4, 16, 32] {
            assert_eq!(
                KernelKind::AugSpmmv.sweep_min_bytes(n, nnz, r) as usize,
                stage2_solver_traffic(n, nnz, r, 2)
            );
        }
        // spmv: Nnz(Sd+Si) + 2·R·N·Sd (x read + y write).
        assert_eq!(
            KernelKind::Spmv.sweep_min_bytes(n, nnz, 4) as usize,
            nnz * 20 + 2 * 4 * n * 16
        );
    }

    /// Ω ≥ 1 across block widths whose rows are line-aligned (Eq. 8: the
    /// simulator can never beat the minimum-traffic model), swept over
    /// cache sizes from LLC-resident to far-too-small.
    #[test]
    fn omega_at_least_one_across_widths_and_cache_sizes() {
        let h = TopoHamiltonian::clean(12, 12, 4).assemble();
        for kib in [16usize, 128, 1024, 16 * 1024] {
            for rep in omega_sweep(&h, &[4, 8, 16, 32], llc(kib)) {
                assert!(
                    rep.omega >= 0.99,
                    "LLC {kib} KiB, R={}: omega {}",
                    rep.r,
                    rep.omega
                );
            }
        }
    }

    /// Warm multi-sweep replay converges to the cold prediction when the
    /// working set exceeds the LLC (nothing useful survives a sweep)...
    #[test]
    fn warm_replay_matches_cold_when_out_of_cache() {
        let h = TopoHamiltonian::clean(16, 16, 4).assemble();
        for kind in [KernelKind::Spmv, KernelKind::AugSpmmv] {
            let cold = measure_omega_kernel(&h, kind, 8, llc(64), 1);
            let warm = measure_omega_kernel(&h, kind, 8, llc(64), 3);
            let rel = (warm.omega / cold.omega - 1.0).abs();
            assert!(
                rel < 0.15,
                "{kind:?}: warm {} vs cold {} ({}% apart)",
                warm.omega,
                cold.omega,
                100.0 * rel
            );
        }
    }

    /// ... and drops well below one when everything is LLC-resident:
    /// after the compulsory first sweep the replay hits in cache, which
    /// is exactly what hardware counters would report.
    #[test]
    fn warm_replay_drops_below_one_when_cache_resident() {
        let h = TopoHamiltonian::clean(6, 6, 3).assemble();
        let warm = measure_omega_kernel(&h, KernelKind::AugSpmmv, 4, llc(64 * 1024), 4);
        assert!(warm.omega < 0.5, "omega = {}", warm.omega);
    }
}
