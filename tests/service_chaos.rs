//! Tier-1 chaos suite for the service runtime.
//!
//! Runs hundreds of seeded randomized schedules — random configs,
//! random request mixes, injected worker crashes, slow solves, queue
//! poisonings, deadline storms, and both shutdown modes — and asserts
//! the runtime's core invariants on every one:
//!
//! 1. every admitted request receives exactly one terminal reply
//!    (ledger `admitted == replied`, verified per-ticket too);
//! 2. rejections are typed and carry an actionable `retry_after`;
//! 3. the service shuts down cleanly (joins its threads; `shutdown`
//!    returning *is* the proof — a deadlock hangs the test);
//! 4. successful full-quality answers remain bitwise identical to the
//!    serial solver even while the chaos layer is crashing workers.

use std::time::Duration;

use kpm_repro::core::kernels::Kernel;
use kpm_repro::core::moments::MomentSet;
use kpm_repro::core::solver::{moments_from_start, starting_vectors, KpmParams};
use kpm_repro::service::{
    chaos::install_quiet_poison_hook, Admission, ChaosPlan, Outcome, QueryKind, Request, Service,
    ServiceConfig, ShutdownMode, Ticket,
};
use kpm_repro::sparse::{CrsMatrix, KpmMatrix};
use kpm_repro::topo::{ScaleFactors, TopoHamiltonian};

const SCHEDULES: u64 = 500;

fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Tiny deterministic schedule RNG (test-local; no external deps).
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = splitmix(self.0);
        self.0
    }
    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
    fn chance(&mut self, p: f64) -> bool {
        ((self.next() >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
    }
}

/// The fixed probe query present in every schedule; its full-quality
/// answers are checked bitwise against this serial reference.
fn probe_request(fp: u64) -> Request {
    Request {
        matrix: fp,
        kind: QueryKind::Dos {
            seed: 7,
            num_random: 1,
        },
        num_moments: 12,
        kernel: Kernel::Jackson,
        points: 8,
        deadline: None,
    }
}

fn probe_reference(h: &CrsMatrix, sf: ScaleFactors) -> MomentSet {
    let params = KpmParams {
        num_moments: 12,
        num_random: 1,
        seed: 7,
        parallel: false,
        threads: 0,
        power: 1,
        first_touch: false,
    };
    let mut acc = MomentSet::zeros(12);
    for v in &starting_vectors(h.nrows(), &params) {
        acc.accumulate(&moments_from_start(h, sf, v, 12, false).expect("serial probe"));
    }
    acc
}

fn random_config(rng: &mut Rng, schedule: u64) -> ServiceConfig {
    let chaos = ChaosPlan::new(schedule)
        .with_worker_crashes([0.0, 0.3, 0.7][rng.below(3) as usize])
        .with_slow_solver(
            [0.0, 0.4][rng.below(2) as usize],
            Duration::from_micros(200 + rng.below(800)),
        );
    let chaos = if rng.chance(0.3) {
        chaos.with_queue_poisoning(1 + rng.below(4))
    } else {
        chaos
    };
    ServiceConfig {
        workers: 1 + rng.below(2) as usize,
        queue_capacity: 2 + rng.below(6) as usize,
        max_batch_width: [1, 4, 8][rng.below(3) as usize],
        batch_window: Duration::from_micros(rng.below(300)),
        default_deadline: Duration::from_millis(500),
        max_retries: rng.below(3) as u32,
        backoff_base: Duration::from_micros(50),
        backoff_max: Duration::from_micros(500),
        hedge_after: if rng.chance(0.5) {
            Some(Duration::from_micros(200 + rng.below(2000)))
        } else {
            None
        },
        degrade_at_depth: 0.5,
        min_degraded_moments: 4,
        breaker_threshold: 1 + rng.below(3) as u32,
        breaker_cooldown: Duration::from_micros(200),
        cache_capacity: 8,
        parallel_solve: schedule.is_multiple_of(2),
        power: 1 + (schedule % 3) as usize,
        seed: schedule,
        chaos: Some(chaos),
    }
}

fn random_request(rng: &mut Rng, fp: u64, i: u64) -> Request {
    let kind = match rng.below(3) {
        0 => QueryKind::Dos {
            seed: i,
            num_random: 1 + rng.below(2) as usize,
        },
        1 => QueryKind::Ldos {
            site: rng.below(8) as usize,
        },
        _ => QueryKind::Green {
            seed: i,
            num_random: 1,
        },
    };
    // A deadline storm: some requests carry budgets the injected
    // slowdowns all but guarantee to blow, some are instantly doomed.
    let deadline = match rng.below(4) {
        0 => Some(Duration::ZERO),
        1 => Some(Duration::from_micros(800)),
        _ => None,
    };
    Request {
        // Occasionally name a matrix nobody registered.
        matrix: if rng.chance(0.05) { fp ^ 1 } else { fp },
        kind,
        num_moments: 8 + 2 * rng.below(4) as usize,
        kernel: [Kernel::Jackson, Kernel::Dirichlet, Kernel::Lorentz(3.0)][rng.below(3) as usize],
        points: 8,
        deadline,
    }
}

/// The headline invariant, over hundreds of randomized chaos schedules:
/// no admitted request is ever lost, no schedule deadlocks, and the
/// arithmetic stays bitwise-serial whenever a full-quality answer is
/// produced.
#[test]
fn randomized_chaos_schedules_never_lose_an_admitted_request() {
    install_quiet_poison_hook();
    let h = TopoHamiltonian::clean(2, 2, 2).assemble();
    let sf = ScaleFactors::from_gershgorin(&h, 0.01);
    let reference = probe_reference(&h, sf);

    for schedule in 0..SCHEDULES {
        let mut rng = Rng(splitmix(
            schedule.wrapping_mul(0x5851_f42d_4c95_7f2d) ^ 0xabcd,
        ));
        let svc = Service::start(random_config(&mut rng, schedule));
        let fp = svc.register_matrix(KpmMatrix::crs(h.clone()), sf);

        let mut tickets: Vec<Ticket> = Vec::new();
        let mut rejections = 0u64;
        let mut submit =
            |svc: &Service, req: Request, tickets: &mut Vec<Ticket>| match svc.submit(req) {
                Admission::Admitted(t) => tickets.push(t),
                Admission::Rejected { retry_after, .. } => {
                    assert!(
                        retry_after > Duration::ZERO,
                        "schedule {schedule}: rejection without an actionable hint"
                    );
                    rejections += 1;
                }
            };

        submit(&svc, probe_request(fp), &mut tickets);
        let extra = 2 + rng.below(5);
        for i in 0..extra {
            submit(&svc, random_request(&mut rng, fp, i), &mut tickets);
            if rng.chance(0.3) {
                std::thread::sleep(Duration::from_micros(rng.below(400)));
            }
        }

        let mode = if rng.chance(0.5) {
            ShutdownMode::Drain
        } else {
            ShutdownMode::Abort
        };
        // Invariant 3: shutdown returns (no deadlock) and joins cleanly.
        let ledger = svc.shutdown(mode);

        // Invariant 1: exactly one terminal reply per admitted ticket,
        // already buffered by the time shutdown returned.
        for t in &tickets {
            let resp = t
                .wait_timeout(Duration::from_secs(10))
                .unwrap_or_else(|| panic!("schedule {schedule}: admitted request lost"));
            assert!(
                t.rx.try_recv().is_err(),
                "schedule {schedule}: duplicate terminal reply"
            );
            // Invariant 4: full-quality probe answers stay bitwise.
            if resp.id == 1 {
                if let Outcome::Success(answer) = &resp.outcome {
                    assert_eq!(
                        answer.moments.as_slice(),
                        reference.as_slice(),
                        "schedule {schedule}: chaos changed the probe arithmetic"
                    );
                }
            }
        }
        assert_eq!(
            ledger.admitted,
            tickets.len() as u64,
            "schedule {schedule}: admitted count drifted"
        );
        assert_eq!(
            ledger.rejected, rejections,
            "schedule {schedule}: rejected count drifted"
        );
        assert!(
            ledger.consistent(),
            "schedule {schedule}: ledger imbalance {ledger:?}"
        );
    }
}
