//! Property-based tests (proptest) on the core kernels and data
//! structures: the fused kernels must equal the naive BLAS-1 chain for
//! *any* Hermitian matrix and block width, formats must round-trip, and
//! the KPM moment invariants must hold.

use kpm_repro::core::solver::{kpm_moments, KpmParams, KpmVariant};
use kpm_repro::num::vector::{axpy, dot, nrm2, scal};
use kpm_repro::num::{BlockVector, Complex64, Vector};
use kpm_repro::sparse::aug::{aug_spmmv, aug_spmv};
use kpm_repro::sparse::spmv::{spmmv, spmv};
use kpm_repro::sparse::{CooMatrix, CrsMatrix, SellMatrix};
use kpm_repro::topo::{ScaleFactors, TopoHamiltonian};
use proptest::prelude::*;

/// Strategy: a random Hermitian matrix of dimension `4..=40` with a few
/// off-diagonal pairs per row, plus matching seed data.
fn hermitian_matrix() -> impl Strategy<Value = CrsMatrix> {
    (4usize..=40, 0usize..=4, any::<u64>()).prop_map(|(n, per_row, seed)| {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let mut coo = CooMatrix::new(n, n);
        for r in 0..n {
            coo.push(r, r, Complex64::real(rng.gen_range(-1.0..1.0)));
            for _ in 0..per_row {
                let c = rng.gen_range(0..n);
                if c != r {
                    let v = Complex64::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0));
                    coo.push(r, c, v);
                    coo.push(c, r, v.conj());
                }
            }
        }
        coo.to_crs()
    })
}

/// Strategy: a random TI lattice — clean or quantum-dot potential, with
/// the z extent allowed to run long so the level set is deep enough for
/// the matrix-power wavefront to engage on some of the cases.
fn lattice() -> impl Strategy<Value = TopoHamiltonian> {
    (2usize..=4, 2usize..=4, 2usize..=10, any::<bool>()).prop_map(|(nx, ny, nz, dots)| {
        if dots {
            TopoHamiltonian::quantum_dot_superlattice(nx, ny, nz)
        } else {
            TopoHamiltonian::clean(nx, ny, nz)
        }
    })
}

fn cvec(n: usize, seed: u64) -> Vec<Complex64> {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let mut rng = StdRng::seed_from_u64(seed);
    Vector::random(n, &mut rng).into_vec()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn generated_matrices_are_hermitian(h in hermitian_matrix()) {
        prop_assert!(h.is_hermitian());
    }

    #[test]
    fn aug_spmv_equals_naive_chain(h in hermitian_matrix(), a in -2.0f64..2.0, b in -1.0f64..1.0, seed in any::<u64>()) {
        let n = h.nrows();
        let v = cvec(n, seed);
        let w0 = cvec(n, seed.wrapping_add(1));

        // Naive: u = Hv; u -= b v; w = -w; w += 2a u; dots separately.
        let mut u = vec![Complex64::default(); n];
        spmv(&h, &v, &mut u);
        axpy(Complex64::real(-b), &v, &mut u);
        let mut w_naive = w0.clone();
        scal(Complex64::real(-1.0), &mut w_naive);
        axpy(Complex64::real(2.0 * a), &u, &mut w_naive);
        let even_ref = nrm2(&v);
        let odd_ref = dot(&w_naive, &v);

        let mut w_aug = w0;
        let dots = aug_spmv(&h, a, b, &v, &mut w_aug);
        for (x, y) in w_aug.iter().zip(&w_naive) {
            prop_assert!(x.approx_eq(*y, 1e-10));
        }
        prop_assert!((dots.eta_even - even_ref).abs() < 1e-8);
        prop_assert!(dots.eta_odd.approx_eq(odd_ref, 1e-8));
    }

    #[test]
    fn aug_spmmv_equals_columnwise_aug_spmv(h in hermitian_matrix(), r in 1usize..=8, seed in any::<u64>()) {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let n = h.nrows();
        let mut rng = StdRng::seed_from_u64(seed);
        let v = BlockVector::random(n, r, &mut rng);
        let w0 = BlockVector::random(n, r, &mut rng);
        let mut w = w0.clone();
        let dots = aug_spmmv(&h, 0.7, -0.2, &v, &mut w);
        for j in 0..r {
            let vc = v.column(j).into_vec();
            let mut wc = w0.column(j).into_vec();
            let d = aug_spmv(&h, 0.7, -0.2, &vc, &mut wc);
            let got = w.column(j).into_vec();
            for (x, y) in got.iter().zip(&wc) {
                prop_assert!(x.approx_eq(*y, 1e-10));
            }
            prop_assert!((dots.eta_even[j] - d.eta_even).abs() < 1e-8);
            prop_assert!(dots.eta_odd[j].approx_eq(d.eta_odd, 1e-8));
        }
    }

    #[test]
    fn sell_spmv_equals_crs_spmv(h in hermitian_matrix(), c_exp in 0u32..=5, seed in any::<u64>()) {
        let c = 1usize << c_exp;
        let sigma = if c == 1 { 1 } else { 4 * c };
        let sell = SellMatrix::from_crs(&h, c, sigma);
        let x = cvec(h.nrows(), seed);
        let mut y_crs = vec![Complex64::default(); h.nrows()];
        let mut y_sell = y_crs.clone();
        spmv(&h, &x, &mut y_crs);
        sell.spmv(&x, &mut y_sell);
        for (a, b) in y_crs.iter().zip(&y_sell) {
            prop_assert!(a.approx_eq(*b, 1e-10));
        }
        prop_assert!(sell.beta() <= 1.0 + 1e-12);
        prop_assert_eq!(sell.nnz(), h.nnz());
    }

    #[test]
    fn spmmv_linearity(h in hermitian_matrix(), r in 1usize..=4, seed in any::<u64>()) {
        // A(x + y) = Ax + Ay, columnwise over the block.
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let n = h.nrows();
        let mut rng = StdRng::seed_from_u64(seed);
        let x = BlockVector::random(n, r, &mut rng);
        let y = BlockVector::random(n, r, &mut rng);
        let mut xy = BlockVector::zeros(n, r);
        for i in 0..n {
            for j in 0..r {
                xy.set(i, j, x.get(i, j) + y.get(i, j));
            }
        }
        let mut ax = BlockVector::zeros(n, r);
        let mut ay = BlockVector::zeros(n, r);
        let mut axy = BlockVector::zeros(n, r);
        spmmv(&h, &x, &mut ax);
        spmmv(&h, &y, &mut ay);
        spmmv(&h, &xy, &mut axy);
        for i in 0..n {
            for j in 0..r {
                prop_assert!(axy.get(i, j).approx_eq(ax.get(i, j) + ay.get(i, j), 1e-9));
            }
        }
    }

    #[test]
    fn moments_bounded_and_mu0_unit(h in hermitian_matrix(), seed in any::<u64>()) {
        let sf = ScaleFactors::from_gershgorin(&h, 0.05);
        let p = KpmParams { num_moments: 16, num_random: 2, seed, parallel: false, threads: 0, power: 1, first_touch: false };
        let set = kpm_moments(&h, sf, &p, KpmVariant::AugSpmmv).unwrap();
        prop_assert!((set.as_slice()[0] - 1.0).abs() < 1e-10);
        for &mu in set.as_slice() {
            prop_assert!(mu.abs() <= 1.0 + 1e-9);
            prop_assert!(mu.is_finite());
        }
    }

    #[test]
    fn rayleigh_quotient_within_gershgorin(h in hermitian_matrix(), seed in any::<u64>()) {
        let n = h.nrows();
        let v = cvec(n, seed);
        let mut hv = vec![Complex64::default(); n];
        spmv(&h, &v, &mut hv);
        let den = nrm2(&v);
        prop_assume!(den > 1e-12);
        let q = dot(&v, &hv).re / den;
        let (lo, hi) = h.gershgorin_bounds();
        prop_assert!(q >= lo - 1e-9 && q <= hi + 1e-9);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn sell_aug_kernels_bitwise_equal_crs(h in hermitian_matrix(), c_idx in 0usize..4, s_idx in 0usize..3, r in 1usize..=4, seed in any::<u64>()) {
        // The augmented SELL kernels must be *bitwise* identical to
        // their CRS counterparts for any C, any sort window sigma, and
        // any random row-length distribution (SELL-1-1 is the CRS
        // degenerate case and is part of the grid).
        use kpm_repro::sparse::aug_sell;
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let c = [1usize, 4, 8, 32][c_idx];
        let sigma = [1usize, c, 4 * c][s_idx];
        let sell = SellMatrix::from_crs(&h, c, sigma);
        let n = h.nrows();

        // Single-vector augmented kernel.
        let v = cvec(n, seed);
        let w0 = cvec(n, seed.wrapping_add(7));
        let mut w_crs = w0.clone();
        let d_crs = aug_spmv(&h, 0.7, -0.2, &v, &mut w_crs);
        let mut w_sell = w0;
        let d_sell = aug_sell::aug_spmv(&sell, 0.7, -0.2, &v, &mut w_sell);
        prop_assert_eq!(&w_crs, &w_sell);
        prop_assert!(d_crs == d_sell, "aug_spmv dots differ for SELL-{}-{}", c, sigma);

        // Blocked augmented kernel.
        let mut rng = StdRng::seed_from_u64(seed);
        let vb = BlockVector::random(n, r, &mut rng);
        let wb0 = BlockVector::random(n, r, &mut rng);
        let mut wb_crs = wb0.clone();
        let db_crs = aug_spmmv(&h, 0.7, -0.2, &vb, &mut wb_crs);
        let mut wb_sell = wb0;
        let db_sell = aug_sell::aug_spmmv(&sell, 0.7, -0.2, &vb, &mut wb_sell);
        prop_assert_eq!(wb_crs, wb_sell);
        prop_assert!(db_crs == db_sell, "aug_spmmv dots differ for SELL-{}-{}", c, sigma);
    }

    #[test]
    fn sell_parallel_aug_kernels_bitwise_equal_crs_parallel(h in hermitian_matrix(), c_idx in 0usize..4, cpt in 1usize..=5, seed in any::<u64>()) {
        // Parallel twins: same contract, for 1 and 4 worker threads and
        // any SELL task granularity (chunks_per_task is a scheduling
        // knob, never an arithmetic one).
        use kpm_repro::sparse::aug::{aug_spmmv_par, aug_spmv_par};
        use kpm_repro::sparse::aug_sell;
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let c = [1usize, 4, 8, 32][c_idx];
        let sell = SellMatrix::from_crs(&h, c, 4 * c).with_chunks_per_task(cpt);
        let n = h.nrows();
        let v = cvec(n, seed);
        let w0 = cvec(n, seed.wrapping_add(11));
        let mut rng = StdRng::seed_from_u64(seed);
        let vb = BlockVector::random(n, 3, &mut rng);
        let wb0 = BlockVector::random(n, 3, &mut rng);
        for threads in [1usize, 4] {
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .expect("thread pool");
            let (w_crs, d_crs, w_sell, d_sell, wb_crs, db_crs, wb_sell, db_sell) = pool.install(|| {
                let mut w_crs = w0.clone();
                let d_crs = aug_spmv_par(&h, 0.7, -0.2, &v, &mut w_crs);
                let mut w_sell = w0.clone();
                let d_sell = aug_sell::aug_spmv_par(&sell, 0.7, -0.2, &v, &mut w_sell);
                let mut wb_crs = wb0.clone();
                let db_crs = aug_spmmv_par(&h, 0.7, -0.2, &vb, &mut wb_crs);
                let mut wb_sell = wb0.clone();
                let db_sell = aug_sell::aug_spmmv_par(&sell, 0.7, -0.2, &vb, &mut wb_sell);
                (w_crs, d_crs, w_sell, d_sell, wb_crs, db_crs, wb_sell, db_sell)
            });
            prop_assert_eq!(&w_crs, &w_sell);
            prop_assert!(d_crs == d_sell, "parallel aug_spmv dots differ at T={}", threads);
            prop_assert_eq!(wb_crs, wb_sell);
            prop_assert!(db_crs == db_sell, "parallel aug_spmmv dots differ at T={}", threads);
        }
    }

    #[test]
    fn simd_sell_kernels_bitwise_equal_crs_with_ragged_tails(h in hermitian_matrix(), c_idx in 0usize..4, r in 1usize..=5, seed in any::<u64>()) {
        // The lane dimension of the SELL kernels is the chunk height C;
        // the blocked gathers vectorize along the block width r. Odd
        // C (and matrices whose row count is not a multiple of C) force
        // the scalar remainder tails of both dimensions, and the random
        // n in 4..=40 guarantees a short final chunk on most cases. The
        // vector bodies must still match scalar CRS bit for bit — with
        // the runtime toggle in either position. On a scalar build both
        // arms compile to the same code and the test pins the degenerate
        // case; under `--features simd` it is the real comparison.
        use kpm_repro::sparse::{aug_sell, simd};
        let c = [3usize, 5, 7, 8][c_idx]; // odd heights: remainder lanes
        let sell = SellMatrix::from_crs(&h, c, c); // sigma = C keeps odd C valid
        let n = h.nrows();
        let v = cvec(n, seed);
        let w0 = cvec(n, seed.wrapping_add(3));
        let mut rng = {
            use rand::SeedableRng;
            rand::rngs::StdRng::seed_from_u64(seed)
        };
        let vb = BlockVector::random(n, r, &mut rng);
        let wb0 = BlockVector::random(n, r, &mut rng);

        let mut w_crs = w0.clone();
        let d_crs = aug_spmv(&h, 0.7, -0.2, &v, &mut w_crs);
        let mut wb_crs = wb0.clone();
        let db_crs = aug_spmmv(&h, 0.7, -0.2, &vb, &mut wb_crs);

        for simd_on in [false, true] {
            simd::set_enabled(simd_on);
            let mut w_sell = w0.clone();
            let d_sell = aug_sell::aug_spmv(&sell, 0.7, -0.2, &v, &mut w_sell);
            let mut wb_sell = wb0.clone();
            let db_sell = aug_sell::aug_spmmv(&sell, 0.7, -0.2, &vb, &mut wb_sell);
            prop_assert_eq!(&w_crs, &w_sell);
            prop_assert!(d_crs == d_sell, "aug_spmv dots differ for SELL-{}-{} simd={}", c, c, simd_on);
            prop_assert_eq!(&wb_crs, &wb_sell);
            prop_assert!(db_crs == db_sell, "aug_spmmv dots differ for SELL-{}-{} simd={}", c, c, simd_on);
        }
        simd::set_enabled(true);
    }

    #[test]
    fn warp_executor_equals_cpu_kernel(h in hermitian_matrix(), r in 1usize..=40, seed in any::<u64>()) {
        use kpm_repro::simgpu::warp_exec::aug_spmmv_warp_exec;
        use kpm_repro::simgpu::GpuDevice;
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let d = GpuDevice::k20m();
        let n = h.nrows();
        let mut rng = StdRng::seed_from_u64(seed);
        let v = BlockVector::random(n, r, &mut rng);
        let w0 = BlockVector::random(n, r, &mut rng);
        let mut w_cpu = w0.clone();
        let mut w_gpu = w0;
        let d_cpu = aug_spmmv(&h, 0.3, 0.2, &v, &mut w_cpu);
        let d_gpu = aug_spmmv_warp_exec(&d, &h, 0.3, 0.2, &v, &mut w_gpu);
        prop_assert_eq!(w_cpu, w_gpu);
        for j in 0..r {
            prop_assert!((d_cpu.eta_even[j] - d_gpu.eta_even[j]).abs() < 1e-8);
            prop_assert!(d_cpu.eta_odd[j].approx_eq(d_gpu.eta_odd[j], 1e-8));
        }
    }

    #[test]
    fn evolution_preserves_norm_for_any_hermitian(h in hermitian_matrix(), t in -5.0f64..5.0, seed in any::<u64>()) {
        use kpm_repro::core::evolution::evolve;
        let sf = ScaleFactors::from_gershgorin(&h, 0.05);
        let mut v = Vector::from_vec(cvec(h.nrows(), seed));
        prop_assume!(v.norm() > 1e-9);
        v.normalize();
        let out = evolve(&h, sf, &v, t);
        prop_assert!((out.norm() - 1.0).abs() < 1e-9, "norm {}", out.norm());
    }

    #[test]
    fn mm_roundtrip_any_hermitian(h in hermitian_matrix()) {
        use kpm_repro::sparse::io::{read, write_hermitian};
        use std::io::BufReader;
        let mut buf = Vec::new();
        write_hermitian(&h, &mut buf).unwrap();
        let back = read(BufReader::new(buf.as_slice())).unwrap();
        prop_assert_eq!(h, back);
    }

    #[test]
    fn cache_blocked_matches_plain_any_matrix(h in hermitian_matrix(), cb in 1usize..=64, seed in any::<u64>()) {
        use kpm_repro::sparse::blocked::CacheBlockedCrs;
        use kpm_repro::sparse::spmv::spmmv;
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let n = h.nrows();
        let mut rng = StdRng::seed_from_u64(seed);
        let x = BlockVector::random(n, 3, &mut rng);
        let mut y_ref = BlockVector::zeros(n, 3);
        spmmv(&h, &x, &mut y_ref);
        let blocked = CacheBlockedCrs::from_crs(&h, cb);
        let mut y = BlockVector::zeros(n, 3);
        blocked.spmmv(&x, &mut y);
        prop_assert!(y.max_abs_diff(&y_ref) < 1e-10);
    }

    #[test]
    fn eigencount_fraction_bounded(h in hermitian_matrix(), seed in any::<u64>()) {
        use kpm_repro::core::eigencount::window_fraction;
        use kpm_repro::core::solver::kpm_moments;
        let sf = ScaleFactors::from_gershgorin(&h, 0.05);
        let p = KpmParams { num_moments: 16, num_random: 2, seed, parallel: false, threads: 0, power: 1, first_touch: false };
        let set = kpm_moments(&h, sf, &p, KpmVariant::AugSpmmv).unwrap();
        let f = window_fraction(&set, kpm_repro::core::Kernel::Jackson, -0.5, 0.5);
        // Jackson-damped fractions stay within [-eps, 1+eps].
        prop_assert!(f > -1e-6 && f < 1.0 + 1e-6, "fraction {f}");
        let whole = window_fraction(&set, kpm_repro::core::Kernel::Jackson, -1.0, 1.0);
        prop_assert!((whole - 1.0).abs() < 1e-9);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn stencil_kernels_bitwise_equal_crs(ham in lattice(), r in 1usize..=4, seed in any::<u64>()) {
        // The matrix-free stencil regenerates rows from the lattice
        // geometry; every kernel result must be *bitwise* equal to the
        // assembled CRS operator — any lattice shape, any block width,
        // any thread count.
        use kpm_repro::sparse::aug::{aug_spmmv_par, aug_spmv_par};
        use kpm_repro::sparse::SparseKernels;
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let h = ham.assemble();
        let st = ham.stencil_matrix();
        prop_assert_eq!(st.nrows(), h.nrows());
        prop_assert_eq!(SparseKernels::nnz(&st), h.nnz());
        let n = h.nrows();

        // Single-vector augmented kernel.
        let v = cvec(n, seed);
        let w0 = cvec(n, seed.wrapping_add(3));
        let mut w_crs = w0.clone();
        let d_crs = aug_spmv(&h, 0.7, -0.2, &v, &mut w_crs);
        let mut w_st = w0.clone();
        let d_st = st.aug_spmv(0.7, -0.2, &v, &mut w_st);
        prop_assert_eq!(&w_crs, &w_st);
        prop_assert!(d_crs == d_st, "stencil aug_spmv dots differ");

        // Blocked augmented kernel.
        let mut rng = StdRng::seed_from_u64(seed);
        let vb = BlockVector::random(n, r, &mut rng);
        let wb0 = BlockVector::random(n, r, &mut rng);
        let mut wb_crs = wb0.clone();
        let db_crs = aug_spmmv(&h, 0.7, -0.2, &vb, &mut wb_crs);
        let mut wb_st = wb0.clone();
        let db_st = st.aug_spmmv(0.7, -0.2, &vb, &mut wb_st);
        prop_assert_eq!(&wb_crs, &wb_st);
        prop_assert!(db_crs == db_st, "stencil aug_spmmv dots differ");

        // Parallel twins at 1 and 4 worker threads.
        for threads in [1usize, 4] {
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .expect("thread pool");
            let (w_p_crs, d_p_crs, w_p_st, d_p_st, wb_p_crs, db_p_crs, wb_p_st, db_p_st) =
                pool.install(|| {
                    let mut w_p_crs = w0.clone();
                    let d_p_crs = aug_spmv_par(&h, 0.7, -0.2, &v, &mut w_p_crs);
                    let mut w_p_st = w0.clone();
                    let d_p_st = st.aug_spmv_par(0.7, -0.2, &v, &mut w_p_st);
                    let mut wb_p_crs = wb0.clone();
                    let db_p_crs = aug_spmmv_par(&h, 0.7, -0.2, &vb, &mut wb_p_crs);
                    let mut wb_p_st = wb0.clone();
                    let db_p_st = st.aug_spmmv_par(0.7, -0.2, &vb, &mut wb_p_st);
                    (w_p_crs, d_p_crs, w_p_st, d_p_st, wb_p_crs, db_p_crs, wb_p_st, db_p_st)
                });
            prop_assert_eq!(&w_p_crs, &w_p_st);
            prop_assert!(d_p_crs == d_p_st, "parallel stencil aug_spmv dots differ at T={}", threads);
            prop_assert_eq!(&wb_p_crs, &wb_p_st);
            prop_assert!(db_p_crs == db_p_st, "parallel stencil aug_spmmv dots differ at T={}", threads);
        }
    }

    #[test]
    fn power_kernel_equals_serial_sweeps(ham in lattice(), p_idx in 0usize..3, r in 1usize..=3, seed in any::<u64>()) {
        // aug_spmmv_power(p) must equal p explicit swap-and-sweep steps
        // bit for bit — whether the handle takes the level-blocked
        // wavefront or falls back to plain sweeps, and at any thread
        // count.
        use kpm_repro::sparse::{KpmMatrix, SparseKernels};
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let p = [1usize, 2, 4][p_idx];
        let h = ham.assemble();
        let n = h.nrows();
        let mut rng = StdRng::seed_from_u64(seed);
        let v0 = BlockVector::random(n, r, &mut rng);
        let w0 = BlockVector::random(n, r, &mut rng);

        // Reference: p explicit swap-and-sweep steps on plain CRS. The
        // parallel kernels pin their fused-dot reduction to fixed chunk
        // boundaries, which beyond one chunk associate differently from
        // the single serial stream — so the parallel branch gets its own
        // (thread-count-invariant) parallel-sweep reference.
        let mut v_ref = v0.clone();
        let mut w_ref = w0.clone();
        let mut dots_ref = Vec::with_capacity(p);
        for _ in 0..p {
            v_ref.swap(&mut w_ref);
            dots_ref.push(aug_spmmv(&h, 0.7, -0.2, &v_ref, &mut w_ref));
        }
        let dots_ref_par = {
            use kpm_repro::sparse::aug::aug_spmmv_par;
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(1)
                .build()
                .expect("thread pool");
            let (v_pr, w_pr, dots) = pool.install(|| {
                let mut v_pr = v0.clone();
                let mut w_pr = w0.clone();
                let mut dots = Vec::with_capacity(p);
                for _ in 0..p {
                    v_pr.swap(&mut w_pr);
                    dots.push(aug_spmmv_par(&h, 0.7, -0.2, &v_pr, &mut w_pr));
                }
                (v_pr, w_pr, dots)
            });
            prop_assert_eq!(&v_pr, &v_ref);
            prop_assert_eq!(&w_pr, &w_ref);
            dots
        };

        for m in [KpmMatrix::crs(h.clone()), KpmMatrix::stencil(ham.stencil_matrix())] {
            let mut v = v0.clone();
            let mut w = w0.clone();
            let dots = m.aug_spmmv_power(p, 0.7, -0.2, &mut v, &mut w);
            prop_assert_eq!(&v, &v_ref);
            prop_assert_eq!(&w, &w_ref);
            prop_assert!(dots == dots_ref, "{:?} power dots differ at p={}", m.format(), p);

            for threads in [1usize, 4] {
                let pool = rayon::ThreadPoolBuilder::new()
                    .num_threads(threads)
                    .build()
                    .expect("thread pool");
                let (v, w, dots) = pool.install(|| {
                    let mut v = v0.clone();
                    let mut w = w0.clone();
                    let dots = m.aug_spmmv_power_par(p, 0.7, -0.2, &mut v, &mut w);
                    (v, w, dots)
                });
                prop_assert_eq!(&v, &v_ref);
                prop_assert_eq!(&w, &w_ref);
                prop_assert!(
                    dots == dots_ref_par,
                    "{:?} parallel power dots differ at p={}, T={}", m.format(), p, threads
                );
            }
        }
    }
}
