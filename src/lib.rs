//! Umbrella crate for the KPM reproduction workspace.
//!
//! Re-exports every workspace crate under one roof so examples and
//! integration tests can `use kpm_repro::...` without naming each member
//! crate individually. See `DESIGN.md` at the repository root for the
//! system inventory and `EXPERIMENTS.md` for the paper-vs-measured
//! record.

pub use kpm_core as core;
pub use kpm_hetsim as hetsim;
pub use kpm_num as num;
pub use kpm_obs as obs;
pub use kpm_perfmodel as perfmodel;
pub use kpm_service as service;
pub use kpm_simgpu as simgpu;
pub use kpm_sparse as sparse;
pub use kpm_topo as topo;
