//! `kpm` — command-line front end for the KPM library.
//!
//! ```text
//! kpm generate --nx 20 --ny 20 --nz 10 --out ti.mtx     # write a TI matrix
//! kpm info ti.mtx                                       # structure report
//! kpm dos ti.mtx --moments 512 --random 16              # DOS as CSV
//! kpm dos --nx 20 --ny 20 --nz 10                       # ... without a file
//! kpm count ti.mtx --from -0.5 --to 0.5                 # eigenvalue count
//! kpm report --nx 20 --ny 20 --nz 10 --random 8         # achieved vs model
//! ```
//!
//! Matrices are exchanged in Matrix Market format (`coordinate complex
//! hermitian/general`), so the tool interoperates with SuiteSparse-style
//! collections.
//!
//! Every subcommand rejects flags it does not know (a typo like
//! `--moment 512` fails instead of silently running with the default),
//! and all diagnostics go to stderr so CSV output on stdout stays
//! machine-clean. `--metrics-out FILE.jsonl` / `--trace-out FILE.json`
//! enable the `kpm-obs` instrumentation and export its registry when
//! the command finishes.

use std::fs::File;
use std::io::{BufReader, BufWriter};
use std::path::Path;
use std::process::ExitCode;

use kpm_repro::core::dos::reconstruct;
use kpm_repro::core::eigencount::count_from_moments;
use kpm_repro::core::solver::{kpm_moments, KpmParams, KpmVariant};
use kpm_repro::core::Kernel;
use kpm_repro::obs;
use kpm_repro::perfmodel::cachesim::CacheConfig;
use kpm_repro::perfmodel::machine::Machine;
use kpm_repro::perfmodel::omega::measure_omega_kernel;
use kpm_repro::perfmodel::roofline::custom_roofline;
use kpm_repro::service::{
    Admission, QueryKind, RejectReason, Request, Service, ServiceConfig, ShutdownMode,
};
use kpm_repro::sparse::{
    autotune_formats, io as mmio, stats, AutotuneEnv, CrsMatrix, FormatSpec, KpmMatrix,
    SparseKernels,
};
use kpm_repro::topo::{ScaleFactors, TopoHamiltonian};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("generate") => cmd_generate(&args[1..]),
        Some("info") => cmd_info(&args[1..]),
        Some("dos") => cmd_dos(&args[1..]),
        Some("count") => cmd_count(&args[1..]),
        Some("report") => cmd_report(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("stats") => cmd_stats(&args[1..]),
        Some("trace-report") => cmd_trace_report(&args[1..]),
        Some("--help") | Some("-h") | None => {
            eprintln!("{USAGE}");
            Ok(())
        }
        Some(other) => Err(format!("unknown subcommand '{other}'\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("kpm: {msg}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage:
  kpm generate --nx N --ny N --nz N [--potential dots] --out FILE.mtx
  kpm info FILE.mtx
  kpm dos [FILE.mtx | --nx N --ny N --nz N] [--moments M] [--random R] [--points K]
  kpm count [FILE.mtx | --nx N --ny N --nz N] --from E --to E [--moments M] [--random R]
  kpm report [FILE.mtx | --nx N --ny N --nz N] [--moments M] [--random R]
             [--machine IVB|SNB|K20m|K20X] [--llc-mib F] [--sweeps S]
  kpm serve  [FILE.mtx | --nx N --ny N --nz N] [--workers W] [--queue Q]
             [--width R] [--window-us U] [--deadline-ms D] [--points K]
             [--kernel jackson|dirichlet|lorentz] [--lambda L]
             [--slo-ms MS] [--slo-goal G] [--flight-recorder PREFIX]
             (requests on stdin: 'dos SEED R M [MS]' | 'ldos SITE M [MS]'
              | 'green SEED R M [MS]'; one JSON reply line per request)
  kpm stats  FILE.jsonl      (metrics JSONL -> Prometheus text exposition)
  kpm trace-report FILE.json [--machine IVB|SNB|K20m|K20X] [--flight FILE.jsonl]
             (per-request critical path + roofline attribution from a
              Chrome trace export; optionally merges a flight-recorder dump)
common:
  --threads T                worker threads (0 = KPM_THREADS env, else all cores)
  --format crs|sell|stencil  matrix storage format for the solver (default crs;
                             stencil is matrix-free and needs --nx/--ny/--nz)
  --sell-c C                 SELL chunk height (default 8)
  --sell-sigma S             SELL sort window; 1 or a multiple of C (default 4C)
  --power-blocking P         Chebyshev iterations per matrix sweep via the
                             level-blocked kernels (default 1; bitwise-invariant)
  --autotune                 pick format, C, sigma and task grain from the
                             row-length distribution and the machine model
  --simd / --no-simd         force the explicit-SIMD kernel bodies on/off
                             (on by default when built with --features simd;
                             --simd on a scalar build warns and runs scalar;
                             moments are bitwise-identical either way)
  --first-touch              NUMA first-touch placement: fault matrix chunks
                             and block-vector rows from the workers that
                             stream them (placement only; bitwise-identical)
  --metrics-out FILE.jsonl   export the kpm-obs metrics registry
  --trace-out FILE.json      export spans as a Chrome trace-event file";

/// Flags shared by every matrix source.
const MATRIX_FLAGS: &[&str] = &["--nx", "--ny", "--nz", "--potential"];
/// Flags of the shared-memory solver.
const SOLVER_FLAGS: &[&str] = &["--moments", "--random", "--seed", "--threads"];
/// `--threads` alone, for subcommands that do parallel work without the
/// full solver parameter set.
const THREADS_FLAGS: &[&str] = &["--threads"];
/// Observability exports, accepted by every solver-running subcommand.
const OBS_FLAGS: &[&str] = &["--metrics-out", "--trace-out"];
/// Storage-format selection, accepted by every solver-running
/// subcommand.
const FORMAT_FLAGS: &[&str] = &[
    "--format",
    "--sell-c",
    "--sell-sigma",
    "--power-blocking",
    "--autotune",
    "--simd",
    "--no-simd",
    "--first-touch",
];
/// Flags that take no value (presence toggles).
const BOOLEAN_FLAGS: &[&str] = &["--autotune", "--simd", "--no-simd", "--first-touch"];

/// Rejects any `--flag` not in `allowed` and any second positional
/// argument, so typos fail loudly instead of silently running with a
/// default value.
fn check_args(args: &[String], allowed: &[&[&str]]) -> Result<(), String> {
    let mut positionals = 0usize;
    let mut skip = false;
    for a in args {
        if skip {
            skip = false;
            continue;
        }
        if let Some(flag) = a.strip_prefix("--").map(|_| a.as_str()) {
            if !allowed.iter().any(|set| set.contains(&flag)) {
                let hint = allowed
                    .iter()
                    .flat_map(|set| set.iter())
                    .find(|c| c.starts_with(flag) || flag.starts_with(**c))
                    .map(|c| format!(" (did you mean {c}?)"))
                    .unwrap_or_default();
                return Err(format!("unknown flag '{flag}'{hint}\n{USAGE}"));
            }
            skip = !BOOLEAN_FLAGS.contains(&flag);
            continue;
        }
        positionals += 1;
        if positionals > 1 {
            return Err(format!("unexpected extra argument '{a}'\n{USAGE}"));
        }
    }
    Ok(())
}

/// `--flag value` lookup.
fn opt<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn opt_usize(args: &[String], name: &str, default: usize) -> Result<usize, String> {
    match opt(args, name) {
        None => Ok(default),
        Some(v) => v.parse().map_err(|_| format!("bad value for {name}: {v}")),
    }
}

fn opt_f64(args: &[String], name: &str) -> Result<Option<f64>, String> {
    match opt(args, name) {
        None => Ok(None),
        Some(v) => v
            .parse()
            .map(Some)
            .map_err(|_| format!("bad value for {name}: {v}")),
    }
}

/// True when the presence-only `name` flag appears.
fn has_flag(args: &[String], name: &str) -> bool {
    args.iter().any(|a| a == name)
}

/// The positional (non-flag) argument, if any.
fn positional(args: &[String]) -> Option<&str> {
    let mut skip = false;
    for a in args {
        if skip {
            skip = false;
            continue;
        }
        if a.starts_with("--") {
            skip = !BOOLEAN_FLAGS.contains(&a.as_str());
            continue;
        }
        return Some(a);
    }
    None
}

/// The `--metrics-out` / `--trace-out` pair: enables instrumentation up
/// front when either is requested and exports on [`ObsOutputs::export`].
struct ObsOutputs {
    metrics: Option<String>,
    trace: Option<String>,
}

impl ObsOutputs {
    fn from_args(args: &[String]) -> ObsOutputs {
        let out = ObsOutputs {
            metrics: opt(args, "--metrics-out").map(str::to_string),
            trace: opt(args, "--trace-out").map(str::to_string),
        };
        if out.metrics.is_some() || out.trace.is_some() {
            obs::reset();
            obs::set_enabled(true);
        }
        out
    }

    fn export(&self) -> Result<(), String> {
        if let Some(path) = &self.metrics {
            obs::export::export_metrics_to_path(Path::new(path))
                .map_err(|e| format!("cannot write {path}: {e}"))?;
            eprintln!("wrote metrics to {path}");
        }
        if let Some(path) = &self.trace {
            obs::export::export_trace_to_path(Path::new(path))
                .map_err(|e| format!("cannot write {path}: {e}"))?;
            eprintln!("wrote trace to {path}");
        }
        Ok(())
    }
}

/// Loads the matrix: either a Matrix Market file (positional argument)
/// or a generated topological-insulator system (`--nx/--ny/--nz`). The
/// generator is also returned so matrix-free formats can regenerate
/// the stencil instead of reading the assembled rows.
fn load_matrix(args: &[String]) -> Result<(CrsMatrix, Option<TopoHamiltonian>), String> {
    if let Some(path) = positional(args) {
        let file = File::open(path).map_err(|e| format!("cannot open {path}: {e}"))?;
        return mmio::read(BufReader::new(file))
            .map(|m| (m, None))
            .map_err(|e| e.to_string());
    }
    let nx = opt_usize(args, "--nx", 0)?;
    if nx == 0 {
        return Err(format!("need a FILE.mtx or --nx/--ny/--nz\n{USAGE}"));
    }
    let ny = opt_usize(args, "--ny", nx)?;
    let nz = opt_usize(args, "--nz", nx)?;
    let ham = match opt(args, "--potential") {
        Some("dots") => TopoHamiltonian::quantum_dot_superlattice(nx, ny, nz),
        Some(other) => return Err(format!("unknown potential '{other}' (try: dots)")),
        None => TopoHamiltonian::clean(nx, ny, nz),
    };
    Ok((ham.assemble(), Some(ham)))
}

fn solver_params(args: &[String]) -> Result<KpmParams, String> {
    Ok(KpmParams {
        num_moments: opt_usize(args, "--moments", 256)?,
        num_random: opt_usize(args, "--random", 8)?,
        seed: opt_usize(args, "--seed", 2015)? as u64,
        parallel: true,
        threads: opt_usize(args, "--threads", 0)?,
        power: opt_usize(args, "--power-blocking", 1)?.max(1),
        first_touch: has_flag(args, "--first-touch"),
    })
}

/// Applies the `--simd`/`--no-simd` runtime toggle. The SIMD bodies are
/// on by default whenever the binary was built with them; `--simd` on a
/// scalar build warns (the request cannot be honored) and runs scalar.
fn apply_simd_flags(args: &[String]) -> Result<(), String> {
    if has_flag(args, "--simd") && has_flag(args, "--no-simd") {
        return Err("--simd and --no-simd are mutually exclusive".into());
    }
    if has_flag(args, "--no-simd") {
        kpm_repro::sparse::simd::set_enabled(false);
    } else if has_flag(args, "--simd") {
        kpm_repro::sparse::simd::set_enabled(true);
        if !kpm_repro::sparse::simd::compiled() {
            eprintln!(
                "kpm: --simd requested but this binary was built without \
                 `--features simd`; running the scalar kernels (1 lane)"
            );
        }
    }
    Ok(())
}

/// Worker threads a run will actually use: the explicit request, or the
/// host's core count when `--threads 0` (the solver default).
fn resolve_threads(requested: usize) -> usize {
    if requested > 0 {
        requested
    } else {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    }
}

/// Applies the `--format`/`--sell-c`/`--sell-sigma`/`--power-blocking`/
/// `--autotune` flags: converts the assembled CRS matrix into the
/// requested (or tuned) storage format behind the format-erased
/// [`KpmMatrix`] handle.
///
/// With `--autotune` the tuner's machine envelope comes from `machine`
/// when the subcommand has one (`kpm report --machine ...`), else from
/// the conservative generic model. The matrix-free stencil format is a
/// candidate whenever the matrix came from a generated lattice (`ham`),
/// and `--power-blocking P` both feeds the tuner's matrix-traffic
/// divisor and sizes the level-window budget from the machine's cache.
fn format_matrix(
    args: &[String],
    h: CrsMatrix,
    ham: Option<&TopoHamiltonian>,
    threads: usize,
    machine: Option<&Machine>,
) -> Result<KpmMatrix, String> {
    apply_simd_flags(args)?;
    let power = opt_usize(args, "--power-blocking", 1)?.max(1);
    let first_touch = has_flag(args, "--first-touch");
    // The window of p blocked vector levels must fit in cache; scale
    // the budget with the machine's per-thread tile budget when one is
    // named, else keep the conservative built-in default.
    let budget = machine.map(|m| m.tile_budget_bytes() * resolve_threads(threads));
    let finish = |mut km: KpmMatrix| -> KpmMatrix {
        if let Some(b) = budget {
            km = km.with_power_budget_bytes(b);
        }
        if first_touch {
            km = km.with_first_touch(true);
        }
        km
    };
    if has_flag(args, "--autotune") {
        let t = resolve_threads(threads);
        let mut env = AutotuneEnv::generic(t);
        if let Some(m) = machine {
            env.cache_bytes_per_thread = m.tile_budget_bytes();
            env.mem_bw_gbs = m.mem_bw_gbs;
            env.peak_gflops = m.peak_of_cores(t.min(m.cores));
            // The chain-parallelism reward reflects what this binary
            // can actually issue — the compiled lane count (1 for
            // scalar builds or under --no-simd) — not the machine's
            // nominal register width, which the build may not use.
            env.simd_lanes = kpm_repro::sparse::simd::active_lanes();
        }
        let stencil = ham.map(|hm| hm.stencil_matrix());
        let choice = autotune_formats(&h, &env, stencil.as_ref(), power);
        eprintln!(
            "autotune: format = {}, predicted beta = {:.3}, chunks/task = {}, \
             modeled sweep = {:.1} us (power = {power})",
            choice.format,
            choice.predicted_beta,
            choice.chunks_per_task,
            choice.predicted_seconds * 1e6
        );
        if matches!(choice.format, FormatSpec::Stencil) {
            let st = stencil.expect("the tuner only scores stencil when one exists");
            return Ok(finish(
                KpmMatrix::stencil(st).with_cache_bytes(choice.cache_bytes),
            ));
        }
        return choice.build(h).map(finish).map_err(|e| e.to_string());
    }
    match opt(args, "--format").unwrap_or("crs") {
        "crs" => Ok(finish(KpmMatrix::crs(h))),
        "sell" => {
            let c = opt_usize(args, "--sell-c", 8)?.max(1);
            let sigma = opt_usize(args, "--sell-sigma", 4 * c)?;
            KpmMatrix::try_with_format(
                h,
                &FormatSpec::Sell {
                    chunk_height: c,
                    sigma,
                },
            )
            .map(finish)
            .map_err(|e| e.to_string())
        }
        "stencil" => match ham {
            Some(hm) => Ok(finish(KpmMatrix::stencil(hm.stencil_matrix()))),
            None => Err(
                "--format stencil is matrix-free: it regenerates the lattice stencil and \
                 cannot be built from a FILE.mtx source (use --nx/--ny/--nz)"
                    .into(),
            ),
        },
        other => Err(format!(
            "unknown format '{other}' (try: crs, sell, stencil)"
        )),
    }
}

fn cmd_generate(args: &[String]) -> Result<(), String> {
    check_args(args, &[MATRIX_FLAGS, THREADS_FLAGS, &["--out"]])?;
    let out_path = opt(args, "--out").ok_or("generate needs --out FILE.mtx")?;
    let (h, _) = load_matrix(args)?;
    let file = File::create(out_path).map_err(|e| format!("cannot create {out_path}: {e}"))?;
    let mut w = BufWriter::new(file);
    mmio::write_hermitian(&h, &mut w).map_err(|e| e.to_string())?;
    eprintln!(
        "wrote {out_path}: {} rows, {} non-zeros",
        h.nrows(),
        h.nnz()
    );
    Ok(())
}

fn cmd_info(args: &[String]) -> Result<(), String> {
    check_args(args, &[MATRIX_FLAGS, THREADS_FLAGS])?;
    let (h, _) = load_matrix(args)?;
    let s = stats::analyze(&h, 8.max(h.nrows() / 100));
    println!("rows x cols   : {} x {}", s.nrows, s.ncols);
    println!("non-zeros     : {} ({:.2} per row)", s.nnz, s.avg_row_len);
    println!("row lengths   : {}..{}", s.min_row_len, s.max_row_len);
    println!("bandwidth     : {}", s.bandwidth);
    println!("hermitian     : {}", h.is_hermitian());
    println!("stencil       : {}", s.is_stencil());
    let (lo, hi) = h.gershgorin_bounds();
    println!("gershgorin    : [{lo:.4}, {hi:.4}]");
    println!("diagonals     : {} detected", s.diagonals.len());
    for d in s.diagonals.iter().take(16) {
        println!(
            "  offset {:>8}: {:>9} entries ({:.0}% occupied)",
            d.offset,
            d.count,
            100.0 * d.occupancy
        );
    }
    let corners = s.corner_diagonals(0.5);
    if !corners.is_empty() {
        println!("corner diags  : {corners:?} (periodic wrap-arounds)");
    }
    Ok(())
}

fn cmd_dos(args: &[String]) -> Result<(), String> {
    check_args(
        args,
        &[
            MATRIX_FLAGS,
            SOLVER_FLAGS,
            OBS_FLAGS,
            FORMAT_FLAGS,
            &["--points"],
        ],
    )?;
    let (h, ham) = load_matrix(args)?;
    if !h.is_hermitian() {
        return Err("KPM-DOS needs a Hermitian matrix".into());
    }
    let params = solver_params(args)?;
    let points = opt_usize(args, "--points", 1024)?;
    let outputs = ObsOutputs::from_args(args);
    let sf = ScaleFactors::from_gershgorin(&h, 0.01);
    let m = format_matrix(args, h, ham.as_ref(), params.threads, None)?;
    eprintln!(
        "N = {}, Nnz = {}, M = {}, R = {}, format = {}",
        m.nrows(),
        m.nnz(),
        params.num_moments,
        params.num_random,
        m.format()
    );
    let moments = kpm_moments(&m, sf, &params, KpmVariant::AugSpmmv).map_err(|e| e.to_string())?;
    let curve = reconstruct(&moments, Kernel::Jackson, sf, points);
    // A closed pipe (`kpm dos ... | head`) must not abort the run: stop
    // emitting rows but still write the requested metric/trace exports.
    let out = std::io::stdout();
    let mut out = std::io::BufWriter::new(out.lock());
    let mut write_row = |line: std::fmt::Arguments| -> bool {
        use std::io::Write as _;
        out.write_fmt(line).and_then(|()| writeln!(out)).is_ok()
    };
    if write_row(format_args!("energy,dos")) {
        for (e, v) in curve.energies.iter().zip(&curve.values) {
            if !write_row(format_args!("{e},{v}")) {
                break;
            }
        }
    }
    outputs.export()
}

fn cmd_count(args: &[String]) -> Result<(), String> {
    check_args(
        args,
        &[
            MATRIX_FLAGS,
            SOLVER_FLAGS,
            OBS_FLAGS,
            FORMAT_FLAGS,
            &["--from", "--to"],
        ],
    )?;
    let (h, ham) = load_matrix(args)?;
    if !h.is_hermitian() {
        return Err("KPM-DOS needs a Hermitian matrix".into());
    }
    let e_lo = opt_f64(args, "--from")?.ok_or("count needs --from E")?;
    let e_hi = opt_f64(args, "--to")?.ok_or("count needs --to E")?;
    if e_lo >= e_hi {
        return Err("--from must be below --to".into());
    }
    let params = solver_params(args)?;
    let outputs = ObsOutputs::from_args(args);
    let sf = ScaleFactors::from_gershgorin(&h, 0.01);
    let m = format_matrix(args, h, ham.as_ref(), params.threads, None)?;
    let n = m.nrows();
    let moments = kpm_moments(&m, sf, &params, KpmVariant::AugSpmmv).map_err(|e| e.to_string())?;
    let count = count_from_moments(&moments, Kernel::Jackson, sf, n, e_lo, e_hi);
    println!("estimated eigenvalues in [{e_lo}, {e_hi}]: {count:.1} of {n}");
    outputs.export()
}

/// `kpm report` — runs all three solver variants instrumented and prints
/// the achieved-vs-predicted roofline table: per-kernel achieved GF/s,
/// minimum bytes/flop, the *live* Ω from a warm cachesim replay of the
/// kernel's own address stream, and the model prediction
/// `P* = min(P_MEM, P_LLC)` (paper Eq. 11) at that Ω.
fn cmd_report(args: &[String]) -> Result<(), String> {
    check_args(
        args,
        &[
            MATRIX_FLAGS,
            SOLVER_FLAGS,
            OBS_FLAGS,
            FORMAT_FLAGS,
            &["--machine", "--llc-mib", "--sweeps"],
        ],
    )?;
    let (h, ham) = load_matrix(args)?;
    if !h.is_hermitian() {
        return Err("KPM-DOS needs a Hermitian matrix".into());
    }
    let params = solver_params(args)?;
    let machine_name = opt(args, "--machine").unwrap_or("IVB");
    let machine = Machine::by_name(machine_name)
        .ok_or_else(|| format!("unknown machine '{machine_name}' (try: IVB, SNB, K20m, K20X)"))?;
    let llc_mib = opt_f64(args, "--llc-mib")?.unwrap_or(machine.llc_mib);
    if llc_mib <= 0.0 {
        return Err("--llc-mib must be positive".into());
    }
    let llc = CacheConfig {
        capacity_bytes: (llc_mib * 1024.0 * 1024.0) as usize,
        line_bytes: 64,
        ways: 16,
    };
    let sweeps = opt_usize(args, "--sweeps", 3)?.max(1);
    let outputs = ObsOutputs::from_args(args);

    // The report needs the probes regardless of the export flags.
    obs::set_enabled(true);
    let sf = ScaleFactors::from_gershgorin(&h, 0.01);
    // Keep the CRS matrix for the cachesim replay; the solver runs on
    // the (possibly converted) handle.
    let m = format_matrix(
        args,
        h.clone(),
        ham.as_ref(),
        params.threads,
        Some(&machine),
    )?;
    eprintln!(
        "N = {}, Nnz = {}, M = {}, R = {}, machine = {}, LLC = {llc_mib} MiB, format = {} \
         (beta = {:.3}, lanes = {}, first-touch = {})",
        h.nrows(),
        h.nnz(),
        params.num_moments,
        params.num_random,
        machine.name,
        m.format(),
        m.beta(),
        kpm_repro::sparse::simd::active_lanes(),
        if m.first_touch() { "on" } else { "off" }
    );
    for variant in [KpmVariant::Naive, KpmVariant::AugSpmv, KpmVariant::AugSpmmv] {
        kpm_moments(&m, sf, &params, variant).map_err(|e| e.to_string())?;
    }

    let nnzr = h.nnz() as f64 / h.nrows() as f64;
    println!("kernel     fmt   calls  width   beta  achieved-GF/s  GB-moved  GB/s   B_min(B/F)  B_pad(B/F)  omega-live  omega-pred  B_eff(B/F)  P*(GF/s)  %P*");
    for rep in obs::probe::snapshot() {
        let r = rep.width.max(1) as usize;
        let live = measure_omega_kernel(&h, rep.kind, r, llc, sweeps);
        let pred = measure_omega_kernel(&h, rep.kind, r, llc, 1);
        let point = custom_roofline(&machine, nnzr, r, live.omega);
        let b_eff = rep.min_bytes_per_flop() * live.omega;
        let b_pad = if rep.flops == 0 {
            0.0
        } else {
            rep.padded_bytes as f64 / rep.flops as f64
        };
        let achieved = rep.gflops();
        let gb_moved = rep.min_bytes as f64 / 1e9;
        let gb_per_s = if rep.seconds > 0.0 {
            gb_moved / rep.seconds
        } else {
            0.0
        };
        println!(
            "{:<9} {:<5} {:>5} {:>6}  {:>5.3}  {:>13.2}  {:>8.3}  {:>5.1}  {:>10.2}  {:>10.2}  {:>10.3}  {:>10.3}  {:>10.2}  {:>8.1}  {:>3.0}",
            rep.kind.name(),
            rep.format.name(),
            rep.calls,
            r,
            rep.beta(),
            achieved,
            gb_moved,
            gb_per_s,
            rep.min_bytes_per_flop(),
            b_pad,
            live.omega,
            pred.omega,
            b_eff,
            point.p_star,
            100.0 * achieved / point.p_star
        );
    }
    outputs.export()
}

/// Request lines accepted by `kpm serve` (one request per line; blank
/// lines and `#` comments skipped; `quit` stops reading early):
///
/// ```text
/// dos SEED R M [DEADLINE_MS]
/// ldos SITE M [DEADLINE_MS]
/// green SEED R M [DEADLINE_MS]
/// ```
fn parse_request_line(
    line: &str,
    matrix: u64,
    kernel: Kernel,
    points: usize,
) -> Result<Option<Request>, String> {
    let tokens: Vec<&str> = line.split_whitespace().collect();
    let int = |s: &str| -> Result<u64, String> {
        s.parse()
            .map_err(|_| format!("bad number '{s}' in '{line}'"))
    };
    let deadline = |t: Option<&&str>| -> Result<Option<std::time::Duration>, String> {
        t.map(|s| int(s).map(std::time::Duration::from_millis))
            .transpose()
    };
    let (kind, num_moments, deadline) = match tokens.as_slice() {
        [] => return Ok(None),
        ["quit"] => return Ok(None),
        ["dos", seed, r, m, rest @ ..] => (
            QueryKind::Dos {
                seed: int(seed)?,
                num_random: int(r)? as usize,
            },
            int(m)? as usize,
            deadline(rest.first())?,
        ),
        ["ldos", site, m, rest @ ..] => (
            QueryKind::Ldos {
                site: int(site)? as usize,
            },
            int(m)? as usize,
            deadline(rest.first())?,
        ),
        ["green", seed, r, m, rest @ ..] => (
            QueryKind::Green {
                seed: int(seed)?,
                num_random: int(r)? as usize,
            },
            int(m)? as usize,
            deadline(rest.first())?,
        ),
        _ => return Err(format!("cannot parse request '{line}'\n{USAGE}")),
    };
    Ok(Some(Request {
        matrix,
        kind,
        num_moments,
        kernel,
        points,
        deadline,
    }))
}

/// A scalar digest of the reconstructed curve, so smoke tests can
/// assert the served numbers without shipping whole curves as JSON.
fn curve_checksum(curve: &kpm_repro::service::Curve) -> f64 {
    use kpm_repro::service::Curve;
    match curve {
        Curve::Dos(c) | Curve::Ldos(c) => c.values.iter().sum(),
        Curve::Green(c) => c.values.iter().map(|v| v.norm_sqr().sqrt()).sum(),
    }
}

/// The trace id + exact per-stage latency breakdown carried on every
/// traced reply, as a JSON fragment (empty when tracing is off).
fn trace_fragment(stats: &kpm_repro::service::ReplyStats) -> String {
    if stats.trace == 0 {
        return String::new();
    }
    let s = &stats.stages;
    format!(
        ", \"trace\": {}, \"stages_us\": {{\"queue\": {}, \"batch\": {}, \
         \"solve\": {}, \"reply\": {}, \"total\": {}}}",
        stats.trace,
        obs::json::num(s.queue_us),
        obs::json::num(s.batch_us),
        obs::json::num(s.solve_us),
        obs::json::num(s.reply_us),
        obs::json::num(s.total_us()),
    )
}

/// One JSON reply line per request, in submission order.
fn serve_reply_line(index: usize, resp: &kpm_repro::service::Response) -> String {
    use kpm_repro::service::Outcome;
    let trace = trace_fragment(&resp.stats);
    match &resp.outcome {
        Outcome::Success(answer) => format!(
            "{{\"request\": {index}, \"status\": \"ok\", \"m_served\": {}, \
             \"cache_hit\": {}, \"batch_width\": {}, \"checksum\": {}{trace}}}",
            answer.moments.len(),
            resp.stats.cache_hit,
            resp.stats.batch_width,
            obs::json::num(curve_checksum(&answer.curve)),
        ),
        Outcome::Degraded { answer, info } => format!(
            "{{\"request\": {index}, \"status\": \"degraded\", \"m_requested\": {}, \
             \"m_served\": {}, \"extra_broadening\": {}, \"from_cache\": {}, \"checksum\": {}{trace}}}",
            info.requested_moments,
            info.served_moments,
            obs::json::num(info.extra_broadening),
            info.from_cache,
            obs::json::num(curve_checksum(&answer.curve)),
        ),
        Outcome::Failed(e) => {
            format!("{{\"request\": {index}, \"status\": \"error\", \"error\": \"{e}\"{trace}}}")
        }
    }
}

fn cmd_serve(args: &[String]) -> Result<(), String> {
    check_args(
        args,
        &[
            MATRIX_FLAGS,
            OBS_FLAGS,
            FORMAT_FLAGS,
            THREADS_FLAGS,
            &[
                "--workers",
                "--queue",
                "--width",
                "--window-us",
                "--deadline-ms",
                "--points",
                "--kernel",
                "--lambda",
                "--slo-ms",
                "--slo-goal",
                "--flight-recorder",
            ],
        ],
    )?;
    let (h, ham) = load_matrix(args)?;
    if !h.is_hermitian() {
        return Err("KPM service needs a Hermitian matrix".into());
    }
    let points = opt_usize(args, "--points", 256)?;
    let kernel = match opt(args, "--kernel").unwrap_or("jackson") {
        "jackson" => Kernel::Jackson,
        "dirichlet" => Kernel::Dirichlet,
        "lorentz" => Kernel::Lorentz(opt_f64(args, "--lambda")?.unwrap_or(3.0)),
        other => {
            return Err(format!(
                "unknown kernel '{other}' (try: jackson, dirichlet, lorentz)"
            ))
        }
    };
    let outputs = ObsOutputs::from_args(args);
    let flight_prefix = opt(args, "--flight-recorder").map(str::to_string);
    let deadline_ms = opt_usize(args, "--deadline-ms", 2000)?.max(1);
    // SLO threshold defaults to the deadline; burn rates > 1 on the
    // closing ledger line mean the error budget is being consumed
    // faster than the objective allows.
    let slo_ms = opt_usize(args, "--slo-ms", deadline_ms)?.max(1);
    let slo_goal = opt_f64(args, "--slo-goal")?.unwrap_or(0.99);
    if flight_prefix.is_some() && outputs.metrics.is_none() && outputs.trace.is_none() {
        // The recorder rides on the same runtime gate as the exporters.
        obs::reset();
        obs::set_enabled(true);
    }
    if obs::enabled() {
        for route in ["dos", "ldos", "green"] {
            obs::slo::objective(route, (slo_ms as u64).saturating_mul(1_000_000), slo_goal);
        }
        if let Some(prefix) = &flight_prefix {
            obs::recorder::configure_dump(prefix);
            obs::recorder::arm_sigterm();
        }
    }
    let sf = ScaleFactors::from_gershgorin(&h, 0.01);
    let threads = opt_usize(args, "--threads", 0)?;
    let m = format_matrix(args, h, ham.as_ref(), threads, None)?;

    let config = ServiceConfig {
        workers: opt_usize(args, "--workers", 2)?.max(1),
        queue_capacity: opt_usize(args, "--queue", 64)?.max(1),
        max_batch_width: opt_usize(args, "--width", 8)?.max(1),
        batch_window: std::time::Duration::from_micros(opt_usize(args, "--window-us", 500)? as u64),
        default_deadline: std::time::Duration::from_millis(deadline_ms as u64),
        power: opt_usize(args, "--power-blocking", 1)?.max(1),
        ..ServiceConfig::default()
    };
    let svc = Service::start(config);
    let fingerprint = svc.register_matrix(m, sf);
    eprintln!(
        "serving matrix {fingerprint:#018x}; reading requests from stdin (EOF or 'quit' drains and exits)"
    );

    // Submit everything first so concurrent same-matrix requests
    // coalesce into block solves; replies print in submission order.
    enum Slot {
        Ticket(kpm_repro::service::Ticket),
        Line(String),
    }
    let mut slots: Vec<Slot> = Vec::new();
    let stdin = std::io::stdin();
    let mut line = String::new();
    loop {
        line.clear();
        use std::io::BufRead as _;
        if stdin
            .lock()
            .read_line(&mut line)
            .map_err(|e| e.to_string())?
            == 0
        {
            break;
        }
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        if trimmed == "quit" {
            break;
        }
        let index = slots.len();
        let req = parse_request_line(trimmed, fingerprint, kernel, points)?;
        let Some(req) = req else { continue };
        match svc.submit(req) {
            Admission::Admitted(ticket) => slots.push(Slot::Ticket(ticket)),
            Admission::Rejected {
                retry_after,
                reason,
            } => {
                let reason = match reason {
                    RejectReason::QueueFull => "queue_full",
                    RejectReason::PastDeadline => "past_deadline",
                    RejectReason::ShuttingDown => "shutting_down",
                };
                slots.push(Slot::Line(format!(
                    "{{\"request\": {index}, \"status\": \"rejected\", \"reason\": \"{reason}\", \
                     \"retry_after_ms\": {}}}",
                    obs::json::num(retry_after.as_secs_f64() * 1e3),
                )));
            }
        }
    }

    for (index, slot) in slots.iter().enumerate() {
        match slot {
            Slot::Line(json) => println!("{json}"),
            Slot::Ticket(ticket) => match ticket.wait() {
                Some(resp) => println!("{}", serve_reply_line(index, &resp)),
                None => println!(
                    "{{\"request\": {index}, \"status\": \"error\", \"error\": \"service dropped the reply\"}}"
                ),
            },
        }
    }

    if obs::recorder::sigterm_seen() {
        if let Some(path) = obs::recorder::trigger_dump("sigterm") {
            eprintln!("SIGTERM: wrote flight-recorder dump to {path}");
        }
    }
    let ledger = svc.shutdown(ShutdownMode::Drain);
    // Per-route SLO burn rates ride on the ledger line: burn = (bad
    // fraction) / (error budget), so > 1 means the objective is being
    // missed. Empty when instrumentation is off.
    let mut slo = String::new();
    for r in obs::slo::snapshot() {
        if r.events == 0 {
            continue;
        }
        if !slo.is_empty() {
            slo.push_str(", ");
        }
        let _ = std::fmt::Write::write_fmt(
            &mut slo,
            format_args!(
                "{{\"route\": \"{}\", \"events\": {}, \"breaches\": {}, \"burn_rate\": {}, \
                 \"window_burn_rate\": {}}}",
                obs::json::escape(&r.route),
                r.events,
                r.breaches,
                obs::json::num(r.burn_rate),
                obs::json::num(r.window_burn_rate),
            ),
        );
    }
    println!(
        "{{\"ledger\": {{\"admitted\": {}, \"replied\": {}, \"rejected\": {}, \"degraded\": {}, \
         \"retried\": {}, \"hedged\": {}, \"cache_hits\": {}, \"consistent\": {}, \
         \"slo\": [{slo}]}}}}",
        ledger.admitted,
        ledger.replied,
        ledger.rejected,
        ledger.degraded,
        ledger.retried,
        ledger.hedged,
        ledger.cache_hits,
        ledger.consistent(),
    );
    if !ledger.consistent() {
        return Err("service ledger imbalance: admitted != replied".into());
    }
    outputs.export()
}

/// Mangles a dotted kpm-obs metric name into a Prometheus-legal one:
/// `svc.queue.wait_ns` becomes `kpm_svc_queue_wait_ns`.
fn prom_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 4);
    out.push_str("kpm_");
    for c in name.chars() {
        if c.is_ascii_alphanumeric() {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

/// `kpm stats` — re-serializes a `kpm-obs-v1` metrics JSONL snapshot
/// (written by `--metrics-out`) as a Prometheus text exposition on
/// stdout. Pure file-to-file: no network listener, no added deps.
fn cmd_stats(args: &[String]) -> Result<(), String> {
    check_args(args, &[])?;
    let path = positional(args).ok_or_else(|| format!("need a metrics FILE.jsonl\n{USAGE}"))?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let num_of = |v: &obs::json::Value, key: &str| v.get(key).and_then(obs::json::Value::as_f64);
    let fmt = obs::json::num;
    let mut typed: Vec<String> = Vec::new();
    let mut type_line = |name: &str, kind: &str| -> String {
        if typed.iter().any(|t| t == name) {
            String::new()
        } else {
            typed.push(name.to_string());
            format!("# TYPE {name} {kind}\n")
        }
    };
    let mut out = String::new();
    use std::fmt::Write as _;
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let v = obs::json::parse(line).map_err(|e| format!("{path}: bad JSONL line: {e}"))?;
        let kind = v
            .get("type")
            .and_then(obs::json::Value::as_str)
            .unwrap_or("");
        let name = v
            .get("name")
            .and_then(obs::json::Value::as_str)
            .unwrap_or("");
        match kind {
            "counter" | "gauge" => {
                let p = prom_name(name);
                let _ = writeln!(
                    out,
                    "{}{p} {}",
                    type_line(
                        &p,
                        if kind == "counter" {
                            "counter"
                        } else {
                            "gauge"
                        }
                    ),
                    fmt(num_of(&v, "value").unwrap_or(0.0)),
                );
            }
            "histogram" => {
                // Power-of-two bucket histogram -> native Prometheus
                // histogram with cumulative `le` buckets.
                let p = prom_name(name);
                let _ = write!(out, "{}", type_line(&p, "histogram"));
                let mut cumulative = 0.0;
                if let Some(buckets) = v.get("buckets").and_then(obs::json::Value::as_arr) {
                    for b in buckets {
                        let (Some(upper), Some(count)) = (
                            b.as_arr()
                                .and_then(|a| a.first())
                                .and_then(obs::json::Value::as_f64),
                            b.as_arr()
                                .and_then(|a| a.get(1))
                                .and_then(obs::json::Value::as_f64),
                        ) else {
                            continue;
                        };
                        cumulative += count;
                        let _ = writeln!(
                            out,
                            "{p}_bucket{{le=\"{}\"}} {}",
                            fmt(upper),
                            fmt(cumulative)
                        );
                    }
                }
                let count = num_of(&v, "count").unwrap_or(0.0);
                let _ = writeln!(out, "{p}_bucket{{le=\"+Inf\"}} {}", fmt(count));
                let _ = writeln!(out, "{p}_sum {}", fmt(num_of(&v, "sum").unwrap_or(0.0)));
                let _ = writeln!(out, "{p}_count {}", fmt(count));
            }
            "exact_histogram" => {
                // Log-linear exact-percentile histogram -> Prometheus
                // summary with a `scope` label (total vs sliding window).
                let p = prom_name(name);
                let scope = v
                    .get("scope")
                    .and_then(obs::json::Value::as_str)
                    .unwrap_or("total");
                let _ = write!(out, "{}", type_line(&p, "summary"));
                for (q, key) in [
                    ("0.5", "p50"),
                    ("0.9", "p90"),
                    ("0.99", "p99"),
                    ("0.999", "p999"),
                ] {
                    let _ = writeln!(
                        out,
                        "{p}{{scope=\"{scope}\",quantile=\"{q}\"}} {}",
                        fmt(num_of(&v, key).unwrap_or(0.0)),
                    );
                }
                let _ = writeln!(
                    out,
                    "{p}_sum{{scope=\"{scope}\"}} {}\n{p}_count{{scope=\"{scope}\"}} {}",
                    fmt(num_of(&v, "sum").unwrap_or(0.0)),
                    fmt(num_of(&v, "count").unwrap_or(0.0)),
                );
            }
            "slo" => {
                let route = v
                    .get("route")
                    .and_then(obs::json::Value::as_str)
                    .unwrap_or("");
                for (metric, key, mkind) in [
                    ("kpm_slo_events_total", "events", "counter"),
                    ("kpm_slo_breaches_total", "breaches", "counter"),
                    ("kpm_slo_goal", "goal", "gauge"),
                    ("kpm_slo_burn_rate", "burn_rate", "gauge"),
                    ("kpm_slo_window_burn_rate", "window_burn_rate", "gauge"),
                ] {
                    let _ = writeln!(
                        out,
                        "{}{metric}{{route=\"{route}\"}} {}",
                        type_line(metric, mkind),
                        fmt(num_of(&v, key).unwrap_or(0.0)),
                    );
                }
            }
            "kernel" => {
                let k = v
                    .get("kernel")
                    .and_then(obs::json::Value::as_str)
                    .unwrap_or("");
                for (metric, key, mkind) in [
                    ("kpm_kernel_calls_total", "calls", "counter"),
                    ("kpm_kernel_seconds_total", "seconds", "counter"),
                    ("kpm_kernel_gflops", "gflops", "gauge"),
                    ("kpm_kernel_min_balance_bytes_per_flop", "min_bf", "gauge"),
                ] {
                    let _ = writeln!(
                        out,
                        "{}{metric}{{kernel=\"{k}\"}} {}",
                        type_line(metric, mkind),
                        fmt(num_of(&v, key).unwrap_or(0.0)),
                    );
                }
            }
            _ => {}
        }
    }
    print!("{out}");
    Ok(())
}

/// One span as reconstructed from a Chrome trace export or a
/// flight-recorder dump.
struct ReportSpan {
    id: u64,
    parent: Option<u64>,
    name: String,
    trace: u64,
    lamport: u64,
    tid: u64,
    ts_us: f64,
    dur_us: f64,
    args: Vec<(String, String)>,
}

impl ReportSpan {
    fn arg_f64(&self, key: &str) -> Option<f64> {
        self.args
            .iter()
            .find(|(k, _)| k == key)
            .and_then(|(_, v)| v.parse().ok())
    }

    fn arg_str(&self, key: &str) -> Option<&str> {
        self.args
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

/// Extracts traced spans from a Chrome trace-event document.
fn spans_from_chrome(doc: &obs::json::Value) -> Result<Vec<ReportSpan>, String> {
    use obs::json::Value;
    let events = doc
        .get("traceEvents")
        .and_then(Value::as_arr)
        .ok_or("not a Chrome trace: missing traceEvents")?;
    let mut spans = Vec::new();
    for e in events {
        if e.get("ph").and_then(Value::as_str) != Some("X") {
            continue;
        }
        let args = e.get("args");
        let arg_u64 = |key: &str| -> Option<u64> {
            args.and_then(|a| a.get(key))
                .and_then(Value::as_str)
                .and_then(|s| s.parse().ok())
        };
        let mut extra = Vec::new();
        if let Some(Value::Obj(pairs)) = args {
            for (k, v) in pairs {
                if matches!(k.as_str(), "parent" | "trace" | "lamport") {
                    continue;
                }
                if let Some(s) = v.as_str() {
                    extra.push((k.clone(), s.to_string()));
                }
            }
        }
        spans.push(ReportSpan {
            id: e
                .get("id")
                .and_then(Value::as_str)
                .and_then(|s| s.parse().ok())
                .unwrap_or(0),
            parent: arg_u64("parent"),
            name: e
                .get("name")
                .and_then(Value::as_str)
                .unwrap_or("")
                .to_string(),
            trace: arg_u64("trace").unwrap_or(0),
            lamport: arg_u64("lamport").unwrap_or(0),
            tid: e.get("tid").and_then(Value::as_f64).unwrap_or(0.0) as u64,
            ts_us: e.get("ts").and_then(Value::as_f64).unwrap_or(0.0),
            dur_us: e.get("dur").and_then(Value::as_f64).unwrap_or(0.0),
            args: extra,
        });
    }
    Ok(spans)
}

/// Extracts spans from a `kpm-flight-v1` flight-recorder JSONL dump.
fn spans_from_flight(text: &str) -> Result<Vec<ReportSpan>, String> {
    use obs::json::Value;
    let mut spans = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let v = obs::json::parse(line).map_err(|e| format!("bad flight JSONL line: {e}"))?;
        if v.get("type").and_then(Value::as_str) != Some("span") {
            continue;
        }
        let mut extra = Vec::new();
        if let Some(Value::Obj(pairs)) = v.get("args") {
            for (k, av) in pairs {
                if let Some(s) = av.as_str() {
                    extra.push((k.clone(), s.to_string()));
                }
            }
        }
        spans.push(ReportSpan {
            id: v.get("id").and_then(Value::as_f64).unwrap_or(0.0) as u64,
            parent: v.get("parent").and_then(Value::as_f64).map(|p| p as u64),
            name: v
                .get("name")
                .and_then(Value::as_str)
                .unwrap_or("")
                .to_string(),
            trace: v.get("trace").and_then(Value::as_f64).unwrap_or(0.0) as u64,
            lamport: v.get("lamport").and_then(Value::as_f64).unwrap_or(0.0) as u64,
            tid: v.get("tid").and_then(Value::as_f64).unwrap_or(0.0) as u64,
            ts_us: v.get("ts_us").and_then(Value::as_f64).unwrap_or(0.0),
            dur_us: v.get("dur_us").and_then(Value::as_f64).unwrap_or(0.0),
            args: extra,
        });
    }
    Ok(spans)
}

/// `kpm trace-report` — reconstructs the per-request critical path from
/// a Chrome trace export (and optionally a flight-recorder dump),
/// checks that the stage breakdown tiles each request's end-to-end
/// latency, and attributes solve wall time to the roofline model.
fn cmd_trace_report(args: &[String]) -> Result<(), String> {
    check_args(args, &[&["--machine", "--flight", "--paths"]])?;
    let path = positional(args).ok_or_else(|| format!("need a trace FILE.json\n{USAGE}"))?;
    let machine_name = opt(args, "--machine").unwrap_or("IVB");
    let machine = Machine::by_name(machine_name)
        .ok_or_else(|| format!("unknown machine '{machine_name}' (try: IVB, SNB, K20m, K20X)"))?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let doc = obs::json::parse(&text).map_err(|e| format!("{path}: {e}"))?;
    let mut spans = spans_from_chrome(&doc)?;
    if let Some(flight) = opt(args, "--flight") {
        let ftext =
            std::fs::read_to_string(flight).map_err(|e| format!("cannot read {flight}: {e}"))?;
        let extra = spans_from_flight(&ftext)?;
        // Chrome export and flight dump overlap; keep one copy per id.
        for s in extra {
            if !spans.iter().any(|have| have.id == s.id) {
                spans.push(s);
            }
        }
    }

    let mut traces: Vec<u64> = spans.iter().map(|s| s.trace).filter(|&t| t != 0).collect();
    traces.sort_unstable();
    traces.dedup();
    if traces.is_empty() {
        println!("no traced requests in {path} (serve with --trace-out and tracing enabled)");
        return Ok(());
    }

    println!(
        "machine = {} (peak {:.0} GF/s, bw {:.0} GB/s); {} traced request(s)",
        machine.name,
        machine.peak_gflops,
        machine.mem_bw_gbs,
        traces.len()
    );
    println!(
        "{:<7} {:>6} {:>9} {:>10} {:>9} {:>9} {:>9} {:>9} {:>7} {:>7} {:>9} {:>8}",
        "trace",
        "route",
        "outcome",
        "e2e_us",
        "queue",
        "batch",
        "solve",
        "reply",
        "cover%",
        "orphan",
        "B_min",
        "P*(GF/s)"
    );
    let (mut sum_e2e, mut sums) = (0.0f64, [0.0f64; 4]);
    let mut worst_cover = f64::INFINITY;
    let mut total_orphans = 0usize;
    for &trace in &traces {
        let mut mine: Vec<&ReportSpan> = spans.iter().filter(|s| s.trace == trace).collect();
        // Lamport order is the causal order across threads and hetsim
        // ranks; wall-clock ties (retroactive stage spans) break by ts.
        mine.sort_by(|a, b| {
            (a.lamport, a.ts_us)
                .partial_cmp(&(b.lamport, b.ts_us))
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let root = mine.iter().find(|s| s.name == "svc.request");
        let stage = |name: &str| -> f64 {
            mine.iter()
                .filter(|s| s.name == name)
                .map(|s| s.dur_us)
                .sum()
        };
        let stages = [
            stage("svc.stage.queue"),
            stage("svc.stage.batch"),
            stage("svc.stage.solve"),
            stage("svc.stage.reply"),
        ];
        let stage_sum: f64 = stages.iter().sum();
        let e2e = root.map_or(stage_sum, |r| r.dur_us);
        let cover = if e2e > 0.0 {
            100.0 * stage_sum / e2e
        } else {
            100.0
        };
        worst_cover = worst_cover.min(cover);
        // A parent in another trace is legitimate causality (one batch
        // solve serves several requests); an orphan is a parent id that
        // resolves nowhere in the whole pool.
        let orphans = mine
            .iter()
            .filter(|s| {
                s.parent
                    .map(|p| !spans.iter().any(|q| q.id == p))
                    .unwrap_or(false)
            })
            .count();
        total_orphans += orphans;
        // The carrying block solve: this trace's own svc.solve span, or
        // the shared one reached by walking up from the reply span.
        let ancestor_solve = || -> Option<&ReportSpan> {
            let mut cur = mine.iter().find(|s| s.name == "svc.reply")?.parent;
            for _ in 0..16 {
                let s = spans.iter().find(|q| Some(q.id) == cur)?;
                if s.name == "svc.solve" {
                    return Some(s);
                }
                cur = s.parent;
            }
            None
        };
        let solve_span = mine
            .iter()
            .find(|s| s.name == "svc.solve")
            .copied()
            .or_else(ancestor_solve);
        let roof = solve_span.and_then(|s| {
            let rows = s.arg_f64("rows")?;
            let nnz = s.arg_f64("nnz")?;
            let width = s.arg_f64("width")? as usize;
            if rows <= 0.0 {
                return None;
            }
            Some(custom_roofline(&machine, nnz / rows, width.max(1), 1.0))
        });
        println!(
            "{:<7} {:>6} {:>9} {:>10.1} {:>9.1} {:>9.1} {:>9.1} {:>9.1} {:>7.1} {:>7} {:>9} {:>8}",
            trace,
            root.and_then(|r| r.arg_str("route")).unwrap_or("?"),
            root.and_then(|r| r.arg_str("outcome")).unwrap_or("?"),
            e2e,
            stages[0],
            stages[1],
            stages[2],
            stages[3],
            cover,
            orphans,
            roof.map_or("-".to_string(), |p| format!("{:.2}", p.balance)),
            roof.map_or("-".to_string(), |p| format!("{:.1}", p.p_star)),
        );
        sum_e2e += e2e;
        for (acc, s) in sums.iter_mut().zip(stages) {
            *acc += s;
        }
        if has_flag(args, "--paths") {
            for s in &mine {
                println!(
                    "    L{:<6} {:<18} tid={} ts={:.1} dur={:.1}us",
                    s.lamport, s.name, s.tid, s.ts_us, s.dur_us
                );
            }
        }
    }
    if sum_e2e > 0.0 {
        println!(
            "attribution: queue {:.1}%  batch {:.1}%  solve {:.1}%  reply {:.1}%  \
             (stage sum covers {:.1}% of wall time; worst request {:.1}%)",
            100.0 * sums[0] / sum_e2e,
            100.0 * sums[1] / sum_e2e,
            100.0 * sums[2] / sum_e2e,
            100.0 * sums[3] / sum_e2e,
            100.0 * sums.iter().sum::<f64>() / sum_e2e,
            worst_cover,
        );
    }
    if total_orphans > 0 {
        return Err(format!(
            "{total_orphans} orphan span(s): parent ids missing from their own trace"
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn opt_parsing() {
        let a = args(&["--nx", "12", "file.mtx", "--moments", "64"]);
        assert_eq!(opt(&a, "--nx"), Some("12"));
        assert_eq!(opt_usize(&a, "--moments", 0).unwrap(), 64);
        assert_eq!(opt_usize(&a, "--missing", 7).unwrap(), 7);
        assert!(opt_usize(&args(&["--nx", "abc"]), "--nx", 0).is_err());
    }

    #[test]
    fn threads_flag_reaches_solver_params() {
        let a = args(&["--threads", "4"]);
        assert_eq!(solver_params(&a).unwrap().threads, 4);
        assert_eq!(solver_params(&args(&[])).unwrap().threads, 0);
        assert!(check_args(&a, &[MATRIX_FLAGS, SOLVER_FLAGS]).is_ok());
        assert!(check_args(&a, &[MATRIX_FLAGS, THREADS_FLAGS]).is_ok());
    }

    #[test]
    fn positional_skips_flag_values() {
        let a = args(&["--nx", "12", "file.mtx"]);
        assert_eq!(positional(&a), Some("file.mtx"));
        let b = args(&["--nx", "12"]);
        assert_eq!(positional(&b), None);
    }

    #[test]
    fn load_generated_matrix() {
        let a = args(&["--nx", "4", "--ny", "4", "--nz", "2"]);
        let (h, ham) = load_matrix(&a).unwrap();
        assert_eq!(h.nrows(), 4 * 4 * 4 * 2);
        assert!(h.is_hermitian());
        assert!(ham.is_some(), "generated sources keep their generator");
    }

    #[test]
    fn load_requires_source() {
        assert!(load_matrix(&args(&["--moments", "64"])).is_err());
    }

    #[test]
    fn unknown_potential_rejected() {
        let a = args(&["--nx", "4", "--potential", "banana"]);
        assert!(load_matrix(&a).is_err());
    }

    #[test]
    fn unknown_flag_rejected_with_hint() {
        // The typo the strict parser exists for: --moment vs --moments.
        let a = args(&["--nx", "4", "--moment", "512"]);
        let err = check_args(&a, &[MATRIX_FLAGS, SOLVER_FLAGS]).unwrap_err();
        assert!(err.contains("--moment"), "{err}");
        assert!(err.contains("--moments"), "{err}");
    }

    #[test]
    fn known_flags_and_one_positional_pass() {
        let a = args(&["file.mtx", "--moments", "64", "--seed", "1"]);
        assert!(check_args(&a, &[MATRIX_FLAGS, SOLVER_FLAGS]).is_ok());
    }

    #[test]
    fn extra_positional_rejected() {
        let a = args(&["file.mtx", "extra.mtx"]);
        let err = check_args(&a, &[MATRIX_FLAGS]).unwrap_err();
        assert!(err.contains("extra.mtx"), "{err}");
    }

    #[test]
    fn flag_values_are_not_positionals() {
        // "--from -0.5" must not count -0.5 as a positional.
        let a = args(&["file.mtx", "--from", "-0.5", "--to", "0.5"]);
        assert!(check_args(&a, &[&["--from", "--to"]]).is_ok());
    }

    #[test]
    fn autotune_is_a_presence_flag() {
        // A positional right after --autotune must not be swallowed as
        // the flag's value.
        let a = args(&["--autotune", "file.mtx"]);
        assert!(check_args(&a, &[MATRIX_FLAGS, FORMAT_FLAGS]).is_ok());
        assert_eq!(positional(&a), Some("file.mtx"));
        assert!(has_flag(&a, "--autotune"));
        assert!(!has_flag(&args(&["file.mtx"]), "--autotune"));
    }

    #[test]
    fn format_flags_build_the_requested_matrix() {
        let (h, ham) = load_matrix(&args(&["--nx", "4", "--ny", "4", "--nz", "2"])).unwrap();
        let crs = format_matrix(&args(&[]), h.clone(), ham.as_ref(), 1, None).unwrap();
        assert!(crs.as_crs().is_some());
        let a = args(&["--format", "sell", "--sell-c", "4", "--sell-sigma", "16"]);
        let sell = format_matrix(&a, h.clone(), ham.as_ref(), 1, None).unwrap();
        let s = sell.as_sell().expect("sell requested");
        assert_eq!(s.chunk_height(), 4);
        assert_eq!(s.sigma(), 16);
        assert!(format_matrix(
            &args(&["--format", "ellpack"]),
            h.clone(),
            ham.as_ref(),
            1,
            None
        )
        .is_err());
        // Invalid sigma (not 1 or a multiple of C) must fail loudly.
        let bad = args(&["--format", "sell", "--sell-c", "4", "--sell-sigma", "6"]);
        assert!(format_matrix(&bad, h.clone(), ham.as_ref(), 1, None).is_err());

        // The matrix-free stencil needs the generator: fine with one,
        // a typed error without (FILE.mtx sources).
        let st = args(&["--format", "stencil"]);
        let stencil = format_matrix(&st, h.clone(), ham.as_ref(), 1, None).unwrap();
        assert!(stencil.as_stencil().is_some());
        assert_eq!(stencil.nrows(), h.nrows());
        let err = format_matrix(&st, h, None, 1, None).unwrap_err();
        assert!(err.contains("matrix-free"), "{err}");
    }

    #[test]
    fn autotune_builds_a_square_handle() {
        let (h, ham) = load_matrix(&args(&["--nx", "4", "--ny", "4", "--nz", "2"])).unwrap();
        let n = h.nrows();
        let m = format_matrix(&args(&["--autotune"]), h, ham.as_ref(), 1, None).unwrap();
        assert_eq!(m.nrows(), n);
        assert_eq!(m.ncols(), n);
    }

    #[test]
    fn power_blocking_flag_reaches_solver_params() {
        let a = args(&["--power-blocking", "4"]);
        assert_eq!(solver_params(&a).unwrap().power, 4);
        assert_eq!(solver_params(&args(&[])).unwrap().power, 1);
        // 0 clamps to 1 (the plain sweep) instead of failing.
        assert_eq!(
            solver_params(&args(&["--power-blocking", "0"]))
                .unwrap()
                .power,
            1
        );
        assert!(check_args(&a, &[MATRIX_FLAGS, FORMAT_FLAGS]).is_ok());
    }

    #[test]
    fn simd_and_first_touch_flags_parse() {
        let a = args(&["--simd", "--first-touch", "file.mtx"]);
        assert!(check_args(&a, &[MATRIX_FLAGS, FORMAT_FLAGS]).is_ok());
        assert_eq!(positional(&a), Some("file.mtx"));
        assert!(solver_params(&a).unwrap().first_touch);
        assert!(!solver_params(&args(&[])).unwrap().first_touch);
        // The two runtime toggles contradict each other.
        let both = args(&["--simd", "--no-simd"]);
        assert!(apply_simd_flags(&both).is_err());
    }

    #[test]
    fn first_touch_flag_replaces_the_matrix_in_place() {
        let (h, ham) = load_matrix(&args(&["--nx", "4", "--ny", "4", "--nz", "2"])).unwrap();
        let a = args(&["--format", "sell", "--first-touch"]);
        let sf = ScaleFactors::from_gershgorin(&h, 0.01);
        let m = format_matrix(&a, h.clone(), ham.as_ref(), 1, None).unwrap();
        assert!(m.first_touch());
        // Placement never changes results: same moments as the plain build.
        let plain = format_matrix(&args(&["--format", "sell"]), h, ham.as_ref(), 1, None).unwrap();
        let p = solver_params(&args(&["--moments", "16", "--random", "2"])).unwrap();
        let a_set = kpm_moments(&m, sf, &p, KpmVariant::AugSpmmv).unwrap();
        let b_set = kpm_moments(&plain, sf, &p, KpmVariant::AugSpmmv).unwrap();
        assert_eq!(a_set.as_slice(), b_set.as_slice());
    }
}
