//! `kpm` — command-line front end for the KPM library.
//!
//! ```text
//! kpm generate --nx 20 --ny 20 --nz 10 --out ti.mtx     # write a TI matrix
//! kpm info ti.mtx                                       # structure report
//! kpm dos ti.mtx --moments 512 --random 16              # DOS as CSV
//! kpm dos --nx 20 --ny 20 --nz 10                       # ... without a file
//! kpm count ti.mtx --from -0.5 --to 0.5                 # eigenvalue count
//! ```
//!
//! Matrices are exchanged in Matrix Market format (`coordinate complex
//! hermitian/general`), so the tool interoperates with SuiteSparse-style
//! collections.

use std::fs::File;
use std::io::{BufReader, BufWriter};
use std::process::ExitCode;

use kpm_repro::core::dos::reconstruct;
use kpm_repro::core::eigencount::count_from_moments;
use kpm_repro::core::solver::{kpm_moments, KpmParams, KpmVariant};
use kpm_repro::core::Kernel;
use kpm_repro::sparse::{io as mmio, stats, CrsMatrix};
use kpm_repro::topo::{ScaleFactors, TopoHamiltonian};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("generate") => cmd_generate(&args[1..]),
        Some("info") => cmd_info(&args[1..]),
        Some("dos") => cmd_dos(&args[1..]),
        Some("count") => cmd_count(&args[1..]),
        Some("--help") | Some("-h") | None => {
            eprintln!("{USAGE}");
            Ok(())
        }
        Some(other) => Err(format!("unknown subcommand '{other}'\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("kpm: {msg}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage:
  kpm generate --nx N --ny N --nz N [--potential dots] --out FILE.mtx
  kpm info FILE.mtx
  kpm dos [FILE.mtx | --nx N --ny N --nz N] [--moments M] [--random R] [--points K]
  kpm count [FILE.mtx | --nx N --ny N --nz N] --from E --to E [--moments M] [--random R]";

/// `--flag value` lookup.
fn opt<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn opt_usize(args: &[String], name: &str, default: usize) -> Result<usize, String> {
    match opt(args, name) {
        None => Ok(default),
        Some(v) => v.parse().map_err(|_| format!("bad value for {name}: {v}")),
    }
}

fn opt_f64(args: &[String], name: &str) -> Result<Option<f64>, String> {
    match opt(args, name) {
        None => Ok(None),
        Some(v) => v
            .parse()
            .map(Some)
            .map_err(|_| format!("bad value for {name}: {v}")),
    }
}

/// The positional (non-flag) argument, if any.
fn positional(args: &[String]) -> Option<&str> {
    let mut skip = false;
    for a in args {
        if skip {
            skip = false;
            continue;
        }
        if a.starts_with("--") {
            skip = true;
            continue;
        }
        return Some(a);
    }
    None
}

/// Loads the matrix: either a Matrix Market file (positional argument)
/// or a generated topological-insulator system (`--nx/--ny/--nz`).
fn load_matrix(args: &[String]) -> Result<CrsMatrix, String> {
    if let Some(path) = positional(args) {
        let file = File::open(path).map_err(|e| format!("cannot open {path}: {e}"))?;
        return mmio::read(BufReader::new(file)).map_err(|e| e.to_string());
    }
    let nx = opt_usize(args, "--nx", 0)?;
    if nx == 0 {
        return Err(format!("need a FILE.mtx or --nx/--ny/--nz\n{USAGE}"));
    }
    let ny = opt_usize(args, "--ny", nx)?;
    let nz = opt_usize(args, "--nz", nx)?;
    let ham = match opt(args, "--potential") {
        Some("dots") => TopoHamiltonian::quantum_dot_superlattice(nx, ny, nz),
        Some(other) => return Err(format!("unknown potential '{other}' (try: dots)")),
        None => TopoHamiltonian::clean(nx, ny, nz),
    };
    Ok(ham.assemble())
}

fn solver_params(args: &[String]) -> Result<KpmParams, String> {
    Ok(KpmParams {
        num_moments: opt_usize(args, "--moments", 256)?,
        num_random: opt_usize(args, "--random", 8)?,
        seed: opt_usize(args, "--seed", 2015)? as u64,
        parallel: true,
    })
}

fn cmd_generate(args: &[String]) -> Result<(), String> {
    let out_path = opt(args, "--out").ok_or("generate needs --out FILE.mtx")?;
    let h = load_matrix(args)?;
    let file = File::create(out_path).map_err(|e| format!("cannot create {out_path}: {e}"))?;
    let mut w = BufWriter::new(file);
    mmio::write_hermitian(&h, &mut w).map_err(|e| e.to_string())?;
    eprintln!(
        "wrote {out_path}: {} rows, {} non-zeros",
        h.nrows(),
        h.nnz()
    );
    Ok(())
}

fn cmd_info(args: &[String]) -> Result<(), String> {
    let h = load_matrix(args)?;
    let s = stats::analyze(&h, 8.max(h.nrows() / 100));
    println!("rows x cols   : {} x {}", s.nrows, s.ncols);
    println!("non-zeros     : {} ({:.2} per row)", s.nnz, s.avg_row_len);
    println!("row lengths   : {}..{}", s.min_row_len, s.max_row_len);
    println!("bandwidth     : {}", s.bandwidth);
    println!("hermitian     : {}", h.is_hermitian());
    println!("stencil       : {}", s.is_stencil());
    let (lo, hi) = h.gershgorin_bounds();
    println!("gershgorin    : [{lo:.4}, {hi:.4}]");
    println!("diagonals     : {} detected", s.diagonals.len());
    for d in s.diagonals.iter().take(16) {
        println!(
            "  offset {:>8}: {:>9} entries ({:.0}% occupied)",
            d.offset,
            d.count,
            100.0 * d.occupancy
        );
    }
    let corners = s.corner_diagonals(0.5);
    if !corners.is_empty() {
        println!("corner diags  : {corners:?} (periodic wrap-arounds)");
    }
    Ok(())
}

fn cmd_dos(args: &[String]) -> Result<(), String> {
    let h = load_matrix(args)?;
    if !h.is_hermitian() {
        return Err("KPM-DOS needs a Hermitian matrix".into());
    }
    let params = solver_params(args)?;
    let points = opt_usize(args, "--points", 1024)?;
    let sf = ScaleFactors::from_gershgorin(&h, 0.01);
    eprintln!(
        "N = {}, Nnz = {}, M = {}, R = {}",
        h.nrows(),
        h.nnz(),
        params.num_moments,
        params.num_random
    );
    let moments = kpm_moments(&h, sf, &params, KpmVariant::AugSpmmv).map_err(|e| e.to_string())?;
    let curve = reconstruct(&moments, Kernel::Jackson, sf, points);
    println!("energy,dos");
    for (e, v) in curve.energies.iter().zip(&curve.values) {
        println!("{e},{v}");
    }
    Ok(())
}

fn cmd_count(args: &[String]) -> Result<(), String> {
    let h = load_matrix(args)?;
    if !h.is_hermitian() {
        return Err("KPM-DOS needs a Hermitian matrix".into());
    }
    let e_lo = opt_f64(args, "--from")?.ok_or("count needs --from E")?;
    let e_hi = opt_f64(args, "--to")?.ok_or("count needs --to E")?;
    if e_lo >= e_hi {
        return Err("--from must be below --to".into());
    }
    let params = solver_params(args)?;
    let sf = ScaleFactors::from_gershgorin(&h, 0.01);
    let moments = kpm_moments(&h, sf, &params, KpmVariant::AugSpmmv).map_err(|e| e.to_string())?;
    let count = count_from_moments(&moments, Kernel::Jackson, sf, h.nrows(), e_lo, e_hi);
    println!(
        "estimated eigenvalues in [{e_lo}, {e_hi}]: {count:.1} of {}",
        h.nrows()
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn opt_parsing() {
        let a = args(&["--nx", "12", "file.mtx", "--moments", "64"]);
        assert_eq!(opt(&a, "--nx"), Some("12"));
        assert_eq!(opt_usize(&a, "--moments", 0).unwrap(), 64);
        assert_eq!(opt_usize(&a, "--missing", 7).unwrap(), 7);
        assert!(opt_usize(&args(&["--nx", "abc"]), "--nx", 0).is_err());
    }

    #[test]
    fn positional_skips_flag_values() {
        let a = args(&["--nx", "12", "file.mtx"]);
        assert_eq!(positional(&a), Some("file.mtx"));
        let b = args(&["--nx", "12"]);
        assert_eq!(positional(&b), None);
    }

    #[test]
    fn load_generated_matrix() {
        let a = args(&["--nx", "4", "--ny", "4", "--nz", "2"]);
        let h = load_matrix(&a).unwrap();
        assert_eq!(h.nrows(), 4 * 4 * 4 * 2);
        assert!(h.is_hermitian());
    }

    #[test]
    fn load_requires_source() {
        assert!(load_matrix(&args(&["--moments", "64"])).is_err());
    }

    #[test]
    fn unknown_potential_rejected() {
        let a = args(&["--nx", "4", "--potential", "banana"]);
        assert!(load_matrix(&a).is_err());
    }
}
