//! Fault-tolerant distributed KPM: crash a rank mid-sweep, recover from
//! the checkpoint, and match the fault-free moments.
//!
//! cargo run --release --example fault_tolerant_run

use std::sync::Arc;
use std::time::Duration;

use kpm_repro::core::checkpoint::MemoryCheckpointStore;
use kpm_repro::core::solver::{kpm_moments, KpmParams, KpmVariant};
use kpm_repro::hetsim::dist::{
    distributed_kpm, distributed_kpm_faulty, distributed_kpm_resilient, ResilienceConfig,
    RestartStrategy,
};
use kpm_repro::hetsim::FaultPlan;
use kpm_repro::topo::{ScaleFactors, TopoHamiltonian};

fn main() {
    let h = TopoHamiltonian::clean(8, 8, 4).assemble();
    let sf = ScaleFactors::from_gershgorin(&h, 0.01);
    let params = KpmParams {
        num_moments: 64,
        num_random: 4,
        seed: 42,
        parallel: false,
        threads: 0,
        power: 1,
        first_touch: false,
    };
    let reference =
        kpm_moments(&h, sf, &params, KpmVariant::AugSpmmv).expect("fault-free reference run");
    println!(
        "N = {}, M = {}, R = {}, ranks = 3",
        h.nrows(),
        params.num_moments,
        params.num_random
    );

    // --- Lossless message faults: moments must be bitwise identical to
    // the fault-free *distributed* run (same reduction order). ---
    let clean =
        distributed_kpm(&h, sf, &params, &[1.0; 3], false).expect("fault-free distributed run");
    let noisy = Arc::new(
        FaultPlan::new(1)
            .with_message_duplication(0.3)
            .with_message_delays(0.3, Duration::from_millis(2)),
    );
    let faulty =
        distributed_kpm_faulty(&h, sf, &params, &[1.0; 3], false, Some(Arc::clone(&noisy)))
            .expect("lossless faults must not fail the run");
    let stats = noisy.stats();
    println!(
        "duplication/delay plan: {} duplicated, {} delayed -> bitwise identical: {}",
        stats.duplicated,
        stats.delayed,
        faulty.moments.as_slice() == clean.moments.as_slice(),
    );
    assert_eq!(faulty.moments.as_slice(), clean.moments.as_slice());

    // --- Rank crash at M/2: checkpoint restart on the survivors. ---
    let crash_at = params.iterations() / 2;
    let plan = Arc::new(FaultPlan::new(7).with_rank_crash(1, crash_at));
    let store = MemoryCheckpointStore::new();
    let cfg = ResilienceConfig {
        checkpoint_interval: 4,
        recv_timeout: Duration::from_millis(500),
        max_restarts: 2,
        restart: RestartStrategy::DropCrashed,
    };
    let res = distributed_kpm_resilient(&h, sf, &params, &[1.0; 3], Some(plan), &cfg, &store)
        .expect("the crash must be survived via checkpoint restart");
    println!(
        "rank 1 crashed at sweep {crash_at}: {} restart(s), resumed from sweep {:?}, \
         finished on {} ranks",
        res.restarts, res.resumed_from, res.final_ranks
    );
    println!("checkpoint store holds {} bytes", store.total_bytes());
    let diff = reference.max_abs_diff(&res.report.moments);
    println!("max |mu_fault-free - mu_recovered| = {diff:.2e} (acceptance < 1e-10)");
    assert!(diff < 1e-10);
}
