//! Quickstart: compute the density of states of a sparse Hermitian
//! matrix with the Kernel Polynomial Method in a few lines.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use kpm_repro::core::dos::reconstruct;
use kpm_repro::core::solver::{kpm_moments, KpmParams, KpmVariant};
use kpm_repro::core::Kernel;
use kpm_repro::topo::{ScaleFactors, TopoHamiltonian};

fn main() {
    // 1. Build a sparse Hermitian matrix. Here: the paper's 3D
    //    topological-insulator Hamiltonian on a small 20x20x10 lattice
    //    (N = 16,000 rows, ~13 non-zeros per row).
    let hamiltonian = TopoHamiltonian::clean(20, 20, 10);
    let h = hamiltonian.assemble();
    println!("matrix: {} rows, {} non-zeros", h.nrows(), h.nnz());

    // 2. Rescale the spectrum into the Chebyshev interval [-1, 1]
    //    (Gershgorin bounds with a 1% safety margin).
    let sf = ScaleFactors::from_gershgorin(&h, 0.01);

    // 3. Run KPM-DOS: 512 Chebyshev moments, stochastic trace over 16
    //    random vectors, using the fully optimized blocked solver
    //    (optimization stage 2 of the paper).
    let params = KpmParams {
        num_moments: 512,
        num_random: 16,
        seed: 1,
        parallel: true,
        threads: 0,
        power: 1,
        first_touch: false,
    };
    let moments = kpm_moments(&h, sf, &params, KpmVariant::AugSpmmv).unwrap();

    // 4. Reconstruct the DOS with Jackson damping and print it.
    let dos = reconstruct(&moments, Kernel::Jackson, sf, 400);
    println!(
        "# E\tDOS(E)   (integrates to {:.4} per site)",
        dos.integral()
    );
    for (e, v) in dos.energies.iter().zip(&dos.values).step_by(8) {
        println!("{e:+.3}\t{v:.5}");
    }

    // 5. The headline application: count eigenvalues in a window
    //    without diagonalizing (paper refs. [8], [22]).
    let count = dos.integral_window(-0.5, 0.5) * h.nrows() as f64;
    println!("estimated eigenvalue count in [-0.5, 0.5]: {count:.0}");
}
