//! The paper's physics workload end to end: density of states of a 3D
//! topological insulator with a quantum-dot superlattice gate, computed
//! with all three solver stages and cross-checked for consistency.
//!
//! ```sh
//! cargo run --release --example dos_topological_insulator
//! ```

use kpm_repro::core::dos::{moment_integral, reconstruct};
use kpm_repro::core::solver::{kpm_moments, KpmParams, KpmVariant};
use kpm_repro::core::Kernel;
use kpm_repro::topo::{Lattice3D, Potential, ScaleFactors, TopoHamiltonian};

fn main() {
    // The quantum-dot superlattice of paper Fig. 2, on a reduced
    // domain: dots of strength V = 0.153 on the surface layer.
    let ham = TopoHamiltonian {
        lattice: Lattice3D::paper_default(24, 24, 8),
        t: 1.0,
        potential: Potential::QuantumDots {
            strength: 0.153,
            period: 12,
            radius: 3.0,
            depth: 1,
        },
    };
    let h = ham.assemble();
    let sf = ScaleFactors::from_gershgorin(&h, 0.01);
    println!(
        "topological insulator, {}x{}x{} sites: N = {}, Nnz = {} ({:.1} per row)",
        ham.lattice.nx,
        ham.lattice.ny,
        ham.lattice.nz,
        h.nrows(),
        h.nnz(),
        h.avg_nnz_per_row()
    );

    let params = KpmParams {
        num_moments: 256,
        num_random: 8,
        seed: 7,
        parallel: true,
        threads: 0,
        power: 1,
        first_touch: false,
    };

    // All three optimization stages compute the same moments — the
    // paper's point: the algorithm is untouched, only the data traffic
    // changes. Verify it.
    let naive = kpm_moments(&h, sf, &params, KpmVariant::Naive).unwrap();
    let stage1 = kpm_moments(&h, sf, &params, KpmVariant::AugSpmv).unwrap();
    let stage2 = kpm_moments(&h, sf, &params, KpmVariant::AugSpmmv).unwrap();
    println!(
        "moment agreement: naive-vs-stage1 {:.2e}, naive-vs-stage2 {:.2e}",
        naive.max_abs_diff(&stage1),
        naive.max_abs_diff(&stage2)
    );

    let dos = reconstruct(&stage2, Kernel::Jackson, sf, 1024);
    println!(
        "DOS normalization: {:.6} (moment integral: {:.6})",
        dos.integral(),
        moment_integral(&stage2, Kernel::Jackson)
    );

    // Print the zoom around E = 0 (the paper's right panel of Fig. 1):
    // the surface-state region the quantum dots modify.
    println!("# E\tDOS(E)  for |E| < 0.5");
    for (e, v) in dos.energies.iter().zip(&dos.values) {
        if e.abs() < 0.5 {
            println!("{e:+.4}\t{v:.5}");
        }
    }
}
