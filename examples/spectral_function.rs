//! Momentum-resolved spectral function A(k, E) of the topological
//! insulator — the physics of paper Fig. 2's right panel: the Dirac
//! bands of the clean system, resolved by KPM without diagonalization.
//!
//! ```sh
//! cargo run --release --example spectral_function
//! ```

use kpm_repro::core::spectral::spectral_function;
use kpm_repro::core::Kernel;
use kpm_repro::topo::{Lattice3D, Potential, ScaleFactors, TopoHamiltonian};

fn main() {
    // Fully periodic clean system so every momentum is a good quantum
    // number and the exact Bloch bands are available for comparison.
    let ham = TopoHamiltonian {
        lattice: Lattice3D::periodic(16, 16, 4),
        t: 1.0,
        potential: Potential::Zero,
    };
    let h = ham.assemble();
    let sf = ScaleFactors::from_gershgorin(&h, 0.01);
    println!("matrix: N = {}, Nnz = {}", h.nrows(), h.nnz());

    // Cut along the zone diagonal k = (q, q, 0), where the Bloch bands
    // E(k) genuinely disperse (the (q,0,0) cut of this model is flat).
    println!("# q/pi\tE_KPM-\tE_exact-\tE_KPM+\tE_exact+");
    for ik in 0..=8 {
        // Momenta allowed by the finite lattice: q = 2 pi m / Nx.
        let q = 2.0 * std::f64::consts::PI * ik as f64 / 16.0;
        let curve = spectral_function(
            &h,
            sf,
            &ham.lattice,
            (q, q, 0.0),
            512,
            Kernel::Jackson,
            2048,
        )
        .unwrap();
        let exact = TopoHamiltonian::bloch_eigenvalues(1.0, 0.0, q, q, 0.0);

        // Locate the two spectral peaks (lower and upper band).
        let mid = 0.5 * (exact[0] + exact[2]);
        let (mut lo_e, mut lo_v) = (0.0, 0.0);
        let (mut hi_e, mut hi_v) = (0.0, 0.0);
        for (e, v) in curve.energies.iter().zip(&curve.values) {
            if *e < mid && *v > lo_v {
                lo_e = *e;
                lo_v = *v;
            }
            if *e >= mid && *v > hi_v {
                hi_e = *e;
                hi_v = *v;
            }
        }
        println!(
            "{:.3}\t{:+.3}\t{:+.3}\t{:+.3}\t{:+.3}",
            q / std::f64::consts::PI,
            lo_e,
            exact[0],
            hi_e,
            exact[2]
        );
    }
    println!("# KPM peaks should track the exact Bloch bands within the");
    println!("# Jackson broadening ~ pi * spectral_width / M.");
}
