//! Heterogeneous, distributed KPM: the paper's data-parallel execution
//! model (one process per device, weighted row distribution, halo
//! exchange) running functionally on OS-thread "ranks", validated
//! against the shared-memory solver.
//!
//! ```sh
//! cargo run --release --example heterogeneous_node
//! ```

use kpm_repro::core::solver::{kpm_moments, KpmParams, KpmVariant};
use kpm_repro::hetsim::dist::distributed_kpm;
use kpm_repro::topo::{ScaleFactors, TopoHamiltonian};

fn main() {
    let ham = TopoHamiltonian::clean(12, 12, 6);
    let h = ham.assemble();
    let sf = ScaleFactors::from_gershgorin(&h, 0.01);
    println!("matrix: N = {}, Nnz = {}", h.nrows(), h.nnz());

    let params = KpmParams {
        num_moments: 128,
        num_random: 8,
        seed: 99,
        parallel: false, // ranks are the parallelism here
        threads: 0,
        power: 1,
        first_touch: false,
    };

    // Reference: single-process stage-2 solver.
    let reference = kpm_moments(&h, sf, &params, KpmVariant::AugSpmmv).unwrap();

    // A heterogeneous "node": a slow CPU rank and a fast GPU rank, the
    // GPU weighted 2.3x (the paper tunes weights from single-device
    // performance). Plus a second node's worth of ranks.
    let weights = [1.0, 2.3, 1.0, 2.3];
    let report = distributed_kpm(&h, sf, &params, &weights, false).unwrap();
    println!(
        "4 ranks (weights {weights:?}): moment deviation {:.2e}, halo payload {} kB, {} global reduction(s)",
        reference.max_abs_diff(&report.moments),
        report.halo_bytes / 1024,
        report.global_reductions
    );

    // The Table III comparison, functionally: a global reduction per
    // iteration computes the same moments with many more reductions.
    let star = distributed_kpm(&h, sf, &params, &weights, true).unwrap();
    println!(
        "aug_spmmv()* variant: deviation {:.2e}, {} global reductions (vs {})",
        report.moments.max_abs_diff(&star.moments),
        star.global_reductions,
        report.global_reductions
    );

    assert!(reference.max_abs_diff(&report.moments) < 1e-9);
    println!("distributed and shared-memory solvers agree: OK");
}
