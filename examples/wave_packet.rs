//! Wave-packet dynamics with Chebyshev time evolution — the KPM
//! recurrence applied to e^{-iHt} (review ref. [7] of the paper): a
//! surface-localized electron spreading through the topological
//! insulator, with exactly conserved norm.
//!
//! ```sh
//! cargo run --release --example wave_packet
//! ```

use kpm_repro::core::evolution::{evolve, survival_amplitude};
use kpm_repro::num::{Complex64, Vector};
use kpm_repro::topo::{ScaleFactors, TopoHamiltonian};

fn main() {
    let ham = TopoHamiltonian::clean(10, 10, 4);
    let h = ham.assemble();
    let sf = ScaleFactors::from_gershgorin(&h, 0.01);
    let lat = ham.lattice;
    println!("matrix: N = {}, Nnz = {}", h.nrows(), h.nnz());

    // Start on the top surface, centre of the sample, orbital 0.
    let start_site = lat.site(5, 5, 0);
    let mut data = vec![Complex64::default(); h.nrows()];
    data[4 * start_site] = Complex64::real(1.0);
    let psi0 = Vector::from_vec(data);

    println!("# t\tnorm\t|<psi0|psi(t)>|^2\tspread (participation ratio)");
    for step in 0..=8 {
        let t = step as f64 * 0.75;
        let psi_t = evolve(&h, sf, &psi0, t);
        let surv = survival_amplitude(&h, sf, &psi0, t).norm_sqr();
        let p4: f64 = psi_t.as_slice().iter().map(|z| z.norm_sqr().powi(2)).sum();
        println!("{t:.2}\t{:.12}\t{:.4}\t{:.1}", psi_t.norm(), surv, 1.0 / p4);
    }
    println!("# norm stays 1 to machine precision (unitary propagation);");
    println!("# the survival probability decays as the packet leaks into the bulk.");
}
