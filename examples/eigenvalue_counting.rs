//! Eigenvalue counting for subspace sizing — the application that
//! motivates KPM-DOS in the paper's introduction (refs. [8], [22]):
//! before launching a FEAST-like projection eigensolver, estimate how
//! many eigenvalues live in the search window so the subspace can be
//! sized correctly — without ever diagonalizing.
//!
//! ```sh
//! cargo run --release --example eigenvalue_counting
//! ```

use kpm_repro::core::eigencount::estimate_count;
use kpm_repro::core::solver::KpmParams;
use kpm_repro::topo::model::exact_eigenvalues;
use kpm_repro::topo::TopoHamiltonian;

fn main() {
    // Small enough to cross-check against exact diagonalization.
    let h = TopoHamiltonian::clean(3, 3, 3).assemble();
    let n = h.nrows();
    println!("matrix: N = {n}, Nnz = {}", h.nnz());

    let params = KpmParams {
        num_moments: 256,
        num_random: 64,
        seed: 22,
        parallel: true,
        threads: 0,
        power: 1,
        first_touch: false,
    };

    let evs = exact_eigenvalues(&h);
    println!("# window\tKPM estimate\texact count");
    for (lo, hi) in [
        (-6.0, -3.0),
        (-3.0, -1.0),
        (-1.0, 1.0),
        (1.0, 3.0),
        (3.0, 6.0),
    ] {
        let est = estimate_count(&h, &params, lo, hi).unwrap();
        let exact = evs.iter().filter(|e| **e >= lo && **e < hi).count();
        println!("[{lo:+.1}, {hi:+.1})\t{est:8.1}\t{exact:8}");
    }
    println!("# A FEAST-style solver would allocate ~1.2x the estimate as its");
    println!("# subspace dimension for each window.");
}
