//! Performance-engineering walkthrough: the paper's model pipeline on
//! one workload — code balance, Omega from the cache simulator, the
//! custom roofline, and the predicted node-level gains.
//!
//! ```sh
//! cargo run --release --example roofline_report
//! ```

use kpm_repro::hetsim::node::{node_performance, Stage};
use kpm_repro::perfmodel::balance::{asymptotic_balance, min_code_balance};
use kpm_repro::perfmodel::machine::{IVB, SNB};
use kpm_repro::perfmodel::omega::{llc_config, measure_omega};
use kpm_repro::perfmodel::roofline::custom_roofline;
use kpm_repro::simgpu::GpuDevice;
use kpm_repro::topo::TopoHamiltonian;

fn main() {
    let h = TopoHamiltonian::clean(48, 48, 16).assemble();
    println!(
        "workload: N = {}, Nnz = {} ({:.1} nnz/row)\n",
        h.nrows(),
        h.nnz(),
        h.avg_nnz_per_row()
    );

    println!("step 1 — code balance (paper Eqs. 5-7):");
    for r in [1usize, 4, 16, 32] {
        println!(
            "  B_min(R={r:>2}) = {:.3} bytes/flop",
            min_code_balance(13.0, r)
        );
    }
    println!(
        "  asymptote    = {:.3} bytes/flop\n",
        asymptotic_balance(13.0)
    );

    println!("step 2 — Omega from the LLC cache simulator (paper Eq. 8):");
    let llc = llc_config(&IVB);
    let mut omegas = Vec::new();
    for r in [1usize, 8, 32] {
        let om = measure_omega(&h, r, llc);
        println!(
            "  R={r:>2}: V_min = {:>6.1} MB, V_meas = {:>6.1} MB, Omega = {:.3}",
            om.v_min as f64 / 1e6,
            om.v_meas as f64 / 1e6,
            om.omega
        );
        omegas.push((r, om.omega.max(1.0)));
    }

    println!("\nstep 3 — custom roofline on IVB (paper Eq. 11):");
    for (r, omega) in omegas {
        let pt = custom_roofline(&IVB, 13.0, r, omega);
        let bound = if pt.p_mem < pt.p_llc { "memory" } else { "LLC" };
        println!(
            "  R={r:>2}: P_MEM = {:>5.1}, P_LLC = {:>5.1} => P* = {:>5.1} Gflop/s ({bound}-bound)",
            pt.p_mem, pt.p_llc, pt.p_star
        );
    }

    println!("\nstep 4 — what it buys at the node level (SNB + K20X):");
    let gpu = GpuDevice::k20x();
    for (name, stage) in [
        ("naive   ", Stage::Naive),
        ("stage 1 ", Stage::Stage1),
        ("stage 2 ", Stage::Stage2),
    ] {
        let p = node_performance(&SNB, &gpu, stage, 32, &h, 1.3);
        println!(
            "  {name}: CPU {:>5.1} | GPU {:>5.1} | CPU+GPU {:>6.1} Gflop/s ({:.0}% efficiency)",
            p.cpu_gflops,
            p.gpu_gflops,
            p.het_gflops,
            100.0 * p.efficiency
        );
    }
}
