//! On-site potentials `V_n`.
//!
//! The external electric potential of paper Eq. (1) creates the
//! quantum-dot superlattice structure studied in Fig. 2 (`V_Dot = 0.153`,
//! dot spacing `D = 100`, dot radius `R = 25`).

use crate::lattice::Lattice3D;

/// The on-site potential landscape `V_n`.
#[derive(Debug, Clone)]
pub enum Potential {
    /// `V_n = 0` everywhere — the clean topological insulator of Fig. 1.
    Zero,
    /// Constant `V_n = v` (shifts the whole spectrum by `v`).
    Uniform(f64),
    /// A square superlattice of circular quantum dots imposed on the top
    /// surface of the sample (paper Fig. 2).
    QuantumDots {
        /// Dot strength `V_Dot` (paper: 0.153).
        strength: f64,
        /// Superlattice period `D` in lattice constants (paper: 100).
        period: usize,
        /// Dot radius `R` in lattice constants (paper: 25).
        radius: f64,
        /// Number of surface layers (in z, measured from z = 0) over
        /// which the gate potential acts.
        depth: usize,
    },
    /// Uncorrelated on-site disorder in `[-w/2, w/2]`, reproducible from
    /// the given seed (used by robustness tests; disorder physics as in
    /// paper ref. [20]).
    Disorder {
        /// Disorder strength `w`.
        width: f64,
        /// RNG seed so the landscape is a pure function of the site.
        seed: u64,
    },
}

impl Potential {
    /// The paper's Fig. 2 parameter set.
    pub fn paper_quantum_dots() -> Self {
        Potential::QuantumDots {
            strength: 0.153,
            period: 100,
            radius: 25.0,
            depth: 1,
        }
    }

    /// Evaluates `V_n` at lattice site `(x, y, z)`.
    pub fn value(&self, lattice: &Lattice3D, x: usize, y: usize, z: usize) -> f64 {
        match *self {
            Potential::Zero => 0.0,
            Potential::Uniform(v) => v,
            Potential::QuantumDots {
                strength,
                period,
                radius,
                depth,
            } => {
                if z >= depth {
                    return 0.0;
                }
                // Distance to the nearest dot centre of the square
                // superlattice; dot centres sit at (period/2 + i*period,
                // period/2 + j*period).
                let p = period as f64;
                let dx = wrapped_offset(x as f64, p);
                let dy = wrapped_offset(y as f64, p);
                if (dx * dx + dy * dy).sqrt() <= radius {
                    strength
                } else {
                    0.0
                }
            }
            Potential::Disorder { width, seed } => {
                let site = lattice.site(x, y, z) as u64;
                // SplitMix64 over (seed, site): deterministic, stateless.
                let mut h = seed ^ site.wrapping_mul(0x9E37_79B9_7F4A_7C15);
                h ^= h >> 30;
                h = h.wrapping_mul(0xBF58_476D_1CE4_E5B9);
                h ^= h >> 27;
                h = h.wrapping_mul(0x94D0_49BB_1331_11EB);
                h ^= h >> 31;
                let u = (h >> 11) as f64 / (1u64 << 53) as f64; // [0,1)
                width * (u - 0.5)
            }
        }
    }
}

/// Signed distance from `coord` to the nearest superlattice dot-centre
/// coordinate (centres at `p/2 + k·p`).
fn wrapped_offset(coord: f64, p: f64) -> f64 {
    let rel = (coord - p / 2.0).rem_euclid(p);
    if rel > p / 2.0 {
        rel - p
    } else {
        rel
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lat() -> Lattice3D {
        Lattice3D::paper_default(200, 200, 4)
    }

    #[test]
    fn zero_everywhere() {
        let l = lat();
        assert_eq!(Potential::Zero.value(&l, 3, 7, 2), 0.0);
    }

    #[test]
    fn uniform_everywhere() {
        let l = lat();
        assert_eq!(Potential::Uniform(-0.4).value(&l, 0, 0, 0), -0.4);
        assert_eq!(Potential::Uniform(-0.4).value(&l, 199, 199, 3), -0.4);
    }

    #[test]
    fn dot_centre_has_potential_far_field_does_not() {
        let l = lat();
        let p = Potential::paper_quantum_dots();
        // Dot centre at (50, 50) on the surface layer.
        assert_eq!(p.value(&l, 50, 50, 0), 0.153);
        // Inside radius 25.
        assert_eq!(p.value(&l, 60, 60, 0), 0.153);
        // Corner between dots: distance to nearest centre is ~sqrt(2)*50.
        assert_eq!(p.value(&l, 0, 0, 0), 0.0);
        // Below the surface layer the gate does not reach.
        assert_eq!(p.value(&l, 50, 50, 1), 0.0);
    }

    #[test]
    fn dots_repeat_with_period() {
        let l = lat();
        let p = Potential::paper_quantum_dots();
        assert_eq!(p.value(&l, 150, 50, 0), 0.153); // next cell in x
        assert_eq!(p.value(&l, 150, 150, 0), 0.153); // diagonal cell
    }

    #[test]
    fn dot_edge_is_sharp() {
        let l = lat();
        let p = Potential::paper_quantum_dots();
        assert_eq!(p.value(&l, 75, 50, 0), 0.153); // exactly at radius 25
        assert_eq!(p.value(&l, 76, 50, 0), 0.0); // one site beyond
    }

    #[test]
    fn disorder_is_deterministic_and_bounded() {
        let l = lat();
        let p = Potential::Disorder {
            width: 2.0,
            seed: 7,
        };
        let a = p.value(&l, 10, 20, 1);
        let b = p.value(&l, 10, 20, 1);
        assert_eq!(a, b);
        let mut distinct = false;
        for x in 0..50 {
            let v = p.value(&l, x, 0, 0);
            assert!((-1.0..1.0).contains(&v));
            if (v - a).abs() > 1e-12 {
                distinct = true;
            }
        }
        assert!(distinct, "disorder should vary between sites");
    }

    #[test]
    fn disorder_mean_is_near_zero() {
        let l = lat();
        let p = Potential::Disorder {
            width: 1.0,
            seed: 123,
        };
        let mut sum = 0.0;
        let mut count = 0usize;
        for x in 0..200 {
            for y in 0..200 {
                sum += p.value(&l, x, y, 0);
                count += 1;
            }
        }
        assert!((sum / count as f64).abs() < 0.01);
    }
}
