//! Topological-insulator application substrate (paper Section I-B).
//!
//! Implements the Hamilton operator of paper Eq. (1),
//!
//! ```text
//! H = -t Σ_n Σ_{j=1,2,3}  Ψ†_{n+ê_j} [(Γ¹ - iΓ^{j+1})/2] Ψ_n  + H.c.
//!     + Σ_n Ψ†_n (V_n Γ⁰ + 2Γ¹) Ψ_n
//! ```
//!
//! on a finite `Nx × Ny × Nz` lattice with a local 4-dimensional
//! orbital⊗spin degree of freedom, periodic boundary conditions in x and
//! y (open in z), and a quantum-dot superlattice potential `V_n`. The
//! resulting sparse matrix has dimension `N = 4·Nx·Ny·Nz`, is complex
//! Hermitian, and carries `N_nz ≈ 13·N` non-zeros — the workload of every
//! benchmark in the paper.
//!
//! Modules:
//! * [`gamma`] — the 4×4 Dirac matrices Γ⁰…Γ⁴,
//! * [`lattice`] — site indexing and neighbour lookup with per-axis
//!   boundary conditions,
//! * [`potential`] — on-site potentials `V_n`, including the quantum-dot
//!   superlattice of paper Fig. 2,
//! * [`hamiltonian`] — the sparse-matrix assembler plus spectral
//!   rescaling helpers,
//! * [`model`] — auxiliary exactly-solvable models used by tests,
//! * [`graphene`] — the honeycomb quantum-dot-superlattice workload of
//!   paper ref. [21], a second real application with a Dirac spectrum.

pub mod gamma;
pub mod graphene;
pub mod hamiltonian;
pub mod lattice;
pub mod model;
pub mod potential;

pub use hamiltonian::{ScaleFactors, TopoHamiltonian};
pub use lattice::{Boundary, Lattice3D};
pub use potential::Potential;
