//! 3D lattice geometry: site indexing and neighbour lookup.
//!
//! Sites are ordered x-fastest: `site(x, y, z) = x + Nx·(y + Ny·z)`,
//! and the four local orbitals of each site occupy consecutive matrix
//! rows, `row = 4·site + orbital`. This ordering makes the ±x hops
//! adjacent sub-diagonals and the periodic wrap-arounds the "outlying
//! diagonals in the matrix corners" the paper describes.

/// Boundary condition along one axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Boundary {
    /// Open: bonds leaving the sample are dropped.
    Open,
    /// Periodic: coordinates wrap around.
    Periodic,
}

/// A finite `Nx × Ny × Nz` lattice with per-axis boundary conditions.
///
/// The paper's production setup is periodic in x and y, open in z
/// ([`Lattice3D::paper_default`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Lattice3D {
    /// Extent in x.
    pub nx: usize,
    /// Extent in y.
    pub ny: usize,
    /// Extent in z.
    pub nz: usize,
    /// Boundary conditions along (x, y, z).
    pub boundary: [Boundary; 3],
}

impl Lattice3D {
    /// Creates a lattice with explicit boundary conditions.
    pub fn new(nx: usize, ny: usize, nz: usize, boundary: [Boundary; 3]) -> Self {
        assert!(
            nx > 0 && ny > 0 && nz > 0,
            "lattice extents must be positive"
        );
        Self {
            nx,
            ny,
            nz,
            boundary,
        }
    }

    /// The paper's configuration: periodic in x and y, open in z.
    pub fn paper_default(nx: usize, ny: usize, nz: usize) -> Self {
        Self::new(
            nx,
            ny,
            nz,
            [Boundary::Periodic, Boundary::Periodic, Boundary::Open],
        )
    }

    /// Fully periodic lattice (used by the plane-wave validation tests).
    pub fn periodic(nx: usize, ny: usize, nz: usize) -> Self {
        Self::new(nx, ny, nz, [Boundary::Periodic; 3])
    }

    /// Number of lattice sites.
    pub fn sites(&self) -> usize {
        self.nx * self.ny * self.nz
    }

    /// Matrix dimension `N = 4 · Nx · Ny · Nz`.
    pub fn dim(&self) -> usize {
        4 * self.sites()
    }

    /// Linear site index of `(x, y, z)` (x fastest).
    #[inline(always)]
    pub fn site(&self, x: usize, y: usize, z: usize) -> usize {
        debug_assert!(x < self.nx && y < self.ny && z < self.nz);
        x + self.nx * (y + self.ny * z)
    }

    /// Inverse of [`Lattice3D::site`].
    #[inline(always)]
    pub fn coords(&self, site: usize) -> (usize, usize, usize) {
        let x = site % self.nx;
        let y = (site / self.nx) % self.ny;
        let z = site / (self.nx * self.ny);
        (x, y, z)
    }

    /// The neighbour of `(x, y, z)` in direction `j ∈ {1,2,3}` (+x, +y,
    /// +z), or `None` if the bond leaves an open boundary.
    pub fn neighbor(&self, x: usize, y: usize, z: usize, j: usize) -> Option<usize> {
        let (extent, coord) = match j {
            1 => (self.nx, x),
            2 => (self.ny, y),
            3 => (self.nz, z),
            _ => panic!("direction must be 1, 2 or 3"),
        };
        if extent == 1 {
            // A periodic wrap on a single-site axis would be a self-loop;
            // treat length-1 axes as open regardless of the declared BC.
            return None;
        }
        let next = if coord + 1 < extent {
            coord + 1
        } else {
            match self.boundary[j - 1] {
                Boundary::Periodic => 0,
                Boundary::Open => return None,
            }
        };
        Some(match j {
            1 => self.site(next, y, z),
            2 => self.site(x, next, z),
            _ => self.site(x, y, next),
        })
    }

    /// The neighbour of `(x, y, z)` in direction `-ê_j`, or `None` at an
    /// open boundary. This is the site `m` with `m + ê_j = n`, needed
    /// when assembling row `n` of the Hamiltonian (the `T_j` block of the
    /// incoming bond lives in row block `n`, column block `m`).
    pub fn neighbor_prev(&self, x: usize, y: usize, z: usize, j: usize) -> Option<usize> {
        let (extent, coord) = match j {
            1 => (self.nx, x),
            2 => (self.ny, y),
            3 => (self.nz, z),
            _ => panic!("direction must be 1, 2 or 3"),
        };
        if extent == 1 {
            return None;
        }
        let prev = if coord > 0 {
            coord - 1
        } else {
            match self.boundary[j - 1] {
                Boundary::Periodic => extent - 1,
                Boundary::Open => return None,
            }
        };
        Some(match j {
            1 => self.site(prev, y, z),
            2 => self.site(x, prev, z),
            _ => self.site(x, y, prev),
        })
    }

    /// Total number of directed bonds (each undirected bond counted
    /// once, in its +ê_j orientation).
    pub fn bond_count(&self) -> usize {
        let mut count = 0;
        for (j, extent) in [(1usize, self.nx), (2, self.ny), (3, self.nz)] {
            let per_line = match self.boundary[j - 1] {
                Boundary::Periodic if extent > 1 => extent,
                _ => extent - 1,
            };
            count += per_line * self.sites() / extent;
        }
        count
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn site_coords_roundtrip() {
        let l = Lattice3D::paper_default(5, 7, 3);
        for s in 0..l.sites() {
            let (x, y, z) = l.coords(s);
            assert_eq!(l.site(x, y, z), s);
        }
    }

    #[test]
    fn x_is_fastest_axis() {
        let l = Lattice3D::paper_default(10, 4, 2);
        assert_eq!(l.site(1, 0, 0), 1);
        assert_eq!(l.site(0, 1, 0), 10);
        assert_eq!(l.site(0, 0, 1), 40);
    }

    #[test]
    fn periodic_wraps_open_stops() {
        let l = Lattice3D::paper_default(4, 4, 4);
        // +x from x=3 wraps to x=0 (periodic).
        assert_eq!(l.neighbor(3, 2, 1, 1), Some(l.site(0, 2, 1)));
        // +y from y=3 wraps.
        assert_eq!(l.neighbor(1, 3, 0, 2), Some(l.site(1, 0, 0)));
        // +z from z=3 leaves the open boundary.
        assert_eq!(l.neighbor(0, 0, 3, 3), None);
        // Interior neighbours are the adjacent sites.
        assert_eq!(l.neighbor(1, 1, 1, 3), Some(l.site(1, 1, 2)));
    }

    #[test]
    fn dim_is_4n() {
        let l = Lattice3D::paper_default(100, 100, 40);
        assert_eq!(l.dim(), 4 * 100 * 100 * 40);
        assert_eq!(l.dim(), 1_600_000);
    }

    #[test]
    fn bond_count_matches_enumeration() {
        for lat in [
            Lattice3D::paper_default(4, 5, 3),
            Lattice3D::periodic(3, 3, 3),
            Lattice3D::new(6, 2, 2, [Boundary::Open; 3]),
        ] {
            let mut count = 0;
            for z in 0..lat.nz {
                for y in 0..lat.ny {
                    for x in 0..lat.nx {
                        for j in 1..=3 {
                            if lat.neighbor(x, y, z, j).is_some() {
                                count += 1;
                            }
                        }
                    }
                }
            }
            assert_eq!(count, lat.bond_count(), "{lat:?}");
        }
    }

    #[test]
    #[should_panic(expected = "extents must be positive")]
    fn zero_extent_panics() {
        Lattice3D::paper_default(0, 4, 4);
    }
}
