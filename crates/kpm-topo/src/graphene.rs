//! Graphene quantum-dot superlattices (paper ref. [21]).
//!
//! The physics companion to the 3D topological insulator: Fig. 2 of the
//! paper studies the same dot-superlattice physics that Pieper et al.
//! (Phys. Rev. B 89, 165121 — ref. [21]) establish for graphene. This
//! module provides the honeycomb-lattice tight-binding Hamiltonian
//!
//! `H = -t Σ_{<ij>} c†_i c_j + Σ_i V_i c†_i c_i`,
//!
//! so the full KPM stack (DOS, LDOS, spectral function, evolution) runs
//! on a second real workload with a qualitatively different spectrum
//! (linear Dirac DOS at E = 0 instead of a gapped 3D band structure).

use kpm_num::Complex64;
use kpm_sparse::{CooMatrix, CrsMatrix};

/// A honeycomb lattice of `nx × ny` unit cells (two sites per cell),
/// periodic in both directions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GrapheneLattice {
    /// Cells along the first lattice vector.
    pub nx: usize,
    /// Cells along the second lattice vector.
    pub ny: usize,
}

impl GrapheneLattice {
    /// Creates a periodic honeycomb lattice; extents must be ≥ 2 so the
    /// wrap-around bonds are distinct.
    pub fn new(nx: usize, ny: usize) -> Self {
        assert!(nx >= 2 && ny >= 2, "need at least 2x2 cells");
        Self { nx, ny }
    }

    /// Number of sites (2 per cell).
    pub fn sites(&self) -> usize {
        2 * self.nx * self.ny
    }

    /// Matrix row of cell `(x, y)`, sublattice `s ∈ {0 (A), 1 (B)}`.
    #[inline]
    pub fn site(&self, x: usize, y: usize, s: usize) -> usize {
        debug_assert!(x < self.nx && y < self.ny && s < 2);
        2 * (x + self.nx * y) + s
    }

    /// The three B-sublattice neighbours of the A site in cell `(x, y)`:
    /// same cell, cell `x-1`, and cell `y-1` (periodic wrap).
    pub fn neighbors_of_a(&self, x: usize, y: usize) -> [usize; 3] {
        let xm = (x + self.nx - 1) % self.nx;
        let ym = (y + self.ny - 1) % self.ny;
        [self.site(x, y, 1), self.site(xm, y, 1), self.site(x, ym, 1)]
    }
}

/// Graphene Hamiltonian: hopping `t` plus an on-site potential given by
/// a per-site closure (cell x, cell y, sublattice) → V.
pub fn graphene_hamiltonian<F>(lattice: GrapheneLattice, t: f64, potential: F) -> CrsMatrix
where
    F: Fn(usize, usize, usize) -> f64,
{
    let n = lattice.sites();
    let mut coo = CooMatrix::with_capacity(n, n, 4 * n);
    for y in 0..lattice.ny {
        for x in 0..lattice.nx {
            for s in 0..2 {
                let v = potential(x, y, s);
                if v != 0.0 {
                    coo.push(
                        lattice.site(x, y, s),
                        lattice.site(x, y, s),
                        Complex64::real(v),
                    );
                }
            }
            let a = lattice.site(x, y, 0);
            for b in lattice.neighbors_of_a(x, y) {
                coo.push(a, b, Complex64::real(-t));
                coo.push(b, a, Complex64::real(-t));
            }
        }
    }
    coo.to_crs()
}

/// The clean graphene sheet.
pub fn clean_graphene(lattice: GrapheneLattice, t: f64) -> CrsMatrix {
    graphene_hamiltonian(lattice, t, |_, _, _| 0.0)
}

/// Graphene with a square superlattice of circular gate-defined dots of
/// the given `strength`, `period` (in cells) and `radius` (the system of
/// paper ref. [21]).
pub fn graphene_quantum_dots(
    lattice: GrapheneLattice,
    t: f64,
    strength: f64,
    period: usize,
    radius: f64,
) -> CrsMatrix {
    graphene_hamiltonian(lattice, t, move |x, y, _| {
        let p = period as f64;
        let dx = (x as f64 - p / 2.0).rem_euclid(p)
            - if (x as f64 - p / 2.0).rem_euclid(p) > p / 2.0 {
                p
            } else {
                0.0
            };
        let dy = (y as f64 - p / 2.0).rem_euclid(p)
            - if (y as f64 - p / 2.0).rem_euclid(p) > p / 2.0 {
                p
            } else {
                0.0
            };
        if (dx * dx + dy * dy).sqrt() <= radius {
            strength
        } else {
            0.0
        }
    })
}

/// The two Bloch band energies of clean graphene at momentum
/// `(kx, ky)` (in reciprocal-cell units): `E = ±t·|1 + e^{ikx} + e^{iky}|`.
pub fn graphene_bloch_energies(t: f64, kx: f64, ky: f64) -> [f64; 2] {
    let f = Complex64::real(1.0) + Complex64::new(0.0, kx).exp() + Complex64::new(0.0, ky).exp();
    let e = t * f.abs();
    [-e, e]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::exact_eigenvalues;
    use kpm_sparse::spmv::spmv;

    #[test]
    fn dimensions_and_coordination() {
        let lat = GrapheneLattice::new(4, 4);
        let h = clean_graphene(lat, 1.0);
        assert_eq!(h.nrows(), 32);
        // Every site has exactly 3 neighbours.
        for r in 0..h.nrows() {
            assert_eq!(h.row_len(r), 3, "row {r}");
        }
        assert!(h.is_hermitian());
    }

    #[test]
    fn spectrum_is_particle_hole_symmetric() {
        // Bipartite lattice: spectrum symmetric under E -> -E.
        let lat = GrapheneLattice::new(3, 3);
        let h = clean_graphene(lat, 1.0);
        let evs = exact_eigenvalues(&h);
        let n = evs.len();
        for i in 0..n / 2 {
            assert!(
                (evs[i] + evs[n - 1 - i]).abs() < 1e-9,
                "{} vs {}",
                evs[i],
                evs[n - 1 - i]
            );
        }
        // Bandwidth is 3t (the Gamma-point energy).
        assert!((evs[n - 1] - 3.0).abs() < 1e-9);
    }

    #[test]
    fn bloch_momenta_are_exact_eigenvalues() {
        // Allowed momenta k = 2 pi m / N: each Bloch energy must appear
        // in the exact spectrum.
        let lat = GrapheneLattice::new(4, 4);
        let h = clean_graphene(lat, 1.0);
        let evs = exact_eigenvalues(&h);
        for mx in 0..4 {
            for my in 0..4 {
                let kx = 2.0 * std::f64::consts::PI * mx as f64 / 4.0;
                let ky = 2.0 * std::f64::consts::PI * my as f64 / 4.0;
                for e in graphene_bloch_energies(1.0, kx, ky) {
                    assert!(
                        evs.iter().any(|ev| (ev - e).abs() < 1e-9),
                        "Bloch energy {e} missing (k = {mx},{my})"
                    );
                }
            }
        }
    }

    #[test]
    fn plane_wave_projector_annihilates() {
        // (H - E-)(H - E+) |k, spinor> = 0 for any sublattice spinor.
        let lat = GrapheneLattice::new(6, 6);
        let h = clean_graphene(lat, 1.0);
        let n = h.nrows();
        let (kx, ky) = (
            2.0 * std::f64::consts::PI / 6.0,
            4.0 * std::f64::consts::PI / 6.0,
        );
        let [e_m, e_p] = graphene_bloch_energies(1.0, kx, ky);
        let spinor = [Complex64::new(0.4, 0.1), Complex64::new(-0.3, 0.8)];
        let mut psi = vec![Complex64::default(); n];
        for y in 0..6 {
            for x in 0..6 {
                let phase = kx * x as f64 + ky * y as f64;
                let bloch = Complex64::new(phase.cos(), phase.sin());
                for s in 0..2 {
                    psi[lat.site(x, y, s)] = bloch * spinor[s];
                }
            }
        }
        let mut t1 = vec![Complex64::default(); n];
        spmv(&h, &psi, &mut t1);
        for i in 0..n {
            t1[i] -= psi[i].scale(e_m);
        }
        let mut r = vec![Complex64::default(); n];
        spmv(&h, &t1, &mut r);
        for i in 0..n {
            r[i] -= t1[i].scale(e_p);
        }
        let res: f64 = r.iter().map(|z| z.norm_sqr()).sum::<f64>().sqrt();
        assert!(res < 1e-9, "residual {res}");
    }

    #[test]
    fn dirac_point_dos_vanishes() {
        // KPM DOS of clean graphene: rho(0) << rho at the van Hove
        // energy |E| = t.
        use crate::ScaleFactors;
        let lat = GrapheneLattice::new(24, 24);
        let h = clean_graphene(lat, 1.0);
        let sf = ScaleFactors::from_bounds(-3.0, 3.0, 0.02);
        // Single-state KPM is not enough; use the full solver via the
        // public kpm-core API in integration tests. Here: Gershgorin
        // sanity + structure only.
        let (lo, hi) = h.gershgorin_bounds();
        assert!(lo >= -3.0 - 1e-9 && hi <= 3.0 + 1e-9);
        assert!(sf.a > 0.0);
    }

    #[test]
    fn dots_add_diagonal_entries() {
        let lat = GrapheneLattice::new(8, 8);
        let h = graphene_quantum_dots(lat, 1.0, 0.3, 8, 2.0);
        assert!(h.is_hermitian());
        let with_diag = (0..h.nrows())
            .filter(|&r| h.get(r, r) != Complex64::default())
            .count();
        assert!(with_diag > 0 && with_diag < h.nrows());
        // Dot-centre site carries the potential.
        let centre = lat.site(4, 4, 0);
        assert_eq!(h.get(centre, centre), Complex64::real(0.3));
    }
}
