//! The 4×4 Dirac Γ-matrices of the topological-insulator model.
//!
//! The paper writes the Hamiltonian in terms of five matrices Γ⁰…Γ⁴.
//! Γ⁰ is the 4×4 identity; Γ¹…Γ⁴ form a Hermitian Clifford algebra,
//! `{Γᵃ, Γᵇ} = 2δ_ab`. We use the standard Dirac representation
//!
//! ```text
//! Γ¹ = τ_z ⊗ σ₀   (the "mass" matrix β)
//! Γ² = τ_x ⊗ σ_x
//! Γ³ = τ_x ⊗ σ_y
//! Γ⁴ = τ_x ⊗ σ_z
//! ```
//!
//! where τ acts on the orbital and σ on the spin degree of freedom. The
//! paper notes the precise representation is irrelevant for the
//! performance study; what matters — and what the tests pin down — is
//! Hermiticity, the anticommutation relations, and the non-zero pattern
//! that yields `N_nz ≈ 13·N`.

use kpm_num::Complex64;

/// A dense 4×4 complex matrix, row-major.
pub type Gamma = [[Complex64; 4]; 4];

const O: Complex64 = Complex64 { re: 0.0, im: 0.0 };
const P: Complex64 = Complex64 { re: 1.0, im: 0.0 };
const M: Complex64 = Complex64 { re: -1.0, im: 0.0 };
const PI_: Complex64 = Complex64 { re: 0.0, im: 1.0 };
const MI: Complex64 = Complex64 { re: 0.0, im: -1.0 };

/// Γ⁰ — the 4×4 identity; couples to the scalar potential `V_n`.
pub const GAMMA0: Gamma = [[P, O, O, O], [O, P, O, O], [O, O, P, O], [O, O, O, P]];

/// Γ¹ = τ_z ⊗ σ₀ — diagonal "mass" matrix.
pub const GAMMA1: Gamma = [[P, O, O, O], [O, P, O, O], [O, O, M, O], [O, O, O, M]];

/// Γ² = τ_x ⊗ σ_x.
pub const GAMMA2: Gamma = [[O, O, O, P], [O, O, P, O], [O, P, O, O], [P, O, O, O]];

/// Γ³ = τ_x ⊗ σ_y.
pub const GAMMA3: Gamma = [[O, O, O, MI], [O, O, PI_, O], [O, MI, O, O], [PI_, O, O, O]];

/// Γ⁴ = τ_x ⊗ σ_z.
pub const GAMMA4: Gamma = [[O, O, P, O], [O, O, O, M], [P, O, O, O], [O, M, O, O]];

/// All five Γ-matrices indexed as the paper indexes them (`GAMMAS[a]` is
/// Γᵃ).
pub const GAMMAS: [Gamma; 5] = [GAMMA0, GAMMA1, GAMMA2, GAMMA3, GAMMA4];

/// Matrix product of two 4×4 blocks.
pub fn matmul(a: &Gamma, b: &Gamma) -> Gamma {
    let mut c = [[O; 4]; 4];
    for i in 0..4 {
        for j in 0..4 {
            let mut acc = O;
            for (k, bk) in b.iter().enumerate() {
                acc = a[i][k].mul_add(bk[j], acc);
            }
            c[i][j] = acc;
        }
    }
    c
}

/// Sum of two 4×4 blocks.
pub fn matadd(a: &Gamma, b: &Gamma) -> Gamma {
    let mut c = [[O; 4]; 4];
    for i in 0..4 {
        for j in 0..4 {
            c[i][j] = a[i][j] + b[i][j];
        }
    }
    c
}

/// Scales a 4×4 block by a complex factor.
pub fn matscale(s: Complex64, a: &Gamma) -> Gamma {
    let mut c = [[O; 4]; 4];
    for i in 0..4 {
        for j in 0..4 {
            c[i][j] = s * a[i][j];
        }
    }
    c
}

/// Conjugate transpose of a 4×4 block.
pub fn dagger(a: &Gamma) -> Gamma {
    let mut c = [[O; 4]; 4];
    for i in 0..4 {
        for j in 0..4 {
            c[i][j] = a[j][i].conj();
        }
    }
    c
}

/// The hopping block `T_j = -t (Γ¹ - i Γ^{j+1}) / 2` attached to the
/// bond `n → n + ê_j` (paper Eq. 1); `j` is the direction 1, 2 or 3.
pub fn hopping_block(t: f64, j: usize) -> Gamma {
    assert!((1..=3).contains(&j), "direction must be 1, 2 or 3");
    let g1 = matscale(Complex64::real(-t / 2.0), &GAMMA1);
    let gj = matscale(Complex64::new(0.0, t / 2.0), &GAMMAS[j + 1]);
    matadd(&g1, &gj)
}

/// The on-site block `V·Γ⁰ + 2·Γ¹`.
pub fn onsite_block(v: f64) -> Gamma {
    matadd(
        &matscale(Complex64::real(v), &GAMMA0),
        &matscale(Complex64::real(2.0), &GAMMA1),
    )
}

/// Number of non-zero entries in a 4×4 block.
pub fn block_nnz(a: &Gamma) -> usize {
    a.iter()
        .flatten()
        .filter(|z| **z != Complex64::default())
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn approx_eq(a: &Gamma, b: &Gamma) -> bool {
        (0..4).all(|i| (0..4).all(|j| a[i][j].approx_eq(b[i][j], 1e-14)))
    }

    #[test]
    fn gammas_are_hermitian() {
        for (idx, g) in GAMMAS.iter().enumerate() {
            assert!(approx_eq(g, &dagger(g)), "Gamma{idx} not Hermitian");
        }
    }

    #[test]
    fn gammas_square_to_identity() {
        for (idx, g) in GAMMAS.iter().enumerate() {
            assert!(approx_eq(&matmul(g, g), &GAMMA0), "Gamma{idx}^2 != 1");
        }
    }

    #[test]
    #[allow(clippy::needless_range_loop)] // a/b index a pair out of GAMMAS
    fn gammas_anticommute() {
        for a in 1..5 {
            for b in (a + 1)..5 {
                let ab = matmul(&GAMMAS[a], &GAMMAS[b]);
                let ba = matmul(&GAMMAS[b], &GAMMAS[a]);
                let sum = matadd(&ab, &ba);
                assert!(
                    sum.iter().flatten().all(|z| z.abs() < 1e-14),
                    "Gamma{a} and Gamma{b} do not anticommute"
                );
            }
        }
    }

    #[test]
    fn hopping_block_has_8_nonzeros() {
        // Γ¹ is diagonal (4 entries), Γ^{j+1} is anti-block-diagonal
        // (4 entries, disjoint support) → 8 per hopping block. With 6
        // neighbours and the diagonal on-site block this yields the
        // paper's N_nz ≈ 13·N.
        for j in 1..=3 {
            assert_eq!(block_nnz(&hopping_block(1.0, j)), 8, "direction {j}");
        }
    }

    #[test]
    fn onsite_block_is_diagonal() {
        let b = onsite_block(0.5);
        assert_eq!(block_nnz(&b), 4);
        for (i, row) in b.iter().enumerate() {
            for (j, z) in row.iter().enumerate() {
                if i != j {
                    assert_eq!(*z, Complex64::default());
                }
            }
        }
        assert_eq!(b[0][0], Complex64::real(2.5));
        assert_eq!(b[2][2], Complex64::real(-1.5));
    }

    #[test]
    fn onsite_block_zero_potential_keeps_mass_term() {
        let b = onsite_block(0.0);
        assert_eq!(b[0][0], Complex64::real(2.0));
        assert_eq!(b[3][3], Complex64::real(-2.0));
    }

    #[test]
    fn hopping_plus_dagger_is_gamma1_part() {
        // T_j + T_j† = -t Γ¹ (the anti-Hermitian Γ^{j+1} part cancels).
        for j in 1..=3 {
            let t = hopping_block(2.0, j);
            let sum = matadd(&t, &dagger(&t));
            let want = matscale(Complex64::real(-2.0), &GAMMA1);
            assert!(approx_eq(&sum, &want));
        }
    }

    #[test]
    #[should_panic(expected = "direction must be")]
    fn invalid_direction_panics() {
        hopping_block(1.0, 4);
    }
}
