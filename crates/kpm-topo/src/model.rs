//! Auxiliary model matrices with known spectra.
//!
//! These are not part of the paper's workload; they exist so the KPM
//! solver and the kernels can be validated against exactly solvable
//! systems (analytic spectra, or small enough for the dense Jacobi
//! eigensolver in `kpm-num::eigen`).

use kpm_num::eigen::DenseHermitian;
use kpm_num::Complex64;
use kpm_sparse::{CooMatrix, CrsMatrix};

/// Open 1D tight-binding chain of length `n` with hopping `t`:
/// eigenvalues `E_k = 2 t cos(k π / (n+1))`, `k = 1..n`.
pub fn chain_1d(n: usize, t: f64) -> CrsMatrix {
    let mut coo = CooMatrix::new(n, n);
    for i in 0..n.saturating_sub(1) {
        coo.push(i, i + 1, Complex64::real(t));
        coo.push(i + 1, i, Complex64::real(t));
    }
    coo.to_crs()
}

/// Exact eigenvalues of [`chain_1d`], ascending.
pub fn chain_1d_eigenvalues(n: usize, t: f64) -> Vec<f64> {
    let mut evs: Vec<f64> = (1..=n)
        .map(|k| 2.0 * t * (k as f64 * std::f64::consts::PI / (n as f64 + 1.0)).cos())
        .collect();
    evs.sort_by(|a, b| a.partial_cmp(b).unwrap());
    evs
}

/// Periodic 1D chain (ring) of length `n` with hopping `t`:
/// eigenvalues `E_k = 2 t cos(2π k/n)`, `k = 0..n-1`.
pub fn ring_1d(n: usize, t: f64) -> CrsMatrix {
    assert!(n >= 3, "ring needs at least 3 sites");
    let mut coo = CooMatrix::new(n, n);
    for i in 0..n {
        let j = (i + 1) % n;
        coo.push(i, j, Complex64::real(t));
        coo.push(j, i, Complex64::real(t));
    }
    coo.to_crs()
}

/// Random sparse Hermitian matrix: `per_row` off-diagonal pairs per row
/// plus a real diagonal, entries bounded by 1 in modulus. Deterministic
/// in `seed`.
pub fn random_hermitian(n: usize, per_row: usize, seed: u64) -> CrsMatrix {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(seed);
    let mut coo = CooMatrix::new(n, n);
    for r in 0..n {
        coo.push(r, r, Complex64::real(rng.gen_range(-1.0..1.0)));
        for _ in 0..per_row {
            let c = rng.gen_range(0..n);
            if c != r {
                let v = Complex64::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0));
                coo.push(r, c, v);
                coo.push(c, r, v.conj());
            }
        }
    }
    coo.to_crs()
}

/// Converts a (small) CRS matrix to the dense form accepted by the
/// Jacobi eigensolver.
pub fn to_dense_hermitian(m: &CrsMatrix) -> DenseHermitian {
    assert_eq!(m.nrows(), m.ncols(), "matrix must be square");
    let n = m.nrows();
    assert!(
        n <= 2048,
        "dense conversion is for validation-sized systems"
    );
    let mut data = vec![Complex64::default(); n * n];
    for r in 0..n {
        for (k, &c) in m.row_cols(r).iter().enumerate() {
            data[r * n + c as usize] = m.row_vals(r)[k];
        }
    }
    DenseHermitian::from_row_major(n, data)
}

/// Exact eigenvalues of a (small) sparse Hermitian matrix via dense
/// Jacobi, ascending.
pub fn exact_eigenvalues(m: &CrsMatrix) -> Vec<f64> {
    to_dense_hermitian(m).eigenvalues(1e-12)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_spectrum_matches_jacobi() {
        let n = 14;
        let m = chain_1d(n, 1.0);
        assert!(m.is_hermitian());
        let exact = chain_1d_eigenvalues(n, 1.0);
        let jacobi = exact_eigenvalues(&m);
        for (a, b) in exact.iter().zip(&jacobi) {
            assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }
    }

    #[test]
    fn ring_spectrum_is_cosine_band() {
        let n = 12;
        let m = ring_1d(n, 0.5);
        let mut exact: Vec<f64> = (0..n)
            .map(|k| 2.0 * 0.5 * (2.0 * std::f64::consts::PI * k as f64 / n as f64).cos())
            .collect();
        exact.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let jacobi = exact_eigenvalues(&m);
        for (a, b) in exact.iter().zip(&jacobi) {
            assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }
    }

    #[test]
    fn random_hermitian_is_hermitian_and_deterministic() {
        let a = random_hermitian(60, 4, 5);
        let b = random_hermitian(60, 4, 5);
        assert!(a.is_hermitian());
        assert_eq!(a.nnz(), b.nnz());
        assert_eq!(a.get(7, 9), b.get(7, 9));
    }

    #[test]
    fn topo_hamiltonian_small_spectrum_symmetric() {
        // The clean TI Hamiltonian at V=0 has a spectrum symmetric under
        // E -> -E only in special cases; but its eigenvalues must match
        // the Jacobi solver's Gershgorin-bounded set. Smoke-check the
        // pipeline end to end on a tiny sample.
        use crate::TopoHamiltonian;
        let h = TopoHamiltonian::clean(2, 2, 2).assemble();
        let evs = exact_eigenvalues(&h);
        assert_eq!(evs.len(), h.nrows());
        let (lo, hi) = h.gershgorin_bounds();
        for e in &evs {
            assert!(*e >= lo - 1e-9 && *e <= hi + 1e-9);
        }
    }
}
