//! Assembly of the topological-insulator Hamiltonian (paper Eq. 1).
//!
//! The matrix is built row-block by row-block directly into CRS: for
//! site `n`, row block `n` receives
//!
//! * the diagonal on-site block `V_n Γ⁰ + 2Γ¹`,
//! * the block `T_j† = -t(Γ¹ + iΓ^{j+1})/2` in column block `n + ê_j`
//!   (the H.c. partner of the outgoing bond), and
//! * the block `T_j = -t(Γ¹ - iΓ^{j+1})/2` in column block `n − ê_j`
//!   (the incoming bond `Ψ†_{n} … Ψ_{n-ê_j}` of Eq. 1).
//!
//! Every interior row has exactly 13 non-zeros (1 diagonal + 6 bonds × 2
//! per orbital row), matching the paper's `N_nz ≈ 13·N`.

use kpm_num::Complex64;
use kpm_sparse::{CrsMatrix, StencilMatrix};

use crate::gamma::{dagger, hopping_block, onsite_block, Gamma};
use crate::lattice::{Boundary, Lattice3D};
use crate::potential::Potential;

/// Spectral rescaling `H̃ = a(H - b·1)` (paper Section II).
///
/// `a` and `b` are chosen so the spectrum of `H̃` lies strictly inside
/// the Chebyshev interval of orthogonality `[-1, 1]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScaleFactors {
    /// Multiplicative factor (`1/half-width`, shrunk by the safety
    /// margin ε).
    pub a: f64,
    /// Spectrum centre.
    pub b: f64,
}

impl ScaleFactors {
    /// Computes scale factors from spectral bounds `[lo, hi]` with a
    /// relative safety margin `epsilon` (typical: 0.01).
    pub fn from_bounds(lo: f64, hi: f64, epsilon: f64) -> Self {
        assert!(hi >= lo, "invalid spectral bounds");
        assert!((0.0..1.0).contains(&epsilon), "epsilon must be in [0,1)");
        let b = 0.5 * (hi + lo);
        let half = 0.5 * (hi - lo);
        let a = if half > 0.0 {
            (1.0 - epsilon) / half
        } else {
            1.0
        };
        Self { a, b }
    }

    /// Computes scale factors from Gershgorin bounds of `h` (the paper's
    /// default method).
    pub fn from_gershgorin(h: &CrsMatrix, epsilon: f64) -> Self {
        let (lo, hi) = h.gershgorin_bounds();
        Self::from_bounds(lo, hi, epsilon)
    }

    /// Maps a matrix eigenvalue `E` to the Chebyshev coordinate
    /// `x = a(E - b)`.
    pub fn to_chebyshev(&self, e: f64) -> f64 {
        self.a * (e - self.b)
    }

    /// Maps a Chebyshev coordinate `x ∈ [-1,1]` back to energy
    /// `E = x/a + b`.
    pub fn to_energy(&self, x: f64) -> f64 {
        x / self.a + self.b
    }
}

/// The topological-insulator Hamiltonian of paper Eq. (1).
#[derive(Debug, Clone)]
pub struct TopoHamiltonian {
    /// Lattice geometry and boundary conditions.
    pub lattice: Lattice3D,
    /// Hopping amplitude `t` (paper: the energy unit, t = 1).
    pub t: f64,
    /// On-site potential landscape.
    pub potential: Potential,
}

impl TopoHamiltonian {
    /// The clean system (V = 0) on the paper's default boundary
    /// conditions, `t = 1`.
    pub fn clean(nx: usize, ny: usize, nz: usize) -> Self {
        Self {
            lattice: Lattice3D::paper_default(nx, ny, nz),
            t: 1.0,
            potential: Potential::Zero,
        }
    }

    /// The quantum-dot superlattice configuration of paper Fig. 2.
    pub fn quantum_dot_superlattice(nx: usize, ny: usize, nz: usize) -> Self {
        Self {
            lattice: Lattice3D::paper_default(nx, ny, nz),
            t: 1.0,
            potential: Potential::paper_quantum_dots(),
        }
    }

    /// Matrix dimension `N = 4·Nx·Ny·Nz`.
    pub fn dim(&self) -> usize {
        self.lattice.dim()
    }

    /// Assembles the sparse matrix in CRS format.
    pub fn assemble(&self) -> CrsMatrix {
        let lat = &self.lattice;
        let n_sites = lat.sites();
        let dim = lat.dim();

        // Precompute the six hopping blocks (direction x sign).
        let t_blocks: [Gamma; 3] = [
            hopping_block(self.t, 1),
            hopping_block(self.t, 2),
            hopping_block(self.t, 3),
        ];
        let t_dagger: [Gamma; 3] = [
            dagger(&t_blocks[0]),
            dagger(&t_blocks[1]),
            dagger(&t_blocks[2]),
        ];

        let mut row_ptr: Vec<u64> = Vec::with_capacity(dim + 1);
        // 13 nnz per interior row.
        let mut cols: Vec<u32> = Vec::with_capacity(13 * dim);
        let mut vals: Vec<Complex64> = Vec::with_capacity(13 * dim);
        row_ptr.push(0);

        // Scratch: (column block site, 4x4 block) pairs for one site.
        let mut blocks: Vec<(usize, Gamma)> = Vec::with_capacity(7);
        let mut entries: Vec<(u32, Complex64)> = Vec::with_capacity(32);

        for site in 0..n_sites {
            let (x, y, z) = lat.coords(site);
            let v = self.potential.value(lat, x, y, z);
            let onsite = onsite_block(v);

            blocks.clear();
            blocks.push((site, onsite));
            for j in 1..=3 {
                if let Some(m) = lat.neighbor(x, y, z, j) {
                    // Outgoing bond n -> m: H.c. block T_j† in row n, col m.
                    blocks.push((m, t_dagger[j - 1]));
                }
                if let Some(m) = lat.neighbor_prev(x, y, z, j) {
                    // Incoming bond m -> n: block T_j in row n, col m.
                    blocks.push((m, t_blocks[j - 1]));
                }
            }

            for o in 0..4 {
                entries.clear();
                for (col_site, block) in &blocks {
                    let row = &block[o];
                    for (p, &val) in row.iter().enumerate() {
                        if val != Complex64::default() {
                            entries.push(((4 * *col_site + p) as u32, val));
                        }
                    }
                }
                entries.sort_unstable_by_key(|e| e.0);
                // Merge duplicates (possible only on tiny periodic
                // lattices where n+ê_j == n-ê_j).
                let mut k = 0;
                while k < entries.len() {
                    let (c, mut acc) = entries[k];
                    k += 1;
                    while k < entries.len() && entries[k].0 == c {
                        acc += entries[k].1;
                        k += 1;
                    }
                    cols.push(c);
                    vals.push(acc);
                }
                row_ptr.push(cols.len() as u64);
            }
        }

        CrsMatrix::from_raw(dim, dim, row_ptr, cols, vals)
    }

    /// Builds the matrix-free stencil representation of the same
    /// operator.
    ///
    /// The stencil regenerates each row from the lattice geometry, the
    /// per-site on-site diagonals, and the six hopping blocks — the
    /// very inputs [`TopoHamiltonian::assemble`] consumes — using the
    /// identical gather/sort/merge, so rows (and therefore every kernel
    /// result) are bitwise-identical to the CRS build and the two
    /// share a content fingerprint (asserted by the tests below and
    /// the workspace determinism suite).
    pub fn stencil_matrix(&self) -> StencilMatrix {
        let lat = &self.lattice;
        let t_blocks: [Gamma; 3] = [
            hopping_block(self.t, 1),
            hopping_block(self.t, 2),
            hopping_block(self.t, 3),
        ];
        let t_dagger: [Gamma; 3] = [
            dagger(&t_blocks[0]),
            dagger(&t_blocks[1]),
            dagger(&t_blocks[2]),
        ];
        // Direction layout of StencilMatrix: 2j = +ê_j (the H.c. block
        // T_j†), 2j+1 = −ê_j (the incoming block T_j) — the gather
        // order of assemble().
        let mut hop = [[[Complex64::default(); 4]; 4]; 6];
        for j in 0..3 {
            hop[2 * j] = t_dagger[j];
            hop[2 * j + 1] = t_blocks[j];
        }
        let onsite: Vec<[Complex64; 4]> = (0..lat.sites())
            .map(|site| {
                let (x, y, z) = lat.coords(site);
                let block = onsite_block(self.potential.value(lat, x, y, z));
                // The on-site block is exactly diagonal (Γ⁰ and Γ¹ are);
                // the stencil stores only the diagonal.
                debug_assert!(
                    (0..4).all(|o| (0..4).all(|p| o == p || block[o][p] == Complex64::default()))
                );
                [block[0][0], block[1][1], block[2][2], block[3][3]]
            })
            .collect();
        let periodic = [
            lat.boundary[0] == Boundary::Periodic,
            lat.boundary[1] == Boundary::Periodic,
            lat.boundary[2] == Boundary::Periodic,
        ];
        StencilMatrix::new(lat.nx, lat.ny, lat.nz, periodic, onsite, &hop)
    }

    /// The four Bloch eigenvalues of the translation-invariant system
    /// (`V_n = v` uniform, fully periodic lattice) at momentum
    /// `(kx, ky, kz)`:
    ///
    /// `E(k) = v ± sqrt( (2 - t·Σ_j cos k_j)² + t²·Σ_j sin² k_j )`,
    /// each doubly degenerate. Used to validate the assembled matrix
    /// against exact plane-wave states.
    pub fn bloch_eigenvalues(t: f64, v: f64, kx: f64, ky: f64, kz: f64) -> [f64; 4] {
        let mass = 2.0 - t * (kx.cos() + ky.cos() + kz.cos());
        let kin = t * t * (kx.sin() * kx.sin() + ky.sin() * ky.sin() + kz.sin() * kz.sin());
        let e = (mass * mass + kin).sqrt();
        [v - e, v - e, v + e, v + e]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kpm_num::vector::dot;
    use kpm_num::Complex64;
    use kpm_sparse::spmv::spmv;
    use std::f64::consts::PI;

    #[test]
    fn dimensions_and_nnz_density() {
        let h = TopoHamiltonian::clean(6, 6, 4).assemble();
        assert_eq!(h.nrows(), 4 * 6 * 6 * 4);
        // Interior rows have 13 nnz; open-z boundary rows have 11.
        let nnzr = h.avg_nnz_per_row();
        assert!(nnzr > 11.9 && nnzr <= 13.0, "nnzr = {nnzr}");
    }

    #[test]
    fn fully_periodic_has_exactly_13_per_row() {
        let h = TopoHamiltonian {
            lattice: Lattice3D::periodic(4, 4, 4),
            t: 1.0,
            potential: Potential::Zero,
        }
        .assemble();
        for r in 0..h.nrows() {
            assert_eq!(h.row_len(r), 13, "row {r}");
        }
    }

    #[test]
    fn matrix_is_hermitian() {
        for ham in [
            TopoHamiltonian::clean(4, 3, 3),
            TopoHamiltonian::quantum_dot_superlattice(5, 5, 2),
            TopoHamiltonian {
                lattice: Lattice3D::periodic(3, 3, 3),
                t: 0.7,
                potential: Potential::Disorder {
                    width: 1.0,
                    seed: 3,
                },
            },
        ] {
            assert!(ham.assemble().is_hermitian());
        }
    }

    #[test]
    fn plane_waves_are_eigenstates() {
        // Fully periodic clean lattice: |k, s> built from the Bloch
        // eigenvectors of H(k) must satisfy H|psi> = E|psi>. We avoid
        // diagonalizing H(k) by checking the residual of the *projector*
        // identity instead: for the plane-wave-carrying subspace,
        // (H - E_-)(H - E_+)|psi> = 0 for ANY spinor amplitude, because
        // the 4x4 Bloch matrix has only eigenvalues E_- and E_+.
        let lat = Lattice3D::periodic(4, 4, 4);
        let ham = TopoHamiltonian {
            lattice: lat,
            t: 1.0,
            potential: Potential::Zero,
        };
        let h = ham.assemble();
        let n = h.nrows();
        let (kx, ky, kz) = (2.0 * PI / 4.0, -PI / 2.0, PI);
        let evs = TopoHamiltonian::bloch_eigenvalues(1.0, 0.0, kx, ky, kz);
        let (e_minus, e_plus) = (evs[0], evs[2]);

        // Plane wave with an arbitrary spinor.
        let spinor = [
            Complex64::new(0.3, 0.1),
            Complex64::new(-0.2, 0.5),
            Complex64::new(0.9, -0.4),
            Complex64::new(0.05, 0.6),
        ];
        let mut psi = vec![Complex64::default(); n];
        for site in 0..lat.sites() {
            let (x, y, z) = lat.coords(site);
            let phase = kx * x as f64 + ky * y as f64 + kz * z as f64;
            let bloch = Complex64::new(phase.cos(), phase.sin());
            for o in 0..4 {
                psi[4 * site + o] = bloch * spinor[o];
            }
        }

        // r = (H - E+)(H - E-) psi should vanish.
        let mut tmp = vec![Complex64::default(); n];
        spmv(&h, &psi, &mut tmp);
        for i in 0..n {
            tmp[i] -= psi[i].scale(e_minus);
        }
        let mut r = vec![Complex64::default(); n];
        spmv(&h, &tmp, &mut r);
        for i in 0..n {
            r[i] -= tmp[i].scale(e_plus);
        }
        let res: f64 = r.iter().map(|z| z.norm_sqr()).sum::<f64>().sqrt();
        let norm: f64 = psi.iter().map(|z| z.norm_sqr()).sum::<f64>().sqrt();
        assert!(res / norm < 1e-10, "plane-wave residual {res}");
    }

    #[test]
    fn rayleigh_quotients_within_gershgorin() {
        let ham = TopoHamiltonian::quantum_dot_superlattice(6, 6, 3);
        let h = ham.assemble();
        let (lo, hi) = h.gershgorin_bounds();
        let mut rng = rand::rngs::mock::StepRng::new(1, 0x9E3779B97F4A7C15);
        use rand::Rng;
        let n = h.nrows();
        for _ in 0..5 {
            let v: Vec<Complex64> = (0..n)
                .map(|_| Complex64::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)))
                .collect();
            let mut hv = vec![Complex64::default(); n];
            spmv(&h, &v, &mut hv);
            let num = dot(&v, &hv);
            let den = dot(&v, &v).re;
            let rayleigh = num.re / den;
            assert!(rayleigh >= lo - 1e-12 && rayleigh <= hi + 1e-12);
            // Hermitian matrix: Rayleigh quotient is real.
            assert!((num.im / den).abs() < 1e-10);
        }
    }

    #[test]
    fn scale_factors_map_bounds_into_unit_interval() {
        let h = TopoHamiltonian::clean(4, 4, 4).assemble();
        let sf = ScaleFactors::from_gershgorin(&h, 0.01);
        let (lo, hi) = h.gershgorin_bounds();
        assert!(sf.to_chebyshev(lo) >= -1.0);
        assert!(sf.to_chebyshev(hi) <= 1.0);
        assert!((sf.to_chebyshev(lo) + 0.99).abs() < 1e-12);
        assert!((sf.to_chebyshev(hi) - 0.99).abs() < 1e-12);
        // Round trip.
        let e = 0.37 * hi + 0.63 * lo;
        assert!((sf.to_energy(sf.to_chebyshev(e)) - e).abs() < 1e-12);
    }

    #[test]
    fn uniform_potential_shifts_diagonal() {
        let h0 = TopoHamiltonian::clean(3, 3, 2).assemble();
        let ham = TopoHamiltonian {
            lattice: Lattice3D::paper_default(3, 3, 2),
            t: 1.0,
            potential: Potential::Uniform(0.5),
        };
        let h1 = ham.assemble();
        for r in 0..h0.nrows() {
            let d0 = h0.get(r, r);
            let d1 = h1.get(r, r);
            assert!((d1 - d0).approx_eq(Complex64::real(0.5), 1e-14));
        }
    }

    #[test]
    fn structure_matches_paper_description() {
        // Paper Section I-B: "the matrix is a stencil but not a band
        // matrix"; periodic x/y boundaries produce outlying corner
        // diagonals.
        let lat = Lattice3D::paper_default(6, 5, 4);
        let h = TopoHamiltonian {
            lattice: lat,
            t: 1.0,
            potential: Potential::Zero,
        }
        .assemble();
        let stats = kpm_sparse::stats::analyze(&h, 4);
        assert!(stats.is_stencil(), "TI matrix must be a stencil");
        // Bulk hopping diagonals exist at +-4 (x), +-4*Nx (y), +-4*Nx*Ny
        // (z) plus intra-block offsets; bandwidth is the corner wrap,
        // far beyond the stencil width: not a band matrix.
        assert!(!stats.is_band_matrix(16 * lat.nx));
        let corners = stats.corner_diagonals(0.5);
        assert!(
            !corners.is_empty(),
            "periodic BCs must create corner diagonals"
        );
        // x-wrap: site offset (Nx-1) -> matrix offset 4*(Nx-1) block.
        let xwrap = 4 * (lat.nx as i64 - 1);
        assert!(
            stats
                .diagonals
                .iter()
                .any(|d| (d.offset - xwrap).abs() <= 3),
            "x wrap-around diagonal near {xwrap} expected"
        );
    }

    #[test]
    fn stencil_matrix_is_bitwise_identical_to_assembly() {
        // Every row of the regenerated stencil must equal the assembled
        // CRS row exactly — same columns, same bits — across boundary
        // conditions, potentials, and the duplicate-merging extent-2
        // periodic case.
        for ham in [
            TopoHamiltonian::clean(4, 3, 3),
            TopoHamiltonian::quantum_dot_superlattice(5, 4, 2),
            TopoHamiltonian {
                lattice: Lattice3D::periodic(3, 4, 3),
                t: 0.7,
                potential: Potential::Disorder {
                    width: 1.0,
                    seed: 3,
                },
            },
            TopoHamiltonian {
                lattice: Lattice3D::periodic(2, 3, 3),
                t: 1.3,
                potential: Potential::Uniform(0.25),
            },
        ] {
            let crs = ham.assemble();
            let st = ham.stencil_matrix();
            assert_eq!(st.nrows(), crs.nrows());
            assert_eq!(st.nnz(), crs.nnz());
            let regen = st.to_crs();
            for r in 0..crs.nrows() {
                assert_eq!(regen.row_cols(r), crs.row_cols(r), "row {r}");
                assert_eq!(regen.row_vals(r), crs.row_vals(r), "row {r}");
            }
            // Equal rows imply equal content fingerprints: stencil and
            // CRS handles of one operator coalesce in the service.
            assert_eq!(st.content_fingerprint(), crs.content_fingerprint());
        }
    }

    #[test]
    fn stencil_kernels_match_crs_on_the_ti_operator() {
        use kpm_num::BlockVector;
        use kpm_sparse::SparseKernels;
        let ham = TopoHamiltonian::quantum_dot_superlattice(6, 5, 3);
        let crs = ham.assemble();
        let st = ham.stencil_matrix();
        let n = crs.nrows();
        let mut rng = rand::rngs::mock::StepRng::new(7, 0x9E3779B97F4A7C15);
        let v = BlockVector::random(n, 4, &mut rng);
        let w0 = BlockVector::random(n, 4, &mut rng);
        let (mut w1, mut w2) = (w0.clone(), w0);
        let d1 = SparseKernels::aug_spmmv(&crs, 0.4, -0.05, &v, &mut w1);
        let d2 = SparseKernels::aug_spmmv(&st, 0.4, -0.05, &v, &mut w2);
        assert_eq!(w1.max_abs_diff(&w2), 0.0);
        assert_eq!(d1, d2);
    }

    #[test]
    fn scale_factor_degenerate_spectrum() {
        let sf = ScaleFactors::from_bounds(2.0, 2.0, 0.05);
        assert_eq!(sf.b, 2.0);
        assert_eq!(sf.a, 1.0);
        assert_eq!(sf.to_chebyshev(2.0), 0.0);
    }
}
