//! Regression test for the `noop` build: with the feature on, the
//! whole instrumentation layer must stay dark — `enabled()` is
//! constant `false` even after `set_enabled(true)` or an
//! `EnabledGuard`, and no recording entry point leaves a trace in any
//! registry. Compiled (and run by `scripts/verify.sh`) only under
//! `--features noop`; without the feature this file is empty.

#![cfg(feature = "noop")]

use kpm_obs::probe::KernelKind;

#[test]
fn enabled_is_constant_false_under_noop() {
    assert!(!kpm_obs::enabled());
    kpm_obs::set_enabled(true);
    assert!(!kpm_obs::enabled(), "set_enabled must not defeat noop");
    let _guard = kpm_obs::EnabledGuard::new();
    assert!(!kpm_obs::enabled(), "EnabledGuard must not defeat noop");
}

#[test]
fn recording_leaves_no_trace_under_noop() {
    let _guard = kpm_obs::EnabledGuard::new();

    kpm_obs::metrics::counter_add("noop.counter", 3);
    kpm_obs::metrics::counter_inc("noop.counter");
    kpm_obs::metrics::gauge_set("noop.gauge", 1.5);
    kpm_obs::metrics::gauge_max("noop.gauge", 2.5);
    kpm_obs::metrics::hist_record("noop.hist", 0.5);
    assert_eq!(kpm_obs::metrics::counter_value("noop.counter"), 0);
    assert_eq!(kpm_obs::metrics::gauge_value("noop.gauge"), None);
    assert!(kpm_obs::metrics::snapshot().is_empty());

    {
        let span = kpm_obs::span::span("noop.span", "test").arg("k", 1);
        assert!(!span.is_recording());
    }
    assert!(kpm_obs::span::snapshot().is_empty());
    assert_eq!(kpm_obs::span::count("noop.span"), 0);

    let timer = kpm_obs::probe::kernel_timer(KernelKind::AugSpmmv, 8, 32, 4);
    assert!(timer.is_none(), "kernel_timer must not arm under noop");
    assert!(kpm_obs::probe::snapshot().is_empty());
}

#[test]
fn tracing_layer_stays_dark_under_noop() {
    let _guard = kpm_obs::EnabledGuard::new();

    // Trace ids and the Lamport clock are compile-time zeros.
    assert_eq!(kpm_obs::span::mint_trace(), 0);
    assert_eq!(kpm_obs::clock::tick(), 0);
    assert_eq!(kpm_obs::clock::observe(41), 0);
    assert_eq!(kpm_obs::clock::current(), 0);

    // Exact histograms, SLOs, and the flight recorder record nothing.
    kpm_obs::hist::record("noop.hist_ns", 7);
    assert!(kpm_obs::hist::snapshot().is_empty());
    assert!(kpm_obs::hist::get("noop.hist_ns").is_none());
    kpm_obs::slo::objective("dos", 1_000_000, 0.99);
    kpm_obs::slo::observe("dos", 5_000_000);
    assert!(kpm_obs::slo::snapshot().is_empty());
    kpm_obs::recorder::note("noop.event", 1, "detail");
    assert_eq!(kpm_obs::recorder::len(), 0);
    assert!(kpm_obs::recorder::trigger_dump("reason").is_none());
    assert_eq!(kpm_obs::recorder::dumps_triggered(), 0);

    // Retroactive span recording refuses too.
    assert_eq!(
        kpm_obs::span::record_manual("noop.span", "test", 1, None, 0.0, 1.0, vec![]),
        None
    );
    assert!(kpm_obs::span::snapshot().is_empty());
}
