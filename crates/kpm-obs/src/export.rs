//! Exporters: JSONL metrics snapshots and Chrome trace-event span
//! dumps (loadable in `chrome://tracing` / Perfetto).
//!
//! JSONL schema (`kpm-obs-v1`), one object per line:
//!
//! ```text
//! {"type":"meta","schema":"kpm-obs-v1","epoch_unix_us":...,"snapshot_us":...}
//! {"type":"counter","name":"runtime.msg.sent","value":42}
//! {"type":"gauge","name":"runtime.stash.peak","value":3}
//! {"type":"histogram","name":"solver.ckpt.save_ns","count":..,"sum":..,
//!  "min":..,"max":..,"mean":..,"p50":..,"buckets":[[upper,count],...]}
//! {"type":"kernel","kernel":"aug_spmmv","calls":..,"seconds":..,
//!  "flops":..,"min_bytes":..,"gflops":..,"min_bf":..,
//!  "rows":..,"nnz":..,"width":..}
//! ```
//!
//! The trace export is a single JSON object with `traceEvents`:
//! `ph:"M"` thread-name metadata followed by `ph:"X"` complete events
//! (`ts`/`dur` in microseconds since the obs epoch).

use std::fmt::Write as _;
use std::io::{self, Write};
use std::path::Path;

use crate::json::{escape, num};
use crate::metrics::{self, Metric};
use crate::{hist, probe, slo, span};

/// Writes the metrics + kernel-probe snapshot as JSONL.
pub fn write_metrics_jsonl<W: Write>(mut w: W) -> io::Result<()> {
    writeln!(
        w,
        "{{\"type\":\"meta\",\"schema\":\"kpm-obs-v1\",\"epoch_unix_us\":{},\"snapshot_us\":{}}}",
        span::epoch_unix_us(),
        num(span::micros_since_epoch()),
    )?;
    for (name, metric) in metrics::snapshot() {
        match metric {
            Metric::Counter(v) => writeln!(
                w,
                "{{\"type\":\"counter\",\"name\":\"{}\",\"value\":{v}}}",
                escape(&name)
            )?,
            Metric::Gauge(v) => writeln!(
                w,
                "{{\"type\":\"gauge\",\"name\":\"{}\",\"value\":{}}}",
                escape(&name),
                num(v)
            )?,
            Metric::Histogram(h) => {
                let mut buckets = String::new();
                for (i, &c) in h.buckets.iter().enumerate() {
                    if c == 0 {
                        continue;
                    }
                    if !buckets.is_empty() {
                        buckets.push(',');
                    }
                    let _ = write!(buckets, "[{},{c}]", 1u64 << i);
                }
                writeln!(
                    w,
                    "{{\"type\":\"histogram\",\"name\":\"{}\",\"count\":{},\"sum\":{},\
                     \"min\":{},\"max\":{},\"mean\":{},\"p50\":{},\"buckets\":[{buckets}]}}",
                    escape(&name),
                    h.count,
                    num(h.sum),
                    num(h.min),
                    num(h.max),
                    num(h.mean()),
                    num(h.quantile_upper(0.5)),
                )?;
            }
        }
    }
    for (name, win) in hist::snapshot() {
        for (scope, h) in [("total", win.total().clone()), ("window", win.window())] {
            if h.count() == 0 {
                continue;
            }
            let (p50, p90, p99, p999) = h.quartet();
            writeln!(
                w,
                "{{\"type\":\"exact_histogram\",\"name\":\"{}\",\"scope\":\"{scope}\",\
                 \"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"mean\":{},\
                 \"p50\":{p50},\"p90\":{p90},\"p99\":{p99},\"p999\":{p999}}}",
                escape(&name),
                h.count(),
                h.sum(),
                h.min(),
                h.max(),
                num(h.mean()),
            )?;
        }
    }
    for r in slo::snapshot() {
        writeln!(
            w,
            "{{\"type\":\"slo\",\"route\":\"{}\",\"threshold_ns\":{},\"goal\":{},\
             \"events\":{},\"breaches\":{},\"burn_rate\":{},\
             \"window_events\":{},\"window_breaches\":{},\"window_burn_rate\":{}}}",
            escape(&r.route),
            r.threshold_ns,
            num(r.goal),
            r.events,
            r.breaches,
            num(r.burn_rate),
            r.window_events,
            r.window_breaches,
            num(r.window_burn_rate),
        )?;
    }
    for rep in probe::snapshot() {
        writeln!(
            w,
            "{{\"type\":\"kernel\",\"kernel\":\"{}\",\"calls\":{},\"seconds\":{},\
             \"flops\":{},\"min_bytes\":{},\"gflops\":{},\"min_bf\":{},\
             \"rows\":{},\"nnz\":{},\"width\":{}}}",
            rep.kind.name(),
            rep.calls,
            num(rep.seconds),
            rep.flops,
            rep.min_bytes,
            num(rep.gflops()),
            num(rep.min_bytes_per_flop()),
            rep.rows,
            rep.nnz,
            rep.width,
        )?;
    }
    Ok(())
}

/// The metrics snapshot as an in-memory JSONL string.
pub fn metrics_jsonl_string() -> String {
    let mut buf = Vec::new();
    write_metrics_jsonl(&mut buf).expect("writing to Vec cannot fail");
    String::from_utf8(buf).expect("exporter emits UTF-8")
}

/// Process lane for a thread: hetsim rank threads (named
/// `kpm-rank-N`) render under their own pid so chrome://tracing shows
/// the simulated ranks as separate process lanes; everything else
/// (main, pool workers, service batcher) shares the host-process lane.
pub const HOST_PID: u64 = 1;
/// Chrome-trace pid assigned to hetsim rank threads.
pub const HETSIM_PID: u64 = 2;

fn pid_for_thread(name: &str) -> u64 {
    if name.starts_with("kpm-rank-") {
        HETSIM_PID
    } else {
        HOST_PID
    }
}

/// Writes every recorded span as a Chrome trace-event JSON document.
/// Each registered thread keeps its own `tid`, and threads are mapped
/// to process lanes by [`pid_for_thread`], with `process_name` /
/// `thread_name` metadata so the viewer labels every lane.
pub fn write_chrome_trace<W: Write>(mut w: W) -> io::Result<()> {
    write!(w, "{{\"traceEvents\":[")?;
    let mut first = true;
    let threads = span::threads();
    let mut pids_seen: Vec<u64> = Vec::new();
    for (_, name) in &threads {
        let pid = pid_for_thread(name);
        if !pids_seen.contains(&pid) {
            pids_seen.push(pid);
        }
    }
    if pids_seen.is_empty() {
        pids_seen.push(HOST_PID);
    }
    for pid in &pids_seen {
        if !first {
            write!(w, ",")?;
        }
        first = false;
        let pname = if *pid == HETSIM_PID {
            "kpm-hetsim"
        } else {
            "kpm"
        };
        write!(
            w,
            "{{\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\"name\":\"process_name\",\
             \"args\":{{\"name\":\"{pname}\"}}}}"
        )?;
    }
    let mut pid_of_tid: Vec<(u64, u64)> = Vec::with_capacity(threads.len());
    for (tid, name) in &threads {
        let pid = pid_for_thread(name);
        pid_of_tid.push((*tid, pid));
        if !first {
            write!(w, ",")?;
        }
        first = false;
        write!(
            w,
            "{{\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid},\"name\":\"thread_name\",\
             \"args\":{{\"name\":\"{}\"}}}}",
            escape(name)
        )?;
    }
    let lookup_pid = |tid: u64| {
        pid_of_tid
            .iter()
            .find(|&&(t, _)| t == tid)
            .map_or(HOST_PID, |&(_, p)| p)
    };
    for s in span::snapshot() {
        if !first {
            write!(w, ",")?;
        }
        first = false;
        let mut args = String::new();
        if let Some(parent) = s.parent {
            let _ = write!(args, "\"parent\":\"{parent}\"");
        }
        if s.trace != 0 {
            if !args.is_empty() {
                args.push(',');
            }
            let _ = write!(
                args,
                "\"trace\":\"{}\",\"lamport\":\"{}\"",
                s.trace, s.lamport
            );
        }
        for (k, v) in &s.args {
            if !args.is_empty() {
                args.push(',');
            }
            let _ = write!(args, "\"{}\":\"{}\"", escape(k), escape(v));
        }
        write!(
            w,
            "{{\"ph\":\"X\",\"pid\":{},\"tid\":{},\"id\":\"{}\",\"name\":\"{}\",\
             \"cat\":\"{}\",\"ts\":{},\"dur\":{},\"args\":{{{args}}}}}",
            lookup_pid(s.tid),
            s.tid,
            s.id,
            escape(s.name),
            escape(s.cat),
            num(s.start_us),
            num(s.dur_us),
        )?;
    }
    write!(
        w,
        "],\"displayTimeUnit\":\"ms\",\"otherData\":{{\"schema\":\"kpm-obs-v1\",\
         \"epoch_unix_us\":{},\"spans_dropped\":{}}}}}",
        span::epoch_unix_us(),
        span::dropped()
    )?;
    writeln!(w)
}

/// The trace as an in-memory JSON string.
pub fn chrome_trace_string() -> String {
    let mut buf = Vec::new();
    write_chrome_trace(&mut buf).expect("writing to Vec cannot fail");
    String::from_utf8(buf).expect("exporter emits UTF-8")
}

/// Writes the metrics JSONL snapshot to `path`.
pub fn export_metrics_to_path(path: &Path) -> io::Result<()> {
    write_metrics_jsonl(io::BufWriter::new(std::fs::File::create(path)?))
}

/// Writes the Chrome trace to `path`.
pub fn export_trace_to_path(path: &Path) -> io::Result<()> {
    write_chrome_trace(io::BufWriter::new(std::fs::File::create(path)?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::{parse, Value};
    use crate::test_lock as serial;

    #[test]
    fn metrics_jsonl_lines_parse() {
        let _g = serial();
        crate::reset();
        let _on = crate::EnabledGuard::new();
        metrics::counter_add("test.count", 5);
        metrics::gauge_set("test.level", 2.5);
        metrics::hist_record("test.lat", 300.0);
        {
            let _t = probe::kernel_timer(probe::KernelKind::AugSpmv, 10, 40, 1);
        }
        let text = metrics_jsonl_string();
        let mut counter_seen = false;
        let mut kernel_seen = false;
        for line in text.lines() {
            let v = parse(line).expect("every JSONL line parses");
            match v.get("type").and_then(Value::as_str) {
                Some("counter") => {
                    assert_eq!(v.get("name").and_then(Value::as_str), Some("test.count"));
                    assert_eq!(v.get("value").and_then(Value::as_f64), Some(5.0));
                    counter_seen = true;
                }
                Some("kernel") => {
                    assert_eq!(v.get("kernel").and_then(Value::as_str), Some("aug_spmv"));
                    assert_eq!(v.get("calls").and_then(Value::as_f64), Some(1.0));
                    kernel_seen = true;
                }
                _ => {}
            }
        }
        assert!(counter_seen && kernel_seen);
    }

    #[test]
    fn chrome_trace_parses_and_nests() {
        let _g = serial();
        crate::reset();
        let _on = crate::EnabledGuard::new();
        {
            let _a = span::span("outer", "test");
            let _b = span::span("inner", "test").arg("note", "x\"y");
        }
        let doc = parse(&chrome_trace_string()).expect("trace parses");
        let events = doc
            .get("traceEvents")
            .and_then(Value::as_arr)
            .expect("traceEvents array");
        let complete: Vec<&Value> = events
            .iter()
            .filter(|e| e.get("ph").and_then(Value::as_str) == Some("X"))
            .collect();
        assert_eq!(complete.len(), 2);
        let inner = complete
            .iter()
            .find(|e| e.get("name").and_then(Value::as_str) == Some("inner"))
            .unwrap();
        assert!(inner.get("args").unwrap().get("parent").is_some());
        assert_eq!(
            inner
                .get("args")
                .unwrap()
                .get("note")
                .and_then(Value::as_str),
            Some("x\"y")
        );
    }
}
