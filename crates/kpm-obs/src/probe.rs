//! Per-kernel performance probes.
//!
//! Each sparse kernel call (`spmv`, `aug_spmv`, `aug_spmmv`) opens a
//! [`KernelTimer`]; dropping it folds the call's elapsed time, modeled
//! flop count, and modeled minimum data volume into a fixed atomic slot
//! for that kernel. From the accumulated totals the report derives
//! achieved GF/s and the *minimum* bytes-per-flop (the B_min side of
//! paper Eq. 5); dividing a cachesim-measured Ω in gives the effective
//! code balance B = Ω · B_min (Eq. 7).
//!
//! The accounting constants mirror `kpm_num::accounting` (S_D = 16,
//! S_I = 4, F_A = 2, F_M = 6). They are duplicated here because this
//! crate depends on nothing; `tests/observability.rs` at the workspace
//! root asserts the two stay in sync.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Bytes per complex double (mirrors `kpm_num::accounting::S_D`).
pub const S_D: u64 = 16;
/// Bytes per column index (mirrors `kpm_num::accounting::S_I`).
pub const S_I: u64 = 4;
/// Flops per complex add (mirrors `kpm_num::accounting::F_A`).
pub const F_A: u64 = 2;
/// Flops per complex mult (mirrors `kpm_num::accounting::F_M`).
pub const F_M: u64 = 6;

/// The sparse-matrix storage format a kernel call ran against.
///
/// Recorded per probe call so the report can show the achieved
/// performance *and* the format's fill-in cost (β, padded traffic)
/// side by side.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ProbeFormat {
    /// Compressed Row Storage (SELL-1-1 in the paper's terminology).
    #[default]
    Crs,
    /// SELL-C-σ with zero fill-in padding (stored >= nnz).
    Sell,
    /// Matrix-free stencil: rows regenerated on the fly, no stored
    /// elements — the matrix term vanishes from the byte model while
    /// the flop model keeps the logical `nnz`.
    Stencil,
}

impl ProbeFormat {
    /// Stable lowercase name used in exports and reports.
    pub fn name(self) -> &'static str {
        match self {
            ProbeFormat::Crs => "crs",
            ProbeFormat::Sell => "sell",
            ProbeFormat::Stencil => "stencil",
        }
    }

    fn index(self) -> u64 {
        match self {
            ProbeFormat::Crs => 0,
            ProbeFormat::Sell => 1,
            ProbeFormat::Stencil => 2,
        }
    }

    fn from_index(i: u64) -> Self {
        match i {
            1 => ProbeFormat::Sell,
            2 => ProbeFormat::Stencil,
            _ => ProbeFormat::Crs,
        }
    }
}

/// The instrumented kernel families.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelKind {
    /// Plain sparse matrix-vector multiply (also the blocked `spmmv`).
    Spmv,
    /// Augmented SpMV: fused scale/shift/swap + dot products (stage 1).
    AugSpmv,
    /// Augmented blocked SpMMV over an R-wide block vector (stage 2).
    AugSpmmv,
}

impl KernelKind {
    /// Every instrumented kernel, in report order.
    pub const ALL: [KernelKind; 3] = [KernelKind::Spmv, KernelKind::AugSpmv, KernelKind::AugSpmmv];

    /// Stable lowercase name used in exports and reports.
    pub fn name(self) -> &'static str {
        match self {
            KernelKind::Spmv => "spmv",
            KernelKind::AugSpmv => "aug_spmv",
            KernelKind::AugSpmmv => "aug_spmmv",
        }
    }

    fn index(self) -> usize {
        match self {
            KernelKind::Spmv => 0,
            KernelKind::AugSpmv => 1,
            KernelKind::AugSpmmv => 2,
        }
    }

    /// Modeled flops of one sweep of this kernel over a matrix with
    /// `nnz` non-zeros and `rows` rows, block width `width`.
    ///
    /// `spmv` does only the multiply-add chain; the augmented kernels
    /// add the fused scale/shift/swap and dot products (7/2 adds and
    /// 9/2 mults per row per vector — paper Table III).
    pub fn sweep_flops(self, rows: usize, nnz: usize, width: usize) -> u64 {
        let (rows, nnz, w) = (rows as u64, nnz as u64, width as u64);
        match self {
            KernelKind::Spmv => w * nnz * (F_A + F_M),
            KernelKind::AugSpmv | KernelKind::AugSpmmv => {
                w * (nnz * (F_A + F_M) + rows * (7 * F_A + 9 * F_M) / 2)
            }
        }
    }

    /// Modeled minimum data volume of one sweep (bytes): the matrix
    /// streamed once plus the block vectors touched once each.
    pub fn sweep_min_bytes(self, rows: usize, nnz: usize, width: usize) -> u64 {
        let (rows, nnz, w) = (rows as u64, nnz as u64, width as u64);
        let matrix = nnz * (S_D + S_I);
        match self {
            // x read + y written.
            KernelKind::Spmv => matrix + 2 * w * rows * S_D,
            // v read, w read + written (in-place recurrence).
            KernelKind::AugSpmv | KernelKind::AugSpmmv => matrix + 3 * w * rows * S_D,
        }
    }

    /// Modeled *padded* data volume of one sweep (bytes): like
    /// [`KernelKind::sweep_min_bytes`], but the matrix term streams all
    /// `stored` elements — for SELL-C-σ that includes the zero fill-in
    /// (`stored = nnz / β`), which the memory system moves whether or
    /// not the values contribute. For CRS `stored == nnz` and this
    /// equals the minimum volume.
    pub fn sweep_padded_bytes(self, rows: usize, nnz: usize, stored: usize, width: usize) -> u64 {
        let extra = (stored.saturating_sub(nnz)) as u64 * (S_D + S_I);
        self.sweep_min_bytes(rows, nnz, width) + extra
    }
}

/// One kernel's accumulator slot. All fields are independent relaxed
/// atomics: totals are exact, the workload-shape fields (`rows`, `nnz`,
/// `width`) record the last call and are only meaningful for runs with
/// a homogeneous shape (which every solver run is).
struct Slot {
    calls: AtomicU64,
    nanos: AtomicU64,
    flops: AtomicU64,
    min_bytes: AtomicU64,
    padded_bytes: AtomicU64,
    rows: AtomicU64,
    nnz: AtomicU64,
    stored: AtomicU64,
    width: AtomicU64,
    format: AtomicU64,
}

impl Slot {
    const fn new() -> Self {
        Slot {
            calls: AtomicU64::new(0),
            nanos: AtomicU64::new(0),
            flops: AtomicU64::new(0),
            min_bytes: AtomicU64::new(0),
            padded_bytes: AtomicU64::new(0),
            rows: AtomicU64::new(0),
            nnz: AtomicU64::new(0),
            stored: AtomicU64::new(0),
            width: AtomicU64::new(0),
            format: AtomicU64::new(0),
        }
    }

    fn reset(&self) {
        self.calls.store(0, Ordering::Relaxed);
        self.nanos.store(0, Ordering::Relaxed);
        self.flops.store(0, Ordering::Relaxed);
        self.min_bytes.store(0, Ordering::Relaxed);
        self.padded_bytes.store(0, Ordering::Relaxed);
        self.rows.store(0, Ordering::Relaxed);
        self.nnz.store(0, Ordering::Relaxed);
        self.stored.store(0, Ordering::Relaxed);
        self.width.store(0, Ordering::Relaxed);
        self.format.store(0, Ordering::Relaxed);
    }
}

static SLOTS: [Slot; 3] = [Slot::new(), Slot::new(), Slot::new()];

/// A running kernel measurement; drop it at the end of the kernel call.
pub struct KernelTimer {
    slot: &'static Slot,
    flops: u64,
    min_bytes: u64,
    padded_bytes: u64,
    rows: u64,
    nnz: u64,
    stored: u64,
    width: u64,
    format: u64,
    started: Instant,
}

/// Opens a timer for one `kind` kernel call over `rows`×`rows` with
/// `nnz` non-zeros at block width `width`. Returns `None` (zero cost
/// beyond one relaxed atomic load) when instrumentation is disabled.
///
/// Shorthand for [`kernel_timer_fmt`] with a CRS matrix (no fill-in:
/// `stored == nnz`, padded volume == minimum volume).
#[inline]
pub fn kernel_timer(
    kind: KernelKind,
    rows: usize,
    nnz: usize,
    width: usize,
) -> Option<KernelTimer> {
    kernel_timer_fmt(kind, rows, nnz, width, nnz, ProbeFormat::Crs)
}

/// Opens a timer for one `kind` kernel call, recording the storage
/// format and its `stored` element count (>= `nnz` for padded formats
/// like SELL-C-σ) so the report can derive β and padded traffic.
#[inline]
pub fn kernel_timer_fmt(
    kind: KernelKind,
    rows: usize,
    nnz: usize,
    width: usize,
    stored: usize,
    format: ProbeFormat,
) -> Option<KernelTimer> {
    if !crate::enabled() {
        return None;
    }
    // A matrix-free format never streams matrix elements: its byte
    // model uses nnz = 0 (pure vector traffic) while the flop model
    // keeps the logical non-zero count.
    let (byte_nnz, byte_stored) = match format {
        ProbeFormat::Stencil => (0, 0),
        _ => (nnz, stored),
    };
    Some(KernelTimer {
        slot: &SLOTS[kind.index()],
        flops: kind.sweep_flops(rows, nnz, width),
        min_bytes: kind.sweep_min_bytes(rows, byte_nnz, width),
        padded_bytes: kind.sweep_padded_bytes(rows, byte_nnz, byte_stored, width),
        rows: rows as u64,
        nnz: nnz as u64,
        stored: stored as u64,
        width: width as u64,
        format: format.index(),
        started: Instant::now(),
    })
}

impl Drop for KernelTimer {
    fn drop(&mut self) {
        let ns = self.started.elapsed().as_nanos() as u64;
        self.slot.calls.fetch_add(1, Ordering::Relaxed);
        self.slot.nanos.fetch_add(ns, Ordering::Relaxed);
        self.slot.flops.fetch_add(self.flops, Ordering::Relaxed);
        self.slot
            .min_bytes
            .fetch_add(self.min_bytes, Ordering::Relaxed);
        self.slot
            .padded_bytes
            .fetch_add(self.padded_bytes, Ordering::Relaxed);
        self.slot.rows.store(self.rows, Ordering::Relaxed);
        self.slot.nnz.store(self.nnz, Ordering::Relaxed);
        self.slot.stored.store(self.stored, Ordering::Relaxed);
        self.slot.width.store(self.width, Ordering::Relaxed);
        self.slot.format.store(self.format, Ordering::Relaxed);
    }
}

/// Accumulated totals for one kernel.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelReport {
    /// Which kernel.
    pub kind: KernelKind,
    /// Number of completed kernel calls.
    pub calls: u64,
    /// Total elapsed seconds inside the kernel.
    pub seconds: f64,
    /// Total modeled flops.
    pub flops: u64,
    /// Total modeled minimum data volume (bytes).
    pub min_bytes: u64,
    /// Total modeled padded data volume (bytes): the matrix term counts
    /// stored elements including format fill-in. Equals `min_bytes` for
    /// CRS.
    pub padded_bytes: u64,
    /// Rows of the last-seen matrix.
    pub rows: u64,
    /// Non-zeros of the last-seen matrix.
    pub nnz: u64,
    /// Stored matrix elements of the last call, including format
    /// fill-in (`stored == nnz` for CRS).
    pub stored: u64,
    /// Block width of the last call.
    pub width: u64,
    /// Storage format of the last call.
    pub format: ProbeFormat,
}

impl KernelReport {
    /// Achieved performance in GF/s.
    pub fn gflops(&self) -> f64 {
        if self.seconds <= 0.0 {
            return 0.0;
        }
        self.flops as f64 / self.seconds / 1e9
    }

    /// Minimum bytes per flop, B_min (paper Eq. 5 for the blocked
    /// kernel). Multiply by a measured Ω for the effective balance.
    pub fn min_bytes_per_flop(&self) -> f64 {
        if self.flops == 0 {
            return 0.0;
        }
        self.min_bytes as f64 / self.flops as f64
    }

    /// Chunk occupancy `β = nnz / stored` of the last call; 1 for CRS
    /// (and for a SELL conversion with no fill-in).
    pub fn beta(&self) -> f64 {
        if self.stored == 0 {
            return 1.0;
        }
        self.nnz as f64 / self.stored as f64
    }
}

/// Totals for every kernel that has recorded at least one call.
pub fn snapshot() -> Vec<KernelReport> {
    KernelKind::ALL
        .iter()
        .filter_map(|&kind| {
            let slot = &SLOTS[kind.index()];
            let calls = slot.calls.load(Ordering::Relaxed);
            if calls == 0 {
                return None;
            }
            Some(KernelReport {
                kind,
                calls,
                seconds: slot.nanos.load(Ordering::Relaxed) as f64 / 1e9,
                flops: slot.flops.load(Ordering::Relaxed),
                min_bytes: slot.min_bytes.load(Ordering::Relaxed),
                padded_bytes: slot.padded_bytes.load(Ordering::Relaxed),
                rows: slot.rows.load(Ordering::Relaxed),
                nnz: slot.nnz.load(Ordering::Relaxed),
                stored: slot.stored.load(Ordering::Relaxed),
                width: slot.width.load(Ordering::Relaxed),
                format: ProbeFormat::from_index(slot.format.load(Ordering::Relaxed)),
            })
        })
        .collect()
}

/// Clears every kernel slot.
pub(crate) fn reset() {
    for slot in &SLOTS {
        slot.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_lock as serial;

    #[test]
    fn disabled_probe_is_none() {
        let _g = serial();
        crate::set_enabled(false);
        assert!(kernel_timer(KernelKind::Spmv, 10, 50, 1).is_none());
    }

    #[test]
    fn probes_accumulate_flops_and_bytes() {
        let _g = serial();
        crate::reset();
        let _on = crate::EnabledGuard::new();
        for _ in 0..3 {
            let _t = kernel_timer(KernelKind::AugSpmmv, 100, 700, 8);
        }
        let snap = snapshot();
        assert_eq!(snap.len(), 1);
        let rep = &snap[0];
        assert_eq!(rep.kind, KernelKind::AugSpmmv);
        assert_eq!(rep.calls, 3);
        assert_eq!(rep.flops, 3 * KernelKind::AugSpmmv.sweep_flops(100, 700, 8));
        assert_eq!(
            rep.min_bytes,
            3 * KernelKind::AugSpmmv.sweep_min_bytes(100, 700, 8)
        );
        assert_eq!((rep.rows, rep.nnz, rep.width), (100, 700, 8));
        assert!(rep.min_bytes_per_flop() > 0.0);
    }

    #[test]
    fn flop_model_matches_hand_count() {
        // nnz*(Fa+Fm) = 700*8 = 5600 per vector for spmv;
        // aug adds rows*(7*Fa + 9*Fm)/2 = 100*34 = 3400.
        assert_eq!(KernelKind::Spmv.sweep_flops(100, 700, 1), 5600);
        assert_eq!(KernelKind::AugSpmv.sweep_flops(100, 700, 1), 9000);
        assert_eq!(KernelKind::AugSpmmv.sweep_flops(100, 700, 4), 36000);
    }

    #[test]
    fn padded_probe_records_beta_and_padded_traffic() {
        let _g = serial();
        crate::reset();
        let _on = crate::EnabledGuard::new();
        {
            // 700 nnz stored as 1000 elements (beta = 0.7).
            let _t = kernel_timer_fmt(KernelKind::AugSpmv, 100, 700, 1, 1000, ProbeFormat::Sell);
        }
        let snap = snapshot();
        assert_eq!(snap.len(), 1);
        let rep = &snap[0];
        assert_eq!(rep.format, ProbeFormat::Sell);
        assert_eq!(rep.stored, 1000);
        assert!((rep.beta() - 0.7).abs() < 1e-15);
        assert_eq!(
            rep.padded_bytes,
            rep.min_bytes + 300 * (S_D + S_I),
            "padding streams (stored - nnz) extra matrix elements"
        );
        // The plain CRS entry point reports stored == nnz and identical
        // minimum / padded volumes.
        crate::reset();
        {
            let _t = kernel_timer(KernelKind::AugSpmv, 100, 700, 1);
        }
        let rep = &snapshot()[0];
        assert_eq!(rep.format, ProbeFormat::Crs);
        assert_eq!(rep.stored, rep.nnz);
        assert_eq!(rep.padded_bytes, rep.min_bytes);
        assert_eq!(rep.beta(), 1.0);
    }

    #[test]
    fn stencil_probe_drops_matrix_traffic() {
        let _g = serial();
        crate::reset();
        let _on = crate::EnabledGuard::new();
        {
            let _t = kernel_timer_fmt(KernelKind::AugSpmmv, 100, 1300, 4, 0, ProbeFormat::Stencil);
        }
        let rep = &snapshot()[0];
        assert_eq!(rep.format, ProbeFormat::Stencil);
        // Flops keep the logical nnz; bytes are pure vector traffic.
        assert_eq!(rep.flops, KernelKind::AugSpmmv.sweep_flops(100, 1300, 4));
        assert_eq!(
            rep.min_bytes,
            KernelKind::AugSpmmv.sweep_min_bytes(100, 0, 4)
        );
        assert_eq!(rep.padded_bytes, rep.min_bytes);
        assert_eq!(
            rep.beta(),
            1.0,
            "no stored elements: occupancy degenerates to 1"
        );
    }

    #[test]
    fn byte_model_matches_hand_count() {
        // matrix: 700*(16+4) = 14000.
        assert_eq!(KernelKind::Spmv.sweep_min_bytes(100, 700, 1), 14000 + 3200);
        assert_eq!(
            KernelKind::AugSpmv.sweep_min_bytes(100, 700, 1),
            14000 + 4800
        );
        assert_eq!(
            KernelKind::AugSpmmv.sweep_min_bytes(100, 700, 4),
            14000 + 3 * 4 * 100 * 16
        );
    }
}
