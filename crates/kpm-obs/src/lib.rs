//! `kpm-obs` — zero-dependency observability for the KPM workspace.
//!
//! The paper's methodology is a *measurement discipline*: achieved
//! bandwidth, code balance, and the excess-traffic factor Ω (Eq. 8)
//! are continuously compared against the roofline/ECM model to locate
//! the bottleneck. `kpm-perfmodel` predicts; this crate measures live
//! runs so the two can be juxtaposed (`kpm report`).
//!
//! Three facilities, all behind one global switch:
//!
//! * [`span`](mod@span) — hierarchical spans with monotonic timing and a
//!   thread-safe registry, exportable as Chrome trace events.
//! * [`metrics`] — typed counters / gauges / histograms keyed by name
//!   (message counts, retry/backoff events, stash depth, checkpoint
//!   write/restore latency, bytes moved).
//! * [`probe`] — fixed-slot per-kernel performance probes (`spmv`,
//!   `aug_spmv`, `aug_spmmv`) accumulating elapsed time, modeled flops
//!   and minimum data volume, from which achieved GF/s and effective
//!   B/F are derived.
//!
//! # Overhead discipline
//!
//! Instrumentation is **off by default**. Every entry point first loads
//! one relaxed [`AtomicBool`]; the disabled path takes no lock, reads no
//! clock, allocates nothing. Building with the `noop` feature turns
//! [`enabled`] into a constant `false` so the compiler removes the
//! calls entirely (the compile-time fast path).
//!
//! The crate deliberately depends on nothing — not even other workspace
//! crates — so every layer (kernels, solver, distributed runtime) can
//! depend on it without cycles, and it stays compatible with the
//! offline shim policy.

pub mod clock;
pub mod export;
pub mod hist;
pub mod json;
pub mod metrics;
pub mod probe;
pub mod recorder;
pub mod slo;
pub mod span;

use std::sync::atomic::{AtomicBool, Ordering};

static ENABLED: AtomicBool = AtomicBool::new(false);

/// True when instrumentation is globally enabled (and the crate was not
/// built with the `noop` feature).
#[inline(always)]
pub fn enabled() -> bool {
    cfg!(not(feature = "noop")) && ENABLED.load(Ordering::Relaxed)
}

/// Turns instrumentation on or off globally. A no-op under the `noop`
/// feature.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Clears every registry (spans, metrics, kernel probes, exact
/// histograms, SLOs, Lamport clock, flight recorder). Intended for
/// tests and for the CLI between measurement phases; does not change
/// the enabled flag.
pub fn reset() {
    span::reset();
    metrics::reset();
    probe::reset();
    hist::reset();
    slo::reset();
    clock::reset();
    recorder::reset();
}

/// RAII guard that enables instrumentation on construction and restores
/// the previous state on drop. Keeps test code exception-safe.
pub struct EnabledGuard {
    prev: bool,
}

impl EnabledGuard {
    /// Enables instrumentation until the guard is dropped.
    #[allow(clippy::new_without_default)]
    pub fn new() -> Self {
        let prev = ENABLED.swap(true, Ordering::Relaxed);
        EnabledGuard { prev }
    }
}

impl Drop for EnabledGuard {
    fn drop(&mut self) {
        ENABLED.store(self.prev, Ordering::Relaxed);
    }
}

/// Serializes unit tests that toggle or inspect the global registries.
#[cfg(test)]
pub(crate) fn test_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}
