//! Typed metrics: counters, gauges, and log2-bucketed histograms, keyed
//! by a dotted name (`runtime.msg.sent`, `solver.ckpt.save_ns`, ...).
//!
//! All mutation goes through free functions that first check
//! [`crate::enabled`]; when instrumentation is off they return without
//! touching the registry. The registry is one mutex-protected
//! `BTreeMap`, which keeps snapshots deterministically ordered. Hot
//! paths that would contend on the lock (the per-message runtime
//! counters) accumulate locally and flush once per rank instead of
//! calling in here per event.

use std::collections::BTreeMap;
use std::sync::{Mutex, OnceLock, PoisonError};

/// Number of power-of-two histogram buckets: bucket `i` counts values
/// `v` with `2^(i-1) < v <= 2^i` (bucket 0 holds `v <= 1`). 2^43 ns is
/// about 2.4 hours — far beyond any latency this repo records.
pub const HIST_BUCKETS: usize = 44;

/// A latency/size distribution with log2 buckets.
#[derive(Debug, Clone, PartialEq)]
pub struct Hist {
    /// Number of recorded values.
    pub count: u64,
    /// Sum of recorded values.
    pub sum: f64,
    /// Smallest recorded value.
    pub min: f64,
    /// Largest recorded value.
    pub max: f64,
    /// Log2 buckets; see [`HIST_BUCKETS`].
    pub buckets: [u64; HIST_BUCKETS],
}

impl Hist {
    fn new() -> Self {
        Hist {
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            buckets: [0; HIST_BUCKETS],
        }
    }

    fn record(&mut self, v: f64) {
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        let idx = if v <= 1.0 {
            0
        } else {
            (v.log2().ceil() as usize).min(HIST_BUCKETS - 1)
        };
        self.buckets[idx] += 1;
    }

    /// Arithmetic mean of the recorded values.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Upper bound of the bucket containing quantile `q` (0..=1); a
    /// coarse estimate, exact to within one power of two.
    pub fn quantile_upper(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64;
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target.max(1) {
                return (1u64 << i) as f64;
            }
        }
        self.max
    }
}

/// One registered metric.
#[derive(Debug, Clone, PartialEq)]
pub enum Metric {
    /// Monotonically increasing count.
    Counter(u64),
    /// Last-set (or max-tracked) level.
    Gauge(f64),
    /// Distribution of recorded values (boxed: the bucket array is
    /// large relative to the other variants).
    Histogram(Box<Hist>),
}

fn registry() -> &'static Mutex<BTreeMap<String, Metric>> {
    static REG: OnceLock<Mutex<BTreeMap<String, Metric>>> = OnceLock::new();
    REG.get_or_init(|| Mutex::new(BTreeMap::new()))
}

/// Adds `delta` to the counter `name`, creating it at zero first.
pub fn counter_add(name: &str, delta: u64) {
    if !crate::enabled() {
        return;
    }
    let mut reg = registry().lock().unwrap_or_else(PoisonError::into_inner);
    match reg
        .entry(name.to_string())
        .or_insert_with(|| Metric::Counter(0))
    {
        Metric::Counter(c) => *c += delta,
        // kpm::allow(panic_path): metric-kind confusion is a programmer error (one name,
        // two kinds) caught by the first test that records it, not a data-dependent path.
        other => panic!("metric '{name}' is not a counter: {other:?}"),
    }
}

/// Increments the counter `name` by one.
pub fn counter_inc(name: &str) {
    counter_add(name, 1);
}

/// Sets the gauge `name` to `value`.
pub fn gauge_set(name: &str, value: f64) {
    if !crate::enabled() {
        return;
    }
    let mut reg = registry().lock().unwrap_or_else(PoisonError::into_inner);
    match reg
        .entry(name.to_string())
        .or_insert_with(|| Metric::Gauge(value))
    {
        Metric::Gauge(g) => *g = value,
        // kpm::allow(panic_path): metric-kind confusion is a programmer error (one name,
        // two kinds) caught by the first test that records it, not a data-dependent path.
        other => panic!("metric '{name}' is not a gauge: {other:?}"),
    }
}

/// Raises the gauge `name` to `value` if it is below it (peak tracking,
/// e.g. stash depth high-water mark).
pub fn gauge_max(name: &str, value: f64) {
    if !crate::enabled() {
        return;
    }
    let mut reg = registry().lock().unwrap_or_else(PoisonError::into_inner);
    match reg
        .entry(name.to_string())
        .or_insert_with(|| Metric::Gauge(value))
    {
        Metric::Gauge(g) => *g = g.max(value),
        // kpm::allow(panic_path): metric-kind confusion is a programmer error (one name,
        // two kinds) caught by the first test that records it, not a data-dependent path.
        other => panic!("metric '{name}' is not a gauge: {other:?}"),
    }
}

/// Records `value` into the histogram `name`.
pub fn hist_record(name: &str, value: f64) {
    if !crate::enabled() {
        return;
    }
    let mut reg = registry().lock().unwrap_or_else(PoisonError::into_inner);
    match reg
        .entry(name.to_string())
        .or_insert_with(|| Metric::Histogram(Box::new(Hist::new())))
    {
        Metric::Histogram(h) => h.record(value),
        // kpm::allow(panic_path): metric-kind confusion is a programmer error (one name,
        // two kinds) caught by the first test that records it, not a data-dependent path.
        other => panic!("metric '{name}' is not a histogram: {other:?}"),
    }
}

/// Records a duration (in nanoseconds) into the histogram `name`.
pub fn hist_record_ns(name: &str, ns: u64) {
    hist_record(name, ns as f64);
}

/// The current value of counter `name` (0 if absent or another type).
/// Readable regardless of the enabled flag, so tests can assert after
/// disabling.
pub fn counter_value(name: &str) -> u64 {
    let reg = registry().lock().unwrap_or_else(PoisonError::into_inner);
    match reg.get(name) {
        Some(Metric::Counter(c)) => *c,
        _ => 0,
    }
}

/// The current value of gauge `name`, if present.
pub fn gauge_value(name: &str) -> Option<f64> {
    let reg = registry().lock().unwrap_or_else(PoisonError::into_inner);
    match reg.get(name) {
        Some(Metric::Gauge(g)) => Some(*g),
        _ => None,
    }
}

/// A copy of every metric, ordered by name.
pub fn snapshot() -> Vec<(String, Metric)> {
    let reg = registry().lock().unwrap_or_else(PoisonError::into_inner);
    reg.iter().map(|(k, v)| (k.clone(), v.clone())).collect()
}

/// Clears the registry.
pub(crate) fn reset() {
    registry()
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .clear();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_lock as serial;

    #[test]
    fn disabled_calls_do_not_register() {
        let _g = serial();
        crate::set_enabled(false);
        crate::reset();
        counter_inc("x");
        gauge_set("y", 1.0);
        hist_record("z", 2.0);
        assert!(snapshot().is_empty());
    }

    #[test]
    fn counters_gauges_histograms_accumulate() {
        let _g = serial();
        crate::reset();
        let _on = crate::EnabledGuard::new();
        counter_add("c", 2);
        counter_inc("c");
        gauge_max("g", 3.0);
        gauge_max("g", 1.0);
        for v in [100.0, 200.0, 400.0] {
            hist_record("h", v);
        }
        assert_eq!(counter_value("c"), 3);
        assert_eq!(gauge_value("g"), Some(3.0));
        let snap = snapshot();
        let h = snap
            .iter()
            .find_map(|(k, m)| match (k.as_str(), m) {
                ("h", Metric::Histogram(h)) => Some(h.clone()),
                _ => None,
            })
            .expect("histogram registered");
        assert_eq!(h.count, 3);
        assert_eq!(h.min, 100.0);
        assert_eq!(h.max, 400.0);
        assert!((h.mean() - 233.333).abs() < 0.01 * 233.0);
        assert!(h.quantile_upper(0.5) >= 128.0);
    }

    #[test]
    fn histogram_bucket_edges() {
        let mut h = Hist::new();
        h.record(1.0); // bucket 0
        h.record(2.0); // bucket 1 (2^0 < v <= 2^1)
        h.record(3.0); // bucket 2
        assert_eq!(h.buckets[0], 1);
        assert_eq!(h.buckets[1], 1);
        assert_eq!(h.buckets[2], 1);
    }
}
