//! Minimal JSON reading and writing, so the exporters need no external
//! serialization crate and their tests can validate round-trips.
//!
//! The writer side is just [`escape`] plus hand-assembled objects in
//! [`crate::export`]; the reader side is a small recursive-descent
//! parser over a [`Value`] tree. Both cover the JSON subset the
//! exporters emit (no lone surrogates, no numbers beyond `f64`).

use std::collections::BTreeMap;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Value>),
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// Member lookup on an object; `None` on other variants.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The number, if this is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v),
            _ => None,
        }
    }
}

/// Escapes `s` for embedding inside a JSON string literal (without the
/// surrounding quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// Formats a finite `f64` the way the exporters do: integral values
/// without a fractional part, everything else via `{}`.
pub fn num(x: f64) -> String {
    if !x.is_finite() {
        // JSON has no Inf/NaN; null is the conventional stand-in.
        return "null".to_string();
    }
    if x == x.trunc() && x.abs() < 1e15 {
        format!("{}", x as i64)
    } else {
        format!("{x}")
    }
}

/// Parses one JSON document. Trailing whitespace is allowed; trailing
/// garbage is an error.
pub fn parse(s: &str) -> Result<Value, String> {
    let bytes = s.as_bytes();
    let mut p = Parser { bytes, pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(format!("trailing garbage at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(_) => self.number(),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| "non-utf8 number".to_string())?;
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| format!("invalid number '{text}' at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = self
                .peek()
                .ok_or_else(|| "unterminated string".to_string())?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let e = self
                        .peek()
                        .ok_or_else(|| "unterminated escape".to_string())?;
                    self.pos += 1;
                    match e {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            if self.pos + 4 > self.bytes.len() {
                                return Err("truncated \\u escape".to_string());
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                                .map_err(|_| "non-utf8 \\u escape".to_string())?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("bad \\u escape '{hex}'"))?;
                            self.pos += 4;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => return Err(format!("bad escape '\\{}'", other as char)),
                    }
                }
                _ => {
                    // Re-decode from the byte position to keep UTF-8
                    // multi-byte sequences intact.
                    self.pos -= 1;
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "non-utf8 string".to_string())?;
                    let ch = rest.chars().next().unwrap();
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut out = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(out));
        }
        loop {
            self.skip_ws();
            out.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(out));
                }
                other => return Err(format!("expected ',' or ']' , found {other:?}")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut out = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(out));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            out.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(out));
                }
                other => return Err(format!("expected ',' or '}}', found {other:?}")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse("true").unwrap(), Value::Bool(true));
        assert_eq!(parse(" -1.5e2 ").unwrap(), Value::Num(-150.0));
        assert_eq!(parse("\"a\\nb\"").unwrap(), Value::Str("a\nb".into()));
    }

    #[test]
    fn parses_nested_structures() {
        let v = parse(r#"{"a":[1,2,{"b":"x"}],"c":false}"#).unwrap();
        assert_eq!(v.get("c"), Some(&Value::Bool(false)));
        let arr = v.get("a").and_then(Value::as_arr).unwrap();
        assert_eq!(arr[1].as_f64(), Some(2.0));
        assert_eq!(arr[2].get("b").and_then(Value::as_str), Some("x"));
    }

    #[test]
    fn escape_round_trips() {
        let s = "quote\" slash\\ tab\t newline\n unicode \u{3b1}";
        let doc = format!("\"{}\"", escape(s));
        assert_eq!(parse(&doc).unwrap(), Value::Str(s.to_string()));
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(parse("{} x").is_err());
        assert!(parse("[1,").is_err());
    }

    #[test]
    fn num_formats_integers_exactly() {
        assert_eq!(num(3.0), "3");
        assert_eq!(num(0.5), "0.5");
        assert_eq!(num(f64::NAN), "null");
    }
}
