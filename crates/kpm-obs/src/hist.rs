//! Log-linear (HDR-style) histograms with bounded relative error and
//! exact counts, plus a sliding-window aggregator and a named registry.
//!
//! The legacy [`crate::metrics`] histogram uses power-of-two buckets, so
//! its quantiles are only exact to a factor of two — useless for SLO
//! work where p99 and p999 must be resolved within a few percent. This
//! module stores one linear region (`[0, 2^SUB_BITS)`, exact) plus
//! [`1 << SUB_BITS`] sub-buckets per octave above it, so every bucket
//! spans at most `1/2^SUB_BITS` of its lower bound. Reported quantile
//! values are bucket midpoints, bounding the relative error by
//! [`ExactHist::MAX_RELATIVE_ERROR`] (~1.6%) against a sorted-vector
//! oracle using the same nearest-rank definition.
//!
//! [`Windowed`] composes a cumulative histogram with a ring of interval
//! histograms; [`Windowed::advance`] retires the oldest interval, so
//! expiry is driven explicitly (tests) or by elapsed wall time (the
//! registry), never by hidden clock reads inside the data structure.

use std::collections::BTreeMap;
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Sub-bucket resolution: values are resolved to `SUB_BITS` significant
/// bits, i.e. 32 sub-buckets per octave.
pub const SUB_BITS: u32 = 5;
const SUB: u64 = 1 << SUB_BITS;
/// Total bucket count: one exact linear region plus `SUB` buckets for
/// each possible octave of a `u64` value.
const NUM_BUCKETS: usize = (SUB as usize) * (64 - SUB_BITS as usize + 1);

/// Number of interval slots in a sliding window.
pub const WINDOW_SLOTS: usize = 8;
/// Wall-clock width of one registry window slot, in microseconds.
pub const SLOT_WIDTH_US: u64 = 2_000_000;

/// A log-linear histogram over `u64` samples (typically nanoseconds).
#[derive(Clone)]
pub struct ExactHist {
    counts: Box<[u64]>,
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for ExactHist {
    fn default() -> Self {
        Self::new()
    }
}

/// Bucket index for a sample: values below `SUB` are exact; above, the
/// `SUB_BITS` bits after the leading one select a sub-bucket whose width
/// is `2^(msb - SUB_BITS)`.
fn bucket_index(v: u64) -> usize {
    if v < SUB {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros();
    let octave = (msb - SUB_BITS) as usize;
    let sub = ((v >> octave) & (SUB - 1)) as usize;
    (octave + 1) * SUB as usize + sub
}

/// Inclusive lower bound of bucket `i`.
fn bucket_lower(i: usize) -> u64 {
    if i < SUB as usize {
        return i as u64;
    }
    let octave = i / SUB as usize - 1;
    let sub = (i % SUB as usize) as u64;
    (SUB + sub) << octave
}

/// Width of bucket `i` (1 in the linear region).
fn bucket_width(i: usize) -> u64 {
    if i < SUB as usize {
        1
    } else {
        1u64 << (i / SUB as usize - 1)
    }
}

impl ExactHist {
    /// Worst-case relative error of a reported quantile: half a bucket
    /// width over the bucket's lower bound, `1 / 2^(SUB_BITS+1)`.
    pub const MAX_RELATIVE_ERROR: f64 = 1.0 / (1u64 << (SUB_BITS + 1)) as f64;

    /// An empty histogram.
    pub fn new() -> Self {
        ExactHist {
            counts: vec![0; NUM_BUCKETS].into_boxed_slice(),
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, v: u64) {
        self.counts[bucket_index(v)] += 1;
        self.count += 1;
        self.sum += v as u128;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Adds every sample of `other` into `self`.
    pub fn merge(&mut self, other: &ExactHist) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Exact number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact sum of recorded samples.
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Exact smallest sample (`u64::MAX` when empty).
    pub fn min(&self) -> u64 {
        self.min
    }

    /// Exact largest sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean sample value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The nearest-rank quantile `q` in `[0, 1]`: the value whose rank
    /// is `ceil(q * count)` (clamped to at least 1). Within
    /// [`Self::MAX_RELATIVE_ERROR`] of the sorted-oracle answer; exact
    /// for values below `2^SUB_BITS` and returns 0 when empty.
    pub fn value_at_quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            cum += c;
            if cum >= rank {
                let lo = bucket_lower(i);
                let mid = lo + bucket_width(i) / 2;
                // Clamp to the exact extremes so p0/p100 are exact.
                return mid.clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Convenience: `(p50, p90, p99, p999)`.
    pub fn quartet(&self) -> (u64, u64, u64, u64) {
        (
            self.value_at_quantile(0.50),
            self.value_at_quantile(0.90),
            self.value_at_quantile(0.99),
            self.value_at_quantile(0.999),
        )
    }

    /// Non-empty `(lower_bound, count)` bucket pairs.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c != 0)
            .map(|(i, &c)| (bucket_lower(i), c))
            .collect()
    }
}

impl std::fmt::Debug for ExactHist {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExactHist")
            .field("count", &self.count)
            .field("min", &self.min)
            .field("max", &self.max)
            .finish()
    }
}

/// A cumulative histogram plus a ring of [`WINDOW_SLOTS`] interval
/// histograms forming a sliding window.
#[derive(Clone)]
pub struct Windowed {
    total: ExactHist,
    slots: Vec<ExactHist>,
    cur: usize,
    advances: u64,
}

impl Default for Windowed {
    fn default() -> Self {
        Self::new()
    }
}

impl Windowed {
    /// An empty windowed histogram.
    pub fn new() -> Self {
        Windowed {
            total: ExactHist::new(),
            slots: vec![ExactHist::new(); WINDOW_SLOTS],
            cur: 0,
            advances: 0,
        }
    }

    /// Records a sample into the cumulative histogram and the current
    /// window slot.
    pub fn record(&mut self, v: u64) {
        self.total.record(v);
        self.slots[self.cur].record(v);
    }

    /// Rotates to the next window slot, discarding the samples that
    /// slot held [`WINDOW_SLOTS`] advances ago.
    pub fn advance(&mut self) {
        self.cur = (self.cur + 1) % WINDOW_SLOTS;
        self.slots[self.cur] = ExactHist::new();
        self.advances += 1;
    }

    /// The cumulative (never-expiring) histogram.
    pub fn total(&self) -> &ExactHist {
        &self.total
    }

    /// The merged view of every live window slot.
    pub fn window(&self) -> ExactHist {
        let mut merged = ExactHist::new();
        for s in &self.slots {
            merged.merge(s);
        }
        merged
    }

    /// Number of slot rotations performed so far.
    pub fn advances(&self) -> u64 {
        self.advances
    }
}

struct TimedWindow {
    hist: Windowed,
    slot_started: Instant,
}

impl TimedWindow {
    /// Rotates slots for elapsed wall time (bounded by a full window,
    /// after which the window is empty regardless of further elapse).
    fn rotate_for_elapsed(&mut self) {
        let mut elapsed_us = self.slot_started.elapsed().as_micros() as u64;
        let mut turns = 0;
        while elapsed_us >= SLOT_WIDTH_US && turns <= WINDOW_SLOTS {
            self.hist.advance();
            elapsed_us -= SLOT_WIDTH_US;
            turns += 1;
            self.slot_started = Instant::now();
        }
    }
}

fn registry() -> &'static Mutex<BTreeMap<String, TimedWindow>> {
    static REGISTRY: OnceLock<Mutex<BTreeMap<String, TimedWindow>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(BTreeMap::new()))
}

/// Records `value` (conventionally nanoseconds) into the named exact
/// histogram, creating it on first use. No-op when disabled.
pub fn record(name: &str, value: u64) {
    if !crate::enabled() {
        return;
    }
    let mut reg = registry().lock().unwrap_or_else(|e| e.into_inner());
    let entry = reg.entry(name.to_string()).or_insert_with(|| TimedWindow {
        hist: Windowed::new(),
        slot_started: Instant::now(),
    });
    entry.rotate_for_elapsed();
    entry.hist.record(value);
}

/// A copy of every named histogram (cumulative + live window), sorted
/// by name. Window slots are rotated for elapsed time first.
pub fn snapshot() -> Vec<(String, Windowed)> {
    let mut reg = registry().lock().unwrap_or_else(|e| e.into_inner());
    reg.iter_mut()
        .map(|(name, tw)| {
            tw.rotate_for_elapsed();
            (name.clone(), tw.hist.clone())
        })
        .collect()
}

/// The named cumulative histogram, if present.
pub fn get(name: &str) -> Option<ExactHist> {
    let reg = registry().lock().unwrap_or_else(|e| e.into_inner());
    reg.get(name).map(|tw| tw.hist.total().clone())
}

/// Clears the registry.
pub(crate) fn reset() {
    registry().lock().unwrap_or_else(|e| e.into_inner()).clear();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_lock as serial;

    fn oracle(sorted: &[u64], q: f64) -> u64 {
        let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        sorted[rank - 1]
    }

    fn assert_close(h: &ExactHist, sorted: &[u64], q: f64) {
        let got = h.value_at_quantile(q);
        let want = oracle(sorted, q);
        let tol = (want as f64 * ExactHist::MAX_RELATIVE_ERROR).max(0.51);
        assert!(
            (got as f64 - want as f64).abs() <= tol,
            "q={q}: got {got}, oracle {want}, tol {tol}"
        );
    }

    #[test]
    fn small_values_are_exact() {
        let mut h = ExactHist::new();
        let mut vals: Vec<u64> = (0..32).collect();
        for &v in &vals {
            h.record(v);
        }
        vals.sort_unstable();
        for q in [0.0, 0.25, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(h.value_at_quantile(q), oracle(&vals, q));
        }
        assert_eq!(h.count(), 32);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 31);
    }

    #[test]
    fn wide_range_bounded_error() {
        let mut h = ExactHist::new();
        let mut vals = Vec::new();
        let mut x: u64 = 0x9e3779b97f4a7c15;
        for _ in 0..10_000 {
            // splitmix-style scramble for a deterministic spread over
            // ~6 orders of magnitude.
            x = x
                .wrapping_mul(0xbf58476d1ce4e5b9)
                .wrapping_add(0x94d049bb133111eb);
            let v = (x >> 20) % 1_000_000_000 + 1;
            vals.push(v);
            h.record(v);
        }
        vals.sort_unstable();
        for q in [0.5, 0.9, 0.99, 0.999] {
            assert_close(&h, &vals, q);
        }
        assert_eq!(h.sum(), vals.iter().map(|&v| v as u128).sum());
    }

    #[test]
    fn merge_equals_union() {
        let mut a = ExactHist::new();
        let mut b = ExactHist::new();
        let mut all = Vec::new();
        for i in 0..500u64 {
            let v = i * i + 7;
            if i % 2 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
            all.push(v);
        }
        a.merge(&b);
        all.sort_unstable();
        assert_eq!(a.count(), 500);
        assert_eq!(a.min(), all[0]);
        assert_eq!(a.max(), all[499]);
        for q in [0.5, 0.99] {
            assert_close(&a, &all, q);
        }
    }

    #[test]
    fn window_expires_after_full_rotation() {
        let mut w = Windowed::new();
        for _ in 0..100 {
            w.record(1_000);
        }
        assert_eq!(w.window().count(), 100);
        for _ in 0..WINDOW_SLOTS {
            w.advance();
        }
        assert_eq!(w.window().count(), 0, "full rotation expires everything");
        assert_eq!(w.total().count(), 100, "cumulative histogram keeps all");
        w.record(5);
        assert_eq!(w.window().count(), 1);
    }

    #[test]
    fn registry_is_gated() {
        let _g = serial();
        crate::set_enabled(false);
        crate::reset();
        record("test.dark", 42);
        assert!(get("test.dark").is_none());
        let _on = crate::EnabledGuard::new();
        record("test.lit", 42);
        assert_eq!(get("test.lit").map(|h| h.count()), Some(1));
    }
}
