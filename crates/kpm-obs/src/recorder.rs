//! The flight recorder: a fixed-size, lock-sharded ring of recent
//! events, dumped to JSONL when something goes wrong.
//!
//! [`note`] appends an [`EventRecord`] (timestamp, thread, trace id,
//! Lamport stamp, kind, detail) to one of [`SHARDS`] bounded rings
//! chosen by thread id, so concurrent writers rarely contend and memory
//! stays constant no matter how long the process runs. When a trigger
//! fires — a chaos-injected fault, a breaker opening, a deadline miss,
//! or SIGTERM — [`trigger_dump`] freezes the rings plus the tail of the
//! span registry into a `kpm-flight-v1` JSONL file for post-mortem
//! replay with `kpm trace-report`.
//!
//! Dumping is rare and allowed to be expensive; noting must stay cheap
//! and is gated like every other recording entry point. The SIGTERM
//! handler only sets an atomic flag (async-signal-safe); the host loop
//! polls [`sigterm_seen`] and performs the dump on its own thread.

use std::collections::VecDeque;
use std::fmt::Display;
use std::io::{self, Write};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

use crate::json::{escape, num};
use crate::{clock, span};

/// Number of independent ring shards.
pub const SHARDS: usize = 8;
/// Events retained per shard (total capacity `SHARDS * PER_SHARD`).
pub const PER_SHARD: usize = 512;
/// Most recent spans included in a dump alongside the event rings.
pub const DUMP_SPAN_TAIL: usize = 512;
/// Automatic dumps after this many are ignored (the post-mortem wants
/// the first incidents, not a disk full of repeats).
pub const MAX_AUTO_DUMPS: u64 = 16;

/// One recorded event.
#[derive(Debug, Clone)]
pub struct EventRecord {
    /// Microseconds since the obs epoch.
    pub ts_us: f64,
    /// Observability thread id.
    pub tid: u64,
    /// Trace the event belongs to (0 = none).
    pub trace: u64,
    /// Lamport stamp at record time.
    pub lamport: u64,
    /// Event kind, e.g. `chaos.crash`, `breaker.open`.
    pub kind: &'static str,
    /// Free-form detail.
    pub detail: String,
}

fn rings() -> &'static Vec<Mutex<VecDeque<EventRecord>>> {
    static RINGS: OnceLock<Vec<Mutex<VecDeque<EventRecord>>>> = OnceLock::new();
    RINGS.get_or_init(|| (0..SHARDS).map(|_| Mutex::new(VecDeque::new())).collect())
}

fn dump_prefix_slot() -> &'static Mutex<Option<String>> {
    static PREFIX: OnceLock<Mutex<Option<String>>> = OnceLock::new();
    PREFIX.get_or_init(|| Mutex::new(None))
}

static DUMP_SEQ: AtomicU64 = AtomicU64::new(0);
static SIGTERM_SEEN: AtomicBool = AtomicBool::new(false);

/// Records one event into the ring. No-op when disabled.
pub fn note(kind: &'static str, trace: u64, detail: impl Display) {
    if !crate::enabled() {
        return;
    }
    let tid = span::current_tid();
    let rec = EventRecord {
        ts_us: span::micros_since_epoch(),
        tid,
        trace,
        lamport: clock::tick(),
        kind,
        detail: detail.to_string(),
    };
    let ring = &rings()[(tid as usize) % SHARDS];
    let mut ring = ring.lock().unwrap_or_else(|e| e.into_inner());
    if ring.len() == PER_SHARD {
        ring.pop_front();
    }
    ring.push_back(rec);
}

/// Sets the path prefix for automatic dumps (`<prefix>-NNN-<reason>.jsonl`).
/// No-op when disabled.
pub fn configure_dump(prefix: &str) {
    if !crate::enabled() {
        return;
    }
    *dump_prefix_slot().lock().unwrap_or_else(|e| e.into_inner()) = Some(prefix.to_string());
}

/// The configured dump prefix, if any.
pub fn dump_prefix() -> Option<String> {
    dump_prefix_slot()
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .clone()
}

/// Every retained event, merged across shards and ordered by timestamp.
pub fn snapshot() -> Vec<EventRecord> {
    let mut all = Vec::new();
    for ring in rings() {
        all.extend(
            ring.lock()
                .unwrap_or_else(|e| e.into_inner())
                .iter()
                .cloned(),
        );
    }
    all.sort_by(|a, b| {
        a.ts_us
            .partial_cmp(&b.ts_us)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.lamport.cmp(&b.lamport))
    });
    all
}

/// Number of events currently retained.
pub fn len() -> usize {
    rings()
        .iter()
        .map(|r| r.lock().unwrap_or_else(|e| e.into_inner()).len())
        .sum()
}

/// Writes the flight-recorder contents to `path` as `kpm-flight-v1`
/// JSONL: one meta line, then `event` lines (ring contents in time
/// order), then the last [`DUMP_SPAN_TAIL`] `span` lines.
pub fn dump_to(path: &Path, reason: &str) -> io::Result<usize> {
    let events = snapshot();
    let spans = span::snapshot();
    let tail_start = spans.len().saturating_sub(DUMP_SPAN_TAIL);
    let mut w = io::BufWriter::new(std::fs::File::create(path)?);
    writeln!(
        w,
        "{{\"type\":\"meta\",\"schema\":\"kpm-flight-v1\",\"reason\":\"{}\",\
         \"epoch_unix_us\":{},\"dumped_at_us\":{},\"events\":{},\"spans\":{}}}",
        escape(reason),
        span::epoch_unix_us(),
        num(span::micros_since_epoch()),
        events.len(),
        spans.len() - tail_start,
    )?;
    let mut written = 1usize;
    for e in &events {
        writeln!(
            w,
            "{{\"type\":\"event\",\"ts_us\":{},\"tid\":{},\"trace\":{},\"lamport\":{},\
             \"kind\":\"{}\",\"detail\":\"{}\"}}",
            num(e.ts_us),
            e.tid,
            e.trace,
            e.lamport,
            escape(e.kind),
            escape(&e.detail),
        )?;
        written += 1;
    }
    for s in &spans[tail_start..] {
        let mut args = String::new();
        for (k, v) in &s.args {
            if !args.is_empty() {
                args.push(',');
            }
            use std::fmt::Write as _;
            let _ = write!(args, "\"{}\":\"{}\"", escape(k), escape(v));
        }
        writeln!(
            w,
            "{{\"type\":\"span\",\"id\":{},\"parent\":{},\"name\":\"{}\",\"cat\":\"{}\",\
             \"tid\":{},\"trace\":{},\"lamport\":{},\"ts_us\":{},\"dur_us\":{},\"args\":{{{args}}}}}",
            s.id,
            s.parent.map_or("null".to_string(), |p| p.to_string()),
            escape(s.name),
            escape(s.cat),
            s.tid,
            s.trace,
            s.lamport,
            num(s.start_us),
            num(s.dur_us),
        )?;
        written += 1;
    }
    w.flush()?;
    Ok(written)
}

/// Performs an automatic dump if recording is enabled and a prefix is
/// configured; returns the written path. Quietly rate-limited to
/// [`MAX_AUTO_DUMPS`] per process; IO errors are swallowed (a failing
/// post-mortem writer must not take down the service).
pub fn trigger_dump(reason: &str) -> Option<String> {
    if !crate::enabled() {
        return None;
    }
    let prefix = dump_prefix()?;
    let seq = DUMP_SEQ.fetch_add(1, Ordering::Relaxed);
    if seq >= MAX_AUTO_DUMPS {
        return None;
    }
    let safe_reason: String = reason
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect();
    let path = format!("{prefix}-{seq:03}-{safe_reason}.jsonl");
    match dump_to(Path::new(&path), reason) {
        Ok(_) => Some(path),
        Err(_) => None,
    }
}

/// Number of automatic dumps triggered so far.
pub fn dumps_triggered() -> u64 {
    DUMP_SEQ.load(Ordering::Relaxed).min(MAX_AUTO_DUMPS)
}

#[cfg(unix)]
extern "C" fn on_sigterm(_sig: i32) {
    // Async-signal-safe: a single atomic store, nothing else.
    SIGTERM_SEEN.store(true, Ordering::Relaxed);
}

/// Installs a SIGTERM handler that sets a flag for [`sigterm_seen`].
/// The host loop polls the flag and calls [`trigger_dump`] itself; the
/// handler never allocates or locks. No-op off Unix.
pub fn arm_sigterm() {
    #[cfg(unix)]
    {
        extern "C" {
            fn signal(signum: i32, handler: usize) -> usize;
        }
        const SIGTERM: i32 = 15;
        // SAFETY: `signal` is the libc signal(2) binding (std links libc
        // on every Unix target); the installed handler only performs an
        // atomic store, which is async-signal-safe.
        unsafe {
            signal(SIGTERM, on_sigterm as *const () as usize);
        }
    }
}

/// True once SIGTERM has been delivered after [`arm_sigterm`].
pub fn sigterm_seen() -> bool {
    SIGTERM_SEEN.load(Ordering::Relaxed)
}

/// Clears the rings, dump configuration, and counters.
pub(crate) fn reset() {
    for ring in rings() {
        ring.lock().unwrap_or_else(|e| e.into_inner()).clear();
    }
    *dump_prefix_slot().lock().unwrap_or_else(|e| e.into_inner()) = None;
    DUMP_SEQ.store(0, Ordering::Relaxed);
    SIGTERM_SEEN.store(false, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_lock as serial;

    #[test]
    fn ring_is_bounded_and_ordered() {
        let _g = serial();
        crate::reset();
        let _on = crate::EnabledGuard::new();
        for i in 0..(PER_SHARD + 100) {
            note("test.fill", 0, i);
        }
        // All notes from one thread land in one shard.
        assert_eq!(len(), PER_SHARD);
        let snap = snapshot();
        assert_eq!(snap.last().unwrap().detail, (PER_SHARD + 99).to_string());
        assert!(snap.windows(2).all(|w| w[0].ts_us <= w[1].ts_us));
    }

    #[test]
    fn disabled_recorder_stays_dark() {
        let _g = serial();
        crate::set_enabled(false);
        crate::reset();
        note("test.dark", 1, "x");
        configure_dump("/tmp/should-not-matter");
        assert_eq!(len(), 0);
        assert!(dump_prefix().is_none());
        assert!(trigger_dump("dark").is_none());
    }

    #[test]
    fn dump_writes_parseable_jsonl() {
        let _g = serial();
        crate::reset();
        let _on = crate::EnabledGuard::new();
        note("chaos.crash", 42, "batch 7 attempt 0");
        {
            let _s = crate::span::span("svc.request", "svc").trace(42);
        }
        let path =
            std::env::temp_dir().join(format!("kpm-flight-test-{}.jsonl", std::process::id()));
        let lines = dump_to(&path, "unit test").expect("dump");
        assert!(lines >= 3);
        let text = std::fs::read_to_string(&path).expect("read back");
        let mut kinds = Vec::new();
        for line in text.lines() {
            let v = crate::json::parse(line).expect("line parses");
            kinds.push(
                v.get("type")
                    .and_then(crate::json::Value::as_str)
                    .unwrap()
                    .to_string(),
            );
        }
        assert_eq!(kinds[0], "meta");
        assert!(kinds.iter().any(|k| k == "event"));
        assert!(kinds.iter().any(|k| k == "span"));
        let _ = std::fs::remove_file(&path);
    }
}
