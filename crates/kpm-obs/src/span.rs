//! Hierarchical timing spans with a thread-sharded registry.
//!
//! A span measures one region of work (a solver sweep, a checkpoint
//! write, a restart attempt). Spans nest per thread: the innermost open
//! span on the current thread becomes the parent of the next one, so
//! the registry reconstructs the call tree without the caller wiring
//! parent ids. Timing is monotonic ([`Instant`]) against a process-wide
//! epoch; the epoch's wall-clock time ([`SystemTime`]) is captured once
//! so exporters can anchor traces in real time.
//!
//! Completing a span records it in the *current thread's* shard — a
//! private buffer whose lock is uncontended on the hot path — so span
//! recording does not serialize the worker threads of the parallel
//! kernels. Readers ([`snapshot`], [`count`]) merge the shards on
//! demand. Admission against the global [`MAX_SPANS`] cap goes through
//! one atomic counter; overflow is counted and reported by [`dropped`].
//!
//! Guards are cheap when disabled: [`span`] returns an inert guard
//! without reading the clock.

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock, PoisonError};
use std::time::{Duration, Instant, SystemTime};

/// Hard cap on retained span records (across all threads).
pub const MAX_SPANS: usize = 1 << 18;

/// A completed span.
#[derive(Debug, Clone)]
pub struct SpanRecord {
    /// Unique id (process-wide, monotonically assigned).
    pub id: u64,
    /// Id of the enclosing span on the same thread, if any.
    pub parent: Option<u64>,
    /// Span name, e.g. `solver.sweep`.
    pub name: &'static str,
    /// Category, e.g. `solver`, `dist`, `ckpt`.
    pub cat: &'static str,
    /// Observability thread id (dense, assigned per thread).
    pub tid: u64,
    /// Request trace the span belongs to (0 = not part of a trace).
    /// Inherited from the enclosing open span unless set explicitly.
    pub trace: u64,
    /// Lamport stamp assigned when the span opened (see
    /// [`crate::clock`]); orders spans causally across hetsim ranks.
    pub lamport: u64,
    /// Start time in microseconds since the obs epoch.
    pub start_us: f64,
    /// Duration in microseconds.
    pub dur_us: f64,
    /// Free-form annotations.
    pub args: Vec<(&'static str, String)>,
}

/// One thread's private record buffer. The owning thread holds the lock
/// only to push; readers take it only during merge operations.
type Shard = Arc<Mutex<Vec<SpanRecord>>>;

/// All shards ever registered (threads are registered on their first
/// completed span and stay registered for the process lifetime).
fn shards() -> &'static Mutex<Vec<Shard>> {
    static SHARDS: OnceLock<Mutex<Vec<Shard>>> = OnceLock::new();
    SHARDS.get_or_init(|| Mutex::new(Vec::new()))
}

/// `(tid, thread name)` pairs in registration order.
fn thread_registry() -> &'static Mutex<Vec<(u64, String)>> {
    static THREADS: OnceLock<Mutex<Vec<(u64, String)>>> = OnceLock::new();
    THREADS.get_or_init(|| Mutex::new(Vec::new()))
}

/// Spans admitted so far; admission is a single `fetch_add` so the
/// `MAX_SPANS` cap stays global without a global lock per record.
static RECORDED: AtomicUsize = AtomicUsize::new(0);
/// Spans discarded after the cap was reached.
static DROPPED: AtomicU64 = AtomicU64::new(0);

struct Epoch {
    instant: Instant,
    wall: SystemTime,
}

fn epoch() -> &'static Epoch {
    static EPOCH: OnceLock<Epoch> = OnceLock::new();
    EPOCH.get_or_init(|| Epoch {
        instant: Instant::now(),
        wall: SystemTime::now(),
    })
}

/// Microseconds elapsed since the obs epoch (first use in the process).
pub fn micros_since_epoch() -> f64 {
    epoch().instant.elapsed().as_secs_f64() * 1e6
}

/// The wall-clock time of the obs epoch, as microseconds since the Unix
/// epoch (best effort; 0 if the system clock predates 1970).
pub fn epoch_unix_us() -> u64 {
    epoch()
        .wall
        .duration_since(SystemTime::UNIX_EPOCH)
        .unwrap_or(Duration::ZERO)
        .as_micros() as u64
}

static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);
static NEXT_TID: AtomicU64 = AtomicU64::new(1);
static NEXT_TRACE_ID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// `(span id, trace id)` of every open span on this thread.
    static OPEN_STACK: RefCell<Vec<(u64, u64)>> = const { RefCell::new(Vec::new()) };
    static TID: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
    static MY_SHARD: RefCell<Option<Shard>> = const { RefCell::new(None) };
}

/// Mints a fresh process-unique trace id (never 0). Returns 0 when
/// instrumentation is disabled so untraced replies are recognizable.
pub fn mint_trace() -> u64 {
    if !crate::enabled() {
        return 0;
    }
    NEXT_TRACE_ID.fetch_add(1, Ordering::Relaxed)
}

/// The calling thread's observability id (registering the thread on
/// first use). Used by the flight recorder to shard its rings.
pub fn current_tid() -> u64 {
    this_tid()
}

/// This thread's observability id, registering it (with its name) on
/// first use.
fn this_tid() -> u64 {
    TID.with(|t| {
        let cur = t.get();
        if cur != 0 {
            return cur;
        }
        let tid = NEXT_TID.fetch_add(1, Ordering::Relaxed);
        t.set(tid);
        let name = std::thread::current()
            .name()
            .unwrap_or("unnamed")
            .to_string();
        thread_registry()
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push((tid, name));
        tid
    })
}

/// This thread's shard, created and registered on first use.
fn my_shard() -> Shard {
    MY_SHARD.with(|s| {
        let mut slot = s.borrow_mut();
        if let Some(shard) = slot.as_ref() {
            return Arc::clone(shard);
        }
        let shard: Shard = Arc::new(Mutex::new(Vec::new()));
        shards()
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(Arc::clone(&shard));
        *slot = Some(Arc::clone(&shard));
        shard
    })
}

/// An open span; completing (dropping) it records a [`SpanRecord`].
/// Inert when instrumentation is disabled.
pub struct SpanGuard {
    active: Option<ActiveSpan>,
}

struct ActiveSpan {
    id: u64,
    parent: Option<u64>,
    name: &'static str,
    cat: &'static str,
    tid: u64,
    trace: u64,
    lamport: u64,
    started: Instant,
    start_us: f64,
    args: Vec<(&'static str, String)>,
}

/// Opens a span named `name` in category `cat`. The guard records the
/// span when dropped. The span joins the trace of the innermost open
/// span on this thread (override with [`SpanGuard::trace`]).
pub fn span(name: &'static str, cat: &'static str) -> SpanGuard {
    if !crate::enabled() {
        return SpanGuard { active: None };
    }
    let tid = this_tid();
    let id = NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed);
    let (parent, trace) = OPEN_STACK.with(|s| {
        let mut stack = s.borrow_mut();
        let (parent, trace) = match stack.last() {
            Some(&(pid, ptrace)) => (Some(pid), ptrace),
            None => (None, 0),
        };
        stack.push((id, trace));
        (parent, trace)
    });
    let lamport = crate::clock::tick();
    let start_us = micros_since_epoch();
    SpanGuard {
        active: Some(ActiveSpan {
            id,
            parent,
            name,
            cat,
            tid,
            trace,
            lamport,
            started: Instant::now(),
            start_us,
            args: Vec::new(),
        }),
    }
}

impl SpanGuard {
    /// Attaches an annotation. No-op on an inert guard.
    pub fn arg(mut self, key: &'static str, value: impl std::fmt::Display) -> Self {
        if let Some(a) = self.active.as_mut() {
            a.args.push((key, value.to_string()));
        }
        self
    }

    /// Assigns the span (and, through inheritance, any span opened
    /// inside it on this thread) to `trace`. No-op on an inert guard.
    pub fn trace(mut self, trace: u64) -> Self {
        if let Some(a) = self.active.as_mut() {
            a.trace = trace;
            let id = a.id;
            OPEN_STACK.with(|s| {
                if let Some(entry) = s.borrow_mut().iter_mut().find(|(sid, _)| *sid == id) {
                    entry.1 = trace;
                }
            });
        }
        self
    }

    /// True when the guard is actually recording.
    pub fn is_recording(&self) -> bool {
        self.active.is_some()
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(a) = self.active.take() else {
            return;
        };
        let dur_us = a.started.elapsed().as_secs_f64() * 1e6;
        OPEN_STACK.with(|s| {
            let mut stack = s.borrow_mut();
            // Guards drop in LIFO order per thread; `retain` tolerates
            // a guard outliving its scope through a mem::forget-free
            // move.
            if stack.last().map(|&(id, _)| id) == Some(a.id) {
                stack.pop();
            } else {
                stack.retain(|&(id, _)| id != a.id);
            }
        });
        if RECORDED.fetch_add(1, Ordering::Relaxed) >= MAX_SPANS {
            DROPPED.fetch_add(1, Ordering::Relaxed);
            return;
        }
        my_shard()
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(SpanRecord {
                id: a.id,
                parent: a.parent,
                name: a.name,
                cat: a.cat,
                tid: a.tid,
                trace: a.trace,
                lamport: a.lamport,
                start_us: a.start_us,
                dur_us,
                args: a.args,
            });
    }
}

/// Records a span retroactively from externally measured timestamps
/// (`start_us`/`dur_us` in microseconds since the obs epoch). Used by
/// the service to emit the per-stage breakdown of a request at reply
/// time, when every stage boundary is finally known; the stages tile
/// the root span exactly, so the reported sum matches the end-to-end
/// latency by construction. Returns the new span id, or `None` when
/// disabled or over the [`MAX_SPANS`] cap.
#[allow(clippy::too_many_arguments)]
pub fn record_manual(
    name: &'static str,
    cat: &'static str,
    trace: u64,
    parent: Option<u64>,
    start_us: f64,
    dur_us: f64,
    args: Vec<(&'static str, String)>,
) -> Option<u64> {
    if !crate::enabled() {
        return None;
    }
    if RECORDED.fetch_add(1, Ordering::Relaxed) >= MAX_SPANS {
        DROPPED.fetch_add(1, Ordering::Relaxed);
        return None;
    }
    let id = NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed);
    my_shard()
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .push(SpanRecord {
            id,
            parent,
            name,
            cat,
            tid: this_tid(),
            trace,
            lamport: crate::clock::tick(),
            start_us,
            dur_us,
            args,
        });
    Some(id)
}

/// A copy of every recorded span, merged across threads and ordered by
/// span id (i.e. by span-open order, which is deterministic for
/// single-threaded recording and stable across snapshot calls).
pub fn snapshot() -> Vec<SpanRecord> {
    let mut all = Vec::new();
    for shard in shards()
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .iter()
    {
        all.extend(
            shard
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .iter()
                .cloned(),
        );
    }
    all.sort_by_key(|s| s.id);
    all
}

/// Number of spans discarded after [`MAX_SPANS`] was reached.
pub fn dropped() -> u64 {
    DROPPED.load(Ordering::Relaxed)
}

/// Registered `(tid, thread name)` pairs.
pub fn threads() -> Vec<(u64, String)> {
    thread_registry()
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .clone()
}

/// Number of completed spans with the given name.
pub fn count(name: &str) -> usize {
    shards()
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .iter()
        .map(|shard| {
            shard
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .iter()
                .filter(|s| s.name == name)
                .count()
        })
        .sum()
}

/// Clears the span registry (records and drop counter; thread ids and
/// shards are kept, they stay valid for the process lifetime).
pub(crate) fn reset() {
    for shard in shards()
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .iter()
    {
        shard.lock().unwrap_or_else(PoisonError::into_inner).clear();
    }
    RECORDED.store(0, Ordering::Relaxed);
    DROPPED.store(0, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_lock as serial;

    #[test]
    fn disabled_spans_record_nothing() {
        let _g = serial();
        crate::set_enabled(false);
        crate::reset();
        {
            let _s = span("quiet", "test");
        }
        assert!(snapshot().is_empty());
    }

    #[test]
    fn nesting_assigns_parents() {
        let _g = serial();
        crate::reset();
        let _on = crate::EnabledGuard::new();
        {
            let _outer = span("outer", "test");
            {
                let _inner = span("inner", "test").arg("k", 7);
            }
        }
        let spans = snapshot();
        assert_eq!(spans.len(), 2);
        let inner = spans.iter().find(|s| s.name == "inner").unwrap();
        let outer = spans.iter().find(|s| s.name == "outer").unwrap();
        assert_eq!(inner.parent, Some(outer.id));
        assert_eq!(outer.parent, None);
        assert_eq!(inner.args, vec![("k", "7".to_string())]);
        assert!(inner.dur_us <= outer.dur_us);
        assert!(outer.start_us <= inner.start_us);
    }

    #[test]
    fn sibling_threads_get_distinct_tids() {
        let _g = serial();
        crate::reset();
        let _on = crate::EnabledGuard::new();
        let main_tid = {
            let _s = span("main-side", "test");
            this_tid()
        };
        let other_tid = std::thread::spawn(|| {
            let _s = span("thread-side", "test");
            this_tid()
        })
        .join()
        .unwrap();
        assert_ne!(main_tid, other_tid);
        assert_eq!(count("main-side"), 1);
        assert_eq!(count("thread-side"), 1);
    }

    #[test]
    fn concurrent_recording_loses_no_spans() {
        let _g = serial();
        crate::reset();
        let _on = crate::EnabledGuard::new();
        const THREADS: usize = 8;
        const PER_THREAD: usize = 200;
        let handles: Vec<_> = (0..THREADS)
            .map(|_| {
                std::thread::spawn(|| {
                    for _ in 0..PER_THREAD {
                        let _s = span("stress", "test");
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(count("stress"), THREADS * PER_THREAD);
        assert_eq!(dropped(), 0);
        // Snapshot is merged across shards and ordered by id.
        let snap = snapshot();
        let stress: Vec<_> = snap.iter().filter(|s| s.name == "stress").collect();
        assert_eq!(stress.len(), THREADS * PER_THREAD);
        assert!(stress.windows(2).all(|w| w[0].id < w[1].id));
    }
}
