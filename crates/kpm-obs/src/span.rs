//! Hierarchical timing spans with a thread-safe registry.
//!
//! A span measures one region of work (a solver sweep, a checkpoint
//! write, a restart attempt). Spans nest per thread: the innermost open
//! span on the current thread becomes the parent of the next one, so
//! the registry reconstructs the call tree without the caller wiring
//! parent ids. Timing is monotonic ([`Instant`]) against a process-wide
//! epoch; the epoch's wall-clock time ([`SystemTime`]) is captured once
//! so exporters can anchor traces in real time.
//!
//! Guards are cheap when disabled: [`span`] returns an inert guard
//! without reading the clock. The registry is bounded
//! ([`MAX_SPANS`]) so pathological loops cannot exhaust memory; drops
//! are counted and reported by [`dropped`].

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant, SystemTime};

/// Hard cap on retained span records.
pub const MAX_SPANS: usize = 1 << 18;

/// A completed span.
#[derive(Debug, Clone)]
pub struct SpanRecord {
    /// Unique id (process-wide, monotonically assigned).
    pub id: u64,
    /// Id of the enclosing span on the same thread, if any.
    pub parent: Option<u64>,
    /// Span name, e.g. `solver.sweep`.
    pub name: &'static str,
    /// Category, e.g. `solver`, `dist`, `ckpt`.
    pub cat: &'static str,
    /// Observability thread id (dense, assigned per thread).
    pub tid: u64,
    /// Start time in microseconds since the obs epoch.
    pub start_us: f64,
    /// Duration in microseconds.
    pub dur_us: f64,
    /// Free-form annotations.
    pub args: Vec<(&'static str, String)>,
}

struct SpanStore {
    spans: Vec<SpanRecord>,
    dropped: u64,
    /// (tid, thread name) pairs in registration order.
    threads: Vec<(u64, String)>,
}

fn store() -> &'static Mutex<SpanStore> {
    static STORE: OnceLock<Mutex<SpanStore>> = OnceLock::new();
    STORE.get_or_init(|| {
        Mutex::new(SpanStore {
            spans: Vec::new(),
            dropped: 0,
            threads: Vec::new(),
        })
    })
}

struct Epoch {
    instant: Instant,
    wall: SystemTime,
}

fn epoch() -> &'static Epoch {
    static EPOCH: OnceLock<Epoch> = OnceLock::new();
    EPOCH.get_or_init(|| Epoch {
        instant: Instant::now(),
        wall: SystemTime::now(),
    })
}

/// Microseconds elapsed since the obs epoch (first use in the process).
pub fn micros_since_epoch() -> f64 {
    epoch().instant.elapsed().as_secs_f64() * 1e6
}

/// The wall-clock time of the obs epoch, as microseconds since the Unix
/// epoch (best effort; 0 if the system clock predates 1970).
pub fn epoch_unix_us() -> u64 {
    epoch()
        .wall
        .duration_since(SystemTime::UNIX_EPOCH)
        .unwrap_or(Duration::ZERO)
        .as_micros() as u64
}

static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);
static NEXT_TID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    static OPEN_STACK: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
    static TID: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
}

/// This thread's observability id, registering it (with its name) on
/// first use.
fn this_tid() -> u64 {
    TID.with(|t| {
        let cur = t.get();
        if cur != 0 {
            return cur;
        }
        let tid = NEXT_TID.fetch_add(1, Ordering::Relaxed);
        t.set(tid);
        let name = std::thread::current()
            .name()
            .unwrap_or("unnamed")
            .to_string();
        store()
            .lock()
            .expect("span store lock")
            .threads
            .push((tid, name));
        tid
    })
}

/// An open span; completing (dropping) it records a [`SpanRecord`].
/// Inert when instrumentation is disabled.
pub struct SpanGuard {
    active: Option<ActiveSpan>,
}

struct ActiveSpan {
    id: u64,
    parent: Option<u64>,
    name: &'static str,
    cat: &'static str,
    tid: u64,
    started: Instant,
    start_us: f64,
    args: Vec<(&'static str, String)>,
}

/// Opens a span named `name` in category `cat`. The guard records the
/// span when dropped.
pub fn span(name: &'static str, cat: &'static str) -> SpanGuard {
    if !crate::enabled() {
        return SpanGuard { active: None };
    }
    let tid = this_tid();
    let id = NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed);
    let parent = OPEN_STACK.with(|s| {
        let mut stack = s.borrow_mut();
        let parent = stack.last().copied();
        stack.push(id);
        parent
    });
    let start_us = micros_since_epoch();
    SpanGuard {
        active: Some(ActiveSpan {
            id,
            parent,
            name,
            cat,
            tid,
            started: Instant::now(),
            start_us,
            args: Vec::new(),
        }),
    }
}

impl SpanGuard {
    /// Attaches an annotation. No-op on an inert guard.
    pub fn arg(mut self, key: &'static str, value: impl std::fmt::Display) -> Self {
        if let Some(a) = self.active.as_mut() {
            a.args.push((key, value.to_string()));
        }
        self
    }

    /// True when the guard is actually recording.
    pub fn is_recording(&self) -> bool {
        self.active.is_some()
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(a) = self.active.take() else {
            return;
        };
        let dur_us = a.started.elapsed().as_secs_f64() * 1e6;
        OPEN_STACK.with(|s| {
            let mut stack = s.borrow_mut();
            // Guards drop in LIFO order per thread; `retain` tolerates
            // a guard outliving its scope through a mem::forget-free
            // move.
            if stack.last() == Some(&a.id) {
                stack.pop();
            } else {
                stack.retain(|&x| x != a.id);
            }
        });
        let mut st = store().lock().expect("span store lock");
        if st.spans.len() >= MAX_SPANS {
            st.dropped += 1;
            return;
        }
        st.spans.push(SpanRecord {
            id: a.id,
            parent: a.parent,
            name: a.name,
            cat: a.cat,
            tid: a.tid,
            start_us: a.start_us,
            dur_us,
            args: a.args,
        });
    }
}

/// A copy of every recorded span, in completion order.
pub fn snapshot() -> Vec<SpanRecord> {
    store().lock().expect("span store lock").spans.clone()
}

/// Number of spans discarded after [`MAX_SPANS`] was reached.
pub fn dropped() -> u64 {
    store().lock().expect("span store lock").dropped
}

/// Registered `(tid, thread name)` pairs.
pub fn threads() -> Vec<(u64, String)> {
    store().lock().expect("span store lock").threads.clone()
}

/// Number of completed spans with the given name.
pub fn count(name: &str) -> usize {
    store()
        .lock()
        .expect("span store lock")
        .spans
        .iter()
        .filter(|s| s.name == name)
        .count()
}

/// Clears the span registry (records and drop counter; thread ids are
/// kept, they stay valid for the process lifetime).
pub(crate) fn reset() {
    let mut st = store().lock().expect("span store lock");
    st.spans.clear();
    st.dropped = 0;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_lock as serial;

    #[test]
    fn disabled_spans_record_nothing() {
        let _g = serial();
        crate::set_enabled(false);
        crate::reset();
        {
            let _s = span("quiet", "test");
        }
        assert!(snapshot().is_empty());
    }

    #[test]
    fn nesting_assigns_parents() {
        let _g = serial();
        crate::reset();
        let _on = crate::EnabledGuard::new();
        {
            let _outer = span("outer", "test");
            {
                let _inner = span("inner", "test").arg("k", 7);
            }
        }
        let spans = snapshot();
        assert_eq!(spans.len(), 2);
        let inner = spans.iter().find(|s| s.name == "inner").unwrap();
        let outer = spans.iter().find(|s| s.name == "outer").unwrap();
        assert_eq!(inner.parent, Some(outer.id));
        assert_eq!(outer.parent, None);
        assert_eq!(inner.args, vec![("k", "7".to_string())]);
        assert!(inner.dur_us <= outer.dur_us);
        assert!(outer.start_us <= inner.start_us);
    }

    #[test]
    fn sibling_threads_get_distinct_tids() {
        let _g = serial();
        crate::reset();
        let _on = crate::EnabledGuard::new();
        let main_tid = {
            let _s = span("main-side", "test");
            this_tid()
        };
        let other_tid = std::thread::spawn(|| {
            let _s = span("thread-side", "test");
            this_tid()
        })
        .join()
        .unwrap();
        assert_ne!(main_tid, other_tid);
        assert_eq!(count("main-side"), 1);
        assert_eq!(count("thread-side"), 1);
    }
}
