//! Per-route latency objectives and burn rates.
//!
//! An objective says "fraction `goal` of `route`'s replies must finish
//! within `threshold_ns`". Every observed latency is classified good or
//! bad against the threshold; the *burn rate* is the observed bad
//! fraction divided by the budgeted bad fraction `1 - goal`, so 1.0
//! means the error budget is being consumed exactly as provisioned,
//! above 1.0 it is burning too fast, and 0 means no breaches at all.
//! Both a cumulative and a sliding-window rate are kept; the window
//! shares the slot geometry of [`crate::hist`] so the `kpm serve`
//! ledger line can report a recent burn rate that recovers after an
//! incident clears.

use std::collections::BTreeMap;
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

use crate::hist::{SLOT_WIDTH_US, WINDOW_SLOTS};

/// A snapshot of one route's objective and its burn rates.
#[derive(Debug, Clone, PartialEq)]
pub struct SloReport {
    /// Route name, e.g. `dos`.
    pub route: String,
    /// Latency threshold in nanoseconds.
    pub threshold_ns: u64,
    /// Target good fraction in `(0, 1)`, e.g. 0.99.
    pub goal: f64,
    /// Total observations.
    pub events: u64,
    /// Observations over the threshold.
    pub breaches: u64,
    /// Cumulative burn rate (`bad_fraction / (1 - goal)`).
    pub burn_rate: f64,
    /// Observations inside the sliding window.
    pub window_events: u64,
    /// Breaches inside the sliding window.
    pub window_breaches: u64,
    /// Sliding-window burn rate.
    pub window_burn_rate: f64,
}

struct State {
    threshold_ns: u64,
    goal: f64,
    events: u64,
    breaches: u64,
    slots: Vec<(u64, u64)>,
    cur: usize,
    slot_started: Instant,
}

impl State {
    fn rotate_for_elapsed(&mut self) {
        let mut elapsed_us = self.slot_started.elapsed().as_micros() as u64;
        let mut turns = 0;
        while elapsed_us >= SLOT_WIDTH_US && turns <= WINDOW_SLOTS {
            self.cur = (self.cur + 1) % WINDOW_SLOTS;
            self.slots[self.cur] = (0, 0);
            elapsed_us -= SLOT_WIDTH_US;
            turns += 1;
            self.slot_started = Instant::now();
        }
    }
}

fn burn(events: u64, breaches: u64, goal: f64) -> f64 {
    if events == 0 {
        return 0.0;
    }
    let budget = (1.0 - goal).max(1e-9);
    (breaches as f64 / events as f64) / budget
}

fn registry() -> &'static Mutex<BTreeMap<String, State>> {
    static REGISTRY: OnceLock<Mutex<BTreeMap<String, State>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(BTreeMap::new()))
}

/// Registers (or re-targets) the objective for `route`. `goal` is
/// clamped into `(0, 1)`. No-op when disabled.
pub fn objective(route: &str, threshold_ns: u64, goal: f64) {
    if !crate::enabled() {
        return;
    }
    let mut reg = registry().lock().unwrap_or_else(|e| e.into_inner());
    let state = reg.entry(route.to_string()).or_insert_with(|| State {
        threshold_ns,
        goal,
        events: 0,
        breaches: 0,
        slots: vec![(0, 0); WINDOW_SLOTS],
        cur: 0,
        slot_started: Instant::now(),
    });
    state.threshold_ns = threshold_ns;
    state.goal = goal.clamp(1e-9, 1.0 - 1e-9);
}

/// Classifies one reply latency against `route`'s objective. Latencies
/// for routes without a registered objective are ignored. No-op when
/// disabled.
pub fn observe(route: &str, latency_ns: u64) {
    if !crate::enabled() {
        return;
    }
    let mut reg = registry().lock().unwrap_or_else(|e| e.into_inner());
    let Some(state) = reg.get_mut(route) else {
        return;
    };
    state.rotate_for_elapsed();
    let bad = u64::from(latency_ns > state.threshold_ns);
    state.events += 1;
    state.breaches += bad;
    let slot = &mut state.slots[state.cur];
    slot.0 += 1;
    slot.1 += bad;
}

/// A report for every registered route, sorted by route name.
pub fn snapshot() -> Vec<SloReport> {
    let mut reg = registry().lock().unwrap_or_else(|e| e.into_inner());
    reg.iter_mut()
        .map(|(route, s)| {
            s.rotate_for_elapsed();
            let (we, wb) = s
                .slots
                .iter()
                .fold((0, 0), |(e, b), &(se, sb)| (e + se, b + sb));
            SloReport {
                route: route.clone(),
                threshold_ns: s.threshold_ns,
                goal: s.goal,
                events: s.events,
                breaches: s.breaches,
                burn_rate: burn(s.events, s.breaches, s.goal),
                window_events: we,
                window_breaches: wb,
                window_burn_rate: burn(we, wb, s.goal),
            }
        })
        .collect()
}

/// Clears every objective.
pub(crate) fn reset() {
    registry().lock().unwrap_or_else(|e| e.into_inner()).clear();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_lock as serial;

    #[test]
    fn burn_rate_is_bad_fraction_over_budget() {
        let _g = serial();
        crate::reset();
        let _on = crate::EnabledGuard::new();
        objective("dos", 1_000, 0.99);
        for _ in 0..98 {
            observe("dos", 500);
        }
        observe("dos", 2_000);
        observe("dos", 3_000);
        let rep = snapshot();
        assert_eq!(rep.len(), 1);
        let r = &rep[0];
        assert_eq!((r.events, r.breaches), (100, 2));
        // 2% bad over a 1% budget burns at 2x.
        assert!((r.burn_rate - 2.0).abs() < 1e-12, "burn {}", r.burn_rate);
        assert_eq!(r.window_events, 100);
        assert!((r.window_burn_rate - 2.0).abs() < 1e-12);
    }

    #[test]
    fn unknown_route_and_disabled_are_inert() {
        let _g = serial();
        crate::reset();
        {
            let _on = crate::EnabledGuard::new();
            observe("nobody.registered", 10);
            assert!(snapshot().is_empty());
        }
        crate::set_enabled(false);
        objective("dark", 10, 0.5);
        observe("dark", 99);
        assert!(snapshot().is_empty());
    }
}
