//! A process-wide Lamport clock for causal ordering of trace records.
//!
//! The hetsim "ranks" are threads inside one process, but their message
//! timestamps must still order causally across send/receive edges so
//! `kpm trace-report` can reconstruct a critical path that crosses rank
//! boundaries. One shared atomic counter implements the classic Lamport
//! rules: [`tick`] advances local time for an internal event (a span
//! opening, a message send), [`observe`] merges a remote stamp on
//! receipt (`local = max(local, remote) + 1`).
//!
//! When instrumentation is disabled both operations return 0 without
//! touching the counter, so the clock contributes no overhead to
//! uninstrumented runs and the noop build keeps it dark.

use std::sync::atomic::{AtomicU64, Ordering};

static CLOCK: AtomicU64 = AtomicU64::new(0);

/// Advances the Lamport clock for a local event and returns the new
/// stamp. Returns 0 (and does not advance) when instrumentation is off.
pub fn tick() -> u64 {
    if !crate::enabled() {
        return 0;
    }
    CLOCK.fetch_add(1, Ordering::Relaxed) + 1
}

/// Merges a remote stamp on message receipt: the clock becomes
/// `max(local, remote) + 1`, which is returned. Returns 0 when
/// instrumentation is off.
pub fn observe(remote: u64) -> u64 {
    if !crate::enabled() {
        return 0;
    }
    let mut cur = CLOCK.load(Ordering::Relaxed);
    loop {
        let next = cur.max(remote) + 1;
        match CLOCK.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return next,
            Err(seen) => cur = seen,
        }
    }
}

/// The current stamp without advancing the clock.
pub fn current() -> u64 {
    CLOCK.load(Ordering::Relaxed)
}

/// Rewinds the clock to zero (tests / CLI phase boundaries).
pub(crate) fn reset() {
    CLOCK.store(0, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_lock as serial;

    #[test]
    fn tick_is_monotonic_and_observe_merges() {
        let _g = serial();
        crate::reset();
        let _on = crate::EnabledGuard::new();
        let a = tick();
        let b = tick();
        assert!(b > a);
        // A remote stamp far ahead drags the local clock past it.
        let merged = observe(1_000);
        assert!(merged > 1_000);
        assert!(tick() > merged);
    }

    #[test]
    fn disabled_clock_stays_dark() {
        let _g = serial();
        crate::set_enabled(false);
        crate::reset();
        assert_eq!(tick(), 0);
        assert_eq!(observe(77), 0);
        assert_eq!(current(), 0);
    }
}
