//! Set-associative LRU cache simulator.
//!
//! The paper *measures* data volumes with LIKWID (CPU) and nvprof (GPU)
//! to obtain the excess-traffic factor Ω = V_meas/V_KPM and the
//! per-cache-level volumes of Figs. 9/10. We have no hardware counters,
//! so this module provides the measurement instrument instead: a
//! trace-driven, inclusive, write-back/write-allocate LRU cache
//! hierarchy. Kernels replay their memory access streams through it and
//! read off per-level volumes.

/// Geometry of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub capacity_bytes: usize,
    /// Cache line size in bytes.
    pub line_bytes: usize,
    /// Associativity (ways per set).
    pub ways: usize,
}

impl CacheConfig {
    /// Number of sets implied by the geometry.
    pub fn sets(&self) -> usize {
        let lines = self.capacity_bytes / self.line_bytes;
        assert!(lines >= self.ways, "capacity too small for associativity");
        lines / self.ways
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct Way {
    tag: u64,
    valid: bool,
    dirty: bool,
    stamp: u64,
}

/// One set-associative LRU cache level.
#[derive(Debug, Clone)]
pub struct CacheLevel {
    cfg: CacheConfig,
    sets: usize,
    ways: Vec<Way>, // sets * cfg.ways
    clock: u64,
    /// Lines served by this level (hits).
    pub hits: u64,
    /// Lines this level had to fetch from below.
    pub misses: u64,
    /// Dirty lines written back below.
    pub writebacks: u64,
}

/// Result of probing one line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Probe {
    /// Line present.
    Hit,
    /// Line absent; if `victim_dirty`, a dirty line was evicted and must
    /// be written to the level below.
    Miss {
        /// Whether the evicted line was dirty.
        victim_dirty: bool,
    },
}

impl CacheLevel {
    /// Creates an empty (cold) cache.
    pub fn new(cfg: CacheConfig) -> Self {
        let sets = cfg.sets();
        Self {
            cfg,
            sets,
            ways: vec![Way::default(); sets * cfg.ways],
            clock: 0,
            hits: 0,
            misses: 0,
            writebacks: 0,
        }
    }

    /// Line size in bytes.
    pub fn line_bytes(&self) -> usize {
        self.cfg.line_bytes
    }

    /// Probes (and fills on miss) the line containing `addr`; marks it
    /// dirty on writes.
    pub fn access_line(&mut self, line_index: u64, write: bool) -> Probe {
        self.clock += 1;
        let set = (line_index % self.sets as u64) as usize;
        let tag = line_index / self.sets as u64;
        let base = set * self.cfg.ways;
        let ways = &mut self.ways[base..base + self.cfg.ways];

        for w in ways.iter_mut() {
            if w.valid && w.tag == tag {
                w.stamp = self.clock;
                w.dirty |= write;
                self.hits += 1;
                return Probe::Hit;
            }
        }
        // Miss: pick invalid way or the LRU victim. A degenerate
        // zero-way config never allocates, so the line just streams
        // through without displacing anything.
        self.misses += 1;
        let Some(victim) = ways
            .iter_mut()
            .min_by_key(|w| if w.valid { w.stamp } else { 0 })
        else {
            return Probe::Miss {
                victim_dirty: false,
            };
        };
        let victim_dirty = victim.valid && victim.dirty;
        if victim_dirty {
            self.writebacks += 1;
        }
        *victim = Way {
            tag,
            valid: true,
            dirty: write,
            stamp: self.clock,
        };
        Probe::Miss { victim_dirty }
    }

    /// Number of valid dirty lines currently held (what an end-of-kernel
    /// flush would write back).
    pub fn flush_dirty_count(&self) -> u64 {
        self.ways.iter().filter(|w| w.valid && w.dirty).count() as u64
    }

    /// Resets contents and counters.
    pub fn reset(&mut self) {
        self.ways.fill(Way::default());
        self.clock = 0;
        self.hits = 0;
        self.misses = 0;
        self.writebacks = 0;
    }
}

/// Per-level traffic accumulated by a [`MemoryHierarchy`] replay.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TrafficReport {
    /// Bytes served by each cache level (hit traffic), outermost last.
    pub level_bytes: Vec<u64>,
    /// Bytes transferred from memory (misses of the last level plus
    /// write-backs that reach memory).
    pub memory_bytes: u64,
}

/// An inclusive multi-level cache hierarchy with memory behind it.
///
/// Accesses walk the levels from innermost to outermost; the first level
/// that holds the line serves it. Dirty evictions cascade outward and
/// ultimately count as memory write traffic.
#[derive(Debug, Clone)]
pub struct MemoryHierarchy {
    levels: Vec<CacheLevel>,
    /// Bytes served per level (line granularity).
    served: Vec<u64>,
    /// Bytes read from / written to memory.
    pub memory_read: u64,
    /// Write-back bytes arriving at memory.
    pub memory_write: u64,
}

impl MemoryHierarchy {
    /// Builds a hierarchy from inner to outer cache configurations. All
    /// levels must share the same line size (as the modelled machines
    /// do: 64 B on CPUs, 128 B L2 / 32 B TEX sectors are approximated by
    /// one size chosen by the caller per experiment).
    pub fn new(configs: &[CacheConfig]) -> Self {
        assert!(!configs.is_empty(), "need at least one cache level");
        let line = configs[0].line_bytes;
        assert!(
            configs.iter().all(|c| c.line_bytes == line),
            "all levels must share one line size"
        );
        Self {
            levels: configs.iter().map(|&c| CacheLevel::new(c)).collect(),
            served: vec![0; configs.len()],
            memory_read: 0,
            memory_write: 0,
        }
    }

    /// Line size in bytes.
    pub fn line_bytes(&self) -> usize {
        self.levels[0].line_bytes()
    }

    /// Replays one access of `size` bytes at `addr` through the
    /// hierarchy.
    pub fn access(&mut self, addr: u64, size: usize, write: bool) {
        let line = self.line_bytes() as u64;
        let first = addr / line;
        let last = (addr + size as u64 - 1) / line;
        for l in first..=last {
            self.access_one_line(l, write);
        }
    }

    /// Convenience: read access.
    pub fn read(&mut self, addr: u64, size: usize) {
        self.access(addr, size, false);
    }

    /// Convenience: write access.
    pub fn write(&mut self, addr: u64, size: usize) {
        self.access(addr, size, true);
    }

    fn access_one_line(&mut self, line_index: u64, write: bool) {
        let line_bytes = self.line_bytes() as u64;
        for (i, level) in self.levels.iter_mut().enumerate() {
            match level.access_line(line_index, write && i == 0) {
                Probe::Hit => {
                    self.served[i] += line_bytes;
                    return;
                }
                Probe::Miss { victim_dirty } => {
                    if victim_dirty {
                        // Write-back: inclusive model sends it to memory
                        // (outer levels hold the line already; the dirty
                        // data must eventually reach memory either way).
                        self.memory_write += line_bytes;
                    }
                }
            }
        }
        self.memory_read += line_bytes;
    }

    /// Flushes remaining dirty lines to memory (end-of-kernel
    /// accounting) and returns the traffic report.
    pub fn finish(mut self) -> TrafficReport {
        for level in &self.levels {
            for w in &level.ways {
                if w.valid && w.dirty {
                    self.memory_write += level.cfg.line_bytes as u64;
                }
            }
        }
        TrafficReport {
            level_bytes: self.served.clone(),
            memory_bytes: self.memory_read + self.memory_write,
        }
    }

    /// Bytes read from memory so far (no flush).
    pub fn memory_read_bytes(&self) -> u64 {
        self.memory_read
    }

    /// Bytes served by level `i` so far.
    pub fn served_bytes(&self, i: usize) -> u64 {
        self.served[i]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> CacheConfig {
        CacheConfig {
            capacity_bytes: 1024,
            line_bytes: 64,
            ways: 4,
        }
    }

    #[test]
    fn config_geometry() {
        assert_eq!(tiny().sets(), 4);
    }

    #[test]
    fn non_power_of_two_sets_supported() {
        // Real LLCs (e.g. IVB: 25 MiB, 20-way) do not have power-of-two
        // set counts; modulo indexing handles them.
        let cfg = CacheConfig {
            capacity_bytes: 960,
            line_bytes: 64,
            ways: 5,
        };
        assert_eq!(cfg.sets(), 3);
        let mut lvl = CacheLevel::new(cfg);
        assert_eq!(
            lvl.access_line(7, false),
            Probe::Miss {
                victim_dirty: false
            }
        );
        assert_eq!(lvl.access_line(7, false), Probe::Hit);
    }

    #[test]
    fn repeated_access_hits() {
        let mut h = MemoryHierarchy::new(&[tiny()]);
        h.read(0, 8);
        h.read(8, 8); // same line
        assert_eq!(h.memory_read_bytes(), 64);
        assert_eq!(h.served_bytes(0), 64);
    }

    #[test]
    fn working_set_larger_than_cache_thrashes() {
        let mut h = MemoryHierarchy::new(&[tiny()]);
        // Stream 4 KiB twice: 64 lines > 16-line cache, LRU gives zero
        // reuse on the second pass.
        for pass in 0..2 {
            let _ = pass;
            for i in 0..64u64 {
                h.read(i * 64, 64);
            }
        }
        assert_eq!(h.memory_read_bytes(), 2 * 64 * 64);
    }

    #[test]
    fn working_set_smaller_than_cache_is_served_once() {
        let mut h = MemoryHierarchy::new(&[tiny()]);
        // 512 B = 8 lines fit in the 16-line cache.
        for pass in 0..4 {
            let _ = pass;
            for i in 0..8u64 {
                h.read(i * 64, 64);
            }
        }
        assert_eq!(h.memory_read_bytes(), 8 * 64);
        assert_eq!(h.served_bytes(0), 3 * 8 * 64);
    }

    #[test]
    fn dirty_eviction_writes_back() {
        let mut h = MemoryHierarchy::new(&[tiny()]);
        // Dirty the whole cache, then stream enough reads to evict all.
        for i in 0..16u64 {
            h.write(i * 64, 64);
        }
        for i in 100..132u64 {
            h.read(i * 64, 64);
        }
        assert_eq!(h.memory_write, 16 * 64);
    }

    #[test]
    fn finish_flushes_dirty_lines() {
        let mut h = MemoryHierarchy::new(&[tiny()]);
        h.write(0, 64);
        let report = h.finish();
        assert_eq!(report.memory_bytes, 64 /*read*/ + 64 /*flush*/);
    }

    #[test]
    fn two_level_hierarchy_filters_traffic() {
        let l1 = CacheConfig {
            capacity_bytes: 512,
            line_bytes: 64,
            ways: 2,
        };
        let l2 = tiny(); // 1 KiB
        let mut h = MemoryHierarchy::new(&[l1, l2]);
        // Working set of 1 KiB: fits L2 but not L1 (512 B).
        for pass in 0..3 {
            let _ = pass;
            for i in 0..16u64 {
                h.read(i * 64, 64);
            }
        }
        // Memory sees the stream once; L2 serves the L1 misses of the
        // later passes.
        assert_eq!(h.memory_read_bytes(), 16 * 64);
        assert!(h.served_bytes(1) > 0, "L2 must serve re-reads");
    }

    #[test]
    fn straddling_access_touches_two_lines() {
        let mut h = MemoryHierarchy::new(&[tiny()]);
        h.read(60, 8); // bytes 60..68 cross the line boundary at 64
        assert_eq!(h.memory_read_bytes(), 128);
    }

    #[test]
    fn reset_clears_state() {
        let mut lvl = CacheLevel::new(tiny());
        lvl.access_line(5, false);
        assert_eq!(lvl.misses, 1);
        lvl.reset();
        assert_eq!(lvl.misses, 0);
        assert_eq!(
            lvl.access_line(5, false),
            Probe::Miss {
                victim_dirty: false
            }
        );
    }
}
