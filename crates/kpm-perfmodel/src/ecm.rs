//! Multi-level cache-aware roofline (the refinement of paper ref. [5]).
//!
//! The paper's custom roofline (Eq. 11) considers main memory and one
//! cache level. Aktulga et al. (paper ref. [5]) refine SpMMV bounds
//! further by charging *each* cache level with its own traffic and
//! bandwidth: `P* = min(P_peak, min_l b_l / B_l)` where
//! `B_l = V_l / F` is the per-level code balance of the loop. This
//! module implements that generalized model and plugs into the cache
//! simulator's per-level volumes.

use crate::cachesim::TrafficReport;
use crate::machine::Machine;

/// One memory level of the generalized roofline.
#[derive(Debug, Clone, PartialEq)]
pub struct LevelBound {
    /// Level name ("L2", "L3", "MEM", ...).
    pub name: String,
    /// Attainable bandwidth of this level in GB/s.
    pub bandwidth_gbs: f64,
    /// Traffic this loop draws from the level, in bytes.
    pub bytes: u64,
}

impl LevelBound {
    /// The performance ceiling this level imposes on a loop executing
    /// `flops` floating-point operations: `b_l / B_l` in Gflop/s.
    pub fn ceiling_gflops(&self, flops: u64) -> f64 {
        assert!(flops > 0, "flop count must be positive");
        if self.bytes == 0 {
            f64::INFINITY
        } else {
            self.bandwidth_gbs * flops as f64 / self.bytes as f64
        }
    }
}

/// The model prediction.
#[derive(Debug, Clone, PartialEq)]
pub struct EcmPrediction {
    /// Predicted performance in Gflop/s.
    pub p_star: f64,
    /// Name of the binding level ("CORE" if peak-bound).
    pub binding: String,
    /// All per-level ceilings for inspection.
    pub ceilings: Vec<(String, f64)>,
}

/// Evaluates `P* = min(P_peak, min_l b_l/B_l)` for a loop with the
/// given per-level traffic.
pub fn predict(peak_gflops: f64, levels: &[LevelBound], flops: u64) -> EcmPrediction {
    assert!(!levels.is_empty(), "need at least one memory level");
    let mut p_star = peak_gflops;
    let mut binding = "CORE".to_string();
    let mut ceilings = Vec::with_capacity(levels.len());
    for l in levels {
        let c = l.ceiling_gflops(flops);
        ceilings.push((l.name.clone(), c));
        if c < p_star {
            p_star = c;
            binding = l.name.clone();
        }
    }
    EcmPrediction {
        p_star,
        binding,
        ceilings,
    }
}

/// Builds the level list for a CPU from a cache-simulator traffic
/// report: `level_bandwidths_gbs[i]` is the attainable bandwidth of
/// simulated cache level `i` (inner to outer); memory uses the
/// machine's attainable DRAM bandwidth.
pub fn levels_from_traffic(
    machine: &Machine,
    report: &TrafficReport,
    level_names: &[&str],
    level_bandwidths_gbs: &[f64],
) -> Vec<LevelBound> {
    assert_eq!(
        report.level_bytes.len(),
        level_bandwidths_gbs.len(),
        "one bandwidth per simulated level"
    );
    assert_eq!(level_names.len(), level_bandwidths_gbs.len());
    let mut levels: Vec<LevelBound> = report
        .level_bytes
        .iter()
        .zip(level_names.iter().zip(level_bandwidths_gbs))
        .map(|(&bytes, (name, &bw))| LevelBound {
            name: (*name).to_string(),
            bandwidth_gbs: bw,
            bytes,
        })
        .collect();
    levels.push(LevelBound {
        name: "MEM".to_string(),
        bandwidth_gbs: machine.mem_bw_gbs,
        bytes: report.memory_bytes,
    });
    levels
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::IVB;

    fn level(name: &str, bw: f64, bytes: u64) -> LevelBound {
        LevelBound {
            name: name.to_string(),
            bandwidth_gbs: bw,
            bytes,
        }
    }

    #[test]
    fn single_level_reduces_to_classic_roofline() {
        // 1 Gflop of work, 2.23 GB from memory at 50 GB/s -> 22.4 Gflop/s.
        let levels = [level("MEM", 50.0, 2_231_884_057)];
        let p = predict(176.0, &levels, 1_000_000_000);
        assert!((p.p_star - 22.4).abs() < 0.1);
        assert_eq!(p.binding, "MEM");
    }

    #[test]
    fn peak_bound_when_all_levels_fast() {
        let levels = [level("L3", 300.0, 1), level("MEM", 50.0, 1)];
        let p = predict(176.0, &levels, 1_000_000_000);
        assert_eq!(p.p_star, 176.0);
        assert_eq!(p.binding, "CORE");
    }

    #[test]
    fn binding_level_is_the_slowest_ratio() {
        // L3 carries 4x the memory traffic but has 6x the bandwidth:
        // memory still binds.
        let flops = 1_000_000_000u64;
        let levels = [
            level("L3", 300.0, 8_000_000_000),
            level("MEM", 50.0, 2_000_000_000),
        ];
        let p = predict(1e6, &levels, flops);
        assert_eq!(p.binding, "MEM");
        assert!((p.p_star - 25.0).abs() < 1e-9);
        // Push more L3 traffic: binding flips.
        let levels = [
            level("L3", 300.0, 20_000_000_000),
            level("MEM", 50.0, 2_000_000_000),
        ];
        let p = predict(1e6, &levels, flops);
        assert_eq!(p.binding, "L3");
    }

    #[test]
    fn zero_traffic_level_imposes_no_bound() {
        let levels = [level("L2", 100.0, 0), level("MEM", 50.0, 1_000_000_000)];
        let p = predict(176.0, &levels, 1_000_000_000);
        assert_eq!(p.binding, "MEM");
        assert!((p.p_star - 50.0).abs() < 1e-9);
    }

    #[test]
    fn levels_from_traffic_appends_memory() {
        let report = TrafficReport {
            level_bytes: vec![100, 200],
            memory_bytes: 50,
        };
        let levels = levels_from_traffic(&IVB, &report, &["L2", "L3"], &[400.0, 250.0]);
        assert_eq!(levels.len(), 3);
        assert_eq!(levels[2].name, "MEM");
        assert_eq!(levels[2].bytes, 50);
        assert_eq!(levels[2].bandwidth_gbs, 50.0);
        assert_eq!(levels[0].bytes, 100);
    }

    #[test]
    fn two_level_ecm_on_simulated_spmmv_traffic() {
        // End to end: replay the aug_spmmv stream through an L2+L3
        // hierarchy and predict with per-level bandwidths. The result
        // must lie at or below the single-level Eq. 11 prediction
        // (more constraints can only lower the bound).
        use crate::cachesim::{CacheConfig, MemoryHierarchy};
        let l2 = CacheConfig {
            capacity_bytes: 256 * 1024,
            line_bytes: 64,
            ways: 8,
        };
        let l3 = CacheConfig {
            capacity_bytes: 2 * 1024 * 1024,
            line_bytes: 64,
            ways: 16,
        };
        let mut mem = MemoryHierarchy::new(&[l2, l3]);
        // Synthetic stream: 1 MB matrix + repeated 512 KiB vector block.
        for pass in 0..4 {
            let _ = pass;
            for i in 0..8192u64 {
                mem.read(i * 64, 64);
            }
        }
        let report = mem.finish();
        let flops = 100_000_000u64;
        let levels = levels_from_traffic(&IVB, &report, &["L2", "L3"], &[400.0, 250.0]);
        let multi = predict(IVB.peak_gflops, &levels, flops);
        let single = predict(
            IVB.peak_gflops,
            &[LevelBound {
                name: "MEM".into(),
                bandwidth_gbs: IVB.mem_bw_gbs,
                bytes: report.memory_bytes,
            }],
            flops,
        );
        assert!(multi.p_star <= single.p_star + 1e-9);
    }
}
