//! Code balance (paper Eqs. 5–8).
//!
//! The minimum code balance of the fully optimized solver,
//!
//! ```text
//! B_min(R) = [Nnzr/R (Sd+Si) + 3 Sd] / [Nnzr(Fa+Fm) + 7Fa/2 + 9Fm/2]
//! ```
//!
//! evaluates for the topological-insulator workload (`Nnzr = 13`,
//! double complex, 4-byte indices) to `(260/R + 48)/138` bytes/flop:
//! 2.23 B/F at `R = 1`, asymptotically 0.35 B/F — which is what decouples
//! the kernel from main-memory bandwidth.

use kpm_num::accounting::{F_A, F_M, S_D, S_I};

/// Minimum code balance `B_min(R)` in bytes/flop for average row
/// occupancy `nnzr` and block width `r` (paper Eq. 5).
pub fn min_code_balance(nnzr: f64, r: usize) -> f64 {
    assert!(r >= 1, "block width must be at least 1");
    let bytes = nnzr / r as f64 * (S_D + S_I) as f64 + 3.0 * S_D as f64;
    let flops = nnzr * (F_A + F_M) as f64 + (7 * F_A) as f64 / 2.0 + (9 * F_M) as f64 / 2.0;
    bytes / flops
}

/// The asymptotic balance `lim_{R→∞} B_min` (paper Eq. 7).
pub fn asymptotic_balance(nnzr: f64) -> f64 {
    let flops = nnzr * (F_A + F_M) as f64 + (7 * F_A) as f64 / 2.0 + (9 * F_M) as f64 / 2.0;
    3.0 * S_D as f64 / flops
}

/// The *actual* balance `B = Ω · B_min` (paper Eq. 8), with
/// `Ω = V_meas / V_KPM ≥ 1` the excess-traffic factor measured by the
/// cache simulator.
pub fn actual_balance(nnzr: f64, r: usize, omega: f64) -> f64 {
    assert!(omega >= 1.0 - 1e-9, "omega must be >= 1");
    omega * min_code_balance(nnzr, r)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn balance_formula_matches_eq5_closed_form() {
        // (260/R + 48)/138 for Nnzr = 13.
        for r in [1usize, 2, 4, 8, 16, 32, 64] {
            let closed = (260.0 / r as f64 + 48.0) / 138.0;
            assert!((min_code_balance(13.0, r) - closed).abs() < 1e-12, "R={r}");
        }
    }

    #[test]
    fn r1_balance_is_2_23() {
        // Paper Eq. (6).
        assert!((min_code_balance(13.0, 1) - 2.23).abs() < 0.01);
    }

    #[test]
    fn asymptotic_balance_is_0_35() {
        // Paper Eq. (7).
        assert!((asymptotic_balance(13.0) - 0.35).abs() < 0.01);
        // B_min(R) approaches it monotonically from above.
        let b64 = min_code_balance(13.0, 64);
        let b1024 = min_code_balance(13.0, 1024);
        assert!(b1024 < b64);
        assert!(b1024 > asymptotic_balance(13.0));
    }

    #[test]
    fn balance_decreases_monotonically_in_r() {
        let mut prev = f64::INFINITY;
        for r in 1..=128 {
            let b = min_code_balance(13.0, r);
            assert!(b < prev);
            prev = b;
        }
    }

    #[test]
    fn omega_scales_balance_linearly() {
        let b = min_code_balance(13.0, 8);
        assert!((actual_balance(13.0, 8, 1.0) - b).abs() < 1e-15);
        assert!((actual_balance(13.0, 8, 1.54) - 1.54 * b).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "omega must be >= 1")]
    fn omega_below_one_rejected() {
        actual_balance(13.0, 4, 0.5);
    }
}
