//! Performance models of the paper (Sections III and V).
//!
//! * [`machine`] — the architecture catalog of paper Table II (IVB, SNB,
//!   K20m, K20X) plus the host machine used for live measurements,
//! * [`traffic`] — the minimum-traffic/flop accounting of paper Table I
//!   and the solver traffic evolution of Eq. (4),
//! * [`balance`] — code balance `B_min(R)` (Eqs. 5–7) and the measured
//!   balance `B = Ω·B_min` (Eq. 8),
//! * [`roofline`] — the roofline model (Eq. 9), its memory-bound form
//!   (Eq. 10) and the cache-aware refinement `P* = min(P_MEM, P_LLC)`
//!   (Eq. 11),
//! * [`cachesim`] — a set-associative LRU cache hierarchy simulator used
//!   to *measure* data volumes per memory level (the role LIKWID and
//!   nvprof play in the paper), producing the Ω factor,
//! * [`omega`] — drives the cache simulator over the real access stream
//!   of the augmented SpM(M)V kernels on a given sparse matrix,
//! * [`ecm`] — the multi-level generalization of the roofline (paper
//!   ref. [5]): one bandwidth bound per cache level.

pub mod balance;
pub mod cachesim;
pub mod ecm;
pub mod machine;
pub mod omega;
pub mod roofline;
pub mod traffic;

pub use balance::{actual_balance, min_code_balance};
pub use cachesim::{CacheConfig, CacheLevel, MemoryHierarchy};
pub use machine::Machine;
pub use roofline::{roofline, roofline_llc};
