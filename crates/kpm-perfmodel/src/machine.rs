//! The architecture catalog of paper Table II.
//!
//! | Name | Clock (MHz) | SIMD (B) | Cores/SMX | b (GB/s) | LLC (MiB) | P_peak (Gflop/s) |
//! |---|---|---|---|---|---|---|
//! | IVB  (Xeon E5-2660 v2) | 2200 | 32 | 10 | 50  | 25   | 176    |
//! | SNB  (Xeon E5-2670)    | 2600 | 32 | 8  | 48  | 20   | 166.4  |
//! | K20m (Tesla, ECC off)  | 706  | — | 13 | 150 | 1.25 | 1174   |
//! | K20X (Tesla, ECC on)   | 732  | — | 14 | 170 | 1.5  | 1311   |
//!
//! The LLC-limited performance ceilings `P_LLC` used in the custom
//! roofline (paper Eq. 11) are not in Table II; the paper obtains them
//! by benchmarking a cache-resident problem. We carry calibrated values
//! reproducing paper Fig. 8 (IVB tops out at ≈ 65–70 Gflop/s for the
//! augmented SpMMV at large R, ≈ 40% of peak).

/// Device category.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeviceKind {
    /// Multi-core CPU socket.
    Cpu,
    /// Discrete GPU.
    Gpu,
}

/// One compute device (a CPU socket or a GPU).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Machine {
    /// Short name as used in the paper.
    pub name: &'static str,
    /// CPU socket or GPU.
    pub kind: DeviceKind,
    /// Core clock in MHz.
    pub clock_mhz: f64,
    /// SIMD register width in bytes (CPU) or warp-equivalent width
    /// (GPU: 32 threads × 16 B double-complex lanes is not meaningful,
    /// so the paper lists 512 = warp × 16 B).
    pub simd_bytes: usize,
    /// Physical cores (CPU) or SMX units (GPU).
    pub cores: usize,
    /// Attainable memory bandwidth `b` in GB/s.
    pub mem_bw_gbs: f64,
    /// Last-level cache capacity in MiB.
    pub llc_mib: f64,
    /// Private per-core (CPU: L2; GPU: per-SMX L1/shared) cache in KiB —
    /// the cache budget one thread can rely on without contending with
    /// the other threads' matrix streams; drives the row-tile sizing of
    /// the blocked kernels.
    pub l2_kib: usize,
    /// Double-precision peak performance in Gflop/s.
    pub peak_gflops: f64,
    /// Calibrated LLC-limited ceiling for the augmented SpMMV kernel in
    /// Gflop/s (the `P*_LLC` of paper Eq. 11).
    pub llc_ceiling_gflops: f64,
}

/// Intel Xeon E5-2660 v2 ("IVB"), fixed clock.
pub const IVB: Machine = Machine {
    name: "IVB",
    kind: DeviceKind::Cpu,
    clock_mhz: 2200.0,
    simd_bytes: 32,
    cores: 10,
    mem_bw_gbs: 50.0,
    llc_mib: 25.0,
    l2_kib: 256,
    peak_gflops: 176.0,
    llc_ceiling_gflops: 70.0,
};

/// Intel Xeon E5-2670 ("SNB"), turbo enabled.
pub const SNB: Machine = Machine {
    name: "SNB",
    kind: DeviceKind::Cpu,
    clock_mhz: 2600.0,
    simd_bytes: 32,
    cores: 8,
    mem_bw_gbs: 48.0,
    llc_mib: 20.0,
    l2_kib: 256,
    peak_gflops: 166.4,
    // Sandy Bridge L3 sustains less kernel throughput than Ivy Bridge;
    // calibrated so the heterogeneous node lands at the paper's Fig. 11
    // levels (CPU contributes ~36% on top of the GPU).
    llc_ceiling_gflops: 46.0,
};

/// NVIDIA Tesla K20m, ECC disabled.
pub const K20M: Machine = Machine {
    name: "K20m",
    kind: DeviceKind::Gpu,
    clock_mhz: 706.0,
    simd_bytes: 512,
    cores: 13,
    mem_bw_gbs: 150.0,
    llc_mib: 1.25,
    l2_kib: 64,
    peak_gflops: 1174.0,
    llc_ceiling_gflops: 300.0,
};

/// NVIDIA Tesla K20X, ECC enabled.
pub const K20X: Machine = Machine {
    name: "K20X",
    kind: DeviceKind::Gpu,
    clock_mhz: 732.0,
    simd_bytes: 512,
    cores: 14,
    mem_bw_gbs: 170.0,
    llc_mib: 1.5,
    l2_kib: 64,
    peak_gflops: 1311.0,
    llc_ceiling_gflops: 330.0,
};

/// Intel Xeon Phi 5110P ("KNC") — not part of Table II, but paper
/// Section VII notes "the Intel Xeon Phi coprocessor is already
/// supported in our software"; this entry lets the roofline machinery
/// answer what the model predicts for it. 60 cores at 1053 MHz with
/// 512-bit SIMD, ~150 GB/s attainable stream bandwidth, 30 MiB of
/// distributed L2 acting as the LLC.
pub const PHI: Machine = Machine {
    name: "KNC",
    kind: DeviceKind::Cpu,
    clock_mhz: 1053.0,
    simd_bytes: 64,
    cores: 60,
    mem_bw_gbs: 150.0,
    llc_mib: 30.0,
    l2_kib: 512,
    peak_gflops: 1010.9,
    llc_ceiling_gflops: 170.0,
};

/// All four catalog machines in the paper's Table II order.
pub const CATALOG: [Machine; 4] = [IVB, SNB, K20M, K20X];

impl Machine {
    /// Machine balance `B_m = b / P_peak` in bytes/flop. Paper Section I
    /// notes SpMV balance is "at least an order of magnitude" above this.
    pub fn machine_balance(&self) -> f64 {
        self.mem_bw_gbs / self.peak_gflops
    }

    /// Peak performance of `n` cores/SMX, assuming linear in-core
    /// scaling (clock fixed).
    pub fn peak_of_cores(&self, n: usize) -> f64 {
        assert!(n >= 1 && n <= self.cores, "core count out of range");
        self.peak_gflops * n as f64 / self.cores as f64
    }

    /// LLC capacity in bytes.
    pub fn llc_bytes(&self) -> usize {
        (self.llc_mib * 1024.0 * 1024.0) as usize
    }

    /// Looks a machine up by its paper name.
    pub fn by_name(name: &str) -> Option<Machine> {
        CATALOG.iter().copied().find(|m| m.name == name)
    }

    /// The per-thread cache budget in bytes the tile sizing of the
    /// blocked kernels should work against: the private per-core cache.
    /// (The LLC is shared with the other threads' matrix streams, so it
    /// is *not* a reliable per-thread budget.)
    pub fn tile_budget_bytes(&self) -> usize {
        self.l2_kib * 1024
    }

    /// The row-tile height the model predicts for a blocked kernel of
    /// width `r` on this machine (paper Section VII cache blocking).
    /// Pass [`Machine::tile_budget_bytes`] to the `*_budget` kernel
    /// variants (or a `KpmMatrix` handle) to make the kernels tile for
    /// this machine — the budget is scoped per call, never global.
    pub fn spmmv_tile_rows(&self, r: usize) -> usize {
        kpm_sparse::tile::tile_rows_for_budget(r, self.tile_budget_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_matches_table_ii() {
        assert_eq!(IVB.clock_mhz, 2200.0);
        assert_eq!(IVB.cores, 10);
        assert_eq!(IVB.mem_bw_gbs, 50.0);
        assert_eq!(IVB.llc_mib, 25.0);
        assert_eq!(IVB.peak_gflops, 176.0);

        assert_eq!(SNB.clock_mhz, 2600.0);
        assert_eq!(SNB.cores, 8);
        assert_eq!(SNB.peak_gflops, 166.4);

        assert_eq!(K20M.mem_bw_gbs, 150.0);
        assert_eq!(K20M.llc_mib, 1.25);
        assert_eq!(K20M.peak_gflops, 1174.0);

        assert_eq!(K20X.mem_bw_gbs, 170.0);
        assert_eq!(K20X.peak_gflops, 1311.0);
    }

    #[test]
    fn peak_is_consistent_with_clock_and_width() {
        // IVB: 10 cores x 2.2 GHz x 8 flops/cycle (AVX DP) = 176 Gflop/s.
        assert!((IVB.clock_mhz / 1000.0 * IVB.cores as f64 * 8.0 - IVB.peak_gflops).abs() < 1e-9);
        // SNB: 8 x 2.6 x 8 = 166.4.
        assert!((SNB.clock_mhz / 1000.0 * SNB.cores as f64 * 8.0 - SNB.peak_gflops).abs() < 1e-9);
        // K20m: 13 SMX x 64 DP units x 2 (FMA) x 0.706 GHz = 1174.
        assert!(
            (K20M.clock_mhz / 1000.0 * K20M.cores as f64 * 128.0 - K20M.peak_gflops).abs() < 1.0
        );
    }

    #[test]
    fn machine_balance_far_below_spmv_balance() {
        // All machines: B_m well below even the best-case blocked KPM
        // balance of 0.35 B/F... and an order of magnitude below the
        // R=1 balance of 2.23 B/F.
        for m in CATALOG {
            assert!(m.machine_balance() < 0.35, "{}", m.name);
            assert!(m.machine_balance() > 0.05, "{}", m.name);
        }
    }

    #[test]
    fn core_scaling_and_lookup() {
        assert!((IVB.peak_of_cores(10) - 176.0).abs() < 1e-12);
        assert!((IVB.peak_of_cores(1) - 17.6).abs() < 1e-12);
        assert_eq!(Machine::by_name("K20X").unwrap().cores, 14);
        assert!(Machine::by_name("nonexistent").is_none());
    }

    #[test]
    fn llc_bytes_conversion() {
        assert_eq!(IVB.llc_bytes(), 25 * 1024 * 1024);
        assert_eq!(K20M.llc_bytes(), 5 * 1024 * 1024 / 4);
    }

    #[test]
    #[should_panic(expected = "core count out of range")]
    fn too_many_cores_panics() {
        IVB.peak_of_cores(11);
    }

    #[test]
    fn tile_budget_tracks_private_cache() {
        // Xeons: 256 KiB private L2 -> at R = 32 the predicted tile
        // shrinks below the legacy 512-row chunk (the measured
        // BENCH_stages regression), while R <= 8 keeps it.
        assert_eq!(IVB.tile_budget_bytes(), 256 * 1024);
        assert_eq!(IVB.spmmv_tile_rows(8), 512);
        assert_eq!(IVB.spmmv_tile_rows(32), 128);
        // K20: only 64 KiB per SMX -> even R = 16 pins to the floor.
        assert!(K20M.spmmv_tile_rows(16) >= kpm_sparse::tile::MIN_TILE_ROWS);
        assert!(K20M.spmmv_tile_rows(16) < IVB.spmmv_tile_rows(16));
        // Wider private caches never predict smaller tiles.
        assert!(PHI.spmmv_tile_rows(32) >= IVB.spmmv_tile_rows(32));
    }

    #[test]
    fn phi_outlook_entry_is_consistent() {
        // 60 cores x 1.053 GHz x 16 DP flops/cycle (512-bit FMA).
        assert!((PHI.clock_mhz / 1000.0 * PHI.cores as f64 * 16.0 - PHI.peak_gflops).abs() < 1.0);
        // Phi is NOT in the Table II catalog.
        assert!(CATALOG.iter().all(|m| m.name != PHI.name));
        // The model's prediction for the paper's open question: at
        // R = 32 the blocked kernel on KNC would be LLC-bound around
        // its calibrated ceiling, not memory-bound.
        use crate::balance::min_code_balance;
        use crate::roofline::memory_bound;
        let b32 = min_code_balance(13.0, 32);
        assert!(memory_bound(&PHI, b32) > PHI.llc_ceiling_gflops);
    }
}
