//! The roofline model (paper Eqs. 9–11).
//!
//! `P* = min(P_peak, b/B)` bounds the performance of a loop with code
//! balance `B` on a machine with peak `P_peak` and memory bandwidth `b`
//! (Williams et al., paper ref. [25]). For kernels that decouple from
//! main memory, the refined bound `P* = min(P_MEM, P_LLC)` (Eq. 11)
//! replaces the peak by a cache-limited ceiling obtained from a
//! cache-resident benchmark.

use crate::balance::actual_balance;
use crate::machine::Machine;

/// The classic roofline bound `P* = min(P_peak, b/B)` in Gflop/s for a
/// code balance `B` in bytes/flop (paper Eq. 9).
pub fn roofline(machine: &Machine, balance: f64) -> f64 {
    assert!(balance > 0.0, "code balance must be positive");
    machine.peak_gflops.min(machine.mem_bw_gbs / balance)
}

/// The memory-bound limit `P_MEM = b/B` alone (paper Eq. 10).
pub fn memory_bound(machine: &Machine, balance: f64) -> f64 {
    assert!(balance > 0.0, "code balance must be positive");
    machine.mem_bw_gbs / balance
}

/// The cache-aware roofline `P* = min(P_MEM, P_LLC)` (paper Eq. 11),
/// using the machine's calibrated LLC ceiling.
pub fn roofline_llc(machine: &Machine, balance: f64) -> f64 {
    memory_bound(machine, balance).min(machine.llc_ceiling_gflops)
}

/// Prediction for the intra-socket scaling of paper Fig. 7: with `n`
/// of the machine's cores active, performance is bounded by both the
/// (shared) bandwidth ceiling and linear in-core scaling of the
/// single-core kernel performance `p1`.
pub fn socket_scaling(machine: &Machine, balance: f64, p1_gflops: f64, n: usize) -> f64 {
    assert!(n >= 1 && n <= machine.cores, "core count out of range");
    (p1_gflops * n as f64).min(memory_bound(machine, balance))
}

/// A full custom-roofline evaluation for the augmented SpM(M)V kernel at
/// block width `r` (one point of paper Fig. 8).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RooflinePoint {
    /// Block vector width R.
    pub r: usize,
    /// Excess-traffic factor Ω at this R.
    pub omega: f64,
    /// Actual code balance B = Ω·B_min(R).
    pub balance: f64,
    /// Memory-bound ceiling `P_MEM = b/B`.
    pub p_mem: f64,
    /// LLC ceiling `P_LLC`.
    pub p_llc: f64,
    /// The model prediction `min(P_MEM, P_LLC)`.
    pub p_star: f64,
}

/// Evaluates the custom roofline at block width `r` given a measured Ω.
pub fn custom_roofline(machine: &Machine, nnzr: f64, r: usize, omega: f64) -> RooflinePoint {
    let balance = actual_balance(nnzr, r, omega);
    let p_mem = memory_bound(machine, balance);
    let p_llc = machine.llc_ceiling_gflops;
    RooflinePoint {
        r,
        omega,
        balance,
        p_mem,
        p_llc,
        p_star: p_mem.min(p_llc),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::balance::min_code_balance;
    use crate::machine::{IVB, K20M};

    #[test]
    fn roofline_is_min_of_both_ceilings() {
        // Very high balance -> memory bound; very low -> peak bound.
        assert_eq!(roofline(&IVB, 100.0), 0.5);
        assert_eq!(roofline(&IVB, 1e-6), IVB.peak_gflops);
    }

    #[test]
    fn spmv_r1_prediction_matches_paper_fig7() {
        // Paper Fig. 7: the aug_spmv roofline on IVB saturates around
        // 22 Gflop/s (b=50 GB/s over B=2.23 B/F with Omega = 1).
        let b1 = min_code_balance(13.0, 1);
        let p = roofline(&IVB, b1);
        assert!((p - 22.4).abs() < 0.5, "P* = {p}");
    }

    #[test]
    fn large_r_decouples_from_memory_on_ivb() {
        // At R = 32 the memory-bound ceiling exceeds the LLC ceiling:
        // the bottleneck has moved into the cache (paper Fig. 8).
        let b32 = min_code_balance(13.0, 32);
        assert!(memory_bound(&IVB, b32) > IVB.llc_ceiling_gflops);
        let pt = custom_roofline(&IVB, 13.0, 32, 1.0);
        assert_eq!(pt.p_star, IVB.llc_ceiling_gflops);
        // While at R = 1 it is memory bound.
        let pt1 = custom_roofline(&IVB, 13.0, 1, 1.0);
        assert!(pt1.p_star < IVB.llc_ceiling_gflops);
        assert_eq!(pt1.p_star, pt1.p_mem);
    }

    #[test]
    fn omega_lowers_the_memory_ceiling() {
        // Paper Fig. 8 annotation: Omega grows with R (1.16 -> 1.54),
        // lowering P_MEM although B_min alone would suggest otherwise.
        let clean = custom_roofline(&IVB, 13.0, 32, 1.0);
        let dirty = custom_roofline(&IVB, 13.0, 32, 1.54);
        assert!(dirty.p_mem < clean.p_mem);
        assert!((dirty.balance / clean.balance - 1.54).abs() < 1e-12);
    }

    #[test]
    fn socket_scaling_saturates() {
        // Single-core kernel perf of ~4.5 Gflop/s: memory-bound kernel
        // saturates the socket before all 10 cores are busy.
        let b1 = min_code_balance(13.0, 1);
        let p_sat = memory_bound(&IVB, b1);
        let mut prev = 0.0;
        let mut saturated = false;
        for n in 1..=10 {
            let p = socket_scaling(&IVB, b1, 4.5, n);
            assert!(p >= prev);
            prev = p;
            if (p - p_sat).abs() < 1e-12 {
                saturated = true;
            }
        }
        assert!(saturated, "memory-bound kernel must hit the bandwidth roof");
        // The blocked kernel (R=32) with the same per-core performance
        // scales linearly through all 10 cores.
        let b32 = min_code_balance(13.0, 32);
        for n in 1..=10 {
            let p = socket_scaling(&IVB, b32, 4.5, n);
            assert!((p - 4.5 * n as f64).abs() < 1e-9, "n={n}");
        }
    }

    #[test]
    fn gpu_r1_is_memory_bound_at_150gbs() {
        // Paper Fig. 10: at R = 1 the K20m draws its full 150 GB/s.
        let b1 = min_code_balance(13.0, 1);
        let p = roofline(&K20M, b1);
        assert!((p - 150.0 / b1).abs() < 1e-9);
        assert!(p < K20M.peak_gflops / 10.0);
    }
}
