//! Measuring the excess-traffic factor Ω on the CPU memory hierarchy.
//!
//! Ω = V_meas / V_KPM (paper Eq. 8): the ratio of the memory traffic a
//! kernel actually generates to its theoretical minimum. Ω > 1 arises
//! when the right-hand-side block does not stay cache-resident between
//! uses — an unfavourable sparsity pattern or an undersized LLC forces
//! re-reads from DRAM, and growing block width R shrinks the number of
//! matrix rows whose working set fits (paper Section III-A, Fig. 8).
//!
//! This module replays the exact address stream of one `aug_spmmv`
//! sweep over a real [`CrsMatrix`] through the LLC simulator and reads
//! off the DRAM volume.

use kpm_obs::probe::KernelKind;
use kpm_sparse::CrsMatrix;

use crate::cachesim::{CacheConfig, MemoryHierarchy};
use crate::machine::Machine;
use crate::traffic::stage2_solver_traffic;

/// Result of one Ω measurement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OmegaReport {
    /// Block vector width.
    pub r: usize,
    /// Theoretical minimum traffic of one blocked sweep (bytes).
    pub v_min: u64,
    /// Simulated DRAM traffic of one blocked sweep (bytes).
    pub v_meas: u64,
    /// The excess factor `Ω = V_meas / V_min`.
    pub omega: f64,
}

/// The LLC of `machine` as a cache-simulator configuration (64-byte
/// lines, 20-way — the organization of the modelled Xeons).
pub fn llc_config(machine: &Machine) -> CacheConfig {
    CacheConfig {
        capacity_bytes: machine.llc_bytes(),
        line_bytes: 64,
        ways: 20,
    }
}

/// Replays one `aug_spmmv` sweep (block width `r`) over `h` through an
/// LLC of the given geometry and reports Ω.
///
/// Address-space layout (disjoint regions, as in the real kernel):
/// matrix values, matrix column indices, the input block `V`, the
/// output block `W`. Matrix data streams sequentially; each non-zero
/// triggers a read of the `R`-wide interleaved row of `V`; each row end
/// reads and writes the `R`-wide row of `W`.
pub fn measure_omega(h: &CrsMatrix, r: usize, llc: CacheConfig) -> OmegaReport {
    assert!(r >= 1, "block width must be >= 1");
    let n = h.nrows() as u64;
    let nnz = h.nnz() as u64;
    let sd = 16u64; // S_D
    let si = 4u64; // S_I
    let row_bytes = r as u64 * sd;

    // Disjoint address regions.
    let vals_base = 0u64;
    let cols_base = vals_base + nnz * sd;
    let v_base = cols_base + nnz * si;
    let w_base = v_base + n * row_bytes;

    let mut mem = MemoryHierarchy::new(&[llc]);
    let mut k = 0u64;
    for row in 0..h.nrows() {
        let cols = h.row_cols(row);
        for &c in cols {
            // Matrix value + index stream (sequential).
            mem.read(vals_base + k * sd, sd as usize);
            mem.read(cols_base + k * si, si as usize);
            k += 1;
            // Gather the interleaved R-row of V at the column index.
            mem.read(v_base + c as u64 * row_bytes, row_bytes as usize);
        }
        // Diagonal shift re-reads V's own row (cache-hot: just touched
        // if the diagonal is among the columns; charge it regardless).
        mem.read(v_base + row as u64 * row_bytes, row_bytes as usize);
        // Recurrence: read old W row, write new one.
        mem.read(w_base + row as u64 * row_bytes, row_bytes as usize);
        mem.write(w_base + row as u64 * row_bytes, row_bytes as usize);
    }
    let report = mem.finish();

    // Minimum traffic of ONE sweep = stage-2 traffic with M = 2.
    let v_min = stage2_solver_traffic(h.nrows(), h.nnz(), r, 2) as u64;
    OmegaReport {
        r,
        v_min,
        v_meas: report.memory_bytes,
        omega: report.memory_bytes as f64 / v_min as f64,
    }
}

/// Sweeps Ω over a list of block widths (the x-axis of paper Fig. 8).
pub fn omega_sweep(h: &CrsMatrix, rs: &[usize], llc: CacheConfig) -> Vec<OmegaReport> {
    rs.iter().map(|&r| measure_omega(h, r, llc)).collect()
}

/// Replays `sweeps` back-to-back sweeps of the given kernel through an
/// LLC and reports the *per-sweep* Ω — the live counterpart of
/// [`measure_omega`] used by the achieved-vs-predicted telemetry report.
///
/// Unlike the cold single-sweep measurement, the cache is NOT reset
/// between sweeps, so this captures the steady-state Ω an instrumented
/// solver iteration actually sees. For working sets well above the LLC
/// capacity the warm and cold values agree closely (only the first
/// sweep's compulsory misses differ); for LLC-resident problems warm Ω
/// drops below one, exactly as hardware counters would show.
///
/// Per-kernel address streams:
/// * [`KernelKind::Spmv`] — matrix values + indices sequential, a
///   gather of the `R`-row of `X` per non-zero, one write of the
///   `R`-row of `Y` per row (minimum: `Nnz(Sd+Si) + 2·R·N·Sd`).
/// * [`KernelKind::AugSpmv`] / [`KernelKind::AugSpmmv`] — the fused
///   stream of [`measure_omega`] with the extra diagonal-shift re-read
///   and the read-modify-write of `W` (minimum: `Nnz(Sd+Si) + 3·R·N·Sd`).
pub fn measure_omega_kernel(
    h: &CrsMatrix,
    kind: KernelKind,
    r: usize,
    llc: CacheConfig,
    sweeps: usize,
) -> OmegaReport {
    assert!(r >= 1, "block width must be >= 1");
    assert!(sweeps >= 1, "need at least one sweep");
    let n = h.nrows() as u64;
    let nnz = h.nnz() as u64;
    let sd = 16u64; // S_D
    let si = 4u64; // S_I
    let row_bytes = r as u64 * sd;

    // Disjoint address regions: vals | cols | V (or X) | W (or Y).
    let vals_base = 0u64;
    let cols_base = vals_base + nnz * sd;
    let v_base = cols_base + nnz * si;
    let w_base = v_base + n * row_bytes;
    let augmented = !matches!(kind, KernelKind::Spmv);

    let mut mem = MemoryHierarchy::new(&[llc]);
    for _ in 0..sweeps {
        let mut k = 0u64;
        for row in 0..h.nrows() {
            for &c in h.row_cols(row) {
                mem.read(vals_base + k * sd, sd as usize);
                mem.read(cols_base + k * si, si as usize);
                k += 1;
                mem.read(v_base + c as u64 * row_bytes, row_bytes as usize);
            }
            if augmented {
                // Diagonal shift re-reads V's own row; the recurrence
                // reads the old W row before overwriting it.
                mem.read(v_base + row as u64 * row_bytes, row_bytes as usize);
                mem.read(w_base + row as u64 * row_bytes, row_bytes as usize);
            }
            mem.write(w_base + row as u64 * row_bytes, row_bytes as usize);
        }
    }
    let report = mem.finish();

    let v_min = kind.sweep_min_bytes(h.nrows(), h.nnz(), r);
    let v_meas = report.memory_bytes / sweeps as u64;
    OmegaReport {
        r,
        v_min,
        v_meas,
        omega: v_meas as f64 / v_min as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kpm_topo::TopoHamiltonian;

    fn small_llc(kib: usize) -> CacheConfig {
        CacheConfig {
            capacity_bytes: kib * 1024,
            line_bytes: 64,
            ways: 16,
        }
    }

    #[test]
    fn omega_is_at_least_one_for_line_aligned_blocks() {
        // R = 4: one block row = 64 B = exactly one line, so no
        // partial-line overfetch; Ω >= 1 within rounding.
        let h = TopoHamiltonian::clean(8, 8, 4).assemble();
        let rep = measure_omega(&h, 4, small_llc(512));
        assert!(rep.omega >= 0.99, "omega = {}", rep.omega);
    }

    #[test]
    fn big_cache_keeps_omega_near_one() {
        // LLC larger than the whole working set: every vector line is
        // fetched exactly once.
        let h = TopoHamiltonian::clean(6, 6, 3).assemble();
        let r = 4;
        // Working set: ~ (13*20 + 3*64)*432 bytes << 4 MiB.
        let rep = measure_omega(&h, r, small_llc(4096));
        assert!(rep.omega < 1.1, "omega = {}", rep.omega);
    }

    #[test]
    fn tiny_cache_inflates_omega() {
        // Shrink the LLC far below the block working set: stencil
        // neighbours in y/z no longer stay resident between uses.
        let h = TopoHamiltonian::clean(16, 16, 4).assemble();
        let big = measure_omega(&h, 8, small_llc(2048));
        let tiny = measure_omega(&h, 8, small_llc(16));
        assert!(
            tiny.omega > big.omega + 0.2,
            "tiny {} vs big {}",
            tiny.omega,
            big.omega
        );
    }

    #[test]
    fn omega_grows_with_r_for_fixed_cache() {
        // Larger blocks enlarge the working set relative to the cache:
        // the paper's Fig. 8 annotations (Ω: ~1 -> 1.16 -> 1.54).
        let h = TopoHamiltonian::clean(16, 16, 4).assemble();
        let llc = small_llc(64);
        let o4 = measure_omega(&h, 4, llc).omega;
        let o32 = measure_omega(&h, 32, llc).omega;
        assert!(o32 > o4, "o4 = {o4}, o32 = {o32}");
    }

    #[test]
    fn sweep_returns_one_report_per_r() {
        let h = TopoHamiltonian::clean(4, 4, 2).assemble();
        let reps = omega_sweep(&h, &[1, 2, 4], small_llc(256));
        assert_eq!(reps.len(), 3);
        assert_eq!(reps[0].r, 1);
        assert_eq!(reps[2].r, 4);
        for rp in reps {
            assert!(rp.v_meas > 0 && rp.v_min > 0);
        }
    }
}
