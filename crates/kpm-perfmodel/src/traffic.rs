//! Minimum data traffic and flop counts (paper Table I and Eq. 4).
//!
//! All quantities are *minimum* values: every operand is charged exactly
//! once. The measured traffic exceeds these by the factor Ω (Eq. 8)
//! when the right-hand-side vector does not fit the cache.

use kpm_num::accounting::{F_A, F_M, S_D, S_I};

/// One row of paper Table I: a solver sub-routine with its call count,
/// minimum bytes per call, and flops per call.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FunctionCost {
    /// Function name as in the paper ("spmv()", "axpy()", ...).
    pub name: &'static str,
    /// Number of calls over the whole solver run.
    pub calls: usize,
    /// Minimum bytes moved per call.
    pub bytes_per_call: usize,
    /// Flops executed per call.
    pub flops_per_call: usize,
}

impl FunctionCost {
    /// Total bytes over all calls.
    pub fn total_bytes(&self) -> usize {
        self.calls * self.bytes_per_call
    }

    /// Total flops over all calls.
    pub fn total_flops(&self) -> usize {
        self.calls * self.flops_per_call
    }
}

/// Reproduces paper Table I for problem size `n`, `nnz` non-zeros,
/// `r` random vectors and `m` moments. Returns the five function rows;
/// use [`naive_solver_traffic`] for the aggregate last row.
pub fn table1(n: usize, nnz: usize, r: usize, m: usize) -> Vec<FunctionCost> {
    vec![
        FunctionCost {
            name: "spmv()",
            calls: r * m / 2,
            // Matrix (data + index) once, input vector once, output
            // vector written once: Nnz(Sd+Si) + 2N·Sd.
            bytes_per_call: nnz * (S_D + S_I) + 2 * n * S_D,
            flops_per_call: nnz * (F_A + F_M),
        },
        FunctionCost {
            name: "axpy()",
            calls: r * m, // two per iteration
            bytes_per_call: 3 * n * S_D,
            flops_per_call: n * (F_A + F_M),
        },
        FunctionCost {
            name: "scal()",
            calls: r * m / 2,
            bytes_per_call: 2 * n * S_D,
            flops_per_call: n * F_M,
        },
        FunctionCost {
            name: "nrm2()",
            calls: r * m / 2,
            bytes_per_call: n * S_D,
            // Complex nrm2: |z|^2 per element is one cmul-half and one
            // cadd-half in the paper's accounting: N(Fa/2 + Fm/2).
            flops_per_call: n * (F_A / 2 + F_M / 2),
        },
        FunctionCost {
            name: "dot()",
            calls: r * m / 2,
            bytes_per_call: 2 * n * S_D,
            flops_per_call: n * (F_A + F_M),
        },
    ]
}

/// Aggregate minimum traffic of the naive solver (paper Table I, last
/// row): `R·M/2 · [Nnz(Sd+Si) + 13·N·Sd]` bytes.
pub fn naive_solver_traffic(n: usize, nnz: usize, r: usize, m: usize) -> usize {
    r * m / 2 * (nnz * (S_D + S_I) + 13 * n * S_D)
}

/// Aggregate flops of the solver (identical for all variants):
/// `R·M/2 · [Nnz(Fa+Fm) + N(7Fa/2 + 9Fm/2)]`.
pub fn solver_flops(n: usize, nnz: usize, r: usize, m: usize) -> usize {
    kpm_num::accounting::kpm_flops(n, nnz, r, m)
}

/// Minimum traffic after optimization stage 1 (Eq. 4, middle):
/// `R·M/2 · [Nnz(Sd+Si) + 3·N·Sd]` — the fused kernel touches each of
/// the two vectors once (v read, w read+write = 3 transfers).
pub fn stage1_solver_traffic(n: usize, nnz: usize, r: usize, m: usize) -> usize {
    r * m / 2 * (nnz * (S_D + S_I) + 3 * n * S_D)
}

/// Minimum traffic after optimization stage 2 (Eq. 4, bottom):
/// `M/2 · [Nnz(Sd+Si) + 3·R·N·Sd]` — the matrix is streamed once per
/// iteration for all R vectors.
pub fn stage2_solver_traffic(n: usize, nnz: usize, r: usize, m: usize) -> usize {
    m / 2 * (nnz * (S_D + S_I) + 3 * r * n * S_D)
}

#[cfg(test)]
mod tests {
    use super::*;

    const N: usize = 1000;
    const NNZ: usize = 13 * N;
    const R: usize = 4;
    const M: usize = 100;

    #[test]
    fn naive_traffic_equals_sum_of_function_rows() {
        // Table I's last row counts each vector operand once per kernel;
        // summing the per-function rows gives
        // R*M/2 * [Nnz(Sd+Si) + 2N Sd] (spmv)
        //  + R*M * 3N Sd (axpy)  + R*M/2 * 2N Sd (scal)
        //  + R*M/2 * N Sd (nrm2) + R*M/2 * 2N Sd (dot)
        // = R*M/2 * [Nnz(Sd+Si) + 13 N Sd].
        let rows = table1(N, NNZ, R, M);
        let total_bytes: usize = rows.iter().map(|f| f.total_bytes()).sum();
        assert_eq!(total_bytes, naive_solver_traffic(N, NNZ, R, M));
    }

    #[test]
    fn flops_equal_sum_of_function_rows() {
        let rows = table1(N, NNZ, R, M);
        let total_flops: usize = rows.iter().map(|f| f.total_flops()).sum();
        assert_eq!(total_flops, solver_flops(N, NNZ, R, M));
    }

    #[test]
    fn optimization_strictly_reduces_traffic() {
        let v0 = naive_solver_traffic(N, NNZ, R, M);
        let v1 = stage1_solver_traffic(N, NNZ, R, M);
        let v2 = stage2_solver_traffic(N, NNZ, R, M);
        assert!(v1 < v0);
        assert!(v2 < v1);
    }

    #[test]
    fn stage1_saves_ten_vector_transfers() {
        let v0 = naive_solver_traffic(N, NNZ, R, M);
        let v1 = stage1_solver_traffic(N, NNZ, R, M);
        assert_eq!(v0 - v1, R * M / 2 * 10 * N * S_D);
    }

    #[test]
    fn stage2_reads_matrix_once_per_iteration() {
        let v2 = stage2_solver_traffic(N, NNZ, R, M);
        // Matrix term no longer multiplied by R.
        assert_eq!(v2, M / 2 * (NNZ * (S_D + S_I) + 3 * R * N * S_D));
        // For R = 1, stages 1 and 2 coincide.
        assert_eq!(
            stage1_solver_traffic(N, NNZ, 1, M),
            stage2_solver_traffic(N, NNZ, 1, M)
        );
    }

    #[test]
    fn call_counts_match_paper() {
        let rows = table1(N, NNZ, R, M);
        let by_name = |name: &str| rows.iter().find(|f| f.name == name).unwrap().calls;
        assert_eq!(by_name("spmv()"), R * M / 2);
        assert_eq!(by_name("axpy()"), R * M);
        assert_eq!(by_name("scal()"), R * M / 2);
        assert_eq!(by_name("nrm2()"), R * M / 2);
        assert_eq!(by_name("dot()"), R * M / 2);
    }
}
