//! Coordinate-format (triplet) sparse matrix builder.
//!
//! Assembly code (the topological-insulator generator in `kpm-topo`, test
//! matrices, …) pushes `(row, col, value)` triplets in any order; the
//! builder sorts, merges duplicates and converts to CRS.

use kpm_num::Complex64;

use crate::crs::CrsMatrix;

/// A sparse matrix under construction, stored as unsorted triplets.
#[derive(Debug, Clone)]
pub struct CooMatrix {
    nrows: usize,
    ncols: usize,
    entries: Vec<(u32, u32, Complex64)>,
}

impl CooMatrix {
    /// Creates an empty `nrows x ncols` builder.
    pub fn new(nrows: usize, ncols: usize) -> Self {
        assert!(
            nrows <= u32::MAX as usize && ncols <= u32::MAX as usize,
            "COO builder uses 32-bit local indices (the paper's S_i = 4); dimension too large"
        );
        Self {
            nrows,
            ncols,
            entries: Vec::new(),
        }
    }

    /// Creates an empty builder with reserved capacity for `nnz` triplets.
    pub fn with_capacity(nrows: usize, ncols: usize, nnz: usize) -> Self {
        let mut m = Self::new(nrows, ncols);
        m.entries.reserve(nnz);
        m
    }

    /// Adds `value` at `(row, col)`. Duplicate coordinates are summed at
    /// conversion time.
    #[inline]
    pub fn push(&mut self, row: usize, col: usize, value: Complex64) {
        debug_assert!(row < self.nrows, "row {row} out of bounds");
        debug_assert!(col < self.ncols, "col {col} out of bounds");
        self.entries.push((row as u32, col as u32, value));
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of stored triplets (before duplicate merging).
    pub fn triplet_count(&self) -> usize {
        self.entries.len()
    }

    /// Converts to CRS, summing duplicates and dropping exact zeros that
    /// result from cancellation.
    pub fn to_crs(mut self) -> CrsMatrix {
        self.entries
            .sort_unstable_by_key(|&(r, c, _)| ((r as u64) << 32) | c as u64);

        let mut row_ptr = Vec::with_capacity(self.nrows + 1);
        let mut cols: Vec<u32> = Vec::with_capacity(self.entries.len());
        let mut vals: Vec<Complex64> = Vec::with_capacity(self.entries.len());
        row_ptr.push(0u64);

        let mut current_row = 0u32;
        let mut i = 0usize;
        while i < self.entries.len() {
            let (r, c, mut v) = self.entries[i];
            i += 1;
            while i < self.entries.len() && self.entries[i].0 == r && self.entries[i].1 == c {
                v += self.entries[i].2;
                i += 1;
            }
            while current_row < r {
                row_ptr.push(cols.len() as u64);
                current_row += 1;
            }
            if v != Complex64::default() {
                cols.push(c);
                vals.push(v);
            }
        }
        while row_ptr.len() < self.nrows + 1 {
            row_ptr.push(cols.len() as u64);
        }

        CrsMatrix::from_raw(self.nrows, self.ncols, row_ptr, cols, vals)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(re: f64) -> Complex64 {
        Complex64::real(re)
    }

    #[test]
    fn empty_matrix_converts() {
        let m = CooMatrix::new(3, 3).to_crs();
        assert_eq!(m.nrows(), 3);
        assert_eq!(m.nnz(), 0);
    }

    #[test]
    fn duplicates_are_summed() {
        let mut m = CooMatrix::new(2, 2);
        m.push(0, 1, c(1.0));
        m.push(0, 1, c(2.5));
        m.push(1, 0, c(-1.0));
        let crs = m.to_crs();
        assert_eq!(crs.nnz(), 2);
        assert_eq!(crs.get(0, 1), c(3.5));
        assert_eq!(crs.get(1, 0), c(-1.0));
    }

    #[test]
    fn cancellation_drops_entry() {
        let mut m = CooMatrix::new(2, 2);
        m.push(0, 0, c(1.0));
        m.push(0, 0, c(-1.0));
        m.push(1, 1, c(2.0));
        let crs = m.to_crs();
        assert_eq!(crs.nnz(), 1);
        assert_eq!(crs.get(0, 0), Complex64::default());
    }

    #[test]
    fn unsorted_input_sorts_rows_and_cols() {
        let mut m = CooMatrix::new(3, 3);
        m.push(2, 0, c(5.0));
        m.push(0, 2, c(1.0));
        m.push(1, 1, c(3.0));
        m.push(0, 0, c(2.0));
        let crs = m.to_crs();
        assert_eq!(crs.row_cols(0), &[0, 2]);
        assert_eq!(crs.row_cols(1), &[1]);
        assert_eq!(crs.row_cols(2), &[0]);
    }

    #[test]
    fn trailing_empty_rows_have_valid_ptrs() {
        let mut m = CooMatrix::new(5, 5);
        m.push(1, 1, c(1.0));
        let crs = m.to_crs();
        assert_eq!(crs.nnz(), 1);
        for r in 0..5 {
            let _ = crs.row_cols(r); // must not panic
        }
        assert!(crs.row_cols(4).is_empty());
    }

    #[test]
    fn complex_duplicate_merge() {
        let mut m = CooMatrix::new(1, 1);
        m.push(0, 0, Complex64::new(1.0, 2.0));
        m.push(0, 0, Complex64::new(3.0, -1.0));
        let crs = m.to_crs();
        assert_eq!(crs.get(0, 0), Complex64::new(4.0, 1.0));
    }
}
