//! The C/σ autotuner for the SELL-C-σ kernels.
//!
//! Picks the storage format (CRS or SELL with a concrete chunk height
//! `C` and sorting window `σ`), the parallel task granularity, and the
//! per-thread cache budget from three inputs:
//!
//! 1. the **row-length distribution** of the assembled matrix, from
//!    which the padding overhead `β` of every SELL shape is computed
//!    *analytically* (the window sort is simulated on the length list —
//!    no conversion is performed),
//! 2. the **machine envelope** ([`AutotuneEnv`]): thread count, memory
//!    bandwidth, peak compute and SIMD width, typically filled from the
//!    kpm-perfmodel machine catalog,
//! 3. optionally a short **empirical probe** that times the top
//!    analytic candidates on the real matrix to break model ties.
//!
//! The analytic score folds the fill-in penalty into the paper's
//! traffic terms (Eqs. 5–8 with `nnz` replaced by `nnz/β`) and models
//! the compute side as latency-limited for short dependency chains:
//! CRS processes one row at a time (a serial multiply–add chain), while
//! SELL-C advances `C` independent chains in lockstep, approaching the
//! machine's SIMD throughput as `C` reaches the SIMD width. The
//! crossover — padding traffic versus chain parallelism — is exactly
//! what the tuner resolves per matrix.
//!
//! Correctness is never at stake: every candidate computes bitwise-
//! identical moments (see [`crate::aug_sell`]), so the tuner is free to
//! pick aggressively.

use std::time::Instant;

use kpm_num::{BlockVector, Complex64, KpmError};

use crate::crs::CrsMatrix;
use crate::kernels::{FormatSpec, KpmMatrix, SparseKernels};
use crate::sell::SellMatrix;
use crate::stencil::StencilMatrix;

/// Chunk heights the tuner considers (powers of two up to a GPU warp).
pub const CANDIDATE_CHUNK_HEIGHTS: [usize; 5] = [1, 4, 8, 16, 32];

/// The machine envelope the tuner scores candidates against.
///
/// Plain numbers — typically filled from the kpm-perfmodel machine
/// catalog (`MachineModel::mem_bw_gbs` etc.), but kept free of that
/// dependency so the tuner can run standalone.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AutotuneEnv {
    /// Worker threads the solver will run with.
    pub threads: usize,
    /// Per-thread cache budget in bytes for the blocked tilings.
    pub cache_bytes_per_thread: usize,
    /// Achievable memory bandwidth in GB/s (all threads combined).
    pub mem_bw_gbs: f64,
    /// Peak double-precision rate in GF/s (all threads combined).
    pub peak_gflops: f64,
    /// SIMD lanes per double-precision operation (4 for AVX).
    pub simd_lanes: usize,
    /// Empirical probe sweeps per finalist (0 disables the probe).
    pub probe_reps: usize,
}

impl AutotuneEnv {
    /// A conservative single-socket default (IVB-class numbers) for
    /// callers without a machine model at hand. The SIMD width is the
    /// one quantity *this* binary knows better than any catalog: it is
    /// taken from [`crate::simd::lanes`] — the lane count the kernels
    /// were actually compiled with — instead of a hardcoded guess.
    pub fn generic(threads: usize) -> Self {
        Self {
            threads: threads.max(1),
            cache_bytes_per_thread: crate::tile::DEFAULT_CACHE_BYTES,
            mem_bw_gbs: 40.0,
            peak_gflops: 100.0,
            simd_lanes: crate::simd::lanes(),
            probe_reps: 0,
        }
    }

    /// Builder-style probe enablement.
    pub fn with_probe_reps(mut self, reps: usize) -> Self {
        self.probe_reps = reps;
        self
    }
}

/// The tuner's decision, with the model quantities that justified it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AutotuneChoice {
    /// The selected storage format.
    pub format: FormatSpec,
    /// Parallel task granularity for the SELL kernels (chunks per work
    /// item; ignored for CRS).
    pub chunks_per_task: usize,
    /// Per-thread cache budget (bytes) for the blocked tilings.
    pub cache_bytes: usize,
    /// Analytically predicted occupancy `β = nnz / stored`.
    pub predicted_beta: f64,
    /// Modeled seconds per augmented SpMV sweep (the score minimized).
    pub predicted_seconds: f64,
    /// True if an empirical probe confirmed or overrode the analytic
    /// ranking.
    pub probed: bool,
}

impl AutotuneChoice {
    /// Materializes the choice: converts `m` into the selected format
    /// and attaches the tuned scheduling knobs.
    pub fn build(&self, m: CrsMatrix) -> Result<KpmMatrix, KpmError> {
        let mut h = KpmMatrix::try_with_format(m, &self.format)?.with_cache_bytes(self.cache_bytes);
        h.set_chunks_per_task(self.chunks_per_task);
        Ok(h)
    }
}

/// One empirical probe measurement next to the model's view of the
/// same point — the validation record behind the bench JSON
/// `chain_gap` fields.
///
/// The chain fractions compare the model's FMA-chain term against what
/// the probe actually sustained: `chain_frac_model` is the analytic
/// `min(C / (lanes · latency), 1)`, `chain_frac_measured` is the
/// fraction of peak implied by the measured time under the same flop
/// count, and `chain_gap` is their difference — positive when the
/// model promised more chain parallelism than the run delivered.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProbePoint {
    /// The format this point timed.
    pub format: FormatSpec,
    /// Modeled seconds per sweep iteration.
    pub modeled_seconds: f64,
    /// Fastest measured seconds per sweep iteration.
    pub measured_seconds: f64,
    /// The model's chain fraction for this shape.
    pub chain_frac_model: f64,
    /// Fraction of peak the probe sustained (`flops / (peak · t)`,
    /// capped at 1).
    pub chain_frac_measured: f64,
    /// `chain_frac_model − chain_frac_measured`.
    pub chain_gap: f64,
}

/// Predicted stored-element count of SELL-C-σ for the given row-length
/// list: simulates the per-window descending sort and sums the chunk
/// maxima — exact, without building the matrix.
fn predicted_stored(row_lens: &[usize], c: usize, sigma: usize) -> usize {
    let mut lens = row_lens.to_vec();
    if sigma > 1 {
        for window in lens.chunks_mut(sigma) {
            window.sort_unstable_by(|a, b| b.cmp(a));
        }
    }
    lens.chunks(c)
        .map(|chunk| chunk.iter().copied().max().unwrap_or(0) * c)
        .sum()
}

/// FMA result latency in issue slots: how many independent
/// accumulation chains one lane needs in flight to saturate its
/// pipeline. A row's multiply–add chain is fully dependent, so CRS
/// (one chain) runs at `1/(lanes · latency)` of peak while SELL-C
/// interleaves `C` chains.
const FMA_LATENCY: f64 = 4.0;

/// Compute-side inflation of the matrix-free stencil kernels: each
/// entry is *regenerated* (neighbour lookup, insertion sort, merge)
/// rather than loaded, roughly doubling the per-entry instruction
/// stream. Biases the model against stencil when compute-bound and for
/// it when memory-bound — the trade the format exists to win.
const STENCIL_REGEN_FLOP_FACTOR: f64 = 2.0;

/// Modeled seconds of one augmented sweep *iteration* for a candidate.
///
/// Memory side: the Eq. 5-style traffic with the matrix term streaming
/// `stored` elements (padding included, 20 bytes each) once per
/// `power` iterations — the level-blocked matrix-power divisor; the
/// matrix-free stencil passes `stored = 0` and the term vanishes
/// outright. The three vector streams are paid every iteration.
/// Compute side: 8 flops per processed element (`flop_elems`, times
/// the regeneration factor for stencil) issued on `C` independent
/// chains; the effective rate is `peak · min(C / (L · latency), 1)`
/// for `L` SIMD lanes — the latency-bound single-chain CRS/stencil
/// limit versus SELL's lockstep chains. The FMA chain term is
/// unchanged by power blocking: the wavefront reorders iterations, not
/// the per-row dependency chain.
pub fn model_seconds_fmt(
    nrows: usize,
    flop_elems: usize,
    stored: usize,
    env: &AutotuneEnv,
    c: usize,
    power: usize,
    regen_factor: f64,
) -> f64 {
    const S_ELEM: f64 = 20.0; // value (16) + column index (4)
    const S_D: f64 = 16.0;
    let bytes = stored as f64 * S_ELEM / power.max(1) as f64 + 3.0 * nrows as f64 * S_D;
    let t_mem = bytes / (env.mem_bw_gbs.max(1e-9) * 1e9);
    let flops = (8.0 * flop_elems as f64) * regen_factor + 16.0 * nrows as f64;
    let lanes = env.simd_lanes.max(1) as f64;
    let chain_frac = (c as f64 / (lanes * FMA_LATENCY)).min(1.0);
    let t_comp = flops / (env.peak_gflops.max(1e-9) * 1e9 * chain_frac);
    t_mem.max(t_comp)
}

/// Modeled seconds of one augmented SpMV sweep for a CRS/SELL shape
/// (no power blocking).
fn model_seconds(nrows: usize, stored: usize, env: &AutotuneEnv, c: usize) -> f64 {
    model_seconds_fmt(nrows, stored, stored, env, c, 1, 1.0)
}

/// Task granularity for a SELL shape: enough work items to balance
/// `threads` workers (≥ 4 per worker) without over-fragmenting.
fn pick_chunks_per_task(n_chunks: usize, threads: usize) -> usize {
    (n_chunks / (4 * threads.max(1)).max(1)).clamp(1, 64)
}

/// Picks the storage format and scheduling knobs for `m` under `env`.
///
/// Never fails: degenerate inputs (empty matrix, more lanes than rows)
/// fall back to CRS. With `env.probe_reps > 0` the top analytic
/// finalists are additionally timed on the real matrix and the fastest
/// wins; otherwise the analytic ranking decides.
///
/// Shorthand for [`autotune_formats`] with no stencil source and no
/// power blocking.
pub fn autotune(m: &CrsMatrix, env: &AutotuneEnv) -> AutotuneChoice {
    autotune_formats(m, env, None, 1)
}

/// Picks among all three storage formats for `m` under `env`, at
/// matrix-power depth `power`.
///
/// `stencil` supplies the matrix-free representation when the operator
/// is a known lattice stencil; without one only CRS/SELL compete.
/// `power ≥ 2` divides the matrix-traffic term of the formats the
/// level-blocked kernels support (CRS and stencil) — SELL has no row
/// view and always streams per iteration. The empirical probe (when
/// enabled) still always times the CRS baseline, so a probed choice is
/// never slower than not tuning at all.
pub fn autotune_formats(
    m: &CrsMatrix,
    env: &AutotuneEnv,
    stencil: Option<&StencilMatrix>,
    power: usize,
) -> AutotuneChoice {
    autotune_formats_report(m, env, stencil, power).0
}

/// [`autotune_formats`] plus the per-finalist [`ProbePoint`] report:
/// one point per format the empirical probe timed (empty when
/// `env.probe_reps == 0`), so callers can compare the model's
/// chain-fraction prediction against the measurement it was validated
/// by. The choice itself is identical to [`autotune_formats`].
pub fn autotune_formats_report(
    m: &CrsMatrix,
    env: &AutotuneEnv,
    stencil: Option<&StencilMatrix>,
    power: usize,
) -> (AutotuneChoice, Vec<ProbePoint>) {
    let nrows = m.nrows();
    let nnz = m.nnz();
    let power = power.max(1);
    let row_lens: Vec<usize> = (0..nrows).map(|r| m.row_len(r)).collect();

    let mut candidates: Vec<(FormatSpec, usize, f64)> = Vec::new(); // (spec, stored, seconds)
    if stencil.is_some() {
        // Matrix-free: no stored elements, pure vector traffic;
        // regeneration inflates the compute side and the per-row chain
        // is as serial as CRS.
        let secs = model_seconds_fmt(nrows, nnz, 0, env, 1, power, STENCIL_REGEN_FLOP_FACTOR);
        candidates.push((FormatSpec::Stencil, 0, secs));
    }
    for &c in &CANDIDATE_CHUNK_HEIGHTS {
        if c > nrows.max(1) {
            continue;
        }
        if c == 1 {
            // SELL-1-1 is CRS; score it as the CRS baseline (with the
            // power divisor — CRS supports the level-blocked kernels).
            let secs = model_seconds_fmt(nrows, nnz, nnz, env, 1, power, 1.0);
            candidates.push((FormatSpec::Crs, nnz, secs));
            continue;
        }
        let mut seen_stored = usize::MAX;
        for sigma in [1, c, 4 * c, 16 * c] {
            if sigma > 1 && sigma.div_ceil(c) * c > nrows.next_multiple_of(c) {
                continue; // window larger than the matrix: no new info
            }
            let stored = predicted_stored(&row_lens, c, sigma);
            if stored >= seen_stored {
                continue; // a smaller window already achieved this fill
            }
            seen_stored = stored;
            let secs = model_seconds(nrows, stored, env, c);
            candidates.push((
                FormatSpec::Sell {
                    chunk_height: c,
                    sigma,
                },
                stored,
                secs,
            ));
        }
    }
    if candidates.is_empty() {
        candidates.push((FormatSpec::Crs, nnz, 0.0));
    }
    // Stable sort: on model ties the earlier (simpler: smaller C, then
    // smaller σ) candidate wins.
    candidates.sort_by(|a, b| a.2.total_cmp(&b.2));

    let mut best = candidates[0];
    let mut probed = false;
    let mut report = Vec::new();
    if env.probe_reps > 0 && nrows > 0 {
        let mut finalists: Vec<(FormatSpec, usize, f64)> =
            candidates.iter().copied().take(3).collect();
        // The probe measures the CRS baseline almost for free; always
        // include it so an empirical pick is never slower than not
        // tuning at all, even when the analytic model ranks CRS last.
        if !finalists.iter().any(|(f, _, _)| *f == FormatSpec::Crs) {
            if let Some(crs) = candidates.iter().find(|(f, _, _)| *f == FormatSpec::Crs) {
                finalists.push(*crs);
            }
        }
        let (win, points) = probe_finalists(m, &finalists, env, stencil, power);
        report = points;
        if let Some(win) = win {
            best = win;
            probed = true;
        }
    }

    let (format, stored, seconds) = best;
    let chunks_per_task = match format {
        FormatSpec::Crs | FormatSpec::Stencil => 1,
        FormatSpec::Sell { chunk_height, .. } => {
            pick_chunks_per_task(nrows.div_ceil(chunk_height), env.threads)
        }
    };
    let choice = AutotuneChoice {
        format,
        chunks_per_task,
        cache_bytes: env.cache_bytes_per_thread.max(1),
        predicted_beta: if stored == 0 {
            1.0
        } else {
            nnz as f64 / stored as f64
        },
        predicted_seconds: seconds,
        probed,
    };
    (choice, report)
}

/// Block width of the matrix-power probe: small enough to build
/// cheaply, wide enough that the wavefront's window reuse shows.
const PROBE_POWER_WIDTH: usize = 2;

/// Times the finalists on the real matrix and returns the fastest
/// (with its measured seconds substituted for the model's) plus one
/// [`ProbePoint`] per finalist actually timed.
///
/// At `power == 1` this times the single-vector augmented SpMV on the
/// bare format. At `power ≥ 2` it times the *actual* solver kernel —
/// [`SparseKernels::aug_spmmv_power`] on a [`KpmMatrix`] handle,
/// normalized per iteration — because the level-blocked wavefront only
/// exists behind the handle; probing the bare formats would always
/// miss the very effect the depth is meant to buy.
fn probe_finalists(
    m: &CrsMatrix,
    finalists: &[(FormatSpec, usize, f64)],
    env: &AutotuneEnv,
    stencil: Option<&StencilMatrix>,
    power: usize,
) -> (Option<(FormatSpec, usize, f64)>, Vec<ProbePoint>) {
    let n = m.nrows();
    // Deterministic, structureless probe vectors (no RNG dependency).
    let v: Vec<Complex64> = (0..n)
        .map(|i| Complex64::new(1.0 / (i + 1) as f64, 0.25 - (i % 7) as f64 * 0.05))
        .collect();
    let mut w = vec![Complex64::default(); n];
    let (mut vb, mut wb) = if power >= 2 {
        let mut vb = BlockVector::zeros(n, PROBE_POWER_WIDTH);
        let mut wb = BlockVector::zeros(n, PROBE_POWER_WIDTH);
        for (i, z) in v.iter().enumerate() {
            for j in 0..PROBE_POWER_WIDTH {
                vb.set(i, j, z.scale(1.0 + j as f64));
                wb.set(i, j, z.conj());
            }
        }
        (vb, wb)
    } else {
        (BlockVector::zeros(0, 1), BlockVector::zeros(0, 1))
    };
    let mut best: Option<(FormatSpec, usize, f64)> = None;
    let mut points = Vec::with_capacity(finalists.len());
    let width = if power >= 2 { PROBE_POWER_WIDTH } else { 1 } as f64;
    for &(spec, stored, modeled) in finalists {
        let handle = match spec {
            FormatSpec::Sell {
                chunk_height,
                sigma,
                // kpm::allow(hot_loop_convert): the probe intentionally builds each finalist once to time it.
            } => match SellMatrix::try_from_crs(m, chunk_height, sigma) {
                Ok(s) => KpmMatrix::sell(s),
                Err(_) => continue,
            },
            FormatSpec::Stencil => match stencil {
                Some(st) => KpmMatrix::stencil(st.clone()),
                None => continue,
            },
            FormatSpec::Crs => KpmMatrix::crs(m.clone()),
        };
        let handle = handle.with_cache_bytes(env.cache_bytes_per_thread.max(1));
        let mut fastest = f64::INFINITY;
        for _ in 0..env.probe_reps {
            let t0 = Instant::now();
            if power >= 2 {
                if env.threads > 1 {
                    handle.aug_spmmv_power_par(power, 0.5, 0.0, &mut vb, &mut wb);
                } else {
                    handle.aug_spmmv_power(power, 0.5, 0.0, &mut vb, &mut wb);
                }
            } else if env.threads > 1 {
                handle.aug_spmv_par(0.5, 0.0, &v, &mut w);
            } else {
                handle.aug_spmv(0.5, 0.0, &v, &mut w);
            }
            let per_iter = t0.elapsed().as_secs_f64() / power.max(1) as f64;
            fastest = fastest.min(per_iter);
        }
        let chunk_height = match spec {
            FormatSpec::Sell { chunk_height, .. } => chunk_height,
            _ => 1,
        };
        let regen = if spec == FormatSpec::Stencil {
            STENCIL_REGEN_FLOP_FACTOR
        } else {
            1.0
        };
        let flops = (8.0 * m.nnz() as f64 * regen + 16.0 * m.nrows() as f64) * width;
        let lanes = env.simd_lanes.max(1) as f64;
        let chain_frac_model = (chunk_height as f64 / (lanes * FMA_LATENCY)).min(1.0);
        let chain_frac_measured = if fastest.is_finite() && fastest > 0.0 {
            (flops / (env.peak_gflops.max(1e-9) * 1e9 * fastest)).min(1.0)
        } else {
            0.0
        };
        points.push(ProbePoint {
            format: spec,
            modeled_seconds: modeled,
            measured_seconds: fastest,
            chain_frac_model,
            chain_frac_measured,
            chain_gap: chain_frac_model - chain_frac_measured,
        });
        if best.is_none_or(|(_, _, t)| fastest < t) {
            best = Some((spec, stored, fastest));
        }
    }
    (best, points)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::CooMatrix;

    /// A matrix with uniform row lengths: SELL pads nothing.
    fn uniform_matrix(n: usize, len: usize) -> CrsMatrix {
        let mut coo = CooMatrix::new(n, n);
        for r in 0..n {
            for k in 0..len {
                coo.push(r, (r + k) % n, Complex64::real(1.0 + k as f64));
            }
        }
        coo.to_crs()
    }

    /// Alternating short/long rows: unsorted SELL pads heavily, a σ
    /// window ≥ the alternation period recovers most of it.
    fn ragged_matrix(n: usize) -> CrsMatrix {
        let mut coo = CooMatrix::new(n, n);
        for r in 0..n {
            let len = if r % 2 == 0 { 1 } else { 9 };
            for k in 0..len {
                coo.push(r, (r + k) % n, Complex64::real(1.0));
            }
        }
        coo.to_crs()
    }

    #[test]
    fn predicted_stored_matches_real_conversion() {
        for m in [uniform_matrix(100, 5), ragged_matrix(96)] {
            let lens: Vec<usize> = (0..m.nrows()).map(|r| m.row_len(r)).collect();
            for (c, sigma) in [(4usize, 1usize), (4, 16), (8, 8), (8, 32), (32, 32)] {
                let sell = SellMatrix::from_crs(&m, c, sigma);
                assert_eq!(
                    predicted_stored(&lens, c, sigma),
                    sell.stored_elements(),
                    "C={c} sigma={sigma}"
                );
            }
        }
    }

    #[test]
    fn sorting_window_improves_predicted_beta_on_ragged_rows() {
        let m = ragged_matrix(128);
        let lens: Vec<usize> = (0..m.nrows()).map(|r| m.row_len(r)).collect();
        let unsorted = predicted_stored(&lens, 8, 1);
        let sorted = predicted_stored(&lens, 8, 32);
        assert!(sorted < unsorted);
    }

    #[test]
    fn tuner_prefers_sell_when_compute_is_chain_limited() {
        // Uniform rows: no padding penalty, so the chain-parallelism
        // term makes any C > 1 strictly better than CRS in the model.
        let m = uniform_matrix(256, 7);
        let mut env = AutotuneEnv::generic(1);
        env.simd_lanes = 4; // pin: `generic` reports the build's real lanes
        let choice = autotune(&m, &env);
        assert_eq!(choice.format.name(), "sell");
        assert!((choice.predicted_beta - 1.0).abs() < 1e-12);
        assert!(choice.predicted_seconds > 0.0);
        assert!(!choice.probed);
    }

    #[test]
    fn tuner_falls_back_to_crs_on_hostile_padding() {
        // One very long row per 4-row group, lanes = 1: SELL buys no
        // chain parallelism but pays the padding traffic.
        let n = 64;
        let mut coo = CooMatrix::new(n, n);
        for r in 0..n {
            let len = if r % 4 == 0 { 32 } else { 1 };
            for k in 0..len {
                coo.push(r, (r + k) % n, Complex64::real(1.0));
            }
        }
        let m = coo.to_crs();
        let mut env = AutotuneEnv::generic(1);
        env.simd_lanes = 1; // no chain-parallelism reward
        let choice = autotune(&m, &env);
        assert_eq!(choice.format, FormatSpec::Crs);
        assert_eq!(choice.chunks_per_task, 1);
    }

    #[test]
    fn choice_builds_a_working_matrix() {
        let m = uniform_matrix(90, 5);
        let choice = autotune(&m, &AutotuneEnv::generic(2));
        let h = choice.build(m.clone()).unwrap();
        assert_eq!(SparseKernels::nrows(&h), 90);
        assert_eq!(SparseKernels::format(&h), choice.format);
        assert_eq!(h.cache_bytes(), choice.cache_bytes);
        // Moments stay bitwise-identical to CRS regardless of choice.
        let v: Vec<Complex64> = (0..90).map(|i| Complex64::real(0.01 * i as f64)).collect();
        let mut w1 = vec![Complex64::default(); 90];
        let mut w2 = w1.clone();
        let d1 = SparseKernels::aug_spmv(&m, 0.4, 0.1, &v, &mut w1);
        let d2 = SparseKernels::aug_spmv(&h, 0.4, 0.1, &v, &mut w2);
        assert_eq!(w1, w2);
        assert_eq!(d1, d2);
    }

    #[test]
    fn empirical_probe_runs_and_reports() {
        let m = uniform_matrix(200, 6);
        let env = AutotuneEnv::generic(1).with_probe_reps(2);
        let choice = autotune(&m, &env);
        assert!(choice.probed);
        assert!(choice.predicted_seconds.is_finite());
        // The probed winner must still build and agree with CRS.
        let h = choice.build(m.clone()).unwrap();
        let v: Vec<Complex64> = (0..200)
            .map(|i| Complex64::real(1.0 / (i + 1) as f64))
            .collect();
        let mut w1 = vec![Complex64::default(); 200];
        let mut w2 = w1.clone();
        assert_eq!(
            SparseKernels::aug_spmv(&m, 1.0, 0.0, &v, &mut w1),
            SparseKernels::aug_spmv(&h, 1.0, 0.0, &v, &mut w2)
        );
        assert_eq!(w1, w2);
    }

    #[test]
    fn probe_report_carries_chain_gap_per_point() {
        let m = uniform_matrix(200, 6);
        let env = AutotuneEnv::generic(1).with_probe_reps(2);
        let (choice, report) = autotune_formats_report(&m, &env, None, 1);
        assert!(choice.probed);
        assert!(!report.is_empty());
        // The CRS baseline is always in the probed set.
        assert!(report.iter().any(|p| p.format == FormatSpec::Crs));
        for p in &report {
            assert!(p.measured_seconds.is_finite() && p.measured_seconds > 0.0);
            assert!(p.modeled_seconds > 0.0);
            assert!((0.0..=1.0).contains(&p.chain_frac_model));
            assert!((0.0..=1.0).contains(&p.chain_frac_measured));
            let gap = p.chain_frac_model - p.chain_frac_measured;
            assert!((p.chain_gap - gap).abs() < 1e-15);
        }
        // Without the probe the report is empty and the choice agrees
        // with the plain entry point.
        let (analytic, empty) = autotune_formats_report(&m, &AutotuneEnv::generic(1), None, 1);
        assert!(empty.is_empty());
        assert_eq!(analytic, autotune(&m, &AutotuneEnv::generic(1)));
    }

    #[test]
    fn chunks_per_task_balances_threads() {
        assert_eq!(pick_chunks_per_task(1000, 4), 62);
        assert_eq!(pick_chunks_per_task(8, 4), 1);
        assert_eq!(pick_chunks_per_task(100_000, 1), 64);
    }

    /// A small TI-shaped stencil (diagonal hop blocks) plus its
    /// explicit CRS twin, for the format-grid tests.
    fn toy_stencil(nx: usize, ny: usize, nz: usize) -> (StencilMatrix, CrsMatrix) {
        let sites = nx * ny * nz;
        let onsite: Vec<[Complex64; 4]> = (0..sites)
            .map(|s| {
                let v = s as f64 * 0.125 - 1.0;
                [
                    Complex64::real(v + 2.0),
                    Complex64::real(v + 2.0),
                    Complex64::real(v - 2.0),
                    Complex64::real(v - 2.0),
                ]
            })
            .collect();
        let mut hop = [[[Complex64::default(); 4]; 4]; 6];
        for (b, block) in hop.iter_mut().enumerate() {
            for (o, row) in block.iter_mut().enumerate() {
                row[o] = Complex64::new(-0.5, 0.05 * b as f64);
            }
        }
        let st = StencilMatrix::new(nx, ny, nz, [true, true, false], onsite, &hop);
        let crs = st.to_crs();
        (st, crs)
    }

    #[test]
    fn stencil_wins_when_memory_bound() {
        // Starved bandwidth, ample compute: the matrix-traffic term
        // dominates and the matrix-free candidate (which pays none)
        // must win despite its regeneration flop inflation.
        let (st, m) = toy_stencil(4, 4, 6);
        let mut env = AutotuneEnv::generic(1);
        env.mem_bw_gbs = 1.0;
        env.peak_gflops = 10_000.0;
        let choice = autotune_formats(&m, &env, Some(&st), 1);
        assert_eq!(choice.format, FormatSpec::Stencil);
        assert_eq!(choice.chunks_per_task, 1);
        assert!((choice.predicted_beta - 1.0).abs() < 1e-12);
        // Without the stencil source the same envelope settles on CRS.
        let no_st = autotune_formats(&m, &env, None, 1);
        assert_ne!(no_st.format, FormatSpec::Stencil);
        assert!(choice.predicted_seconds < no_st.predicted_seconds);
    }

    #[test]
    fn power_blocking_divides_the_crs_matrix_traffic() {
        // Memory-bound envelope: the p-deep matrix-power divisor cuts
        // the modeled CRS score, and SELL (which has no level-blocked
        // kernels) gets no such discount — so deeper p keeps CRS ahead.
        let (_, m) = toy_stencil(4, 4, 6);
        let mut env = AutotuneEnv::generic(1);
        env.mem_bw_gbs = 1.0;
        env.peak_gflops = 10_000.0;
        let p1 = autotune_formats(&m, &env, None, 1);
        let p4 = autotune_formats(&m, &env, None, 4);
        assert_eq!(p1.format, FormatSpec::Crs);
        assert_eq!(p4.format, FormatSpec::Crs);
        assert!(
            p4.predicted_seconds < p1.predicted_seconds,
            "p=4 {} !< p=1 {}",
            p4.predicted_seconds,
            p1.predicted_seconds
        );
        // The discount is bounded by the vector streams, which are paid
        // every iteration: the score cannot drop below that floor.
        let vector_floor = 3.0 * m.nrows() as f64 * 16.0 / (env.mem_bw_gbs * 1e9);
        assert!(p4.predicted_seconds >= vector_floor);
    }

    #[test]
    fn probe_with_stencil_candidate_stays_sound() {
        // The empirical probe must time the matrix-free finalist
        // without crashing, keep the CRS baseline in the heat, and
        // return a choice the caller can act on (Stencil is built by
        // the caller from the lattice; everything else via build()).
        let (st, m) = toy_stencil(4, 4, 4);
        let mut env = AutotuneEnv::generic(1).with_probe_reps(2);
        env.mem_bw_gbs = 1.0;
        env.peak_gflops = 10_000.0; // analytic ranking puts stencil first
        let choice = autotune_formats(&m, &env, Some(&st), 2);
        assert!(choice.probed);
        assert!(choice.predicted_seconds.is_finite());
        match choice.format {
            FormatSpec::Stencil => assert!((choice.predicted_beta - 1.0).abs() < 1e-12),
            _ => {
                let h = choice.build(m.clone()).unwrap();
                assert_eq!(SparseKernels::nrows(&h), m.nrows());
            }
        }
    }

    #[test]
    fn build_rejects_the_matrix_free_format() {
        // A Stencil choice cannot be materialized from a bare CRS
        // matrix — the lattice is gone. The caller (the CLI) holds the
        // TopoHamiltonian and constructs the handle itself.
        let (st, m) = toy_stencil(3, 3, 3);
        let mut env = AutotuneEnv::generic(1);
        env.mem_bw_gbs = 1.0;
        env.peak_gflops = 10_000.0;
        let choice = autotune_formats(&m, &env, Some(&st), 1);
        assert_eq!(choice.format, FormatSpec::Stencil);
        assert!(choice.build(m).is_err());
    }
}
