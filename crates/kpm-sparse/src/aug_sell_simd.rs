//! Explicit SIMD lane mapping for the SELL-C-σ and blocked kernels.
//!
//! Two inner-loop shapes carry essentially all the flops of the hot
//! kernels, and both vectorize here:
//!
//! * **Lane dimension = chunk height `C`** ([`accum_chunk`]): a SELL
//!   chunk stores element `j` of lane `lane` at `base + j·C + lane`, so
//!   the `C` per-row accumulator chains advance in lockstep over
//!   *contiguous* value loads — exactly the layout SELL-C-σ exists for
//!   (Kreutzer et al., ref. [13]). Lanes are processed in groups of
//!   [`LANES`]; the `C mod LANES` leftover lanes run the scalar body.
//! * **Lane dimension = block width `r`** ([`axpy_row`]): the blocked
//!   kernels apply one matrix entry to a whole row of the block vector
//!   (`arow[k] += val·xrow[k]`); the `k` loop is elementwise-independent
//!   and vectorizes directly, with a scalar tail for `r mod LANES`.
//!
//! # Why this is bitwise-identical to the scalar kernels
//!
//! [`kpm_num::Complex64::mul_add`] is *not* fused: it computes
//! `re = a.re·b.re − a.im·b.im + c.re` (and the mirror image for `im`)
//! as plain IEEE-754 multiplies, subtract and add. The vector bodies
//! below deinterleave `re`/`im` into separate `f64` vectors and issue
//! the *same three-operation sequence elementwise* — never a fused
//! `Simd::mul_add` — so every lane computes the exact scalar bit
//! pattern. Per-lane accumulator chains are mutually independent, so
//! regrouping lanes into SIMD registers (and looping lane-groups outer,
//! `j` inner instead of `j` outer, lanes inner) permutes only
//! *independent* chains, never the order of operations *within* a
//! chain. Horizontal reductions never happen here at all: the fused
//! dot products stay in the callers' scalar replay loops, on the same
//! original-row-order CRS boundaries as before.
//!
//! Every vector loop is written with `chunks_exact` /
//! `remainder`-style tails; the `simd_scalar_tail` lint in kpm-analyze
//! keeps it that way.
//!
//! Without the `simd` cargo feature the vector bodies are compiled out
//! and the entry points run the scalar bodies only.

use kpm_num::Complex64;

#[cfg(feature = "simd")]
use std::simd::Simd;

/// `f64` lanes per SIMD register of the compiled variant: 8 with
/// AVX-512F, 4 otherwise (AVX/AVX2/NEON-class doubles), 1 for scalar
/// builds.
#[cfg(all(feature = "simd", target_feature = "avx512f"))]
pub const LANES: usize = 8;
/// `f64` lanes per SIMD register of the compiled variant: 8 with
/// AVX-512F, 4 otherwise (AVX/AVX2/NEON-class doubles), 1 for scalar
/// builds.
#[cfg(all(feature = "simd", not(target_feature = "avx512f")))]
pub const LANES: usize = 4;
/// `f64` lanes per SIMD register of the compiled variant: 8 with
/// AVX-512F, 4 otherwise (AVX/AVX2/NEON-class doubles), 1 for scalar
/// builds.
#[cfg(not(feature = "simd"))]
pub const LANES: usize = 1;

/// A `&[Complex64]` viewed as interleaved `re, im, re, im, …` doubles.
#[cfg(feature = "simd")]
#[inline(always)]
fn complex_as_f64(zs: &[Complex64]) -> &[f64] {
    // SAFETY: `Complex64` is `repr(C)` with exactly two `f64` fields
    // (`re`, `im`), so a slice of N complex values is layout- and
    // alignment-identical to a slice of 2N doubles at the same address.
    unsafe { std::slice::from_raw_parts(zs.as_ptr().cast::<f64>(), zs.len() * 2) }
}

/// Mutable twin of [`complex_as_f64`].
#[cfg(feature = "simd")]
#[inline(always)]
fn complex_as_f64_mut(zs: &mut [Complex64]) -> &mut [f64] {
    let n = zs.len() * 2;
    // SAFETY: same layout argument as `complex_as_f64`; the `&mut`
    // borrow of `zs` is consumed, so the views never alias.
    unsafe { std::slice::from_raw_parts_mut(zs.as_mut_ptr().cast::<f64>(), n) }
}

/// Accumulates one SELL chunk into its per-lane accumulators:
/// `acc[lane] = Σ_j vals[base + j·C + lane] · v[cols[base + j·C + lane]]`,
/// each lane running the exact CRS `mul_add` chain of its row (padding
/// entries are zero, so their plain multiply-adds are bitwise no-ops).
///
/// `use_simd` is hoisted by the caller (one [`crate::simd::active`]
/// read per kernel call); scalar builds ignore it.
#[inline]
#[allow(clippy::too_many_arguments)] // the SELL chunk layout tuple, passed flat
pub(crate) fn accum_chunk(
    cols: &[u32],
    vals: &[Complex64],
    base: usize,
    len: usize,
    c: usize,
    v: &[Complex64],
    acc: &mut [Complex64],
    use_simd: bool,
) {
    acc[..c].fill(Complex64::default());
    #[cfg(feature = "simd")]
    if use_simd {
        accum_chunk_vec(cols, vals, base, len, c, v, &mut acc[..c]);
        return;
    }
    let _ = use_simd;
    accum_chunk_scalar(cols, vals, base, len, c, v, acc);
}

/// Scalar body of [`accum_chunk`]: the original lockstep `j` outer /
/// lane inner loop of the SELL kernels, byte for byte.
#[inline]
fn accum_chunk_scalar(
    cols: &[u32],
    vals: &[Complex64],
    base: usize,
    len: usize,
    c: usize,
    v: &[Complex64],
    acc: &mut [Complex64],
) {
    for j in 0..len {
        let off = base + j * c;
        #[allow(clippy::needless_range_loop)] // lockstep lane loop
        for lane in 0..c {
            let col = cols[off + lane] as usize;
            let val = vals[off + lane];
            // Padding entries have val == 0, so the FMA is a no-op.
            acc[lane] = val.mul_add(v[col], acc[lane]);
        }
    }
}

/// Vector body of [`accum_chunk`]: lane groups of [`LANES`] rows advance
/// together, `j` innermost, accumulators living in registers for the
/// whole chunk. Matrix values load contiguously (column-major chunk);
/// the `x` operands gather through the column indices.
#[cfg(feature = "simd")]
fn accum_chunk_vec(
    cols: &[u32],
    vals: &[Complex64],
    base: usize,
    len: usize,
    c: usize,
    v: &[Complex64],
    acc: &mut [Complex64],
) {
    let mut lane0 = 0;
    let mut groups = acc.chunks_exact_mut(LANES);
    for group in groups.by_ref() {
        let mut a_re = Simd::<f64, LANES>::splat(0.0);
        let mut a_im = Simd::<f64, LANES>::splat(0.0);
        for j in 0..len {
            let off = base + j * c + lane0;
            let hf = complex_as_f64(&vals[off..off + LANES]);
            let lo = Simd::<f64, LANES>::from_slice(&hf[..LANES]);
            let hi = Simd::<f64, LANES>::from_slice(&hf[LANES..]);
            let (v_re, v_im) = lo.deinterleave(hi);
            let mut xr = [0.0; LANES];
            let mut xi = [0.0; LANES];
            #[allow(clippy::needless_range_loop)] // lane gather
            for k in 0..LANES {
                let x = v[cols[off + k] as usize];
                xr[k] = x.re;
                xi[k] = x.im;
            }
            let x_re = Simd::from_array(xr);
            let x_im = Simd::from_array(xi);
            // Elementwise (non-fused) replay of Complex64::mul_add:
            // re = v.re·x.re − v.im·x.im + a.re, im mirrored.
            a_re = v_re * x_re - v_im * x_im + a_re;
            a_im = v_re * x_im + v_im * x_re + a_im;
        }
        let (lo, hi) = a_re.interleave(a_im);
        let gf = complex_as_f64_mut(group);
        lo.copy_to_slice(&mut gf[..LANES]);
        hi.copy_to_slice(&mut gf[LANES..]);
        lane0 += LANES;
    }
    // Scalar tail: the C mod LANES lanes past the last full group run
    // the identical per-row chain one lane at a time.
    for (k, slot) in groups.into_remainder().iter_mut().enumerate() {
        let lane = lane0 + k;
        let mut a = Complex64::default();
        for j in 0..len {
            let off = base + j * c + lane;
            a = vals[off].mul_add(v[cols[off] as usize], a);
        }
        *slot = a;
    }
}

/// `arow[k] = val.mul_add(xrow[k], arow[k])` over one block-vector row —
/// the `r_width` inner loop of the blocked SELL and stencil kernels,
/// vectorized across the block width (elementwise-independent, so any
/// grouping is bitwise-safe). `use_simd` is hoisted by the caller.
#[inline]
pub(crate) fn axpy_row(val: Complex64, xrow: &[Complex64], arow: &mut [Complex64], use_simd: bool) {
    #[cfg(feature = "simd")]
    if use_simd {
        axpy_row_vec(val, xrow, arow);
        return;
    }
    let _ = use_simd;
    for (a, x) in arow.iter_mut().zip(xrow) {
        *a = val.mul_add(*x, *a);
    }
}

/// Vector body of [`axpy_row`]: broadcast `val`, deinterleave the row
/// into `re`/`im` vectors, issue the non-fused three-op sequence,
/// re-interleave. Scalar tail for the `r mod LANES` leftover columns.
#[cfg(feature = "simd")]
fn axpy_row_vec(val: Complex64, xrow: &[Complex64], arow: &mut [Complex64]) {
    let v_re = Simd::<f64, LANES>::splat(val.re);
    let v_im = Simd::<f64, LANES>::splat(val.im);
    let mut a_groups = arow.chunks_exact_mut(LANES);
    let mut x_groups = xrow.chunks_exact(LANES);
    for (ag, xg) in (&mut a_groups).zip(&mut x_groups) {
        let xf = complex_as_f64(xg);
        let xlo = Simd::<f64, LANES>::from_slice(&xf[..LANES]);
        let xhi = Simd::<f64, LANES>::from_slice(&xf[LANES..]);
        let (x_re, x_im) = xlo.deinterleave(xhi);
        let af = complex_as_f64_mut(ag);
        let alo = Simd::<f64, LANES>::from_slice(&af[..LANES]);
        let ahi = Simd::<f64, LANES>::from_slice(&af[LANES..]);
        let (a_re, a_im) = alo.deinterleave(ahi);
        let r_re = v_re * x_re - v_im * x_im + a_re;
        let r_im = v_re * x_im + v_im * x_re + a_im;
        let (lo, hi) = r_re.interleave(r_im);
        lo.copy_to_slice(&mut af[..LANES]);
        hi.copy_to_slice(&mut af[LANES..]);
    }
    for (a, x) in a_groups
        .into_remainder()
        .iter_mut()
        .zip(x_groups.remainder())
    {
        *a = val.mul_add(*x, *a);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cvec(n: usize, seed: u64) -> Vec<Complex64> {
        // Deterministic pseudo-random values without an RNG dependency.
        (0..n)
            .map(|i| {
                let t = (i as f64 + 1.0) * (seed as f64 + 0.5);
                Complex64::new((t * 0.7371).sin(), (t * 0.2931).cos())
            })
            .collect()
    }

    /// Builds a fake chunk: `c` lanes of `len` entries, column-major,
    /// with a few zero (padding-like) values sprinkled in.
    fn fake_chunk(c: usize, len: usize, n: usize) -> (Vec<u32>, Vec<Complex64>) {
        let mut cols = vec![0u32; c * len];
        let mut vals = vec![Complex64::default(); c * len];
        let zs = cvec(c * len, 3);
        for j in 0..len {
            for lane in 0..c {
                let idx = j * c + lane;
                cols[idx] = ((j * 31 + lane * 7) % n) as u32;
                if (j + lane) % 5 != 4 {
                    vals[idx] = zs[idx];
                }
            }
        }
        (cols, vals)
    }

    #[test]
    fn accum_chunk_simd_matches_scalar_bitwise() {
        let n = 64;
        let v = cvec(n, 9);
        for c in [1usize, 2, 3, 4, 5, 7, 8, 9, 16, 32] {
            for len in [0usize, 1, 3, 11] {
                let (cols, vals) = fake_chunk(c, len, n);
                let mut a_scalar = vec![Complex64::default(); c];
                let mut a_simd = vec![Complex64::default(); c];
                accum_chunk(&cols, &vals, 0, len, c, &v, &mut a_scalar, false);
                accum_chunk(&cols, &vals, 0, len, c, &v, &mut a_simd, true);
                assert_eq!(a_scalar, a_simd, "C={c} len={len}");
            }
        }
    }

    #[test]
    fn axpy_row_simd_matches_scalar_bitwise() {
        let val = Complex64::new(0.37, -1.21);
        for r in [1usize, 2, 3, 4, 5, 7, 8, 11, 16, 33] {
            let x = cvec(r, 21);
            let a0 = cvec(r, 22);
            let mut a_scalar = a0.clone();
            let mut a_simd = a0.clone();
            axpy_row(val, &x, &mut a_scalar, false);
            axpy_row(val, &x, &mut a_simd, true);
            assert_eq!(a_scalar, a_simd, "r={r}");
        }
    }

    #[test]
    fn padding_values_are_bitwise_noops() {
        // A zero matrix value must leave the accumulator untouched in
        // both bodies (the unblocked kernels rely on this).
        let v = cvec(8, 5);
        let cols = vec![0u32; 8];
        let vals = vec![Complex64::default(); 8];
        for use_simd in [false, true] {
            let mut acc = vec![Complex64::new(0.5, -0.25); 4];
            accum_chunk(&cols, &vals, 0, 2, 4, &v, &mut acc, use_simd);
            assert!(acc.iter().all(|z| *z == Complex64::default()));
        }
    }
}
