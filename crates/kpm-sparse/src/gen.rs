//! Width-specialized (unrolled) augmented kernels.
//!
//! Paper Section IV-B: "A custom code generator was used to create
//! fully unrolled versions of the kernel codes for different
//! combinations of the SELL chunk height and the block vector width."
//! Rust's const generics replace the external code generator: the
//! kernel is compiled once per block width `R`, with the inner
//! `for j in 0..R` loops fully unrollable and the row accumulator held
//! in a fixed-size array (registers, not memory). [`aug_spmmv_auto`]
//! dispatches to the specialization when one exists for the requested
//! width and falls back to the dynamic-width kernel otherwise — the
//! same structure as the paper's generated-kernel registry.

use kpm_num::BlockVector;
use kpm_obs::probe::{kernel_timer, KernelKind};

use crate::aug::{aug_spmmv, AugDotsBlock};
use crate::crs::CrsMatrix;

/// The block widths with compiled specializations (the paper generates
/// kernels for the widths its experiments sweep).
pub const SPECIALIZED_WIDTHS: [usize; 6] = [1, 2, 4, 8, 16, 32];

/// Augmented SpMMV with the block width fixed at compile time.
///
/// Identical semantics to [`crate::aug::aug_spmmv`]; the inner loops
/// run over `[Complex64; R]` so the optimizer unrolls and vectorizes
/// them (the hand-written AVX intrinsics of the paper's generator,
/// delegated to LLVM).
pub fn aug_spmmv_fixed<const R: usize>(
    h: &CrsMatrix,
    a: f64,
    b: f64,
    v: &BlockVector,
    w: &mut BlockVector,
) -> AugDotsBlock {
    assert_eq!(
        h.nrows(),
        h.ncols(),
        "augmented kernels need a square matrix"
    );
    assert_eq!(v.rows(), h.ncols(), "block v dimension mismatch");
    assert_eq!(w.rows(), h.nrows(), "block w dimension mismatch");
    assert_eq!(v.width(), R, "block width must equal the specialization");
    assert_eq!(w.width(), R, "block width must equal the specialization");
    let _probe = kernel_timer(KernelKind::AugSpmmv, h.nrows(), h.nnz(), R);

    let mut eta_even = [0.0f64; R];
    let mut eta_odd = [kpm_num::complex::ZERO; R];
    for r in 0..h.nrows() {
        let cols = h.row_cols(r);
        let vals = h.row_vals(r);
        let mut acc = [kpm_num::complex::ZERO; R];
        for (hv, &c) in vals.iter().zip(cols) {
            let xrow = v.row(c as usize);
            for j in 0..R {
                acc[j] = hv.mul_add(xrow[j], acc[j]);
            }
        }
        let vrow = v.row(r);
        let wrow = w.row_mut(r);
        for j in 0..R {
            let vr = vrow[j];
            let wr = (acc[j] - vr.scale(b)).scale(2.0 * a) - wrow[j];
            wrow[j] = wr;
            eta_even[j] += vr.norm_sqr();
            eta_odd[j] = wr.conj().mul_add(vr, eta_odd[j]);
        }
    }
    AugDotsBlock {
        eta_even: eta_even.to_vec(),
        eta_odd: eta_odd.to_vec(),
    }
}

/// Dispatching front end: uses the compile-time specialization for the
/// supported widths, the dynamic kernel otherwise. Semantically
/// identical either way.
pub fn aug_spmmv_auto(
    h: &CrsMatrix,
    a: f64,
    b: f64,
    v: &BlockVector,
    w: &mut BlockVector,
) -> AugDotsBlock {
    match v.width() {
        // Width 1 routes to the fused single-vector kernel via the
        // dynamic entry (identical flop chain, no block bookkeeping) —
        // the same dispatch the parallel blocked kernel performs.
        1 => aug_spmmv(h, a, b, v, w),
        2 => aug_spmmv_fixed::<2>(h, a, b, v, w),
        4 => aug_spmmv_fixed::<4>(h, a, b, v, w),
        8 => aug_spmmv_fixed::<8>(h, a, b, v, w),
        16 => aug_spmmv_fixed::<16>(h, a, b, v, w),
        32 => aug_spmmv_fixed::<32>(h, a, b, v, w),
        _ => aug_spmmv(h, a, b, v, w),
    }
}

/// True if a compiled specialization exists for width `r`.
pub fn has_specialization(r: usize) -> bool {
    SPECIALIZED_WIDTHS.contains(&r)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::CooMatrix;
    use kpm_num::Complex64;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_hermitian(n: usize, seed: u64) -> CrsMatrix {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut coo = CooMatrix::new(n, n);
        for r in 0..n {
            coo.push(r, r, Complex64::real(rng.gen_range(-1.0..1.0)));
            for _ in 0..3 {
                let c = rng.gen_range(0..n);
                if c != r {
                    let v = Complex64::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0));
                    coo.push(r, c, v);
                    coo.push(c, r, v.conj());
                }
            }
        }
        coo.to_crs()
    }

    #[test]
    fn every_specialization_matches_dynamic_kernel() {
        let n = 120;
        let h = random_hermitian(n, 100);
        let mut rng = StdRng::seed_from_u64(101);
        for &r in &SPECIALIZED_WIDTHS {
            let v = BlockVector::random(n, r, &mut rng);
            let w0 = BlockVector::random(n, r, &mut rng);
            let mut w_dyn = w0.clone();
            let mut w_fix = w0;
            let d_dyn = aug_spmmv(&h, 0.4, -0.15, &v, &mut w_dyn);
            let d_fix = aug_spmmv_auto(&h, 0.4, -0.15, &v, &mut w_fix);
            assert_eq!(w_dyn, w_fix, "R={r}");
            for j in 0..r {
                assert!(
                    (d_dyn.eta_even[j] - d_fix.eta_even[j]).abs() < 1e-13,
                    "R={r}"
                );
                assert!(d_dyn.eta_odd[j].approx_eq(d_fix.eta_odd[j], 1e-13), "R={r}");
            }
        }
    }

    #[test]
    fn unsupported_width_falls_back() {
        assert!(!has_specialization(5));
        let n = 60;
        let h = random_hermitian(n, 102);
        let mut rng = StdRng::seed_from_u64(103);
        let v = BlockVector::random(n, 5, &mut rng);
        let w0 = BlockVector::random(n, 5, &mut rng);
        let mut w_dyn = w0.clone();
        let mut w_auto = w0;
        let d1 = aug_spmmv(&h, 1.0, 0.0, &v, &mut w_dyn);
        let d2 = aug_spmmv_auto(&h, 1.0, 0.0, &v, &mut w_auto);
        assert_eq!(w_dyn, w_auto);
        assert_eq!(d1, d2);
    }

    #[test]
    #[should_panic(expected = "block width must equal the specialization")]
    fn wrong_width_rejected() {
        let h = random_hermitian(10, 104);
        let mut rng = StdRng::seed_from_u64(105);
        let v = BlockVector::random(10, 4, &mut rng);
        let mut w = BlockVector::random(10, 4, &mut rng);
        aug_spmmv_fixed::<8>(&h, 1.0, 0.0, &v, &mut w);
    }

    #[test]
    fn registry_is_consistent() {
        for &r in &SPECIALIZED_WIDTHS {
            assert!(has_specialization(r));
        }
        assert!(!has_specialization(0));
        assert!(!has_specialization(64));
    }
}
