//! Sparsity-structure analysis.
//!
//! The paper characterizes its matrices structurally: "Characteristic
//! for these applications is the presence of several sub-diagonals in
//! the matrix. Periodic boundary conditions in the x and y directions
//! lead to outlying diagonals in the matrix corners. In the present
//! example, the matrix is a stencil but not a band matrix." This module
//! computes exactly those properties, so a user can verify what kind of
//! matrix a workload produces (and tests pin the topological-insulator
//! structure down).

use std::collections::HashMap;

use crate::crs::CrsMatrix;

/// One detected (sub-)diagonal of the sparsity pattern.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiagonalInfo {
    /// Column minus row offset of the diagonal.
    pub offset: i64,
    /// Number of stored entries on it.
    pub count: usize,
    /// Fraction of the maximum possible occupancy of this diagonal.
    pub occupancy: f64,
}

/// Structural summary of a sparse matrix.
#[derive(Debug, Clone)]
pub struct MatrixStats {
    /// Row count.
    pub nrows: usize,
    /// Column count.
    pub ncols: usize,
    /// Non-zeros.
    pub nnz: usize,
    /// Minimum row length.
    pub min_row_len: usize,
    /// Maximum row length.
    pub max_row_len: usize,
    /// Average row length (the paper's `N_nzr`).
    pub avg_row_len: f64,
    /// Matrix bandwidth `max |col - row|`.
    pub bandwidth: usize,
    /// Diagonals with occupancy above the detection threshold, sorted
    /// by descending count.
    pub diagonals: Vec<DiagonalInfo>,
    /// Histogram of row lengths: `histogram[len] = number of rows`.
    pub row_len_histogram: Vec<usize>,
}

impl MatrixStats {
    /// True if every stored entry lies on one of the detected
    /// diagonals — i.e. the matrix is a (generalized) stencil.
    pub fn is_stencil(&self) -> bool {
        let on_diagonals: usize = self.diagonals.iter().map(|d| d.count).sum();
        on_diagonals == self.nnz
    }

    /// True if the matrix is a band matrix of the given half width
    /// (everything within `|col - row| <= half_width`).
    pub fn is_band_matrix(&self, half_width: usize) -> bool {
        self.bandwidth <= half_width
    }

    /// Diagonal offsets carrying fewer than `threshold · nrows`
    /// entries — the short "outlying diagonals in the matrix corners"
    /// produced by periodic boundary wrap-arounds (each wrap touches
    /// only one lattice plane, so its diagonal is far shorter than the
    /// matrix dimension).
    pub fn corner_diagonals(&self, threshold: f64) -> Vec<i64> {
        self.diagonals
            .iter()
            .filter(|d| (d.count as f64) < threshold * self.nrows as f64)
            .map(|d| d.offset)
            .collect()
    }
}

/// Analyzes the sparsity structure of `m`. Diagonals with fewer than
/// `min_count` entries are not reported (they are scattered entries,
/// not structure).
pub fn analyze(m: &CrsMatrix, min_count: usize) -> MatrixStats {
    let mut diag_counts: HashMap<i64, usize> = HashMap::new();
    let mut min_row_len = usize::MAX;
    let mut max_row_len = 0usize;
    let mut bandwidth = 0usize;
    let mut row_len_histogram = Vec::new();
    for r in 0..m.nrows() {
        let len = m.row_len(r);
        min_row_len = min_row_len.min(len);
        max_row_len = max_row_len.max(len);
        if row_len_histogram.len() <= len {
            row_len_histogram.resize(len + 1, 0);
        }
        row_len_histogram[len] += 1;
        for &c in m.row_cols(r) {
            let off = c as i64 - r as i64;
            bandwidth = bandwidth.max(off.unsigned_abs() as usize);
            *diag_counts.entry(off).or_insert(0) += 1;
        }
    }
    if m.nrows() == 0 {
        min_row_len = 0;
    }

    let mut diagonals: Vec<DiagonalInfo> = diag_counts
        .into_iter()
        .filter(|&(_, count)| count >= min_count)
        .map(|(offset, count)| {
            // Maximum possible entries on this diagonal.
            let max_len = if offset >= 0 {
                m.nrows().min(m.ncols().saturating_sub(offset as usize))
            } else {
                m.ncols().min(m.nrows().saturating_sub((-offset) as usize))
            };
            DiagonalInfo {
                offset,
                count,
                occupancy: count as f64 / max_len.max(1) as f64,
            }
        })
        .collect();
    diagonals.sort_by(|a, b| b.count.cmp(&a.count).then(a.offset.cmp(&b.offset)));

    MatrixStats {
        nrows: m.nrows(),
        ncols: m.ncols(),
        nnz: m.nnz(),
        min_row_len,
        max_row_len,
        avg_row_len: m.avg_nnz_per_row(),
        bandwidth,
        diagonals,
        row_len_histogram,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::CooMatrix;
    use kpm_num::Complex64;

    fn tridiag(n: usize) -> CrsMatrix {
        let mut coo = CooMatrix::new(n, n);
        for i in 0..n {
            coo.push(i, i, Complex64::real(2.0));
            if i + 1 < n {
                coo.push(i, i + 1, Complex64::real(-1.0));
                coo.push(i + 1, i, Complex64::real(-1.0));
            }
        }
        coo.to_crs()
    }

    #[test]
    fn tridiagonal_structure_detected() {
        let stats = analyze(&tridiag(50), 2);
        assert_eq!(stats.bandwidth, 1);
        assert!(stats.is_band_matrix(1));
        assert!(stats.is_stencil());
        let offsets: Vec<i64> = stats.diagonals.iter().map(|d| d.offset).collect();
        assert_eq!(offsets, vec![0, -1, 1]);
        assert_eq!(stats.min_row_len, 2);
        assert_eq!(stats.max_row_len, 3);
    }

    #[test]
    fn row_length_histogram_sums_to_nrows() {
        let stats = analyze(&tridiag(33), 1);
        let total: usize = stats.row_len_histogram.iter().sum();
        assert_eq!(total, 33);
        assert_eq!(stats.row_len_histogram[3], 31);
        assert_eq!(stats.row_len_histogram[2], 2);
    }

    #[test]
    fn corner_diagonals_from_periodic_wraps() {
        // Periodic ring: offsets -1, +1 fully occupied; wrap entries at
        // offsets n-1 and -(n-1) occupy a single element each — the
        // "matrix corner" diagonals.
        let n = 20;
        let mut coo = CooMatrix::new(n, n);
        for i in 0..n {
            let j = (i + 1) % n;
            coo.push(i, j, Complex64::real(1.0));
            coo.push(j, i, Complex64::real(1.0));
        }
        let stats = analyze(&coo.to_crs(), 1);
        let corners = stats.corner_diagonals(0.5);
        assert!(corners.contains(&(n as i64 - 1)));
        assert!(corners.contains(&-(n as i64 - 1)));
        // The bulk diagonals are not corners.
        assert!(!corners.contains(&1));
        assert!(!corners.contains(&-1));
        // Ring is a stencil but NOT a band matrix of small width.
        assert!(stats.is_stencil());
        assert!(!stats.is_band_matrix(2));
    }

    #[test]
    fn min_count_filters_scattered_entries() {
        let mut coo = CooMatrix::new(10, 10);
        for i in 0..10 {
            coo.push(i, i, Complex64::real(1.0));
        }
        coo.push(0, 7, Complex64::real(1.0)); // lone scattered entry
        let stats = analyze(&coo.to_crs(), 2);
        assert_eq!(stats.diagonals.len(), 1); // only the main diagonal
        assert!(!stats.is_stencil()); // the stray entry is off-structure
    }

    #[test]
    fn empty_matrix() {
        let stats = analyze(&CooMatrix::new(0, 0).to_crs(), 1);
        assert_eq!(stats.nnz, 0);
        assert_eq!(stats.min_row_len, 0);
        assert!(stats.diagonals.is_empty());
    }
}
