//! SELL-C-σ: the unified SIMD/SIMT sparse format.
//!
//! SELL-C-σ (Kreutzer et al., SIAM J. Sci. Comput. 36(5), 2014 — ref. [13]
//! of the paper) packs rows into *chunks* of height `C`; within a chunk
//! all rows are padded to the chunk's maximum length and stored
//! column-major, so a SIMD unit (or GPU warp) of width `C` processes `C`
//! rows in lockstep. To limit zero fill-in, rows are sorted by descending
//! length within windows of `σ` consecutive rows before chunking.
//!
//! `SELL-1-1` is exactly CRS. For the augmented SpMMV kernels of the
//! paper CRS suffices (vectorization happens across the block vector),
//! but single-vector SpMV benefits from `C` equal to the SIMD width —
//! this module exists both for that kernel and for the format ablation
//! benches.

use kpm_num::{BlockVector, Complex64};
use kpm_obs::probe::{kernel_timer_fmt, KernelKind, ProbeFormat};
use rayon::prelude::*;

use crate::aug_sell_simd::{accum_chunk, axpy_row};
use crate::crs::CrsMatrix;
use crate::placement::{self, Placement, RangePtr};

/// Default for how many SELL chunks one parallel work item processes:
/// amortizes the per-item accumulator allocation and scheduling cost
/// while leaving enough items for load balancing. Thread-count
/// independent (the grouping never moves a computation between chunks),
/// so the parallel kernels write exactly what the serial ones write for
/// *any* grouping — which is why the autotuner may retune it freely.
pub const DEFAULT_CHUNKS_PER_TASK: usize = 16;

/// Shared write handle for the scattered `y` updates of the parallel
/// SELL kernels.
///
/// Each SELL chunk writes the output rows `perm[lo..hi]` of its own row
/// window, and `perm` is a permutation — so distinct chunks touch
/// pairwise-disjoint output rows and the raw stores below never alias.
pub(crate) struct ScatterPtr(pub(crate) *mut Complex64);

// SAFETY: the pointer is only dereferenced at indices derived from a
// permutation partitioned across tasks (disjoint writes, see above),
// and `Complex64` is `Send`.
unsafe impl Send for ScatterPtr {}
// SAFETY: see the `Send` impl above.
unsafe impl Sync for ScatterPtr {}

/// A sparse matrix in SELL-C-σ format.
#[derive(Debug, Clone)]
pub struct SellMatrix {
    nrows: usize,
    ncols: usize,
    nnz: usize,
    chunk_height: usize,
    sigma: usize,
    /// Parallel task granularity in chunks (tunable; never affects
    /// results, only scheduling).
    chunks_per_task: usize,
    /// `perm[i]` = original row stored at SELL row `i`.
    pub(crate) perm: Vec<u32>,
    /// Chunk start offsets into `cols`/`vals`; length = n_chunks + 1.
    pub(crate) chunk_ptr: Vec<u64>,
    /// Per-chunk padded row length.
    pub(crate) chunk_len: Vec<u32>,
    /// Column indices, column-major within each chunk, zero-padded.
    pub(crate) cols: Vec<u32>,
    /// Values, column-major within each chunk, zero-padded.
    pub(crate) vals: Vec<Complex64>,
}

impl SellMatrix {
    /// Converts a CRS matrix to SELL-C-σ.
    ///
    /// `chunk_height` is `C` (the SIMD/warp width); `sigma` is the
    /// sorting window in rows and must be a multiple of `chunk_height`
    /// (or 1 for no sorting).
    pub fn from_crs(crs: &CrsMatrix, chunk_height: usize, sigma: usize) -> Self {
        // kpm::allow(no_panic): documented panicking wrapper; the fallible
        // path is try_from_crs.
        Self::try_from_crs(crs, chunk_height, sigma).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible variant of [`SellMatrix::from_crs`]: returns
    /// `Err(KpmError::InvalidParams)` on a bad `C`/`σ` combination
    /// instead of panicking.
    pub fn try_from_crs(
        crs: &CrsMatrix,
        chunk_height: usize,
        sigma: usize,
    ) -> Result<Self, kpm_num::KpmError> {
        Self::try_from_crs_placed(crs, chunk_height, sigma, Placement::Caller)
    }

    /// [`SellMatrix::try_from_crs`] with an explicit [`Placement`]: with
    /// [`Placement::FirstTouch`] the chunk arrays are allocated
    /// untouched and each group of [`DEFAULT_CHUNKS_PER_TASK`] chunks is
    /// filled by its pinned pool worker (group `g` → worker
    /// `g % threads`), so pages land on the NUMA node that streams
    /// them. The stored bytes are identical either way.
    pub fn try_from_crs_placed(
        crs: &CrsMatrix,
        chunk_height: usize,
        sigma: usize,
        placement: Placement,
    ) -> Result<Self, kpm_num::KpmError> {
        if chunk_height < 1 {
            return Err(kpm_num::KpmError::InvalidParams {
                what: "chunk_height",
                details: "chunk height must be >= 1".to_string(),
            });
        }
        if sigma != 1 && !sigma.is_multiple_of(chunk_height) {
            return Err(kpm_num::KpmError::InvalidParams {
                what: "sigma",
                details: format!(
                    "sigma must be 1 or a multiple of the chunk height (sigma = {sigma}, C = {chunk_height})"
                ),
            });
        }
        let nrows = crs.nrows();

        // Sort rows by descending length within sigma-windows.
        let mut perm: Vec<u32> = (0..nrows as u32).collect();
        if sigma > 1 {
            for window in perm.chunks_mut(sigma) {
                window.sort_by_key(|&r| std::cmp::Reverse(crs.row_len(r as usize)));
            }
        }

        let n_chunks = nrows.div_ceil(chunk_height);
        let mut chunk_ptr = Vec::with_capacity(n_chunks + 1);
        let mut chunk_len = Vec::with_capacity(n_chunks);
        chunk_ptr.push(0u64);
        let mut total = 0u64;
        for ci in 0..n_chunks {
            let lo = ci * chunk_height;
            let hi = (lo + chunk_height).min(nrows);
            let maxlen = (lo..hi)
                .map(|i| crs.row_len(perm[i] as usize))
                .max()
                .unwrap_or(0) as u32;
            chunk_len.push(maxlen);
            total += maxlen as u64 * chunk_height as u64;
            chunk_ptr.push(total);
        }

        let mut cols = placement::zeroed_vec::<u32>(total as usize);
        let mut vals = placement::zeroed_vec::<Complex64>(total as usize);
        match placement {
            Placement::Caller => {
                for ci in 0..n_chunks {
                    let (lo, hi) = (chunk_ptr[ci] as usize, chunk_ptr[ci + 1] as usize);
                    fill_chunk(
                        crs,
                        &perm,
                        nrows,
                        chunk_height,
                        ci,
                        &mut cols[lo..hi],
                        &mut vals[lo..hi],
                    );
                }
            }
            Placement::FirstTouch => {
                let groups = n_chunks.div_ceil(DEFAULT_CHUNKS_PER_TASK);
                let col_out = RangePtr(cols.as_mut_ptr());
                let val_out = RangePtr(vals.as_mut_ptr());
                let (col_out, val_out) = (&col_out, &val_out);
                let (perm_ref, ptr_ref) = (&perm, &chunk_ptr);
                rayon::run_pinned(groups, |g| {
                    let clo = g * DEFAULT_CHUNKS_PER_TASK;
                    let chi = (clo + DEFAULT_CHUNKS_PER_TASK).min(n_chunks);
                    for ci in clo..chi {
                        let lo = ptr_ref[ci] as usize;
                        let n = (ptr_ref[ci + 1] - ptr_ref[ci]) as usize;
                        // SAFETY: chunk element spans
                        // [chunk_ptr[ci], chunk_ptr[ci+1]) are pairwise
                        // disjoint across chunks, chunks are partitioned
                        // disjointly across parts, and `cols`/`vals`
                        // outlive the blocking `run_pinned` call.
                        let (ccols, cvals) = unsafe {
                            (
                                std::slice::from_raw_parts_mut(col_out.0.add(lo), n),
                                std::slice::from_raw_parts_mut(val_out.0.add(lo), n),
                            )
                        };
                        fill_chunk(crs, perm_ref, nrows, chunk_height, ci, ccols, cvals);
                    }
                });
            }
        }

        Ok(Self {
            nrows,
            ncols: crs.ncols(),
            nnz: crs.nnz(),
            chunk_height,
            sigma,
            chunks_per_task: DEFAULT_CHUNKS_PER_TASK,
            perm,
            chunk_ptr,
            chunk_len,
            cols,
            vals,
        })
    }

    /// Re-places the chunk arrays with first-touch ownership: fresh
    /// untouched allocations, each chunk-group range (the granularity
    /// the parallel kernels stream at) copied into place by its pinned
    /// worker. Contents are bitwise-unchanged; only page placement
    /// moves. Used by [`crate::kernels::KpmMatrix::with_first_touch`]
    /// on an already-built matrix.
    pub fn first_touch_refault(&mut self) {
        let n_chunks = self.chunk_ptr.len().saturating_sub(1);
        let cpt = self.chunks_per_task.max(1);
        let groups = n_chunks.div_ceil(cpt).max(1);
        let ptr = &self.chunk_ptr;
        let range_of = |g: usize| {
            let clo = (g * cpt).min(n_chunks);
            let chi = (clo + cpt).min(n_chunks);
            (ptr[clo] as usize, ptr[chi] as usize)
        };
        self.cols = placement::refault_copy_by(&self.cols, groups, range_of);
        self.vals = placement::refault_copy_by(&self.vals, groups, range_of);
    }

    /// Parallel task granularity: how many chunks one work item of the
    /// `*_par` kernels processes.
    pub fn chunks_per_task(&self) -> usize {
        self.chunks_per_task
    }

    /// Sets the parallel task granularity (clamped to >= 1). Purely a
    /// scheduling knob: any value yields bitwise-identical results
    /// because the grouping never moves a computation between chunks.
    pub fn set_chunks_per_task(&mut self, chunks: usize) {
        self.chunks_per_task = chunks.max(1);
    }

    /// Builder form of [`SellMatrix::set_chunks_per_task`].
    pub fn with_chunks_per_task(mut self, chunks: usize) -> Self {
        self.set_chunks_per_task(chunks);
        self
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of logical non-zeros (excluding fill-in padding).
    pub fn nnz(&self) -> usize {
        self.nnz
    }

    /// The chunk height `C`.
    pub fn chunk_height(&self) -> usize {
        self.chunk_height
    }

    /// The sorting window `σ`.
    pub fn sigma(&self) -> usize {
        self.sigma
    }

    /// Number of stored elements including zero fill-in.
    pub fn stored_elements(&self) -> usize {
        self.vals.len()
    }

    /// Chunk occupancy `β = nnz / stored` ∈ (0, 1]; 1 means no fill-in.
    pub fn beta(&self) -> f64 {
        if self.vals.is_empty() {
            1.0
        } else {
            self.nnz as f64 / self.vals.len() as f64
        }
    }

    /// Sparse matrix-vector multiplication `y = A x` in SELL order:
    /// chunks are processed column-by-column so all `C` lanes advance in
    /// lockstep, mirroring the SIMD/SIMT execution of the paper.
    pub fn spmv(&self, x: &[Complex64], y: &mut [Complex64]) {
        assert_eq!(x.len(), self.ncols, "spmv: x dimension mismatch");
        assert_eq!(y.len(), self.nrows, "spmv: y dimension mismatch");
        let _probe = kernel_timer_fmt(
            KernelKind::Spmv,
            self.nrows,
            self.nnz,
            1,
            self.stored_elements(),
            ProbeFormat::Sell,
        );
        let c = self.chunk_height;
        let n_chunks = self.chunk_ptr.len() - 1;
        let use_simd = crate::simd::active();
        let mut acc = vec![Complex64::default(); c];
        for ci in 0..n_chunks {
            let base = self.chunk_ptr[ci] as usize;
            let len = self.chunk_len[ci] as usize;
            accum_chunk(&self.cols, &self.vals, base, len, c, x, &mut acc, use_simd);
            let lo = ci * c;
            #[allow(clippy::needless_range_loop)] // lockstep lane loop
            for lane in 0..c {
                let sell_row = lo + lane;
                if sell_row < self.nrows {
                    y[self.perm[sell_row] as usize] = acc[lane];
                }
            }
        }
    }

    /// Sparse matrix *multiple* vector multiplication `Y = A X` over
    /// row-major blocks in SELL order.
    ///
    /// Provided to *demonstrate* the paper's Section IV-A observation:
    /// for SpMMV, vectorization happens across the block vector, so the
    /// SIMD-aware SELL layout buys nothing over CRS and its fill-in
    /// (beta < 1) makes it strictly more expensive -- see the
    /// `bench_formats` ablation.
    pub fn spmmv(&self, x: &BlockVector, y: &mut BlockVector) {
        assert_eq!(x.rows(), self.ncols, "spmmv: x dimension mismatch");
        assert_eq!(y.rows(), self.nrows, "spmmv: y dimension mismatch");
        assert_eq!(x.width(), y.width(), "spmmv: block width mismatch");
        let _probe = kernel_timer_fmt(
            KernelKind::Spmv,
            self.nrows,
            self.nnz,
            x.width(),
            self.stored_elements(),
            ProbeFormat::Sell,
        );
        let c = self.chunk_height;
        let r_width = x.width();
        let n_chunks = self.chunk_ptr.len() - 1;
        let use_simd = crate::simd::active();
        let mut acc = vec![Complex64::default(); c * r_width];
        for ci in 0..n_chunks {
            let base = self.chunk_ptr[ci] as usize;
            let len = self.chunk_len[ci] as usize;
            acc.fill(Complex64::default());
            for j in 0..len {
                let off = base + j * c;
                for lane in 0..c {
                    let val = self.vals[off + lane];
                    if val == Complex64::default() {
                        continue; // padding
                    }
                    let col = self.cols[off + lane] as usize;
                    let xrow = x.row(col);
                    let arow = &mut acc[lane * r_width..(lane + 1) * r_width];
                    axpy_row(val, xrow, arow, use_simd);
                }
            }
            let lo = ci * c;
            #[allow(clippy::needless_range_loop)] // lockstep lane loop
            for lane in 0..c {
                let sell_row = lo + lane;
                if sell_row < self.nrows {
                    let orig = self.perm[sell_row] as usize;
                    y.row_mut(orig)
                        .copy_from_slice(&acc[lane * r_width..(lane + 1) * r_width]);
                }
            }
        }
    }

    /// Chunk-parallel SELL SpMV.
    ///
    /// The chunk space is partitioned statically into groups of
    /// [`SellMatrix::chunks_per_task`]; each group runs the same
    /// lockstep loop as the serial kernel, so every output value is
    /// computed by the identical floating-point sequence — the result
    /// is bitwise-identical to [`SellMatrix::spmv`] for any thread
    /// count and any task granularity. Output rows are disjoint across
    /// chunks because `perm` is a permutation, which is what makes the
    /// scattered parallel writes sound.
    pub fn spmv_par(&self, x: &[Complex64], y: &mut [Complex64]) {
        assert_eq!(x.len(), self.ncols, "spmv_par: x dimension mismatch");
        assert_eq!(y.len(), self.nrows, "spmv_par: y dimension mismatch");
        let _probe = kernel_timer_fmt(
            KernelKind::Spmv,
            self.nrows,
            self.nnz,
            1,
            self.stored_elements(),
            ProbeFormat::Sell,
        );
        let c = self.chunk_height;
        let cpt = self.chunks_per_task;
        let use_simd = crate::simd::active();
        let y_out = ScatterPtr(y.as_mut_ptr());
        let y_out = &y_out;
        self.chunk_len
            .par_chunks(cpt)
            .enumerate()
            .for_each(|(group, lens)| {
                let mut acc = vec![Complex64::default(); c];
                for (k, &len) in lens.iter().enumerate() {
                    let ci = group * cpt + k;
                    let base = self.chunk_ptr[ci] as usize;
                    let len = len as usize;
                    accum_chunk(&self.cols, &self.vals, base, len, c, x, &mut acc, use_simd);
                    let lo = ci * c;
                    #[allow(clippy::needless_range_loop)] // lockstep lane loop
                    for lane in 0..c {
                        let sell_row = lo + lane;
                        if sell_row < self.nrows {
                            let orig = self.perm[sell_row] as usize;
                            // SAFETY: `orig` < nrows (perm entries are row
                            // indices) and each output row is written by
                            // exactly one chunk of one task (perm is a
                            // permutation; chunks are partitioned
                            // disjointly across tasks).
                            unsafe { *y_out.0.add(orig) = acc[lane] };
                        }
                    }
                }
            });
    }

    /// Chunk-parallel SELL SpMMV; bitwise-identical to
    /// [`SellMatrix::spmmv`] for any thread count (same argument as
    /// [`SellMatrix::spmv_par`]).
    pub fn spmmv_par(&self, x: &BlockVector, y: &mut BlockVector) {
        assert_eq!(x.rows(), self.ncols, "spmmv_par: x dimension mismatch");
        assert_eq!(y.rows(), self.nrows, "spmmv_par: y dimension mismatch");
        assert_eq!(x.width(), y.width(), "spmmv_par: block width mismatch");
        let _probe = kernel_timer_fmt(
            KernelKind::Spmv,
            self.nrows,
            self.nnz,
            x.width(),
            self.stored_elements(),
            ProbeFormat::Sell,
        );
        let c = self.chunk_height;
        let r_width = x.width();
        let cpt = self.chunks_per_task;
        let use_simd = crate::simd::active();
        let y_out = ScatterPtr(y.as_mut_slice().as_mut_ptr());
        let y_out = &y_out;
        self.chunk_len
            .par_chunks(cpt)
            .enumerate()
            .for_each(|(group, lens)| {
                let mut acc = vec![Complex64::default(); c * r_width];
                for (k, &len) in lens.iter().enumerate() {
                    let ci = group * cpt + k;
                    let base = self.chunk_ptr[ci] as usize;
                    let len = len as usize;
                    acc.fill(Complex64::default());
                    for j in 0..len {
                        let off = base + j * c;
                        for lane in 0..c {
                            let val = self.vals[off + lane];
                            if val == Complex64::default() {
                                continue; // padding
                            }
                            let col = self.cols[off + lane] as usize;
                            let xrow = x.row(col);
                            let arow = &mut acc[lane * r_width..(lane + 1) * r_width];
                            axpy_row(val, xrow, arow, use_simd);
                        }
                    }
                    let lo = ci * c;
                    #[allow(clippy::needless_range_loop)] // lockstep lane loop
                    for lane in 0..c {
                        let sell_row = lo + lane;
                        if sell_row < self.nrows {
                            let orig = self.perm[sell_row] as usize;
                            // SAFETY: row `orig` spans elements
                            // `orig*r_width..(orig+1)*r_width` of the
                            // row-major block; rows are written by exactly
                            // one chunk of one task (perm is a permutation;
                            // chunks are partitioned disjointly).
                            let yrow = unsafe {
                                std::slice::from_raw_parts_mut(y_out.0.add(orig * r_width), r_width)
                            };
                            yrow.copy_from_slice(&acc[lane * r_width..(lane + 1) * r_width]);
                        }
                    }
                }
            });
    }
}

/// Writes one chunk's column-major payload: `ccols`/`cvals` are the
/// chunk's element span (`chunk_ptr[ci]..chunk_ptr[ci+1]`), with
/// element `j` of lane `lane` at local index `j·C + lane`. Padding
/// slots keep their zero initialization.
fn fill_chunk(
    crs: &CrsMatrix,
    perm: &[u32],
    nrows: usize,
    chunk_height: usize,
    ci: usize,
    ccols: &mut [u32],
    cvals: &mut [Complex64],
) {
    let lo = ci * chunk_height;
    for lane in 0..chunk_height {
        let sell_row = lo + lane;
        if sell_row >= nrows {
            continue; // padding lanes of the last chunk stay zero
        }
        let orig = perm[sell_row] as usize;
        let rc = crs.row_cols(orig);
        let rv = crs.row_vals(orig);
        for (j, (&c, &v)) in rc.iter().zip(rv).enumerate() {
            // Column-major within the chunk: element j of lane
            // `lane` lives at j*C + lane.
            let idx = j * chunk_height + lane;
            ccols[idx] = c;
            cvals[idx] = v;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::CooMatrix;
    use crate::spmv::spmv;
    use kpm_num::Vector;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_crs(nrows: usize, ncols: usize, per_row: usize, seed: u64) -> CrsMatrix {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut coo = CooMatrix::new(nrows, ncols);
        for r in 0..nrows {
            // Variable row lengths to exercise sorting and padding.
            let len = 1 + rng.gen_range(0..per_row.max(1));
            for _ in 0..len {
                let c = rng.gen_range(0..ncols);
                coo.push(
                    r,
                    c,
                    Complex64::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)),
                );
            }
        }
        coo.to_crs()
    }

    #[test]
    fn sell_1_1_is_crs() {
        let crs = random_crs(40, 40, 5, 1);
        let sell = SellMatrix::from_crs(&crs, 1, 1);
        assert_eq!(sell.beta(), 1.0);
        assert_eq!(sell.stored_elements(), crs.nnz());
    }

    #[test]
    fn spmv_matches_crs_for_various_c_sigma() {
        let crs = random_crs(123, 123, 9, 7);
        let mut rng = StdRng::seed_from_u64(99);
        let x = Vector::random(123, &mut rng).into_vec();
        let mut y_ref = vec![Complex64::default(); 123];
        spmv(&crs, &x, &mut y_ref);
        for (c, sigma) in [
            (1usize, 1usize),
            (4, 1),
            (4, 8),
            (8, 32),
            (32, 32),
            (16, 123_usize.next_power_of_two()),
        ] {
            let sigma = if sigma == 1 {
                1
            } else {
                (sigma / c).max(1) * c
            };
            let sell = SellMatrix::from_crs(&crs, c, sigma);
            let mut y = vec![Complex64::default(); 123];
            sell.spmv(&x, &mut y);
            for (a, b) in y.iter().zip(&y_ref) {
                assert!(a.approx_eq(*b, 1e-12), "C={c} sigma={sigma}");
            }
        }
    }

    #[test]
    fn sorting_reduces_fill_in() {
        // Highly irregular rows: sorting within a big window should
        // produce beta at least as good as no sorting.
        let crs = random_crs(256, 256, 31, 3);
        let unsorted = SellMatrix::from_crs(&crs, 32, 1);
        let sorted = SellMatrix::from_crs(&crs, 32, 256);
        assert!(sorted.beta() >= unsorted.beta());
        assert!(sorted.beta() <= 1.0 && unsorted.beta() > 0.0);
    }

    #[test]
    fn non_multiple_rows_padded_chunk() {
        // 10 rows with C=4 -> 3 chunks, last one half empty.
        let crs = random_crs(10, 10, 3, 5);
        let sell = SellMatrix::from_crs(&crs, 4, 1);
        let mut rng = StdRng::seed_from_u64(11);
        let x = Vector::random(10, &mut rng).into_vec();
        let mut y_ref = vec![Complex64::default(); 10];
        let mut y = vec![Complex64::default(); 10];
        spmv(&crs, &x, &mut y_ref);
        sell.spmv(&x, &mut y);
        for (a, b) in y.iter().zip(&y_ref) {
            assert!(a.approx_eq(*b, 1e-12));
        }
    }

    #[test]
    #[should_panic(expected = "multiple of the chunk height")]
    fn bad_sigma_rejected() {
        let crs = random_crs(8, 8, 2, 1);
        SellMatrix::from_crs(&crs, 4, 6);
    }

    #[test]
    fn sell_spmmv_matches_crs_spmmv() {
        use crate::spmv::spmmv;
        use kpm_num::BlockVector;
        let crs = random_crs(97, 97, 7, 13);
        let mut rng = StdRng::seed_from_u64(14);
        let x = BlockVector::random(97, 5, &mut rng);
        let mut y_ref = BlockVector::zeros(97, 5);
        spmmv(&crs, &x, &mut y_ref);
        for (c, sigma) in [(1usize, 1usize), (4, 8), (16, 32)] {
            let sell = SellMatrix::from_crs(&crs, c, sigma);
            let mut y = BlockVector::zeros(97, 5);
            sell.spmmv(&x, &mut y);
            assert!(y.max_abs_diff(&y_ref) < 1e-12, "C={c} sigma={sigma}");
        }
    }

    #[test]
    fn spmv_par_is_bitwise_equal_to_serial() {
        let crs = random_crs(301, 301, 9, 21);
        let mut rng = StdRng::seed_from_u64(22);
        let x = Vector::random(301, &mut rng).into_vec();
        for (c, sigma) in [(1usize, 1usize), (4, 8), (8, 32), (32, 32)] {
            let sell = SellMatrix::from_crs(&crs, c, sigma);
            let mut y_serial = vec![Complex64::default(); 301];
            sell.spmv(&x, &mut y_serial);
            for threads in [1usize, 2, 4] {
                let pool = rayon::ThreadPoolBuilder::new()
                    .num_threads(threads)
                    .build()
                    .unwrap();
                let mut y_par = vec![Complex64::default(); 301];
                pool.install(|| sell.spmv_par(&x, &mut y_par));
                assert_eq!(y_serial, y_par, "C={c} sigma={sigma} threads={threads}");
            }
        }
    }

    #[test]
    fn spmmv_par_is_bitwise_equal_to_serial() {
        use kpm_num::BlockVector;
        let crs = random_crs(203, 203, 7, 31);
        let mut rng = StdRng::seed_from_u64(33);
        let x = BlockVector::random(203, 8, &mut rng);
        for (c, sigma) in [(1usize, 1usize), (4, 8), (16, 64)] {
            let sell = SellMatrix::from_crs(&crs, c, sigma);
            let mut y_serial = BlockVector::zeros(203, 8);
            sell.spmmv(&x, &mut y_serial);
            for threads in [1usize, 4] {
                let pool = rayon::ThreadPoolBuilder::new()
                    .num_threads(threads)
                    .build()
                    .unwrap();
                let mut y_par = BlockVector::zeros(203, 8);
                pool.install(|| sell.spmmv_par(&x, &mut y_par));
                assert_eq!(y_serial.max_abs_diff(&y_par), 0.0, "C={c} sigma={sigma}");
            }
        }
    }

    #[test]
    fn beta_accounts_padding() {
        // One long row among short ones forces fill-in without sorting.
        let mut coo = CooMatrix::new(4, 8);
        for c in 0..8 {
            coo.push(0, c, Complex64::real(1.0));
        }
        coo.push(1, 0, Complex64::real(1.0));
        coo.push(2, 0, Complex64::real(1.0));
        coo.push(3, 0, Complex64::real(1.0));
        let crs = coo.to_crs();
        let sell = SellMatrix::from_crs(&crs, 4, 1);
        // Chunk of 4 rows padded to length 8 -> 32 stored, 11 nnz.
        assert_eq!(sell.stored_elements(), 32);
        assert!((sell.beta() - 11.0 / 32.0).abs() < 1e-15);
    }
}
