//! Plain sparse matrix-vector and matrix-multiple-vector kernels.
//!
//! `spmv` is the naive algorithm's matrix kernel (paper Fig. 3);
//! `spmmv` applies the matrix to a row-major block of `R` vectors at
//! once, reading the matrix once instead of `R` times — the traffic
//! reduction that drives the whole paper. The column-major variant
//! exists only for the layout ablation; its strided right-hand-side
//! access is the pattern the paper's Section IV-A warns about.

use kpm_num::{BlockVector, Complex64};
use kpm_obs::probe::{kernel_timer, KernelKind};
use rayon::prelude::*;

use crate::crs::CrsMatrix;

/// `y = A x` (serial CRS SpMV).
pub fn spmv(a: &CrsMatrix, x: &[Complex64], y: &mut [Complex64]) {
    assert_eq!(x.len(), a.ncols(), "spmv: x dimension mismatch");
    assert_eq!(y.len(), a.nrows(), "spmv: y dimension mismatch");
    let _probe = kernel_timer(KernelKind::Spmv, a.nrows(), a.nnz(), 1);
    #[allow(clippy::needless_range_loop)] // row index drives matrix and y
    for r in 0..a.nrows() {
        let cols = a.row_cols(r);
        let vals = a.row_vals(r);
        let mut acc = Complex64::default();
        for (v, &c) in vals.iter().zip(cols) {
            acc = v.mul_add(x[c as usize], acc);
        }
        y[r] = acc;
    }
}

/// `y = A x` (row-parallel CRS SpMV).
pub fn spmv_par(a: &CrsMatrix, x: &[Complex64], y: &mut [Complex64]) {
    assert_eq!(x.len(), a.ncols(), "spmv_par: x dimension mismatch");
    assert_eq!(y.len(), a.nrows(), "spmv_par: y dimension mismatch");
    let _probe = kernel_timer(KernelKind::Spmv, a.nrows(), a.nnz(), 1);
    y.par_iter_mut().enumerate().for_each(|(r, yr)| {
        let cols = a.row_cols(r);
        let vals = a.row_vals(r);
        let mut acc = Complex64::default();
        for (v, &c) in vals.iter().zip(cols) {
            acc = v.mul_add(x[c as usize], acc);
        }
        *yr = acc;
    });
}

/// `Y = A X` for row-major block vectors (serial SpMMV).
///
/// The inner loop runs over the block width, so for each matrix element
/// the `R` right-hand-side values are loaded contiguously — the access
/// pattern that makes SpMMV SIMD-friendly regardless of the sparsity
/// pattern.
pub fn spmmv(a: &CrsMatrix, x: &BlockVector, y: &mut BlockVector) {
    assert_eq!(x.rows(), a.ncols(), "spmmv: x dimension mismatch");
    assert_eq!(y.rows(), a.nrows(), "spmmv: y dimension mismatch");
    assert_eq!(x.width(), y.width(), "spmmv: block width mismatch");
    let _probe = kernel_timer(KernelKind::Spmv, a.nrows(), a.nnz(), x.width());
    let r_width = x.width();
    for r in 0..a.nrows() {
        let cols = a.row_cols(r);
        let vals = a.row_vals(r);
        let yrow = y.row_mut(r);
        yrow.fill(Complex64::default());
        for (v, &c) in vals.iter().zip(cols) {
            let xrow = x.row(c as usize);
            for j in 0..r_width {
                yrow[j] = v.mul_add(xrow[j], yrow[j]);
            }
        }
    }
}

/// `Y = A X` (row-parallel SpMMV over row-major blocks).
pub fn spmmv_par(a: &CrsMatrix, x: &BlockVector, y: &mut BlockVector) {
    assert_eq!(x.rows(), a.ncols(), "spmmv_par: x dimension mismatch");
    assert_eq!(y.rows(), a.nrows(), "spmmv_par: y dimension mismatch");
    assert_eq!(x.width(), y.width(), "spmmv_par: block width mismatch");
    let _probe = kernel_timer(KernelKind::Spmv, a.nrows(), a.nnz(), x.width());
    let r_width = x.width();
    y.as_mut_slice()
        .par_chunks_mut(r_width)
        .enumerate()
        .for_each(|(r, yrow)| {
            let cols = a.row_cols(r);
            let vals = a.row_vals(r);
            yrow.fill(Complex64::default());
            for (v, &c) in vals.iter().zip(cols) {
                let xrow = x.row(c as usize);
                for j in 0..r_width {
                    yrow[j] = v.mul_add(xrow[j], yrow[j]);
                }
            }
        });
}

/// `Y = A X` where both blocks are column-major (ablation variant).
///
/// Equivalent arithmetic, but every matrix element is re-read `R` times
/// (one pass per column) — this is "R independent SpMVs" and shows the
/// traffic penalty the interleaved layout avoids.
pub fn spmmv_colmajor(
    a: &CrsMatrix,
    x: &kpm_num::block::ColMajorBlock,
    y: &mut kpm_num::block::ColMajorBlock,
) {
    assert_eq!(x.rows(), a.ncols(), "spmmv_colmajor: x dimension mismatch");
    assert_eq!(y.rows(), a.nrows(), "spmmv_colmajor: y dimension mismatch");
    assert_eq!(x.width(), y.width(), "spmmv_colmajor: width mismatch");
    for j in 0..x.width() {
        // x and y are distinct blocks, so borrowing x's column shared
        // and y's exclusive needs no copy.
        spmv(a, x.col(j), y.col_mut(j));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::CooMatrix;
    use kpm_num::block::ColMajorBlock;
    use kpm_num::Vector;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_matrix(n: usize, seed: u64) -> CrsMatrix {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut coo = CooMatrix::new(n, n);
        for r in 0..n {
            for _ in 0..rng.gen_range(1..8) {
                coo.push(
                    r,
                    rng.gen_range(0..n),
                    Complex64::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)),
                );
            }
        }
        coo.to_crs()
    }

    fn dense_apply(a: &CrsMatrix, x: &[Complex64]) -> Vec<Complex64> {
        let d = a.to_dense();
        d.iter()
            .map(|row| {
                row.iter()
                    .zip(x)
                    .fold(Complex64::default(), |acc, (aij, xj)| acc + *aij * *xj)
            })
            .collect()
    }

    #[test]
    fn spmv_matches_dense() {
        let a = random_matrix(50, 2);
        let mut rng = StdRng::seed_from_u64(3);
        let x = Vector::random(50, &mut rng).into_vec();
        let mut y = vec![Complex64::default(); 50];
        spmv(&a, &x, &mut y);
        let want = dense_apply(&a, &x);
        for (g, w) in y.iter().zip(&want) {
            assert!(g.approx_eq(*w, 1e-12));
        }
    }

    #[test]
    fn spmv_par_matches_serial() {
        let a = random_matrix(500, 4);
        let mut rng = StdRng::seed_from_u64(5);
        let x = Vector::random(500, &mut rng).into_vec();
        let mut y1 = vec![Complex64::default(); 500];
        let mut y2 = y1.clone();
        spmv(&a, &x, &mut y1);
        spmv_par(&a, &x, &mut y2);
        assert_eq!(y1, y2);
    }

    #[test]
    fn spmmv_matches_per_column_spmv() {
        let a = random_matrix(80, 6);
        let mut rng = StdRng::seed_from_u64(7);
        let x = BlockVector::random(80, 5, &mut rng);
        let mut y = BlockVector::zeros(80, 5);
        spmmv(&a, &x, &mut y);
        for j in 0..5 {
            let xc = x.column(j);
            let mut yc = vec![Complex64::default(); 80];
            spmv(&a, xc.as_slice(), &mut yc);
            let got = y.column(j);
            for (g, w) in got.as_slice().iter().zip(&yc) {
                assert!(g.approx_eq(*w, 1e-12), "col {j}");
            }
        }
    }

    #[test]
    fn spmmv_par_matches_serial_bitwise() {
        let a = random_matrix(300, 8);
        let mut rng = StdRng::seed_from_u64(9);
        let x = BlockVector::random(300, 8, &mut rng);
        let mut y1 = BlockVector::zeros(300, 8);
        let mut y2 = BlockVector::zeros(300, 8);
        spmmv(&a, &x, &mut y1);
        spmmv_par(&a, &x, &mut y2);
        assert_eq!(y1, y2);
    }

    #[test]
    fn colmajor_matches_rowmajor() {
        let a = random_matrix(64, 10);
        let mut rng = StdRng::seed_from_u64(11);
        let x = BlockVector::random(64, 4, &mut rng);
        let mut y = BlockVector::zeros(64, 4);
        spmmv(&a, &x, &mut y);
        let cx = ColMajorBlock::from_row_major(&x);
        let mut cy = ColMajorBlock::zeros(64, 4);
        spmmv_colmajor(&a, &cx, &mut cy);
        let back = cy.to_row_major();
        assert!(y.max_abs_diff(&back) < 1e-12);
    }

    #[test]
    fn spmv_on_identity_is_copy() {
        let id = CrsMatrix::identity(33);
        let mut rng = StdRng::seed_from_u64(13);
        let x = Vector::random(33, &mut rng).into_vec();
        let mut y = vec![Complex64::default(); 33];
        spmv(&id, &x, &mut y);
        assert_eq!(x, y);
    }

    #[test]
    fn width_one_block_equals_vector_spmv() {
        let a = random_matrix(40, 14);
        let mut rng = StdRng::seed_from_u64(15);
        let xv = Vector::random(40, &mut rng);
        let x = BlockVector::from_columns(std::slice::from_ref(&xv));
        let mut y = BlockVector::zeros(40, 1);
        spmmv(&a, &x, &mut y);
        let mut yv = vec![Complex64::default(); 40];
        spmv(&a, xv.as_slice(), &mut yv);
        assert_eq!(y.column(0).into_vec(), yv);
    }
}
