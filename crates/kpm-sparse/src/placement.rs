//! NUMA-style first-touch placement of the hot kernel arrays.
//!
//! Linux places a page on the NUMA node of the core that *first writes*
//! it, not the one that allocated it. Today every matrix and block
//! vector is filled on the caller thread, so on a multi-socket host all
//! pages land on the caller's node and the far socket's workers stream
//! remote memory for the whole run. The first-touch path inverts that:
//!
//! 1. allocate the array **untouched** — [`zeroed_vec`] goes through
//!    `alloc_zeroed`, which for large blocks returns copy-on-write zero
//!    pages that have no physical placement yet;
//! 2. partition it into the same contiguous ranges the kernels stream;
//! 3. fault each range from the worker the pool's **stable part→worker
//!    assignment** gives it (`rayon::run_pinned`: part `p` always runs
//!    on worker `p % threads`, pinned chunks are never stolen).
//!
//! Placement is a pure performance property: the faulted bytes are the
//! bytes the caller-side init would have written, so every result stays
//! bitwise-identical with the path on or off.

use kpm_num::{BlockVector, Complex64};

/// How hot arrays are initialized and paged in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Placement {
    /// All init writes happen on the calling thread (the default; pages
    /// land wherever the caller runs).
    #[default]
    Caller,
    /// Arrays are allocated untouched and each contiguous range is
    /// first written by its pinned pool worker (part `p` → worker
    /// `p % threads`), so pages land on the node that streams them.
    FirstTouch,
}

/// Marker for plain-old-data element types whose all-zero bit pattern
/// is a valid value, as [`zeroed_vec`] requires.
///
/// # Safety
///
/// Implementors assert that a `T` consisting entirely of zero bytes is
/// a fully initialized, valid `T`.
pub(crate) unsafe trait ZeroInit: Copy {}
// SAFETY: the all-zero u32 is 0.
unsafe impl ZeroInit for u32 {}
// SAFETY: all-zero bytes are the f64 +0.0.
unsafe impl ZeroInit for f64 {}
// SAFETY: `Complex64` is `repr(C)` over two f64s; all-zero bytes are
// `0 + 0i`, its `Default`.
unsafe impl ZeroInit for Complex64 {}

/// Allocates a length-`len` vector of zeroed `T`s *without touching*
/// the memory: `alloc_zeroed` hands back untouched copy-on-write zero
/// pages for large requests, so physical placement is decided by
/// whichever thread writes each page first.
pub(crate) fn zeroed_vec<T: ZeroInit>(len: usize) -> Vec<T> {
    assert!(std::mem::size_of::<T>() > 0, "zeroed_vec: zero-sized T");
    if len == 0 {
        return Vec::new();
    }
    let Ok(layout) = std::alloc::Layout::array::<T>(len) else {
        // Allocation-size overflow: unreachable for any in-memory
        // matrix this crate can hold, and handled like exhaustion.
        std::alloc::handle_alloc_error(std::alloc::Layout::new::<T>());
    };
    // SAFETY: `layout` has non-zero size (len >= 1, T non-zero-sized).
    let ptr = unsafe { std::alloc::alloc_zeroed(layout) };
    if ptr.is_null() {
        std::alloc::handle_alloc_error(layout);
    }
    // SAFETY: `ptr` was just allocated with the array layout of `len`
    // `T`s, `alloc_zeroed` guarantees all-zero bytes, and `T: ZeroInit`
    // certifies the all-zero pattern as a valid `T` — so this is a
    // fully initialized vector with length == capacity == `len`.
    unsafe { Vec::from_raw_parts(ptr.cast::<T>(), len, len) }
}

/// Shared raw write handle for the disjoint-range fills below. Each
/// pinned part writes only its own contiguous element range, so the
/// stores never alias.
pub(crate) struct RangePtr<T>(pub(crate) *mut T);

// SAFETY: the pointer is only dereferenced inside pairwise-disjoint
// ranges (one per pinned part), and the element types are `Send`.
unsafe impl<T: Send> Send for RangePtr<T> {}
// SAFETY: see the `Send` impl above — disjoint ranges only.
unsafe impl<T: Send> Sync for RangePtr<T> {}

/// Rebuilds `src` in a fresh untouched allocation, each of `parts`
/// ranges copied into place by its pinned worker (`range_of(p)` gives
/// part `p`'s element range; ranges must be disjoint and cover the
/// length in union). Returns the re-placed vector.
pub(crate) fn refault_copy_by<T, F>(src: &[T], parts: usize, range_of: F) -> Vec<T>
where
    T: ZeroInit + Send + Sync,
    F: Fn(usize) -> (usize, usize) + Sync,
{
    let mut dst = zeroed_vec::<T>(src.len());
    if src.is_empty() || parts == 0 {
        return dst;
    }
    let out = RangePtr(dst.as_mut_ptr());
    let out = &out;
    rayon::run_pinned(parts, |p| {
        let (lo, hi) = range_of(p);
        let hi = hi.min(src.len());
        if lo < hi {
            // SAFETY: `range_of` yields pairwise-disjoint in-bounds
            // ranges (asserted by the callers' partitions), `src` and
            // `dst` are distinct allocations, and `dst` outlives the
            // blocking `run_pinned` call.
            unsafe {
                std::ptr::copy_nonoverlapping(src.as_ptr().add(lo), out.0.add(lo), hi - lo);
            }
        }
    });
    dst
}

/// Page granularity assumed by [`fault_block_rows`]: one write per
/// 4 KiB is enough to fault a page on every supported target (huge
/// pages only make the loop redundantly cheap).
const PAGE_BYTES: usize = 4096;

/// Volatile-touches every page of `data` in place, preserving its
/// contents. Volatile, because a plain "write back what is there"
/// of known-zero freshly allocated memory is exactly what the
/// optimizer may elide — and an elided store faults nothing.
fn fault_range<T>(data: &mut [T]) {
    let bytes = std::mem::size_of_val(data);
    let p = data.as_mut_ptr().cast::<u8>();
    let mut off = 0;
    while off < bytes {
        // SAFETY: `off < bytes`, so `p + off` is inside the borrowed
        // range; the byte is read and written back unchanged.
        unsafe {
            let b = p.add(off);
            std::ptr::write_volatile(b, std::ptr::read_volatile(b));
        }
        off += PAGE_BYTES;
    }
}

/// Faults the pages of a (freshly zero-allocated) block vector from
/// the workers that will stream its rows: the row space is split into
/// `parts` contiguous ranges, range `p` faulted by pinned worker
/// `p % threads`. `parts == 0` means one range per pool thread.
/// Contents are preserved (the touch is a volatile read-write of the
/// bytes already there), so calling this is always bitwise-safe.
pub fn fault_block_rows(v: &mut BlockVector, parts: usize) {
    let rows = v.rows();
    let width = v.width();
    if rows == 0 || width == 0 {
        return;
    }
    let parts = if parts == 0 {
        rayon::current_num_threads().max(1)
    } else {
        parts
    }
    .min(rows);
    let rows_per = rows.div_ceil(parts);
    let data = v.as_mut_slice();
    let len = data.len();
    let out = RangePtr(data.as_mut_ptr());
    let out = &out;
    rayon::run_pinned(parts, |p| {
        let lo = p * rows_per * width;
        let hi = ((p + 1) * rows_per * width).min(len);
        if lo < hi {
            // SAFETY: contiguous pairwise-disjoint element ranges of
            // the block's backing slice, which outlives the blocking
            // `run_pinned` call.
            let range = unsafe { std::slice::from_raw_parts_mut(out.0.add(lo), hi - lo) };
            fault_range(range);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeroed_vec_is_zero() {
        let v = zeroed_vec::<Complex64>(1000);
        assert_eq!(v.len(), 1000);
        assert!(v.iter().all(|z| *z == Complex64::default()));
        let u = zeroed_vec::<u32>(17);
        assert!(u.iter().all(|x| *x == 0));
        assert!(zeroed_vec::<f64>(0).is_empty());
    }

    #[test]
    fn refault_copy_preserves_contents() {
        let src: Vec<f64> = (0..10_000).map(|i| i as f64 * 0.25 - 3.0).collect();
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(4)
            .build()
            .unwrap();
        let dst = pool.install(|| refault_copy_by(&src, 4, |p| (p * 2500, (p + 1) * 2500)));
        assert_eq!(src, dst);
        // Serial path too, with a ragged final range.
        let dst1 = refault_copy_by(&src, 3, |p| (p * 4000, (p + 1) * 4000));
        assert_eq!(src, dst1);
    }

    #[test]
    fn fault_block_rows_preserves_contents() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(5);
        let v0 = BlockVector::random(513, 3, &mut rng);
        let mut v = v0.clone();
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(4)
            .build()
            .unwrap();
        pool.install(|| fault_block_rows(&mut v, 0));
        assert_eq!(v.max_abs_diff(&v0), 0.0);
        fault_block_rows(&mut v, 7);
        assert_eq!(v.max_abs_diff(&v0), 0.0);
    }
}
