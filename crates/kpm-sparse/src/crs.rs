//! Compressed Row Storage (CRS/CSR).
//!
//! CRS is the paper's format of choice for all SpMMV kernels: because
//! SIMD vectorization happens *across the block vector*, matrix elements
//! can be read serially and no SIMD-aware matrix format is needed (paper
//! Section IV-A, "CRS/SELL-1 may yield even better SpMMV performance than
//! a SIMD-aware storage format for SpMV like SELL-32").
//!
//! Index widths follow the paper's mixed-integer convention: 32-bit
//! column indices inside kernels (`S_i = 4`), 64-bit row pointers so the
//! total non-zero count may exceed 4·10⁹ in large-scale runs.

use kpm_num::{Complex64, KpmError};

/// A sparse matrix in CRS format.
#[derive(Debug, Clone, PartialEq)]
pub struct CrsMatrix {
    nrows: usize,
    ncols: usize,
    row_ptr: Vec<u64>,
    cols: Vec<u32>,
    vals: Vec<Complex64>,
}

impl CrsMatrix {
    /// Builds a CRS matrix from raw arrays, validating the invariants:
    /// `row_ptr` has `nrows + 1` monotone entries, `cols`/`vals` have
    /// matching length `row_ptr[nrows]`, and all column indices are in
    /// range and strictly increasing within each row.
    ///
    /// Panics on invalid input; use [`CrsMatrix::try_from_raw`] to get a
    /// typed error instead.
    pub fn from_raw(
        nrows: usize,
        ncols: usize,
        row_ptr: Vec<u64>,
        cols: Vec<u32>,
        vals: Vec<Complex64>,
    ) -> Self {
        // kpm::allow(no_panic): documented panicking wrapper; the fallible
        // path is try_from_raw.
        Self::try_from_raw(nrows, ncols, row_ptr, cols, vals).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible variant of [`CrsMatrix::from_raw`]: returns
    /// `Err(KpmError::InvalidMatrix)` describing the first violated
    /// invariant instead of panicking.
    pub fn try_from_raw(
        nrows: usize,
        ncols: usize,
        row_ptr: Vec<u64>,
        cols: Vec<u32>,
        vals: Vec<Complex64>,
    ) -> Result<Self, KpmError> {
        fn bad(what: &'static str, details: String) -> KpmError {
            KpmError::InvalidMatrix { what, details }
        }
        if row_ptr.len() != nrows + 1 {
            return Err(bad(
                "row_ptr",
                format!(
                    "row_ptr length must be nrows+1 (got {}, nrows = {nrows})",
                    row_ptr.len()
                ),
            ));
        }
        if row_ptr[0] != 0 {
            return Err(bad(
                "row_ptr",
                format!("row_ptr must start at 0 (got {})", row_ptr[0]),
            ));
        }
        let nnz = row_ptr[nrows] as usize;
        if nnz != cols.len() {
            return Err(bad(
                "row_ptr",
                format!(
                    "row_ptr must end at nnz (got {nnz}, cols.len() = {})",
                    cols.len()
                ),
            ));
        }
        if cols.len() != vals.len() {
            return Err(bad(
                "cols/vals",
                format!(
                    "cols/vals length mismatch ({} vs {})",
                    cols.len(),
                    vals.len()
                ),
            ));
        }
        for r in 0..nrows {
            if row_ptr[r] > row_ptr[r + 1] {
                return Err(bad(
                    "row_ptr",
                    format!("row_ptr must be monotone (row {r})"),
                ));
            }
            let (lo, hi) = (row_ptr[r] as usize, row_ptr[r + 1] as usize);
            for k in lo..hi {
                if cols[k] as usize >= ncols {
                    return Err(bad(
                        "cols",
                        format!(
                            "column index out of range (row {r}: col {} >= ncols {ncols})",
                            cols[k]
                        ),
                    ));
                }
                if k > lo && cols[k - 1] >= cols[k] {
                    return Err(bad(
                        "cols",
                        format!("columns must be strictly increasing in row {r}"),
                    ));
                }
            }
        }
        Ok(Self {
            nrows,
            ncols,
            row_ptr,
            cols,
            vals,
        })
    }

    /// The `n x n` identity matrix.
    pub fn identity(n: usize) -> Self {
        Self::from_raw(
            n,
            n,
            (0..=n as u64).collect(),
            (0..n as u32).collect(),
            vec![Complex64::real(1.0); n],
        )
    }

    /// Number of rows.
    #[inline(always)]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    #[inline(always)]
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of stored non-zeros.
    #[inline(always)]
    pub fn nnz(&self) -> usize {
        self.vals.len()
    }

    /// Average number of non-zeros per row (`N_nzr` in the paper; ≈13
    /// for the topological-insulator matrices).
    pub fn avg_nnz_per_row(&self) -> f64 {
        self.nnz() as f64 / self.nrows.max(1) as f64
    }

    /// The raw row-pointer array.
    #[inline(always)]
    pub fn row_ptr(&self) -> &[u64] {
        &self.row_ptr
    }

    /// Column indices of row `r`.
    #[inline(always)]
    pub fn row_cols(&self, r: usize) -> &[u32] {
        &self.cols[self.row_ptr[r] as usize..self.row_ptr[r + 1] as usize]
    }

    /// Values of row `r`.
    #[inline(always)]
    pub fn row_vals(&self, r: usize) -> &[Complex64] {
        &self.vals[self.row_ptr[r] as usize..self.row_ptr[r + 1] as usize]
    }

    /// A stable 64-bit content fingerprint of the matrix: FNV-1a over
    /// the dimensions, row pointers, column indices, and the raw bit
    /// patterns of the values.
    ///
    /// Two matrices fingerprint equal exactly when they are the same
    /// operator stored in the same order down to the last bit — the
    /// identity the service front-end uses to coalesce concurrent
    /// requests into one block solve and to key its moment cache.
    /// Format-independent when computed from the assembled CRS source
    /// (see `KpmMatrix::content_fingerprint`).
    pub fn content_fingerprint(&self) -> u64 {
        let mut h = Fnv1a::new();
        h.write_u64(self.nrows as u64);
        h.write_u64(self.ncols as u64);
        for &p in &self.row_ptr {
            h.write_u64(p);
        }
        for &c in &self.cols {
            h.write_u64(c as u64);
        }
        for v in &self.vals {
            h.write_u64(v.re.to_bits());
            h.write_u64(v.im.to_bits());
        }
        h.finish()
    }

    /// Entry `(r, c)`, or zero if not stored.
    pub fn get(&self, r: usize, c: usize) -> Complex64 {
        let cols = self.row_cols(r);
        match cols.binary_search(&(c as u32)) {
            Ok(k) => self.row_vals(r)[k],
            Err(_) => Complex64::default(),
        }
    }

    /// Length of row `r`.
    #[inline(always)]
    pub fn row_len(&self, r: usize) -> usize {
        (self.row_ptr[r + 1] - self.row_ptr[r]) as usize
    }

    /// Maximum row length over the whole matrix.
    pub fn max_row_len(&self) -> usize {
        (0..self.nrows).map(|r| self.row_len(r)).max().unwrap_or(0)
    }

    /// Re-places the `cols`/`vals` streams for NUMA first-touch: each
    /// [`crate::aug::ROWS_PER_CHUNK`]-row group's element range — the
    /// exact partition the parallel CRS kernels stream — is copied into
    /// a fresh untouched allocation by its pinned pool worker, so its
    /// pages land on the node that will read them. Contents are
    /// bitwise-unchanged; this is a pure placement operation.
    pub fn first_touch_refault(&mut self) {
        if self.nrows == 0 || self.vals.is_empty() {
            return;
        }
        let rpc = crate::aug::ROWS_PER_CHUNK;
        let parts = self.nrows.div_ceil(rpc);
        let ptr = &self.row_ptr;
        let nrows = self.nrows;
        let range_of = |p: usize| {
            (
                ptr[p * rpc] as usize,
                ptr[((p + 1) * rpc).min(nrows)] as usize,
            )
        };
        self.cols = crate::placement::refault_copy_by(&self.cols, parts, range_of);
        self.vals = crate::placement::refault_copy_by(&self.vals, parts, range_of);
    }

    /// True if the matrix equals its conjugate transpose (exact
    /// comparison; assembly produces exactly conjugate pairs).
    pub fn is_hermitian(&self) -> bool {
        if self.nrows != self.ncols {
            return false;
        }
        for r in 0..self.nrows {
            for (k, &c) in self.row_cols(r).iter().enumerate() {
                let v = self.row_vals(r)[k];
                if self.get(c as usize, r) != v.conj() {
                    return false;
                }
            }
        }
        true
    }

    /// Gershgorin bounds on the (real) spectrum of a Hermitian matrix:
    /// every eigenvalue lies in `[min_r (d_r - rad_r), max_r (d_r + rad_r)]`
    /// with `d_r` the (real) diagonal entry and `rad_r` the absolute
    /// off-diagonal row sum. Used to determine the spectral rescaling
    /// `H̃ = a(H - b·1)` (paper Section II).
    pub fn gershgorin_bounds(&self) -> (f64, f64) {
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for r in 0..self.nrows {
            let mut diag = 0.0;
            let mut radius = 0.0;
            for (k, &c) in self.row_cols(r).iter().enumerate() {
                let v = self.row_vals(r)[k];
                if c as usize == r {
                    diag = v.re;
                } else {
                    radius += v.abs();
                }
            }
            lo = lo.min(diag - radius);
            hi = hi.max(diag + radius);
        }
        if self.nrows == 0 {
            (0.0, 0.0)
        } else {
            (lo, hi)
        }
    }

    /// Converts to a dense row-major matrix (test helper for small
    /// systems).
    pub fn to_dense(&self) -> Vec<Vec<Complex64>> {
        let mut d = vec![vec![Complex64::default(); self.ncols]; self.nrows];
        #[allow(clippy::needless_range_loop)] // r indexes both matrix and target
        for r in 0..self.nrows {
            for (k, &c) in self.row_cols(r).iter().enumerate() {
                d[r][c as usize] = self.row_vals(r)[k];
            }
        }
        d
    }

    /// Extracts the row block `[row_begin, row_end)` as a standalone CRS
    /// matrix with the *same* column space. This is the local matrix of
    /// one process under the paper's 1-D data-parallel row distribution.
    pub fn row_block(&self, row_begin: usize, row_end: usize) -> CrsMatrix {
        assert!(row_begin <= row_end && row_end <= self.nrows);
        let base = self.row_ptr[row_begin];
        let row_ptr: Vec<u64> = self.row_ptr[row_begin..=row_end]
            .iter()
            .map(|&p| p - base)
            .collect();
        let lo = self.row_ptr[row_begin] as usize;
        let hi = self.row_ptr[row_end] as usize;
        CrsMatrix::from_raw(
            row_end - row_begin,
            self.ncols,
            row_ptr,
            self.cols[lo..hi].to_vec(),
            self.vals[lo..hi].to_vec(),
        )
    }

    /// The set of distinct column indices touched by this matrix that lie
    /// *outside* `[row_begin, row_end)` — exactly the halo elements a
    /// process must receive under 1-D row distribution. Returned sorted.
    pub fn halo_columns(&self, row_begin: usize, row_end: usize) -> Vec<u32> {
        let mut halo: Vec<u32> = self
            .cols
            .iter()
            .copied()
            .filter(|&c| (c as usize) < row_begin || (c as usize) >= row_end)
            .collect();
        halo.sort_unstable();
        halo.dedup();
        halo
    }
}

/// Incremental FNV-1a (64-bit) over `u64` words — the same hash family
/// the checkpoint records use, hand-rolled because the build has no
/// registry access. Word-at-a-time keeps it fast enough to fingerprint
/// multi-million-row matrices once at registration.
pub(crate) struct Fnv1a(u64);

impl Fnv1a {
    pub(crate) fn new() -> Self {
        Self(0xcbf2_9ce4_8422_2325)
    }

    pub(crate) fn write_u64(&mut self, word: u64) {
        for byte in word.to_le_bytes() {
            self.0 ^= byte as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    pub(crate) fn finish(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::CooMatrix;

    fn c(re: f64, im: f64) -> Complex64 {
        Complex64::new(re, im)
    }

    /// 3x3 Hermitian test matrix.
    fn hermitian3() -> CrsMatrix {
        let mut m = CooMatrix::new(3, 3);
        m.push(0, 0, c(2.0, 0.0));
        m.push(0, 1, c(1.0, 1.0));
        m.push(1, 0, c(1.0, -1.0));
        m.push(1, 1, c(-1.0, 0.0));
        m.push(1, 2, c(0.0, 2.0));
        m.push(2, 1, c(0.0, -2.0));
        m.push(2, 2, c(0.5, 0.0));
        m.to_crs()
    }

    #[test]
    fn identity_properties() {
        let id = CrsMatrix::identity(5);
        assert_eq!(id.nnz(), 5);
        assert!(id.is_hermitian());
        let (lo, hi) = id.gershgorin_bounds();
        assert_eq!((lo, hi), (1.0, 1.0));
    }

    #[test]
    fn hermitian_check() {
        assert!(hermitian3().is_hermitian());
        let mut m = CooMatrix::new(2, 2);
        m.push(0, 1, c(1.0, 0.0));
        assert!(!m.to_crs().is_hermitian());
    }

    #[test]
    fn gershgorin_contains_known_eigenvalues() {
        // diag(2,-1,0.5) with off-diagonals of modulus sqrt(2) and 2.
        let m = hermitian3();
        let (lo, hi) = m.gershgorin_bounds();
        let r01 = 2.0f64.sqrt();
        assert!((lo - (-1.0 - r01 - 2.0)).abs() < 1e-14);
        assert!((hi - (2.0 + r01)).abs() < 1e-14);
    }

    #[test]
    fn row_block_extracts_local_rows() {
        let m = hermitian3();
        let b = m.row_block(1, 3);
        assert_eq!(b.nrows(), 2);
        assert_eq!(b.ncols(), 3);
        assert_eq!(b.get(0, 0), c(1.0, -1.0)); // original row 1
        assert_eq!(b.get(1, 2), c(0.5, 0.0)); // original row 2
    }

    #[test]
    fn halo_columns_are_outside_range() {
        let m = hermitian3();
        // Rows 1..3 reference columns 0,1,2; halo wrt [1,3) is {0}.
        let halo = m.row_block(1, 3);
        let _ = halo;
        assert_eq!(m.halo_columns(1, 3), vec![0]);
        assert_eq!(m.halo_columns(0, 3), Vec::<u32>::new());
    }

    #[test]
    fn to_dense_roundtrip() {
        let m = hermitian3();
        let d = m.to_dense();
        for (r, row) in d.iter().enumerate() {
            for (cidx, val) in row.iter().enumerate() {
                assert_eq!(*val, m.get(r, cidx));
            }
        }
    }

    #[test]
    fn stats() {
        let m = hermitian3();
        assert_eq!(m.nnz(), 7);
        assert!((m.avg_nnz_per_row() - 7.0 / 3.0).abs() < 1e-15);
        assert_eq!(m.max_row_len(), 3);
        assert_eq!(m.row_len(0), 2);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn unsorted_columns_rejected() {
        CrsMatrix::from_raw(1, 3, vec![0, 2], vec![2, 0], vec![Complex64::real(1.0); 2]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn column_out_of_range_rejected() {
        CrsMatrix::from_raw(1, 2, vec![0, 1], vec![5], vec![Complex64::real(1.0)]);
    }
}
