//! Build-time and runtime configuration of the explicit SIMD lanes.
//!
//! The `simd` cargo feature compiles the portable-`std::simd` variants
//! of the hot kernels ([`crate::aug_sell_simd`]); without it the same
//! entry points compile to their scalar bodies. Because both variants
//! replay the exact scalar operation order per lane (see the module
//! docs of [`crate::aug_sell_simd`]), the choice is purely a
//! performance knob — results are bitwise-identical either way, which
//! is also why a *runtime* toggle is safe to expose: one binary can
//! bench scalar-vs-SIMD back to back ([`set_enabled`]).
//!
//! Lane width is reported by [`lanes`]: the `f64` lane count of the
//! compiled vector type (8 under AVX-512, 4 otherwise) or 1 for scalar
//! builds. The autotuner's machine envelope and the `kpm report`
//! roofline table read this instead of hardcoding a width, so the
//! model describes the build that actually runs.

use std::sync::atomic::{AtomicBool, Ordering};

/// Master switch for the vector kernel paths; defaults to on so a
/// `--features simd` build vectorizes out of the box.
static ENABLED: AtomicBool = AtomicBool::new(true);

/// True when this crate was compiled with the `simd` cargo feature
/// (portable `std::simd`, nightly toolchains only).
pub fn compiled() -> bool {
    cfg!(feature = "simd")
}

/// `f64` lane count of the compiled kernel variant: 8 under AVX-512,
/// 4 otherwise, 1 for scalar builds.
pub fn lanes() -> usize {
    crate::aug_sell_simd::LANES
}

/// Enables or disables the vector paths at runtime. Purely a
/// performance knob: scalar and SIMD bodies are bitwise-identical, so
/// flipping this mid-run can never change a result.
///
/// `Release` store pairing with the `Acquire` load in [`active`]: a
/// thread observing the new value also observes everything the setter
/// did before flipping the switch.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Release);
}

/// Current state of the runtime switch (regardless of whether the
/// vector paths were compiled at all).
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Acquire)
}

/// True when the kernels will actually take the vector paths: compiled
/// with the `simd` feature *and* the runtime switch is on. Kernels
/// hoist this once per call, so a sweep never mixes paths mid-matrix.
pub fn active() -> bool {
    compiled() && enabled()
}

/// Lane count the kernels will actually use right now: the compiled
/// width when the vector paths are [`active`], 1 otherwise. This is
/// what performance models should read — a disabled runtime switch
/// makes an 8-lane build behave like a scalar one.
pub fn active_lanes() -> usize {
    if active() {
        lanes()
    } else {
        1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lanes_match_the_build() {
        if compiled() {
            assert!(lanes() == 4 || lanes() == 8, "lanes = {}", lanes());
        } else {
            assert_eq!(lanes(), 1);
        }
    }

    #[test]
    fn runtime_toggle_gates_active() {
        set_enabled(false);
        assert!(!active());
        assert!(!enabled());
        set_enabled(true);
        assert!(enabled());
        assert_eq!(active(), compiled());
    }
}
