//! The augmented KPM kernels (paper Figs. 4, 5 and Section IV).
//!
//! The KPM inner iteration
//!
//! ```text
//! swap(|w>, |v>)
//! |w>    = 2a(H - b·1)|v> - |w>
//! eta_2m   = <v|v>
//! eta_2m+1 = <w|v>
//! ```
//!
//! is fused into a single sweep over the matrix: for each row the kernel
//! performs the sparse dot product `(Hv)_i`, applies the shift `-b v_i`,
//! the scale `2a`, the Chebyshev recurrence `- w_i`, and accumulates both
//! scalar products on the fly. Compared with the naive chain of BLAS-1
//! calls this saves 10 vector transfers per iteration (paper Eq. 4).
//!
//! `aug_spmmv` is the stage-2 blocked version operating on row-major
//! block vectors of width `R`; the matrix is streamed once for all `R`
//! Chebyshev runs. The `*_nodot` variants perform the same update without
//! the fused scalar products — they are the kernels of panel (b) of paper
//! Fig. 10 and the baseline of the fused-dot ablation.

use kpm_num::summation::{pairwise_sum, pairwise_sum_complex};
use kpm_num::{BlockVector, Complex64};
use kpm_obs::probe::{kernel_timer, KernelKind};
use rayon::prelude::*;

use crate::crs::CrsMatrix;

/// Result of one augmented sweep over a single vector pair:
/// `eta_even = <v|v>` and `eta_odd = <w_new|v>`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AugDots {
    /// `eta_{2m} = <v|v>` (real by construction).
    pub eta_even: f64,
    /// `eta_{2m+1} = <w|v>` with the updated `w`.
    pub eta_odd: Complex64,
}

/// Per-column dot products of one blocked augmented sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct AugDotsBlock {
    /// `eta_{2m}[j] = <v_j|v_j>` for each of the `R` columns.
    pub eta_even: Vec<f64>,
    /// `eta_{2m+1}[j] = <w_j|v_j>` with the updated `w`.
    pub eta_odd: Vec<Complex64>,
}

/// Fixed row-chunk height of the parallel single-vector dot reduction:
/// partial `eta` sums sit on `ROWS_PER_CHUNK` boundaries regardless of
/// thread count, and the SELL kernels replay the identical boundaries.
pub(crate) const ROWS_PER_CHUNK: usize = 1024;

/// Augmented SpMV (paper Fig. 4): `w <- 2a(H - b·1) v - w`, returning
/// both Chebyshev scalar products computed on the fly.
pub fn aug_spmv(h: &CrsMatrix, a: f64, b: f64, v: &[Complex64], w: &mut [Complex64]) -> AugDots {
    assert_eq!(v.len(), h.ncols(), "aug_spmv: v dimension mismatch");
    assert_eq!(w.len(), h.nrows(), "aug_spmv: w dimension mismatch");
    assert_eq!(h.nrows(), h.ncols(), "aug_spmv: matrix must be square");
    let _probe = kernel_timer(KernelKind::AugSpmv, h.nrows(), h.nnz(), 1);
    aug_spmv_core(h, a, b, v, w)
}

/// The unprobed serial single-vector kernel; shared by [`aug_spmv`] and
/// the width-1 dispatch of the blocked entry points (which open their
/// own probe under their own kernel kind).
pub(crate) fn aug_spmv_core(
    h: &CrsMatrix,
    a: f64,
    b: f64,
    v: &[Complex64],
    w: &mut [Complex64],
) -> AugDots {
    let mut eta_even = 0.0;
    let mut eta_odd = Complex64::default();
    for r in 0..h.nrows() {
        let cols = h.row_cols(r);
        let vals = h.row_vals(r);
        let mut acc = Complex64::default();
        for (hv, &c) in vals.iter().zip(cols) {
            acc = hv.mul_add(v[c as usize], acc);
        }
        let vr = v[r];
        let wr = (acc - vr.scale(b)).scale(2.0 * a) - w[r];
        w[r] = wr;
        eta_even += vr.norm_sqr();
        eta_odd = wr.conj().mul_add(vr, eta_odd);
    }
    AugDots { eta_even, eta_odd }
}

/// Row-parallel augmented SpMV. Partial dot products are reduced
/// chunk-wise and combined pairwise, so results match the serial kernel
/// to reduction-order accuracy.
pub fn aug_spmv_par(
    h: &CrsMatrix,
    a: f64,
    b: f64,
    v: &[Complex64],
    w: &mut [Complex64],
) -> AugDots {
    assert_eq!(v.len(), h.ncols(), "aug_spmv_par: v dimension mismatch");
    assert_eq!(w.len(), h.nrows(), "aug_spmv_par: w dimension mismatch");
    assert_eq!(h.nrows(), h.ncols(), "aug_spmv_par: matrix must be square");
    let _probe = kernel_timer(KernelKind::AugSpmv, h.nrows(), h.nnz(), 1);
    aug_spmv_par_core(h, a, b, v, w)
}

/// The unprobed parallel single-vector kernel (see [`aug_spmv_core`]).
pub(crate) fn aug_spmv_par_core(
    h: &CrsMatrix,
    a: f64,
    b: f64,
    v: &[Complex64],
    w: &mut [Complex64],
) -> AugDots {
    let partials: Vec<(f64, Complex64)> = w
        .par_chunks_mut(ROWS_PER_CHUNK)
        .enumerate()
        .map(|(ci, wc)| {
            let row0 = ci * ROWS_PER_CHUNK;
            let mut even = 0.0;
            let mut odd = Complex64::default();
            for (i, wr_slot) in wc.iter_mut().enumerate() {
                let r = row0 + i;
                let cols = h.row_cols(r);
                let vals = h.row_vals(r);
                let mut acc = Complex64::default();
                for (hv, &c) in vals.iter().zip(cols) {
                    acc = hv.mul_add(v[c as usize], acc);
                }
                let vr = v[r];
                let wr = (acc - vr.scale(b)).scale(2.0 * a) - *wr_slot;
                *wr_slot = wr;
                even += vr.norm_sqr();
                odd = wr.conj().mul_add(vr, odd);
            }
            (even, odd)
        })
        .collect();
    let eta_even = pairwise_sum(&partials.iter().map(|p| p.0).collect::<Vec<_>>());
    let eta_odd = pairwise_sum_complex(&partials.iter().map(|p| p.1).collect::<Vec<_>>());
    AugDots { eta_even, eta_odd }
}

/// A single-column [`AugDots`] result widened to the blocked form, for
/// the width-1 dispatch of the blocked kernels.
pub(crate) fn widen(d: AugDots) -> AugDotsBlock {
    AugDotsBlock {
        eta_even: vec![d.eta_even],
        eta_odd: vec![d.eta_odd],
    }
}

/// Augmented SpMMV (paper Fig. 5): the blocked form of [`aug_spmv`] over
/// row-major block vectors of width `R`, with all `2R` scalar products
/// accumulated on the fly.
pub fn aug_spmmv(
    h: &CrsMatrix,
    a: f64,
    b: f64,
    v: &BlockVector,
    w: &mut BlockVector,
) -> AugDotsBlock {
    let r_width = check_block_dims(h, v, w);
    let _probe = kernel_timer(KernelKind::AugSpmmv, h.nrows(), h.nnz(), r_width);
    if r_width == 1 {
        // A width-1 row-major block vector is a plain contiguous vector;
        // the fused single-vector kernel runs the identical flop chain
        // without the per-row block bookkeeping (the measured R=1
        // regression of BENCH_stages.json).
        return widen(aug_spmv_core(h, a, b, v.as_slice(), w.as_mut_slice()));
    }
    let mut eta_even = vec![0.0; r_width];
    let mut eta_odd = vec![Complex64::default(); r_width];
    let mut acc = vec![Complex64::default(); r_width];
    for r in 0..h.nrows() {
        let cols = h.row_cols(r);
        let vals = h.row_vals(r);
        acc.fill(Complex64::default());
        for (hv, &c) in vals.iter().zip(cols) {
            let xrow = v.row(c as usize);
            for j in 0..r_width {
                acc[j] = hv.mul_add(xrow[j], acc[j]);
            }
        }
        let vrow = v.row(r);
        // `vrow` borrows v immutably; w is a distinct block, so the row
        // update below cannot alias it.
        let wrow = w.row_mut(r);
        for j in 0..r_width {
            let vr = vrow[j];
            let wr = (acc[j] - vr.scale(b)).scale(2.0 * a) - wrow[j];
            wrow[j] = wr;
            eta_even[j] += vr.norm_sqr();
            eta_odd[j] = wr.conj().mul_add(vr, eta_odd[j]);
        }
    }
    AugDotsBlock { eta_even, eta_odd }
}

/// Row-parallel augmented SpMMV, tiled so each row block's `V`/`W`
/// working set stays resident in the per-thread cache budget (see
/// [`crate::tile`]; this is the fix for the measured `R = 32`
/// throughput regression). The tile size depends only on `r_width` and
/// the configured budget — never on the thread count — so the partial
/// dot products sit on fixed boundaries and the reduced `eta` values
/// are bitwise-identical for any number of threads.
pub fn aug_spmmv_par(
    h: &CrsMatrix,
    a: f64,
    b: f64,
    v: &BlockVector,
    w: &mut BlockVector,
) -> AugDotsBlock {
    aug_spmmv_par_budget(h, a, b, v, w, crate::tile::DEFAULT_CACHE_BYTES)
}

/// [`aug_spmmv_par`] against an explicit per-thread cache budget
/// (bytes), which scopes the tile sizing to this call — concurrent
/// solvers tuned for different machines cannot interfere. The budget
/// fixes the reduction-tree boundaries, so results are
/// bitwise-reproducible for a fixed budget and any thread count.
pub fn aug_spmmv_par_budget(
    h: &CrsMatrix,
    a: f64,
    b: f64,
    v: &BlockVector,
    w: &mut BlockVector,
    cache_bytes: usize,
) -> AugDotsBlock {
    let r_width = check_block_dims(h, v, w);
    let _probe = kernel_timer(KernelKind::AugSpmmv, h.nrows(), h.nnz(), r_width);
    if r_width == 1 {
        // Width-1 dispatch to the fused single-vector kernel (identical
        // update chain; eta reduction uses the fixed 1024-row chunks of
        // `aug_spmv_par` instead of width-1 tiles).
        return widen(aug_spmv_par_core(h, a, b, v.as_slice(), w.as_mut_slice()));
    }
    let rows_per_tile = crate::tile::tile_rows_for_budget(r_width, cache_bytes);
    let partials: Vec<(Vec<f64>, Vec<Complex64>)> = w
        .as_mut_slice()
        .par_chunks_mut(rows_per_tile * r_width)
        .enumerate()
        .map(|(ci, wc)| {
            let row0 = ci * rows_per_tile;
            let mut even = vec![0.0; r_width];
            let mut odd = vec![Complex64::default(); r_width];
            let mut acc = vec![Complex64::default(); r_width];
            for (i, wrow) in wc.chunks_mut(r_width).enumerate() {
                let r = row0 + i;
                let cols = h.row_cols(r);
                let vals = h.row_vals(r);
                acc.fill(Complex64::default());
                for (hv, &c) in vals.iter().zip(cols) {
                    let xrow = v.row(c as usize);
                    for j in 0..r_width {
                        acc[j] = hv.mul_add(xrow[j], acc[j]);
                    }
                }
                let vrow = v.row(r);
                for j in 0..r_width {
                    let vr = vrow[j];
                    let wr = (acc[j] - vr.scale(b)).scale(2.0 * a) - wrow[j];
                    wrow[j] = wr;
                    even[j] += vr.norm_sqr();
                    odd[j] = wr.conj().mul_add(vr, odd[j]);
                }
            }
            (even, odd)
        })
        .collect();
    let mut eta_even = vec![0.0; r_width];
    let mut eta_odd = vec![Complex64::default(); r_width];
    for (even, odd) in &partials {
        for j in 0..r_width {
            eta_even[j] += even[j];
            eta_odd[j] += odd[j];
        }
    }
    AugDotsBlock { eta_even, eta_odd }
}

/// Augmented SpMMV *without* the fused scalar products: the kernel of
/// paper Fig. 10(b). The caller computes the dots separately (e.g. with
/// [`BlockVector::columnwise_dot`]) — the ablation quantifies what the
/// extra two block sweeps cost.
pub fn aug_spmmv_nodot(h: &CrsMatrix, a: f64, b: f64, v: &BlockVector, w: &mut BlockVector) {
    let r_width = check_block_dims(h, v, w);
    let _probe = kernel_timer(KernelKind::AugSpmmv, h.nrows(), h.nnz(), r_width);
    if r_width == 1 {
        aug_spmv_nodot_core(h, a, b, v.as_slice(), w.as_mut_slice());
        return;
    }
    let mut acc = vec![Complex64::default(); r_width];
    for r in 0..h.nrows() {
        let cols = h.row_cols(r);
        let vals = h.row_vals(r);
        acc.fill(Complex64::default());
        for (hv, &c) in vals.iter().zip(cols) {
            let xrow = v.row(c as usize);
            for j in 0..r_width {
                acc[j] = hv.mul_add(xrow[j], acc[j]);
            }
        }
        let vrow = v.row(r);
        let wrow = w.row_mut(r);
        for j in 0..r_width {
            let vr = vrow[j];
            wrow[j] = (acc[j] - vr.scale(b)).scale(2.0 * a) - wrow[j];
        }
    }
}

/// The no-dot form of the single-vector update, for the width-1
/// dispatch of [`aug_spmmv_nodot`].
fn aug_spmv_nodot_core(h: &CrsMatrix, a: f64, b: f64, v: &[Complex64], w: &mut [Complex64]) {
    for r in 0..h.nrows() {
        let cols = h.row_cols(r);
        let vals = h.row_vals(r);
        let mut acc = Complex64::default();
        for (hv, &c) in vals.iter().zip(cols) {
            acc = hv.mul_add(v[c as usize], acc);
        }
        let vr = v[r];
        w[r] = (acc - vr.scale(b)).scale(2.0 * a) - w[r];
    }
}

/// Parallel no-dot form of the single-vector update, for the width-1
/// dispatch of [`aug_spmmv_nodot_par`].
fn aug_spmv_nodot_par_core(h: &CrsMatrix, a: f64, b: f64, v: &[Complex64], w: &mut [Complex64]) {
    w.par_chunks_mut(ROWS_PER_CHUNK)
        .enumerate()
        .for_each(|(ci, wc)| {
            let row0 = ci * ROWS_PER_CHUNK;
            for (i, wr_slot) in wc.iter_mut().enumerate() {
                let r = row0 + i;
                let cols = h.row_cols(r);
                let vals = h.row_vals(r);
                let mut acc = Complex64::default();
                for (hv, &c) in vals.iter().zip(cols) {
                    acc = hv.mul_add(v[c as usize], acc);
                }
                let vr = v[r];
                *wr_slot = (acc - vr.scale(b)).scale(2.0 * a) - *wr_slot;
            }
        });
}

/// Parallel variant of [`aug_spmmv_nodot`], tiled like
/// [`aug_spmmv_par`].
pub fn aug_spmmv_nodot_par(h: &CrsMatrix, a: f64, b: f64, v: &BlockVector, w: &mut BlockVector) {
    aug_spmmv_nodot_par_budget(h, a, b, v, w, crate::tile::DEFAULT_CACHE_BYTES)
}

/// [`aug_spmmv_nodot_par`] against an explicit per-thread cache budget
/// (bytes); see [`aug_spmmv_par_budget`].
pub fn aug_spmmv_nodot_par_budget(
    h: &CrsMatrix,
    a: f64,
    b: f64,
    v: &BlockVector,
    w: &mut BlockVector,
    cache_bytes: usize,
) {
    let r_width = check_block_dims(h, v, w);
    let _probe = kernel_timer(KernelKind::AugSpmmv, h.nrows(), h.nnz(), r_width);
    if r_width == 1 {
        aug_spmv_nodot_par_core(h, a, b, v.as_slice(), w.as_mut_slice());
        return;
    }
    let rows_per_tile = crate::tile::tile_rows_for_budget(r_width, cache_bytes);
    w.as_mut_slice()
        .par_chunks_mut(rows_per_tile * r_width)
        .enumerate()
        .for_each(|(ci, wc)| {
            let row0 = ci * rows_per_tile;
            let mut acc = vec![Complex64::default(); r_width];
            for (i, wrow) in wc.chunks_mut(r_width).enumerate() {
                let r = row0 + i;
                let cols = h.row_cols(r);
                let vals = h.row_vals(r);
                acc.fill(Complex64::default());
                for (hv, &c) in vals.iter().zip(cols) {
                    let xrow = v.row(c as usize);
                    for j in 0..r_width {
                        acc[j] = hv.mul_add(xrow[j], acc[j]);
                    }
                }
                let vrow = v.row(r);
                for j in 0..r_width {
                    let vr = vrow[j];
                    wrow[j] = (acc[j] - vr.scale(b)).scale(2.0 * a) - wrow[j];
                }
            }
        });
}

fn check_block_dims(h: &CrsMatrix, v: &BlockVector, w: &BlockVector) -> usize {
    assert_eq!(
        h.nrows(),
        h.ncols(),
        "augmented kernels need a square matrix"
    );
    assert_eq!(v.rows(), h.ncols(), "block v dimension mismatch");
    assert_eq!(w.rows(), h.nrows(), "block w dimension mismatch");
    assert_eq!(v.width(), w.width(), "block width mismatch");
    v.width()
}

/// Augmented SpMMV over a *local* (rectangular) matrix block, the
/// building block of distributed execution.
///
/// Under the 1-D row distribution a rank owns rows `0..n_local` of a
/// remapped matrix whose column space is `local rows ++ halo rows`
/// (`ncols >= nrows`), with the convention that column `i < nrows` is
/// local row `i` — so the diagonal shift `-b·v_i` and the scalar
/// products use `v.row(i)` exactly as in the square kernel. Both blocks
/// span the extended column space (`v`, `w` have `ncols` rows); only the
/// first `nrows` rows of `w` are written, the halo rows are refreshed by
/// communication between iterations.
pub fn aug_spmmv_rect(
    h: &CrsMatrix,
    a: f64,
    b: f64,
    v: &BlockVector,
    w: &mut BlockVector,
) -> AugDotsBlock {
    assert!(
        h.ncols() >= h.nrows(),
        "local matrix must have ncols >= nrows"
    );
    assert_eq!(v.rows(), h.ncols(), "block v dimension mismatch");
    assert!(w.rows() >= h.nrows(), "block w too small");
    assert_eq!(v.width(), w.width(), "block width mismatch");
    let r_width = v.width();
    let _probe = kernel_timer(KernelKind::AugSpmmv, h.nrows(), h.nnz(), r_width);
    let mut eta_even = vec![0.0; r_width];
    let mut eta_odd = vec![Complex64::default(); r_width];
    let mut acc = vec![Complex64::default(); r_width];
    for r in 0..h.nrows() {
        let cols = h.row_cols(r);
        let vals = h.row_vals(r);
        acc.fill(Complex64::default());
        for (hv, &c) in vals.iter().zip(cols) {
            let xrow = v.row(c as usize);
            for j in 0..r_width {
                acc[j] = hv.mul_add(xrow[j], acc[j]);
            }
        }
        let vrow = v.row(r);
        let wrow = w.row_mut(r);
        for j in 0..r_width {
            let vr = vrow[j];
            let wr = (acc[j] - vr.scale(b)).scale(2.0 * a) - wrow[j];
            wrow[j] = wr;
            eta_even[j] += vr.norm_sqr();
            eta_odd[j] = wr.conj().mul_add(vr, eta_odd[j]);
        }
    }
    AugDotsBlock { eta_even, eta_odd }
}

/// Plain rectangular SpMMV `W[0..nrows] = H V` on the extended column
/// space (used by the distributed initialization step).
pub fn spmmv_rect(h: &CrsMatrix, v: &BlockVector, w: &mut BlockVector) {
    assert!(
        h.ncols() >= h.nrows(),
        "local matrix must have ncols >= nrows"
    );
    assert_eq!(v.rows(), h.ncols(), "block v dimension mismatch");
    assert!(w.rows() >= h.nrows(), "block w too small");
    assert_eq!(v.width(), w.width(), "block width mismatch");
    let r_width = v.width();
    for r in 0..h.nrows() {
        let cols = h.row_cols(r);
        let vals = h.row_vals(r);
        let wrow = w.row_mut(r);
        wrow.fill(Complex64::default());
        for (hv, &c) in vals.iter().zip(cols) {
            let xrow = v.row(c as usize);
            for j in 0..r_width {
                wrow[j] = hv.mul_add(xrow[j], wrow[j]);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::CooMatrix;
    use crate::spmv::spmv;
    use kpm_num::vector::{axpy, dot, nrm2, scal};
    use kpm_num::Vector;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_hermitian(n: usize, seed: u64) -> CrsMatrix {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut coo = CooMatrix::new(n, n);
        for r in 0..n {
            coo.push(r, r, Complex64::real(rng.gen_range(-1.0..1.0)));
            for _ in 0..3 {
                let c = rng.gen_range(0..n);
                if c != r {
                    let v = Complex64::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0));
                    coo.push(r, c, v);
                    coo.push(c, r, v.conj());
                }
            }
        }
        coo.to_crs()
    }

    /// Reference implementation via the naive BLAS-1 chain (paper Fig. 3).
    fn naive_step(
        h: &CrsMatrix,
        a: f64,
        b: f64,
        v: &[Complex64],
        w: &mut [Complex64],
    ) -> (f64, Complex64) {
        let n = v.len();
        let mut u = vec![Complex64::default(); n];
        spmv(h, v, &mut u); // u = H v
        axpy(Complex64::real(-b), v, &mut u); // u = u - b v
        scal(Complex64::real(-1.0), w); // w = -w
        axpy(Complex64::real(2.0 * a), &u, w); // w = w + 2a u
        (nrm2(v), dot(w, v))
    }

    #[test]
    fn aug_spmv_matches_naive_chain() {
        let n = 120;
        let h = random_hermitian(n, 21);
        let mut rng = StdRng::seed_from_u64(22);
        let v = Vector::random(n, &mut rng).into_vec();
        let w0 = Vector::random(n, &mut rng).into_vec();
        let (a, b) = (0.37, -0.12);

        let mut w_naive = w0.clone();
        let (even_ref, odd_ref) = naive_step(&h, a, b, &v, &mut w_naive);

        let mut w_aug = w0;
        let dots = aug_spmv(&h, a, b, &v, &mut w_aug);

        for (x, y) in w_aug.iter().zip(&w_naive) {
            assert!(x.approx_eq(*y, 1e-12));
        }
        assert!((dots.eta_even - even_ref).abs() < 1e-9);
        assert!(dots.eta_odd.approx_eq(odd_ref, 1e-9));
    }

    #[test]
    fn aug_spmv_par_matches_serial() {
        let n = 2000;
        let h = random_hermitian(n, 31);
        let mut rng = StdRng::seed_from_u64(32);
        let v = Vector::random(n, &mut rng).into_vec();
        let w0 = Vector::random(n, &mut rng).into_vec();
        let mut w1 = w0.clone();
        let mut w2 = w0;
        let d1 = aug_spmv(&h, 0.5, 0.25, &v, &mut w1);
        let d2 = aug_spmv_par(&h, 0.5, 0.25, &v, &mut w2);
        assert_eq!(w1, w2);
        assert!((d1.eta_even - d2.eta_even).abs() < 1e-9);
        assert!(d1.eta_odd.approx_eq(d2.eta_odd, 1e-9));
    }

    #[test]
    fn aug_spmmv_matches_per_column_aug_spmv() {
        let n = 90;
        let r_width = 6;
        let h = random_hermitian(n, 41);
        let mut rng = StdRng::seed_from_u64(42);
        let v = BlockVector::random(n, r_width, &mut rng);
        let w0 = BlockVector::random(n, r_width, &mut rng);
        let (a, b) = (0.9, 0.1);

        let mut w_block = w0.clone();
        let dots = aug_spmmv(&h, a, b, &v, &mut w_block);

        for j in 0..r_width {
            let vc = v.column(j).into_vec();
            let mut wc = w0.column(j).into_vec();
            let d = aug_spmv(&h, a, b, &vc, &mut wc);
            let got = w_block.column(j).into_vec();
            for (x, y) in got.iter().zip(&wc) {
                assert!(x.approx_eq(*y, 1e-12), "col {j}");
            }
            assert!((dots.eta_even[j] - d.eta_even).abs() < 1e-9, "col {j}");
            assert!(dots.eta_odd[j].approx_eq(d.eta_odd, 1e-9), "col {j}");
        }
    }

    #[test]
    fn aug_spmmv_par_matches_serial() {
        let n = 1500;
        let r_width = 4;
        let h = random_hermitian(n, 51);
        let mut rng = StdRng::seed_from_u64(52);
        let v = BlockVector::random(n, r_width, &mut rng);
        let w0 = BlockVector::random(n, r_width, &mut rng);
        let mut w1 = w0.clone();
        let mut w2 = w0;
        let d1 = aug_spmmv(&h, 0.4, -0.3, &v, &mut w1);
        let d2 = aug_spmmv_par(&h, 0.4, -0.3, &v, &mut w2);
        assert_eq!(w1, w2);
        for j in 0..r_width {
            assert!((d1.eta_even[j] - d2.eta_even[j]).abs() < 1e-9);
            assert!(d1.eta_odd[j].approx_eq(d2.eta_odd[j], 1e-9));
        }
    }

    #[test]
    fn nodot_variant_updates_identically() {
        let n = 70;
        let r_width = 3;
        let h = random_hermitian(n, 61);
        let mut rng = StdRng::seed_from_u64(62);
        let v = BlockVector::random(n, r_width, &mut rng);
        let w0 = BlockVector::random(n, r_width, &mut rng);

        let mut w_fused = w0.clone();
        let dots = aug_spmmv(&h, 0.7, 0.0, &v, &mut w_fused);

        let mut w_nodot = w0;
        aug_spmmv_nodot(&h, 0.7, 0.0, &v, &mut w_nodot);
        assert!(w_fused.max_abs_diff(&w_nodot) < 1e-14);

        // Separate dot computation reproduces the fused results.
        let even: Vec<f64> = v.columnwise_nrm2();
        let odd = w_nodot.columnwise_dot(&v);
        for j in 0..r_width {
            assert!((dots.eta_even[j] - even[j]).abs() < 1e-9);
            assert!(dots.eta_odd[j].approx_eq(odd[j], 1e-9));
        }
    }

    #[test]
    fn nodot_par_matches_nodot() {
        let n = 1200;
        let r_width = 8;
        let h = random_hermitian(n, 71);
        let mut rng = StdRng::seed_from_u64(72);
        let v = BlockVector::random(n, r_width, &mut rng);
        let w0 = BlockVector::random(n, r_width, &mut rng);
        let mut w1 = w0.clone();
        let mut w2 = w0;
        aug_spmmv_nodot(&h, 1.1, 0.2, &v, &mut w1);
        aug_spmmv_nodot_par(&h, 1.1, 0.2, &v, &mut w2);
        assert_eq!(w1, w2);
    }

    #[test]
    fn rect_kernel_on_square_matrix_matches_square_kernel() {
        let n = 80;
        let r_width = 4;
        let h = random_hermitian(n, 91);
        let mut rng = StdRng::seed_from_u64(92);
        let v = BlockVector::random(n, r_width, &mut rng);
        let w0 = BlockVector::random(n, r_width, &mut rng);
        let mut w1 = w0.clone();
        let mut w2 = w0;
        let d1 = aug_spmmv(&h, 0.6, -0.1, &v, &mut w1);
        let d2 = aug_spmmv_rect(&h, 0.6, -0.1, &v, &mut w2);
        assert_eq!(w1, w2);
        assert_eq!(d1, d2);
    }

    #[test]
    fn rect_kernel_computes_row_block() {
        // Split a square system into two row blocks with identity
        // column remap (local cols == global cols) and check the pieces
        // reassemble the square result.
        let n = 60;
        let r_width = 3;
        let h = random_hermitian(n, 93);
        let mut rng = StdRng::seed_from_u64(94);
        let v = BlockVector::random(n, r_width, &mut rng);
        let w0 = BlockVector::random(n, r_width, &mut rng);
        let mut w_ref = w0.clone();
        let dots_ref = aug_spmmv(&h, 0.8, 0.05, &v, &mut w_ref);

        let half = n / 2;
        let top = h.row_block(0, half);
        let bottom = h.row_block(half, n);
        // Top block: columns are global, local row i == global row i.
        let mut w_top = w0.clone();
        let d_top = aug_spmmv_rect(&top, 0.8, 0.05, &v, &mut w_top);
        for i in 0..half {
            for j in 0..r_width {
                assert!(w_top.get(i, j).approx_eq(w_ref.get(i, j), 1e-12));
            }
        }
        // Bottom block violates the "column i == local row i" shift
        // convention, so apply it through a square-extended view: embed
        // as rows half..n of a full-size kernel by checking only the
        // plain SpMMV part.
        let mut y = BlockVector::zeros(n, r_width);
        spmmv_rect(&bottom, &v, &mut y);
        let mut y_ref = BlockVector::zeros(n, r_width);
        crate::spmv::spmmv(&h, &v, &mut y_ref);
        for i in 0..(n - half) {
            for j in 0..r_width {
                assert!(y.get(i, j).approx_eq(y_ref.get(half + i, j), 1e-12));
            }
        }
        // Dots of the top block are partial sums over its rows only.
        assert!(d_top.eta_even[0] <= dots_ref.eta_even[0] + 1e-12);
    }

    #[test]
    fn eta_even_is_positive_for_nonzero_v() {
        let n = 50;
        let h = random_hermitian(n, 81);
        let mut rng = StdRng::seed_from_u64(82);
        let v = Vector::random(n, &mut rng).into_vec();
        let mut w = vec![Complex64::default(); n];
        let dots = aug_spmv(&h, 1.0, 0.0, &v, &mut w);
        assert!(dots.eta_even > 0.0);
    }
}
