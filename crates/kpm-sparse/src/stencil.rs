//! Matrix-free stencil storage for the topological-insulator operator.
//!
//! The paper's roofline analysis makes the matrix stream the dominant
//! traffic term (`N_nz ≈ 13·N` elements of 20 bytes each per sweep).
//! [`StencilMatrix`] removes that term outright: instead of streaming
//! stored `(col, val)` pairs, every kernel *regenerates* the row from
//! the lattice geometry — per site one on-site diagonal (64 bytes) plus
//! six precomputed 4×4 hopping-block row templates shared by all sites.
//! β effectively drops to pure vector traffic; `stored_elements()` is 0
//! and the probes model zero matrix bytes.
//!
//! Bitwise contract: the regenerated row is *identical* — column order,
//! duplicate merging, zero filtering and all — to the row the kpm-topo
//! assembly writes into CRS for the same lattice, so every kernel here
//! reuses the exact floating-point chain of [`crate::aug`] /
//! [`crate::spmv`] and produces bit-identical vectors and dot products
//! (serial ≡ serial, parallel ≡ parallel at equal cache budget). The
//! determinism and property suites pin this down against the CRS build.
//!
//! The row generator mirrors the assembly loop of kpm-topo
//! `hamiltonian.rs`: gather the on-site entry first, then for each
//! direction the `+ê_j` partner (`T_j†`) and the `−ê_j` partner
//! (`T_j`), sort by column, merge duplicates (possible only on
//! extent-2 periodic axes where `n+ê_j == n−ê_j`; IEEE addition of the
//! two candidates is commutative, so the unstable sort in the assembly
//! cannot produce different bits). Entries that are exactly zero are
//! filtered *before* the merge, exactly like the assembly.

use kpm_num::summation::{pairwise_sum, pairwise_sum_complex};
use kpm_num::{BlockVector, Complex64};
use kpm_obs::probe::{kernel_timer_fmt, KernelKind, ProbeFormat};
use rayon::prelude::*;

use crate::aug::{widen, AugDots, AugDotsBlock, ROWS_PER_CHUNK};
use crate::aug_sell_simd::axpy_row;

/// Upper bound on regenerated row length: 1 on-site entry plus six
/// hopping blocks contributing at most 4 entries per orbital row.
pub const MAX_ROW_ENTRIES: usize = 32;

/// One orbital row of a 4×4 hopping block, pre-filtered to its
/// non-zero entries (column offset within the block, value).
#[derive(Debug, Clone, Copy, Default)]
struct HopRow {
    len: u8,
    cols: [u8; 4],
    vals: [Complex64; 4],
}

/// A matrix-free representation of the nearest-neighbour 4-orbital
/// lattice operator (paper Eq. 1): rows are regenerated on the fly
/// from `O(1)` stencil data instead of streamed from memory.
///
/// Construction takes the on-site *diagonals* per site and the six raw
/// hopping blocks in assembly order (`+ê_j` H.c. partner before `−ê_j`
/// for each direction); see [`StencilMatrix::new`]. kpm-topo provides
/// a builder (`TopoHamiltonian::stencil_matrix`) that feeds it the
/// exact blocks its CRS assembly uses.
#[derive(Debug, Clone)]
pub struct StencilMatrix {
    nx: usize,
    ny: usize,
    nz: usize,
    periodic: [bool; 3],
    /// Diagonal of the on-site block, per site (the TI on-site block
    /// `V·Γ⁰ + 2Γ¹` is exactly diagonal).
    onsite_diag: Vec<[Complex64; 4]>,
    /// Row templates: `[2j]` is the `+ê_j` block (`T_j†`), `[2j+1]`
    /// the `−ê_j` block (`T_j`), each split into 4 orbital rows.
    hop_rows: [[HopRow; 4]; 6],
    nnz: usize,
}

impl StencilMatrix {
    /// Builds the stencil operator.
    ///
    /// * `onsite_diag[site]` — the diagonal of the on-site 4×4 block
    ///   (the block must be diagonal; off-diagonal on-site structure is
    ///   not representable and is the caller's contract to uphold),
    /// * `hop_blocks` — the six 4×4 hopping blocks in assembly order:
    ///   index `2j` holds the `+ê_j` partner and `2j+1` the `−ê_j`
    ///   partner for direction `j ∈ {0,1,2}` (x, y, z),
    /// * `periodic` — per-axis boundary conditions; extent-1 axes are
    ///   always treated as open (a periodic wrap would be a self-loop),
    ///   matching the lattice neighbour rules.
    pub fn new(
        nx: usize,
        ny: usize,
        nz: usize,
        periodic: [bool; 3],
        onsite_diag: Vec<[Complex64; 4]>,
        hop_blocks: &[[[Complex64; 4]; 4]; 6],
    ) -> Self {
        assert!(
            nx > 0 && ny > 0 && nz > 0,
            "lattice extents must be positive"
        );
        assert_eq!(
            onsite_diag.len(),
            nx * ny * nz,
            "one on-site diagonal per site"
        );
        let mut hop_rows = [[HopRow::default(); 4]; 6];
        for (b, block) in hop_blocks.iter().enumerate() {
            for (o, row) in block.iter().enumerate() {
                let hr = &mut hop_rows[b][o];
                for (p, &val) in row.iter().enumerate() {
                    // The same pre-merge zero filter the assembly applies.
                    if val != Complex64::default() {
                        hr.cols[hr.len as usize] = p as u8;
                        hr.vals[hr.len as usize] = val;
                        hr.len += 1;
                    }
                }
            }
        }
        let mut m = Self {
            nx,
            ny,
            nz,
            periodic,
            onsite_diag,
            hop_rows,
            nnz: 0,
        };
        // Count logical non-zeros by running the row generator once.
        let mut gen = RowGen::new(&m);
        let mut cols = [0u32; MAX_ROW_ENTRIES];
        let mut vals = [Complex64::default(); MAX_ROW_ENTRIES];
        let mut nnz = 0;
        for r in 0..4 * m.sites() {
            nnz += gen.row(r, &mut cols, &mut vals);
        }
        m.nnz = nnz;
        m
    }

    /// Number of lattice sites.
    pub fn sites(&self) -> usize {
        self.nx * self.ny * self.nz
    }

    /// Matrix dimension `N = 4 · Nx · Ny · Nz`.
    pub fn nrows(&self) -> usize {
        4 * self.sites()
    }

    /// The operator is square by construction.
    pub fn ncols(&self) -> usize {
        self.nrows()
    }

    /// Number of logical non-zeros of the regenerated operator.
    pub fn nnz(&self) -> usize {
        self.nnz
    }

    /// Lattice extents `(Nx, Ny, Nz)`.
    pub fn shape(&self) -> (usize, usize, usize) {
        (self.nx, self.ny, self.nz)
    }

    /// Per-axis periodicity flags.
    pub fn periodic(&self) -> [bool; 3] {
        self.periodic
    }

    /// The content fingerprint of the *assembled* operator: identical
    /// to [`crate::crs::CrsMatrix::content_fingerprint`] of the CRS
    /// build of the same lattice, so service-side request coalescing
    /// and moment caching work across the CRS/stencil format boundary.
    pub fn content_fingerprint(&self) -> u64 {
        let n = self.nrows();
        let mut row_ptr: Vec<u64> = Vec::with_capacity(n + 1);
        let mut all_cols: Vec<u32> = Vec::with_capacity(self.nnz);
        let mut all_vals: Vec<Complex64> = Vec::with_capacity(self.nnz);
        row_ptr.push(0);
        let mut gen = RowGen::new(self);
        let mut cols = [0u32; MAX_ROW_ENTRIES];
        let mut vals = [Complex64::default(); MAX_ROW_ENTRIES];
        for r in 0..n {
            let len = gen.row(r, &mut cols, &mut vals);
            all_cols.extend_from_slice(&cols[..len]);
            all_vals.extend_from_slice(&vals[..len]);
            row_ptr.push(all_cols.len() as u64);
        }
        let mut h = crate::crs::Fnv1a::new();
        h.write_u64(n as u64);
        h.write_u64(n as u64);
        for &p in &row_ptr {
            h.write_u64(p);
        }
        for &c in &all_cols {
            h.write_u64(c as u64);
        }
        for v in &all_vals {
            h.write_u64(v.re.to_bits());
            h.write_u64(v.im.to_bits());
        }
        h.finish()
    }

    /// Assembles the regenerated rows into an explicit CRS matrix
    /// (testing/interop; the kernels never materialize this).
    pub fn to_crs(&self) -> crate::crs::CrsMatrix {
        let n = self.nrows();
        let mut row_ptr: Vec<u64> = Vec::with_capacity(n + 1);
        let mut all_cols: Vec<u32> = Vec::with_capacity(self.nnz);
        let mut all_vals: Vec<Complex64> = Vec::with_capacity(self.nnz);
        row_ptr.push(0);
        let mut gen = RowGen::new(self);
        let mut cols = [0u32; MAX_ROW_ENTRIES];
        let mut vals = [Complex64::default(); MAX_ROW_ENTRIES];
        for r in 0..n {
            let len = gen.row(r, &mut cols, &mut vals);
            all_cols.extend_from_slice(&cols[..len]);
            all_vals.extend_from_slice(&vals[..len]);
            row_ptr.push(all_cols.len() as u64);
        }
        crate::crs::CrsMatrix::from_raw(n, n, row_ptr, all_cols, all_vals)
    }

    /// Neighbour site in `±ê_j`, mirroring the lattice rules: periodic
    /// axes wrap, open axes (and extent-1 axes unconditionally) drop
    /// the bond. `dir` indexes the six partners in assembly order.
    #[inline]
    fn neighbor(&self, x: usize, y: usize, z: usize, dir: usize) -> Option<u32> {
        let axis = dir / 2;
        let forward = dir.is_multiple_of(2);
        let (extent, coord) = match axis {
            0 => (self.nx, x),
            1 => (self.ny, y),
            _ => (self.nz, z),
        };
        if extent == 1 {
            return None;
        }
        let moved = if forward {
            if coord + 1 < extent {
                coord + 1
            } else if self.periodic[axis] {
                0
            } else {
                return None;
            }
        } else if coord > 0 {
            coord - 1
        } else if self.periodic[axis] {
            extent - 1
        } else {
            return None;
        };
        let site = match axis {
            0 => moved + self.nx * (y + self.ny * z),
            1 => x + self.nx * (moved + self.ny * z),
            _ => x + self.nx * (y + self.ny * moved),
        };
        Some(site as u32)
    }
}

/// Streaming row generator with a per-site neighbour cache (the four
/// orbital rows of a site share one geometry lookup). Each worker
/// chunk owns its own generator — no shared mutable state.
struct RowGen<'a> {
    m: &'a StencilMatrix,
    site: usize,
    neigh: [Option<u32>; 6],
}

impl<'a> RowGen<'a> {
    #[inline]
    fn new(m: &'a StencilMatrix) -> Self {
        Self {
            m,
            site: usize::MAX,
            neigh: [None; 6],
        }
    }

    /// Regenerates row `r` into the scratch arrays (sorted by column,
    /// duplicates merged, zeros filtered) and returns its length.
    #[inline]
    fn row(
        &mut self,
        r: usize,
        cols: &mut [u32; MAX_ROW_ENTRIES],
        vals: &mut [Complex64; MAX_ROW_ENTRIES],
    ) -> usize {
        self.m
            .regen_row(r, &mut self.site, &mut self.neigh, cols, vals)
    }
}

impl StencilMatrix {
    /// Regenerates row `r` with a caller-held site cache — the shared
    /// engine behind [`RowGen`] and the power kernels' row source.
    #[inline]
    pub(crate) fn regen_row(
        &self,
        r: usize,
        cached_site: &mut usize,
        neigh: &mut [Option<u32>; 6],
        cols: &mut [u32; MAX_ROW_ENTRIES],
        vals: &mut [Complex64; MAX_ROW_ENTRIES],
    ) -> usize {
        let m = self;
        let site = r / 4;
        let o = r % 4;
        if site != *cached_site {
            let x = site % m.nx;
            let y = (site / m.nx) % m.ny;
            let z = site / (m.nx * m.ny);
            for (dir, slot) in neigh.iter_mut().enumerate() {
                *slot = m.neighbor(x, y, z, dir);
            }
            *cached_site = site;
        }
        let mut n = 0;
        let d = m.onsite_diag[site][o];
        if d != Complex64::default() {
            cols[n] = (4 * site + o) as u32;
            vals[n] = d;
            n += 1;
        }
        for (dir, neigh) in neigh.iter().enumerate() {
            if let Some(ns) = neigh {
                let hr = &m.hop_rows[dir][o];
                let base = 4 * ns;
                for e in 0..hr.len as usize {
                    cols[n] = base + hr.cols[e] as u32;
                    vals[n] = hr.vals[e];
                    n += 1;
                }
            }
        }
        // Insertion sort by column (13 nearly-sorted entries).
        for i in 1..n {
            let (c, v) = (cols[i], vals[i]);
            let mut j = i;
            while j > 0 && cols[j - 1] > c {
                cols[j] = cols[j - 1];
                vals[j] = vals[j - 1];
                j -= 1;
            }
            cols[j] = c;
            vals[j] = v;
        }
        // Merge duplicate columns (at most pairs; addition of the two
        // partners is order-independent down to the bit).
        let mut out = 0;
        let mut k = 0;
        while k < n {
            let c = cols[k];
            let mut acc = vals[k];
            k += 1;
            while k < n && cols[k] == c {
                acc += vals[k];
                k += 1;
            }
            cols[out] = c;
            vals[out] = acc;
            out += 1;
        }
        out
    }
}

fn check_vec_dims(m: &StencilMatrix, v: &[Complex64], w: &[Complex64], what: &str) {
    assert_eq!(v.len(), m.ncols(), "{what}: v dimension mismatch");
    assert_eq!(w.len(), m.nrows(), "{what}: w dimension mismatch");
}

fn check_block_dims(m: &StencilMatrix, v: &BlockVector, w: &BlockVector) -> usize {
    assert_eq!(v.rows(), m.ncols(), "block v dimension mismatch");
    assert_eq!(w.rows(), m.nrows(), "block w dimension mismatch");
    assert_eq!(v.width(), w.width(), "block width mismatch");
    v.width()
}

/// Matrix-free augmented SpMV; the floating-point chain of
/// [`crate::aug::aug_spmv`] over regenerated rows.
pub fn aug_spmv(
    m: &StencilMatrix,
    a: f64,
    b: f64,
    v: &[Complex64],
    w: &mut [Complex64],
) -> AugDots {
    check_vec_dims(m, v, w, "aug_spmv");
    let _probe = kernel_timer_fmt(
        KernelKind::AugSpmv,
        m.nrows(),
        m.nnz(),
        1,
        0,
        ProbeFormat::Stencil,
    );
    aug_spmv_core(m, a, b, v, w)
}

pub(crate) fn aug_spmv_core(
    m: &StencilMatrix,
    a: f64,
    b: f64,
    v: &[Complex64],
    w: &mut [Complex64],
) -> AugDots {
    let mut gen = RowGen::new(m);
    let mut cols = [0u32; MAX_ROW_ENTRIES];
    let mut vals = [Complex64::default(); MAX_ROW_ENTRIES];
    let mut eta_even = 0.0;
    let mut eta_odd = Complex64::default();
    for (r, wr_slot) in w.iter_mut().enumerate() {
        let len = gen.row(r, &mut cols, &mut vals);
        let mut acc = Complex64::default();
        for (hv, &c) in vals[..len].iter().zip(&cols[..len]) {
            acc = hv.mul_add(v[c as usize], acc);
        }
        let vr = v[r];
        let wr = (acc - vr.scale(b)).scale(2.0 * a) - *wr_slot;
        *wr_slot = wr;
        eta_even += vr.norm_sqr();
        eta_odd = wr.conj().mul_add(vr, eta_odd);
    }
    AugDots { eta_even, eta_odd }
}

/// Row-parallel matrix-free augmented SpMV; identical reduction
/// boundaries (1024-row chunks, pairwise combine) to
/// [`crate::aug::aug_spmv_par`].
pub fn aug_spmv_par(
    m: &StencilMatrix,
    a: f64,
    b: f64,
    v: &[Complex64],
    w: &mut [Complex64],
) -> AugDots {
    check_vec_dims(m, v, w, "aug_spmv_par");
    let _probe = kernel_timer_fmt(
        KernelKind::AugSpmv,
        m.nrows(),
        m.nnz(),
        1,
        0,
        ProbeFormat::Stencil,
    );
    aug_spmv_par_core(m, a, b, v, w)
}

pub(crate) fn aug_spmv_par_core(
    m: &StencilMatrix,
    a: f64,
    b: f64,
    v: &[Complex64],
    w: &mut [Complex64],
) -> AugDots {
    let partials: Vec<(f64, Complex64)> = w
        .par_chunks_mut(ROWS_PER_CHUNK)
        .enumerate()
        .map(|(ci, wc)| {
            let row0 = ci * ROWS_PER_CHUNK;
            let mut gen = RowGen::new(m);
            let mut cols = [0u32; MAX_ROW_ENTRIES];
            let mut vals = [Complex64::default(); MAX_ROW_ENTRIES];
            let mut even = 0.0;
            let mut odd = Complex64::default();
            for (i, wr_slot) in wc.iter_mut().enumerate() {
                let r = row0 + i;
                let len = gen.row(r, &mut cols, &mut vals);
                let mut acc = Complex64::default();
                for (hv, &c) in vals[..len].iter().zip(&cols[..len]) {
                    acc = hv.mul_add(v[c as usize], acc);
                }
                let vr = v[r];
                let wr = (acc - vr.scale(b)).scale(2.0 * a) - *wr_slot;
                *wr_slot = wr;
                even += vr.norm_sqr();
                odd = wr.conj().mul_add(vr, odd);
            }
            (even, odd)
        })
        .collect();
    let eta_even = pairwise_sum(&partials.iter().map(|p| p.0).collect::<Vec<_>>());
    let eta_odd = pairwise_sum_complex(&partials.iter().map(|p| p.1).collect::<Vec<_>>());
    AugDots { eta_even, eta_odd }
}

/// Matrix-free augmented SpMMV (serial blocked form).
pub fn aug_spmmv(
    m: &StencilMatrix,
    a: f64,
    b: f64,
    v: &BlockVector,
    w: &mut BlockVector,
) -> AugDotsBlock {
    let r_width = check_block_dims(m, v, w);
    let _probe = kernel_timer_fmt(
        KernelKind::AugSpmmv,
        m.nrows(),
        m.nnz(),
        r_width,
        0,
        ProbeFormat::Stencil,
    );
    if r_width == 1 {
        return widen(aug_spmv_core(m, a, b, v.as_slice(), w.as_mut_slice()));
    }
    let use_simd = crate::simd::active();
    let mut gen = RowGen::new(m);
    let mut cols = [0u32; MAX_ROW_ENTRIES];
    let mut vals = [Complex64::default(); MAX_ROW_ENTRIES];
    let mut eta_even = vec![0.0; r_width];
    let mut eta_odd = vec![Complex64::default(); r_width];
    let mut acc = vec![Complex64::default(); r_width];
    for r in 0..m.nrows() {
        let len = gen.row(r, &mut cols, &mut vals);
        acc.fill(Complex64::default());
        for (hv, &c) in vals[..len].iter().zip(&cols[..len]) {
            axpy_row(*hv, v.row(c as usize), &mut acc, use_simd);
        }
        let vrow = v.row(r);
        let wrow = w.row_mut(r);
        for j in 0..r_width {
            let vr = vrow[j];
            let wr = (acc[j] - vr.scale(b)).scale(2.0 * a) - wrow[j];
            wrow[j] = wr;
            eta_even[j] += vr.norm_sqr();
            eta_odd[j] = wr.conj().mul_add(vr, eta_odd[j]);
        }
    }
    AugDotsBlock { eta_even, eta_odd }
}

/// Row-parallel matrix-free augmented SpMMV at the default cache
/// budget.
pub fn aug_spmmv_par(
    m: &StencilMatrix,
    a: f64,
    b: f64,
    v: &BlockVector,
    w: &mut BlockVector,
) -> AugDotsBlock {
    aug_spmmv_par_budget(m, a, b, v, w, crate::tile::DEFAULT_CACHE_BYTES)
}

/// Row-parallel matrix-free augmented SpMMV; identical tile boundaries
/// (and hence reduction tree) to [`crate::aug::aug_spmmv_par_budget`].
pub fn aug_spmmv_par_budget(
    m: &StencilMatrix,
    a: f64,
    b: f64,
    v: &BlockVector,
    w: &mut BlockVector,
    cache_bytes: usize,
) -> AugDotsBlock {
    let r_width = check_block_dims(m, v, w);
    let _probe = kernel_timer_fmt(
        KernelKind::AugSpmmv,
        m.nrows(),
        m.nnz(),
        r_width,
        0,
        ProbeFormat::Stencil,
    );
    if r_width == 1 {
        return widen(aug_spmv_par_core(m, a, b, v.as_slice(), w.as_mut_slice()));
    }
    let rows_per_tile = crate::tile::tile_rows_for_budget(r_width, cache_bytes);
    let use_simd = crate::simd::active();
    let partials: Vec<(Vec<f64>, Vec<Complex64>)> = w
        .as_mut_slice()
        .par_chunks_mut(rows_per_tile * r_width)
        .enumerate()
        .map(|(ci, wc)| {
            let row0 = ci * rows_per_tile;
            let mut gen = RowGen::new(m);
            let mut cols = [0u32; MAX_ROW_ENTRIES];
            let mut vals = [Complex64::default(); MAX_ROW_ENTRIES];
            let mut even = vec![0.0; r_width];
            let mut odd = vec![Complex64::default(); r_width];
            let mut acc = vec![Complex64::default(); r_width];
            for (i, wrow) in wc.chunks_mut(r_width).enumerate() {
                let r = row0 + i;
                let len = gen.row(r, &mut cols, &mut vals);
                acc.fill(Complex64::default());
                for (hv, &c) in vals[..len].iter().zip(&cols[..len]) {
                    axpy_row(*hv, v.row(c as usize), &mut acc, use_simd);
                }
                let vrow = v.row(r);
                for j in 0..r_width {
                    let vr = vrow[j];
                    let wr = (acc[j] - vr.scale(b)).scale(2.0 * a) - wrow[j];
                    wrow[j] = wr;
                    even[j] += vr.norm_sqr();
                    odd[j] = wr.conj().mul_add(vr, odd[j]);
                }
            }
            (even, odd)
        })
        .collect();
    let mut eta_even = vec![0.0; r_width];
    let mut eta_odd = vec![Complex64::default(); r_width];
    for (even, odd) in &partials {
        for j in 0..r_width {
            eta_even[j] += even[j];
            eta_odd[j] += odd[j];
        }
    }
    AugDotsBlock { eta_even, eta_odd }
}

/// Matrix-free augmented SpMMV without the fused scalar products.
pub fn aug_spmmv_nodot(m: &StencilMatrix, a: f64, b: f64, v: &BlockVector, w: &mut BlockVector) {
    let r_width = check_block_dims(m, v, w);
    let _probe = kernel_timer_fmt(
        KernelKind::AugSpmmv,
        m.nrows(),
        m.nnz(),
        r_width,
        0,
        ProbeFormat::Stencil,
    );
    if r_width == 1 {
        aug_spmv_nodot_core(m, a, b, v.as_slice(), w.as_mut_slice());
        return;
    }
    let use_simd = crate::simd::active();
    let mut gen = RowGen::new(m);
    let mut cols = [0u32; MAX_ROW_ENTRIES];
    let mut vals = [Complex64::default(); MAX_ROW_ENTRIES];
    let mut acc = vec![Complex64::default(); r_width];
    for r in 0..m.nrows() {
        let len = gen.row(r, &mut cols, &mut vals);
        acc.fill(Complex64::default());
        for (hv, &c) in vals[..len].iter().zip(&cols[..len]) {
            axpy_row(*hv, v.row(c as usize), &mut acc, use_simd);
        }
        let vrow = v.row(r);
        let wrow = w.row_mut(r);
        for j in 0..r_width {
            let vr = vrow[j];
            wrow[j] = (acc[j] - vr.scale(b)).scale(2.0 * a) - wrow[j];
        }
    }
}

fn aug_spmv_nodot_core(m: &StencilMatrix, a: f64, b: f64, v: &[Complex64], w: &mut [Complex64]) {
    let mut gen = RowGen::new(m);
    let mut cols = [0u32; MAX_ROW_ENTRIES];
    let mut vals = [Complex64::default(); MAX_ROW_ENTRIES];
    for (r, wr_slot) in w.iter_mut().enumerate() {
        let len = gen.row(r, &mut cols, &mut vals);
        let mut acc = Complex64::default();
        for (hv, &c) in vals[..len].iter().zip(&cols[..len]) {
            acc = hv.mul_add(v[c as usize], acc);
        }
        let vr = v[r];
        *wr_slot = (acc - vr.scale(b)).scale(2.0 * a) - *wr_slot;
    }
}

fn aug_spmv_nodot_par_core(
    m: &StencilMatrix,
    a: f64,
    b: f64,
    v: &[Complex64],
    w: &mut [Complex64],
) {
    w.par_chunks_mut(ROWS_PER_CHUNK)
        .enumerate()
        .for_each(|(ci, wc)| {
            let row0 = ci * ROWS_PER_CHUNK;
            let mut gen = RowGen::new(m);
            let mut cols = [0u32; MAX_ROW_ENTRIES];
            let mut vals = [Complex64::default(); MAX_ROW_ENTRIES];
            for (i, wr_slot) in wc.iter_mut().enumerate() {
                let r = row0 + i;
                let len = gen.row(r, &mut cols, &mut vals);
                let mut acc = Complex64::default();
                for (hv, &c) in vals[..len].iter().zip(&cols[..len]) {
                    acc = hv.mul_add(v[c as usize], acc);
                }
                let vr = v[r];
                *wr_slot = (acc - vr.scale(b)).scale(2.0 * a) - *wr_slot;
            }
        });
}

/// Parallel no-dot matrix-free augmented SpMMV at the default budget.
pub fn aug_spmmv_nodot_par(
    m: &StencilMatrix,
    a: f64,
    b: f64,
    v: &BlockVector,
    w: &mut BlockVector,
) {
    aug_spmmv_nodot_par_budget(m, a, b, v, w, crate::tile::DEFAULT_CACHE_BYTES)
}

/// Parallel no-dot matrix-free augmented SpMMV against an explicit
/// per-thread cache budget.
pub fn aug_spmmv_nodot_par_budget(
    m: &StencilMatrix,
    a: f64,
    b: f64,
    v: &BlockVector,
    w: &mut BlockVector,
    cache_bytes: usize,
) {
    let r_width = check_block_dims(m, v, w);
    let _probe = kernel_timer_fmt(
        KernelKind::AugSpmmv,
        m.nrows(),
        m.nnz(),
        r_width,
        0,
        ProbeFormat::Stencil,
    );
    if r_width == 1 {
        aug_spmv_nodot_par_core(m, a, b, v.as_slice(), w.as_mut_slice());
        return;
    }
    let rows_per_tile = crate::tile::tile_rows_for_budget(r_width, cache_bytes);
    let use_simd = crate::simd::active();
    w.as_mut_slice()
        .par_chunks_mut(rows_per_tile * r_width)
        .enumerate()
        .for_each(|(ci, wc)| {
            let row0 = ci * rows_per_tile;
            let mut gen = RowGen::new(m);
            let mut cols = [0u32; MAX_ROW_ENTRIES];
            let mut vals = [Complex64::default(); MAX_ROW_ENTRIES];
            let mut acc = vec![Complex64::default(); r_width];
            for (i, wrow) in wc.chunks_mut(r_width).enumerate() {
                let r = row0 + i;
                let len = gen.row(r, &mut cols, &mut vals);
                acc.fill(Complex64::default());
                for (hv, &c) in vals[..len].iter().zip(&cols[..len]) {
                    axpy_row(*hv, v.row(c as usize), &mut acc, use_simd);
                }
                let vrow = v.row(r);
                for j in 0..r_width {
                    let vr = vrow[j];
                    wrow[j] = (acc[j] - vr.scale(b)).scale(2.0 * a) - wrow[j];
                }
            }
        });
}

/// Rectangular augmented SpMMV; the stencil operator is always square,
/// so this is the serial blocked sweep with the rect kernel's exact
/// shape (no width-1 dispatch), matching
/// [`crate::aug::aug_spmmv_rect`] on square inputs.
pub fn aug_spmmv_rect(
    m: &StencilMatrix,
    a: f64,
    b: f64,
    v: &BlockVector,
    w: &mut BlockVector,
) -> AugDotsBlock {
    assert_eq!(v.rows(), m.ncols(), "block v dimension mismatch");
    assert!(w.rows() >= m.nrows(), "block w too small");
    assert_eq!(v.width(), w.width(), "block width mismatch");
    let r_width = v.width();
    let _probe = kernel_timer_fmt(
        KernelKind::AugSpmmv,
        m.nrows(),
        m.nnz(),
        r_width,
        0,
        ProbeFormat::Stencil,
    );
    let use_simd = crate::simd::active();
    let mut gen = RowGen::new(m);
    let mut cols = [0u32; MAX_ROW_ENTRIES];
    let mut vals = [Complex64::default(); MAX_ROW_ENTRIES];
    let mut eta_even = vec![0.0; r_width];
    let mut eta_odd = vec![Complex64::default(); r_width];
    let mut acc = vec![Complex64::default(); r_width];
    for r in 0..m.nrows() {
        let len = gen.row(r, &mut cols, &mut vals);
        acc.fill(Complex64::default());
        for (hv, &c) in vals[..len].iter().zip(&cols[..len]) {
            axpy_row(*hv, v.row(c as usize), &mut acc, use_simd);
        }
        let vrow = v.row(r);
        let wrow = w.row_mut(r);
        for j in 0..r_width {
            let vr = vrow[j];
            let wr = (acc[j] - vr.scale(b)).scale(2.0 * a) - wrow[j];
            wrow[j] = wr;
            eta_even[j] += vr.norm_sqr();
            eta_odd[j] = wr.conj().mul_add(vr, eta_odd[j]);
        }
    }
    AugDotsBlock { eta_even, eta_odd }
}

/// `y = A x` with regenerated rows (serial).
pub fn spmv(m: &StencilMatrix, x: &[Complex64], y: &mut [Complex64]) {
    check_vec_dims(m, x, y, "spmv");
    let _probe = kernel_timer_fmt(
        KernelKind::Spmv,
        m.nrows(),
        m.nnz(),
        1,
        0,
        ProbeFormat::Stencil,
    );
    let mut gen = RowGen::new(m);
    let mut cols = [0u32; MAX_ROW_ENTRIES];
    let mut vals = [Complex64::default(); MAX_ROW_ENTRIES];
    for (r, yr) in y.iter_mut().enumerate() {
        let len = gen.row(r, &mut cols, &mut vals);
        let mut acc = Complex64::default();
        for (hv, &c) in vals[..len].iter().zip(&cols[..len]) {
            acc = hv.mul_add(x[c as usize], acc);
        }
        *yr = acc;
    }
}

/// `y = A x` with regenerated rows (row-parallel; per-row writes, no
/// reduction, trivially bitwise).
pub fn spmv_par(m: &StencilMatrix, x: &[Complex64], y: &mut [Complex64]) {
    check_vec_dims(m, x, y, "spmv_par");
    let _probe = kernel_timer_fmt(
        KernelKind::Spmv,
        m.nrows(),
        m.nnz(),
        1,
        0,
        ProbeFormat::Stencil,
    );
    y.par_iter_mut().enumerate().for_each(|(r, yr)| {
        let mut gen = RowGen::new(m);
        let mut cols = [0u32; MAX_ROW_ENTRIES];
        let mut vals = [Complex64::default(); MAX_ROW_ENTRIES];
        let len = gen.row(r, &mut cols, &mut vals);
        let mut acc = Complex64::default();
        for (hv, &c) in vals[..len].iter().zip(&cols[..len]) {
            acc = hv.mul_add(x[c as usize], acc);
        }
        *yr = acc;
    });
}

/// `Y = A X` with regenerated rows (serial blocked).
pub fn spmmv(m: &StencilMatrix, x: &BlockVector, y: &mut BlockVector) {
    let r_width = check_block_dims(m, x, y);
    let _probe = kernel_timer_fmt(
        KernelKind::Spmv,
        m.nrows(),
        m.nnz(),
        r_width,
        0,
        ProbeFormat::Stencil,
    );
    let use_simd = crate::simd::active();
    let mut gen = RowGen::new(m);
    let mut cols = [0u32; MAX_ROW_ENTRIES];
    let mut vals = [Complex64::default(); MAX_ROW_ENTRIES];
    for r in 0..m.nrows() {
        let len = gen.row(r, &mut cols, &mut vals);
        let yrow = y.row_mut(r);
        yrow.fill(Complex64::default());
        for (hv, &c) in vals[..len].iter().zip(&cols[..len]) {
            axpy_row(*hv, x.row(c as usize), yrow, use_simd);
        }
    }
}

/// `Y = A X` with regenerated rows (row-parallel blocked).
pub fn spmmv_par(m: &StencilMatrix, x: &BlockVector, y: &mut BlockVector) {
    let r_width = check_block_dims(m, x, y);
    let _probe = kernel_timer_fmt(
        KernelKind::Spmv,
        m.nrows(),
        m.nnz(),
        r_width,
        0,
        ProbeFormat::Stencil,
    );
    let use_simd = crate::simd::active();
    y.as_mut_slice()
        .par_chunks_mut(r_width)
        .enumerate()
        .for_each(|(r, yrow)| {
            let mut gen = RowGen::new(m);
            let mut cols = [0u32; MAX_ROW_ENTRIES];
            let mut vals = [Complex64::default(); MAX_ROW_ENTRIES];
            let len = gen.row(r, &mut cols, &mut vals);
            yrow.fill(Complex64::default());
            for (hv, &c) in vals[..len].iter().zip(&cols[..len]) {
                axpy_row(*hv, x.row(c as usize), yrow, use_simd);
            }
        });
}

/// Rectangular plain SpMMV; square on the stencil operator.
pub fn spmmv_rect(m: &StencilMatrix, v: &BlockVector, w: &mut BlockVector) {
    assert_eq!(v.rows(), m.ncols(), "block v dimension mismatch");
    assert!(w.rows() >= m.nrows(), "block w too small");
    assert_eq!(v.width(), w.width(), "block width mismatch");
    let use_simd = crate::simd::active();
    let mut gen = RowGen::new(m);
    let mut cols = [0u32; MAX_ROW_ENTRIES];
    let mut vals = [Complex64::default(); MAX_ROW_ENTRIES];
    for r in 0..m.nrows() {
        let len = gen.row(r, &mut cols, &mut vals);
        let wrow = w.row_mut(r);
        wrow.fill(Complex64::default());
        for (hv, &c) in vals[..len].iter().zip(&cols[..len]) {
            axpy_row(*hv, v.row(c as usize), wrow, use_simd);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kpm_num::complex::I;

    /// A tiny hand-built stencil: diagonal hop blocks so expected
    /// values are easy to state; geometry checks use the paper default
    /// boundaries (periodic x/y, open z).
    fn toy(nx: usize, ny: usize, nz: usize, periodic: [bool; 3]) -> StencilMatrix {
        let sites = nx * ny * nz;
        let onsite: Vec<[Complex64; 4]> = (0..sites)
            .map(|s| {
                let v = s as f64 * 0.25 - 1.0;
                [
                    Complex64::real(v + 2.0),
                    Complex64::real(v + 2.0),
                    Complex64::real(v - 2.0),
                    Complex64::real(v - 2.0),
                ]
            })
            .collect();
        let mut hop = [[[Complex64::default(); 4]; 4]; 6];
        for (b, block) in hop.iter_mut().enumerate() {
            for (o, row) in block.iter_mut().enumerate() {
                row[o] = Complex64::real(-0.5) + I.scale(0.1 * b as f64);
                row[3 - o] = I.scale(0.5);
            }
        }
        StencilMatrix::new(nx, ny, nz, periodic, onsite, &hop)
    }

    #[test]
    fn dimensions_and_nnz() {
        let m = toy(4, 3, 3, [true, true, false]);
        assert_eq!(m.nrows(), 4 * 4 * 3 * 3);
        assert_eq!(m.ncols(), m.nrows());
        // Interior rows: 1 onsite + 6 neighbours x 2 entries.
        let crs = m.to_crs();
        assert_eq!(crs.nnz(), m.nnz());
        assert!(crs.max_row_len() <= 13);
    }

    #[test]
    fn rows_match_explicit_crs() {
        let m = toy(3, 4, 2, [true, false, true]);
        let crs = m.to_crs();
        let mut gen = RowGen::new(&m);
        let mut cols = [0u32; MAX_ROW_ENTRIES];
        let mut vals = [Complex64::default(); MAX_ROW_ENTRIES];
        for r in 0..m.nrows() {
            let len = gen.row(r, &mut cols, &mut vals);
            assert_eq!(&cols[..len], crs.row_cols(r), "row {r}");
            assert_eq!(&vals[..len], crs.row_vals(r), "row {r}");
            // Columns strictly ascending after the merge.
            for k in 1..len {
                assert!(cols[k] > cols[k - 1]);
            }
        }
    }

    #[test]
    fn extent_two_periodic_axis_merges_duplicates() {
        // nx = 2 periodic: +x and -x land on the same neighbour, so the
        // pair of hopping entries per column must be merged into one.
        let m = toy(2, 3, 3, [true, true, false]);
        let crs = m.to_crs();
        for r in 0..m.nrows() {
            let cols = crs.row_cols(r);
            for k in 1..cols.len() {
                assert!(cols[k] > cols[k - 1], "duplicate column in row {r}");
            }
        }
        assert_eq!(crs.nnz(), m.nnz());
    }

    #[test]
    fn kernels_match_crs_bitwise() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let m = toy(4, 4, 3, [true, true, false]);
        let crs = m.to_crs();
        let n = m.nrows();
        let mut rng = StdRng::seed_from_u64(7);
        let v = BlockVector::random(n, 4, &mut rng);
        let w0 = BlockVector::random(n, 4, &mut rng);

        let mut w1 = w0.clone();
        let mut w2 = w0.clone();
        let d1 = aug_spmmv(&m, 0.4, -0.2, &v, &mut w1);
        let d2 = crate::gen::aug_spmmv_auto(&crs, 0.4, -0.2, &v, &mut w2);
        assert_eq!(w1.max_abs_diff(&w2), 0.0);
        assert_eq!(d1, d2);

        let mut w1 = w0.clone();
        let mut w2 = w0;
        let d1 = aug_spmmv_par(&m, 0.4, -0.2, &v, &mut w1);
        let d2 = crate::aug::aug_spmmv_par(&crs, 0.4, -0.2, &v, &mut w2);
        assert_eq!(w1.max_abs_diff(&w2), 0.0);
        assert_eq!(d1, d2);

        let vs = v.column(0).into_vec();
        let mut y1 = vec![Complex64::default(); n];
        let mut y2 = y1.clone();
        spmv(&m, &vs, &mut y1);
        crate::spmv::spmv(&crs, &vs, &mut y2);
        assert_eq!(y1, y2);
    }

    #[test]
    fn fingerprint_matches_crs_build() {
        let m = toy(3, 3, 4, [true, true, false]);
        assert_eq!(m.content_fingerprint(), m.to_crs().content_fingerprint());
    }

    #[test]
    #[should_panic(expected = "one on-site diagonal per site")]
    fn wrong_onsite_length_panics() {
        let hop = [[[Complex64::default(); 4]; 4]; 6];
        StencilMatrix::new(2, 2, 2, [true; 3], vec![[Complex64::default(); 4]; 7], &hop);
    }
}
