#![cfg_attr(feature = "simd", feature(portable_simd))]

//! Sparse-matrix substrate for the KPM reproduction.
//!
//! Provides the matrix storage formats and multiplication kernels the
//! paper builds on:
//!
//! * [`coo`] — a coordinate-format builder used during matrix assembly,
//! * [`crs`] — Compressed Row Storage (CRS, a.k.a. CSR; identical to
//!   SELL-1 in the paper's terminology), the format used for all SpMMV
//!   kernels because vectorization happens across the block vector
//!   (paper Section IV-A),
//! * [`sell`] — the SELL-C-σ format of Kreutzer et al. (SIAM J. Sci.
//!   Comput. 2014), the SIMD-friendly unified CPU/GPU format used for
//!   single-vector SpMV,
//! * [`spmv`] — plain sparse matrix (multiple) vector multiplication,
//! * [`aug`] — the paper's *augmented* kernels: `aug_spmv()` (Fig. 4)
//!   and `aug_spmmv()` (Fig. 5), which fuse the shift, scale, recurrence
//!   update and both Chebyshev scalar products into the matrix sweep,
//! * [`blocked`] — cache-blocked SpMMV, the outlook optimization of
//!   paper Section VII (ref. [31]),
//! * [`stats`] — sparsity-structure analysis (diagonal detection,
//!   bandwidth, row-length histograms) matching the paper's discussion
//!   of the topological-insulator matrix structure,
//! * [`io`] — Matrix Market reading/writing (std-only),
//! * [`aug_sell`] — the augmented kernel family on SELL-C-σ matrices,
//!   bitwise-identical to the CRS kernels for any `C`/`σ`/thread count,
//! * [`gen`] — width-specialized (const-generic) kernel instances, the
//!   Rust analogue of the paper's custom code generator (Section IV-B),
//! * [`tile`] — cache-aware row-block tile sizing for the blocked
//!   kernels (per-thread cache budget → rows per tile),
//! * [`kernels`] — the format-pluggable [`SparseKernels`] trait and the
//!   [`KpmMatrix`] handle the solver runs on,
//! * [`stencil`] — the matrix-free topological-insulator stencil
//!   format: rows are regenerated on the fly inside the kernels, so the
//!   matrix stream disappears from the traffic balance entirely,
//! * [`power`] — level-blocked Chebyshev matrix-power kernels that run
//!   `p` iterations per matrix traversal behind `aug_spmmv_power`,
//! * [`autotune`] — the `C`/`σ`/task-granularity autotuner driven by the
//!   row-length distribution and a machine model,
//! * [`simd`] — build-time (`--features simd`) and runtime configuration
//!   of the explicit vector lanes: compiled lane width and the global
//!   scalar/vector toggle the benches flip,
//! * [`aug_sell_simd`] — the lane-mapped inner loops of the SELL-C-σ and
//!   blocked kernels (`C` is the lane dimension; scalar tails everywhere),
//!   bitwise-identical to the scalar bodies by construction,
//! * [`placement`] — NUMA-style first-touch placement: hot arrays are
//!   allocated untouched and each range is first written by the pool
//!   worker the stable part→worker assignment gives it.

pub mod aug;
pub mod aug_sell;
pub mod aug_sell_simd;
pub mod autotune;
pub mod blocked;
pub mod coo;
pub mod crs;
pub mod gen;
pub mod io;
pub mod kernels;
pub mod placement;
pub mod power;
pub mod sell;
pub mod simd;
pub mod spmv;
pub mod stats;
pub mod stencil;
pub mod tile;

pub use autotune::{
    autotune, autotune_formats, autotune_formats_report, AutotuneChoice, AutotuneEnv, ProbePoint,
};
pub use coo::CooMatrix;
pub use crs::CrsMatrix;
pub use kernels::{FormatSpec, KpmMatrix, SparseKernels};
pub use placement::{fault_block_rows, Placement};
pub use power::{LevelSet, PowerRows, RowBuf};
pub use sell::SellMatrix;
pub use stencil::StencilMatrix;
