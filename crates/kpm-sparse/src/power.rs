//! Level-blocked Chebyshev matrix-power kernels.
//!
//! The KPM sweep streams the matrix once per Chebyshev iteration; for
//! the memory-bound regimes of the paper that stream *is* the runtime.
//! Matrix-power kernels (Alappat et al., arXiv:2205.01598; the blocking
//! outlook of Kreutzer et al., arXiv:1410.5242) execute `p` consecutive
//! iterations per pass: the row space is split into *levels* such that
//! every row's columns stay within the neighbouring levels, and a
//! skewed wavefront walks the levels once while applying all `p`
//! updates to a cache-resident window — the matrix (or, for the stencil
//! format, the regeneration work) is traversed once per `p` iterations.
//!
//! ## Level construction
//!
//! Levels are contiguous row ranges `[b_ℓ, b_{ℓ+1})` built greedily:
//! `b_{ℓ+1} = max(b_ℓ + 1, 1 + max{hi(r) : r < b_ℓ})` where `hi(r)` is
//! the largest column of row `r`. By construction the columns of level
//! `ℓ` stay below `b_{ℓ+2}`; the matching *lower* bound (columns of
//! level `ℓ` at or above `b_{ℓ-1}`) follows from structural Hermitian
//! symmetry and is verified during the build — matrices that violate it
//! get no level set and fall back to plain sweeps.
//!
//! ## Why the wavefront is bitwise-deterministic
//!
//! The schedule runs outer steps `s`; step `s` executes iteration `t`
//! on level `ℓ = s − t` for every admissible `t` in *increasing* order,
//! serially. Iteration `t` reads the buffer written by `t−1` on levels
//! `ℓ−1..ℓ+1` — all complete, because `t−1` finished level `ℓ+1`
//! earlier in the same step — and overwrites level `ℓ` of the buffer
//! holding iteration `t−2`'s values, which `t−1` (the only remaining
//! reader of that buffer) has already consumed up to level `ℓ+1`.
//! Hence, per iteration `t`, rows are processed exactly once and in
//! globally ascending row order — the same order as `p` plain sweeps —
//! and every per-row update applies the identical floating-point chain
//! of [`crate::aug`]. The dot products accumulate on the *same* fixed
//! grids as the plain kernels (running scalars serially; 1024-row
//! chunks with pairwise combine at width 1 in parallel; cache-budget
//! tiles with linear combine at width > 1 in parallel), with each grid
//! slot filled in ascending row order across wavefront steps. Within a
//! level, parallelism only spans whole grid-aligned chunks, so slot
//! boundaries never depend on the thread count. Moments are therefore
//! bitwise-identical to `p` applications of the plain kernels at any
//! thread count — the property the power determinism tests pin down.

use kpm_num::summation::{pairwise_sum, pairwise_sum_complex};
use kpm_num::{BlockVector, Complex64};
use kpm_obs::probe::{kernel_timer_fmt, KernelKind, ProbeFormat};
use rayon::prelude::*;

use crate::aug::{AugDotsBlock, ROWS_PER_CHUNK};
use crate::crs::CrsMatrix;
use crate::stencil::StencilMatrix;

pub use crate::stencil::MAX_ROW_ENTRIES;

/// Default budget (bytes) for the wavefront's vector window; roughly
/// an LLC share. Callers with a machine model should override it from
/// `Machine::tile_budget_bytes()` × thread count (see `KpmMatrix`).
pub const DEFAULT_POWER_BUDGET_BYTES: usize = 8 * 1024 * 1024;

/// Scratch a [`PowerRows`] implementation may use to materialize one
/// row: stack arrays for the entries plus the stencil generator's
/// per-site geometry cache. One per worker; never shared.
pub struct RowBuf {
    pub(crate) cols: [u32; MAX_ROW_ENTRIES],
    pub(crate) vals: [Complex64; MAX_ROW_ENTRIES],
    pub(crate) site: usize,
    pub(crate) neigh: [Option<u32>; 6],
}

impl RowBuf {
    /// A fresh scratch buffer.
    pub fn new() -> Self {
        Self {
            cols: [0; MAX_ROW_ENTRIES],
            vals: [Complex64::default(); MAX_ROW_ENTRIES],
            site: usize::MAX,
            neigh: [None; 6],
        }
    }
}

impl Default for RowBuf {
    fn default() -> Self {
        Self::new()
    }
}

/// Row access the power kernels need: a way to visit row `r`'s
/// `(columns, values)` in ascending column order, either borrowed from
/// storage (CRS) or regenerated into the scratch (stencil).
pub trait PowerRows: Sync {
    /// Number of rows (the operator is square).
    fn nrows(&self) -> usize;
    /// Number of logical non-zeros.
    fn nnz(&self) -> usize;
    /// Stored elements for probe accounting (0 for matrix-free).
    fn stored_elements(&self) -> usize;
    /// Storage format tag for probe accounting.
    fn probe_format(&self) -> ProbeFormat;
    /// Row `r` as `(cols, vals)` slices, valid until the next call.
    fn row<'a>(&'a self, r: usize, buf: &'a mut RowBuf) -> (&'a [u32], &'a [Complex64]);
}

impl PowerRows for CrsMatrix {
    fn nrows(&self) -> usize {
        CrsMatrix::nrows(self)
    }
    fn nnz(&self) -> usize {
        CrsMatrix::nnz(self)
    }
    fn stored_elements(&self) -> usize {
        CrsMatrix::nnz(self)
    }
    fn probe_format(&self) -> ProbeFormat {
        ProbeFormat::Crs
    }
    fn row<'a>(&'a self, r: usize, _buf: &'a mut RowBuf) -> (&'a [u32], &'a [Complex64]) {
        (self.row_cols(r), self.row_vals(r))
    }
}

impl PowerRows for StencilMatrix {
    fn nrows(&self) -> usize {
        StencilMatrix::nrows(self)
    }
    fn nnz(&self) -> usize {
        StencilMatrix::nnz(self)
    }
    fn stored_elements(&self) -> usize {
        0
    }
    fn probe_format(&self) -> ProbeFormat {
        ProbeFormat::Stencil
    }
    fn row<'a>(&'a self, r: usize, buf: &'a mut RowBuf) -> (&'a [u32], &'a [Complex64]) {
        let RowBuf {
            cols,
            vals,
            site,
            neigh,
        } = buf;
        let len = self.regen_row(r, site, neigh, cols, vals);
        (&buf.cols[..len], &buf.vals[..len])
    }
}

/// A partition of the row space into contiguous levels whose columns
/// stay within the adjacent levels — the structure the wavefront
/// schedule relies on.
#[derive(Debug, Clone)]
pub struct LevelSet {
    /// Level boundaries `b_0 = 0 < b_1 < … < b_L = nrows`.
    bounds: Vec<usize>,
}

impl LevelSet {
    /// Builds the level set for a structurally (near-)symmetric
    /// operator, or `None` when the lower-bound property does not hold
    /// (callers then fall back to plain sweeps; correctness never
    /// depends on a level set existing).
    pub fn build<M: PowerRows + ?Sized>(m: &M) -> Option<LevelSet> {
        let n = m.nrows();
        if n == 0 {
            return None;
        }
        let mut buf = RowBuf::new();
        let mut hi = vec![0usize; n];
        let mut lo = vec![0usize; n];
        for r in 0..n {
            let (cols, _) = m.row(r, &mut buf);
            let mut h = r;
            let mut l = r;
            for &c in cols {
                h = h.max(c as usize);
                l = l.min(c as usize);
            }
            hi[r] = h;
            lo[r] = l;
        }
        // prefix_hi[e] = 1 + max{hi[r] : r < e}: the least bound that
        // covers every column referenced by the first `e` rows.
        let mut prefix_hi = vec![0usize; n + 1];
        let mut running = 0usize;
        for r in 0..n {
            running = running.max(hi[r] + 1);
            prefix_hi[r + 1] = running;
        }
        let mut bounds = vec![0usize];
        let mut prev = 0usize;
        while prev < n {
            let next = prefix_hi[prev.max(1)].max(prev + 1).min(n);
            bounds.push(next);
            prev = next;
        }
        let levels = LevelSet { bounds };
        // Verify the symmetric lower bound the 2-buffer wavefront needs:
        // rows of level ℓ reference no column below b_{ℓ-1}.
        for i in 1..levels.n_levels() {
            let floor = levels.bounds[i - 1];
            let (r0, r1) = levels.level(i);
            if lo[r0..r1].iter().any(|&c| c < floor) {
                return None;
            }
        }
        // The matching upper bound holds by construction.
        if cfg!(debug_assertions) {
            for i in 0..levels.n_levels() {
                let ceil = levels.bounds[(i + 2).min(levels.n_levels())];
                let (r0, r1) = levels.level(i);
                for (off, &h) in hi[r0..r1].iter().enumerate() {
                    let r = r0 + off;
                    debug_assert!(h < ceil, "level upper bound violated at row {r}");
                }
            }
        }
        Some(levels)
    }

    /// Number of levels `L`.
    pub fn n_levels(&self) -> usize {
        self.bounds.len() - 1
    }

    /// Row range `[lo, hi)` of level `i`.
    pub fn level(&self, i: usize) -> (usize, usize) {
        (self.bounds[i], self.bounds[i + 1])
    }

    /// Widest run of `p + 2` consecutive levels (rows): the vector
    /// window the wavefront keeps live for a depth-`p` pass.
    pub fn window_rows(&self, p: usize) -> usize {
        let l = self.n_levels();
        let span = (p + 2).min(l);
        (0..=(l - span))
            .map(|i| self.bounds[i + span] - self.bounds[i])
            .max()
            .unwrap_or(0)
    }
}

/// Whether a depth-`p` wavefront pass is worthwhile: enough levels to
/// pipeline and a live vector window (two buffers of `window_rows`
/// rows × `r_width`) that fits the budget. Purely a performance
/// decision — both paths produce identical bits.
pub fn power_feasible(
    levels: &LevelSet,
    p: usize,
    r_width: usize,
    window_budget_bytes: usize,
) -> bool {
    p >= 2
        && levels.n_levels() >= p + 2
        && 2 * levels.window_rows(p) * r_width.max(1) * 16 <= window_budget_bytes
}

fn check_dims<M: PowerRows + ?Sized>(m: &M, v: &BlockVector, w: &BlockVector) -> usize {
    assert_eq!(v.rows(), m.nrows(), "power: block v dimension mismatch");
    assert_eq!(w.rows(), m.nrows(), "power: block w dimension mismatch");
    assert_eq!(v.width(), w.width(), "power: block width mismatch");
    v.width()
}

/// Applies the augmented update chain to rows `[r0, r1)` for one
/// iteration, reading `read` and writing `write`, accumulating the dot
/// products into the caller's running `even`/`odd` (serial form:
/// identical op sequence to the serial plain kernels).
#[allow(clippy::too_many_arguments)]
fn sweep_rows_serial<M: PowerRows + ?Sized>(
    m: &M,
    a: f64,
    b: f64,
    read: &BlockVector,
    write: &mut BlockVector,
    r0: usize,
    r1: usize,
    buf: &mut RowBuf,
    acc: &mut [Complex64],
    even: &mut [f64],
    odd: &mut [Complex64],
) {
    let rw = acc.len();
    for r in r0..r1 {
        let (rcols, rvals) = m.row(r, buf);
        acc.fill(Complex64::default());
        for (hv, &c) in rvals.iter().zip(rcols) {
            let xrow = read.row(c as usize);
            for j in 0..rw {
                acc[j] = hv.mul_add(xrow[j], acc[j]);
            }
        }
        let vrow = read.row(r);
        let wrow = write.row_mut(r);
        for j in 0..rw {
            let vr = vrow[j];
            let wr = (acc[j] - vr.scale(b)).scale(2.0 * a) - wrow[j];
            wrow[j] = wr;
            even[j] += vr.norm_sqr();
            odd[j] = wr.conj().mul_add(vr, odd[j]);
        }
    }
}

/// Serial level-blocked matrix-power pass: executes `p` Chebyshev
/// iterations in one wavefront traversal. On entry `(v, w)` hold
/// `(x_{k−1}, x_k)`; on exit they hold `(x_{k+p−1}, x_{k+p})`, and the
/// returned dots are those of the `p` plain sweeps, bit for bit.
pub fn aug_spmmv_power<M: PowerRows + ?Sized>(
    m: &M,
    levels: &LevelSet,
    p: usize,
    a: f64,
    b: f64,
    v: &mut BlockVector,
    w: &mut BlockVector,
) -> Vec<AugDotsBlock> {
    let rw = check_dims(m, v, w);
    assert!(p >= 1, "power depth must be at least 1");
    let _probe = kernel_timer_fmt(
        KernelKind::AugSpmmv,
        p * m.nrows(),
        p * m.nnz(),
        rw,
        p * m.stored_elements(),
        m.probe_format(),
    );
    let l = levels.n_levels();
    let mut even = vec![vec![0.0; rw]; p];
    let mut odd = vec![vec![Complex64::default(); rw]; p];
    let mut buf = RowBuf::new();
    let mut acc = vec![Complex64::default(); rw];
    for s in 0..(l + p - 1) {
        let t_lo = (s + 1).saturating_sub(l);
        let t_hi = s.min(p - 1);
        for t in t_lo..=t_hi {
            let (r0, r1) = levels.level(s - t);
            // Iteration parity: t even reads w and overwrites v
            // (x_{k+t−1}), t odd the reverse — two buffers suffice.
            let (read, write): (&BlockVector, &mut BlockVector) = if t % 2 == 0 {
                (&*w, &mut *v)
            } else {
                (&*v, &mut *w)
            };
            sweep_rows_serial(
                m,
                a,
                b,
                read,
                write,
                r0,
                r1,
                &mut buf,
                &mut acc,
                &mut even[t],
                &mut odd[t],
            );
        }
    }
    if p % 2 == 1 {
        // Odd depth leaves the newest iterate in v; restore the
        // (previous, current) = (v, w) calling convention.
        v.swap(w);
    }
    even.into_iter()
        .zip(odd)
        .map(|(eta_even, eta_odd)| AugDotsBlock { eta_even, eta_odd })
        .collect()
}

/// One iteration's dot-product grid: a partial `(even, odd)` pair per
/// fixed-size row chunk, filled in ascending row order.
type DotGrid = Vec<(Vec<f64>, Vec<Complex64>)>;

/// Processes rows `[r0, r1)` serially, accumulating dots *in place*
/// into the grid slots the rows belong to — the edge fragments of a
/// level that share a chunk with neighbouring levels. Continuing the
/// slot's running sums in ascending row order reproduces the plain
/// kernel's per-chunk accumulation exactly.
#[allow(clippy::too_many_arguments)]
fn sweep_fragment<M: PowerRows + ?Sized>(
    m: &M,
    a: f64,
    b: f64,
    read: &BlockVector,
    write: &mut BlockVector,
    r0: usize,
    r1: usize,
    chunk_rows: usize,
    grid: &mut DotGrid,
    buf: &mut RowBuf,
    acc: &mut [Complex64],
) {
    let rw = acc.len();
    for r in r0..r1 {
        let (rcols, rvals) = m.row(r, buf);
        acc.fill(Complex64::default());
        for (hv, &c) in rvals.iter().zip(rcols) {
            let xrow = read.row(c as usize);
            for j in 0..rw {
                acc[j] = hv.mul_add(xrow[j], acc[j]);
            }
        }
        let vrow = read.row(r);
        let wrow = write.row_mut(r);
        let (even, odd) = &mut grid[r / chunk_rows];
        for j in 0..rw {
            let vr = vrow[j];
            let wr = (acc[j] - vr.scale(b)).scale(2.0 * a) - wrow[j];
            wrow[j] = wr;
            even[j] += vr.norm_sqr();
            odd[j] = wr.conj().mul_add(vr, odd[j]);
        }
    }
}

/// Parallel level-blocked matrix-power pass; same contract as
/// [`aug_spmmv_power`], bitwise-identical to `p` applications of the
/// parallel plain kernels at the same cache budget for any thread
/// count.
#[allow(clippy::too_many_arguments)]
pub fn aug_spmmv_power_par<M: PowerRows + ?Sized>(
    m: &M,
    levels: &LevelSet,
    p: usize,
    a: f64,
    b: f64,
    v: &mut BlockVector,
    w: &mut BlockVector,
    cache_bytes: usize,
) -> Vec<AugDotsBlock> {
    let rw = check_dims(m, v, w);
    assert!(p >= 1, "power depth must be at least 1");
    let _probe = kernel_timer_fmt(
        KernelKind::AugSpmmv,
        p * m.nrows(),
        p * m.nnz(),
        rw,
        p * m.stored_elements(),
        m.probe_format(),
    );
    // The plain parallel kernels' reduction grids: fixed 1024-row
    // chunks at width 1, cache-budget tiles otherwise. Chunk
    // boundaries are global (multiples from row 0), never per-level.
    let chunk_rows = if rw == 1 {
        ROWS_PER_CHUNK
    } else {
        crate::tile::tile_rows_for_budget(rw, cache_bytes)
    };
    let n = m.nrows();
    let n_chunks = n.div_ceil(chunk_rows);
    let mut grids: Vec<DotGrid> = (0..p)
        .map(|_| {
            (0..n_chunks)
                .map(|_| (vec![0.0; rw], vec![Complex64::default(); rw]))
                .collect()
        })
        .collect();
    let l = levels.n_levels();
    let mut buf = RowBuf::new();
    let mut acc = vec![Complex64::default(); rw];
    for s in 0..(l + p - 1) {
        let t_lo = (s + 1).saturating_sub(l);
        let t_hi = s.min(p - 1);
        for (t, grid) in grids.iter_mut().enumerate().take(t_hi + 1).skip(t_lo) {
            let (lo, hi) = levels.level(s - t);
            let (read, write): (&BlockVector, &mut BlockVector) = if t % 2 == 0 {
                (&*w, &mut *v)
            } else {
                (&*v, &mut *w)
            };
            // Split the level at global chunk boundaries: serial edge
            // fragments, parallel whole chunks.
            let fs = lo.div_ceil(chunk_rows) * chunk_rows;
            let fe = (hi / chunk_rows) * chunk_rows;
            if fs >= fe {
                sweep_fragment(
                    m, a, b, read, write, lo, hi, chunk_rows, grid, &mut buf, &mut acc,
                );
            } else {
                sweep_fragment(
                    m, a, b, read, write, lo, fs, chunk_rows, grid, &mut buf, &mut acc,
                );
                let mids: Vec<(Vec<f64>, Vec<Complex64>)> = write.as_mut_slice()[fs * rw..fe * rw]
                    .par_chunks_mut(chunk_rows * rw)
                    .enumerate()
                    .map(|(ci, wc)| {
                        let row0 = fs + ci * chunk_rows;
                        let mut cbuf = RowBuf::new();
                        // kpm::allow(hot_loop_alloc): per-task scratch, one allocation per parallel chunk, amortized over chunk_rows * rw row updates.
                        let mut cacc = vec![Complex64::default(); rw];
                        // kpm::allow(hot_loop_alloc): per-task scratch (see above).
                        let mut even = vec![0.0; rw];
                        // kpm::allow(hot_loop_alloc): per-task scratch (see above).
                        let mut odd = vec![Complex64::default(); rw];
                        for (i, wrow) in wc.chunks_mut(rw).enumerate() {
                            let r = row0 + i;
                            let (rcols, rvals) = m.row(r, &mut cbuf);
                            cacc.fill(Complex64::default());
                            for (hv, &c) in rvals.iter().zip(rcols) {
                                let xrow = read.row(c as usize);
                                for j in 0..rw {
                                    cacc[j] = hv.mul_add(xrow[j], cacc[j]);
                                }
                            }
                            let vrow = read.row(r);
                            for j in 0..rw {
                                let vr = vrow[j];
                                let wr = (cacc[j] - vr.scale(b)).scale(2.0 * a) - wrow[j];
                                wrow[j] = wr;
                                even[j] += vr.norm_sqr();
                                odd[j] = wr.conj().mul_add(vr, odd[j]);
                            }
                        }
                        (even, odd)
                    })
                    // kpm::allow(hot_loop_alloc): one partials vec per level fragment, amortized over the fragment's whole row range.
                    .collect();
                // A whole chunk inside one level is that chunk's entire
                // contribution for iteration t — assign, don't merge.
                for (ci, part) in mids.into_iter().enumerate() {
                    grid[fs / chunk_rows + ci] = part;
                }
                sweep_fragment(
                    m, a, b, read, write, fe, hi, chunk_rows, grid, &mut buf, &mut acc,
                );
            }
        }
    }
    if p % 2 == 1 {
        v.swap(w);
    }
    grids
        .into_iter()
        .map(|grid| {
            if rw == 1 {
                let even: Vec<f64> = grid.iter().map(|g| g.0[0]).collect();
                let odd: Vec<Complex64> = grid.iter().map(|g| g.1[0]).collect();
                AugDotsBlock {
                    eta_even: vec![pairwise_sum(&even)],
                    eta_odd: vec![pairwise_sum_complex(&odd)],
                }
            } else {
                let mut eta_even = vec![0.0; rw];
                let mut eta_odd = vec![Complex64::default(); rw];
                for (even, odd) in &grid {
                    for j in 0..rw {
                        eta_even[j] += even[j];
                        eta_odd[j] += odd[j];
                    }
                }
                AugDotsBlock { eta_even, eta_odd }
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aug;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// A 1-D nearest-neighbour Hermitian chain: trivially symmetric,
    /// many levels.
    fn chain(n: usize) -> CrsMatrix {
        let mut coo = crate::coo::CooMatrix::new(n, n);
        for r in 0..n {
            coo.push(r, r, Complex64::real(0.1 * r as f64 - 1.0));
            if r + 1 < n {
                let t = Complex64::new(-0.5, 0.25);
                coo.push(r, r + 1, t);
                coo.push(r + 1, r, t.conj());
            }
        }
        coo.to_crs()
    }

    fn reference_power(
        h: &CrsMatrix,
        p: usize,
        a: f64,
        b: f64,
        v: &mut BlockVector,
        w: &mut BlockVector,
    ) -> Vec<AugDotsBlock> {
        let mut out = Vec::with_capacity(p);
        for _ in 0..p {
            v.swap(w);
            out.push(aug::aug_spmmv(h, a, b, v, w));
        }
        out
    }

    #[test]
    fn levels_cover_rows_and_bound_columns() {
        let h = chain(500);
        let ls = LevelSet::build(&h).expect("symmetric chain must level");
        assert_eq!(ls.bounds.first(), Some(&0));
        assert_eq!(ls.bounds.last(), Some(&500));
        assert!(ls.n_levels() > 10, "chain should produce many levels");
        assert!(ls.window_rows(2) >= ls.window_rows(0));
    }

    #[test]
    fn asymmetric_structure_is_rejected() {
        // The last row reaches back to column 0 with no forward
        // partner: the chain's levels stay narrow, so the lower-bound
        // property fails on the final level and build must refuse.
        let n = 64;
        let mut coo = crate::coo::CooMatrix::new(n, n);
        for r in 0..n {
            coo.push(r, r, Complex64::real(1.0));
            if r + 1 < n {
                coo.push(r, r + 1, Complex64::real(0.5));
                coo.push(r + 1, r, Complex64::real(0.5));
            }
        }
        coo.push(n - 1, 0, Complex64::real(0.25));
        assert!(LevelSet::build(&coo.to_crs()).is_none());
    }

    #[test]
    fn serial_power_matches_plain_sweeps_bitwise() {
        let n = 700;
        let h = chain(n);
        let ls = LevelSet::build(&h).unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        for p in [1, 2, 3, 4] {
            for rw in [1, 3] {
                let v0 = BlockVector::random(n, rw, &mut rng);
                let w0 = BlockVector::random(n, rw, &mut rng);
                let (mut v1, mut w1) = (v0.clone(), w0.clone());
                let (mut v2, mut w2) = (v0, w0);
                let d_ref = reference_power(&h, p, 0.4, -0.1, &mut v1, &mut w1);
                let d_pow = aug_spmmv_power(&h, &ls, p, 0.4, -0.1, &mut v2, &mut w2);
                assert_eq!(v1.max_abs_diff(&v2), 0.0, "p={p} rw={rw}");
                assert_eq!(w1.max_abs_diff(&w2), 0.0, "p={p} rw={rw}");
                assert_eq!(d_ref, d_pow, "p={p} rw={rw}");
            }
        }
    }

    #[test]
    fn parallel_power_matches_plain_parallel_sweeps_bitwise() {
        let n = 2600; // several 1024-chunks and tiles
        let h = chain(n);
        let ls = LevelSet::build(&h).unwrap();
        let budget = 64 * 1024;
        let mut rng = StdRng::seed_from_u64(13);
        for p in [2, 4] {
            for rw in [1, 4] {
                let v0 = BlockVector::random(n, rw, &mut rng);
                let w0 = BlockVector::random(n, rw, &mut rng);
                let (mut v1, mut w1) = (v0.clone(), w0.clone());
                let (mut v2, mut w2) = (v0, w0);
                let mut d_ref = Vec::new();
                for _ in 0..p {
                    v1.swap(&mut w1);
                    d_ref.push(aug::aug_spmmv_par_budget(
                        &h, 0.7, 0.2, &v1, &mut w1, budget,
                    ));
                }
                let d_pow = aug_spmmv_power_par(&h, &ls, p, 0.7, 0.2, &mut v2, &mut w2, budget);
                assert_eq!(v1.max_abs_diff(&v2), 0.0, "p={p} rw={rw}");
                assert_eq!(w1.max_abs_diff(&w2), 0.0, "p={p} rw={rw}");
                assert_eq!(d_ref, d_pow, "p={p} rw={rw}");
            }
        }
    }

    #[test]
    fn feasibility_gates_on_levels_and_window() {
        let h = chain(300);
        let ls = LevelSet::build(&h).unwrap();
        assert!(!power_feasible(&ls, 1, 4, usize::MAX), "p=1 never blocks");
        assert!(power_feasible(&ls, 2, 4, usize::MAX));
        assert!(!power_feasible(&ls, 2, 4, 1), "tiny budget must refuse");
    }
}
