//! The augmented KPM kernels on SELL-C-σ matrices.
//!
//! Same fused iteration as [`crate::aug`] (paper Figs. 4, 5), executed
//! in SELL chunk order: `C` rows advance in lockstep through the
//! column-major chunk, which is what vectorizes single-vector SpMV on
//! SIMD/SIMT hardware (Kreutzer et al., ref. [13]).
//!
//! # Bitwise equivalence to the CRS kernels
//!
//! Every kernel here produces results **bitwise-identical** to its CRS
//! counterpart for any chunk height `C`, sorting window `σ`, task
//! granularity, and thread count. Two properties make that work:
//!
//! 1. **The per-row update chain is the CRS chain.** Within a chunk,
//!    element `j` of a lane is that row's `j`-th stored non-zero, so the
//!    lockstep accumulation applies the row's multiply-adds in exactly
//!    CRS column order. Padding entries append `0 · x[0]` terms at the
//!    *end* of the chain; with `Complex64::mul_add` being plain
//!    multiplies and adds, a zero value contributes `±0` products that
//!    leave the accumulator bitwise unchanged (a component that is zero
//!    is always `+0` here: the chain starts at `+0` and IEEE-754
//!    round-to-nearest addition never produces `-0` from `+0` inputs or
//!    exact cancellation). The blocked kernels skip padding instead —
//!    skipping a no-op is trivially bitwise-neutral.
//! 2. **Dot products are replayed in original row order.** The `η`
//!    accumulations only involve each row's *final* `v`/`w` values, so
//!    they are decoupled from the matrix sweep: after a σ-window's
//!    chunks complete (a window spans the contiguous original rows
//!    `[kσ, (k+1)σ)`; for `σ = 1` the permutation is the identity and a
//!    chunk spans `[kC, kC+C)`), the serial kernels walk that row range
//!    in ascending original order — producing the exact accumulation
//!    chain of the serial CRS kernel. The parallel kernels replay the
//!    dots in a second pass over the same fixed reduction boundaries as
//!    CRS ([`crate::aug::ROWS_PER_CHUNK`]-row chunks combined pairwise
//!    for SpMV; cache-budget row tiles combined in index order for
//!    SpMMV), so `SELL par ≡ CRS par` as well.
//!
//! The scattered parallel writes are sound for the same reason as in
//! [`crate::sell`]: `perm` is a permutation partitioned disjointly
//! across tasks.

use kpm_num::summation::{pairwise_sum, pairwise_sum_complex};
use kpm_num::{BlockVector, Complex64};
use kpm_obs::probe::{kernel_timer_fmt, KernelKind, ProbeFormat};
use rayon::prelude::*;

use crate::aug::{widen, AugDots, AugDotsBlock, ROWS_PER_CHUNK};
use crate::aug_sell_simd::{accum_chunk, axpy_row};
use crate::sell::{ScatterPtr, SellMatrix};

/// Chunks per σ-window: the serial kernels accumulate the fused dot
/// products after each window, once all its (permuted) rows hold final
/// values.
fn window_chunks(m: &SellMatrix) -> usize {
    if m.sigma() > 1 {
        m.sigma() / m.chunk_height()
    } else {
        1
    }
}

/// Augmented SpMV on SELL-C-σ: `w <- 2a(H - b·1) v - w` with both
/// Chebyshev scalar products accumulated on the fly;
/// bitwise-identical to [`crate::aug::aug_spmv`] on the source matrix.
pub fn aug_spmv(m: &SellMatrix, a: f64, b: f64, v: &[Complex64], w: &mut [Complex64]) -> AugDots {
    assert_eq!(v.len(), m.ncols(), "aug_spmv: v dimension mismatch");
    assert_eq!(w.len(), m.nrows(), "aug_spmv: w dimension mismatch");
    assert_eq!(m.nrows(), m.ncols(), "aug_spmv: matrix must be square");
    let _probe = kernel_timer_fmt(
        KernelKind::AugSpmv,
        m.nrows(),
        m.nnz(),
        1,
        m.stored_elements(),
        ProbeFormat::Sell,
    );
    aug_spmv_core_sell(m, a, b, v, w)
}

/// One chunk of the fused single-vector update (serial path).
#[inline]
#[allow(clippy::too_many_arguments)] // internal kernel body
fn scatter_chunk(
    m: &SellMatrix,
    ci: usize,
    a: f64,
    b: f64,
    v: &[Complex64],
    w: &mut [Complex64],
    acc: &mut [Complex64],
    use_simd: bool,
) {
    let c = m.chunk_height();
    let base = m.chunk_ptr[ci] as usize;
    let len = m.chunk_len[ci] as usize;
    accum_chunk(&m.cols, &m.vals, base, len, c, v, acc, use_simd);
    let lo = ci * c;
    #[allow(clippy::needless_range_loop)] // lockstep lane loop
    for lane in 0..c {
        let sell_row = lo + lane;
        if sell_row < m.nrows() {
            let orig = m.perm[sell_row] as usize;
            let vr = v[orig];
            w[orig] = (acc[lane] - vr.scale(b)).scale(2.0 * a) - w[orig];
        }
    }
}

/// Chunk-parallel augmented SELL SpMV; bitwise-identical to
/// [`crate::aug::aug_spmv_par`] on the source matrix (parallel scatter
/// pass, then the dot products replayed over the same fixed
/// [`ROWS_PER_CHUNK`] boundaries and combined pairwise).
pub fn aug_spmv_par(
    m: &SellMatrix,
    a: f64,
    b: f64,
    v: &[Complex64],
    w: &mut [Complex64],
) -> AugDots {
    assert_eq!(v.len(), m.ncols(), "aug_spmv_par: v dimension mismatch");
    assert_eq!(w.len(), m.nrows(), "aug_spmv_par: w dimension mismatch");
    assert_eq!(m.nrows(), m.ncols(), "aug_spmv_par: matrix must be square");
    let _probe = kernel_timer_fmt(
        KernelKind::AugSpmv,
        m.nrows(),
        m.nnz(),
        1,
        m.stored_elements(),
        ProbeFormat::Sell,
    );
    aug_spmv_par_unprobed(m, a, b, v, w)
}

/// Augmented SpMMV on SELL-C-σ over row-major block vectors;
/// bitwise-identical to [`crate::aug::aug_spmmv`] (and to the
/// width-specialized [`crate::gen::aug_spmmv_auto`]) on the source
/// matrix.
pub fn aug_spmmv(
    m: &SellMatrix,
    a: f64,
    b: f64,
    v: &BlockVector,
    w: &mut BlockVector,
) -> AugDotsBlock {
    let r_width = check_block_dims(m, v, w);
    let _probe = kernel_timer_fmt(
        KernelKind::AugSpmmv,
        m.nrows(),
        m.nnz(),
        r_width,
        m.stored_elements(),
        ProbeFormat::Sell,
    );
    if r_width == 1 {
        // Same width-1 dispatch as the CRS blocked kernels.
        return widen(aug_spmv_core_sell(m, a, b, v.as_slice(), w.as_mut_slice()));
    }
    let c = m.chunk_height();
    let nrows = m.nrows();
    let n_chunks = m.chunk_ptr.len() - 1;
    let win = window_chunks(m);
    let use_simd = crate::simd::active();
    let mut acc = vec![Complex64::default(); c * r_width];
    let mut eta_even = vec![0.0; r_width];
    let mut eta_odd = vec![Complex64::default(); r_width];
    let mut ci = 0;
    while ci < n_chunks {
        let w_end = (ci + win).min(n_chunks);
        for cj in ci..w_end {
            scatter_chunk_block(m, cj, a, b, v, w, &mut acc, use_simd);
        }
        for r in (ci * c)..(w_end * c).min(nrows) {
            let vrow = v.row(r);
            let wrow = w.row(r);
            for j in 0..r_width {
                let vr = vrow[j];
                eta_even[j] += vr.norm_sqr();
                eta_odd[j] = wrow[j].conj().mul_add(vr, eta_odd[j]);
            }
        }
        ci = w_end;
    }
    AugDotsBlock { eta_even, eta_odd }
}

/// The serial fused single-vector sweep without a probe, for the
/// width-1 dispatch (the caller opened an `AugSpmmv` probe).
fn aug_spmv_core_sell(
    m: &SellMatrix,
    a: f64,
    b: f64,
    v: &[Complex64],
    w: &mut [Complex64],
) -> AugDots {
    let c = m.chunk_height();
    let nrows = m.nrows();
    let n_chunks = m.chunk_ptr.len() - 1;
    let win = window_chunks(m);
    let use_simd = crate::simd::active();
    let mut acc = vec![Complex64::default(); c];
    let mut eta_even = 0.0;
    let mut eta_odd = Complex64::default();
    let mut ci = 0;
    while ci < n_chunks {
        let w_end = (ci + win).min(n_chunks);
        for cj in ci..w_end {
            scatter_chunk(m, cj, a, b, v, w, &mut acc, use_simd);
        }
        for r in (ci * c)..(w_end * c).min(nrows) {
            let vr = v[r];
            eta_even += vr.norm_sqr();
            eta_odd = w[r].conj().mul_add(vr, eta_odd);
        }
        ci = w_end;
    }
    AugDots { eta_even, eta_odd }
}

/// One chunk of the fused blocked update (serial path). Writes the
/// updated `w` rows; dot accumulation happens in the caller's window
/// replay.
#[inline]
#[allow(clippy::too_many_arguments)] // internal kernel body
fn scatter_chunk_block(
    m: &SellMatrix,
    ci: usize,
    a: f64,
    b: f64,
    v: &BlockVector,
    w: &mut BlockVector,
    acc: &mut [Complex64],
    use_simd: bool,
) {
    let c = m.chunk_height();
    let r_width = v.width();
    let base = m.chunk_ptr[ci] as usize;
    let len = m.chunk_len[ci] as usize;
    acc.fill(Complex64::default());
    for j in 0..len {
        let off = base + j * c;
        for lane in 0..c {
            let val = m.vals[off + lane];
            if val == Complex64::default() {
                continue; // padding
            }
            let col = m.cols[off + lane] as usize;
            let xrow = v.row(col);
            let arow = &mut acc[lane * r_width..(lane + 1) * r_width];
            axpy_row(val, xrow, arow, use_simd);
        }
    }
    let lo = ci * c;
    #[allow(clippy::needless_range_loop)] // lockstep lane loop
    for lane in 0..c {
        let sell_row = lo + lane;
        if sell_row < m.nrows() {
            let orig = m.perm[sell_row] as usize;
            let vrow = v.row(orig);
            let arow = &acc[lane * r_width..(lane + 1) * r_width];
            let wrow = w.row_mut(orig);
            for j in 0..r_width {
                let vr = vrow[j];
                wrow[j] = (arow[j] - vr.scale(b)).scale(2.0 * a) - wrow[j];
            }
        }
    }
}

/// Chunk-parallel augmented SELL SpMMV at the default per-thread cache
/// budget; bitwise-identical to [`crate::aug::aug_spmmv_par`].
pub fn aug_spmmv_par(
    m: &SellMatrix,
    a: f64,
    b: f64,
    v: &BlockVector,
    w: &mut BlockVector,
) -> AugDotsBlock {
    aug_spmmv_par_budget(m, a, b, v, w, crate::tile::DEFAULT_CACHE_BYTES)
}

/// [`aug_spmmv_par`] against an explicit per-thread cache budget;
/// bitwise-identical to [`crate::aug::aug_spmmv_par_budget`] at the
/// same budget (the dot replay tiles on the identical
/// [`crate::tile::tile_rows_for_budget`] boundaries, combined in index
/// order).
pub fn aug_spmmv_par_budget(
    m: &SellMatrix,
    a: f64,
    b: f64,
    v: &BlockVector,
    w: &mut BlockVector,
    cache_bytes: usize,
) -> AugDotsBlock {
    let r_width = check_block_dims(m, v, w);
    let _probe = kernel_timer_fmt(
        KernelKind::AugSpmmv,
        m.nrows(),
        m.nnz(),
        r_width,
        m.stored_elements(),
        ProbeFormat::Sell,
    );
    if r_width == 1 {
        return widen(aug_spmv_par_unprobed(
            m,
            a,
            b,
            v.as_slice(),
            w.as_mut_slice(),
        ));
    }
    // Pass 1: parallel scatter of the recurrence update.
    scatter_par_block(m, a, b, v, w);
    // Pass 2: dot replay on the CRS tile boundaries, combined in index
    // order exactly as the CRS kernel combines its per-tile partials.
    let rows_per_tile = crate::tile::tile_rows_for_budget(r_width, cache_bytes);
    let partials: Vec<(Vec<f64>, Vec<Complex64>)> = w
        .as_slice()
        .par_chunks(rows_per_tile * r_width)
        .enumerate()
        .map(|(ti, wc)| {
            let row0 = ti * rows_per_tile;
            let mut even = vec![0.0; r_width];
            let mut odd = vec![Complex64::default(); r_width];
            for (i, wrow) in wc.chunks(r_width).enumerate() {
                let vrow = v.row(row0 + i);
                for j in 0..r_width {
                    let vr = vrow[j];
                    even[j] += vr.norm_sqr();
                    odd[j] = wrow[j].conj().mul_add(vr, odd[j]);
                }
            }
            (even, odd)
        })
        .collect();
    let mut eta_even = vec![0.0; r_width];
    let mut eta_odd = vec![Complex64::default(); r_width];
    for (even, odd) in &partials {
        for j in 0..r_width {
            eta_even[j] += even[j];
            eta_odd[j] += odd[j];
        }
    }
    AugDotsBlock { eta_even, eta_odd }
}

/// Shared unprobed body of [`aug_spmv_par`] / its width-1 dispatch:
/// parallel scatter pass, then the dot products replayed over the fixed
/// [`ROWS_PER_CHUNK`] boundaries and combined pairwise.
fn aug_spmv_par_unprobed(
    m: &SellMatrix,
    a: f64,
    b: f64,
    v: &[Complex64],
    w: &mut [Complex64],
) -> AugDots {
    let c = m.chunk_height();
    let cpt = m.chunks_per_task();
    let nrows = m.nrows();
    let use_simd = crate::simd::active();
    {
        let w_out = ScatterPtr(w.as_mut_ptr());
        let w_out = &w_out;
        m.chunk_len
            .par_chunks(cpt)
            .enumerate()
            .for_each(|(group, lens)| {
                let mut acc = vec![Complex64::default(); c];
                for (k, &len) in lens.iter().enumerate() {
                    let ci = group * cpt + k;
                    let base = m.chunk_ptr[ci] as usize;
                    let len = len as usize;
                    accum_chunk(&m.cols, &m.vals, base, len, c, v, &mut acc, use_simd);
                    let lo = ci * c;
                    #[allow(clippy::needless_range_loop)] // lockstep lane loop
                    for lane in 0..c {
                        let sell_row = lo + lane;
                        if sell_row < nrows {
                            let orig = m.perm[sell_row] as usize;
                            // SAFETY: exclusive row per task (perm is a
                            // permutation partitioned across tasks).
                            let old = unsafe { *w_out.0.add(orig) };
                            let vr = v[orig];
                            let wr = (acc[lane] - vr.scale(b)).scale(2.0 * a) - old;
                            // SAFETY: see above — same exclusive row.
                            unsafe { *w_out.0.add(orig) = wr };
                        }
                    }
                }
            });
    }
    let partials: Vec<(f64, Complex64)> = w
        .par_chunks(ROWS_PER_CHUNK)
        .enumerate()
        .map(|(ci, wc)| {
            let row0 = ci * ROWS_PER_CHUNK;
            let mut even = 0.0;
            let mut odd = Complex64::default();
            for (i, wr) in wc.iter().enumerate() {
                let vr = v[row0 + i];
                even += vr.norm_sqr();
                odd = wr.conj().mul_add(vr, odd);
            }
            (even, odd)
        })
        .collect();
    let eta_even = pairwise_sum(&partials.iter().map(|p| p.0).collect::<Vec<_>>());
    let eta_odd = pairwise_sum_complex(&partials.iter().map(|p| p.1).collect::<Vec<_>>());
    AugDots { eta_even, eta_odd }
}

/// The parallel scatter pass of the blocked kernels: applies the
/// recurrence update to every `w` row, chunk groups in parallel, no dot
/// accumulation.
fn scatter_par_block(m: &SellMatrix, a: f64, b: f64, v: &BlockVector, w: &mut BlockVector) {
    let c = m.chunk_height();
    let r_width = v.width();
    let cpt = m.chunks_per_task();
    let nrows = m.nrows();
    let use_simd = crate::simd::active();
    let w_out = ScatterPtr(w.as_mut_slice().as_mut_ptr());
    let w_out = &w_out;
    m.chunk_len
        .par_chunks(cpt)
        .enumerate()
        .for_each(|(group, lens)| {
            let mut acc = vec![Complex64::default(); c * r_width];
            for (k, &len) in lens.iter().enumerate() {
                let ci = group * cpt + k;
                let base = m.chunk_ptr[ci] as usize;
                let len = len as usize;
                acc.fill(Complex64::default());
                for j in 0..len {
                    let off = base + j * c;
                    for lane in 0..c {
                        let val = m.vals[off + lane];
                        if val == Complex64::default() {
                            continue; // padding
                        }
                        let col = m.cols[off + lane] as usize;
                        let xrow = v.row(col);
                        let arow = &mut acc[lane * r_width..(lane + 1) * r_width];
                        axpy_row(val, xrow, arow, use_simd);
                    }
                }
                let lo = ci * c;
                #[allow(clippy::needless_range_loop)] // lockstep lane loop
                for lane in 0..c {
                    let sell_row = lo + lane;
                    if sell_row < nrows {
                        let orig = m.perm[sell_row] as usize;
                        let vrow = v.row(orig);
                        let arow = &acc[lane * r_width..(lane + 1) * r_width];
                        // SAFETY: row `orig` spans elements
                        // `orig*r_width..(orig+1)*r_width`; rows are
                        // read+written by exactly one chunk of one task
                        // (perm is a permutation; chunks partitioned
                        // disjointly).
                        let wrow = unsafe {
                            std::slice::from_raw_parts_mut(w_out.0.add(orig * r_width), r_width)
                        };
                        for j in 0..r_width {
                            let vr = vrow[j];
                            wrow[j] = (arow[j] - vr.scale(b)).scale(2.0 * a) - wrow[j];
                        }
                    }
                }
            }
        });
}

/// Augmented SELL SpMMV *without* the fused scalar products (the
/// paper's Fig. 10(b) kernel); bitwise-identical to
/// [`crate::aug::aug_spmmv_nodot`].
pub fn aug_spmmv_nodot(m: &SellMatrix, a: f64, b: f64, v: &BlockVector, w: &mut BlockVector) {
    let r_width = check_block_dims(m, v, w);
    let _probe = kernel_timer_fmt(
        KernelKind::AugSpmmv,
        m.nrows(),
        m.nnz(),
        r_width,
        m.stored_elements(),
        ProbeFormat::Sell,
    );
    let n_chunks = m.chunk_ptr.len() - 1;
    let use_simd = crate::simd::active();
    if r_width == 1 {
        let mut acc = vec![Complex64::default(); m.chunk_height()];
        let (vs, ws) = (v.as_slice(), w.as_mut_slice());
        for ci in 0..n_chunks {
            scatter_chunk(m, ci, a, b, vs, ws, &mut acc, use_simd);
        }
        return;
    }
    let mut acc = vec![Complex64::default(); m.chunk_height() * r_width];
    for ci in 0..n_chunks {
        scatter_chunk_block(m, ci, a, b, v, w, &mut acc, use_simd);
    }
}

/// Parallel variant of [`aug_spmmv_nodot`]; bitwise-identical to
/// [`crate::aug::aug_spmmv_nodot_par`].
pub fn aug_spmmv_nodot_par(m: &SellMatrix, a: f64, b: f64, v: &BlockVector, w: &mut BlockVector) {
    let r_width = check_block_dims(m, v, w);
    let _probe = kernel_timer_fmt(
        KernelKind::AugSpmmv,
        m.nrows(),
        m.nnz(),
        r_width,
        m.stored_elements(),
        ProbeFormat::Sell,
    );
    scatter_par_block(m, a, b, v, w);
}

fn check_block_dims(m: &SellMatrix, v: &BlockVector, w: &BlockVector) -> usize {
    assert_eq!(
        m.nrows(),
        m.ncols(),
        "augmented kernels need a square matrix"
    );
    assert_eq!(v.rows(), m.ncols(), "block v dimension mismatch");
    assert_eq!(w.rows(), m.nrows(), "block w dimension mismatch");
    assert_eq!(v.width(), w.width(), "block width mismatch");
    v.width()
}

/// Augmented SELL SpMMV over a *local* (rectangular, `ncols >= nrows`)
/// matrix block, the distributed building block; bitwise-identical to
/// [`crate::aug::aug_spmmv_rect`]. Serial, like its CRS counterpart
/// (ranks parallelize across each other, not within).
pub fn aug_spmmv_rect(
    m: &SellMatrix,
    a: f64,
    b: f64,
    v: &BlockVector,
    w: &mut BlockVector,
) -> AugDotsBlock {
    assert!(
        m.ncols() >= m.nrows(),
        "local matrix must have ncols >= nrows"
    );
    assert_eq!(v.rows(), m.ncols(), "block v dimension mismatch");
    assert!(w.rows() >= m.nrows(), "block w too small");
    assert_eq!(v.width(), w.width(), "block width mismatch");
    let r_width = v.width();
    let _probe = kernel_timer_fmt(
        KernelKind::AugSpmmv,
        m.nrows(),
        m.nnz(),
        r_width,
        m.stored_elements(),
        ProbeFormat::Sell,
    );
    let n_chunks = m.chunk_ptr.len() - 1;
    let use_simd = crate::simd::active();
    let mut acc = vec![Complex64::default(); m.chunk_height() * r_width];
    for ci in 0..n_chunks {
        scatter_chunk_block(m, ci, a, b, v, w, &mut acc, use_simd);
    }
    // Dot replay over all local rows in original order (one "window":
    // the rect kernel is serial, so no boundary constraints apply).
    let mut eta_even = vec![0.0; r_width];
    let mut eta_odd = vec![Complex64::default(); r_width];
    for r in 0..m.nrows() {
        let vrow = v.row(r);
        let wrow = w.row(r);
        for j in 0..r_width {
            let vr = vrow[j];
            eta_even[j] += vr.norm_sqr();
            eta_odd[j] = wrow[j].conj().mul_add(vr, eta_odd[j]);
        }
    }
    AugDotsBlock { eta_even, eta_odd }
}

/// Plain rectangular SELL SpMMV `W[0..nrows] = H V` on the extended
/// column space (distributed initialization); value-identical to
/// [`crate::aug::spmmv_rect`].
pub fn spmmv_rect(m: &SellMatrix, v: &BlockVector, w: &mut BlockVector) {
    assert!(
        m.ncols() >= m.nrows(),
        "local matrix must have ncols >= nrows"
    );
    assert_eq!(v.rows(), m.ncols(), "block v dimension mismatch");
    assert!(w.rows() >= m.nrows(), "block w too small");
    assert_eq!(v.width(), w.width(), "block width mismatch");
    let c = m.chunk_height();
    let r_width = v.width();
    let n_chunks = m.chunk_ptr.len() - 1;
    let use_simd = crate::simd::active();
    let mut acc = vec![Complex64::default(); c * r_width];
    for ci in 0..n_chunks {
        let base = m.chunk_ptr[ci] as usize;
        let len = m.chunk_len[ci] as usize;
        acc.fill(Complex64::default());
        for j in 0..len {
            let off = base + j * c;
            for lane in 0..c {
                let val = m.vals[off + lane];
                if val == Complex64::default() {
                    continue; // padding
                }
                let col = m.cols[off + lane] as usize;
                let xrow = v.row(col);
                let arow = &mut acc[lane * r_width..(lane + 1) * r_width];
                axpy_row(val, xrow, arow, use_simd);
            }
        }
        let lo = ci * c;
        #[allow(clippy::needless_range_loop)] // lockstep lane loop
        for lane in 0..c {
            let sell_row = lo + lane;
            if sell_row < m.nrows() {
                let orig = m.perm[sell_row] as usize;
                w.row_mut(orig)
                    .copy_from_slice(&acc[lane * r_width..(lane + 1) * r_width]);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aug;
    use crate::coo::CooMatrix;
    use crate::crs::CrsMatrix;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_hermitian(n: usize, seed: u64) -> CrsMatrix {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut coo = CooMatrix::new(n, n);
        for r in 0..n {
            coo.push(r, r, Complex64::real(rng.gen_range(-1.0..1.0)));
            for _ in 0..3 {
                let c = rng.gen_range(0..n);
                if c != r {
                    let z = Complex64::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0));
                    coo.push(r, c, z);
                    coo.push(c, r, z.conj());
                }
            }
        }
        coo.to_crs()
    }

    fn cvec(n: usize, seed: u64) -> Vec<Complex64> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| Complex64::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)))
            .collect()
    }

    const CONFIGS: [(usize, usize); 6] = [(1, 1), (4, 1), (4, 16), (8, 8), (8, 32), (32, 64)];

    #[test]
    fn aug_spmv_is_bitwise_equal_to_crs() {
        let n = 157;
        let h = random_hermitian(n, 7);
        let v = cvec(n, 8);
        let w0 = cvec(n, 9);
        let mut w_ref = w0.clone();
        let d_ref = aug::aug_spmv(&h, 0.47, -0.21, &v, &mut w_ref);
        for (c, sigma) in CONFIGS {
            let sell = SellMatrix::from_crs(&h, c, sigma);
            let mut w = w0.clone();
            let d = aug_spmv(&sell, 0.47, -0.21, &v, &mut w);
            assert_eq!(w, w_ref, "C={c} sigma={sigma}");
            assert_eq!(d.eta_even.to_bits(), d_ref.eta_even.to_bits());
            assert_eq!(d.eta_odd, d_ref.eta_odd, "C={c} sigma={sigma}");
        }
    }

    #[test]
    fn aug_spmv_par_is_bitwise_equal_to_crs_par() {
        let n = 2100; // > ROWS_PER_CHUNK: several dot partials
        let h = random_hermitian(n, 17);
        let v = cvec(n, 18);
        let w0 = cvec(n, 19);
        let mut w_ref = w0.clone();
        let d_ref = aug::aug_spmv_par(&h, 0.33, 0.11, &v, &mut w_ref);
        for (c, sigma) in CONFIGS {
            let sell = SellMatrix::from_crs(&h, c, sigma);
            for threads in [1usize, 4] {
                let pool = rayon::ThreadPoolBuilder::new()
                    .num_threads(threads)
                    .build()
                    .unwrap();
                let mut w = w0.clone();
                let d = pool.install(|| aug_spmv_par(&sell, 0.33, 0.11, &v, &mut w));
                assert_eq!(w, w_ref, "C={c} sigma={sigma} threads={threads}");
                assert_eq!(d.eta_even.to_bits(), d_ref.eta_even.to_bits());
                assert_eq!(d.eta_odd, d_ref.eta_odd);
            }
        }
    }

    #[test]
    fn aug_spmmv_is_bitwise_equal_to_crs() {
        let n = 143;
        let h = random_hermitian(n, 27);
        for r_width in [1usize, 3, 8] {
            let mut rng = StdRng::seed_from_u64(28 + r_width as u64);
            let v = BlockVector::random(n, r_width, &mut rng);
            let w0 = BlockVector::random(n, r_width, &mut rng);
            let mut w_ref = w0.clone();
            let d_ref = aug::aug_spmmv(&h, 0.6, -0.05, &v, &mut w_ref);
            for (c, sigma) in CONFIGS {
                let sell = SellMatrix::from_crs(&h, c, sigma);
                let mut w = w0.clone();
                let d = aug_spmmv(&sell, 0.6, -0.05, &v, &mut w);
                assert_eq!(w.max_abs_diff(&w_ref), 0.0, "R={r_width} C={c} s={sigma}");
                assert_eq!(d, d_ref, "R={r_width} C={c} sigma={sigma}");
            }
        }
    }

    #[test]
    fn aug_spmmv_par_is_bitwise_equal_to_crs_par() {
        let n = 1300; // > 2 tiles at R=8
        let h = random_hermitian(n, 37);
        for r_width in [1usize, 8] {
            let mut rng = StdRng::seed_from_u64(38 + r_width as u64);
            let v = BlockVector::random(n, r_width, &mut rng);
            let w0 = BlockVector::random(n, r_width, &mut rng);
            let mut w_ref = w0.clone();
            let d_ref = aug::aug_spmmv_par(&h, 0.4, -0.3, &v, &mut w_ref);
            for (c, sigma) in [(4usize, 16usize), (8, 8), (32, 64)] {
                let sell = SellMatrix::from_crs(&h, c, sigma).with_chunks_per_task(3);
                for threads in [1usize, 4] {
                    let pool = rayon::ThreadPoolBuilder::new()
                        .num_threads(threads)
                        .build()
                        .unwrap();
                    let mut w = w0.clone();
                    let d = pool.install(|| aug_spmmv_par(&sell, 0.4, -0.3, &v, &mut w));
                    assert_eq!(w.max_abs_diff(&w_ref), 0.0, "R={r_width} C={c}");
                    assert_eq!(d, d_ref, "R={r_width} C={c} threads={threads}");
                }
            }
        }
    }

    #[test]
    fn nodot_variants_match_crs() {
        let n = 120;
        let h = random_hermitian(n, 47);
        for r_width in [1usize, 4] {
            let mut rng = StdRng::seed_from_u64(48 + r_width as u64);
            let v = BlockVector::random(n, r_width, &mut rng);
            let w0 = BlockVector::random(n, r_width, &mut rng);
            let mut w_ref = w0.clone();
            aug::aug_spmmv_nodot(&h, 0.8, 0.15, &v, &mut w_ref);
            for (c, sigma) in [(4usize, 8usize), (8, 32)] {
                let sell = SellMatrix::from_crs(&h, c, sigma);
                let mut w = w0.clone();
                aug_spmmv_nodot(&sell, 0.8, 0.15, &v, &mut w);
                assert_eq!(w.max_abs_diff(&w_ref), 0.0, "serial R={r_width} C={c}");
                let mut w = w0.clone();
                aug_spmmv_nodot_par(&sell, 0.8, 0.15, &v, &mut w);
                assert_eq!(w.max_abs_diff(&w_ref), 0.0, "par R={r_width} C={c}");
            }
        }
    }

    #[test]
    fn rect_kernels_match_crs_rect() {
        // Local block: 40 rows over a 40+15 extended column space.
        let n = 55;
        let h_full = random_hermitian(n, 57);
        let local = h_full.row_block(0, 40);
        let mut rng = StdRng::seed_from_u64(58);
        let v = BlockVector::random(local.ncols().max(n), 3, &mut rng);
        let w0 = BlockVector::random(local.ncols().max(n), 3, &mut rng);
        let mut w_ref = w0.clone();
        let d_ref = aug::aug_spmmv_rect(&local, 0.7, 0.02, &v, &mut w_ref);
        for (c, sigma) in [(1usize, 1usize), (8, 16)] {
            let sell = SellMatrix::from_crs(&local, c, sigma);
            let mut w = w0.clone();
            let d = aug_spmmv_rect(&sell, 0.7, 0.02, &v, &mut w);
            assert_eq!(w.max_abs_diff(&w_ref), 0.0, "C={c} sigma={sigma}");
            assert_eq!(d, d_ref);
            let mut y = BlockVector::zeros(v.rows(), 3);
            let mut y_ref = BlockVector::zeros(v.rows(), 3);
            aug::spmmv_rect(&local, &v, &mut y_ref);
            spmmv_rect(&sell, &v, &mut y);
            assert_eq!(y.max_abs_diff(&y_ref), 0.0, "C={c} sigma={sigma}");
        }
    }
}
