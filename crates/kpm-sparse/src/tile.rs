//! Cache-aware row-block tiling for the blocked augmented kernels.
//!
//! The blocked `aug_spmmv` streams the matrix once but keeps touching
//! the block vectors `V` and `W`: each processed row reads ~`R` complex
//! values from `W` and, through the sparsity pattern, a window of rows
//! of `V`. At small `R` that window fits comfortably next to the matrix
//! stream; at `R = 32` one block-vector row is already 512 B, and a
//! chunk of rows processed by one thread drags `2 · rows · R · 16` bytes
//! of block-vector state through the cache *per chunk* — past a few
//! hundred rows the `V` window of the next rows evicts the `W` tile of
//! the current ones and the kernel turns memory bound again. This is
//! the measured `BENCH_stages.json` regression at `R = 32`.
//!
//! The fix is the classical one (cf. Kreutzer et al. and the
//! cache-blocking analysis of Alappat et al.): partition the row space
//! into *tiles* sized so the tile's block-vector working set fits in
//! the per-thread share of the last-level cache, and hand whole tiles
//! to the scheduler. The tile size is a pure function of the block
//! width and one machine parameter — the per-thread cache budget,
//! provided by `kpm-perfmodel::machine` (this crate deliberately keeps
//! no dependency on the model crate; the budget is plumbed in as a
//! number).
//!
//! The budget is **scoped, not global**: it travels with the kernel
//! call (the `*_budget` kernel variants and the `KpmMatrix` handle's
//! `cache_bytes`), so two concurrent solvers tuned for different
//! machine models cannot stomp each other's tiling. There is no
//! process-global mutable state in this module.
//!
//! Determinism: the tile size also fixes the boundaries of the
//! per-tile partial dot products, so it must not depend on anything
//! scheduling-related. It depends only on `R` and the budget carried
//! by the call, both fixed for a run — moments stay bitwise-identical
//! for any thread count, and changing the budget is an explicit,
//! documented way to change (only) the reduction tree.

/// Default per-thread cache budget in bytes when none is configured:
/// 256 KiB, the private per-core (L2) cache of the paper's Xeon
/// sockets. The *private* cache is the right per-thread target — the
/// LLC is shared with the other threads' matrix streams.
pub const DEFAULT_CACHE_BYTES: usize = 256 * 1024;

/// Fraction of the budget granted to block-vector state; the rest is
/// headroom for the matrix stream and the accumulator row.
const BLOCK_VECTOR_SHARE: f64 = 0.5;

/// Lower bound on the tile height — below this, per-tile scheduling
/// and reduction overhead dominates any locality win.
pub const MIN_TILE_ROWS: usize = 64;

/// Upper bound on the tile height, matching the pre-tiling fixed chunk
/// of 512 rows so small-`R` behaviour (and its reduction tree) is
/// unchanged.
pub const MAX_TILE_ROWS: usize = 512;

/// Rows per tile for a blocked kernel of width `r_width` at the
/// default per-thread cache budget ([`DEFAULT_CACHE_BYTES`]).
pub fn tile_rows(r_width: usize) -> usize {
    tile_rows_for_budget(r_width, DEFAULT_CACHE_BYTES)
}

/// Rows per tile for a blocked kernel of width `r_width`, such that the
/// tile's block-vector working set (`2 · rows · r_width · 16` bytes for
/// `V` and `W`) stays within [`BLOCK_VECTOR_SHARE`] of the given
/// per-thread cache budget, clamped to `[MIN_TILE_ROWS, MAX_TILE_ROWS]`.
///
/// For `R <= 8` at the default budget this saturates at
/// [`MAX_TILE_ROWS`] — identical chunking to the pre-tiling kernels.
/// This is the pure sizing function; `kpm-perfmodel` also calls it to
/// predict tile sizes for catalog machines.
pub fn tile_rows_for_budget(r_width: usize, cache_bytes: usize) -> usize {
    let bytes_per_row = 2 * r_width.max(1) * 16;
    let budget = (cache_bytes as f64 * BLOCK_VECTOR_SHARE) as usize;
    (budget / bytes_per_row).clamp(MIN_TILE_ROWS, MAX_TILE_ROWS)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tile_shrinks_with_block_width() {
        let budget = DEFAULT_CACHE_BYTES;
        let mut prev = usize::MAX;
        for r in [1, 2, 4, 8, 16, 32, 64] {
            let t = tile_rows_for_budget(r, budget);
            assert!(t <= prev, "tile must not grow with R");
            assert!((MIN_TILE_ROWS..=MAX_TILE_ROWS).contains(&t));
            prev = t;
        }
    }

    #[test]
    fn small_widths_keep_legacy_chunking() {
        // R <= 8 at the default budget: working set fits, tile
        // saturates at the pre-tiling 512-row chunk.
        for r in [1, 2, 4, 8] {
            assert_eq!(tile_rows_for_budget(r, DEFAULT_CACHE_BYTES), MAX_TILE_ROWS);
        }
        // R = 32 is the measured regression: the tile must shrink so
        // the V/W tiles stay resident in the private cache.
        assert_eq!(tile_rows_for_budget(16, DEFAULT_CACHE_BYTES), 256);
        assert_eq!(tile_rows_for_budget(32, DEFAULT_CACHE_BYTES), 128);
    }

    #[test]
    fn working_set_fits_share_of_budget() {
        for r in [8, 16, 32, 128] {
            for budget in [256 * 1024, 1024 * 1024, 8 * 1024 * 1024] {
                let t = tile_rows_for_budget(r, budget);
                if t > MIN_TILE_ROWS {
                    assert!(2 * t * r * 16 <= budget, "R={r} budget={budget}");
                }
            }
        }
    }

    #[test]
    fn budget_is_scoped_per_call() {
        // Two "solvers" with different budgets get different tiles from
        // the same pure function — no global to race on or reset.
        let small = tile_rows_for_budget(32, 256 * 1024);
        let big = tile_rows_for_budget(32, 1024 * 1024);
        assert!(small < big);
        // The default-budget convenience wrapper matches the explicit
        // form, so callers can freely mix the two.
        assert_eq!(tile_rows(32), tile_rows_for_budget(32, DEFAULT_CACHE_BYTES));
    }

    #[test]
    fn zero_width_does_not_divide_by_zero() {
        assert!(tile_rows_for_budget(0, DEFAULT_CACHE_BYTES) >= MIN_TILE_ROWS);
    }
}
