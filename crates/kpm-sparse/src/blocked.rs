//! Cache-blocked SpMMV (paper Section VII / ref. [31]).
//!
//! The paper's outlook names "cache blocking for the CPU implementation
//! of SpMMV" as a further optimization: when the right-hand-side block
//! `X` is much larger than the LLC, splitting the *column* space into
//! blocks keeps the active slice of `X` cache-resident at the price of
//! re-reading `Y` once per column block. This module implements that
//! optimization: the matrix is re-packed so each column block's entries
//! are contiguous, and the kernel sweeps block by block.
//!
//! The trade-off is quantified by [`CacheBlockedCrs::traffic_estimate`]:
//! blocking pays off when the saved `X` re-reads (`(Ω-1)·R·N·S_d`)
//! exceed the added `Y` traffic (`(n_blocks-1)·2·R·N·S_d`).

use kpm_num::{BlockVector, Complex64};

use crate::crs::CrsMatrix;

/// A CRS matrix re-packed into vertical (column) blocks for
/// cache-blocked SpMMV.
#[derive(Debug, Clone)]
pub struct CacheBlockedCrs {
    nrows: usize,
    ncols: usize,
    nnz: usize,
    col_block: usize,
    /// One sub-matrix per column block; columns keep their global
    /// indices so no remapping is needed at kernel time.
    blocks: Vec<CrsMatrix>,
}

impl CacheBlockedCrs {
    /// Re-packs `m` with the given column-block width.
    pub fn from_crs(m: &CrsMatrix, col_block: usize) -> Self {
        assert!(col_block >= 1, "column block width must be positive");
        let n_blocks = m.ncols().div_ceil(col_block);
        let mut per_block: Vec<(Vec<u64>, Vec<u32>, Vec<Complex64>)> = (0..n_blocks)
            .map(|_| (vec![0u64], Vec::new(), Vec::new()))
            .collect();
        for r in 0..m.nrows() {
            let cols = m.row_cols(r);
            let vals = m.row_vals(r);
            for (&c, &v) in cols.iter().zip(vals) {
                let b = c as usize / col_block;
                per_block[b].1.push(c);
                per_block[b].2.push(v);
            }
            for (row_ptr, cols, _) in &mut per_block {
                row_ptr.push(cols.len() as u64);
            }
        }
        let blocks = per_block
            .into_iter()
            .map(|(row_ptr, cols, vals)| {
                CrsMatrix::from_raw(m.nrows(), m.ncols(), row_ptr, cols, vals)
            })
            .collect();
        Self {
            nrows: m.nrows(),
            ncols: m.ncols(),
            nnz: m.nnz(),
            col_block,
            blocks,
        }
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of non-zeros (unchanged by re-packing).
    pub fn nnz(&self) -> usize {
        self.nnz
    }

    /// Column-block width.
    pub fn col_block(&self) -> usize {
        self.col_block
    }

    /// Number of column blocks.
    pub fn n_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Cache-blocked `Y = A X`: one pass per column block; within a
    /// pass, only `col_block · R · S_d` bytes of `X` are live.
    pub fn spmmv(&self, x: &BlockVector, y: &mut BlockVector) {
        assert_eq!(x.rows(), self.ncols, "x dimension mismatch");
        assert_eq!(y.rows(), self.nrows, "y dimension mismatch");
        assert_eq!(x.width(), y.width(), "block width mismatch");
        let r_width = x.width();
        y.as_mut_slice().fill(Complex64::default());
        for block in &self.blocks {
            for r in 0..self.nrows {
                let cols = block.row_cols(r);
                if cols.is_empty() {
                    continue;
                }
                let vals = block.row_vals(r);
                let yrow = y.row_mut(r);
                for (v, &c) in vals.iter().zip(cols) {
                    let xrow = x.row(c as usize);
                    for j in 0..r_width {
                        yrow[j] = v.mul_add(xrow[j], yrow[j]);
                    }
                }
            }
        }
    }

    /// Minimum traffic estimate of the blocked sweep in bytes at block
    /// width `r`: matrix once, `X` once, `Y` read+written once per
    /// column block.
    pub fn traffic_estimate(&self, r: usize) -> u64 {
        let sd = 16u64;
        let si = 4u64;
        let matrix = self.nnz as u64 * (sd + si);
        let x = self.ncols as u64 * r as u64 * sd;
        let y = self.nrows as u64 * r as u64 * sd * (2 * self.n_blocks() as u64);
        matrix + x + y
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spmv::spmmv;
    use kpm_num::BlockVector;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn ti_matrix() -> CrsMatrix {
        // Use the random Hermitian generator via a local copy to avoid a
        // circular dev-dependency on kpm-topo.
        use crate::coo::CooMatrix;
        use rand::Rng;
        let n = 300;
        let mut rng = StdRng::seed_from_u64(5);
        let mut coo = CooMatrix::new(n, n);
        for r in 0..n {
            coo.push(r, r, Complex64::real(rng.gen_range(-1.0..1.0)));
            for _ in 0..5 {
                let c = rng.gen_range(0..n);
                if c != r {
                    let v = Complex64::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0));
                    coo.push(r, c, v);
                    coo.push(c, r, v.conj());
                }
            }
        }
        coo.to_crs()
    }

    #[test]
    fn blocked_matches_plain_for_various_widths() {
        let m = ti_matrix();
        let mut rng = StdRng::seed_from_u64(6);
        let x = BlockVector::random(m.ncols(), 4, &mut rng);
        let mut y_ref = BlockVector::zeros(m.nrows(), 4);
        spmmv(&m, &x, &mut y_ref);
        for cb in [1usize, 7, 64, 300, 1000] {
            let blocked = CacheBlockedCrs::from_crs(&m, cb);
            let mut y = BlockVector::zeros(m.nrows(), 4);
            blocked.spmmv(&x, &mut y);
            assert!(
                y.max_abs_diff(&y_ref) < 1e-12,
                "col_block = {cb}: diff = {}",
                y.max_abs_diff(&y_ref)
            );
        }
    }

    #[test]
    fn repacking_preserves_nnz() {
        let m = ti_matrix();
        let blocked = CacheBlockedCrs::from_crs(&m, 50);
        assert_eq!(blocked.nnz(), m.nnz());
        let stored: usize = (0..blocked.n_blocks())
            .map(|b| blocked.blocks[b].nnz())
            .sum();
        assert_eq!(stored, m.nnz());
    }

    #[test]
    fn single_block_equals_unblocked_traffic() {
        let m = ti_matrix();
        let one = CacheBlockedCrs::from_crs(&m, m.ncols());
        assert_eq!(one.n_blocks(), 1);
        let t = one.traffic_estimate(8);
        // matrix + X + Y(read+write)
        let expect = (m.nnz() * 20 + m.ncols() * 8 * 16 + m.nrows() * 8 * 16 * 2) as u64;
        assert_eq!(t, expect);
    }

    #[test]
    fn more_blocks_cost_more_y_traffic() {
        let m = ti_matrix();
        let few = CacheBlockedCrs::from_crs(&m, 150).traffic_estimate(8);
        let many = CacheBlockedCrs::from_crs(&m, 10).traffic_estimate(8);
        assert!(many > few);
    }

    #[test]
    fn empty_rows_in_blocks_are_skipped() {
        // A matrix whose columns all live in the first block: later
        // blocks have only empty rows.
        use crate::coo::CooMatrix;
        let mut coo = CooMatrix::new(10, 100);
        for r in 0..10 {
            coo.push(r, r, Complex64::real(1.0));
        }
        let m = coo.to_crs();
        let blocked = CacheBlockedCrs::from_crs(&m, 20);
        assert_eq!(blocked.n_blocks(), 5);
        let mut rng = StdRng::seed_from_u64(7);
        let x = BlockVector::random(100, 2, &mut rng);
        let mut y = BlockVector::zeros(10, 2);
        blocked.spmmv(&x, &mut y);
        for r in 0..10 {
            for j in 0..2 {
                assert!(y.get(r, j).approx_eq(x.get(r, j), 1e-15));
            }
        }
    }
}
