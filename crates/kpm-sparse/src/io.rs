//! Matrix Market I/O.
//!
//! The de-facto interchange format for sparse matrices (used by
//! SuiteSparse, GHOST — the paper's released library — and every SpMV
//! paper's benchmark suite). Supports the `matrix coordinate complex`
//! flavour with `general` or `hermitian` symmetry; Hermitian files
//! store only the lower triangle, as the spec requires.
//!
//! Only `std` is used — no new dependencies.

use std::io::{self, BufRead, Write};

use kpm_num::Complex64;

use crate::coo::CooMatrix;
use crate::crs::CrsMatrix;

/// Errors produced by the Matrix Market reader.
#[derive(Debug)]
pub enum MmError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Structural problem with the file contents.
    Parse(String),
}

impl std::fmt::Display for MmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MmError::Io(e) => write!(f, "I/O error: {e}"),
            MmError::Parse(msg) => write!(f, "Matrix Market parse error: {msg}"),
        }
    }
}

impl std::error::Error for MmError {}

impl From<io::Error> for MmError {
    fn from(e: io::Error) -> Self {
        MmError::Io(e)
    }
}

fn parse_err(msg: impl Into<String>) -> MmError {
    MmError::Parse(msg.into())
}

/// Writes `m` in `matrix coordinate complex general` format
/// (one-based indices, full pattern).
pub fn write_general<W: Write>(m: &CrsMatrix, out: &mut W) -> io::Result<()> {
    writeln!(out, "%%MatrixMarket matrix coordinate complex general")?;
    writeln!(out, "% written by kpm-repro")?;
    writeln!(out, "{} {} {}", m.nrows(), m.ncols(), m.nnz())?;
    for r in 0..m.nrows() {
        for (k, &c) in m.row_cols(r).iter().enumerate() {
            let v = m.row_vals(r)[k];
            writeln!(out, "{} {} {:e} {:e}", r + 1, c + 1, v.re, v.im)?;
        }
    }
    Ok(())
}

/// Writes a Hermitian matrix in `matrix coordinate complex hermitian`
/// format: only entries with `row >= col` are stored.
pub fn write_hermitian<W: Write>(m: &CrsMatrix, out: &mut W) -> io::Result<()> {
    assert!(
        m.is_hermitian(),
        "matrix must be Hermitian for hermitian output"
    );
    let lower: usize = (0..m.nrows())
        .map(|r| m.row_cols(r).iter().filter(|&&c| (c as usize) <= r).count())
        .sum();
    writeln!(out, "%%MatrixMarket matrix coordinate complex hermitian")?;
    writeln!(out, "% written by kpm-repro")?;
    writeln!(out, "{} {} {}", m.nrows(), m.ncols(), lower)?;
    for r in 0..m.nrows() {
        for (k, &c) in m.row_cols(r).iter().enumerate() {
            if (c as usize) <= r {
                let v = m.row_vals(r)[k];
                writeln!(out, "{} {} {:e} {:e}", r + 1, c + 1, v.re, v.im)?;
            }
        }
    }
    Ok(())
}

/// Reads a `matrix coordinate complex` file in `general` or
/// `hermitian` symmetry (also accepts `real`/`integer` values and
/// `symmetric` symmetry, promoting them to complex).
pub fn read<R: BufRead>(input: R) -> Result<CrsMatrix, MmError> {
    let mut lines = input.lines();

    // Header.
    let header = lines.next().ok_or_else(|| parse_err("empty file"))??;
    let tokens: Vec<String> = header
        .split_whitespace()
        .map(|t| t.to_ascii_lowercase())
        .collect();
    if tokens.len() < 5 || tokens[0] != "%%matrixmarket" || tokens[1] != "matrix" {
        return Err(parse_err(format!("bad header: {header}")));
    }
    if tokens[2] != "coordinate" {
        return Err(parse_err("only coordinate format is supported"));
    }
    let field = tokens[3].as_str();
    if !matches!(field, "complex" | "real" | "integer") {
        return Err(parse_err(format!("unsupported field type: {field}")));
    }
    let symmetry = tokens[4].as_str();
    if !matches!(symmetry, "general" | "hermitian" | "symmetric") {
        return Err(parse_err(format!("unsupported symmetry: {symmetry}")));
    }
    let complex_values = field == "complex";

    // Size line (after comments).
    let mut size_line = None;
    for line in lines.by_ref() {
        let line = line?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('%') {
            continue;
        }
        size_line = Some(t.to_string());
        break;
    }
    let size_line = size_line.ok_or_else(|| parse_err("missing size line"))?;
    let dims: Vec<usize> = size_line
        .split_whitespace()
        .map(|t| t.parse().map_err(|_| parse_err("bad size line")))
        .collect::<Result<_, _>>()?;
    if dims.len() != 3 {
        return Err(parse_err("size line must be 'rows cols nnz'"));
    }
    let (nrows, ncols, nnz) = (dims[0], dims[1], dims[2]);

    let mut coo = CooMatrix::with_capacity(nrows, ncols, nnz);
    let mut seen = 0usize;
    for line in lines {
        let line = line?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('%') {
            continue;
        }
        let parts: Vec<&str> = t.split_whitespace().collect();
        let want = if complex_values { 4 } else { 3 };
        if parts.len() != want {
            return Err(parse_err(format!("bad entry line: {t}")));
        }
        let r: usize = parts[0].parse().map_err(|_| parse_err("bad row index"))?;
        let c: usize = parts[1].parse().map_err(|_| parse_err("bad col index"))?;
        if r < 1 || r > nrows || c < 1 || c > ncols {
            return Err(parse_err(format!("index out of range: {r} {c}")));
        }
        let re: f64 = parts[2].parse().map_err(|_| parse_err("bad real part"))?;
        let im: f64 = if complex_values {
            parts[3].parse().map_err(|_| parse_err("bad imag part"))?
        } else {
            0.0
        };
        let v = Complex64::new(re, im);
        coo.push(r - 1, c - 1, v);
        if symmetry != "general" && r != c {
            let mirrored = if symmetry == "hermitian" { v.conj() } else { v };
            coo.push(c - 1, r - 1, mirrored);
        }
        seen += 1;
    }
    if seen != nnz {
        return Err(parse_err(format!("expected {nnz} entries, found {seen}")));
    }
    Ok(coo.to_crs())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::CooMatrix;
    use std::io::BufReader;

    fn hermitian3() -> CrsMatrix {
        let mut m = CooMatrix::new(3, 3);
        m.push(0, 0, Complex64::real(2.0));
        m.push(0, 1, Complex64::new(1.0, 1.0));
        m.push(1, 0, Complex64::new(1.0, -1.0));
        m.push(1, 2, Complex64::new(0.0, 2.0));
        m.push(2, 1, Complex64::new(0.0, -2.0));
        m.push(2, 2, Complex64::real(-0.5));
        m.to_crs()
    }

    #[test]
    fn general_roundtrip() {
        let m = hermitian3();
        let mut buf = Vec::new();
        write_general(&m, &mut buf).unwrap();
        let back = read(BufReader::new(buf.as_slice())).unwrap();
        assert_eq!(m, back);
    }

    #[test]
    fn hermitian_roundtrip_restores_upper_triangle() {
        let m = hermitian3();
        let mut buf = Vec::new();
        write_hermitian(&m, &mut buf).unwrap();
        let text = String::from_utf8(buf.clone()).unwrap();
        assert!(text.contains("hermitian"));
        // Only the lower triangle is stored...
        let entries = text.lines().filter(|l| !l.starts_with('%')).skip(1).count();
        assert_eq!(entries, 4); // (1,1), (2,1), (3,2), (3,3)
                                // ...but the read matrix is the full Hermitian one.
        let back = read(BufReader::new(buf.as_slice())).unwrap();
        assert_eq!(m, back);
        assert!(back.is_hermitian());
    }

    #[test]
    fn real_symmetric_file_promoted_to_complex() {
        let text = "%%MatrixMarket matrix coordinate real symmetric\n\
                    % comment\n\
                    2 2 2\n\
                    1 1 1.5\n\
                    2 1 -0.5\n";
        let m = read(BufReader::new(text.as_bytes())).unwrap();
        assert_eq!(m.get(0, 0), Complex64::real(1.5));
        assert_eq!(m.get(0, 1), Complex64::real(-0.5));
        assert_eq!(m.get(1, 0), Complex64::real(-0.5));
    }

    #[test]
    fn bad_header_rejected() {
        let text = "%%MatrixMarket matrix array complex general\n1 1 1\n1 1 0 0\n";
        assert!(matches!(
            read(BufReader::new(text.as_bytes())),
            Err(MmError::Parse(_))
        ));
    }

    #[test]
    fn wrong_entry_count_rejected() {
        let text = "%%MatrixMarket matrix coordinate complex general\n2 2 3\n1 1 1 0\n";
        let err = read(BufReader::new(text.as_bytes())).unwrap_err();
        assert!(err.to_string().contains("expected 3 entries"));
    }

    #[test]
    fn out_of_range_index_rejected() {
        let text = "%%MatrixMarket matrix coordinate complex general\n2 2 1\n3 1 1 0\n";
        assert!(read(BufReader::new(text.as_bytes())).is_err());
    }

    #[test]
    fn topological_insulator_roundtrip() {
        // The actual workload survives a write/read cycle.
        use kpm_num::Complex64 as C;
        let mut coo = CooMatrix::new(8, 8);
        for i in 0..8usize {
            coo.push(i, i, C::real(i as f64 - 4.0));
            if i + 1 < 8 {
                let v = C::new(0.5, 0.25);
                coo.push(i, i + 1, v);
                coo.push(i + 1, i, v.conj());
            }
        }
        let m = coo.to_crs();
        let mut buf = Vec::new();
        write_hermitian(&m, &mut buf).unwrap();
        let back = read(BufReader::new(buf.as_slice())).unwrap();
        assert_eq!(m, back);
    }
}
