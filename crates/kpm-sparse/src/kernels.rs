//! Format-pluggable kernel dispatch.
//!
//! [`SparseKernels`] abstracts the kernel family the KPM solver needs
//! over the storage format, so the whole pipeline — moments, blocked
//! runs, checkpointing, the distributed driver — runs unchanged on CRS
//! or SELL-C-σ. [`KpmMatrix`] is the owning handle the drivers pass
//! around: it carries the chosen representation plus the per-call
//! tuning state (the cache budget for the blocked tilings) so tuning
//! travels with the matrix instead of through global state.
//!
//! Every implementation of a given method computes the same
//! floating-point chain (see [`crate::aug_sell`] for the SELL
//! argument), so switching formats never changes results — only speed.

use std::sync::{Arc, OnceLock};

use kpm_num::{BlockVector, Complex64, KpmError};

use crate::aug::{self, AugDots, AugDotsBlock};
use crate::aug_sell;
use crate::crs::CrsMatrix;
use crate::power::{self, LevelSet};
use crate::sell::SellMatrix;
use crate::stencil::{self, StencilMatrix};
use crate::{gen, spmv};

/// A sparse-matrix storage format selection, including the SELL shape
/// parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FormatSpec {
    /// Compressed Row Storage (SELL-1-1 in the paper's terminology).
    Crs,
    /// SELL-C-σ with the given chunk height and sorting window.
    Sell {
        /// The chunk height `C` (SIMD/warp width).
        chunk_height: usize,
        /// The sorting window `σ` (1 or a multiple of `C`).
        sigma: usize,
    },
    /// Matrix-free stencil: rows regenerated on the fly from the
    /// lattice geometry ([`crate::stencil`]). Only constructible from a
    /// known stencil operator (the kpm-topo Hamiltonian), never from an
    /// assembled CRS matrix.
    Stencil,
}

impl FormatSpec {
    /// Short format name for reports and JSON schemas.
    pub fn name(&self) -> &'static str {
        match self {
            FormatSpec::Crs => "crs",
            FormatSpec::Sell { .. } => "sell",
            FormatSpec::Stencil => "stencil",
        }
    }
}

impl std::fmt::Display for FormatSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FormatSpec::Crs => write!(f, "crs"),
            FormatSpec::Sell {
                chunk_height,
                sigma,
            } => write!(f, "sell-{chunk_height}-{sigma}"),
            FormatSpec::Stencil => write!(f, "stencil"),
        }
    }
}

/// The kernel family the KPM solver requires of a storage format.
///
/// All methods are value-compatible across implementations; the
/// augmented kernels are *bitwise*-compatible (serial ≡ serial, par ≡
/// par at equal cache budget) — the guarantee the determinism tests
/// pin down.
pub trait SparseKernels: Sync {
    /// Number of rows.
    fn nrows(&self) -> usize;
    /// Number of columns.
    fn ncols(&self) -> usize;
    /// Number of logical non-zeros (excluding any fill-in padding).
    fn nnz(&self) -> usize;
    /// Number of stored elements including format padding.
    fn stored_elements(&self) -> usize;
    /// Storage occupancy `β = nnz / stored` ∈ (0, 1].
    fn beta(&self) -> f64 {
        if self.stored_elements() == 0 {
            1.0
        } else {
            self.nnz() as f64 / self.stored_elements() as f64
        }
    }
    /// The storage format of this matrix.
    fn format(&self) -> FormatSpec;

    /// Serial `y = A x`.
    fn spmv(&self, x: &[Complex64], y: &mut [Complex64]);
    /// Parallel `y = A x`.
    fn spmv_par(&self, x: &[Complex64], y: &mut [Complex64]);
    /// Serial `Y = A X` over row-major blocks.
    fn spmmv(&self, x: &BlockVector, y: &mut BlockVector);
    /// Parallel `Y = A X` over row-major blocks.
    fn spmmv_par(&self, x: &BlockVector, y: &mut BlockVector);

    /// Serial augmented SpMV (paper Fig. 4).
    fn aug_spmv(&self, a: f64, b: f64, v: &[Complex64], w: &mut [Complex64]) -> AugDots;
    /// Parallel augmented SpMV.
    fn aug_spmv_par(&self, a: f64, b: f64, v: &[Complex64], w: &mut [Complex64]) -> AugDots;
    /// Serial augmented SpMMV (paper Fig. 5).
    fn aug_spmmv(&self, a: f64, b: f64, v: &BlockVector, w: &mut BlockVector) -> AugDotsBlock;
    /// Parallel augmented SpMMV.
    fn aug_spmmv_par(&self, a: f64, b: f64, v: &BlockVector, w: &mut BlockVector) -> AugDotsBlock;
    /// Serial augmented SpMMV without the fused scalar products.
    fn aug_spmmv_nodot(&self, a: f64, b: f64, v: &BlockVector, w: &mut BlockVector);
    /// Parallel augmented SpMMV without the fused scalar products.
    fn aug_spmmv_nodot_par(&self, a: f64, b: f64, v: &BlockVector, w: &mut BlockVector);
    /// Augmented SpMMV over a local rectangular row block (distributed
    /// building block; serial — ranks parallelize across each other).
    fn aug_spmmv_rect(&self, a: f64, b: f64, v: &BlockVector, w: &mut BlockVector) -> AugDotsBlock;
    /// Plain rectangular SpMMV `W[0..nrows] = H V` (distributed
    /// initialization).
    fn spmmv_rect(&self, v: &BlockVector, w: &mut BlockVector);

    /// `p` consecutive Chebyshev iterations in one call (serial).
    ///
    /// On entry `(v, w)` hold `(x_{k−1}, x_k)`; on exit `(x_{k+p−1},
    /// x_{k+p})`, with one dots block per iteration — bitwise-identical
    /// to `p` swap-and-[`SparseKernels::aug_spmmv`] steps, which is
    /// exactly what this default does. Implementations may overlap the
    /// iterations (level-blocked matrix-power sweeps) as long as the
    /// bits stay the same.
    fn aug_spmmv_power(
        &self,
        p: usize,
        a: f64,
        b: f64,
        v: &mut BlockVector,
        w: &mut BlockVector,
    ) -> Vec<AugDotsBlock> {
        assert!(p >= 1, "power depth must be at least 1");
        let mut out = Vec::with_capacity(p);
        for _ in 0..p {
            v.swap(w);
            out.push(self.aug_spmmv(a, b, v, w));
        }
        out
    }

    /// `p` consecutive Chebyshev iterations in one call (parallel);
    /// same contract as [`SparseKernels::aug_spmmv_power`] relative to
    /// the parallel kernels at the handle's cache budget.
    fn aug_spmmv_power_par(
        &self,
        p: usize,
        a: f64,
        b: f64,
        v: &mut BlockVector,
        w: &mut BlockVector,
    ) -> Vec<AugDotsBlock> {
        assert!(p >= 1, "power depth must be at least 1");
        let mut out = Vec::with_capacity(p);
        for _ in 0..p {
            v.swap(w);
            out.push(self.aug_spmmv_par(a, b, v, w));
        }
        out
    }
}

impl SparseKernels for CrsMatrix {
    fn nrows(&self) -> usize {
        CrsMatrix::nrows(self)
    }
    fn ncols(&self) -> usize {
        CrsMatrix::ncols(self)
    }
    fn nnz(&self) -> usize {
        CrsMatrix::nnz(self)
    }
    fn stored_elements(&self) -> usize {
        CrsMatrix::nnz(self)
    }
    fn format(&self) -> FormatSpec {
        FormatSpec::Crs
    }
    fn spmv(&self, x: &[Complex64], y: &mut [Complex64]) {
        spmv::spmv(self, x, y);
    }
    fn spmv_par(&self, x: &[Complex64], y: &mut [Complex64]) {
        spmv::spmv_par(self, x, y);
    }
    fn spmmv(&self, x: &BlockVector, y: &mut BlockVector) {
        spmv::spmmv(self, x, y);
    }
    fn spmmv_par(&self, x: &BlockVector, y: &mut BlockVector) {
        spmv::spmmv_par(self, x, y);
    }
    fn aug_spmv(&self, a: f64, b: f64, v: &[Complex64], w: &mut [Complex64]) -> AugDots {
        aug::aug_spmv(self, a, b, v, w)
    }
    fn aug_spmv_par(&self, a: f64, b: f64, v: &[Complex64], w: &mut [Complex64]) -> AugDots {
        aug::aug_spmv_par(self, a, b, v, w)
    }
    fn aug_spmmv(&self, a: f64, b: f64, v: &BlockVector, w: &mut BlockVector) -> AugDotsBlock {
        // Route through the width-specialized registry (Section IV-B).
        gen::aug_spmmv_auto(self, a, b, v, w)
    }
    fn aug_spmmv_par(&self, a: f64, b: f64, v: &BlockVector, w: &mut BlockVector) -> AugDotsBlock {
        aug::aug_spmmv_par(self, a, b, v, w)
    }
    fn aug_spmmv_nodot(&self, a: f64, b: f64, v: &BlockVector, w: &mut BlockVector) {
        aug::aug_spmmv_nodot(self, a, b, v, w);
    }
    fn aug_spmmv_nodot_par(&self, a: f64, b: f64, v: &BlockVector, w: &mut BlockVector) {
        aug::aug_spmmv_nodot_par(self, a, b, v, w);
    }
    fn aug_spmmv_rect(&self, a: f64, b: f64, v: &BlockVector, w: &mut BlockVector) -> AugDotsBlock {
        aug::aug_spmmv_rect(self, a, b, v, w)
    }
    fn spmmv_rect(&self, v: &BlockVector, w: &mut BlockVector) {
        aug::spmmv_rect(self, v, w);
    }
}

impl SparseKernels for SellMatrix {
    fn nrows(&self) -> usize {
        SellMatrix::nrows(self)
    }
    fn ncols(&self) -> usize {
        SellMatrix::ncols(self)
    }
    fn nnz(&self) -> usize {
        SellMatrix::nnz(self)
    }
    fn stored_elements(&self) -> usize {
        SellMatrix::stored_elements(self)
    }
    fn format(&self) -> FormatSpec {
        FormatSpec::Sell {
            chunk_height: self.chunk_height(),
            sigma: self.sigma(),
        }
    }
    fn spmv(&self, x: &[Complex64], y: &mut [Complex64]) {
        SellMatrix::spmv(self, x, y);
    }
    fn spmv_par(&self, x: &[Complex64], y: &mut [Complex64]) {
        SellMatrix::spmv_par(self, x, y);
    }
    fn spmmv(&self, x: &BlockVector, y: &mut BlockVector) {
        SellMatrix::spmmv(self, x, y);
    }
    fn spmmv_par(&self, x: &BlockVector, y: &mut BlockVector) {
        SellMatrix::spmmv_par(self, x, y);
    }
    fn aug_spmv(&self, a: f64, b: f64, v: &[Complex64], w: &mut [Complex64]) -> AugDots {
        aug_sell::aug_spmv(self, a, b, v, w)
    }
    fn aug_spmv_par(&self, a: f64, b: f64, v: &[Complex64], w: &mut [Complex64]) -> AugDots {
        aug_sell::aug_spmv_par(self, a, b, v, w)
    }
    fn aug_spmmv(&self, a: f64, b: f64, v: &BlockVector, w: &mut BlockVector) -> AugDotsBlock {
        aug_sell::aug_spmmv(self, a, b, v, w)
    }
    fn aug_spmmv_par(&self, a: f64, b: f64, v: &BlockVector, w: &mut BlockVector) -> AugDotsBlock {
        aug_sell::aug_spmmv_par(self, a, b, v, w)
    }
    fn aug_spmmv_nodot(&self, a: f64, b: f64, v: &BlockVector, w: &mut BlockVector) {
        aug_sell::aug_spmmv_nodot(self, a, b, v, w);
    }
    fn aug_spmmv_nodot_par(&self, a: f64, b: f64, v: &BlockVector, w: &mut BlockVector) {
        aug_sell::aug_spmmv_nodot_par(self, a, b, v, w);
    }
    fn aug_spmmv_rect(&self, a: f64, b: f64, v: &BlockVector, w: &mut BlockVector) -> AugDotsBlock {
        aug_sell::aug_spmmv_rect(self, a, b, v, w)
    }
    fn spmmv_rect(&self, v: &BlockVector, w: &mut BlockVector) {
        aug_sell::spmmv_rect(self, v, w);
    }
}

impl SparseKernels for StencilMatrix {
    fn nrows(&self) -> usize {
        StencilMatrix::nrows(self)
    }
    fn ncols(&self) -> usize {
        StencilMatrix::ncols(self)
    }
    fn nnz(&self) -> usize {
        StencilMatrix::nnz(self)
    }
    fn stored_elements(&self) -> usize {
        0
    }
    fn format(&self) -> FormatSpec {
        FormatSpec::Stencil
    }
    fn spmv(&self, x: &[Complex64], y: &mut [Complex64]) {
        stencil::spmv(self, x, y);
    }
    fn spmv_par(&self, x: &[Complex64], y: &mut [Complex64]) {
        stencil::spmv_par(self, x, y);
    }
    fn spmmv(&self, x: &BlockVector, y: &mut BlockVector) {
        stencil::spmmv(self, x, y);
    }
    fn spmmv_par(&self, x: &BlockVector, y: &mut BlockVector) {
        stencil::spmmv_par(self, x, y);
    }
    fn aug_spmv(&self, a: f64, b: f64, v: &[Complex64], w: &mut [Complex64]) -> AugDots {
        stencil::aug_spmv(self, a, b, v, w)
    }
    fn aug_spmv_par(&self, a: f64, b: f64, v: &[Complex64], w: &mut [Complex64]) -> AugDots {
        stencil::aug_spmv_par(self, a, b, v, w)
    }
    fn aug_spmmv(&self, a: f64, b: f64, v: &BlockVector, w: &mut BlockVector) -> AugDotsBlock {
        stencil::aug_spmmv(self, a, b, v, w)
    }
    fn aug_spmmv_par(&self, a: f64, b: f64, v: &BlockVector, w: &mut BlockVector) -> AugDotsBlock {
        stencil::aug_spmmv_par(self, a, b, v, w)
    }
    fn aug_spmmv_nodot(&self, a: f64, b: f64, v: &BlockVector, w: &mut BlockVector) {
        stencil::aug_spmmv_nodot(self, a, b, v, w);
    }
    fn aug_spmmv_nodot_par(&self, a: f64, b: f64, v: &BlockVector, w: &mut BlockVector) {
        stencil::aug_spmmv_nodot_par(self, a, b, v, w);
    }
    fn aug_spmmv_rect(&self, a: f64, b: f64, v: &BlockVector, w: &mut BlockVector) -> AugDotsBlock {
        stencil::aug_spmmv_rect(self, a, b, v, w)
    }
    fn spmmv_rect(&self, v: &BlockVector, w: &mut BlockVector) {
        stencil::spmmv_rect(self, v, w);
    }
}

/// The concrete storage behind a [`KpmMatrix`].
#[derive(Debug, Clone)]
enum Repr {
    Crs(CrsMatrix),
    Sell(SellMatrix),
    // Boxed: the inline hop-block tables make this variant ~20x the
    // size of the other two.
    Stencil(Box<StencilMatrix>),
}

/// An owning, format-erased matrix handle with its tuning state.
///
/// The per-thread cache budget for the blocked tilings rides on the
/// handle (scoped, not global — see [`crate::tile`]); the SELL task
/// granularity rides on the [`SellMatrix`] itself. Both are pure
/// scheduling knobs: results are bitwise-independent of them except
/// that the cache budget fixes the (thread-count-independent) reduction
/// boundaries of the blocked parallel dots.
#[derive(Debug, Clone)]
pub struct KpmMatrix {
    repr: Repr,
    cache_bytes: usize,
    fingerprint: u64,
    /// Budget (bytes) for the level-blocked power kernels' live vector
    /// window; a pure go/no-go gate, never a correctness input.
    power_budget_bytes: usize,
    /// True once the storage arrays have been re-placed under the
    /// first-touch policy ([`KpmMatrix::with_first_touch`]); a pure
    /// placement property, never a correctness input.
    first_touch: bool,
    /// Lazily-built level set for the power kernels (`None` inside the
    /// cell when the structure does not level — e.g. SELL, or a matrix
    /// without structural symmetry).
    levels: OnceLock<Option<Arc<LevelSet>>>,
}

impl KpmMatrix {
    fn from_parts(repr: Repr, fingerprint: u64) -> Self {
        Self {
            repr,
            cache_bytes: crate::tile::DEFAULT_CACHE_BYTES,
            fingerprint,
            power_budget_bytes: power::DEFAULT_POWER_BUDGET_BYTES,
            first_touch: false,
            levels: OnceLock::new(),
        }
    }

    /// Wraps a CRS matrix at the default cache budget.
    pub fn crs(m: CrsMatrix) -> Self {
        let fingerprint = m.content_fingerprint();
        Self::from_parts(Repr::Crs(m), fingerprint)
    }

    /// Wraps a matrix-free stencil operator at the default cache
    /// budget.
    ///
    /// The fingerprint is the *content* fingerprint of the CRS build of
    /// the same lattice ([`StencilMatrix::content_fingerprint`]), so a
    /// stencil handle and a CRS handle of the same operator coalesce in
    /// the service registry and share moment-cache entries.
    pub fn stencil(m: StencilMatrix) -> Self {
        let fingerprint = m.content_fingerprint();
        Self::from_parts(Repr::Stencil(Box::new(m)), fingerprint)
    }

    /// Wraps a SELL matrix at the default cache budget.
    ///
    /// A directly-wrapped SELL matrix carries a *structural* fingerprint
    /// (shape, fill, and SELL parameters under a distinct hash domain)
    /// because the chunk-permuted storage no longer exposes the
    /// assembled row order. Build through [`KpmMatrix::try_with_format`]
    /// when the fingerprint must identify matrix *content* across
    /// formats — the service registry always does.
    pub fn sell(m: SellMatrix) -> Self {
        let mut h = crate::crs::Fnv1a::new();
        h.write_u64(0x5e11_5e11_5e11_5e11); // SELL domain tag
        h.write_u64(m.nrows() as u64);
        h.write_u64(m.ncols() as u64);
        h.write_u64(m.nnz() as u64);
        h.write_u64(m.stored_elements() as u64);
        h.write_u64(m.chunk_height() as u64);
        h.write_u64(m.sigma() as u64);
        let fingerprint = h.finish();
        Self::from_parts(Repr::Sell(m), fingerprint)
    }

    /// The content fingerprint identifying this operator (see
    /// [`CrsMatrix::content_fingerprint`]). Computed from the assembled
    /// CRS source in [`KpmMatrix::crs`] / [`KpmMatrix::try_with_format`],
    /// so CRS and SELL handles built from the same assembly fingerprint
    /// identically.
    pub fn content_fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// Builds the requested format from an assembled CRS matrix.
    ///
    /// Fails (like [`SellMatrix::try_from_crs`]) when the SELL shape
    /// parameters are invalid, and always for [`FormatSpec::Stencil`]:
    /// an assembled matrix no longer knows the lattice geometry, so the
    /// matrix-free format must be built from the stencil source (see
    /// `TopoHamiltonian::stencil_matrix` in kpm-topo) and wrapped with
    /// [`KpmMatrix::stencil`].
    pub fn try_with_format(m: CrsMatrix, spec: &FormatSpec) -> Result<Self, KpmError> {
        match *spec {
            FormatSpec::Crs => Ok(Self::crs(m)),
            FormatSpec::Sell {
                chunk_height,
                sigma,
            } => {
                // Fingerprint the assembled CRS content *before* the
                // chunk permutation so CRS and SELL handles of the same
                // operator share a fingerprint.
                let fingerprint = m.content_fingerprint();
                let sell = SellMatrix::try_from_crs(&m, chunk_height, sigma)?;
                Ok(Self::from_parts(Repr::Sell(sell), fingerprint))
            }
            FormatSpec::Stencil => Err(KpmError::InvalidParams {
                what: "format",
                details: "the stencil format is matrix-free and cannot be built from an \
                          assembled matrix; construct it from the lattice stencil and wrap \
                          with KpmMatrix::stencil"
                    .into(),
            }),
        }
    }

    /// Sets the per-thread cache budget (bytes) used by the blocked
    /// parallel kernels, builder-style.
    pub fn with_cache_bytes(mut self, bytes: usize) -> Self {
        self.cache_bytes = bytes.max(1);
        self
    }

    /// The per-thread cache budget (bytes) of the blocked tilings.
    pub fn cache_bytes(&self) -> usize {
        self.cache_bytes
    }

    /// Sets the budget (bytes) for the level-blocked power kernels'
    /// live vector window, builder-style. Callers with a machine model
    /// derive it from `Machine::l2_kib` × thread count; the gate only
    /// decides whether the wavefront path is *profitable* — both paths
    /// produce identical bits.
    pub fn with_power_budget_bytes(mut self, bytes: usize) -> Self {
        self.power_budget_bytes = bytes.max(1);
        self
    }

    /// The power-window budget (bytes) of the level-blocked kernels.
    pub fn power_budget_bytes(&self) -> usize {
        self.power_budget_bytes
    }

    /// Re-places the storage arrays under the NUMA first-touch policy,
    /// builder-style: each array range the parallel kernels stream is
    /// copied into a fresh untouched allocation by the pinned pool
    /// worker that will stream it (see [`crate::placement`]), so its
    /// pages land on that worker's memory node. A no-op for the
    /// matrix-free stencil (there are no arrays to place) and when
    /// `on` is false. Contents are bitwise-unchanged either way.
    pub fn with_first_touch(mut self, on: bool) -> Self {
        if on && !self.first_touch {
            match &mut self.repr {
                Repr::Crs(m) => m.first_touch_refault(),
                Repr::Sell(m) => m.first_touch_refault(),
                Repr::Stencil(_) => {}
            }
        }
        self.first_touch = on;
        self
    }

    /// True when the storage arrays were placed under the first-touch
    /// policy.
    pub fn first_touch(&self) -> bool {
        self.first_touch
    }

    /// Forwards the parallel task granularity to the SELL
    /// representation (no-op on the other formats).
    pub fn set_chunks_per_task(&mut self, chunks: usize) {
        if let Repr::Sell(m) = &mut self.repr {
            m.set_chunks_per_task(chunks);
        }
    }

    /// The CRS representation, if that is the active format.
    pub fn as_crs(&self) -> Option<&CrsMatrix> {
        match &self.repr {
            Repr::Crs(m) => Some(m),
            _ => None,
        }
    }

    /// The SELL representation, if that is the active format.
    pub fn as_sell(&self) -> Option<&SellMatrix> {
        match &self.repr {
            Repr::Sell(m) => Some(m),
            _ => None,
        }
    }

    /// The matrix-free stencil representation, if that is the active
    /// format.
    pub fn as_stencil(&self) -> Option<&StencilMatrix> {
        match &self.repr {
            Repr::Stencil(m) => Some(m.as_ref()),
            _ => None,
        }
    }

    /// The level set of this operator, built (once) on first use;
    /// `None` when the format has no row view (SELL) or the structure
    /// does not level.
    pub fn level_set(&self) -> Option<&LevelSet> {
        self.levels
            .get_or_init(|| match &self.repr {
                Repr::Crs(m) => LevelSet::build(m).map(Arc::new),
                Repr::Stencil(m) => LevelSet::build(m.as_ref()).map(Arc::new),
                Repr::Sell(_) => None,
            })
            .as_deref()
    }

    /// The level set, but only when a depth-`p` wavefront over width
    /// `r_width` is worth running under the power-window budget.
    fn power_levels(&self, p: usize, r_width: usize) -> Option<&LevelSet> {
        if p < 2 {
            return None;
        }
        let ls = self.level_set()?;
        power::power_feasible(ls, p, r_width, self.power_budget_bytes).then_some(ls)
    }
}

macro_rules! dispatch {
    ($self:ident, $m:ident => $e:expr) => {
        match &$self.repr {
            Repr::Crs($m) => $e,
            Repr::Sell($m) => $e,
            Repr::Stencil(boxed) => {
                let $m = boxed.as_ref();
                $e
            }
        }
    };
}

impl SparseKernels for KpmMatrix {
    fn nrows(&self) -> usize {
        dispatch!(self, m => m.nrows())
    }
    fn ncols(&self) -> usize {
        dispatch!(self, m => m.ncols())
    }
    fn nnz(&self) -> usize {
        dispatch!(self, m => m.nnz())
    }
    fn stored_elements(&self) -> usize {
        dispatch!(self, m => SparseKernels::stored_elements(m))
    }
    fn format(&self) -> FormatSpec {
        dispatch!(self, m => SparseKernels::format(m))
    }
    fn spmv(&self, x: &[Complex64], y: &mut [Complex64]) {
        dispatch!(self, m => SparseKernels::spmv(m, x, y))
    }
    fn spmv_par(&self, x: &[Complex64], y: &mut [Complex64]) {
        dispatch!(self, m => SparseKernels::spmv_par(m, x, y))
    }
    fn spmmv(&self, x: &BlockVector, y: &mut BlockVector) {
        dispatch!(self, m => SparseKernels::spmmv(m, x, y))
    }
    fn spmmv_par(&self, x: &BlockVector, y: &mut BlockVector) {
        dispatch!(self, m => SparseKernels::spmmv_par(m, x, y))
    }
    fn aug_spmv(&self, a: f64, b: f64, v: &[Complex64], w: &mut [Complex64]) -> AugDots {
        dispatch!(self, m => SparseKernels::aug_spmv(m, a, b, v, w))
    }
    fn aug_spmv_par(&self, a: f64, b: f64, v: &[Complex64], w: &mut [Complex64]) -> AugDots {
        dispatch!(self, m => SparseKernels::aug_spmv_par(m, a, b, v, w))
    }
    fn aug_spmmv(&self, a: f64, b: f64, v: &BlockVector, w: &mut BlockVector) -> AugDotsBlock {
        dispatch!(self, m => SparseKernels::aug_spmmv(m, a, b, v, w))
    }
    fn aug_spmmv_par(&self, a: f64, b: f64, v: &BlockVector, w: &mut BlockVector) -> AugDotsBlock {
        // Thread the handle's cache budget into the blocked tilings.
        match &self.repr {
            Repr::Crs(m) => aug::aug_spmmv_par_budget(m, a, b, v, w, self.cache_bytes),
            Repr::Sell(m) => aug_sell::aug_spmmv_par_budget(m, a, b, v, w, self.cache_bytes),
            Repr::Stencil(m) => stencil::aug_spmmv_par_budget(m, a, b, v, w, self.cache_bytes),
        }
    }
    fn aug_spmmv_nodot(&self, a: f64, b: f64, v: &BlockVector, w: &mut BlockVector) {
        dispatch!(self, m => SparseKernels::aug_spmmv_nodot(m, a, b, v, w))
    }
    fn aug_spmmv_nodot_par(&self, a: f64, b: f64, v: &BlockVector, w: &mut BlockVector) {
        match &self.repr {
            Repr::Crs(m) => aug::aug_spmmv_nodot_par_budget(m, a, b, v, w, self.cache_bytes),
            // The SELL no-dot kernel is scatter-only (no tiling), so
            // there is no budget to thread.
            Repr::Sell(m) => aug_sell::aug_spmmv_nodot_par(m, a, b, v, w),
            Repr::Stencil(m) => {
                stencil::aug_spmmv_nodot_par_budget(m, a, b, v, w, self.cache_bytes)
            }
        }
    }
    fn aug_spmmv_rect(&self, a: f64, b: f64, v: &BlockVector, w: &mut BlockVector) -> AugDotsBlock {
        dispatch!(self, m => SparseKernels::aug_spmmv_rect(m, a, b, v, w))
    }
    fn spmmv_rect(&self, v: &BlockVector, w: &mut BlockVector) {
        dispatch!(self, m => SparseKernels::spmmv_rect(m, v, w))
    }
    fn aug_spmmv_power(
        &self,
        p: usize,
        a: f64,
        b: f64,
        v: &mut BlockVector,
        w: &mut BlockVector,
    ) -> Vec<AugDotsBlock> {
        assert!(p >= 1, "power depth must be at least 1");
        if let Some(ls) = self.power_levels(p, v.width()) {
            match &self.repr {
                Repr::Crs(m) => return power::aug_spmmv_power(m, ls, p, a, b, v, w),
                Repr::Stencil(m) => return power::aug_spmmv_power(m.as_ref(), ls, p, a, b, v, w),
                Repr::Sell(_) => {} // no row view; fall through
            }
        }
        let mut out = Vec::with_capacity(p);
        for _ in 0..p {
            v.swap(w);
            out.push(SparseKernels::aug_spmmv(self, a, b, v, w));
        }
        out
    }
    fn aug_spmmv_power_par(
        &self,
        p: usize,
        a: f64,
        b: f64,
        v: &mut BlockVector,
        w: &mut BlockVector,
    ) -> Vec<AugDotsBlock> {
        assert!(p >= 1, "power depth must be at least 1");
        if let Some(ls) = self.power_levels(p, v.width()) {
            match &self.repr {
                Repr::Crs(m) => {
                    return power::aug_spmmv_power_par(m, ls, p, a, b, v, w, self.cache_bytes)
                }
                Repr::Stencil(m) => {
                    return power::aug_spmmv_power_par(
                        m.as_ref(),
                        ls,
                        p,
                        a,
                        b,
                        v,
                        w,
                        self.cache_bytes,
                    )
                }
                Repr::Sell(_) => {}
            }
        }
        let mut out = Vec::with_capacity(p);
        for _ in 0..p {
            v.swap(w);
            out.push(SparseKernels::aug_spmmv_par(self, a, b, v, w));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::CooMatrix;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_hermitian(n: usize, seed: u64) -> CrsMatrix {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut coo = CooMatrix::new(n, n);
        for r in 0..n {
            coo.push(r, r, Complex64::real(rng.gen_range(-1.0..1.0)));
            for _ in 0..3 {
                let c = rng.gen_range(0..n);
                if c != r {
                    let z = Complex64::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0));
                    coo.push(r, c, z);
                    coo.push(c, r, z.conj());
                }
            }
        }
        coo.to_crs()
    }

    #[test]
    fn format_spec_reports_names() {
        assert_eq!(FormatSpec::Crs.name(), "crs");
        let s = FormatSpec::Sell {
            chunk_height: 8,
            sigma: 32,
        };
        assert_eq!(s.name(), "sell");
        assert_eq!(s.to_string(), "sell-8-32");
        assert_eq!(FormatSpec::Crs.to_string(), "crs");
    }

    #[test]
    fn kpm_matrix_builds_requested_format() {
        let h = random_hermitian(64, 1);
        let crs = KpmMatrix::try_with_format(h.clone(), &FormatSpec::Crs).unwrap();
        assert!(crs.as_crs().is_some() && crs.as_sell().is_none());
        assert_eq!(SparseKernels::beta(&crs), 1.0);
        let spec = FormatSpec::Sell {
            chunk_height: 8,
            sigma: 32,
        };
        let sell = KpmMatrix::try_with_format(h.clone(), &spec).unwrap();
        assert!(sell.as_sell().is_some() && sell.as_crs().is_none());
        assert_eq!(SparseKernels::format(&sell), spec);
        assert!(SparseKernels::beta(&sell) <= 1.0);
        assert!(KpmMatrix::try_with_format(
            h,
            &FormatSpec::Sell {
                chunk_height: 4,
                sigma: 6
            }
        )
        .is_err());
    }

    #[test]
    fn trait_dispatch_matches_across_formats() {
        let n = 150;
        let h = random_hermitian(n, 2);
        let mut rng = StdRng::seed_from_u64(3);
        let v: Vec<Complex64> = (0..n)
            .map(|_| Complex64::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)))
            .collect();
        let w0: Vec<Complex64> = (0..n)
            .map(|_| Complex64::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)))
            .collect();
        let crs = KpmMatrix::crs(h.clone());
        let sell = KpmMatrix::try_with_format(
            h,
            &FormatSpec::Sell {
                chunk_height: 4,
                sigma: 16,
            },
        )
        .unwrap();
        let mut w1 = w0.clone();
        let mut w2 = w0;
        let d1 = SparseKernels::aug_spmv(&crs, 0.5, -0.1, &v, &mut w1);
        let d2 = SparseKernels::aug_spmv(&sell, 0.5, -0.1, &v, &mut w2);
        assert_eq!(w1, w2);
        assert_eq!(d1, d2);
    }

    #[test]
    fn first_touch_is_bitwise_neutral() {
        let n = 500;
        let h = random_hermitian(n, 9);
        let mut rng = StdRng::seed_from_u64(10);
        let v: Vec<Complex64> = (0..n)
            .map(|_| Complex64::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)))
            .collect();
        let w0: Vec<Complex64> = (0..n)
            .map(|_| Complex64::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)))
            .collect();
        let spec = FormatSpec::Sell {
            chunk_height: 8,
            sigma: 32,
        };
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(4)
            .build()
            .unwrap();
        for spec in [FormatSpec::Crs, spec] {
            let base = KpmMatrix::try_with_format(h.clone(), &spec).unwrap();
            let placed = pool.install(|| {
                KpmMatrix::try_with_format(h.clone(), &spec)
                    .unwrap()
                    .with_first_touch(true)
            });
            assert!(!base.first_touch());
            assert!(placed.first_touch());
            let mut w1 = w0.clone();
            let mut w2 = w0.clone();
            let d1 = SparseKernels::aug_spmv_par(&base, 0.5, -0.1, &v, &mut w1);
            let d2 = pool.install(|| SparseKernels::aug_spmv_par(&placed, 0.5, -0.1, &v, &mut w2));
            assert_eq!(w1, w2, "{spec}");
            assert_eq!(d1, d2, "{spec}");
        }
    }

    #[test]
    fn blocked_par_uses_handle_budget() {
        let n = 600;
        let h = random_hermitian(n, 4);
        let r_width = 8;
        let mut rng = StdRng::seed_from_u64(5);
        let v = BlockVector::random(n, r_width, &mut rng);
        let w0 = BlockVector::random(n, r_width, &mut rng);
        let budget = 64 * 1024;
        let crs = KpmMatrix::crs(h.clone()).with_cache_bytes(budget);
        assert_eq!(crs.cache_bytes(), budget);
        let mut w1 = w0.clone();
        let mut w2 = w0;
        let d1 = SparseKernels::aug_spmmv_par(&crs, 0.3, 0.2, &v, &mut w1);
        let d2 = aug::aug_spmmv_par_budget(&h, 0.3, 0.2, &v, &mut w2, budget);
        assert_eq!(w1.max_abs_diff(&w2), 0.0);
        assert_eq!(d1, d2);
    }
}
