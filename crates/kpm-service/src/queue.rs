//! The bounded admission queue.
//!
//! A mutex-and-condvar `VecDeque` with a hard capacity: `push` never
//! blocks (backpressure is explicit — a full queue returns the request
//! to the caller for a typed rejection), `pop_wait` parks the batcher
//! until work or a tick timeout arrives. Every lock acquisition
//! recovers from poisoning (`unwrap_or_else(into_inner)`): a thread
//! panicking while holding the lock — which the chaos layer injects on
//! purpose — must never wedge admission, because the queue state is a
//! plain deque that is valid at every instruction boundary.

use std::collections::VecDeque;
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use crate::chaos::QueuePoisonSentinel;
use crate::request::{Request, Response};

/// Shared one-shot reply slot: whoever `take()`s the sender delivers
/// the terminal reply; later takers (hedged duplicates, racing paths)
/// find it empty and drop their result. Exactly-once by construction.
pub(crate) type ReplySlot = Arc<Mutex<Option<mpsc::Sender<Response>>>>;

/// An admitted request waiting to be batched.
#[derive(Debug)]
pub(crate) struct Pending {
    pub(crate) id: u64,
    pub(crate) req: Request,
    /// Trace id minted at admission (0 when tracing is disabled);
    /// propagated through every stage span and onto the reply.
    pub(crate) trace: u64,
    /// Admission time in µs since the obs epoch (0 when tracing is
    /// disabled) — the anchor the per-stage breakdown tiles from.
    pub(crate) admitted_us: f64,
    pub(crate) enqueued_at: Instant,
    pub(crate) deadline_at: Instant,
    pub(crate) reply: ReplySlot,
}

/// Result of a non-blocking push.
#[derive(Debug)]
pub(crate) enum PushOutcome {
    /// Accepted; the queue now holds `depth` entries.
    Queued { depth: usize },
    /// At capacity — the request is handed back for a typed rejection.
    Full(Pending),
    /// The queue no longer accepts work (shutdown).
    Closed(Pending),
}

/// Result of a blocking pop.
#[derive(Debug)]
pub(crate) enum PopOutcome {
    /// The oldest pending request.
    Popped(Pending),
    /// Nothing arrived within the tick timeout.
    TimedOut,
    /// Closed and drained — the batcher can stop.
    Closed,
}

#[derive(Debug)]
struct Inner {
    q: VecDeque<Pending>,
    open: bool,
}

/// The bounded admission queue (see module docs).
#[derive(Debug)]
pub(crate) struct AdmissionQueue {
    inner: Mutex<Inner>,
    available: Condvar,
    capacity: usize,
}

impl AdmissionQueue {
    pub(crate) fn new(capacity: usize) -> Self {
        Self {
            inner: Mutex::new(Inner {
                q: VecDeque::new(),
                open: true,
            }),
            available: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Non-blocking bounded push.
    pub(crate) fn push(&self, p: Pending) -> PushOutcome {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        if !inner.open {
            return PushOutcome::Closed(p);
        }
        if inner.q.len() >= self.capacity {
            return PushOutcome::Full(p);
        }
        inner.q.push_back(p);
        let depth = inner.q.len();
        drop(inner);
        self.available.notify_one();
        PushOutcome::Queued { depth }
    }

    /// Blocks up to `tick` for the oldest pending request.
    pub(crate) fn pop_wait(&self, tick: Duration) -> PopOutcome {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(p) = inner.q.pop_front() {
            return PopOutcome::Popped(p);
        }
        if !inner.open {
            return PopOutcome::Closed;
        }
        let (mut inner, _timeout) = self
            .available
            .wait_timeout(inner, tick)
            .unwrap_or_else(|e| e.into_inner());
        match inner.q.pop_front() {
            Some(p) => PopOutcome::Popped(p),
            None if !inner.open => PopOutcome::Closed,
            None => PopOutcome::TimedOut,
        }
    }

    /// Pops further requests for the same matrix while the column
    /// budget lasts, preserving FIFO order within the route (the scan
    /// stops at the first same-matrix request that no longer fits).
    pub(crate) fn drain_matching(
        &self,
        fingerprint: u64,
        mut column_budget: usize,
    ) -> Vec<Pending> {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        let mut taken = Vec::new();
        let mut i = 0;
        while i < inner.q.len() {
            if inner.q[i].req.matrix == fingerprint {
                let cols = inner.q[i].req.kind.columns();
                if cols > column_budget {
                    break;
                }
                column_budget -= cols;
                if let Some(p) = inner.q.remove(i) {
                    taken.push(p);
                }
                // Do not advance: the element after the removed one
                // shifted into slot `i`.
            } else {
                i += 1;
            }
        }
        taken
    }

    /// Removes and returns everything (abort shutdown).
    pub(crate) fn drain_all(&self) -> Vec<Pending> {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.q.drain(..).collect()
    }

    /// Stops accepting work and wakes the batcher.
    pub(crate) fn close(&self) {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.open = false;
        drop(inner);
        self.available.notify_all();
    }

    /// Current depth.
    pub(crate) fn len(&self) -> usize {
        self.inner.lock().unwrap_or_else(|e| e.into_inner()).q.len()
    }

    /// Chaos hook: a sacrificial thread takes the queue lock and panics
    /// while holding it, leaving the mutex poisoned. Blocks until the
    /// poisoning has happened. Install
    /// [`crate::chaos::install_quiet_poison_hook`] first to keep the
    /// deliberate panic out of stderr.
    pub(crate) fn poison_lock(self: &Arc<Self>) {
        let me = Arc::clone(self);
        let t = std::thread::Builder::new()
            .name("kpm-svc-poison".into())
            .spawn(move || {
                let _guard = me.inner.lock().unwrap_or_else(|e| e.into_inner());
                std::panic::panic_any(QueuePoisonSentinel);
            });
        if let Ok(handle) = t {
            // The join error *is* the expected panic.
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::QueryKind;
    use kpm_core::kernels::Kernel;

    fn pending(id: u64, matrix: u64, cols: usize) -> Pending {
        let (tx, _rx) = mpsc::channel();
        // Leak the receiver: these tests never reply.
        std::mem::forget(_rx);
        Pending {
            id,
            req: Request {
                matrix,
                kind: QueryKind::Dos {
                    seed: id,
                    num_random: cols,
                },
                num_moments: 8,
                kernel: Kernel::Jackson,
                points: 8,
                deadline: None,
            },
            trace: 0,
            admitted_us: 0.0,
            enqueued_at: Instant::now(),
            deadline_at: Instant::now() + Duration::from_secs(1),
            reply: Arc::new(Mutex::new(Some(tx))),
        }
    }

    #[test]
    fn push_respects_capacity_and_returns_the_request() {
        let q = AdmissionQueue::new(2);
        assert!(matches!(
            q.push(pending(1, 0, 1)),
            PushOutcome::Queued { depth: 1 }
        ));
        assert!(matches!(
            q.push(pending(2, 0, 1)),
            PushOutcome::Queued { depth: 2 }
        ));
        match q.push(pending(3, 0, 1)) {
            PushOutcome::Full(p) => assert_eq!(p.id, 3),
            other => panic!("expected Full, got {other:?}"),
        }
    }

    #[test]
    fn drain_matching_respects_budget_and_route() {
        let q = AdmissionQueue::new(8);
        q.push(pending(1, 10, 2));
        q.push(pending(2, 20, 1));
        q.push(pending(3, 10, 2));
        q.push(pending(4, 10, 4));
        let taken = q.drain_matching(10, 4);
        let ids: Vec<u64> = taken.iter().map(|p| p.id).collect();
        // 1 and 3 fit (4 columns); 4 exceeds the remaining budget and
        // stops the scan; 2 is another route and stays.
        assert_eq!(ids, vec![1, 3]);
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn close_wakes_and_reports_closed_when_empty() {
        let q = AdmissionQueue::new(2);
        q.close();
        assert!(matches!(
            q.pop_wait(Duration::from_millis(5)),
            PopOutcome::Closed
        ));
        match q.push(pending(9, 0, 1)) {
            PushOutcome::Closed(p) => assert_eq!(p.id, 9),
            other => panic!("expected Closed, got {other:?}"),
        }
    }

    #[test]
    fn queue_survives_a_poisoned_lock() {
        crate::chaos::install_quiet_poison_hook();
        let q = Arc::new(AdmissionQueue::new(4));
        q.push(pending(1, 0, 1));
        q.poison_lock();
        // The mutex is now poisoned; every operation must still work.
        assert_eq!(q.len(), 1);
        assert!(matches!(
            q.push(pending(2, 0, 1)),
            PushOutcome::Queued { depth: 2 }
        ));
        assert!(matches!(
            q.pop_wait(Duration::from_millis(5)),
            PopOutcome::Popped(_)
        ));
    }
}
