//! Seeded chaos injection for the service runtime.
//!
//! Extends the deterministic fault-plan idiom of `kpm-hetsim` (seeded
//! splitmix draws, builder configuration, atomic stats) from the
//! message-passing layer into the request runtime. A [`ChaosPlan`]
//! decides, purely from `(seed, batch id, attempt)`, whether a worker
//! "crashes" mid-batch (surfacing as a transient failure the retry
//! logic must absorb) or solves slowly (exercising deadlines and
//! hedging); it can also poison the admission-queue lock after a fixed
//! number of admissions, proving the queue survives a worker panicking
//! while holding it. Same seed → same chaos, so every failing schedule
//! replays exactly.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use crate::request::splitmix;

/// What the plan decided for one batch attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchFate {
    /// The worker crashes mid-batch: the attempt produces no result and
    /// must be retried (or fail typed after the retry budget).
    pub crash: bool,
    /// Injected solver slowdown, applied before the solve.
    pub slow: Option<Duration>,
}

/// Counters of injected faults (monotonic; read with
/// [`ChaosPlan::stats`]).
#[derive(Debug, Default)]
struct ChaosCounters {
    crashes: AtomicU64,
    slowdowns: AtomicU64,
    poisonings: AtomicU64,
}

/// A snapshot of the injected-fault counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ChaosStats {
    /// Worker crashes injected.
    pub crashes: u64,
    /// Slow solves injected.
    pub slowdowns: u64,
    /// Queue-lock poisonings injected.
    pub poisonings: u64,
}

/// A deterministic, seeded chaos plan for the service runtime.
#[derive(Debug)]
pub struct ChaosPlan {
    seed: u64,
    crash_prob: f64,
    slow_prob: f64,
    slow_for: Duration,
    poison_queue_after: Option<u64>,
    counters: ChaosCounters,
}

impl ChaosPlan {
    /// A plan that injects nothing (until configured otherwise).
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            crash_prob: 0.0,
            slow_prob: 0.0,
            slow_for: Duration::ZERO,
            poison_queue_after: None,
            counters: ChaosCounters::default(),
        }
    }

    /// Crash the worker mid-batch with probability `p` per attempt.
    pub fn with_worker_crashes(mut self, p: f64) -> Self {
        self.crash_prob = p.clamp(0.0, 1.0);
        self
    }

    /// Slow the solve down by `delay` with probability `p` per attempt.
    pub fn with_slow_solver(mut self, p: f64, delay: Duration) -> Self {
        self.slow_prob = p.clamp(0.0, 1.0);
        self.slow_for = delay;
        self
    }

    /// After the `n`-th admission, a sacrificial thread grabs the
    /// admission-queue lock and panics while holding it.
    pub fn with_queue_poisoning(mut self, after_admissions: u64) -> Self {
        self.poison_queue_after = Some(after_admissions);
        self
    }

    /// The fate of batch `batch_id`, attempt `attempt` — a pure
    /// function of the seed and those two coordinates.
    pub fn batch_fate(&self, batch_id: u64, attempt: u32) -> BatchFate {
        let mut state = splitmix(
            self.seed
                ^ batch_id.wrapping_mul(0x9e37_79b9_7f4a_7c15)
                ^ (attempt as u64).wrapping_mul(0xc2b2_ae3d_27d4_eb4f),
        );
        let crash = self.crash_prob > 0.0 && draw(&mut state) < self.crash_prob;
        if crash {
            self.counters.crashes.fetch_add(1, Ordering::Relaxed);
            // A crashed attempt never reaches the solver; no slow draw.
            return BatchFate { crash, slow: None };
        }
        let slow = if self.slow_prob > 0.0 && draw(&mut state) < self.slow_prob {
            self.counters.slowdowns.fetch_add(1, Ordering::Relaxed);
            Some(self.slow_for)
        } else {
            None
        };
        BatchFate { crash, slow }
    }

    /// True exactly when admission number `count` should trigger the
    /// queue-lock poisoning (one-shot by construction: counts are
    /// monotonic).
    pub(crate) fn should_poison_queue(&self, count: u64) -> bool {
        if self.poison_queue_after == Some(count) {
            self.counters.poisonings.fetch_add(1, Ordering::Relaxed);
            true
        } else {
            false
        }
    }

    /// Snapshot of what has been injected so far.
    pub fn stats(&self) -> ChaosStats {
        ChaosStats {
            crashes: self.counters.crashes.load(Ordering::Relaxed),
            slowdowns: self.counters.slowdowns.load(Ordering::Relaxed),
            poisonings: self.counters.poisonings.load(Ordering::Relaxed),
        }
    }
}

/// Next uniform draw in `[0, 1)` from the mixer state.
fn draw(state: &mut u64) -> f64 {
    *state = splitmix(*state);
    (*state >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// The panic payload of the sacrificial queue-poisoning thread; the
/// quiet hook installed by [`install_quiet_poison_hook`] recognizes it
/// and suppresses the default panic report (the panic is deliberate).
pub struct QueuePoisonSentinel;

/// Wraps the current panic hook so deliberate queue-poison panics stay
/// silent while every other panic still reports normally. Idempotent.
pub fn install_quiet_poison_hook() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info
                .payload()
                .downcast_ref::<QueuePoisonSentinel>()
                .is_none()
            {
                prev(info);
            }
        }));
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fate_is_deterministic_in_seed_batch_and_attempt() {
        let a = ChaosPlan::new(7)
            .with_worker_crashes(0.5)
            .with_slow_solver(0.5, Duration::from_millis(1));
        let b = ChaosPlan::new(7)
            .with_worker_crashes(0.5)
            .with_slow_solver(0.5, Duration::from_millis(1));
        for batch in 0..64u64 {
            for attempt in 0..4u32 {
                assert_eq!(a.batch_fate(batch, attempt), b.batch_fate(batch, attempt));
            }
        }
    }

    #[test]
    fn crash_rate_tracks_probability() {
        let plan = ChaosPlan::new(42).with_worker_crashes(0.3);
        let crashes = (0..2000u64)
            .filter(|&b| plan.batch_fate(b, 0).crash)
            .count();
        let rate = crashes as f64 / 2000.0;
        assert!((rate - 0.3).abs() < 0.05, "crash rate {rate} far from 0.3");
        assert_eq!(plan.stats().crashes, crashes as u64);
    }

    #[test]
    fn different_attempts_roll_independently() {
        // A crashed first attempt must not doom every retry: some batch
        // that crashes at attempt 0 must pass at a later attempt.
        let plan = ChaosPlan::new(3).with_worker_crashes(0.5);
        let recovered =
            (0..200u64).any(|b| plan.batch_fate(b, 0).crash && !plan.batch_fate(b, 1).crash);
        assert!(recovered);
    }

    #[test]
    fn poisoning_is_one_shot_at_the_configured_admission() {
        let plan = ChaosPlan::new(0).with_queue_poisoning(3);
        assert!(!plan.should_poison_queue(2));
        assert!(plan.should_poison_queue(3));
        assert!(!plan.should_poison_queue(4));
        assert_eq!(plan.stats().poisonings, 1);
    }
}
