//! The moment cache behind graceful degradation.
//!
//! Keyed by `(matrix fingerprint, kernel, starting-vector spec)`; each
//! entry stores the *longest* moment set ever computed for that key.
//! Because moment `μ_k` never depends on sweeps past `k/2`, the prefix
//! of a cached set is bitwise the answer a shorter run would have
//! produced (`MomentSet::truncated`), so one entry serves every `M` up
//! to its length: repeat queries answer instantly at full quality, and
//! under overload or an open breaker a shorter prefix still yields a
//! valid curve with a quantified broadening penalty.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use kpm_core::moments::MomentSet;

/// `(fingerprint, kernel key, start-spec hash)`.
pub(crate) type CacheKey = (u64, u64, u64);

/// Bounded map from cache key to the best (longest) known moment set.
#[derive(Debug)]
pub(crate) struct MomentCache {
    map: Mutex<HashMap<CacheKey, Arc<MomentSet>>>,
    capacity: usize,
}

impl MomentCache {
    pub(crate) fn new(capacity: usize) -> Self {
        Self {
            map: Mutex::new(HashMap::new()),
            capacity: capacity.max(1),
        }
    }

    /// The cached set for `key` if it covers at least `min_moments`.
    pub(crate) fn lookup(&self, key: CacheKey, min_moments: usize) -> Option<Arc<MomentSet>> {
        let map = self.map.lock().unwrap_or_else(|e| e.into_inner());
        map.get(&key)
            .filter(|set| set.len() >= min_moments)
            .cloned()
    }

    /// Inserts `set` unless an at-least-as-long entry already exists.
    /// At capacity, an arbitrary other entry is evicted (the cache is a
    /// best-effort accelerator, not a store of record).
    pub(crate) fn insert_if_better(&self, key: CacheKey, set: Arc<MomentSet>) {
        let mut map = self.map.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(existing) = map.get(&key) {
            if existing.len() >= set.len() {
                return;
            }
        } else if map.len() >= self.capacity {
            if let Some(&evict) = map.keys().next() {
                map.remove(&evict);
            }
        }
        map.insert(key, set);
    }

    /// Number of cached entries.
    #[cfg(test)]
    pub(crate) fn len(&self) -> usize {
        self.map.lock().unwrap_or_else(|e| e.into_inner()).len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set_of_len(m: usize) -> Arc<MomentSet> {
        Arc::new(MomentSet::zeros(m))
    }

    #[test]
    fn longer_sets_replace_shorter_never_the_reverse() {
        let c = MomentCache::new(8);
        let key = (1, 1, 1);
        c.insert_if_better(key, set_of_len(16));
        c.insert_if_better(key, set_of_len(8));
        assert_eq!(c.lookup(key, 2).expect("cached").len(), 16);
        c.insert_if_better(key, set_of_len(32));
        assert_eq!(c.lookup(key, 2).expect("cached").len(), 32);
    }

    #[test]
    fn lookup_enforces_the_minimum_length() {
        let c = MomentCache::new(8);
        let key = (1, 2, 3);
        c.insert_if_better(key, set_of_len(16));
        assert!(c.lookup(key, 16).is_some());
        assert!(c.lookup(key, 17).is_none());
        assert!(c.lookup((9, 9, 9), 1).is_none());
    }

    #[test]
    fn capacity_is_bounded() {
        let c = MomentCache::new(4);
        for k in 0..32u64 {
            c.insert_if_better((k, 0, 0), set_of_len(4));
        }
        assert!(c.len() <= 4);
    }
}
