//! The moment cache behind graceful degradation.
//!
//! Keyed by `(matrix fingerprint, kernel, starting-vector spec)`; each
//! entry stores the *longest* moment set ever computed for that key.
//! Because moment `μ_k` never depends on sweeps past `k/2`, the prefix
//! of a cached set is bitwise the answer a shorter run would have
//! produced (`MomentSet::truncated`), so one entry serves every `M` up
//! to its length: repeat queries answer instantly at full quality, and
//! under overload or an open breaker a shorter prefix still yields a
//! valid curve with a quantified broadening penalty.
//!
//! Eviction is true LRU: every hit (lookup) and refresh (insert)
//! stamps the entry with a monotonic tick, and at capacity the entry
//! with the oldest tick goes. Keys a route keeps re-querying therefore
//! survive a burst of one-off requests, which matters because a cached
//! prefix is what keeps degraded answers bitwise-reproducible.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use kpm_core::moments::MomentSet;

/// `(fingerprint, kernel key, start-spec hash)`.
pub(crate) type CacheKey = (u64, u64, u64);

/// One cached moment set plus its last-touched tick.
#[derive(Debug)]
struct Entry {
    set: Arc<MomentSet>,
    last_used: u64,
}

#[derive(Debug, Default)]
struct Inner {
    map: HashMap<CacheKey, Entry>,
    /// Monotonic touch counter; incremented under the lock, so ties
    /// are impossible and eviction order is deterministic.
    tick: u64,
}

impl Inner {
    fn touch(&mut self) -> u64 {
        self.tick += 1;
        self.tick
    }
}

/// Bounded LRU map from cache key to the best (longest) known moment
/// set.
#[derive(Debug)]
pub(crate) struct MomentCache {
    inner: Mutex<Inner>,
    capacity: usize,
}

impl MomentCache {
    pub(crate) fn new(capacity: usize) -> Self {
        Self {
            inner: Mutex::new(Inner::default()),
            capacity: capacity.max(1),
        }
    }

    /// The cached set for `key` if it covers at least `min_moments`.
    /// A hit refreshes the entry's recency; a too-short entry does not
    /// count as a use (the caller goes on to compute a longer set,
    /// whose insert restamps it anyway).
    pub(crate) fn lookup(&self, key: CacheKey, min_moments: usize) -> Option<Arc<MomentSet>> {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        let tick = inner.touch();
        let entry = inner.map.get_mut(&key)?;
        if entry.set.len() < min_moments {
            return None;
        }
        entry.last_used = tick;
        Some(Arc::clone(&entry.set))
    }

    /// Inserts `set` unless an at-least-as-long entry already exists;
    /// either way the key becomes the most recently used. At capacity
    /// the least-recently-used other entry is evicted.
    pub(crate) fn insert_if_better(&self, key: CacheKey, set: Arc<MomentSet>) {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        let tick = inner.touch();
        if let Some(existing) = inner.map.get_mut(&key) {
            existing.last_used = tick;
            if existing.set.len() < set.len() {
                existing.set = set;
            }
            return;
        }
        if inner.map.len() >= self.capacity {
            if let Some(&evict) = inner
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k)
            {
                inner.map.remove(&evict);
            }
        }
        inner.map.insert(
            key,
            Entry {
                set,
                last_used: tick,
            },
        );
    }

    /// Number of cached entries.
    #[cfg(test)]
    pub(crate) fn len(&self) -> usize {
        self.inner
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .map
            .len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set_of_len(m: usize) -> Arc<MomentSet> {
        Arc::new(MomentSet::zeros(m))
    }

    #[test]
    fn longer_sets_replace_shorter_never_the_reverse() {
        let c = MomentCache::new(8);
        let key = (1, 1, 1);
        c.insert_if_better(key, set_of_len(16));
        c.insert_if_better(key, set_of_len(8));
        assert_eq!(c.lookup(key, 2).expect("cached").len(), 16);
        c.insert_if_better(key, set_of_len(32));
        assert_eq!(c.lookup(key, 2).expect("cached").len(), 32);
    }

    #[test]
    fn lookup_enforces_the_minimum_length() {
        let c = MomentCache::new(8);
        let key = (1, 2, 3);
        c.insert_if_better(key, set_of_len(16));
        assert!(c.lookup(key, 16).is_some());
        assert!(c.lookup(key, 17).is_none());
        assert!(c.lookup((9, 9, 9), 1).is_none());
    }

    #[test]
    fn capacity_is_bounded() {
        let c = MomentCache::new(4);
        for k in 0..32u64 {
            c.insert_if_better((k, 0, 0), set_of_len(4));
        }
        assert!(c.len() <= 4);
    }

    #[test]
    fn eviction_is_least_recently_used() {
        let c = MomentCache::new(3);
        c.insert_if_better((1, 0, 0), set_of_len(4));
        c.insert_if_better((2, 0, 0), set_of_len(4));
        c.insert_if_better((3, 0, 0), set_of_len(4));
        // Touch 1 and 2; 3 is now the LRU entry.
        assert!(c.lookup((1, 0, 0), 1).is_some());
        assert!(c.lookup((2, 0, 0), 1).is_some());
        c.insert_if_better((4, 0, 0), set_of_len(4));
        assert!(c.lookup((3, 0, 0), 1).is_none(), "LRU entry evicted");
        assert!(c.lookup((1, 0, 0), 1).is_some());
        assert!(c.lookup((2, 0, 0), 1).is_some());
        assert!(c.lookup((4, 0, 0), 1).is_some());

        // A refreshing insert (same key, shorter set) also counts as a
        // use and keeps the longer cached set: after touching 4 and 1,
        // key 2 is the LRU entry and goes next.
        c.insert_if_better((4, 0, 0), set_of_len(2));
        c.insert_if_better((1, 0, 0), set_of_len(2));
        c.insert_if_better((5, 0, 0), set_of_len(4));
        assert!(c.lookup((2, 0, 0), 1).is_none(), "new LRU entry evicted");
        assert_eq!(c.lookup((1, 0, 0), 1).expect("cached").len(), 4);
        assert!(c.lookup((4, 0, 0), 1).is_some());
        assert!(c.lookup((5, 0, 0), 1).is_some());
    }

    #[test]
    fn too_short_hits_do_not_refresh_recency() {
        let c = MomentCache::new(2);
        c.insert_if_better((1, 0, 0), set_of_len(4));
        c.insert_if_better((2, 0, 0), set_of_len(4));
        // A miss on length must not promote key 1 over key 2.
        assert!(c.lookup((1, 0, 0), 99).is_none());
        c.insert_if_better((3, 0, 0), set_of_len(4));
        assert!(c.lookup((1, 0, 0), 1).is_none(), "stale entry evicted");
        assert!(c.lookup((2, 0, 0), 1).is_some());
    }
}
