//! Per-route circuit breaker.
//!
//! A route is a `(matrix fingerprint, kernel)` pair. Consecutive
//! non-retryable failures on a route trip its breaker open for a
//! cooldown; while open, requests on that route answer from the moment
//! cache (degraded) or fail fast with `CircuitOpen` instead of burning
//! solver time on a route that keeps diverging (e.g. scale factors
//! that do not cover the spectrum). After the cooldown one trial
//! request is let through (half-open): success closes the breaker,
//! failure re-opens it immediately.

use std::collections::HashMap;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// The `(fingerprint, kernel key)` route identifier.
pub(crate) type RouteKey = (u64, u64);

#[derive(Debug, Default)]
struct RouteState {
    consecutive_failures: u32,
    open_until: Option<Instant>,
}

/// Breaker state over all routes the service has seen.
#[derive(Debug)]
pub(crate) struct CircuitBreaker {
    routes: Mutex<HashMap<RouteKey, RouteState>>,
    threshold: u32,
    cooldown: Duration,
}

impl CircuitBreaker {
    pub(crate) fn new(threshold: u32, cooldown: Duration) -> Self {
        Self {
            routes: Mutex::new(HashMap::new()),
            threshold: threshold.max(1),
            cooldown,
        }
    }

    /// If the route's breaker is open, the remaining cooldown.
    /// A breaker whose cooldown has elapsed flips to half-open: this
    /// probe returns `None` (admit one trial) but leaves the failure
    /// count primed so another failure re-opens it at once.
    pub(crate) fn check(&self, route: RouteKey) -> Option<Duration> {
        let mut routes = self.routes.lock().unwrap_or_else(|e| e.into_inner());
        let state = routes.entry(route).or_default();
        match state.open_until {
            Some(until) => {
                let now = Instant::now();
                if now < until {
                    Some(until - now)
                } else {
                    // Half-open: admit a trial, stay primed.
                    state.open_until = None;
                    state.consecutive_failures = self.threshold.saturating_sub(1);
                    None
                }
            }
            None => None,
        }
    }

    /// Records a successful solve on the route, closing the breaker.
    pub(crate) fn record_success(&self, route: RouteKey) {
        let mut routes = self.routes.lock().unwrap_or_else(|e| e.into_inner());
        let state = routes.entry(route).or_default();
        state.consecutive_failures = 0;
        state.open_until = None;
    }

    /// Records a non-retryable failure; returns true if this trip
    /// opened the breaker.
    pub(crate) fn record_failure(&self, route: RouteKey) -> bool {
        let mut routes = self.routes.lock().unwrap_or_else(|e| e.into_inner());
        let state = routes.entry(route).or_default();
        state.consecutive_failures = state.consecutive_failures.saturating_add(1);
        if state.consecutive_failures >= self.threshold && state.open_until.is_none() {
            state.open_until = Some(Instant::now() + self.cooldown);
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn opens_after_threshold_and_recovers_half_open() {
        let b = CircuitBreaker::new(2, Duration::from_millis(20));
        let route = (1, 1);
        assert!(b.check(route).is_none());
        assert!(!b.record_failure(route));
        assert!(b.record_failure(route), "second failure should open");
        assert!(b.check(route).is_some(), "breaker must be open");
        std::thread::sleep(Duration::from_millis(25));
        // Half-open: one trial admitted, one more failure re-opens.
        assert!(b.check(route).is_none());
        assert!(b.record_failure(route), "failure in half-open re-opens");
        assert!(b.check(route).is_some());
    }

    #[test]
    fn success_closes_and_resets_the_count() {
        let b = CircuitBreaker::new(2, Duration::from_secs(10));
        let route = (9, 2);
        b.record_failure(route);
        b.record_success(route);
        assert!(!b.record_failure(route), "count must restart after success");
    }

    #[test]
    fn routes_are_independent() {
        let b = CircuitBreaker::new(1, Duration::from_secs(10));
        b.record_failure((1, 1));
        assert!(b.check((1, 1)).is_some());
        assert!(b.check((1, 2)).is_none(), "other kernel route unaffected");
        assert!(b.check((2, 1)).is_none(), "other matrix route unaffected");
    }
}
