//! Request/reply types of the service front-end.
//!
//! A [`Request`] names a registered Hamiltonian by its content
//! fingerprint and asks for one of the three spectral quantities the
//! solver produces (DOS, LDOS, Green function). Submission yields an
//! [`Admission`]: either a [`Ticket`] whose channel will receive
//! *exactly one* terminal [`Response`] — success, degraded, or typed
//! error — or an explicit backpressure rejection carrying a
//! `retry_after` hint. No admitted request is ever silently dropped;
//! the [`crate::Ledger`] pins that invariant down.

use std::sync::mpsc;
use std::time::Duration;

use kpm_core::dos::DosCurve;
use kpm_core::green::GreenCurve;
use kpm_core::kernels::Kernel;
use kpm_core::moments::MomentSet;
use kpm_num::KpmError;

/// Which spectral quantity a request asks for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryKind {
    /// Density of states: stochastic trace over `num_random` seeded
    /// random vectors.
    Dos {
        /// Seed of the random starting vectors.
        seed: u64,
        /// Number of random vectors `R` contributed to the trace.
        num_random: usize,
    },
    /// Local density of states of one lattice site (all four orbitals).
    Ldos {
        /// Site index (row block `4*site .. 4*site+4`).
        site: usize,
    },
    /// Retarded Green function `G(E + i0)` — same moments as
    /// [`QueryKind::Dos`], different reconstruction.
    Green {
        /// Seed of the random starting vectors.
        seed: u64,
        /// Number of random vectors `R` contributed to the trace.
        num_random: usize,
    },
}

impl QueryKind {
    /// The SLO/metrics route name of the query kind.
    pub fn route(&self) -> &'static str {
        match self {
            QueryKind::Dos { .. } => "dos",
            QueryKind::Ldos { .. } => "ldos",
            QueryKind::Green { .. } => "green",
        }
    }

    /// How many block-vector columns this query contributes to a batch.
    pub fn columns(&self) -> usize {
        match *self {
            QueryKind::Dos { num_random, .. } | QueryKind::Green { num_random, .. } => num_random,
            QueryKind::Ldos { .. } => crate::service::LDOS_ORBITALS,
        }
    }

    /// Hash of the starting-vector specification: queries with equal
    /// spec (and matrix) run the identical Chebyshev recurrence, so
    /// their moments are interchangeable. DOS and Green share specs on
    /// purpose — they differ only in reconstruction.
    pub(crate) fn start_spec(&self) -> u64 {
        match *self {
            QueryKind::Dos { seed, num_random } | QueryKind::Green { seed, num_random } => {
                splitmix(0x7ace ^ seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ num_random as u64)
            }
            QueryKind::Ldos { site } => {
                splitmix(0x51fe ^ (site as u64).wrapping_mul(0xbf58_476d_1ce4_e5b9))
            }
        }
    }
}

/// One round of the splitmix64 mixer (shared idiom with the seeded
/// fault plans).
pub(crate) fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A stable route key for the damping kernel (the `Kernel` enum is not
/// `Eq`/`Hash` because of the Lorentz parameter).
pub(crate) fn kernel_key(k: Kernel) -> u64 {
    match k {
        Kernel::Jackson => 1,
        Kernel::Dirichlet => 2,
        Kernel::Lorentz(lambda) => 3 ^ lambda.to_bits().rotate_left(8),
    }
}

/// One spectral query against a registered Hamiltonian.
#[derive(Debug, Clone, Copy)]
pub struct Request {
    /// Content fingerprint of the registered matrix
    /// (`KpmMatrix::content_fingerprint`, returned by
    /// `Service::register_matrix`).
    pub matrix: u64,
    /// The spectral quantity to compute.
    pub kind: QueryKind,
    /// Requested Chebyshev moment count `M` (even, ≥ 2).
    pub num_moments: usize,
    /// Damping kernel applied at reconstruction.
    pub kernel: Kernel,
    /// Energy sample points of the reconstructed curve (≥ 2).
    pub points: usize,
    /// Wall-clock budget from admission to reply; `None` uses the
    /// service default.
    pub deadline: Option<Duration>,
}

/// The outcome of [`crate::Service::submit`].
#[derive(Debug)]
pub enum Admission {
    /// The request is in the queue; the ticket's channel will receive
    /// exactly one terminal [`Response`].
    Admitted(Ticket),
    /// Explicit backpressure — the request was *not* accepted and no
    /// reply will ever arrive. Resubmit no sooner than `retry_after`.
    Rejected {
        /// Client-side backoff hint derived from queue depth and the
        /// observed solve rate.
        retry_after: Duration,
        /// Why admission was refused.
        reason: RejectReason,
    },
}

/// Why a request was refused at admission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectReason {
    /// The bounded admission queue is at capacity.
    QueueFull,
    /// The request's deadline is already unmeetable at admission time.
    PastDeadline,
    /// The service is shutting down and no longer accepts work.
    ShuttingDown,
}

/// Handle to an admitted request.
#[derive(Debug)]
pub struct Ticket {
    /// Service-assigned request id (monotonic per service).
    pub id: u64,
    /// Receives the single terminal [`Response`].
    pub rx: mpsc::Receiver<Response>,
}

impl Ticket {
    /// Blocks until the terminal response arrives. Returns `None` only
    /// if the service was torn down without replying — which the chaos
    /// suite proves never happens for admitted requests.
    pub fn wait(&self) -> Option<Response> {
        self.rx.recv().ok()
    }

    /// Bounded wait; `None` on timeout or disconnect.
    pub fn wait_timeout(&self, d: Duration) -> Option<Response> {
        self.rx.recv_timeout(d).ok()
    }
}

/// The single terminal reply of an admitted request.
#[derive(Debug)]
pub struct Response {
    /// The request id from the [`Ticket`].
    pub id: u64,
    /// Success, degraded success, or typed failure.
    pub outcome: Outcome,
    /// Per-request lifecycle accounting.
    pub stats: ReplyStats,
}

impl Response {
    /// True if the outcome carries an answer (possibly degraded).
    pub fn is_answered(&self) -> bool {
        !matches!(self.outcome, Outcome::Failed(_))
    }

    /// True if the outcome is explicitly degraded.
    pub fn is_degraded(&self) -> bool {
        matches!(self.outcome, Outcome::Degraded { .. })
    }
}

/// Terminal outcome kinds — exactly one of these per admitted request.
#[derive(Debug)]
pub enum Outcome {
    /// Full-quality answer at the requested `M`.
    Success(Answer),
    /// A valid but reduced-accuracy answer (truncated `M` and/or served
    /// from the moment cache), with the accuracy loss quantified.
    Degraded {
        /// The reduced-accuracy answer.
        answer: Answer,
        /// What was degraded and by how much.
        info: DegradeInfo,
    },
    /// Typed failure; no answer.
    Failed(ServiceError),
}

/// A computed answer: the reconstructed curve plus the moments behind
/// it (the moments are what the bitwise-determinism contract is stated
/// over).
#[derive(Debug, Clone)]
pub struct Answer {
    /// The reconstructed spectral curve.
    pub curve: Curve,
    /// The Chebyshev moments the curve was reconstructed from.
    pub moments: MomentSet,
}

/// The reconstructed curve, by query kind.
#[derive(Debug, Clone)]
pub enum Curve {
    /// Density of states.
    Dos(DosCurve),
    /// Local density of states of the requested site.
    Ldos(DosCurve),
    /// Retarded Green function.
    Green(GreenCurve),
}

/// Quantifies a degraded answer: the broadening penalty of answering
/// with fewer moments (Jackson main-lobe width `≈ π/M`; Lin, Saad &
/// Yang, arXiv:1308.5467).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DegradeInfo {
    /// The `M` the client asked for.
    pub requested_moments: usize,
    /// The `M` actually served.
    pub served_moments: usize,
    /// Additional energy broadening (in Chebyshev units):
    /// `π/served − π/requested`.
    pub extra_broadening: f64,
    /// True when the answer came from the moment cache instead of a
    /// fresh solve.
    pub from_cache: bool,
}

impl DegradeInfo {
    /// Builds the annotation for serving `served` of `requested`
    /// moments.
    pub(crate) fn new(requested: usize, served: usize, from_cache: bool) -> Self {
        let pi = std::f64::consts::PI;
        Self {
            requested_moments: requested,
            served_moments: served,
            extra_broadening: (pi / served as f64 - pi / requested as f64).max(0.0),
            from_cache,
        }
    }
}

/// Typed terminal failures of the service runtime.
#[derive(Debug, Clone, PartialEq)]
pub enum ServiceError {
    /// The solver failed with a non-retryable error.
    Solver(KpmError),
    /// The deadline budget expired before an answer could be produced.
    DeadlineExceeded {
        /// Where the budget ran out: `"queued"` or `"solve"`.
        stage: &'static str,
    },
    /// The circuit breaker for this (matrix, kernel) route is open.
    CircuitOpen {
        /// How long until the breaker admits a trial request again.
        cooldown: Duration,
    },
    /// All retry attempts were consumed by transient failures.
    RetriesExhausted {
        /// Total attempts made (including the first).
        attempts: u32,
        /// The final transient error, rendered to text.
        last_error: String,
    },
    /// The service shut down before the request could be served.
    Shutdown,
    /// The request named a fingerprint no registered matrix carries.
    UnknownMatrix {
        /// The unknown fingerprint.
        fingerprint: u64,
    },
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::Solver(e) => write!(f, "solver error: {e}"),
            ServiceError::DeadlineExceeded { stage } => {
                write!(f, "deadline exceeded while {stage}")
            }
            ServiceError::CircuitOpen { cooldown } => {
                write!(f, "circuit open; retry in {} ms", cooldown.as_millis())
            }
            ServiceError::RetriesExhausted {
                attempts,
                last_error,
            } => write!(f, "gave up after {attempts} attempt(s): {last_error}"),
            ServiceError::Shutdown => write!(f, "service is shutting down"),
            ServiceError::UnknownMatrix { fingerprint } => {
                write!(
                    f,
                    "no registered matrix with fingerprint {fingerprint:#018x}"
                )
            }
        }
    }
}

impl std::error::Error for ServiceError {}

impl From<KpmError> for ServiceError {
    fn from(e: KpmError) -> Self {
        match e {
            KpmError::DeadlineExceeded { .. } => ServiceError::DeadlineExceeded { stage: "solve" },
            other => ServiceError::Solver(other),
        }
    }
}

/// Per-request lifecycle accounting carried on every reply.
#[derive(Debug, Clone, Copy, Default)]
pub struct ReplyStats {
    /// Trace id minted at admission (0 when tracing is disabled). The
    /// same id tags every span of this request in the observability
    /// registry, so a slow reply can be looked up in the trace export
    /// or flight-recorder dump.
    pub trace: u64,
    /// Exact per-stage latency breakdown; the stages tile the
    /// admission-to-reply interval, so `stages.total_us()` equals the
    /// end-to-end latency.
    pub stages: StageBreakdown,
    /// Time from admission to batch formation.
    pub queue_wait: Duration,
    /// Time spent in the (final) solve attempt; zero for cache hits.
    pub solve: Duration,
    /// Transient-failure retries consumed by the carrying batch.
    pub retries: u32,
    /// True if the carrying batch was hedged (re-dispatched while a
    /// straggling attempt was still running).
    pub hedged: bool,
    /// True if the answer came from the moment cache.
    pub cache_hit: bool,
    /// Column width of the carrying batch (1 for cache/immediate
    /// replies).
    pub batch_width: usize,
}

/// Exact per-stage latency breakdown of one request, in microseconds.
///
/// The four stages partition the admission-to-reply interval with no
/// gaps or overlap: *queue* (admission until the batcher seals the
/// request into a batch or answers it inline), *batch* (sealed batch
/// waiting for a worker, including retry backoffs), *solve* (the final
/// solve attempt), *reply* (reconstruction and delivery). Stages a
/// request never reached are zero.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct StageBreakdown {
    /// Admission → batch formation (or inline answer).
    pub queue_us: f64,
    /// Batch formation → solve start (worker wait, backoff, chaos
    /// delays).
    pub batch_us: f64,
    /// The final solve attempt.
    pub solve_us: f64,
    /// Solve end (or last reached stage) → terminal reply delivered.
    pub reply_us: f64,
}

impl StageBreakdown {
    /// Sum of all stages — equals the end-to-end latency by
    /// construction.
    pub fn total_us(&self) -> f64 {
        self.queue_us + self.batch_us + self.solve_us + self.reply_us
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dos_and_green_share_start_specs() {
        let d = QueryKind::Dos {
            seed: 9,
            num_random: 3,
        };
        let g = QueryKind::Green {
            seed: 9,
            num_random: 3,
        };
        assert_eq!(d.start_spec(), g.start_spec());
        let other = QueryKind::Dos {
            seed: 10,
            num_random: 3,
        };
        assert_ne!(d.start_spec(), other.start_spec());
    }

    #[test]
    fn degrade_info_quantifies_broadening() {
        let info = DegradeInfo::new(128, 32, false);
        assert!(info.extra_broadening > 0.0);
        let exact = std::f64::consts::PI / 32.0 - std::f64::consts::PI / 128.0;
        assert!((info.extra_broadening - exact).abs() < 1e-15);
        assert!(!info.from_cache);
    }

    #[test]
    fn deadline_solver_errors_map_to_service_deadline() {
        let e: ServiceError = KpmError::DeadlineExceeded { iteration: 3 }.into();
        assert_eq!(e, ServiceError::DeadlineExceeded { stage: "solve" });
    }
}
