//! Resilient KPM-as-a-service: a batching request runtime in front of
//! the format-pluggable solver.
//!
//! The paper's central performance lever — streaming the matrix once
//! over a *block* of vectors instead of once per vector — becomes, at
//! the service level, a batching opportunity: concurrent DOS/LDOS/Green
//! queries against the same Hamiltonian coalesce into one block solve
//! of autotuned width `R`. Around that hot path this crate layers the
//! robustness machinery a long-running service needs: a bounded
//! admission queue with explicit backpressure, per-request deadlines,
//! retry with jittered exponential backoff, a per-route circuit
//! breaker, hedged re-dispatch of stragglers, and graceful degradation
//! through a moment cache (truncated-`M` answers carry an explicit
//! `degraded` flag plus a quantified broadening penalty).
//!
//! Everything is `std`-only and deterministic where it matters: the
//! chaos layer ([`chaos::ChaosPlan`]) injects worker crashes, slow
//! solves and queue-lock poisoning from a seed, and the [`Ledger`]
//! proves the core invariant — every admitted request gets exactly one
//! terminal reply, on every schedule, on every shutdown path. Batched
//! answers are bitwise identical to serial solves for any batch
//! composition and thread count (see
//! [`kpm_core::solver::kpm_batch_moments`]).
//!
//! ```no_run
//! use kpm_service::{Service, ServiceConfig, Request, QueryKind, Admission, ShutdownMode};
//! use kpm_core::kernels::Kernel;
//!
//! # fn demo(matrix: kpm_sparse::KpmMatrix, sf: kpm_topo::ScaleFactors) {
//! let svc = Service::start(ServiceConfig::default());
//! let fp = svc.register_matrix(matrix, sf);
//! let admission = svc.submit(Request {
//!     matrix: fp,
//!     kind: QueryKind::Dos { seed: 1, num_random: 2 },
//!     num_moments: 64,
//!     kernel: Kernel::Jackson,
//!     points: 128,
//!     deadline: None,
//! });
//! if let Admission::Admitted(ticket) = admission {
//!     let response = ticket.wait().expect("service replies exactly once");
//!     assert!(response.is_answered() || !response.is_answered());
//! }
//! svc.shutdown(ShutdownMode::Drain);
//! # }
//! ```

pub mod chaos;
pub mod request;
pub mod service;

mod breaker;
mod cache;
mod queue;

pub use chaos::{BatchFate, ChaosPlan, ChaosStats};
pub use request::{
    Admission, Answer, Curve, DegradeInfo, Outcome, QueryKind, RejectReason, ReplyStats, Request,
    Response, ServiceError, StageBreakdown, Ticket,
};
pub use service::{LedgerSnapshot, Service, ServiceConfig, ShutdownMode};
