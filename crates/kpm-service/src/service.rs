//! The service runtime: admission → batch → solve → reply.
//!
//! One batcher thread pops admitted requests, coalesces same-matrix
//! queries into block-vector batches of autotuned width `R` (the
//! paper's stage-2 knob: one matrix stream amortized over many
//! columns), and dispatches them to a small worker pool. Workers solve
//! with [`kpm_core::solver::kpm_batch_moments`], whose per-column
//! arithmetic is bitwise that of the serial solver for *any* batch
//! composition and thread count — batching changes speed, never
//! results.
//!
//! Robustness machinery around that hot path: per-request deadlines
//! threaded into the solver, retry with exponential backoff + seeded
//! jitter on transient faults, a circuit breaker per (matrix, kernel)
//! route, hedged re-dispatch of straggling batches, and graceful
//! degradation through the moment cache (reduced-`M` answers carry an
//! explicit `degraded` annotation). The [`Ledger`] counts both sides
//! of the core invariant: every admitted request gets exactly one
//! terminal reply, under any chaos schedule, on any shutdown path.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicU8, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

use kpm_core::dos::reconstruct;
use kpm_core::green::reconstruct_green;
use kpm_core::moments::MomentSet;
use kpm_core::solver::{kpm_batch_moments_power, starting_vectors, KpmParams};
use kpm_num::{Complex64, KpmError, Vector};
use kpm_obs::span::{micros_since_epoch, mint_trace, record_manual, span};
use kpm_obs::{hist as obs_hist, metrics, recorder, slo};
use kpm_sparse::{KpmMatrix, SparseKernels};
use kpm_topo::ScaleFactors;

use crate::breaker::{CircuitBreaker, RouteKey};
use crate::cache::{CacheKey, MomentCache};
use crate::chaos::ChaosPlan;
use crate::queue::{AdmissionQueue, Pending, PopOutcome, PushOutcome};
use crate::request::{
    kernel_key, splitmix, Admission, Answer, Curve, DegradeInfo, Outcome, QueryKind, RejectReason,
    ReplyStats, Request, Response, ServiceError, StageBreakdown, Ticket,
};

/// Epoch-relative µs timestamp for stage accounting; 0 (the "no mark"
/// sentinel) when instrumentation is off, so the disabled path reads no
/// clock.
fn stage_now() -> f64 {
    if kpm_obs::enabled() {
        micros_since_epoch()
    } else {
        0.0
    }
}

/// Stage-boundary timestamps accumulated along a request's path and
/// resolved into a [`StageBreakdown`] at delivery. A zero field means
/// the request never reached that stage.
#[derive(Debug, Clone, Copy, Default)]
struct StageMarks {
    /// When the batcher sealed the request into a batch (or served an
    /// inline fast path).
    batched_us: f64,
    /// When the final solve attempt started.
    solve_start_us: f64,
    /// When the final solve attempt returned.
    solve_end_us: f64,
}

/// Orbitals per lattice site in the topological-insulator models — the
/// column count of one LDOS query (matches `kpm_core::ldos`).
pub(crate) const LDOS_ORBITALS: usize = 4;

/// Lifecycle states of the runtime.
const RUNNING: u8 = 0;
const DRAIN: u8 = 1;
const ABORT: u8 = 2;

/// How the service winds down.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShutdownMode {
    /// Stop admitting, then serve everything already admitted.
    Drain,
    /// Stop admitting and fail queued requests fast with a typed
    /// `Shutdown` error (in-flight batches still complete).
    Abort,
}

/// Tuning knobs of the service runtime. All fields have serviceable
/// defaults; construct with struct-update syntax from
/// `ServiceConfig::default()`.
#[derive(Debug)]
pub struct ServiceConfig {
    /// Worker threads solving batches.
    pub workers: usize,
    /// Admission-queue capacity (backpressure bound).
    pub queue_capacity: usize,
    /// Upper bound on batch column width `R`; snapped down to the
    /// largest width with a compiled kernel specialization.
    pub max_batch_width: usize,
    /// How long the batcher waits after the first request of a batch
    /// for coalescing mates to arrive.
    pub batch_window: Duration,
    /// Deadline applied when a request does not carry its own.
    pub default_deadline: Duration,
    /// Transient-failure retry budget per batch (first attempt not
    /// counted).
    pub max_retries: u32,
    /// First retry backoff; doubles per attempt.
    pub backoff_base: Duration,
    /// Backoff growth cap.
    pub backoff_max: Duration,
    /// Re-dispatch a batch still unanswered after this long (`None`
    /// disables hedging).
    pub hedge_after: Option<Duration>,
    /// Queue-depth fraction beyond which answers degrade (reduced `M`
    /// or cache) instead of queueing full-quality work.
    pub degrade_at_depth: f64,
    /// Floor for degraded moment counts.
    pub min_degraded_moments: usize,
    /// Consecutive route failures that open the circuit breaker.
    pub breaker_threshold: u32,
    /// How long an open breaker rejects before admitting a trial.
    pub breaker_cooldown: Duration,
    /// Moment-cache entry bound.
    pub cache_capacity: usize,
    /// Solve batches on the ambient thread pool (column-group
    /// parallelism; bitwise-invariant either way).
    pub parallel_solve: bool,
    /// Matrix-power depth per sweep (≥ 1): batches advance this many
    /// Chebyshev iterations per matrix pass through the level-blocked
    /// kernels. Bitwise-invariant; deadline checks coarsen to one per
    /// power chunk.
    pub power: usize,
    /// Seed of the retry-jitter RNG.
    pub seed: u64,
    /// Optional chaos injection (tests, soak runs).
    pub chaos: Option<ChaosPlan>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            workers: 2,
            queue_capacity: 64,
            max_batch_width: 8,
            batch_window: Duration::from_micros(500),
            default_deadline: Duration::from_secs(2),
            max_retries: 3,
            backoff_base: Duration::from_micros(500),
            backoff_max: Duration::from_millis(20),
            hedge_after: Some(Duration::from_millis(100)),
            degrade_at_depth: 0.75,
            min_degraded_moments: 16,
            breaker_threshold: 3,
            breaker_cooldown: Duration::from_millis(250),
            cache_capacity: 256,
            parallel_solve: true,
            power: 1,
            seed: 0,
            chaos: None,
        }
    }
}

/// Monotonic request-lifecycle counters; the chaos suite's invariant
/// is `admitted == replied` after shutdown.
#[derive(Debug, Default)]
pub struct Ledger {
    admitted: AtomicU64,
    replied: AtomicU64,
    rejected: AtomicU64,
    degraded: AtomicU64,
    retried: AtomicU64,
    hedged: AtomicU64,
    cache_hits: AtomicU64,
}

/// A point-in-time copy of the [`Ledger`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LedgerSnapshot {
    /// Requests admitted into the queue (or answered inline).
    pub admitted: u64,
    /// Terminal replies delivered. Equals `admitted` once the service
    /// has shut down — the never-lose-a-request invariant.
    pub replied: u64,
    /// Requests refused at admission (backpressure / past deadline /
    /// shutdown).
    pub rejected: u64,
    /// Replies that carried `degraded: true`.
    pub degraded: u64,
    /// Transient-failure retries performed.
    pub retried: u64,
    /// Batches hedge-re-dispatched.
    pub hedged: u64,
    /// Replies served from the moment cache.
    pub cache_hits: u64,
}

impl Ledger {
    fn snapshot(&self) -> LedgerSnapshot {
        LedgerSnapshot {
            admitted: self.admitted.load(Ordering::SeqCst),
            replied: self.replied.load(Ordering::SeqCst),
            rejected: self.rejected.load(Ordering::SeqCst),
            degraded: self.degraded.load(Ordering::SeqCst),
            retried: self.retried.load(Ordering::SeqCst),
            hedged: self.hedged.load(Ordering::SeqCst),
            cache_hits: self.cache_hits.load(Ordering::SeqCst),
        }
    }
}

impl LedgerSnapshot {
    /// The exactly-one-terminal-reply invariant, checkable after
    /// shutdown.
    pub fn consistent(&self) -> bool {
        self.admitted == self.replied
    }
}

/// A registered Hamiltonian with its spectral scale factors.
#[derive(Debug)]
struct MatrixEntry {
    matrix: KpmMatrix,
    sf: ScaleFactors,
}

/// One request inside a batch: which columns are its, and at what `M`
/// it is served.
struct BatchMember {
    pending: Pending,
    queue_wait: Duration,
    /// When the batcher sealed this member into the batch (µs since
    /// the obs epoch; 0 when tracing is disabled).
    batched_us: f64,
    col_start: usize,
    col_len: usize,
    m_solve: usize,
}

/// A dispatched block solve shared between the batcher (hedging), the
/// worker pool (solving/retries) and duplicates of itself.
struct BatchJob {
    id: u64,
    entry: Arc<MatrixEntry>,
    columns: Vec<Vector>,
    members: Vec<BatchMember>,
    m_max: usize,
    done: AtomicBool,
    attempts: AtomicU32,
    hedged: AtomicBool,
}

struct ServiceInner {
    config: ServiceConfig,
    queue: Arc<AdmissionQueue>,
    matrices: Mutex<HashMap<u64, Arc<MatrixEntry>>>,
    cache: MomentCache,
    breaker: CircuitBreaker,
    ledger: Ledger,
    state: AtomicU8,
    stop_workers: AtomicBool,
    next_id: AtomicU64,
    next_batch: AtomicU64,
    admissions: AtomicU64,
    /// EWMA of batch solve time, feeding `retry_after` hints.
    ewma_solve_ns: AtomicU64,
}

impl ServiceInner {
    fn state(&self) -> u8 {
        self.state.load(Ordering::Acquire)
    }

    /// Client-side backoff hint: the work already queued divided by the
    /// worker pool's observed solve rate, plus one batch window.
    fn retry_after(&self, depth: usize) -> Duration {
        let per = Duration::from_nanos(self.ewma_solve_ns.load(Ordering::Acquire));
        let workers = self.config.workers.max(1) as u32;
        let backlog = per.saturating_mul(depth as u32 + 1) / workers;
        (self.config.batch_window + backlog).max(Duration::from_millis(1))
    }

    /// Delivers the terminal reply if this caller wins the slot race;
    /// exactly one caller per request ever does. Resolves the stage
    /// marks into the per-stage breakdown and retroactively records the
    /// request's root span plus its four stage spans — the stages tile
    /// `[admission, reply]` exactly, so their sum equals the end-to-end
    /// latency by construction.
    fn deliver(&self, pending: &Pending, outcome: Outcome, stats: ReplyStats, marks: StageMarks) {
        let sender = pending
            .reply
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .take();
        let Some(tx) = sender else { return };
        let _sp = span("svc.reply", "service")
            .arg("id", pending.id)
            .trace(pending.trace);
        let mut stats = stats;
        stats.trace = pending.trace;
        if matches!(outcome, Outcome::Degraded { .. }) {
            self.ledger.degraded.fetch_add(1, Ordering::SeqCst);
            metrics::counter_inc("svc.degraded");
        }
        if stats.cache_hit {
            self.ledger.cache_hits.fetch_add(1, Ordering::SeqCst);
            metrics::counter_inc("svc.cache_hit");
        }
        if matches!(outcome, Outcome::Failed(_)) {
            metrics::counter_inc("svc.failed");
        }
        metrics::hist_record_ns(
            "svc.latency_ns",
            pending.enqueued_at.elapsed().as_nanos() as u64,
        );
        if pending.trace != 0 {
            let trace = pending.trace;
            let route = pending.req.kind.route();
            let label = match &outcome {
                Outcome::Success(_) => "success",
                Outcome::Degraded { .. } => "degraded",
                Outcome::Failed(_) => "failed",
            };
            let now_us = micros_since_epoch();
            let t0 = pending.admitted_us.min(now_us);
            let t1 = if marks.batched_us > 0.0 {
                marks.batched_us.clamp(t0, now_us)
            } else {
                t0
            };
            let t2 = if marks.solve_start_us > 0.0 {
                marks.solve_start_us.clamp(t1, now_us)
            } else {
                t1
            };
            let t3 = if marks.solve_end_us > 0.0 {
                marks.solve_end_us.clamp(t2, now_us)
            } else {
                t2
            };
            stats.stages = StageBreakdown {
                queue_us: t1 - t0,
                batch_us: t2 - t1,
                solve_us: t3 - t2,
                reply_us: now_us - t3,
            };
            let root = record_manual(
                "svc.request",
                "service",
                trace,
                None,
                t0,
                now_us - t0,
                vec![
                    ("id", pending.id.to_string()),
                    ("route", route.to_string()),
                    ("outcome", label.to_string()),
                ],
            );
            record_manual(
                "svc.stage.queue",
                "service",
                trace,
                root,
                t0,
                t1 - t0,
                vec![],
            );
            record_manual(
                "svc.stage.batch",
                "service",
                trace,
                root,
                t1,
                t2 - t1,
                vec![],
            );
            record_manual(
                "svc.stage.solve",
                "service",
                trace,
                root,
                t2,
                t3 - t2,
                vec![],
            );
            record_manual(
                "svc.stage.reply",
                "service",
                trace,
                root,
                t3,
                now_us - t3,
                vec![],
            );
            let latency_ns = ((now_us - t0) * 1e3).max(0.0) as u64;
            obs_hist::record("svc.latency_ns", latency_ns);
            slo::observe(route, latency_ns);
            recorder::note(
                "svc.terminal",
                trace,
                format_args!("id={} route={route} outcome={label}", pending.id),
            );
        }
        self.ledger.replied.fetch_add(1, Ordering::SeqCst);
        // The client may have dropped its ticket; the reply is still
        // terminal and accounted.
        let _ = tx.send(Response {
            id: pending.id,
            outcome,
            stats,
        });
    }

    /// Cache probe: a full-quality answer if the cache covers the
    /// requested `M`, else (when allowed) the longest degraded prefix
    /// at or above the floor.
    fn cache_answer(
        &self,
        req: &Request,
        allow_degraded: bool,
    ) -> Option<(Arc<MomentSet>, usize, bool)> {
        let key = cache_key(req);
        if let Some(set) = self.cache.lookup(key, req.num_moments) {
            return Some((set, req.num_moments, false));
        }
        if allow_degraded {
            let floor = self.config.min_degraded_moments.max(2);
            if let Some(set) = self.cache.lookup(key, floor) {
                let served = set.len().min(req.num_moments);
                return Some((set, served, served < req.num_moments));
            }
        }
        None
    }

    /// Builds the curve + moments answer for `req` served at
    /// `m_served` moments out of `set`.
    fn make_answer(
        &self,
        entry: &MatrixEntry,
        req: &Request,
        set: &MomentSet,
        m_served: usize,
    ) -> Answer {
        let moments = set.truncated(m_served);
        let sf = entry.sf;
        let curve = match req.kind {
            QueryKind::Dos { .. } => Curve::Dos(reconstruct(&moments, req.kernel, sf, req.points)),
            QueryKind::Ldos { .. } => {
                // Same convention as `kpm_core::ldos::site_ldos`: the
                // per-orbital average rescaled to the 4 local states.
                let mut curve = reconstruct(&moments, req.kernel, sf, req.points);
                for v in &mut curve.values {
                    *v *= LDOS_ORBITALS as f64;
                }
                Curve::Ldos(curve)
            }
            QueryKind::Green { .. } => {
                Curve::Green(reconstruct_green(&moments, req.kernel, sf, req.points))
            }
        };
        Answer { curve, moments }
    }

    /// Replies from the cache if possible. Returns true if a reply was
    /// delivered.
    fn try_cache_reply(
        &self,
        entry: &MatrixEntry,
        pending: &Pending,
        queue_wait: Duration,
        allow_degraded: bool,
        marks: StageMarks,
    ) -> bool {
        let req = &pending.req;
        let Some((set, served, degraded)) = self.cache_answer(req, allow_degraded) else {
            return false;
        };
        let answer = self.make_answer(entry, req, &set, served);
        let outcome = if degraded {
            Outcome::Degraded {
                answer,
                info: DegradeInfo::new(req.num_moments, served, true),
            }
        } else {
            Outcome::Success(answer)
        };
        self.deliver(
            pending,
            outcome,
            ReplyStats {
                queue_wait,
                cache_hit: true,
                batch_width: 0,
                ..ReplyStats::default()
            },
            marks,
        );
        true
    }
}

/// The resilient KPM request runtime. See the module docs for the
/// architecture and [`crate`] docs for a usage sketch.
pub struct Service {
    inner: Arc<ServiceInner>,
    batcher: Option<std::thread::JoinHandle<()>>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl Service {
    /// Starts the runtime: one batcher thread plus the configured
    /// worker pool.
    pub fn start(config: ServiceConfig) -> Service {
        let queue = Arc::new(AdmissionQueue::new(config.queue_capacity));
        let breaker = CircuitBreaker::new(config.breaker_threshold, config.breaker_cooldown);
        let cache = MomentCache::new(config.cache_capacity);
        let workers_n = config.workers.max(1);
        let inner = Arc::new(ServiceInner {
            cache,
            breaker,
            queue,
            ledger: Ledger::default(),
            state: AtomicU8::new(RUNNING),
            stop_workers: AtomicBool::new(false),
            next_id: AtomicU64::new(1),
            next_batch: AtomicU64::new(1),
            admissions: AtomicU64::new(0),
            ewma_solve_ns: AtomicU64::new(1_000_000),
            matrices: Mutex::new(HashMap::new()),
            config,
        });

        let (job_tx, job_rx) = mpsc::channel::<Arc<BatchJob>>();
        let job_rx = Arc::new(Mutex::new(job_rx));

        let mut workers = Vec::with_capacity(workers_n);
        for w in 0..workers_n {
            let inner_w = Arc::clone(&inner);
            let rx = Arc::clone(&job_rx);
            let tx = job_tx.clone();
            let handle = std::thread::Builder::new()
                .name(format!("kpm-svc-worker-{w}"))
                .spawn(move || worker_loop(&inner_w, &rx, &tx));
            if let Ok(h) = handle {
                workers.push(h);
            }
        }

        let inner_b = Arc::clone(&inner);
        let batcher = std::thread::Builder::new()
            .name("kpm-svc-batcher".into())
            .spawn(move || batcher_loop(&inner_b, &job_tx))
            .ok();

        Service {
            inner,
            batcher,
            workers,
        }
    }

    /// Registers a Hamiltonian; requests name it by the returned
    /// content fingerprint. Re-registering the same content is a no-op
    /// returning the same fingerprint.
    pub fn register_matrix(&self, matrix: KpmMatrix, sf: ScaleFactors) -> u64 {
        let fp = matrix.content_fingerprint();
        let mut map = self
            .inner
            .matrices
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        map.entry(fp)
            .or_insert_with(|| Arc::new(MatrixEntry { matrix, sf }));
        fp
    }

    /// Submits a request: explicit backpressure, never blocking.
    ///
    /// Admitted requests are guaranteed exactly one terminal
    /// [`Response`]; rejected requests are guaranteed none.
    pub fn submit(&self, req: Request) -> Admission {
        let inner = &self.inner;
        let _sp = span("svc.admit", "service").arg("matrix", format!("{:#x}", req.matrix));
        if inner.state() != RUNNING {
            inner.ledger.rejected.fetch_add(1, Ordering::SeqCst);
            metrics::counter_inc("svc.rejected");
            return Admission::Rejected {
                retry_after: inner.retry_after(inner.queue.len()),
                reason: RejectReason::ShuttingDown,
            };
        }

        let budget = req.deadline.unwrap_or(inner.config.default_deadline);
        if budget <= inner.config.batch_window {
            // The deadline cannot survive even the coalescing window:
            // reject up front instead of admitting doomed work.
            inner.ledger.rejected.fetch_add(1, Ordering::SeqCst);
            metrics::counter_inc("svc.rejected");
            return Admission::Rejected {
                retry_after: inner.retry_after(inner.queue.len()),
                reason: RejectReason::PastDeadline,
            };
        }

        let id = inner.next_id.fetch_add(1, Ordering::Relaxed);
        let trace = mint_trace();
        let (tx, rx) = mpsc::channel();
        let now = Instant::now();
        let pending = Pending {
            id,
            req,
            trace,
            admitted_us: stage_now(),
            enqueued_at: now,
            deadline_at: now + budget,
            reply: Arc::new(Mutex::new(Some(tx))),
        };
        let ticket = Ticket { id, rx };

        // Structural validation answers inline with a typed error —
        // the request is admitted and replied, keeping the ledger
        // uniform (admitted == replied always holds at shutdown).
        if let Err(e) = self.validate(&req) {
            inner.ledger.admitted.fetch_add(1, Ordering::SeqCst);
            metrics::counter_inc("svc.admitted");
            inner.deliver(
                &pending,
                Outcome::Failed(e),
                ReplyStats::default(),
                StageMarks::default(),
            );
            return Admission::Admitted(ticket);
        }

        match inner.queue.push(pending) {
            PushOutcome::Queued { depth } => {
                inner.ledger.admitted.fetch_add(1, Ordering::SeqCst);
                metrics::counter_inc("svc.admitted");
                metrics::gauge_max("svc.queue_depth", depth as f64);
                let count = inner.admissions.fetch_add(1, Ordering::Relaxed) + 1;
                if let Some(chaos) = &inner.config.chaos {
                    if chaos.should_poison_queue(count) {
                        recorder::note("chaos.poison", trace, "admission queue lock poisoned");
                        inner.queue.poison_lock();
                    }
                }
                Admission::Admitted(ticket)
            }
            PushOutcome::Full(p) => {
                // Dropping the returned request also drops its reply
                // sender: the never-handed-out ticket can leak nothing.
                drop(p);
                inner.ledger.rejected.fetch_add(1, Ordering::SeqCst);
                metrics::counter_inc("svc.rejected");
                Admission::Rejected {
                    retry_after: inner.retry_after(inner.config.queue_capacity),
                    reason: RejectReason::QueueFull,
                }
            }
            PushOutcome::Closed(p) => {
                drop(p);
                inner.ledger.rejected.fetch_add(1, Ordering::SeqCst);
                metrics::counter_inc("svc.rejected");
                Admission::Rejected {
                    retry_after: inner.retry_after(inner.queue.len()),
                    reason: RejectReason::ShuttingDown,
                }
            }
        }
    }

    /// Structural request validation (everything checkable without
    /// solving).
    fn validate(&self, req: &Request) -> Result<(), ServiceError> {
        let matrices = self
            .inner
            .matrices
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        let Some(entry) = matrices.get(&req.matrix) else {
            return Err(ServiceError::UnknownMatrix {
                fingerprint: req.matrix,
            });
        };
        let n = entry.matrix.nrows();
        drop(matrices);
        if req.num_moments < 2 || !req.num_moments.is_multiple_of(2) {
            return Err(ServiceError::Solver(KpmError::InvalidParams {
                what: "num_moments",
                details: format!("must be even and >= 2 (got {})", req.num_moments),
            }));
        }
        if req.points < 2 {
            return Err(ServiceError::Solver(KpmError::InvalidParams {
                what: "points",
                details: format!("need at least two sample points (got {})", req.points),
            }));
        }
        match req.kind {
            QueryKind::Dos { num_random, .. } | QueryKind::Green { num_random, .. } => {
                if num_random < 1 {
                    return Err(ServiceError::Solver(KpmError::InvalidParams {
                        what: "num_random",
                        details: "need at least one random vector".into(),
                    }));
                }
            }
            QueryKind::Ldos { site } => {
                if LDOS_ORBITALS * site + LDOS_ORBITALS > n {
                    return Err(ServiceError::Solver(KpmError::InvalidParams {
                        what: "site",
                        details: format!(
                            "site {site} needs rows {}..{}, matrix has {n}",
                            LDOS_ORBITALS * site,
                            LDOS_ORBITALS * (site + 1),
                        ),
                    }));
                }
            }
        }
        Ok(())
    }

    /// Current lifecycle counters.
    pub fn ledger(&self) -> LedgerSnapshot {
        self.inner.ledger.snapshot()
    }

    /// Chaos-injection counters, if a plan is configured.
    pub fn chaos_stats(&self) -> Option<crate::chaos::ChaosStats> {
        self.inner.config.chaos.as_ref().map(|c| c.stats())
    }

    /// Current admission-queue depth.
    pub fn queue_depth(&self) -> usize {
        self.inner.queue.len()
    }

    /// Winds the runtime down and joins every thread. Always returns
    /// with `admitted == replied` in the ledger.
    pub fn shutdown(mut self, mode: ShutdownMode) -> LedgerSnapshot {
        self.shutdown_impl(mode);
        self.inner.ledger.snapshot()
    }

    fn shutdown_impl(&mut self, mode: ShutdownMode) {
        let state = match mode {
            ShutdownMode::Drain => DRAIN,
            ShutdownMode::Abort => ABORT,
        };
        self.inner.state.store(state, Ordering::Release);
        self.inner.queue.close();
        if let Some(b) = self.batcher.take() {
            let _ = b.join();
        }
        self.inner.stop_workers.store(true, Ordering::Release);
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl Drop for Service {
    fn drop(&mut self) {
        if self.batcher.is_some() || !self.workers.is_empty() {
            self.shutdown_impl(ShutdownMode::Abort);
        }
    }
}

/// Largest batch width with a compiled kernel specialization not
/// exceeding the configured bound (the paper generates kernels for the
/// widths its experiments sweep — `kpm_sparse::gen`).
fn width_budget(max_batch_width: usize) -> usize {
    let mut best = 1;
    for &w in &kpm_sparse::gen::SPECIALIZED_WIDTHS {
        if w <= max_batch_width {
            best = best.max(w);
        }
    }
    best
}

/// Exponential backoff with seeded multiplicative jitter in
/// `[0.5, 1.5)` so retries across batches never fall into lockstep.
fn backoff_with_jitter(base: Duration, max: Duration, attempt: u32, seed: u64) -> Duration {
    let exp = base.saturating_mul(1u32 << attempt.min(16)).min(max);
    let draw = (splitmix(seed) >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
    exp.mul_f64(0.5 + draw)
}

/// Reduced moment count under overload: half the request, even, at
/// least the configured floor, never more than requested.
fn reduced_m(requested: usize, floor: usize) -> usize {
    let half = (requested / 2) & !1;
    half.max(floor.max(2)).min(requested)
}

fn cache_key(req: &Request) -> CacheKey {
    (req.matrix, kernel_key(req.kernel), req.kind.start_spec())
}

fn route_key(req: &Request) -> RouteKey {
    (req.matrix, kernel_key(req.kernel))
}

/// Builds the starting vectors of one query (the solver's own
/// conventions: seeded random unit vectors for trace estimates, orbital
/// unit vectors for LDOS).
fn build_columns(n: usize, kind: QueryKind) -> Vec<Vector> {
    match kind {
        QueryKind::Dos { seed, num_random } | QueryKind::Green { seed, num_random } => {
            starting_vectors(
                n,
                &KpmParams {
                    seed,
                    num_random,
                    ..KpmParams::default()
                },
            )
        }
        QueryKind::Ldos { site } => (0..LDOS_ORBITALS)
            .map(|o| {
                let mut data = vec![Complex64::default(); n];
                data[LDOS_ORBITALS * site + o] = Complex64::real(1.0);
                Vector::from_vec(data)
            })
            .collect(),
    }
}

/// The batcher: pops admitted requests, serves the fast paths (cache,
/// breaker, expired deadlines), coalesces the rest into block solves,
/// and hedges stragglers.
fn batcher_loop(inner: &Arc<ServiceInner>, job_tx: &mpsc::Sender<Arc<BatchJob>>) {
    let tick = Duration::from_millis(2);
    let mut inflight: Vec<(Arc<BatchJob>, Instant)> = Vec::new();
    loop {
        match inner.queue.pop_wait(tick) {
            PopOutcome::Popped(first) => {
                if inner.state() == ABORT {
                    fail_shutdown(inner, first);
                    for p in inner.queue.drain_all() {
                        fail_shutdown(inner, p);
                    }
                } else {
                    // Coalescing window: let concurrent same-matrix
                    // requests arrive before the batch is sealed.
                    if inner.state() == RUNNING && !inner.config.batch_window.is_zero() {
                        std::thread::sleep(inner.config.batch_window.min(Duration::from_millis(2)));
                    }
                    let budget = width_budget(inner.config.max_batch_width);
                    let first_cols = first.req.kind.columns();
                    let mates = if first_cols < budget {
                        inner
                            .queue
                            .drain_matching(first.req.matrix, budget - first_cols)
                    } else {
                        Vec::new()
                    };
                    let mut group = Vec::with_capacity(1 + mates.len());
                    group.push(first);
                    group.extend(mates);
                    if let Some(job) = form_batch(inner, group) {
                        let job = Arc::new(job);
                        inflight.push((Arc::clone(&job), Instant::now()));
                        if job_tx.send(job).is_err() {
                            // Worker pool is gone (tear-down race):
                            // answer the members typed instead of
                            // losing them.
                            if let Some((job, _)) = inflight.pop() {
                                for m in &job.members {
                                    inner.deliver(
                                        &m.pending,
                                        Outcome::Failed(ServiceError::Shutdown),
                                        ReplyStats::default(),
                                        StageMarks {
                                            batched_us: m.batched_us,
                                            ..StageMarks::default()
                                        },
                                    );
                                }
                                job.done.store(true, Ordering::Release);
                            }
                        }
                    }
                }
            }
            PopOutcome::TimedOut => {}
            PopOutcome::Closed => {
                inflight.retain(|(job, _)| !job.done.load(Ordering::Acquire));
                if inflight.is_empty() {
                    break;
                }
                // Closed pops return immediately; pace the wait for
                // the in-flight batches.
                std::thread::sleep(Duration::from_millis(1));
            }
        }
        // Hedge stragglers and forget completed batches.
        inflight.retain(|(job, _)| !job.done.load(Ordering::Acquire));
        if let Some(hedge_after) = inner.config.hedge_after {
            for (job, dispatched) in &inflight {
                if dispatched.elapsed() >= hedge_after && !job.hedged.swap(true, Ordering::AcqRel) {
                    inner.ledger.hedged.fetch_add(1, Ordering::SeqCst);
                    metrics::counter_inc("svc.hedged");
                    recorder::note(
                        "svc.hedge",
                        job.members.first().map_or(0, |m| m.pending.trace),
                        format_args!("batch={} re-dispatched", job.id),
                    );
                    let _ = job_tx.send(Arc::clone(job));
                }
            }
        }
    }
}

fn fail_shutdown(inner: &ServiceInner, p: Pending) {
    let queue_wait = p.enqueued_at.elapsed();
    inner.deliver(
        &p,
        Outcome::Failed(ServiceError::Shutdown),
        ReplyStats {
            queue_wait,
            ..ReplyStats::default()
        },
        StageMarks {
            batched_us: stage_now(),
            ..StageMarks::default()
        },
    );
}

/// Serves every fast path of the group and forms a batch job from what
/// remains. Returns `None` when every member was answered inline.
fn form_batch(inner: &Arc<ServiceInner>, group: Vec<Pending>) -> Option<BatchJob> {
    let fingerprint = group.first()?.req.matrix;
    let entry = {
        let matrices = inner.matrices.lock().unwrap_or_else(|e| e.into_inner());
        matrices.get(&fingerprint).cloned()
    };
    let Some(entry) = entry else {
        // Registry misses are normally caught at submit; if a race ever
        // got one here, answer it typed rather than dropping it.
        let batched_us = stage_now();
        for p in group {
            inner.deliver(
                &p,
                Outcome::Failed(ServiceError::UnknownMatrix { fingerprint }),
                ReplyStats::default(),
                StageMarks {
                    batched_us,
                    ..StageMarks::default()
                },
            );
        }
        return None;
    };

    let depth = inner.queue.len();
    let overload = depth as f64
        >= (inner.config.queue_capacity as f64 * inner.config.degrade_at_depth).max(1.0);
    let now = Instant::now();
    let now_us = stage_now();
    let marks = StageMarks {
        batched_us: now_us,
        ..StageMarks::default()
    };
    let n = entry.matrix.nrows();

    let mut members: Vec<BatchMember> = Vec::new();
    let mut columns: Vec<Vector> = Vec::new();
    let mut m_max = 0usize;
    for p in group {
        let req = p.req;
        let queue_wait = now.saturating_duration_since(p.enqueued_at);
        metrics::hist_record_ns("svc.queue.wait_ns", queue_wait.as_nanos() as u64);
        obs_hist::record("svc.queue.wait_ns", queue_wait.as_nanos() as u64);

        if now >= p.deadline_at {
            // Expired while queued: a cached (possibly degraded) answer
            // still beats a failure.
            recorder::note(
                "deadline.miss",
                p.trace,
                format_args!("id={} expired in queue after {:?}", p.id, queue_wait),
            );
            recorder::trigger_dump("deadline_miss");
            if !inner.try_cache_reply(&entry, &p, queue_wait, true, marks) {
                inner.deliver(
                    &p,
                    Outcome::Failed(ServiceError::DeadlineExceeded { stage: "queued" }),
                    ReplyStats {
                        queue_wait,
                        ..ReplyStats::default()
                    },
                    marks,
                );
            }
            continue;
        }
        if let Some(cooldown) = inner.breaker.check(route_key(&req)) {
            if !inner.try_cache_reply(&entry, &p, queue_wait, true, marks) {
                inner.deliver(
                    &p,
                    Outcome::Failed(ServiceError::CircuitOpen { cooldown }),
                    ReplyStats {
                        queue_wait,
                        ..ReplyStats::default()
                    },
                    marks,
                );
            }
            continue;
        }
        // Full-quality cache hit — and under overload any usable cached
        // prefix — answers without solving.
        if inner.try_cache_reply(&entry, &p, queue_wait, overload, marks) {
            continue;
        }

        let m_solve = if overload {
            reduced_m(req.num_moments, inner.config.min_degraded_moments)
        } else {
            req.num_moments
        };
        let cols = build_columns(n, req.kind);
        let col_start = columns.len();
        let col_len = cols.len();
        columns.extend(cols);
        m_max = m_max.max(m_solve);
        members.push(BatchMember {
            pending: p,
            queue_wait,
            batched_us: now_us,
            col_start,
            col_len,
            m_solve,
        });
    }

    if members.is_empty() {
        return None;
    }
    let id = inner.next_batch.fetch_add(1, Ordering::Relaxed);
    let _sp = span("svc.batch", "service")
        .trace(members.first().map_or(0, |m| m.pending.trace))
        .arg("batch", id)
        .arg("width", columns.len())
        .arg("members", members.len());
    metrics::counter_inc("svc.batches");
    Some(BatchJob {
        id,
        entry,
        columns,
        members,
        m_max,
        done: AtomicBool::new(false),
        attempts: AtomicU32::new(0),
        hedged: AtomicBool::new(false),
    })
}

/// A worker: solve batches, absorb chaos, retry transients with
/// jittered backoff, deliver terminal replies exactly once.
fn worker_loop(
    inner: &Arc<ServiceInner>,
    job_rx: &Arc<Mutex<mpsc::Receiver<Arc<BatchJob>>>>,
    job_tx: &mpsc::Sender<Arc<BatchJob>>,
) {
    loop {
        let msg = {
            let rx = job_rx.lock().unwrap_or_else(|e| e.into_inner());
            rx.recv_timeout(Duration::from_millis(1))
        };
        match msg {
            Ok(job) => process_batch(inner, &job, job_tx),
            Err(mpsc::RecvTimeoutError::Timeout) => {
                if inner.stop_workers.load(Ordering::Acquire) {
                    break;
                }
            }
            Err(mpsc::RecvTimeoutError::Disconnected) => break,
        }
    }
}

fn process_batch(
    inner: &Arc<ServiceInner>,
    job: &Arc<BatchJob>,
    job_tx: &mpsc::Sender<Arc<BatchJob>>,
) {
    if job.done.load(Ordering::Acquire) {
        return; // stale hedged/retried duplicate
    }
    let attempt = job.attempts.load(Ordering::Relaxed);
    let fate = inner
        .config
        .chaos
        .as_ref()
        .map(|c| c.batch_fate(job.id, attempt))
        .unwrap_or(crate::chaos::BatchFate {
            crash: false,
            slow: None,
        });

    let trace0 = job.members.first().map_or(0, |m| m.pending.trace);
    if fate.crash {
        // Simulated worker crash mid-batch: the attempt dies without a
        // result and the batch re-enters the pool after a jittered
        // backoff — or fails typed once the retry budget is gone.
        let attempts_used = job.attempts.fetch_add(1, Ordering::Relaxed) + 1;
        inner.ledger.retried.fetch_add(1, Ordering::SeqCst);
        metrics::counter_inc("svc.retried");
        recorder::note(
            "chaos.crash",
            trace0,
            format_args!("batch={} attempt={attempt}", job.id),
        );
        recorder::trigger_dump("chaos_crash");
        if attempts_used > inner.config.max_retries {
            if !job.done.swap(true, Ordering::AcqRel) {
                for m in &job.members {
                    inner.deliver(
                        &m.pending,
                        Outcome::Failed(ServiceError::RetriesExhausted {
                            attempts: attempts_used,
                            last_error: KpmError::RankCrashed { rank: 0 }.to_string(),
                        }),
                        member_stats(m, job, Duration::ZERO),
                        member_marks(m, 0.0, 0.0),
                    );
                }
            }
            return;
        }
        std::thread::sleep(backoff_with_jitter(
            inner.config.backoff_base,
            inner.config.backoff_max,
            attempts_used,
            inner.config.seed ^ job.id.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ attempts_used as u64,
        ));
        if job_tx.send(Arc::clone(job)).is_err() && !job.done.swap(true, Ordering::AcqRel) {
            for m in &job.members {
                inner.deliver(
                    &m.pending,
                    Outcome::Failed(ServiceError::Shutdown),
                    member_stats(m, job, Duration::ZERO),
                    member_marks(m, 0.0, 0.0),
                );
            }
        }
        return;
    }
    if let Some(delay) = fate.slow {
        recorder::note(
            "chaos.slow",
            trace0,
            format_args!("batch={} delayed {delay:?}", job.id),
        );
        std::thread::sleep(delay);
    }

    let deadline = job
        .members
        .iter()
        .map(|m| m.pending.deadline_at)
        .max()
        .unwrap_or_else(Instant::now);
    let _sp = span("svc.solve", "service")
        .trace(trace0)
        .arg("batch", job.id)
        .arg("rows", job.entry.matrix.nrows())
        .arg("nnz", job.entry.matrix.nnz())
        .arg("width", job.columns.len())
        .arg("moments", job.m_max);
    let solve_start_us = stage_now();
    let t0 = Instant::now();
    let result = kpm_batch_moments_power(
        &job.entry.matrix,
        job.entry.sf,
        &job.columns,
        job.m_max,
        inner.config.parallel_solve,
        Some(deadline),
        inner.config.power.max(1),
    );
    let solve = t0.elapsed();
    let solve_end_us = stage_now();
    metrics::hist_record_ns("svc.solve_ns", solve.as_nanos() as u64);
    obs_hist::record("svc.solve_ns", solve.as_nanos() as u64);

    if job.done.swap(true, Ordering::AcqRel) {
        return; // a hedged twin answered first (bitwise the same answer)
    }

    match result {
        Ok(col_sets) => {
            // EWMA of solve time feeds the retry_after hint; exported
            // as a gauge so the hint is auditable against measured
            // queue waits.
            let old = inner.ewma_solve_ns.load(Ordering::Acquire);
            let sample = solve.as_nanos() as u64;
            let ewma = old - old / 8 + sample / 8;
            inner.ewma_solve_ns.store(ewma, Ordering::Release);
            metrics::gauge_set("svc.queue.ewma_solve_ns", ewma as f64);
            for m in &job.members {
                let req = &m.pending.req;
                let sets = &col_sets[m.col_start..m.col_start + m.col_len];
                let mut acc = MomentSet::zeros(m.m_solve);
                for s in sets {
                    acc.accumulate(&s.truncated(m.m_solve));
                }
                let set = Arc::new(acc);
                inner
                    .cache
                    .insert_if_better(cache_key(req), Arc::clone(&set));
                let answer = inner.make_answer(&job.entry, req, &set, m.m_solve);
                let outcome = if m.m_solve < req.num_moments {
                    Outcome::Degraded {
                        answer,
                        info: DegradeInfo::new(req.num_moments, m.m_solve, false),
                    }
                } else {
                    Outcome::Success(answer)
                };
                inner.breaker.record_success(route_key(req));
                inner.deliver(
                    &m.pending,
                    outcome,
                    member_stats(m, job, solve),
                    member_marks(m, solve_start_us, solve_end_us),
                );
            }
        }
        Err(KpmError::DeadlineExceeded { .. }) => {
            recorder::note(
                "deadline.miss",
                trace0,
                format_args!("batch={} expired mid-solve", job.id),
            );
            recorder::trigger_dump("deadline_miss");
            for m in &job.members {
                let marks = member_marks(m, solve_start_us, solve_end_us);
                if !inner.try_cache_reply(&job.entry, &m.pending, m.queue_wait, true, marks) {
                    inner.deliver(
                        &m.pending,
                        Outcome::Failed(ServiceError::DeadlineExceeded { stage: "solve" }),
                        member_stats(m, job, solve),
                        marks,
                    );
                }
            }
        }
        Err(e) => {
            for m in &job.members {
                if inner.breaker.record_failure(route_key(&m.pending.req)) {
                    recorder::note(
                        "breaker.open",
                        m.pending.trace,
                        format_args!("route matrix={:#x}: {e}", m.pending.req.matrix),
                    );
                    recorder::trigger_dump("breaker_open");
                }
                inner.deliver(
                    &m.pending,
                    Outcome::Failed(ServiceError::Solver(e.clone())),
                    member_stats(m, job, solve),
                    member_marks(m, solve_start_us, solve_end_us),
                );
            }
        }
    }
}

fn member_stats(m: &BatchMember, job: &BatchJob, solve: Duration) -> ReplyStats {
    ReplyStats {
        queue_wait: m.queue_wait,
        solve,
        retries: job.attempts.load(Ordering::Relaxed),
        hedged: job.hedged.load(Ordering::Acquire),
        cache_hit: false,
        batch_width: job.columns.len(),
        ..ReplyStats::default()
    }
}

fn member_marks(m: &BatchMember, solve_start_us: f64, solve_end_us: f64) -> StageMarks {
    StageMarks {
        batched_us: m.batched_us,
        solve_start_us,
        solve_end_us,
    }
}
