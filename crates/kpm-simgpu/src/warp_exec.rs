//! Functional SIMT execution of the augmented SpMMV kernel.
//!
//! The trace-driven simulator (`exec`) reproduces the *memory behaviour*
//! of the paper's CUDA kernel; this module reproduces its *computation*:
//! thread blocks of warps execute the three phases of paper Fig. 6 in
//! lockstep —
//!
//! 1. **SpMMV**: warps arranged along block-vector rows; every lane owns
//!    one (row, column) pair, the matrix element is broadcast to the
//!    lanes of its row;
//! 2. **warp re-indexing**: for the dot phase, lanes are re-associated
//!    so the values to combine live in the same warp (only the indexing
//!    changes, no data moves — exactly the paper's description);
//! 3. **dot products**: butterfly reductions with simulated
//!    `__shfl_down` exchanges, `log2(warpSize)` steps, the result read
//!    from the first lane of each segment; the final cross-block
//!    reduction (CUB in the paper) is a host-side sum.
//!
//! The executor returns bit-identical block updates and η values whose
//! reduction tree differs from the CPU kernel only in summation order —
//! the validation the paper could not print but certainly ran.

use kpm_num::{BlockVector, Complex64};
use kpm_sparse::aug::AugDotsBlock;
use kpm_sparse::CrsMatrix;

use crate::device::GpuDevice;

/// One simulated warp: `warp_size` lanes in lockstep.
struct Warp {
    /// Per-lane register holding the partial dot value being reduced.
    regs: Vec<Complex64>,
}

impl Warp {
    fn new(warp_size: usize) -> Self {
        Self {
            regs: vec![Complex64::default(); warp_size],
        }
    }

    /// Simulated `__shfl_down_sync`: lane `i` reads lane `i + delta`'s
    /// register (lanes past the end read zero — the CUDA kernel masks
    /// them). All lanes execute simultaneously: the read happens before
    /// any write, which the double buffer enforces. The segmented
    /// butterfly below composes this primitive; it is also exercised
    /// directly by the tests.
    #[cfg(test)]
    fn shfl_down_add(&mut self, delta: usize) {
        let old = self.regs.clone();
        for i in 0..self.regs.len() {
            let other = if i + delta < old.len() {
                old[i + delta]
            } else {
                Complex64::default()
            };
            self.regs[i] = old[i] + other;
        }
    }

    /// Butterfly reduction over segments of `seg` lanes (power of two):
    /// afterwards the first lane of each segment holds the segment sum.
    fn segmented_reduce(&mut self, seg: usize) {
        assert!(seg.is_power_of_two(), "segment must be a power of two");
        let mut delta = seg / 2;
        while delta >= 1 {
            // Mask the exchange to stay within segments: emulate by
            // zeroing contributions that cross a boundary.
            let old = self.regs.clone();
            for i in 0..self.regs.len() {
                let partner = i + delta;
                let same_segment = partner < old.len() && (i / seg == partner / seg);
                let other = if same_segment {
                    old[partner]
                } else {
                    Complex64::default()
                };
                self.regs[i] = old[i] + other;
            }
            delta /= 2;
        }
    }
}

/// Executes one augmented SpMMV sweep (`w <- 2a(H - b·1)v - w`, fused
/// dots) with warp-lockstep semantics on `device`. Supports any block
/// width; widths above `warp_size` use several warps per row with a
/// host-side combine of the per-warp partials (the CUB step).
pub fn aug_spmmv_warp_exec(
    device: &GpuDevice,
    h: &CrsMatrix,
    a: f64,
    b: f64,
    v: &BlockVector,
    w: &mut BlockVector,
) -> AugDotsBlock {
    assert_eq!(h.nrows(), h.ncols(), "square matrices only");
    assert_eq!(v.rows(), h.ncols(), "block v dimension mismatch");
    assert_eq!(w.rows(), h.nrows(), "block w dimension mismatch");
    assert_eq!(v.width(), w.width(), "block width mismatch");
    let r = v.width();
    let ws = device.warp_size;
    let n = h.nrows();

    let mut eta_even = vec![0.0; r];
    let mut eta_odd = vec![Complex64::default(); r];

    // Segment size for the in-warp reduction: the smallest power of two
    // holding one row's lanes (columns) — idle lanes carry zeros.
    let seg = r.min(ws).next_power_of_two();
    let rows_per_warp = (ws / seg).max(1);
    let warps_per_row = r.div_ceil(ws);

    let mut row = 0usize;
    while row < n {
        let rows_here = rows_per_warp.min(n - row);
        // Phase 1: SpMMV + recurrence, lanes in lockstep. Each lane
        // (wi, lane) owns (row + lane/seg, column chunk wi*ws + lane%seg).
        // acc[lane] per warp; several warps when R > warpSize.
        let mut warp_acc: Vec<Vec<Complex64>> = vec![vec![Complex64::default(); ws]; warps_per_row];
        // Lockstep over the *maximum* row length in the warp (the
        // divergence the occupancy module quantifies).
        let max_len = (row..row + rows_here)
            .map(|i| h.row_len(i))
            .max()
            .unwrap_or(0);
        for k in 0..max_len {
            for (wi, acc) in warp_acc.iter_mut().enumerate() {
                #[allow(clippy::needless_range_loop)] // lockstep lane loop
                for lane in 0..ws {
                    let local_row = lane / seg;
                    let col_idx = wi * ws + lane % seg;
                    if local_row >= rows_here || col_idx >= r {
                        continue; // idle lane
                    }
                    let rr = row + local_row;
                    if k >= h.row_len(rr) {
                        continue; // this row already done (divergent lane idles)
                    }
                    let hv = h.row_vals(rr)[k];
                    let c = h.row_cols(rr)[k] as usize;
                    acc[lane] = hv.mul_add(v.row(c)[col_idx], acc[lane]);
                }
            }
        }

        // Recurrence update + fused dot partials per lane.
        let mut even_warp = Warp::new(ws * warps_per_row);
        let mut odd_warp = Warp::new(ws * warps_per_row);
        for (wi, acc) in warp_acc.iter().enumerate() {
            #[allow(clippy::needless_range_loop)] // lockstep lane loop
            for lane in 0..ws {
                let local_row = lane / seg;
                let col_idx = wi * ws + lane % seg;
                if local_row >= rows_here || col_idx >= r {
                    continue;
                }
                let rr = row + local_row;
                let vr = v.row(rr)[col_idx];
                let wr = (acc[lane] - vr.scale(b)).scale(2.0 * a) - w.row(rr)[col_idx];
                w.row_mut(rr)[col_idx] = wr;
                even_warp.regs[wi * ws + lane] = Complex64::real(vr.norm_sqr());
                odd_warp.regs[wi * ws + lane] = wr.conj() * vr;
            }
        }

        // Phase 2 + 3: re-indexed warps reduce per (row, column): here
        // each column's η contribution is a single lane value (the dot
        // runs over *rows*, accumulated across row groups on the host —
        // CUB's role). The in-warp butterfly combines lanes of the SAME
        // column across the rows_here rows by re-indexing: lane order
        // (col-major within the warp).
        if rows_here > 1 && seg >= 1 {
            // Re-index: regs[col * rows_here + local_row].
            let mut even_re = Warp::new(ws * warps_per_row);
            let mut odd_re = Warp::new(ws * warps_per_row);
            let stride = rows_here.next_power_of_two();
            for lane in 0..ws {
                let local_row = lane / seg;
                let col_idx = lane % seg;
                if local_row >= rows_here || col_idx >= r {
                    continue;
                }
                even_re.regs[col_idx * stride + local_row] = even_warp.regs[lane];
                odd_re.regs[col_idx * stride + local_row] = odd_warp.regs[lane];
            }
            even_re.segmented_reduce(stride);
            odd_re.segmented_reduce(stride);
            for col_idx in 0..seg.min(r) {
                eta_even[col_idx] += even_re.regs[col_idx * stride].re;
                eta_odd[col_idx] += odd_re.regs[col_idx * stride];
            }
        } else {
            // One row per warp (R >= warpSize): lanes ARE the columns;
            // no in-warp reduction over rows needed, host accumulates.
            for (wi, _) in warp_acc.iter().enumerate() {
                for lane in 0..ws {
                    let col_idx = wi * ws + lane;
                    if col_idx >= r {
                        continue;
                    }
                    eta_even[col_idx] += even_warp.regs[wi * ws + lane].re;
                    eta_odd[col_idx] += odd_warp.regs[wi * ws + lane];
                }
            }
        }
        row += rows_here;
    }

    AugDotsBlock { eta_even, eta_odd }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::GpuDevice;
    use kpm_sparse::aug::aug_spmmv;
    use kpm_sparse::CooMatrix;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_hermitian(n: usize, seed: u64) -> CrsMatrix {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut coo = CooMatrix::new(n, n);
        for r in 0..n {
            coo.push(r, r, Complex64::real(rng.gen_range(-1.0..1.0)));
            for _ in 0..4 {
                let c = rng.gen_range(0..n);
                if c != r {
                    let v = Complex64::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0));
                    coo.push(r, c, v);
                    coo.push(c, r, v.conj());
                }
            }
        }
        coo.to_crs()
    }

    #[test]
    fn warp_executor_matches_cpu_kernel_for_all_widths() {
        let d = GpuDevice::k20m();
        let n = 97; // not a multiple of anything interesting
        let h = random_hermitian(n, 200);
        let mut rng = StdRng::seed_from_u64(201);
        for r in [1usize, 2, 4, 5, 8, 16, 32, 33, 64] {
            let v = BlockVector::random(n, r, &mut rng);
            let w0 = BlockVector::random(n, r, &mut rng);
            let mut w_cpu = w0.clone();
            let mut w_gpu = w0;
            let d_cpu = aug_spmmv(&h, 0.45, -0.08, &v, &mut w_cpu);
            let d_gpu = aug_spmmv_warp_exec(&d, &h, 0.45, -0.08, &v, &mut w_gpu);
            // Block updates are per-element: bit-identical.
            assert_eq!(w_cpu, w_gpu, "R={r}");
            // Dots differ only by reduction order.
            for j in 0..r {
                assert!(
                    (d_cpu.eta_even[j] - d_gpu.eta_even[j]).abs() < 1e-9,
                    "R={r} col {j}"
                );
                assert!(
                    d_cpu.eta_odd[j].approx_eq(d_gpu.eta_odd[j], 1e-9),
                    "R={r} col {j}"
                );
            }
        }
    }

    #[test]
    fn shfl_down_matches_manual_sum() {
        let mut w = Warp::new(8);
        for i in 0..8 {
            w.regs[i] = Complex64::real(i as f64 + 1.0);
        }
        w.segmented_reduce(8);
        assert!((w.regs[0].re - 36.0).abs() < 1e-12); // 1+..+8
    }

    #[test]
    fn segmented_reduce_respects_boundaries() {
        let mut w = Warp::new(8);
        for i in 0..8 {
            w.regs[i] = Complex64::real(1.0);
        }
        w.segmented_reduce(4);
        assert_eq!(w.regs[0].re, 4.0);
        assert_eq!(w.regs[4].re, 4.0);
    }

    #[test]
    fn shfl_down_add_reads_before_write() {
        let mut w = Warp::new(4);
        w.regs = vec![
            Complex64::real(1.0),
            Complex64::real(2.0),
            Complex64::real(3.0),
            Complex64::real(4.0),
        ];
        w.shfl_down_add(2);
        // Lane 0: 1+3, lane 1: 2+4, lane 2: 3+0, lane 3: 4+0.
        assert_eq!(w.regs[0].re, 4.0);
        assert_eq!(w.regs[1].re, 6.0);
        assert_eq!(w.regs[2].re, 3.0);
        assert_eq!(w.regs[3].re, 4.0);
    }

    #[test]
    fn divergent_row_lengths_handled() {
        // Rows of very different lengths sharing a warp (small R).
        let d = GpuDevice::k20m();
        let mut coo = CooMatrix::new(40, 40);
        for i in 0..40usize {
            coo.push(i, i, Complex64::real(1.0));
            if i % 3 == 0 {
                for k in 1..6usize {
                    let c = (i + k) % 40;
                    let v = Complex64::new(0.1, 0.2);
                    coo.push(i, c, v);
                    coo.push(c, i, v.conj());
                }
            }
        }
        let h = coo.to_crs();
        let mut rng = StdRng::seed_from_u64(203);
        let v = BlockVector::random(40, 2, &mut rng);
        let w0 = BlockVector::random(40, 2, &mut rng);
        let mut w_cpu = w0.clone();
        let mut w_gpu = w0;
        let d_cpu = aug_spmmv(&h, 1.0, 0.0, &v, &mut w_cpu);
        let d_gpu = aug_spmmv_warp_exec(&d, &h, 1.0, 0.0, &v, &mut w_gpu);
        assert_eq!(w_cpu, w_gpu);
        for j in 0..2 {
            assert!((d_cpu.eta_even[j] - d_gpu.eta_even[j]).abs() < 1e-10);
        }
    }
}
