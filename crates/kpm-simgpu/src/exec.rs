//! Warp-level execution trace of the SpMMV kernels (paper Fig. 6).
//!
//! The thread mapping follows the paper: warps are arranged along block
//! vector rows, so for each matrix element the value is broadcast to the
//! `R` threads covering that row's right-hand sides while the vector
//! data itself is loaded coalesced. The simulator replays this stream
//! row by row — the order in which thread blocks drain on the device.

use kpm_num::accounting::{F_A, F_M, S_D, S_I};
use kpm_sparse::CrsMatrix;

use crate::device::{GpuDevice, GpuKernel};
use crate::memory::{GpuMemory, GpuTraffic};
use crate::timing::{evaluate, Timing};

/// Result of one simulated kernel launch (one blocked sweep).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GpuRunReport {
    /// Block vector width.
    pub r: usize,
    /// Which kernel ran.
    pub kernel: GpuKernel,
    /// Per-level traffic.
    pub traffic: GpuTraffic,
    /// Flops of the sweep.
    pub flops: u64,
    /// Run time and per-level bandwidths.
    pub timing: Timing,
}

impl GpuRunReport {
    /// Sustained performance in Gflop/s.
    pub fn gflops(&self) -> f64 {
        self.flops as f64 / self.timing.seconds / 1e9
    }
}

/// Flop count of one sweep of `kernel` at block width `r`.
///
/// The fully augmented kernel executes the paper's per-iteration count
/// `R·[Nnz(Fa+Fm) + N(7Fa/2 + 9Fm/2)]`; the no-dot variant drops the two
/// fused scalar products (2 complex FMAs per row and vector); the plain
/// kernel performs only the sparse inner products.
pub fn kernel_flops(kernel: GpuKernel, n: usize, nnz: usize, r: usize) -> u64 {
    let spmmv = nnz * (F_A + F_M);
    let full_vector_term = n * (7 * F_A / 2 + 9 * F_M / 2); // shift+scale+recurrence+dots
    let dots_term = n * 2 * (F_A + F_M); // eta_even + eta_odd FMAs
    let per_vector = match kernel {
        GpuKernel::PlainSpmmv => spmmv,
        GpuKernel::AugNoDot => spmmv + full_vector_term - dots_term,
        GpuKernel::AugFull => spmmv + full_vector_term,
    };
    (r * per_vector) as u64
}

/// Simulates one launch of `kernel` over `h` at block width `r` on
/// `device`, returning traffic, timing and performance.
pub fn simulate(device: &GpuDevice, h: &CrsMatrix, r: usize, kernel: GpuKernel) -> GpuRunReport {
    assert!(r >= 1, "block width must be >= 1");
    assert_eq!(h.nrows(), h.ncols(), "square matrices only");
    let n = h.nrows() as u64;
    let nnz = h.nnz() as u64;
    let sd = S_D as u64;
    let si = S_I as u64;
    let row_bytes = (r as u64) * sd;

    // Disjoint device-memory regions, as cudaMalloc would lay them out.
    let vals_base = 0u64;
    let cols_base = vals_base + nnz * sd;
    let v_base = cols_base + nnz * si;
    let w_base = v_base + n * row_bytes;

    let mut mem = GpuMemory::new(device.tex, device.l2);
    let fanout = device.threads_per_row(r);

    let mut k = 0u64;
    for row in 0..h.nrows() {
        for &c in h.row_cols(row) {
            // Matrix value and column index broadcast through the
            // read-only cache to all R threads of the row (paper
            // Section V-B item 2).
            mem.read_const(vals_base + k * sd, S_D, fanout);
            mem.read_const(cols_base + k * si, S_I, fanout);
            k += 1;
            // Coalesced load of the interleaved RHS row (each thread
            // reads its own column: fan-out 1).
            mem.read_const(v_base + c as u64 * row_bytes, row_bytes as usize, 1);
        }
        match kernel {
            GpuKernel::PlainSpmmv => {
                // y is write-only.
                mem.write_global(w_base + row as u64 * row_bytes, row_bytes as usize);
            }
            GpuKernel::AugNoDot | GpuKernel::AugFull => {
                // Shift re-reads the own V row (usually TEX-hot), then
                // the recurrence reads and overwrites the W row.
                mem.read_const(v_base + row as u64 * row_bytes, row_bytes as usize, 1);
                mem.read_global(w_base + row as u64 * row_bytes, row_bytes as usize);
                mem.write_global(w_base + row as u64 * row_bytes, row_bytes as usize);
                // The fused dot products (AugFull) use register data and
                // warp shuffles: no additional memory traffic.
            }
        }
    }

    let traffic = mem.finish();
    let flops = kernel_flops(kernel, h.nrows(), h.nnz(), r);
    let timing = evaluate(device, kernel, traffic);
    GpuRunReport {
        r,
        kernel,
        traffic,
        flops,
        timing,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kpm_topo::TopoHamiltonian;

    fn matrix() -> CrsMatrix {
        TopoHamiltonian::clean(16, 16, 8).assemble()
    }

    #[test]
    fn tex_delivered_bytes_scale_linearly_with_r() {
        // Paper Fig. 9: the texture-path volume grows linearly in R
        // because matrix data is broadcast to R threads per row.
        let d = GpuDevice::k20m();
        let h = matrix();
        let v8 = simulate(&d, &h, 8, GpuKernel::PlainSpmmv).traffic.tex_bytes;
        let v32 = simulate(&d, &h, 32, GpuKernel::PlainSpmmv)
            .traffic
            .tex_bytes;
        let ratio = v32 as f64 / v8 as f64;
        assert!((ratio - 4.0).abs() < 0.35, "ratio = {ratio}");
    }

    #[test]
    fn dram_volume_per_vector_decreases_with_r() {
        // Matrix traffic amortizes over the block: DRAM bytes / R falls.
        let d = GpuDevice::k20m();
        let h = matrix();
        let per_vec = |r: usize| {
            simulate(&d, &h, r, GpuKernel::AugFull).traffic.dram_bytes() as f64 / r as f64
        };
        assert!(per_vec(16) < per_vec(4));
        assert!(per_vec(4) < per_vec(1));
    }

    #[test]
    fn l2_volume_at_least_dram_volume() {
        let d = GpuDevice::k20m();
        let h = matrix();
        for r in [1, 8, 32] {
            let t = simulate(&d, &h, r, GpuKernel::AugNoDot).traffic;
            assert!(t.l2_bytes >= t.dram_read, "R={r}");
        }
    }

    #[test]
    fn bottleneck_shifts_from_dram_to_cache_with_growing_r() {
        // Paper Fig. 10 (a)/(b): memory bound at R = 1, cache bound at
        // large R.
        let d = GpuDevice::k20m();
        let h = matrix();
        let small = simulate(&d, &h, 1, GpuKernel::AugNoDot);
        let large = simulate(&d, &h, 32, GpuKernel::AugNoDot);
        use crate::timing::Bottleneck;
        assert_eq!(small.timing.bottleneck, Bottleneck::Dram, "{small:?}");
        assert_ne!(large.timing.bottleneck, Bottleneck::Dram, "{large:?}");
    }

    #[test]
    fn fused_kernel_is_slower_but_beats_separate_dots() {
        // Fig. 10 (c): all bandwidths lower for the fused kernel — but
        // the fused version still beats NoDot plus two extra block
        // sweeps for the dots (the alternative implementation).
        let d = GpuDevice::k20m();
        let h = matrix();
        let r = 32;
        let nodot = simulate(&d, &h, r, GpuKernel::AugNoDot);
        let full = simulate(&d, &h, r, GpuKernel::AugFull);
        assert!(full.timing.seconds > nodot.timing.seconds);
        // Separate dots: two more kernels, each streaming both blocks.
        // Those dot kernels pay the same shuffle-reduction latency as
        // the fused one, so they run at the latency-deflated DRAM
        // ceiling, not at streaming speed.
        let extra_bytes = 4.0 * (h.nrows() * r * 16) as f64;
        let separate = nodot.timing.seconds + extra_bytes / (d.fused_ceilings.dram_gbs * 1e9);
        assert!(
            full.timing.seconds < separate,
            "fused {} vs separate {}",
            full.timing.seconds,
            separate
        );
    }

    #[test]
    fn gflops_sane_range_at_r32() {
        // Calibration check: full aug_spmmv at R=32 on K20m should land
        // in the paper's ballpark (tens of Gflop/s, far below peak).
        let d = GpuDevice::k20m();
        let h = matrix();
        let rep = simulate(&d, &h, 32, GpuKernel::AugFull);
        let g = rep.gflops();
        assert!(g > 20.0 && g < 200.0, "gflops = {g}");
    }

    #[test]
    fn flop_accounting_matches_paper_for_full_kernel() {
        let n = 1000;
        let nnz = 13 * n;
        let r = 8;
        assert_eq!(
            kernel_flops(GpuKernel::AugFull, n, nnz, r) as usize,
            kpm_num::accounting::aug_spmmv_flops(n, nnz, r)
        );
        // Plain < NoDot < Full.
        assert!(
            kernel_flops(GpuKernel::PlainSpmmv, n, nnz, r)
                < kernel_flops(GpuKernel::AugNoDot, n, nnz, r)
        );
        assert!(
            kernel_flops(GpuKernel::AugNoDot, n, nnz, r)
                < kernel_flops(GpuKernel::AugFull, n, nnz, r)
        );
    }
}
