//! Kepler-class GPU device model.

use kpm_perfmodel::cachesim::CacheConfig;
use kpm_perfmodel::machine::{Machine, K20M, K20X};

/// Which kernel of paper Fig. 10 runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GpuKernel {
    /// Panel (a): plain SpMMV (`y = A x`, no shift/scale/dots).
    PlainSpmmv,
    /// Panel (b): augmented SpMMV without on-the-fly dot products.
    AugNoDot,
    /// Panel (c): the fully augmented kernel with fused dot products
    /// (warp-shuffle reductions) — instruction latency becomes the
    /// bottleneck.
    AugFull,
}

/// Achievable-bandwidth ceilings of one kernel class on one device, in
/// GB/s. These play the role of the measured saturation levels in paper
/// Fig. 10: the simulator derives *volumes* from the access trace and
/// geometry, while the attainable throughput per memory level is a
/// device/kernel property calibrated once against the paper.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BandwidthCeilings {
    /// DRAM ceiling.
    pub dram_gbs: f64,
    /// L2 ceiling.
    pub l2_gbs: f64,
    /// Texture / read-only data cache ceiling (delivered bytes).
    pub tex_gbs: f64,
}

/// A Kepler-class GPU.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GpuDevice {
    /// Table II entry this device corresponds to.
    pub machine: Machine,
    /// Threads per warp (32 on all modern NVIDIA parts).
    pub warp_size: usize,
    /// Maximum (and used) thread block size.
    pub block_dim: usize,
    /// Shared L2 cache geometry.
    pub l2: CacheConfig,
    /// Per-SMX read-only (texture) cache geometry.
    pub tex: CacheConfig,
    /// Ceilings for the streaming kernels (panels a and b).
    pub streaming_ceilings: BandwidthCeilings,
    /// Ceilings for the fused-dot kernel (panel c) — lower across the
    /// board because warp-shuffle reduction chains serialize issue.
    pub fused_ceilings: BandwidthCeilings,
}

/// GPU cache line / transaction granularity used by the simulator.
/// Kepler's L2 uses 128-byte lines (TEX sectors are 32 B; modelling both
/// at 128 B granularity slightly overestimates TEX volume at tiny R,
/// which is irrelevant for the studied R range).
pub const GPU_LINE_BYTES: usize = 128;

impl GpuDevice {
    /// NVIDIA Tesla K20m (ECC disabled), the node-level benchmark GPU.
    pub fn k20m() -> Self {
        Self::kepler(K20M)
    }

    /// NVIDIA Tesla K20X (ECC enabled), the Piz Daint GPU.
    pub fn k20x() -> Self {
        Self::kepler(K20X)
    }

    fn kepler(machine: Machine) -> Self {
        let bw = machine.mem_bw_gbs;
        Self {
            machine,
            warp_size: 32,
            block_dim: 1024,
            l2: CacheConfig {
                capacity_bytes: machine.llc_bytes(),
                line_bytes: GPU_LINE_BYTES,
                ways: 16,
            },
            tex: CacheConfig {
                // One SMX's view: 48 KiB, 4-way class geometry.
                capacity_bytes: 48 * 1024,
                line_bytes: GPU_LINE_BYTES,
                ways: 4,
            },
            // Streaming kernels draw full DRAM bandwidth at R = 1 and
            // saturate L2/TEX at roughly 4x/6x DRAM for larger R
            // (paper Fig. 10 a, b).
            streaming_ceilings: BandwidthCeilings {
                dram_gbs: bw,
                l2_gbs: 4.0 * bw,
                tex_gbs: 4.5 * bw,
            },
            // The fused kernel is latency-limited: all levels run at a
            // substantially lower level (paper Fig. 10 c). The factors
            // are calibrated so the full aug_spmmv lands at the paper's
            // ~60 Gflop/s per K20 at R = 32.
            fused_ceilings: BandwidthCeilings {
                dram_gbs: 0.33 * bw,
                l2_gbs: 0.82 * bw,
                tex_gbs: 1.75 * bw,
            },
        }
    }

    /// The ceilings that apply to `kernel`.
    pub fn ceilings(&self, kernel: GpuKernel) -> BandwidthCeilings {
        match kernel {
            GpuKernel::PlainSpmmv | GpuKernel::AugNoDot => self.streaming_ceilings,
            GpuKernel::AugFull => self.fused_ceilings,
        }
    }

    /// How many threads serve one matrix row at block width `r`: one
    /// per right-hand-side column (paper Fig. 6: warps are arranged
    /// along block vector rows).
    pub fn threads_per_row(&self, r: usize) -> usize {
        r
    }

    /// Number of warps that cooperate on one row (`ceil(R/32)`); for
    /// `R < 32` a warp spans several rows instead.
    pub fn warps_per_row(&self, r: usize) -> usize {
        r.div_ceil(self.warp_size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn k20m_matches_table_ii() {
        let d = GpuDevice::k20m();
        assert_eq!(d.machine.name, "K20m");
        assert_eq!(d.machine.cores, 13);
        assert_eq!(d.l2.capacity_bytes, 5 * 1024 * 1024 / 4); // 1.25 MiB
        assert_eq!(d.warp_size, 32);
        assert_eq!(d.block_dim, 1024);
    }

    #[test]
    fn ceilings_ordered_dram_l2_tex() {
        for d in [GpuDevice::k20m(), GpuDevice::k20x()] {
            for k in [
                GpuKernel::PlainSpmmv,
                GpuKernel::AugNoDot,
                GpuKernel::AugFull,
            ] {
                let c = d.ceilings(k);
                assert!(c.dram_gbs < c.l2_gbs && c.l2_gbs < c.tex_gbs);
            }
        }
    }

    #[test]
    fn fused_ceilings_below_streaming() {
        let d = GpuDevice::k20m();
        let s = d.ceilings(GpuKernel::AugNoDot);
        let f = d.ceilings(GpuKernel::AugFull);
        assert!(f.dram_gbs < s.dram_gbs);
        assert!(f.l2_gbs < s.l2_gbs);
        assert!(f.tex_gbs < s.tex_gbs);
    }

    #[test]
    fn streaming_dram_ceiling_is_attainable_bandwidth() {
        assert_eq!(
            GpuDevice::k20m().ceilings(GpuKernel::PlainSpmmv).dram_gbs,
            150.0
        );
        assert_eq!(
            GpuDevice::k20x().ceilings(GpuKernel::PlainSpmmv).dram_gbs,
            170.0
        );
    }

    #[test]
    fn warp_coverage() {
        let d = GpuDevice::k20m();
        assert_eq!(d.warps_per_row(1), 1);
        assert_eq!(d.warps_per_row(32), 1);
        assert_eq!(d.warps_per_row(33), 2);
        assert_eq!(d.warps_per_row(64), 2);
    }
}
