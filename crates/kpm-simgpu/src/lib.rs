//! SIMT GPU simulator for the augmented SpMMV kernels.
//!
//! The paper implements `aug_spmmv()` in CUDA on Kepler GPUs (paper
//! Section IV-C, Fig. 6) and characterizes it with nvprof (Figs. 9, 10).
//! No CUDA hardware or toolchain is available to this reproduction, so
//! this crate substitutes a *trace-driven simulator*:
//!
//! * [`device`] — the Kepler-class device model (warp size 32, SMX
//!   count, 48 KiB read-only/texture cache per SMX, shared L2, DRAM),
//!   with per-kernel achievable-bandwidth ceilings calibrated against
//!   the paper's measured saturation levels,
//! * [`memory`] — the two-path GPU memory system: `const __restrict__`
//!   loads travel TEX → L2 → DRAM, other global accesses L2 → DRAM;
//!   volumes are counted per level exactly where nvprof counts them,
//! * [`exec`] — replays the warp-level access stream of the three
//!   kernels of paper Fig. 10 (plain SpMMV, augmented without on-the-fly
//!   dots, fully augmented) over a real sparse matrix,
//! * [`timing`] — converts per-level volumes into run time, per-level
//!   bandwidths (Fig. 10), and Gflop/s (Fig. 11's GPU bars),
//! * [`occupancy`] — static warp-mapping analysis (lane utilization,
//!   coalescing, lockstep divergence) of the Fig. 6 thread layout,
//! * [`warp_exec`] — a *functional* SIMT executor: computes the kernel
//!   with real warp lockstep and shuffle-reduction semantics and is
//!   validated against the CPU kernels.
//!
//! What this simulator preserves from the real hardware: the per-level
//! data volumes (a property of the access stream and cache geometry,
//! not of the silicon), the bottleneck shift from DRAM to cache levels
//! with growing block width, and the latency penalty of the fused dot
//! products. What it replaces with calibration: absolute bandwidth
//! ceilings per kernel class.

pub mod device;
pub mod exec;
pub mod memory;
pub mod occupancy;
pub mod timing;
pub mod warp_exec;

pub use device::{GpuDevice, GpuKernel};
pub use exec::{simulate, GpuRunReport};
pub use memory::GpuMemory;
