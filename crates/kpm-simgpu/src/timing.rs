//! Timing model: volumes → run time → bandwidths and Gflop/s.
//!
//! The run time of a launch is determined by its most loaded memory
//! level: `t = max_level (V_level / ceiling_level)`. The resulting
//! per-level bandwidths `V_level / t` are exactly what paper Fig. 10
//! plots — the binding level runs at its ceiling, all others below.

use crate::device::{GpuDevice, GpuKernel};
use crate::memory::GpuTraffic;

/// Which memory level bound the launch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Bottleneck {
    /// DRAM interface saturated.
    Dram,
    /// L2 interface saturated.
    L2,
    /// Texture/read-only path saturated (or, for the fused kernel,
    /// the latency-deflated TEX ceiling — the paper's "latency"
    /// bottleneck manifests on the most loaded port).
    Tex,
}

/// Time and achieved bandwidths of one launch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Timing {
    /// Run time in seconds.
    pub seconds: f64,
    /// Achieved DRAM bandwidth in GB/s.
    pub dram_gbs: f64,
    /// Achieved L2 bandwidth in GB/s.
    pub l2_gbs: f64,
    /// Achieved TEX bandwidth in GB/s.
    pub tex_gbs: f64,
    /// The level that set the run time.
    pub bottleneck: Bottleneck,
}

/// Evaluates the timing model for one launch.
pub fn evaluate(device: &GpuDevice, kernel: GpuKernel, traffic: GpuTraffic) -> Timing {
    let c = device.ceilings(kernel);
    let t_dram = traffic.dram_bytes() as f64 / (c.dram_gbs * 1e9);
    let t_l2 = traffic.l2_bytes as f64 / (c.l2_gbs * 1e9);
    let t_tex = traffic.tex_bytes as f64 / (c.tex_gbs * 1e9);
    let (seconds, bottleneck) = [
        (t_dram, Bottleneck::Dram),
        (t_l2, Bottleneck::L2),
        (t_tex, Bottleneck::Tex),
    ]
    .into_iter()
    .max_by(|a, b| a.0.total_cmp(&b.0))
    .unwrap_or((t_dram, Bottleneck::Dram));
    assert!(seconds > 0.0, "empty launch");
    Timing {
        seconds,
        dram_gbs: traffic.dram_bytes() as f64 / seconds / 1e9,
        l2_gbs: traffic.l2_bytes as f64 / seconds / 1e9,
        tex_gbs: traffic.tex_bytes as f64 / seconds / 1e9,
        bottleneck,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn traffic(dram: u64, l2: u64, tex: u64) -> GpuTraffic {
        GpuTraffic {
            tex_bytes: tex,
            l2_bytes: l2,
            dram_read: dram,
            dram_write: 0,
        }
    }

    #[test]
    fn dram_heavy_launch_is_dram_bound_at_ceiling() {
        let d = GpuDevice::k20m();
        let t = evaluate(&d, GpuKernel::PlainSpmmv, traffic(150_000_000_000, 1, 1));
        assert_eq!(t.bottleneck, Bottleneck::Dram);
        assert!((t.seconds - 1.0).abs() < 1e-9);
        assert!((t.dram_gbs - 150.0).abs() < 1e-9);
    }

    #[test]
    fn tex_heavy_launch_is_tex_bound() {
        let d = GpuDevice::k20m();
        let t = evaluate(&d, GpuKernel::AugNoDot, traffic(1, 1, 900_000_000_000));
        assert_eq!(t.bottleneck, Bottleneck::Tex);
        assert!((t.tex_gbs - d.streaming_ceilings.tex_gbs).abs() < 1e-6);
    }

    #[test]
    fn non_binding_levels_run_below_their_ceilings() {
        let d = GpuDevice::k20m();
        let t = evaluate(
            &d,
            GpuKernel::AugNoDot,
            traffic(100_000_000_000, 200_000_000_000, 100_000_000_000),
        );
        let c = d.ceilings(GpuKernel::AugNoDot);
        assert!(t.dram_gbs <= c.dram_gbs + 1e-6);
        assert!(t.l2_gbs <= c.l2_gbs + 1e-6);
        assert!(t.tex_gbs <= c.tex_gbs + 1e-6);
    }

    #[test]
    fn fused_kernel_same_traffic_takes_longer() {
        let d = GpuDevice::k20m();
        let tr = traffic(10_000_000_000, 20_000_000_000, 30_000_000_000);
        let s = evaluate(&d, GpuKernel::AugNoDot, tr);
        let f = evaluate(&d, GpuKernel::AugFull, tr);
        assert!(f.seconds > s.seconds);
    }
}
