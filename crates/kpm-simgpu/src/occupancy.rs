//! Warp-mapping and occupancy analysis (paper Fig. 6 and Section IV-C).
//!
//! The augmented SpMMV kernel arranges warps *along block-vector rows*:
//! each thread owns one (row, column) pair of the output block. This
//! module computes the static efficiency properties of that mapping —
//! lane utilization, coalescing of the right-hand-side loads, and the
//! lockstep divergence caused by unequal row lengths — the quantities
//! behind the paper's statement that the implementation "is optimized
//! towards relatively large vector blocks (R ≳ 8)" and that "perfectly
//! coalesced access can only be achieved for block vector widths which
//! are at least as large as the warp size."

use kpm_sparse::CrsMatrix;

use crate::device::GpuDevice;

/// Static mapping properties of the Fig. 6 kernel at block width `r`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WarpMapping {
    /// Block width R.
    pub r: usize,
    /// Matrix rows covered by one warp (≥ 1; 1 when R ≥ warpSize).
    pub rows_per_warp: usize,
    /// Warps needed per row (≥ 1; 1 when R ≤ warpSize).
    pub warps_per_row: usize,
    /// Fraction of warp lanes doing useful work.
    pub lane_utilization: f64,
    /// Fraction of the bytes moved by RHS gather transactions that the
    /// kernel actually uses (32-byte transaction granularity).
    pub coalescing_efficiency: f64,
    /// Matrix rows processed by one 1024-thread block.
    pub rows_per_block: usize,
}

/// Computes the warp mapping for block width `r` on `device`.
pub fn warp_mapping(device: &GpuDevice, r: usize) -> WarpMapping {
    assert!(r >= 1, "block width must be positive");
    let w = device.warp_size;
    let (rows_per_warp, warps_per_row, active_lanes) = if r >= w {
        // R >= 32: each row spans ceil(R/32) warps; the last warp of a
        // row may be partially filled.
        let wpr = r.div_ceil(w);
        let active = r; // lanes doing work across the wpr warps
        (1, wpr, active as f64 / (wpr * w) as f64)
    } else {
        // R < 32: one warp covers floor(32/R) rows; leftover lanes idle.
        let rpw = w / r;
        (rpw, 1, (rpw * r) as f64 / w as f64)
    };
    // RHS gather: each row's load touches a contiguous segment of
    // R * 16 bytes; transactions are 32-byte sectors.
    let seg = r * 16;
    let sectors = seg.div_ceil(32);
    let coalescing = seg as f64 / (sectors * 32) as f64;
    WarpMapping {
        r,
        rows_per_warp,
        warps_per_row,
        lane_utilization: active_lanes,
        coalescing_efficiency: coalescing,
        rows_per_block: (device.block_dim / w) * rows_per_warp / warps_per_row.max(1),
    }
}

/// Lockstep divergence of the SpMMV inner loop: rows sharing a warp
/// advance together over the *longest* row, so short rows idle. Returns
/// the average fraction of useful lockstep steps over the whole matrix
/// (1.0 = no divergence; equals SELL-C-β with C = rows_per_warp).
pub fn warp_divergence_efficiency(device: &GpuDevice, h: &CrsMatrix, r: usize) -> f64 {
    let mapping = warp_mapping(device, r);
    let c = mapping.rows_per_warp;
    if c <= 1 {
        return 1.0;
    }
    let mut useful = 0u64;
    let mut total = 0u64;
    let mut row = 0;
    while row < h.nrows() {
        let hi = (row + c).min(h.nrows());
        let max_len = (row..hi).map(|i| h.row_len(i)).max().unwrap_or(0) as u64;
        let sum_len: u64 = (row..hi).map(|i| h.row_len(i) as u64).sum();
        useful += sum_len;
        total += max_len * (hi - row) as u64;
        row = hi;
    }
    if total == 0 {
        1.0
    } else {
        useful as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::GpuDevice;
    use kpm_num::Complex64;
    use kpm_sparse::CooMatrix;

    #[test]
    fn r32_is_the_sweet_spot() {
        let d = GpuDevice::k20m();
        let m = warp_mapping(&d, 32);
        assert_eq!(m.rows_per_warp, 1);
        assert_eq!(m.warps_per_row, 1);
        assert_eq!(m.lane_utilization, 1.0);
        assert_eq!(m.coalescing_efficiency, 1.0);
    }

    #[test]
    fn small_r_wastes_lanes_only_if_not_dividing_32() {
        let d = GpuDevice::k20m();
        for r in [1usize, 2, 4, 8, 16] {
            let m = warp_mapping(&d, r);
            assert_eq!(m.rows_per_warp, 32 / r);
            assert_eq!(m.lane_utilization, 1.0, "r={r} divides 32");
        }
        let m5 = warp_mapping(&d, 5);
        assert_eq!(m5.rows_per_warp, 6);
        assert!((m5.lane_utilization - 30.0 / 32.0).abs() < 1e-12);
    }

    #[test]
    fn coalescing_imperfect_below_two_columns() {
        let d = GpuDevice::k20m();
        // R = 1: 16-byte segments in 32-byte sectors -> 50%.
        assert!((warp_mapping(&d, 1).coalescing_efficiency - 0.5).abs() < 1e-12);
        // R = 2: exactly one sector -> 100%.
        assert_eq!(warp_mapping(&d, 2).coalescing_efficiency, 1.0);
        // R = 3: 48 bytes in 2 sectors -> 75%.
        assert!((warp_mapping(&d, 3).coalescing_efficiency - 0.75).abs() < 1e-12);
    }

    #[test]
    fn r_above_warp_size_needs_multiple_warps() {
        let d = GpuDevice::k20m();
        let m = warp_mapping(&d, 64);
        assert_eq!(m.warps_per_row, 2);
        assert_eq!(m.lane_utilization, 1.0);
        let m48 = warp_mapping(&d, 48);
        assert_eq!(m48.warps_per_row, 2);
        assert!((m48.lane_utilization - 48.0 / 64.0).abs() < 1e-12);
    }

    #[test]
    fn uniform_rows_have_no_divergence() {
        let d = GpuDevice::k20m();
        // All rows length 2.
        let mut coo = CooMatrix::new(64, 64);
        for i in 0..64usize {
            coo.push(i, i, Complex64::real(1.0));
            coo.push(i, (i + 1) % 64, Complex64::real(1.0));
        }
        let h = coo.to_crs();
        for r in [1usize, 4, 16] {
            assert_eq!(warp_divergence_efficiency(&d, &h, r), 1.0, "r={r}");
        }
    }

    #[test]
    fn ragged_rows_diverge_at_small_r_only() {
        let d = GpuDevice::k20m();
        // Alternating row lengths 1 and 5.
        let mut coo = CooMatrix::new(64, 64);
        for i in 0..64usize {
            coo.push(i, i, Complex64::real(1.0));
            if i % 2 == 1 {
                for k in 1..5usize {
                    coo.push(i, (i + k) % 64, Complex64::real(1.0));
                }
            }
        }
        let h = coo.to_crs();
        // R = 32: one row per warp, no lockstep partner -> no divergence.
        assert_eq!(warp_divergence_efficiency(&d, &h, 32), 1.0);
        // R = 1: 32 rows share a warp, lockstep over the longest -> 60%.
        let e = warp_divergence_efficiency(&d, &h, 1);
        assert!((e - 0.6).abs() < 1e-12, "e = {e}");
    }
}
