//! The two-path GPU memory system.
//!
//! Kepler routes `const __restrict__` loads through the per-SMX
//! read-only (texture) cache with relaxed coalescing rules; all other
//! global accesses go straight to L2 (paper Section V-B). The simulator
//! therefore exposes two access paths:
//!
//! * [`GpuMemory::read_const`] — TEX → L2 → DRAM, with a *fan-out*
//!   parameter counting how many threads receive the loaded value.
//!   Delivered bytes (`value size × fan-out`) is what saturates the TEX
//!   port and is the quantity that "scales linearly with R" in paper
//!   Fig. 9.
//! * [`GpuMemory::read_global`] / [`GpuMemory::write_global`] —
//!   L2 → DRAM with write-allocate/write-back.

use kpm_perfmodel::cachesim::{CacheConfig, CacheLevel, Probe};

use crate::device::GPU_LINE_BYTES;

/// Per-level traffic of one simulated kernel launch.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct GpuTraffic {
    /// Bytes delivered by the read-only (texture) path to threads.
    pub tex_bytes: u64,
    /// Bytes transacted at the L2 interface (TEX refills + global
    /// accesses, line granularity).
    pub l2_bytes: u64,
    /// Bytes read from DRAM.
    pub dram_read: u64,
    /// Bytes written back to DRAM.
    pub dram_write: u64,
}

impl GpuTraffic {
    /// Total DRAM traffic.
    pub fn dram_bytes(&self) -> u64 {
        self.dram_read + self.dram_write
    }
}

/// The simulated memory system of one GPU.
#[derive(Debug, Clone)]
pub struct GpuMemory {
    tex: CacheLevel,
    l2: CacheLevel,
    traffic: GpuTraffic,
}

impl GpuMemory {
    /// Creates a cold memory system with the given cache geometries.
    pub fn new(tex: CacheConfig, l2: CacheConfig) -> Self {
        assert_eq!(
            tex.line_bytes, GPU_LINE_BYTES,
            "TEX line size fixed at 128 B"
        );
        assert_eq!(l2.line_bytes, GPU_LINE_BYTES, "L2 line size fixed at 128 B");
        Self {
            tex: CacheLevel::new(tex),
            l2: CacheLevel::new(l2),
            traffic: GpuTraffic::default(),
        }
    }

    /// Read-only-path load of `size` bytes at `addr`, broadcast to
    /// `fanout` threads.
    pub fn read_const(&mut self, addr: u64, size: usize, fanout: usize) {
        self.traffic.tex_bytes += (size * fanout) as u64;
        let line = GPU_LINE_BYTES as u64;
        let first = addr / line;
        let last = (addr + size as u64 - 1) / line;
        for l in first..=last {
            if let Probe::Miss { .. } = self.tex.access_line(l, false) {
                // TEX is a read-only cache: misses refill from L2, no
                // write-backs on this path.
                self.l2_line(l, false);
            }
        }
    }

    /// Global-path read (bypasses TEX).
    pub fn read_global(&mut self, addr: u64, size: usize) {
        self.for_lines(addr, size, |mem, l| mem.l2_line(l, false));
    }

    /// Global-path write (write-allocate, write-back).
    pub fn write_global(&mut self, addr: u64, size: usize) {
        self.for_lines(addr, size, |mem, l| mem.l2_line(l, true));
    }

    fn for_lines(&mut self, addr: u64, size: usize, mut f: impl FnMut(&mut Self, u64)) {
        let line = GPU_LINE_BYTES as u64;
        let first = addr / line;
        let last = (addr + size as u64 - 1) / line;
        for l in first..=last {
            f(self, l);
        }
    }

    fn l2_line(&mut self, line_index: u64, write: bool) {
        let line = GPU_LINE_BYTES as u64;
        self.traffic.l2_bytes += line;
        match self.l2.access_line(line_index, write) {
            Probe::Hit => {}
            Probe::Miss { victim_dirty } => {
                self.traffic.dram_read += line;
                if victim_dirty {
                    self.traffic.dram_write += line;
                }
            }
        }
    }

    /// Flushes dirty L2 lines (end-of-kernel) and returns the traffic.
    pub fn finish(mut self) -> GpuTraffic {
        self.traffic.dram_write += self.l2.flush_dirty_count() * GPU_LINE_BYTES as u64;
        self.traffic
    }

    /// Traffic so far, without flushing.
    pub fn traffic(&self) -> GpuTraffic {
        self.traffic
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small(capacity: usize) -> CacheConfig {
        CacheConfig {
            capacity_bytes: capacity,
            line_bytes: GPU_LINE_BYTES,
            ways: 4,
        }
    }

    fn mem() -> GpuMemory {
        GpuMemory::new(small(4 * 1024), small(64 * 1024))
    }

    #[test]
    fn const_fanout_counts_delivered_bytes() {
        let mut m = mem();
        m.read_const(0, 16, 32); // one element broadcast to a warp
        assert_eq!(m.traffic().tex_bytes, 512);
        // One line fetched through L2 from DRAM.
        assert_eq!(m.traffic().l2_bytes, 128);
        assert_eq!(m.traffic().dram_read, 128);
    }

    #[test]
    fn tex_hit_does_not_touch_l2() {
        let mut m = mem();
        m.read_const(0, 16, 1);
        let l2_before = m.traffic().l2_bytes;
        m.read_const(0, 16, 1); // same line: TEX hit
        assert_eq!(m.traffic().l2_bytes, l2_before);
        assert_eq!(m.traffic().tex_bytes, 32);
    }

    #[test]
    fn global_write_back_reaches_dram_on_eviction_or_flush() {
        let mut m = mem();
        m.write_global(0, 128);
        assert_eq!(m.traffic().dram_write, 0); // still cached dirty
        let t = m.finish();
        assert_eq!(t.dram_write, 128);
        assert_eq!(t.dram_read, 128); // write-allocate fill
    }

    #[test]
    fn global_reads_bypass_tex() {
        let mut m = mem();
        m.read_global(0, 128);
        m.read_const(0, 16, 1);
        // The const read misses TEX (line not there) even though L2 has
        // it: L2 serves the refill without DRAM traffic.
        let t = m.traffic();
        assert_eq!(t.dram_read, 128);
        assert_eq!(t.l2_bytes, 256);
    }

    #[test]
    fn l2_capacity_limits_reuse() {
        let mut m = mem(); // 64 KiB L2 = 512 lines
        for i in 0..1024u64 {
            m.read_global(i * 128, 128);
        }
        // Second pass: working set (128 KiB) exceeds L2, all miss again.
        for i in 0..1024u64 {
            m.read_global(i * 128, 128);
        }
        assert_eq!(m.traffic().dram_read, 2 * 1024 * 128);
    }
}
