//! BLAS-1 kernel benchmarks: the building blocks of the naive solver
//! (paper Fig. 3). Serial vs rayon-parallel.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use kpm_num::vector::{axpy, axpy_par, dot, dot_par, nrm2, scal};
use kpm_num::{Complex64, Vector};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_blas1(c: &mut Criterion) {
    let n = 1 << 18;
    let mut rng = StdRng::seed_from_u64(1);
    let x = Vector::random(n, &mut rng).into_vec();
    let mut y = Vector::random(n, &mut rng).into_vec();
    let a = Complex64::new(0.5, -0.25);

    let mut g = c.benchmark_group("blas1");
    g.throughput(Throughput::Bytes((n * 16) as u64));
    g.bench_function(BenchmarkId::new("axpy", n), |b| {
        b.iter(|| axpy(a, &x, &mut y))
    });
    g.bench_function(BenchmarkId::new("axpy_par", n), |b| {
        b.iter(|| axpy_par(a, &x, &mut y))
    });
    g.bench_function(BenchmarkId::new("scal", n), |b| b.iter(|| scal(a, &mut y)));
    g.bench_function(BenchmarkId::new("nrm2", n), |b| b.iter(|| nrm2(&x)));
    g.bench_function(BenchmarkId::new("dot", n), |b| b.iter(|| dot(&x, &y)));
    g.bench_function(BenchmarkId::new("dot_par", n), |b| {
        b.iter(|| dot_par(&x, &y))
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_blas1
}
criterion_main!(benches);
