//! Matrix assembly benchmarks: direct CRS assembly of the
//! topological-insulator Hamiltonian and COO round-trips.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use kpm_num::Complex64;
use kpm_sparse::CooMatrix;
use kpm_topo::TopoHamiltonian;

fn bench_assembly(c: &mut Criterion) {
    let mut g = c.benchmark_group("assembly");
    for (nx, ny, nz) in [(8usize, 8usize, 4usize), (16, 16, 8)] {
        let ham = TopoHamiltonian::clean(nx, ny, nz);
        let n = ham.dim();
        g.throughput(Throughput::Elements(n as u64));
        g.bench_function(BenchmarkId::new("hamiltonian", n), |b| {
            b.iter(|| ham.assemble())
        });
    }
    g.bench_function("coo_to_crs_10k_triplets", |b| {
        b.iter(|| {
            let mut coo = CooMatrix::new(1000, 1000);
            for i in 0..10_000usize {
                coo.push(i % 1000, (i * 7) % 1000, Complex64::real(i as f64));
            }
            coo.to_crs()
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_assembly
}
criterion_main!(benches);
