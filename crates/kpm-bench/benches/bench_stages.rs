//! The three optimization stages head to head (the kernel-level view of
//! paper Fig. 11): one full KPM moment computation per stage, identical
//! arithmetic, different data traffic.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kpm_core::solver::{kpm_moments, KpmParams, KpmVariant};
use kpm_topo::{ScaleFactors, TopoHamiltonian};

fn bench_stages(c: &mut Criterion) {
    let h = TopoHamiltonian::clean(12, 12, 6).assemble();
    let sf = ScaleFactors::from_gershgorin(&h, 0.01);
    let params = KpmParams {
        num_moments: 32,
        num_random: 8,
        seed: 4,
        parallel: false,
        threads: 0,
        power: 1,
        first_touch: false,
    };
    let mut g = c.benchmark_group("kpm_stages");
    for (name, variant) in [
        ("naive", KpmVariant::Naive),
        ("stage1_aug_spmv", KpmVariant::AugSpmv),
        ("stage2_aug_spmmv", KpmVariant::AugSpmmv),
    ] {
        g.bench_function(BenchmarkId::new(name, h.nrows()), |b| {
            b.iter(|| kpm_moments(&h, sf, &params, variant).unwrap())
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_stages
}
criterion_main!(benches);
