//! Plain SpMV benchmarks: CRS vs SELL-C-sigma (the unified format of
//! paper ref. [13]) on the topological-insulator matrix.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use kpm_num::{Complex64, Vector};
use kpm_sparse::spmv::{spmv, spmv_par};
use kpm_sparse::SellMatrix;
use kpm_topo::TopoHamiltonian;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_spmv(c: &mut Criterion) {
    let h = TopoHamiltonian::clean(16, 16, 8).assemble();
    let n = h.nrows();
    let mut rng = StdRng::seed_from_u64(2);
    let x = Vector::random(n, &mut rng).into_vec();
    let mut y = vec![Complex64::default(); n];
    let bytes = (h.nnz() * 20 + 2 * n * 16) as u64;

    let mut g = c.benchmark_group("spmv");
    g.throughput(Throughput::Bytes(bytes));
    g.bench_function(BenchmarkId::new("crs", n), |b| {
        b.iter(|| spmv(&h, &x, &mut y))
    });
    g.bench_function(BenchmarkId::new("crs_par", n), |b| {
        b.iter(|| spmv_par(&h, &x, &mut y))
    });
    for (chunk, sigma) in [(4usize, 1usize), (8, 32), (32, 128)] {
        let sell = SellMatrix::from_crs(&h, chunk, sigma);
        g.bench_function(BenchmarkId::new(format!("sell_{chunk}_{sigma}"), n), |b| {
            b.iter(|| sell.spmv(&x, &mut y))
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(15);
    targets = bench_spmv
}
criterion_main!(benches);
