//! Format ablation: SELL-C-sigma conversion cost and the effect of the
//! sorting window sigma on fill-in (beta) and SpMV speed — the design
//! trade-off paper Section IV-A discusses.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kpm_num::{Complex64, Vector};
use kpm_sparse::SellMatrix;
use kpm_topo::model::random_hermitian;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_formats(c: &mut Criterion) {
    // Irregular rows make sigma matter; the TI matrix is too regular.
    let h = random_hermitian(4096, 12, 9);
    let n = h.nrows();
    let mut rng = StdRng::seed_from_u64(5);
    let x = Vector::random(n, &mut rng).into_vec();
    let mut y = vec![Complex64::default(); n];

    let mut g = c.benchmark_group("sell_sigma_ablation");
    for sigma_factor in [1usize, 4, 32] {
        let c_height = 32usize;
        let sigma = if sigma_factor == 1 {
            1
        } else {
            c_height * sigma_factor
        };
        let sell = SellMatrix::from_crs(&h, c_height, sigma);
        eprintln!(
            "sigma = {sigma}: beta = {:.3} ({} stored vs {} nnz)",
            sell.beta(),
            sell.stored_elements(),
            sell.nnz()
        );
        g.bench_function(BenchmarkId::new("spmv_sigma", sigma), |b| {
            b.iter(|| sell.spmv(&x, &mut y))
        });
    }
    g.bench_function("convert_crs_to_sell32", |b| {
        b.iter(|| SellMatrix::from_crs(&h, 32, 128))
    });
    g.finish();

    // The paper's Section IV-A claim: for SpMMV, CRS ("SELL-1") is at
    // least as good as a SIMD-aware SELL layout, because vectorization
    // happens across the block vector and SELL only adds fill-in.
    let mut g = c.benchmark_group("spmmv_format_ablation");
    use kpm_num::BlockVector;
    let r = 8;
    let x = BlockVector::random(n, r, &mut rng);
    let mut yb = BlockVector::zeros(n, r);
    g.bench_function("crs_spmmv", |b| {
        b.iter(|| kpm_sparse::spmv::spmmv(&h, &x, &mut yb))
    });
    let sell = SellMatrix::from_crs(&h, 32, 128);
    g.bench_function("sell32_spmmv", |b| b.iter(|| sell.spmmv(&x, &mut yb)));
    // Cache blocking (paper Section VII outlook, ref. [31]).
    use kpm_sparse::blocked::CacheBlockedCrs;
    for cb in [256usize, 1024] {
        let blocked = CacheBlockedCrs::from_crs(&h, cb);
        g.bench_function(format!("cache_blocked_{cb}"), |b| {
            b.iter(|| blocked.spmmv(&x, &mut yb))
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(12);
    targets = bench_formats
}
criterion_main!(benches);
