//! The paper's central sweep: augmented SpMMV performance vs block
//! width R (the measured curve of Fig. 8), plus two ablations:
//! fused vs separate dot products (Fig. 10 b vs c) and row-major vs
//! column-major block layout (Section IV-A).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use kpm_num::block::ColMajorBlock;
use kpm_num::BlockVector;
use kpm_sparse::aug::{aug_spmmv, aug_spmmv_nodot};
use kpm_sparse::gen::aug_spmmv_auto;
use kpm_sparse::spmv::spmmv_colmajor;
use kpm_topo::TopoHamiltonian;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_sweep(c: &mut Criterion) {
    let h = TopoHamiltonian::clean(16, 16, 8).assemble();
    let n = h.nrows();
    let mut rng = StdRng::seed_from_u64(3);

    let mut g = c.benchmark_group("aug_spmmv_r_sweep");
    for r in [1usize, 2, 4, 8, 16, 32] {
        let v = BlockVector::random(n, r, &mut rng);
        let mut w = BlockVector::random(n, r, &mut rng);
        let flops = kpm_num::accounting::aug_spmmv_flops(n, h.nnz(), r) as u64;
        g.throughput(Throughput::Elements(flops));
        g.bench_function(BenchmarkId::new("fused", r), |b| {
            b.iter(|| aug_spmmv(&h, 0.3, 0.1, &v, &mut w))
        });
        g.bench_function(BenchmarkId::new("fused_codegen", r), |b| {
            b.iter(|| aug_spmmv_auto(&h, 0.3, 0.1, &v, &mut w))
        });
        g.bench_function(BenchmarkId::new("nodot_plus_separate_dots", r), |b| {
            b.iter(|| {
                aug_spmmv_nodot(&h, 0.3, 0.1, &v, &mut w);
                let even = v.columnwise_nrm2();
                let odd = w.columnwise_dot(&v);
                (even, odd)
            })
        });
    }
    g.finish();

    let mut g = c.benchmark_group("block_layout");
    for r in [4usize, 16] {
        let v = BlockVector::random(n, r, &mut rng);
        let mut w = BlockVector::zeros(n, r);
        g.bench_function(BenchmarkId::new("row_major", r), |b| {
            b.iter(|| kpm_sparse::spmv::spmmv(&h, &v, &mut w))
        });
        let cv = ColMajorBlock::from_row_major(&v);
        let mut cw = ColMajorBlock::zeros(n, r);
        g.bench_function(BenchmarkId::new("col_major", r), |b| {
            b.iter(|| spmmv_colmajor(&h, &cv, &mut cw))
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(12);
    targets = bench_sweep
}
criterion_main!(benches);
