//! Shared harness utilities for the figure/table regenerators and the
//! Criterion benches.
//!
//! Each `fig*`/`table*` binary in `src/bin/` regenerates one table or
//! figure of the paper and prints it as an aligned text table plus CSV
//! lines (prefixed `csv,`) so results can be both read and plotted.

use std::time::Instant;

use kpm_num::{BlockVector, Complex64, Vector};
use kpm_sparse::aug::{aug_spmmv_par, aug_spmv_par};
use kpm_sparse::CrsMatrix;
use kpm_topo::{ScaleFactors, TopoHamiltonian};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Builds the paper's benchmark matrix for a given domain.
pub fn benchmark_matrix(nx: usize, ny: usize, nz: usize) -> (CrsMatrix, ScaleFactors) {
    let ham = TopoHamiltonian::clean(nx, ny, nz);
    let h = ham.assemble();
    let sf = ScaleFactors::from_gershgorin(&h, 0.01);
    (h, sf)
}

/// Flops of one augmented blocked sweep (paper accounting).
pub fn sweep_flops(h: &CrsMatrix, r: usize) -> f64 {
    kpm_num::accounting::aug_spmmv_flops(h.nrows(), h.nnz(), r) as f64
}

/// Measured sustained Gflop/s of the stage-1 kernel (`aug_spmv`) on
/// `threads` rayon threads: median over `reps` timed sweeps.
pub fn measure_aug_spmv(h: &CrsMatrix, sf: ScaleFactors, threads: usize, reps: usize) -> f64 {
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("thread pool");
    let n = h.nrows();
    let mut rng = StdRng::seed_from_u64(42);
    let v = Vector::random(n, &mut rng).into_vec();
    let mut w = Vector::random(n, &mut rng).into_vec();
    let flops = sweep_flops(h, 1);
    let mut times = Vec::with_capacity(reps);
    pool.install(|| {
        // Warm-up sweep.
        aug_spmv_par(h, sf.a, sf.b, &v, &mut w);
        for _ in 0..reps {
            let t0 = Instant::now();
            aug_spmv_par(h, sf.a, sf.b, &v, &mut w);
            times.push(t0.elapsed().as_secs_f64());
        }
    });
    flops / median(&mut times) / 1e9
}

/// Measured sustained Gflop/s of the stage-2 kernel (`aug_spmmv`) at
/// block width `r` on `threads` rayon threads.
pub fn measure_aug_spmmv(
    h: &CrsMatrix,
    sf: ScaleFactors,
    r: usize,
    threads: usize,
    reps: usize,
) -> f64 {
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("thread pool");
    let n = h.nrows();
    let mut rng = StdRng::seed_from_u64(43);
    let v = BlockVector::random(n, r, &mut rng);
    let mut w = BlockVector::random(n, r, &mut rng);
    let flops = sweep_flops(h, r);
    let mut times = Vec::with_capacity(reps);
    pool.install(|| {
        aug_spmmv_par(h, sf.a, sf.b, &v, &mut w);
        for _ in 0..reps {
            let t0 = Instant::now();
            aug_spmmv_par(h, sf.a, sf.b, &v, &mut w);
            times.push(t0.elapsed().as_secs_f64());
        }
    });
    flops / median(&mut times) / 1e9
}

/// Estimated attainable host memory bandwidth (GB/s) from a parallel
/// Schoenauer triad `a = b + s*c` over arrays far larger than the LLC.
pub fn measure_host_bandwidth() -> f64 {
    use rayon::prelude::*;
    let n = 1 << 24; // 16 Mi complex = 256 MiB per array
    let b = vec![Complex64::new(1.0, 2.0); n];
    let c = vec![Complex64::new(0.5, -0.5); n];
    let mut a = vec![Complex64::default(); n];
    let s = Complex64::real(1.5);
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let t0 = Instant::now();
        a.par_iter_mut()
            .zip(b.par_iter().zip(c.par_iter()))
            .for_each(|(ai, (bi, ci))| *ai = s.mul_add(*ci, *bi));
        let dt = t0.elapsed().as_secs_f64();
        best = best.min(dt);
    }
    // 3 arrays x 16 bytes.
    (3 * n * 16) as f64 / best / 1e9
}

/// Median of a mutable sample.
pub fn median(xs: &mut [f64]) -> f64 {
    assert!(!xs.is_empty(), "median of empty sample");
    xs.sort_by(|a, b| a.partial_cmp(b).expect("finite times"));
    xs[xs.len() / 2]
}

/// Parses `--flag value` style options, returning the value for `name`
/// or `default`.
pub fn arg_usize(name: &str, default: usize) -> usize {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// True if `--flag` is present.
pub fn arg_flag(name: &str) -> bool {
    std::env::args().any(|a| a == name)
}

/// Refuses to overwrite a committed baseline-gating artifact with
/// numbers captured on a single-core host: parallel-scaling claims
/// measured there are meaningless, and a stamped baseline would gate
/// future runs against them. Scratch captures (any other `--out` path)
/// stay allowed, as does an explicit `KPM_BENCH_ALLOW_SINGLE_CORE=1`
/// override; see EXPERIMENTS.md for the multi-core capture path.
pub fn guard_baseline_stamp(out: &str, baseline_name: &str, host_cores: usize) {
    if host_cores > 1 {
        return;
    }
    let is_baseline = std::path::Path::new(out)
        .file_name()
        .is_some_and(|f| f == baseline_name);
    if !is_baseline {
        return;
    }
    if std::env::var("KPM_BENCH_ALLOW_SINGLE_CORE").as_deref() == Ok("1") {
        eprintln!(
            "warning: stamping {baseline_name} from a single-core host \
             (KPM_BENCH_ALLOW_SINGLE_CORE=1)"
        );
        return;
    }
    eprintln!(
        "error: refusing to stamp baseline artifact {baseline_name} from a \
         single-core host — thread-scaling numbers need real cores.\n\
         Capture on a multi-core machine (see EXPERIMENTS.md), write to a \
         scratch file with --out, or set KPM_BENCH_ALLOW_SINGLE_CORE=1 to \
         override."
    );
    std::process::exit(2);
}

/// Prints one aligned header row.
pub fn print_header(title: &str, cols: &[&str]) {
    println!("\n=== {title} ===");
    println!("{}", cols.join("\t"));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_of_odd_sample() {
        let mut xs = [3.0, 1.0, 2.0];
        assert_eq!(median(&mut xs), 2.0);
    }

    #[test]
    fn benchmark_matrix_has_expected_occupancy() {
        let (h, sf) = benchmark_matrix(8, 8, 4);
        assert_eq!(h.nrows(), 4 * 8 * 8 * 4);
        assert!(h.avg_nnz_per_row() > 11.0);
        assert!(sf.a > 0.0);
    }

    #[test]
    fn measured_gflops_positive() {
        let (h, sf) = benchmark_matrix(6, 6, 4);
        let g = measure_aug_spmmv(&h, sf, 4, 2, 2);
        assert!(g > 0.0);
    }
}
