//! Regenerates paper Table II: the architecture catalog, plus derived
//! machine balance (the quantity the paper's Section I argues about).

use kpm_bench::print_header;
use kpm_perfmodel::machine::CATALOG;

fn main() {
    print_header(
        "Table II",
        &[
            "name",
            "clock MHz",
            "SIMD B",
            "cores/SMX",
            "b GB/s",
            "LLC MiB",
            "Ppeak Gflop/s",
            "balance B/F",
        ],
    );
    for m in CATALOG {
        println!(
            "{}\t{}\t{}\t{}\t{}\t{}\t{}\t{:.3}",
            m.name,
            m.clock_mhz,
            m.simd_bytes,
            m.cores,
            m.mem_bw_gbs,
            m.llc_mib,
            m.peak_gflops,
            m.machine_balance()
        );
        println!(
            "csv,table2,{},{},{},{},{},{},{}",
            m.name, m.clock_mhz, m.simd_bytes, m.cores, m.mem_bw_gbs, m.llc_mib, m.peak_gflops
        );
    }
}
