//! One-shot reproduction report: every *model/simulator-based* table
//! and figure of the paper in a single run (the host-measurement
//! figures 7/8 have their own binaries since they take minutes).
//!
//! ```sh
//! cargo run --release -p kpm-bench --bin report_all
//! ```

use kpm_bench::{benchmark_matrix, print_header};
use kpm_hetsim::cluster::{ClusterModel, Domain};
use kpm_hetsim::node::{node_performance, Stage};
use kpm_perfmodel::balance::{asymptotic_balance, min_code_balance};
use kpm_perfmodel::machine::{CATALOG, SNB};
use kpm_perfmodel::omega::{llc_config, measure_omega};
use kpm_perfmodel::roofline::custom_roofline;
use kpm_simgpu::{simulate, GpuDevice, GpuKernel};

fn main() {
    println!("reproduction report: Kreutzer et al., IPDPS 2015");
    println!("(model- and simulator-based results; see EXPERIMENTS.md for host runs)");

    // --- Table II + machine balance. ---
    print_header(
        "Table II",
        &["name", "b GB/s", "LLC MiB", "Ppeak", "balance B/F"],
    );
    for m in CATALOG {
        println!(
            "{}\t{}\t{}\t{}\t{:.3}",
            m.name,
            m.mem_bw_gbs,
            m.llc_mib,
            m.peak_gflops,
            m.machine_balance()
        );
    }

    // --- Eqs. 5-7. ---
    print_header("Code balance B_min(R)", &["R", "B/F"]);
    for r in [1usize, 4, 16, 32, 64] {
        println!("{r}\t{:.4}", min_code_balance(13.0, r));
    }
    println!("inf\t{:.4}", asymptotic_balance(13.0));

    // --- Fig. 8 model (Omega from the cache simulator). ---
    let (h, _sf) = benchmark_matrix(64, 64, 24);
    let llc = llc_config(&kpm_perfmodel::machine::IVB);
    print_header(
        "Fig. 8 model (IVB)",
        &["R", "Omega", "P_MEM", "P_LLC", "P*"],
    );
    for r in [1usize, 4, 8, 16, 32] {
        let om = measure_omega(&h, r, llc);
        let pt = custom_roofline(&kpm_perfmodel::machine::IVB, 13.0, r, om.omega.max(1.0));
        println!(
            "{r}\t{:.3}\t{:.1}\t{:.1}\t{:.1}",
            pt.omega, pt.p_mem, pt.p_llc, pt.p_star
        );
    }

    // --- Figs. 9/10 (GPU simulator, condensed). ---
    let dev = GpuDevice::k20m();
    print_header(
        "Figs. 9/10 (K20m, aug_spmmv full)",
        &[
            "R",
            "TEX MB",
            "L2 MB",
            "DRAM MB",
            "DRAM GB/s",
            "bottleneck",
            "Gflop/s",
        ],
    );
    for r in [1usize, 16, 32] {
        let rep = simulate(&dev, &h, r, GpuKernel::AugFull);
        println!(
            "{r}\t{:.0}\t{:.0}\t{:.0}\t{:.0}\t{:?}\t{:.1}",
            rep.traffic.tex_bytes as f64 / 1e6,
            rep.traffic.l2_bytes as f64 / 1e6,
            rep.traffic.dram_bytes() as f64 / 1e6,
            rep.timing.dram_gbs,
            rep.timing.bottleneck,
            rep.gflops()
        );
    }

    // --- Fig. 11. ---
    let bench = benchmark_matrix(32, 16, 8).0;
    let gpu = GpuDevice::k20x();
    print_header(
        "Fig. 11 (SNB + K20X)",
        &["stage", "CPU", "GPU", "CPU+GPU", "eff"],
    );
    for (name, stage) in [
        ("naive", Stage::Naive),
        ("stage1", Stage::Stage1),
        ("stage2", Stage::Stage2),
    ] {
        let p = node_performance(&SNB, &gpu, stage, 32, &bench, 1.3);
        println!(
            "{name}\t{:.1}\t{:.1}\t{:.1}\t{:.0}%",
            p.cpu_gflops,
            p.gpu_gflops,
            p.het_gflops,
            100.0 * p.efficiency
        );
    }

    // --- Fig. 12 + Table III. ---
    let model = ClusterModel::piz_daint(&bench, 32);
    print_header(
        "Fig. 12 (weak scaling)",
        &["case", "nodes", "Tflop/s", "eff"],
    );
    for p in model.weak_scaling_square(1024).expect("optimized stage") {
        println!("square\t{}\t{:.2}\t{:.3}", p.nodes, p.tflops, p.efficiency);
    }
    for p in model.weak_scaling_bar(1024).expect("optimized stage") {
        println!("bar\t{}\t{:.2}\t{:.3}", p.nodes, p.tflops, p.efficiency);
    }
    let d = Domain {
        nx: 400,
        ny: 400,
        nz: 40,
    };
    for p in model
        .strong_scaling(d, &[4, 16, 64, 256, 1024])
        .expect("optimized stage")
    {
        println!("strong\t{}\t{:.2}\t{:.3}", p.nodes, p.tflops, p.efficiency);
    }
    print_header("Table III", &["version", "Tflop/s", "nodes", "node-h"]);
    for row in model.table3().expect("optimized stage") {
        println!(
            "{}\t{:.1}\t{}\t{:.0}",
            row.version, row.tflops, row.nodes, row.node_hours
        );
    }
    println!("\n# paper: aug_spmv 14.9/288/164, aug_spmmv* 107/1024/81, aug_spmmv 116/1024/75");
}
