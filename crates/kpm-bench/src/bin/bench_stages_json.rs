//! Emits `BENCH_stages.json`: achieved GF/s and modeled minimum B/F of
//! the three optimization stages (naive SpMV, fused `aug_spmv`, blocked
//! `aug_spmmv`) over block widths R ∈ {1, 4, 16, 32}.
//!
//! Unlike the `fig*` binaries this one measures through the `kpm-obs`
//! kernel probes: each stage runs the full instrumented solver at width
//! R, and the per-kernel accumulators provide both the achieved rate
//! and the paper's minimum-traffic code balance (Eq. 5). The output is
//! a machine-readable artifact checked into the repository root.
//!
//! ```text
//! bench_stages_json [--nx N] [--ny N] [--nz N] [--moments M] [--out FILE]
//! ```

use std::fmt::Write as _;

use kpm_bench::{arg_usize, benchmark_matrix};
use kpm_core::solver::{kpm_moments, KpmParams, KpmVariant};
use kpm_obs::json::num;
use kpm_obs::probe::KernelKind;

/// One (stage, R) measurement.
struct StagePoint {
    stage: &'static str,
    r: usize,
    calls: u64,
    gflops: f64,
    min_bf: f64,
    format: &'static str,
    beta: f64,
}

fn main() {
    let nx = arg_usize("--nx", 20);
    let ny = arg_usize("--ny", 20);
    let nz = arg_usize("--nz", 10);
    let moments = arg_usize("--moments", 64);
    let out = std::env::args()
        .collect::<Vec<_>>()
        .windows(2)
        .find(|w| w[0] == "--out")
        .map(|w| w[1].clone())
        .unwrap_or_else(|| "BENCH_stages.json".to_string());

    let (h, sf) = benchmark_matrix(nx, ny, nz);
    let host_cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    eprintln!(
        "matrix: N = {}, Nnz = {}, M = {moments}, host cores = {host_cores}",
        h.nrows(),
        h.nnz()
    );
    kpm_obs::set_enabled(true);

    let stages: [(&str, KpmVariant, KernelKind); 3] = [
        ("naive", KpmVariant::Naive, KernelKind::Spmv),
        ("aug_spmv", KpmVariant::AugSpmv, KernelKind::AugSpmv),
        ("aug_spmmv", KpmVariant::AugSpmmv, KernelKind::AugSpmmv),
    ];
    let mut points: Vec<StagePoint> = Vec::new();
    for r in [1usize, 4, 16, 32] {
        let params = KpmParams {
            num_moments: moments,
            num_random: r,
            seed: 2015,
            parallel: true,
            threads: 0,
            power: 1,
            first_touch: false,
        };
        for (stage, variant, kind) in stages {
            kpm_obs::reset();
            kpm_obs::set_enabled(true);
            kpm_moments(&h, sf, &params, variant).expect("solver run");
            let rep = kpm_obs::probe::snapshot()
                .into_iter()
                .find(|rep| rep.kind == kind)
                .expect("instrumented kernel recorded calls");
            eprintln!(
                "{stage:<9} R={r:<2} {:>7.2} GF/s  B_min {:.3} B/F",
                rep.gflops(),
                rep.min_bytes_per_flop()
            );
            points.push(StagePoint {
                stage,
                r,
                calls: rep.calls,
                gflops: rep.gflops(),
                min_bf: rep.min_bytes_per_flop(),
                format: rep.format.name(),
                beta: rep.beta(),
            });
        }
    }

    let mut body = String::new();
    let _ = writeln!(body, "{{");
    let _ = writeln!(body, "  \"schema\": \"kpm-bench-stages-v3\",");
    let _ = writeln!(
        body,
        "  \"matrix\": {{\"nx\": {nx}, \"ny\": {ny}, \"nz\": {nz}, \"rows\": {}, \"nnz\": {}}},",
        h.nrows(),
        h.nnz()
    );
    let _ = writeln!(body, "  \"moments\": {moments},");
    let _ = writeln!(body, "  \"host_cores\": {host_cores},");
    let _ = writeln!(
        body,
        "  \"simd_compiled\": {},",
        kpm_sparse::simd::compiled()
    );
    let _ = writeln!(body, "  \"simd_lanes\": {},", kpm_sparse::simd::lanes());
    let _ = writeln!(body, "  \"first_touch\": false,");
    let _ = writeln!(body, "  \"points\": [");
    for (i, p) in points.iter().enumerate() {
        let comma = if i + 1 < points.len() { "," } else { "" };
        let _ = writeln!(
            body,
            "    {{\"stage\": \"{}\", \"r\": {}, \"calls\": {}, \"gflops\": {}, \"min_bf\": {}, \"format\": \"{}\", \"beta\": {}}}{comma}",
            p.stage,
            p.r,
            p.calls,
            num(p.gflops),
            num(p.min_bf),
            p.format,
            num(p.beta)
        );
    }
    let _ = writeln!(body, "  ]");
    let _ = writeln!(body, "}}");

    kpm_obs::json::parse(&body).expect("generated JSON must parse");
    std::fs::write(&out, &body).expect("write output file");
    eprintln!("wrote {out}");
}
