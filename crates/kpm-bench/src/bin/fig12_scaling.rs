//! Regenerates paper Fig. 12: weak scaling ("Square" and "Bar") and
//! strong scaling of the full heterogeneous KPM solver on the modelled
//! Piz Daint, up to 1024 nodes.

use kpm_bench::{arg_usize, benchmark_matrix, print_header};
use kpm_hetsim::cluster::{ClusterModel, Domain};

fn main() {
    let max_nodes = arg_usize("--nodes", 1024);
    let (bench, _sf) = benchmark_matrix(32, 16, 8);
    let model = ClusterModel::piz_daint(&bench, 32);

    print_header(
        "Fig. 12 weak scaling, Square",
        &["nodes", "domain", "Tflop/s", "efficiency"],
    );
    for p in model
        .weak_scaling_square(max_nodes)
        .expect("optimized stage")
    {
        println!(
            "{}\t{}x{}x{}\t{:.2}\t{:.3}",
            p.nodes, p.domain.nx, p.domain.ny, p.domain.nz, p.tflops, p.efficiency
        );
        println!("csv,fig12square,{},{},{}", p.nodes, p.tflops, p.efficiency);
    }

    print_header(
        "Fig. 12 weak scaling, Bar",
        &["nodes", "domain", "Tflop/s", "efficiency"],
    );
    for p in model.weak_scaling_bar(max_nodes).expect("optimized stage") {
        println!(
            "{}\t{}x{}x{}\t{:.2}\t{:.3}",
            p.nodes, p.domain.nx, p.domain.ny, p.domain.nz, p.tflops, p.efficiency
        );
        println!("csv,fig12bar,{},{},{}", p.nodes, p.tflops, p.efficiency);
    }

    print_header(
        "Fig. 12 strong scaling (Square base 400x400x40 from 4 nodes)",
        &["nodes", "Tflop/s", "efficiency"],
    );
    let domain = Domain {
        nx: 400,
        ny: 400,
        nz: 40,
    };
    for p in model
        .strong_scaling(domain, &[4, 16, 64, 256, 1024])
        .expect("optimized stage")
    {
        println!("{}\t{:.2}\t{:.3}", p.nodes, p.tflops, p.efficiency);
        println!("csv,fig12strong,{},{},{}", p.nodes, p.tflops, p.efficiency);
    }
}
