//! Regenerates paper Fig. 11: node-level performance of each
//! optimization stage on a Piz Daint node (SNB + K20X), with the
//! parallel efficiency of the heterogeneous runs.

use kpm_bench::{arg_usize, benchmark_matrix, print_header};
use kpm_hetsim::node::{node_performance, Stage};
use kpm_perfmodel::machine::SNB;
use kpm_simgpu::GpuDevice;

fn main() {
    let r = arg_usize("--r", 32);
    let (h, _sf) = benchmark_matrix(32, 16, 8);
    let gpu = GpuDevice::k20x();
    print_header(
        "Fig. 11 (Piz Daint node: SNB + K20X) [Gflop/s]",
        &["stage", "SNB", "K20X", "SNB+K20X", "par. efficiency"],
    );
    for (name, stage) in [
        ("Naive", Stage::Naive),
        ("Opt. stage 1", Stage::Stage1),
        ("Opt. stage 2", Stage::Stage2),
    ] {
        let p = node_performance(&SNB, &gpu, stage, r, &h, 1.3);
        println!(
            "{name}\t{:.1}\t{:.1}\t{:.1}\t{:.0}%",
            p.cpu_gflops,
            p.gpu_gflops,
            p.het_gflops,
            100.0 * p.efficiency
        );
        println!(
            "csv,fig11,{name},{},{},{},{}",
            p.cpu_gflops, p.gpu_gflops, p.het_gflops, p.efficiency
        );
    }
    let naive = node_performance(&SNB, &gpu, Stage::Naive, r, &h, 1.3);
    let s2 = node_performance(&SNB, &gpu, Stage::Stage2, r, &h, 1.3);
    println!(
        "# total speed-up naive-CPU -> het-stage2: {:.1}x (paper: >10x)",
        s2.het_gflops / naive.cpu_gflops
    );
    println!(
        "# GPU-only speed-up naive -> stage2: {:.2}x (paper: 2.3x)",
        s2.gpu_gflops / naive.gpu_gflops
    );
    println!(
        "# heterogeneous gain over GPU-only: {:.2}x (paper: 1.36x)",
        s2.het_gflops / s2.gpu_gflops
    );
}
