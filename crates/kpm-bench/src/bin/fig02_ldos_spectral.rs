//! Regenerates paper Fig. 2: the local DOS map of the quantum-dot
//! superlattice surface (left panel) and the momentum-resolved spectral
//! function A(k, E) along k_x (right panel).
//!
//! Scaled-down defaults; the dot potential keeps the paper's
//! VDot = 0.153 and the dot radius/period scale with the domain.

use kpm_bench::{arg_usize, print_header};
use kpm_core::ldos::ldos_map;
use kpm_core::spectral::spectral_cut;
use kpm_core::Kernel;
use kpm_topo::{Lattice3D, Potential, ScaleFactors, TopoHamiltonian};

fn main() {
    let nx = arg_usize("--nx", 40);
    let ny = arg_usize("--ny", 40);
    let nz = arg_usize("--nz", 8);
    let m = arg_usize("--m", 256);
    let period = arg_usize("--period", 20);
    let ham = TopoHamiltonian {
        lattice: Lattice3D::paper_default(nx, ny, nz),
        t: 1.0,
        potential: Potential::QuantumDots {
            strength: 0.153,
            period,
            radius: period as f64 / 4.0,
            depth: 1,
        },
    };
    let h = ham.assemble();
    let sf = ScaleFactors::from_gershgorin(&h, 0.01);
    eprintln!("matrix: N = {}, Nnz = {}", h.nrows(), h.nnz());

    let stride = arg_usize("--stride", 2);
    let map = ldos_map(&h, sf, &ham.lattice, 0, 0.0, stride, m, Kernel::Jackson).unwrap();
    print_header("Fig. 2 (left): LDOS(x, y; z=0, E=0)", &["x", "y", "LDOS"]);
    for ((x, y), v) in map.xs.iter().zip(&map.ys).zip(&map.values) {
        println!("{x}\t{y}\t{v:.6}");
        println!("csv,fig2ldos,{x},{y},{v}");
    }

    let cut = spectral_cut(
        &h,
        sf,
        &ham.lattice,
        0.2 * std::f64::consts::PI,
        9,
        m,
        Kernel::Jackson,
        256,
    )
    .unwrap();
    print_header(
        "Fig. 2 (right): A(kx, E) near the zone centre",
        &["kx/pi", "E_peak", "A_peak"],
    );
    for (kx, curve) in cut.kx.iter().zip(&cut.curves) {
        // Print the dominant low-energy feature of each momentum.
        let mut best = (0.0f64, 0.0f64);
        for (e, v) in curve.energies.iter().zip(&curve.values) {
            if e.abs() < 1.0 && *v > best.1 {
                best = (*e, *v);
            }
        }
        println!(
            "{:.4}\t{:.4}\t{:.4}",
            kx / std::f64::consts::PI,
            best.0,
            best.1
        );
        println!("csv,fig2spectral,{kx},{},{}", best.0, best.1);
    }
}
