//! Regenerates the code-balance curve of paper Eqs. (5)-(7):
//! B_min(R) = (260/R + 48)/138 bytes/flop for the topological-insulator
//! workload, from 2.23 B/F at R = 1 to the 0.35 B/F asymptote.

use kpm_bench::print_header;
use kpm_perfmodel::balance::{asymptotic_balance, min_code_balance};

fn main() {
    print_header("Code balance B_min(R), Eqs. (5)-(7)", &["R", "B_min (B/F)"]);
    for r in [1usize, 2, 4, 8, 16, 32, 64, 128, 256] {
        let b = min_code_balance(13.0, r);
        println!("{r}\t{b:.4}");
        println!("csv,balance,{r},{b}");
    }
    println!("inf\t{:.4}  (Eq. 7 asymptote)", asymptotic_balance(13.0));
}
