//! Regenerates paper Fig. 8: the custom roofline for the augmented
//! SpM(M)V kernel on IVB vs block width R, with the measured-Omega
//! annotations.
//!
//! Omega = V_meas/V_KPM comes from replaying the kernel's access stream
//! through the LLC cache simulator (our stand-in for LIKWID); the
//! model is P* = min(P_MEM, P_LLC) (paper Eq. 11). The host-measured
//! kernel performance is printed alongside for the shape comparison.

use kpm_bench::{arg_usize, benchmark_matrix, measure_aug_spmmv, print_header};
use kpm_perfmodel::machine::IVB;
use kpm_perfmodel::omega::{llc_config, measure_omega};
use kpm_perfmodel::roofline::custom_roofline;

fn main() {
    let nx = arg_usize("--nx", 100);
    let ny = arg_usize("--ny", 100);
    let nz = arg_usize("--nz", 40);
    let (h, sf) = benchmark_matrix(nx, ny, nz);
    eprintln!("matrix: N = {}, Nnz = {}", h.nrows(), h.nnz());
    let llc = llc_config(&IVB);
    let reps = arg_usize("--reps", 3);
    let threads = arg_usize("--threads", rayon::current_num_threads().min(16));

    print_header(
        "Fig. 8 (IVB model + host measurement)",
        &[
            "R",
            "Omega",
            "B=Omega*Bmin",
            "P_MEM",
            "P_LLC",
            "P*",
            "host Gflop/s",
        ],
    );
    for r in [1usize, 2, 4, 8, 16, 32] {
        let om = measure_omega(&h, r, llc);
        let pt = custom_roofline(&IVB, 13.0, r, om.omega.max(1.0));
        let host = measure_aug_spmmv(&h, sf, r, threads, reps);
        println!(
            "{r}\t{:.3}\t{:.3}\t{:.1}\t{:.1}\t{:.1}\t{host:.2}",
            pt.omega, pt.balance, pt.p_mem, pt.p_llc, pt.p_star
        );
        println!(
            "csv,fig8,{r},{},{},{},{},{},{host}",
            pt.omega, pt.balance, pt.p_mem, pt.p_llc, pt.p_star
        );
    }
}
