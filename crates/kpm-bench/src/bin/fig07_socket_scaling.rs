//! Regenerates paper Fig. 7: intra-socket scaling of `aug_spmv` vs
//! `aug_spmmv` (R = 32) with the roofline prediction.
//!
//! Two outputs:
//! 1. *Model* curves for the paper's IVB socket (the machine we model
//!    but cannot run on): the memory-bound kernel saturates at
//!    b/B_min(1) ~ 22 Gflop/s; the blocked kernel scales linearly.
//! 2. *Measured* curves on THIS host: the same kernels run on 1..P
//!    rayon threads over the paper's 100x100x40 matrix. The shape —
//!    saturation vs linear scaling — is the reproduced claim.

use kpm_bench::{
    arg_usize, benchmark_matrix, measure_aug_spmmv, measure_aug_spmv, measure_host_bandwidth,
    print_header,
};
use kpm_perfmodel::balance::min_code_balance;
use kpm_perfmodel::machine::IVB;
use kpm_perfmodel::roofline::socket_scaling;

fn main() {
    let r = arg_usize("--r", 32);

    // --- Model: IVB, as in the paper. ---
    print_header(
        "Fig. 7 model (IVB): Gflop/s vs cores",
        &["cores", "aug_spmv", "aug_spmmv(R=32)", "roofline(spmv)"],
    );
    let b1 = min_code_balance(13.0, 1);
    let b32 = min_code_balance(13.0, r);
    // Single-core kernel rates calibrated to the paper's figure:
    // ~5.5 Gflop/s for either kernel on one IVB core.
    let p1 = 5.5;
    let roof = IVB.mem_bw_gbs / b1;
    for cores in 1..=IVB.cores {
        let spmv = socket_scaling(&IVB, b1, p1, cores);
        let spmmv = socket_scaling(&IVB, b32, p1, cores);
        println!("{cores}\t{spmv:.1}\t{spmmv:.1}\t{roof:.1}");
        println!("csv,fig7model,{cores},{spmv},{spmmv},{roof}");
    }

    // --- Measurement on this host. ---
    let nx = arg_usize("--nx", 100);
    let ny = arg_usize("--ny", 100);
    let nz = arg_usize("--nz", 40);
    let (h, sf) = benchmark_matrix(nx, ny, nz);
    let max_threads = arg_usize("--threads", rayon::current_num_threads().min(16));
    let reps = arg_usize("--reps", 3);
    let host_bw = measure_host_bandwidth();
    eprintln!("host attainable bandwidth ~ {host_bw:.1} GB/s");
    print_header(
        &format!(
            "Fig. 7 measured (this host, {}x{}x{}, N={})",
            nx,
            ny,
            nz,
            h.nrows()
        ),
        &["threads", "aug_spmv", "aug_spmmv(R)", "roofline(spmv)"],
    );
    let host_roof = host_bw / b1;
    let mut threads = 1;
    while threads <= max_threads {
        let spmv = measure_aug_spmv(&h, sf, threads, reps);
        let spmmv = measure_aug_spmmv(&h, sf, r, threads, reps);
        println!("{threads}\t{spmv:.2}\t{spmmv:.2}\t{host_roof:.2}");
        println!("csv,fig7host,{threads},{spmv},{spmmv},{host_roof}");
        threads *= 2;
    }
}
