//! Regenerates paper Fig. 1: the density of states of the clean 3D
//! topological insulator, full band plus the zoom around E = 0 where
//! the surface states live.
//!
//! Default domain is a scaled-down 160x160x40 (the paper's production
//! 1600x1600x40 is available via --nx/--ny/--nz if you have the time
//! and memory: the generator and solver handle any size).

use kpm_bench::{arg_usize, benchmark_matrix, print_header};
use kpm_core::dos::reconstruct;
use kpm_core::solver::{kpm_moments, KpmParams, KpmVariant};
use kpm_core::Kernel;

fn main() {
    let nx = arg_usize("--nx", 160);
    let ny = arg_usize("--ny", 160);
    let nz = arg_usize("--nz", 40);
    let m = arg_usize("--m", 2048);
    let r = arg_usize("--r", 32);
    let (h, sf) = benchmark_matrix(nx, ny, nz);
    eprintln!(
        "matrix: N = {}, Nnz = {} ({}x{}x{})",
        h.nrows(),
        h.nnz(),
        nx,
        ny,
        nz
    );
    let params = KpmParams {
        num_moments: m,
        num_random: r,
        seed: 2015,
        parallel: true,
        threads: 0,
        power: 1,
        first_touch: false,
    };
    let set = kpm_moments(&h, sf, &params, KpmVariant::AugSpmmv).unwrap();
    let curve = reconstruct(&set, Kernel::Jackson, sf, 2048);

    print_header("Fig. 1 (left): DOS over the full band", &["E", "DOS"]);
    for (e, v) in curve.energies.iter().zip(&curve.values).step_by(32) {
        println!("{e:.4}\t{v:.6}");
    }
    print_header("Fig. 1 (right): zoom around E = 0", &["E", "DOS"]);
    for (e, v) in curve.energies.iter().zip(&curve.values) {
        if e.abs() <= 0.15 {
            println!("{e:.5}\t{v:.6}");
            println!("csv,fig1zoom,{e},{v}");
        }
    }
    println!("# integral over band: {:.4} (exact: 1)", curve.integral());
}
