//! Emits `BENCH_formats.json`: the storage-format ablation of the
//! augmented kernels — CRS against SELL-C-σ over a C × σ grid at block
//! widths R ∈ {1, 8} — plus the autotuner's pick measured under the
//! same harness.
//!
//! All candidates are measured **round-robin**: every rep times one
//! sweep of each candidate back to back (after a full warm-up round),
//! and each candidate's rate is the median of its reps. Sequential
//! per-candidate timing would let slow thermal/contention drift on a
//! shared host penalize whichever format happens to run last;
//! interleaving spreads the drift across all of them equally. The
//! paper's expectation (Section IV-A): SELL helps the single-vector
//! `aug_spmv` through lane-level parallelism, while the blocked
//! `aug_spmmv` already vectorizes across the block vector, so CRS and
//! SELL should land within noise there and fill-in (β < 1) can only
//! hurt.
//!
//! ```text
//! bench_formats_json [--nx N] [--ny N] [--nz N] [--reps K]
//!                    [--threads T] [--out FILE]
//! ```

use std::fmt::Write as _;
use std::time::Instant;

use kpm_bench::{arg_usize, benchmark_matrix, guard_baseline_stamp, median};
use kpm_num::accounting::aug_spmmv_flops;
use kpm_num::{BlockVector, Complex64, Vector};
use kpm_obs::json::num;
use kpm_sparse::{autotune, simd, AutotuneEnv, FormatSpec, KpmMatrix, SparseKernels};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// One matrix handle under test.
struct Candidate {
    format: &'static str,
    c: usize,
    sigma: usize,
    autotuned: bool,
    m: KpmMatrix,
}

/// Median sustained GF/s of the parallel augmented kernel at width `r`
/// for every candidate, timed round-robin (one sweep each per rep) so
/// throughput drift on the host hits all candidates alike.
fn measure_all(
    cands: &[Candidate],
    a: f64,
    b: f64,
    r: usize,
    threads: usize,
    reps: usize,
) -> Vec<f64> {
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("thread pool");
    let n = cands[0].m.nrows();
    let flops = aug_spmmv_flops(n, cands[0].m.nnz(), r) as f64;
    let mut times: Vec<Vec<f64>> = vec![Vec::with_capacity(reps); cands.len()];
    // Identical seeds per candidate: the kernels are bitwise identical
    // across formats, so every candidate streams the same numbers.
    if r == 1 {
        let mut rng = StdRng::seed_from_u64(44);
        let v = Vector::random(n, &mut rng).into_vec();
        let mut ws: Vec<Vec<Complex64>> = cands
            .iter()
            .map(|_| {
                let mut rng = StdRng::seed_from_u64(45);
                Vector::random(n, &mut rng).into_vec()
            })
            .collect();
        for rep in 0..=reps {
            for (i, cand) in cands.iter().enumerate() {
                let w = &mut ws[i];
                let secs = pool.install(|| {
                    let t0 = Instant::now();
                    cand.m.aug_spmv_par(a, b, &v, w);
                    t0.elapsed().as_secs_f64()
                });
                if rep > 0 {
                    times[i].push(secs); // rep 0 is the warm-up round
                }
            }
        }
    } else {
        let mut rng = StdRng::seed_from_u64(44);
        let v = BlockVector::random(n, r, &mut rng);
        let mut ws: Vec<BlockVector> = cands
            .iter()
            .map(|_| {
                let mut rng = StdRng::seed_from_u64(45);
                BlockVector::random(n, r, &mut rng)
            })
            .collect();
        for rep in 0..=reps {
            for (i, cand) in cands.iter().enumerate() {
                let w = &mut ws[i];
                let secs = pool.install(|| {
                    let t0 = Instant::now();
                    cand.m.aug_spmmv_par(a, b, &v, w);
                    t0.elapsed().as_secs_f64()
                });
                if rep > 0 {
                    times[i].push(secs);
                }
            }
        }
    }
    times.iter_mut().map(|t| flops / median(t) / 1e9).collect()
}

fn main() {
    let nx = arg_usize("--nx", 20);
    let ny = arg_usize("--ny", 20);
    let nz = arg_usize("--nz", 10);
    let reps = arg_usize("--reps", 5).max(1);
    let host_cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let threads = arg_usize("--threads", host_cores).max(1);
    let out = std::env::args()
        .collect::<Vec<_>>()
        .windows(2)
        .find(|w| w[0] == "--out")
        .map(|w| w[1].clone())
        .unwrap_or_else(|| "BENCH_formats.json".to_string());
    guard_baseline_stamp(&out, "BENCH_formats.json", host_cores);

    let (h, sf) = benchmark_matrix(nx, ny, nz);
    eprintln!(
        "matrix: N = {}, Nnz = {}, T = {threads}, host cores = {host_cores}, reps = {reps}",
        h.nrows(),
        h.nnz()
    );

    // The grid: CRS (≡ SELL-1-1), then SELL over C × σ, then the
    // autotuner's pick (short empirical probe included).
    let mut cands: Vec<Candidate> = vec![Candidate {
        format: "crs",
        c: 1,
        sigma: 1,
        autotuned: false,
        m: KpmMatrix::crs(h.clone()),
    }];
    for c in [4usize, 8, 16, 32] {
        for sigma in [1usize, c, 4 * c] {
            let spec = FormatSpec::Sell {
                chunk_height: c,
                sigma,
            };
            cands.push(Candidate {
                format: spec.name(),
                c,
                sigma,
                autotuned: false,
                m: KpmMatrix::try_with_format(h.clone(), &spec).expect("valid grid spec"),
            });
        }
    }
    let choice = autotune(&h, &AutotuneEnv::generic(threads).with_probe_reps(3));
    let (tc, tsigma) = match choice.format {
        // The grid tuner only sees assembled formats; the matrix-free
        // stencil never reaches this bin (no lattice generator here).
        FormatSpec::Crs | FormatSpec::Stencil => (1, 1),
        FormatSpec::Sell {
            chunk_height,
            sigma,
        } => (chunk_height, sigma),
    };
    eprintln!(
        "autotune: {} (chunks/task = {}, predicted beta = {:.3}, probed = {})",
        choice.format, choice.chunks_per_task, choice.predicted_beta, choice.probed
    );
    cands.push(Candidate {
        format: choice.format.name(),
        c: tc,
        sigma: tsigma,
        autotuned: true,
        m: choice.build(h.clone()).expect("tuner picks valid specs"),
    });

    // The full grid is measured under every scalar-vs-SIMD ×
    // first-touch combination: both knobs are placement/issue-width
    // properties that never change a result, so the ablation shows
    // their speed effect per format. First-touch candidates are
    // re-placed clones of the same handles.
    let mut lines: Vec<String> = Vec::new();
    for simd_on in [false, true] {
        for first_touch in [false, true] {
            simd::set_enabled(simd_on);
            let placed: Vec<Candidate>;
            let cfg_cands: &[Candidate] = if first_touch {
                placed = cands
                    .iter()
                    .map(|c| Candidate {
                        format: c.format,
                        c: c.c,
                        sigma: c.sigma,
                        autotuned: c.autotuned,
                        m: c.m.clone().with_first_touch(true),
                    })
                    .collect();
                &placed
            } else {
                &cands
            };
            for r in [1usize, 8] {
                let rates = measure_all(cfg_cands, sf.a, sf.b, r, threads, reps);
                for (cand, gflops) in cfg_cands.iter().zip(&rates) {
                    let label = if cand.autotuned {
                        "autotuned".to_string()
                    } else if cand.format == "crs" {
                        "crs".to_string()
                    } else {
                        format!("sell-{}-{}", cand.c, cand.sigma)
                    };
                    eprintln!(
                        "{label:<11} R={r} simd={simd_on} ft={first_touch}  beta={:.3}  {gflops:>6.2} GF/s",
                        cand.m.beta()
                    );
                    lines.push(format!(
                        "    {{\"format\": \"{}\", \"c\": {}, \"sigma\": {}, \"r\": {}, \"beta\": {}, \"gflops\": {}, \"autotuned\": {}, \"simd\": {}, \"simd_lanes\": {}, \"first_touch\": {}}}",
                        cand.format,
                        cand.c,
                        cand.sigma,
                        r,
                        num(cand.m.beta()),
                        num(*gflops),
                        cand.autotuned,
                        simd_on,
                        simd::active_lanes(),
                        first_touch
                    ));
                }
            }
        }
    }
    simd::set_enabled(true);

    let mut body = String::new();
    let _ = writeln!(body, "{{");
    let _ = writeln!(body, "  \"schema\": \"kpm-bench-formats-v3\",");
    let _ = writeln!(
        body,
        "  \"matrix\": {{\"nx\": {nx}, \"ny\": {ny}, \"nz\": {nz}, \"rows\": {}, \"nnz\": {}}},",
        h.nrows(),
        h.nnz()
    );
    let _ = writeln!(body, "  \"threads\": {threads},");
    let _ = writeln!(body, "  \"host_cores\": {host_cores},");
    let _ = writeln!(body, "  \"reps\": {reps},");
    let _ = writeln!(body, "  \"simd_compiled\": {},", simd::compiled());
    let _ = writeln!(body, "  \"simd_lanes\": {},", simd::lanes());
    let _ = writeln!(body, "  \"first_touch\": false,");
    let _ = writeln!(
        body,
        "  \"autotune\": {{\"format\": \"{}\", \"c\": {tc}, \"sigma\": {tsigma}, \"chunks_per_task\": {}, \"predicted_beta\": {}, \"probed\": {}}},",
        choice.format.name(),
        choice.chunks_per_task,
        num(choice.predicted_beta),
        choice.probed
    );
    let _ = writeln!(body, "  \"points\": [");
    for (i, line) in lines.iter().enumerate() {
        let comma = if i + 1 < lines.len() { "," } else { "" };
        let _ = writeln!(body, "{line}{comma}");
    }
    let _ = writeln!(body, "  ]");
    let _ = writeln!(body, "}}");

    kpm_obs::json::parse(&body).expect("generated JSON must parse");
    std::fs::write(&out, &body).expect("write output file");
    eprintln!("wrote {out}");
}
