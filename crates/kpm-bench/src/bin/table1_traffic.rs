//! Regenerates paper Table I: minimum transferred bytes and executed
//! flops for each function of the naive KPM-DOS solver, plus the
//! traffic evolution of Eq. (4) across the optimization stages.

use kpm_bench::{arg_usize, print_header};
use kpm_perfmodel::traffic::{
    naive_solver_traffic, solver_flops, stage1_solver_traffic, stage2_solver_traffic, table1,
};

fn main() {
    let nx = arg_usize("--nx", 100);
    let ny = arg_usize("--ny", 100);
    let nz = arg_usize("--nz", 40);
    let r = arg_usize("--r", 32);
    let m = arg_usize("--m", 2000);
    let n = 4 * nx * ny * nz;
    let nnz = 13 * n;

    print_header(
        &format!("Table I (N = {n}, Nnz = {nnz}, R = {r}, M = {m})"),
        &[
            "func",
            "calls",
            "bytes/call",
            "flops/call",
            "total GB",
            "total Gflop",
        ],
    );
    for f in table1(n, nnz, r, m) {
        println!(
            "{}\t{}\t{}\t{}\t{:.2}\t{:.2}",
            f.name,
            f.calls,
            f.bytes_per_call,
            f.flops_per_call,
            f.total_bytes() as f64 / 1e9,
            f.total_flops() as f64 / 1e9
        );
        println!(
            "csv,table1,{},{},{},{}",
            f.name, f.calls, f.bytes_per_call, f.flops_per_call
        );
    }
    let flops = solver_flops(n, nnz, r, m);
    println!(
        "KPM (total)\t1\t-\t-\t{:.2}\t{:.2}",
        naive_solver_traffic(n, nnz, r, m) as f64 / 1e9,
        flops as f64 / 1e9
    );

    print_header(
        "Eq. (4): solver minimum traffic per stage",
        &["stage", "bytes (GB)", "vs naive"],
    );
    let v0 = naive_solver_traffic(n, nnz, r, m) as f64;
    let v1 = stage1_solver_traffic(n, nnz, r, m) as f64;
    let v2 = stage2_solver_traffic(n, nnz, r, m) as f64;
    for (name, v) in [("naive", v0), ("aug_spmv", v1), ("aug_spmmv", v2)] {
        println!("{name}\t{:.2}\t{:.3}x", v / 1e9, v / v0);
        println!("csv,eq4,{name},{v}");
    }
}
