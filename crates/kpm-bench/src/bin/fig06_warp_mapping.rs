//! Regenerates the content of paper Fig. 6 as a table: the warp-level
//! thread mapping of the augmented SpMMV kernel (warps along block
//! vector rows), with the static efficiency metrics that motivate the
//! paper's "optimized towards relatively large vector blocks (R >= 8)".

use kpm_bench::{arg_usize, benchmark_matrix, print_header};
use kpm_simgpu::occupancy::{warp_divergence_efficiency, warp_mapping};
use kpm_simgpu::GpuDevice;

fn main() {
    let nx = arg_usize("--nx", 32);
    let ny = arg_usize("--ny", 32);
    let nz = arg_usize("--nz", 16);
    let (h, _sf) = benchmark_matrix(nx, ny, nz);
    let dev = GpuDevice::k20m();
    print_header(
        "Fig. 6: warp mapping of aug_spmmv on Kepler (warpSize 32, blockDim 1024)",
        &[
            "R",
            "rows/warp",
            "warps/row",
            "lane util",
            "coalescing",
            "divergence eff",
        ],
    );
    for r in [1usize, 2, 3, 4, 5, 8, 16, 32, 48, 64] {
        let m = warp_mapping(&dev, r);
        let div = warp_divergence_efficiency(&dev, &h, r);
        println!(
            "{r}\t{}\t{}\t{:.3}\t{:.3}\t{:.3}",
            m.rows_per_warp, m.warps_per_row, m.lane_utilization, m.coalescing_efficiency, div
        );
        println!(
            "csv,fig6,{r},{},{},{},{},{div}",
            m.rows_per_warp, m.warps_per_row, m.lane_utilization, m.coalescing_efficiency
        );
    }
    println!("# R >= 8 keeps every metric near 1.0 on the stencil matrix -- the");
    println!("# regime the paper's kernel is designed for.");
}
