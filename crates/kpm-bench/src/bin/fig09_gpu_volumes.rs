//! Regenerates paper Fig. 9: measured data volume per memory-system
//! component (DRAM / L2 / TEX) on the K20m for the simple SpMMV
//! kernel, as a function of the block width R.
//!
//! Volumes come from the trace-driven GPU simulator (our stand-in for
//! nvprof). The reproduced shape: TEX volume grows linearly with R
//! (matrix broadcast), while the accumulated volume *per block vector
//! column* shrinks because the matrix amortizes.

use kpm_bench::{arg_usize, benchmark_matrix, print_header};
use kpm_simgpu::{simulate, GpuDevice, GpuKernel};

fn main() {
    let nx = arg_usize("--nx", 64);
    let ny = arg_usize("--ny", 64);
    let nz = arg_usize("--nz", 24);
    let (h, _sf) = benchmark_matrix(nx, ny, nz);
    eprintln!("matrix: N = {}, Nnz = {}", h.nrows(), h.nnz());
    let dev = GpuDevice::k20m();

    print_header(
        "Fig. 9 (K20m, simple SpMMV): data volume per sweep [MB]",
        &["R", "TEX", "L2", "DRAM", "DRAM/column"],
    );
    for r in [1usize, 8, 16, 32, 64] {
        let rep = simulate(&dev, &h, r, GpuKernel::PlainSpmmv);
        let t = rep.traffic;
        println!(
            "{r}\t{:.1}\t{:.1}\t{:.1}\t{:.2}",
            t.tex_bytes as f64 / 1e6,
            t.l2_bytes as f64 / 1e6,
            t.dram_bytes() as f64 / 1e6,
            t.dram_bytes() as f64 / r as f64 / 1e6
        );
        println!(
            "csv,fig9,{r},{},{},{}",
            t.tex_bytes,
            t.l2_bytes,
            t.dram_bytes()
        );
    }
}
