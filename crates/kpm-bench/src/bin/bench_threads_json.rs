//! Emits `BENCH_threads.json`: achieved GF/s of the three optimization
//! stages (naive SpMV, fused `aug_spmv`, blocked `aug_spmmv`) over
//! worker-thread counts T ∈ {1, 2, 4, 8}, plus a scalar-vs-SIMD ×
//! first-touch placement grid at the widest usable thread count.
//!
//! Each point runs the full instrumented solver with a pinned thread
//! pool (`KpmParams::threads`) and reads the achieved rate from the
//! `kpm-obs` kernel probes, exactly like `bench_stages_json`. The
//! moments of every run are compared bitwise against the T = 1 run —
//! the deterministic reduction tree means thread count, lane count and
//! page placement may change the speed but never a single bit of the
//! physics output.
//!
//! Every placement point also carries the autotuner's model-validation
//! number for the probed CRS kernel: `chain_gap = chain_frac_model −
//! chain_frac_measured`, the signed error of the chain-parallelism
//! fraction the tuner's machine model predicted for this build (see
//! `kpm_sparse::ProbePoint`).
//!
//! ```text
//! bench_threads_json [--nx N] [--ny N] [--nz N] [--moments M]
//!                    [--random R] [--out FILE]
//! ```

use std::fmt::Write as _;

use kpm_bench::{arg_usize, benchmark_matrix, guard_baseline_stamp};
use kpm_core::solver::{kpm_moments, KpmParams, KpmVariant};
use kpm_obs::json::num;
use kpm_obs::probe::KernelKind;
use kpm_sparse::{autotune_formats_report, simd, AutotuneEnv, FormatSpec, KpmMatrix};

/// One (stage, threads) measurement.
struct ThreadPoint {
    stage: &'static str,
    threads: usize,
    calls: u64,
    gflops: f64,
    format: &'static str,
    beta: f64,
}

/// One (simd, first_touch) placement measurement at fixed T.
struct PlacementPoint {
    simd: bool,
    simd_lanes: usize,
    first_touch: bool,
    threads: usize,
    gflops: f64,
    chain_gap: f64,
}

fn main() {
    let nx = arg_usize("--nx", 20);
    let ny = arg_usize("--ny", 20);
    let nz = arg_usize("--nz", 10);
    let moments = arg_usize("--moments", 64);
    let r = arg_usize("--random", 16);
    let out = std::env::args()
        .collect::<Vec<_>>()
        .windows(2)
        .find(|w| w[0] == "--out")
        .map(|w| w[1].clone())
        .unwrap_or_else(|| "BENCH_threads.json".to_string());

    let (h, sf) = benchmark_matrix(nx, ny, nz);
    let host_cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    guard_baseline_stamp(&out, "BENCH_threads.json", host_cores);
    eprintln!(
        "matrix: N = {}, Nnz = {}, M = {moments}, R = {r}, host cores = {host_cores}, \
         simd lanes = {} (compiled: {})",
        h.nrows(),
        h.nnz(),
        simd::lanes(),
        simd::compiled()
    );
    kpm_obs::set_enabled(true);

    let stages: [(&str, KpmVariant, KernelKind); 3] = [
        ("naive", KpmVariant::Naive, KernelKind::Spmv),
        ("aug_spmv", KpmVariant::AugSpmv, KernelKind::AugSpmv),
        ("aug_spmmv", KpmVariant::AugSpmmv, KernelKind::AugSpmmv),
    ];
    let mut points: Vec<ThreadPoint> = Vec::new();
    let mut spmmv_reference: Option<Vec<f64>> = None;
    for (stage, variant, kind) in stages {
        let mut reference: Option<Vec<f64>> = None;
        for threads in [1usize, 2, 4, 8] {
            if threads > host_cores {
                eprintln!(
                    "warning: T={threads} exceeds the {host_cores} host core(s); \
                     expect oversubscribed (non-scaling) numbers"
                );
            }
            let params = KpmParams {
                num_moments: moments,
                num_random: r,
                seed: 2015,
                parallel: true,
                threads,
                power: 1,
                first_touch: false,
            };
            kpm_obs::reset();
            kpm_obs::set_enabled(true);
            let set = kpm_moments(&h, sf, &params, variant).expect("solver run");
            match &reference {
                None => reference = Some(set.as_slice().to_vec()),
                Some(baseline) => assert_eq!(
                    baseline,
                    &set.as_slice().to_vec(),
                    "{stage}: moments at T={threads} differ from T=1"
                ),
            }
            let rep = kpm_obs::probe::snapshot()
                .into_iter()
                .find(|rep| rep.kind == kind)
                .expect("instrumented kernel recorded calls");
            eprintln!("{stage:<9} T={threads:<2} {:>7.2} GF/s", rep.gflops());
            points.push(ThreadPoint {
                stage,
                threads,
                calls: rep.calls,
                gflops: rep.gflops(),
                format: rep.format.name(),
                beta: rep.beta(),
            });
        }
        if stage == "aug_spmmv" {
            spmmv_reference = reference;
        }
    }

    // Scalar-vs-SIMD × first-touch grid for the blocked stage at the
    // widest tested thread count the host really has. Each point must
    // reproduce the thread-sweep moments bit for bit — both knobs are
    // pure performance properties.
    let t_cfg = host_cores.clamp(1, 8);
    let spmmv_reference = spmmv_reference.expect("aug_spmmv sweep ran");
    let mut placement: Vec<PlacementPoint> = Vec::new();
    for simd_on in [false, true] {
        for first_touch in [false, true] {
            simd::set_enabled(simd_on);
            let hm = KpmMatrix::crs(h.clone()).with_first_touch(first_touch);
            let params = KpmParams {
                num_moments: moments,
                num_random: r,
                seed: 2015,
                parallel: true,
                threads: t_cfg,
                power: 1,
                first_touch,
            };
            kpm_obs::reset();
            kpm_obs::set_enabled(true);
            let set = kpm_moments(&hm, sf, &params, KpmVariant::AugSpmmv).expect("solver run");
            assert_eq!(
                &spmmv_reference,
                &set.as_slice().to_vec(),
                "aug_spmmv: moments with simd={simd_on} first_touch={first_touch} \
                 differ from the scalar caller-placed run"
            );
            let rep = kpm_obs::probe::snapshot()
                .into_iter()
                .find(|rep| rep.kind == KernelKind::AugSpmmv)
                .expect("instrumented kernel recorded calls");
            // Model validation under the same lane setting: probe the
            // finalists and read the CRS point's chain_frac gap.
            let env = AutotuneEnv::generic(t_cfg).with_probe_reps(2);
            let (_, report) = autotune_formats_report(&h, &env, None, 1);
            let chain_gap = report
                .iter()
                .find(|p| p.format == FormatSpec::Crs)
                .map(|p| p.chain_gap)
                .unwrap_or(0.0);
            eprintln!(
                "aug_spmmv T={t_cfg:<2} simd={} ({} lane(s)) first-touch={} \
                 {:>7.2} GF/s  chain_gap={:+.3}",
                simd_on,
                simd::active_lanes(),
                first_touch,
                rep.gflops(),
                chain_gap
            );
            placement.push(PlacementPoint {
                simd: simd_on,
                simd_lanes: simd::active_lanes(),
                first_touch,
                threads: t_cfg,
                gflops: rep.gflops(),
                chain_gap,
            });
        }
    }
    simd::set_enabled(true);

    let mut body = String::new();
    let _ = writeln!(body, "{{");
    let _ = writeln!(body, "  \"schema\": \"kpm-bench-threads-v3\",");
    let _ = writeln!(
        body,
        "  \"matrix\": {{\"nx\": {nx}, \"ny\": {ny}, \"nz\": {nz}, \"rows\": {}, \"nnz\": {}}},",
        h.nrows(),
        h.nnz()
    );
    let _ = writeln!(body, "  \"moments\": {moments},");
    let _ = writeln!(body, "  \"random\": {r},");
    let _ = writeln!(body, "  \"host_cores\": {host_cores},");
    let _ = writeln!(body, "  \"simd_compiled\": {},", simd::compiled());
    let _ = writeln!(body, "  \"simd_lanes\": {},", simd::lanes());
    let _ = writeln!(body, "  \"first_touch\": false,");
    let _ = writeln!(body, "  \"points\": [");
    for (i, p) in points.iter().enumerate() {
        let comma = if i + 1 < points.len() { "," } else { "" };
        let _ = writeln!(
            body,
            "    {{\"stage\": \"{}\", \"threads\": {}, \"calls\": {}, \"gflops\": {}, \"format\": \"{}\", \"beta\": {}}}{comma}",
            p.stage,
            p.threads,
            p.calls,
            num(p.gflops),
            p.format,
            num(p.beta)
        );
    }
    let _ = writeln!(body, "  ],");
    let _ = writeln!(body, "  \"placement_points\": [");
    for (i, p) in placement.iter().enumerate() {
        let comma = if i + 1 < placement.len() { "," } else { "" };
        let _ = writeln!(
            body,
            "    {{\"stage\": \"aug_spmmv\", \"threads\": {}, \"simd\": {}, \"simd_lanes\": {}, \"first_touch\": {}, \"gflops\": {}, \"chain_gap\": {}}}{comma}",
            p.threads,
            p.simd,
            p.simd_lanes,
            p.first_touch,
            num(p.gflops),
            num(p.chain_gap)
        );
    }
    let _ = writeln!(body, "  ]");
    let _ = writeln!(body, "}}");

    kpm_obs::json::parse(&body).expect("generated JSON must parse");
    std::fs::write(&out, &body).expect("write output file");
    eprintln!("wrote {out}");
}
