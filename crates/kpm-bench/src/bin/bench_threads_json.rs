//! Emits `BENCH_threads.json`: achieved GF/s of the three optimization
//! stages (naive SpMV, fused `aug_spmv`, blocked `aug_spmmv`) over
//! worker-thread counts T ∈ {1, 2, 4, 8}.
//!
//! Each point runs the full instrumented solver with a pinned thread
//! pool (`KpmParams::threads`) and reads the achieved rate from the
//! `kpm-obs` kernel probes, exactly like `bench_stages_json`. The
//! moments of every run are compared bitwise against the T = 1 run —
//! the deterministic reduction tree means thread count may change the
//! speed but never a single bit of the physics output.
//!
//! ```text
//! bench_threads_json [--nx N] [--ny N] [--nz N] [--moments M]
//!                    [--random R] [--out FILE]
//! ```

use std::fmt::Write as _;

use kpm_bench::{arg_usize, benchmark_matrix, guard_baseline_stamp};
use kpm_core::solver::{kpm_moments, KpmParams, KpmVariant};
use kpm_obs::json::num;
use kpm_obs::probe::KernelKind;

/// One (stage, threads) measurement.
struct ThreadPoint {
    stage: &'static str,
    threads: usize,
    calls: u64,
    gflops: f64,
    format: &'static str,
    beta: f64,
}

fn main() {
    let nx = arg_usize("--nx", 20);
    let ny = arg_usize("--ny", 20);
    let nz = arg_usize("--nz", 10);
    let moments = arg_usize("--moments", 64);
    let r = arg_usize("--random", 16);
    let out = std::env::args()
        .collect::<Vec<_>>()
        .windows(2)
        .find(|w| w[0] == "--out")
        .map(|w| w[1].clone())
        .unwrap_or_else(|| "BENCH_threads.json".to_string());

    let (h, sf) = benchmark_matrix(nx, ny, nz);
    let host_cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    guard_baseline_stamp(&out, "BENCH_threads.json", host_cores);
    eprintln!(
        "matrix: N = {}, Nnz = {}, M = {moments}, R = {r}, host cores = {host_cores}",
        h.nrows(),
        h.nnz()
    );
    kpm_obs::set_enabled(true);

    let stages: [(&str, KpmVariant, KernelKind); 3] = [
        ("naive", KpmVariant::Naive, KernelKind::Spmv),
        ("aug_spmv", KpmVariant::AugSpmv, KernelKind::AugSpmv),
        ("aug_spmmv", KpmVariant::AugSpmmv, KernelKind::AugSpmmv),
    ];
    let mut points: Vec<ThreadPoint> = Vec::new();
    for (stage, variant, kind) in stages {
        let mut reference: Option<Vec<f64>> = None;
        for threads in [1usize, 2, 4, 8] {
            if threads > host_cores {
                eprintln!(
                    "warning: T={threads} exceeds the {host_cores} host core(s); \
                     expect oversubscribed (non-scaling) numbers"
                );
            }
            let params = KpmParams {
                num_moments: moments,
                num_random: r,
                seed: 2015,
                parallel: true,
                threads,
                power: 1,
            };
            kpm_obs::reset();
            kpm_obs::set_enabled(true);
            let set = kpm_moments(&h, sf, &params, variant).expect("solver run");
            match &reference {
                None => reference = Some(set.as_slice().to_vec()),
                Some(baseline) => assert_eq!(
                    baseline,
                    &set.as_slice().to_vec(),
                    "{stage}: moments at T={threads} differ from T=1"
                ),
            }
            let rep = kpm_obs::probe::snapshot()
                .into_iter()
                .find(|rep| rep.kind == kind)
                .expect("instrumented kernel recorded calls");
            eprintln!("{stage:<9} T={threads:<2} {:>7.2} GF/s", rep.gflops());
            points.push(ThreadPoint {
                stage,
                threads,
                calls: rep.calls,
                gflops: rep.gflops(),
                format: rep.format.name(),
                beta: rep.beta(),
            });
        }
    }

    let mut body = String::new();
    let _ = writeln!(body, "{{");
    let _ = writeln!(body, "  \"schema\": \"kpm-bench-threads-v2\",");
    let _ = writeln!(
        body,
        "  \"matrix\": {{\"nx\": {nx}, \"ny\": {ny}, \"nz\": {nz}, \"rows\": {}, \"nnz\": {}}},",
        h.nrows(),
        h.nnz()
    );
    let _ = writeln!(body, "  \"moments\": {moments},");
    let _ = writeln!(body, "  \"random\": {r},");
    let _ = writeln!(body, "  \"host_cores\": {host_cores},");
    let _ = writeln!(body, "  \"points\": [");
    for (i, p) in points.iter().enumerate() {
        let comma = if i + 1 < points.len() { "," } else { "" };
        let _ = writeln!(
            body,
            "    {{\"stage\": \"{}\", \"threads\": {}, \"calls\": {}, \"gflops\": {}, \"format\": \"{}\", \"beta\": {}}}{comma}",
            p.stage,
            p.threads,
            p.calls,
            num(p.gflops),
            p.format,
            num(p.beta)
        );
    }
    let _ = writeln!(body, "  ]");
    let _ = writeln!(body, "}}");

    kpm_obs::json::parse(&body).expect("generated JSON must parse");
    std::fs::write(&out, &body).expect("write output file");
    eprintln!("wrote {out}");
}
