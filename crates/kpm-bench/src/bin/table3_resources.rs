//! Regenerates paper Table III: resources required to solve the largest
//! system (N ~ 6.5e9, R = 32, M = 2000) with the three solver variants:
//! throughput-mode aug_spmv, blocked aug_spmmv with per-iteration
//! global reductions (*), and the fully optimized aug_spmmv.

use kpm_bench::{benchmark_matrix, print_header};
use kpm_hetsim::cluster::ClusterModel;

fn main() {
    let (bench, _sf) = benchmark_matrix(32, 16, 8);
    let model = ClusterModel::piz_daint(&bench, 32);
    print_header(
        "Table III (largest system, R = 32, M = 2000)",
        &["version", "Tflop/s", "nodes", "node hours"],
    );
    let rows = model.table3().expect("optimized stage");
    for row in &rows {
        println!(
            "{}\t{:.1}\t{}\t{:.0}",
            row.version, row.tflops, row.nodes, row.node_hours
        );
        println!(
            "csv,table3,{},{},{},{}",
            row.version, row.tflops, row.nodes, row.node_hours
        );
    }
    println!("# paper: aug_spmv 14.9/288/164, aug_spmmv* 107/1024/81, aug_spmmv 116/1024/75");
    println!(
        "# throughput-mode cost factor: {:.2}x (paper: 2.2x)",
        rows[0].node_hours / rows[2].node_hours
    );
}
